# Build-time embedding of GSL script assets (assets/scripts/*.gsl) into
# C++ headers, so the .gsl files are the single source of truth: the same
# file the programs run is what tools/gsl_lint and CI verify.
#
# This file is both a module (include() it, then call gamedb_embed_gsl)
# and the generator itself (invoked in cmake -P script mode by the custom
# command the function registers).

if(CMAKE_SCRIPT_MODE_FILE AND CMAKE_SCRIPT_MODE_FILE STREQUAL CMAKE_CURRENT_LIST_FILE)
  # Script mode: -DGSL_INPUT=<file.gsl> -DGSL_OUTPUT=<header> -DGSL_VAR=<id>
  file(READ "${GSL_INPUT}" _gsl_source)
  get_filename_component(_gsl_name "${GSL_INPUT}" NAME)
  string(CONCAT _header
      "// Generated from ${_gsl_name} by cmake/EmbedGsl.cmake — do not edit;\n"
      "// edit assets/scripts/${_gsl_name} instead.\n"
      "#pragma once\n"
      "\n"
      "/// Source path of the embedded script (diagnostics origin).\n"
      "inline constexpr char ${GSL_VAR}Name[] = \"${_gsl_name}\";\n"
      "\n"
      "inline constexpr char ${GSL_VAR}[] = R\"GSL(${_gsl_source})GSL\";\n")
  file(WRITE "${GSL_OUTPUT}" "${_header}")
  return()
endif()

set(GAMEDB_EMBED_GSL_SCRIPT ${CMAKE_CURRENT_LIST_FILE})
set(GAMEDB_GSL_GEN_DIR ${CMAKE_BINARY_DIR}/assets_gen)

# gamedb_embed_gsl(<var> <path-to-gsl>)
#
# Registers a custom command generating
#   ${GAMEDB_GSL_GEN_DIR}/<base>_gsl.h
# which defines `inline constexpr char <var>[]` (the script source) and
# `<var>Name` (the file name, for use as the script origin). Also creates
# target gsl_header_<base>; consumers add_dependencies() on it and put
# ${GAMEDB_GSL_GEN_DIR} on their include path (include "<base>_gsl.h").
function(gamedb_embed_gsl var gsl_path)
  get_filename_component(base ${gsl_path} NAME_WE)
  set(header ${GAMEDB_GSL_GEN_DIR}/${base}_gsl.h)
  add_custom_command(
    OUTPUT ${header}
    COMMAND ${CMAKE_COMMAND}
            -DGSL_INPUT=${gsl_path}
            -DGSL_OUTPUT=${header}
            -DGSL_VAR=${var}
            -P ${GAMEDB_EMBED_GSL_SCRIPT}
    DEPENDS ${gsl_path} ${GAMEDB_EMBED_GSL_SCRIPT}
    COMMENT "Embedding ${base}.gsl")
  add_custom_target(gsl_header_${base} DEPENDS ${header})
endfunction()
