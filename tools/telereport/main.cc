/// \file main.cc
/// telereport — renders a `gamedb.flightrec.v1` diagnostic bundle (the
/// artifact loadgen's `--flightrec` and scripted_world's `--flightrec`
/// dump, see src/telemetry/bundle.h) into human-readable per-metric
/// tables with unicode sparklines, or diffs two bundles metric-by-metric.
///
///   telereport BUNDLE.json              render one bundle
///   telereport BASE.json CURRENT.json   diff two bundles
///
/// Render mode shows the trigger, every watchdog rule with its trip
/// state, the SLO checks exactly as loadgen printed them, one table row
/// per recorded series (count / min / mean / max / last + sparkline),
/// a per-span trace summary and the EXPLAIN ANALYZE text of the hottest
/// cached plans. Diff mode matches series by name and reports the mean
/// shift, plus rules whose tripped state changed between the bundles.
///
/// Bundles are checked with the independent validator before rendering,
/// so a malformed bundle fails loudly instead of rendering nonsense.
///
/// Exit codes: 0 rendered/diffed; 1 usage, unreadable file, or a bundle
/// that fails `gamedb.flightrec.v1` validation.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "telemetry/bundle.h"

namespace {

using gamedb::Result;
using gamedb::Status;
using gamedb::json::JsonValue;
using gamedb::json::ParseJson;

/// One series pulled out of a bundle's "series" array.
struct SeriesStats {
  std::string kind;
  std::vector<double> values;
  double min = 0.0, max = 0.0, mean = 0.0, last = 0.0;
};

struct Bundle {
  JsonValue doc;
  std::map<std::string, SeriesStats> series;
};

/// Eight-level unicode sparkline over the last `budget` samples, scaled
/// to the series' own min..max (a flat series renders as all-low).
std::string Sparkline(const std::vector<double>& values, size_t budget) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  const size_t start = values.size() > budget ? values.size() - budget : 0;
  double lo = values[start], hi = values[start];
  for (size_t i = start; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  const double span = hi - lo;
  std::string out;
  for (size_t i = start; i < values.size(); ++i) {
    int level = 0;
    if (span > 0.0) {
      level = static_cast<int>((values[i] - lo) / span * 7.0 + 0.5);
      level = std::max(0, std::min(7, level));
    }
    out += kLevels[level];
  }
  return out;
}

/// Compact value formatting: integers as-is, big numbers with thousands
/// kept readable via scientific-free %.1f, small ones with precision.
std::string Fmt(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

Result<Bundle> LoadBundle(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  // The independent validator runs first: telereport refuses to render a
  // document that is not a well-formed gamedb.flightrec.v1 bundle.
  GAMEDB_RETURN_NOT_OK(gamedb::telemetry::ValidateFlightRecorderBundle(text));
  Bundle b;
  GAMEDB_ASSIGN_OR_RETURN(b.doc, ParseJson(text));
  const JsonValue* series = b.doc.Find("series");
  for (const JsonValue& s : series->elements) {
    SeriesStats st;
    st.kind = s.Find("kind")->str;
    for (const JsonValue& v : s.Find("values")->elements) {
      st.values.push_back(v.number);
    }
    st.min = st.max = st.values.front();
    double sum = 0.0;
    for (double v : st.values) {
      st.min = std::min(st.min, v);
      st.max = std::max(st.max, v);
      sum += v;
    }
    st.mean = sum / static_cast<double>(st.values.size());
    st.last = st.values.back();
    b.series[s.Find("name")->str] = std::move(st);
  }
  return b;
}

void RenderTrigger(const Bundle& b) {
  const JsonValue* trig = b.doc.Find("trigger");
  std::printf("trigger: %s (scenario %s, tick %lld)\n",
              trig->Find("reason")->str.c_str(),
              trig->Find("scenario")->str.c_str(),
              static_cast<long long>(trig->Find("tick")->number));
}

void RenderRules(const Bundle& b) {
  const JsonValue* rules = b.doc.Find("rules");
  if (rules->elements.empty()) return;
  std::printf("\nwatchdog rules:\n");
  for (const JsonValue& r : rules->elements) {
    const bool tripped = r.Find("tripped")->boolean;
    const long long trips =
        static_cast<long long>(r.Find("trip_count")->number);
    std::printf("  [%s] %s\n", tripped ? "TRIPPED" : "   ok  ",
                r.Find("rendered")->str.c_str());
    if (trips > 0) {
      std::printf("           first tripped at tick %lld, %lld trip(s), "
                  "last value %s over %lld evaluation(s)\n",
                  static_cast<long long>(r.Find("tripped_tick")->number),
                  trips, Fmt(r.Find("last_value")->number).c_str(),
                  static_cast<long long>(r.Find("evaluations")->number));
    }
  }
}

void RenderSlo(const Bundle& b) {
  const JsonValue* slo = b.doc.Find("slo");
  if (slo->elements.empty()) return;
  std::printf("\nslo checks:\n");
  for (const JsonValue& c : slo->elements) {
    std::printf("  %s\n", c.Find("rendered")->str.c_str());
  }
}

void RenderSeries(const Bundle& b) {
  if (b.series.empty()) return;
  size_t name_w = 4;
  for (const auto& [name, st] : b.series) {
    name_w = std::max(name_w, name.size());
  }
  std::printf("\nseries (%zu):\n", b.series.size());
  std::printf("  %-*s %13s %4s %12s %12s %12s %12s  %s\n",
              static_cast<int>(name_w), "name", "kind", "n", "min", "mean",
              "max", "last", "sparkline");
  for (const auto& [name, st] : b.series) {
    std::printf("  %-*s %13s %4zu %12s %12s %12s %12s  %s\n",
                static_cast<int>(name_w), name.c_str(), st.kind.c_str(),
                st.values.size(), Fmt(st.min).c_str(), Fmt(st.mean).c_str(),
                Fmt(st.max).c_str(), Fmt(st.last).c_str(),
                Sparkline(st.values, 32).c_str());
  }
}

void RenderTrace(const Bundle& b) {
  const JsonValue* trace = b.doc.Find("trace");
  if (trace->elements.empty()) return;
  // Aggregate spans by name: the raw stream repeats per shard/thread.
  struct SpanAgg {
    size_t count = 0;
    double total_ns = 0.0;
  };
  std::map<std::string, SpanAgg> aggs;
  for (const JsonValue& e : trace->elements) {
    SpanAgg& a = aggs[e.Find("name")->str];
    ++a.count;
    a.total_ns += e.Find("dur_ns")->number;
  }
  std::printf("\ntrace spans (trigger tick, %zu events):\n",
              trace->elements.size());
  std::vector<std::pair<std::string, SpanAgg>> rows(aggs.begin(), aggs.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  for (const auto& [name, a] : rows) {
    std::printf("  %-32s x%-4zu total %10.3f ms\n", name.c_str(), a.count,
                a.total_ns / 1e6);
  }
}

void RenderPlans(const Bundle& b) {
  const JsonValue* plans = b.doc.Find("plans");
  if (plans->elements.empty()) return;
  std::printf("\nhottest cached plans (EXPLAIN ANALYZE):\n");
  for (size_t i = 0; i < plans->elements.size(); ++i) {
    std::printf("  --- plan %zu ---\n", i + 1);
    std::istringstream lines(plans->elements[i].str);
    std::string line;
    while (std::getline(lines, line)) {
      std::printf("  %s\n", line.c_str());
    }
  }
}

int Render(const std::string& path) {
  auto bundle_or = LoadBundle(path);
  if (!bundle_or.ok()) {
    std::fprintf(stderr, "telereport: %s\n",
                 bundle_or.status().ToString().c_str());
    return 1;
  }
  const Bundle& b = *bundle_or;
  std::printf("flight recorder bundle: %s\n", path.c_str());
  RenderTrigger(b);
  RenderRules(b);
  RenderSlo(b);
  RenderSeries(b);
  RenderTrace(b);
  RenderPlans(b);
  return 0;
}

int Diff(const std::string& base_path, const std::string& cur_path) {
  auto base_or = LoadBundle(base_path);
  if (!base_or.ok()) {
    std::fprintf(stderr, "telereport: %s\n",
                 base_or.status().ToString().c_str());
    return 1;
  }
  auto cur_or = LoadBundle(cur_path);
  if (!cur_or.ok()) {
    std::fprintf(stderr, "telereport: %s\n",
                 cur_or.status().ToString().c_str());
    return 1;
  }
  const Bundle& base = *base_or;
  const Bundle& cur = *cur_or;

  std::printf("flight recorder diff: %s -> %s\n", base_path.c_str(),
              cur_path.c_str());

  // Rules whose tripped state changed between the two bundles.
  std::map<std::string, bool> base_tripped;
  for (const JsonValue& r : base.doc.Find("rules")->elements) {
    base_tripped[r.Find("name")->str] = r.Find("tripped")->boolean;
  }
  for (const JsonValue& r : cur.doc.Find("rules")->elements) {
    const std::string& name = r.Find("name")->str;
    const bool now = r.Find("tripped")->boolean;
    auto it = base_tripped.find(name);
    if (it != base_tripped.end() && it->second != now) {
      std::printf("  rule %-32s %s\n", name.c_str(),
                  now ? "newly TRIPPED" : "cleared");
    }
  }

  size_t name_w = 4;
  for (const auto& [name, st] : base.series) {
    name_w = std::max(name_w, name.size());
  }
  for (const auto& [name, st] : cur.series) {
    name_w = std::max(name_w, name.size());
  }
  std::printf("  %-*s %12s %12s %9s\n", static_cast<int>(name_w), "name",
              "base mean", "cur mean", "delta");
  size_t compared = 0;
  for (const auto& [name, bst] : base.series) {
    auto it = cur.series.find(name);
    if (it == cur.series.end()) {
      std::printf("  %-*s  only in base\n", static_cast<int>(name_w),
                  name.c_str());
      continue;
    }
    ++compared;
    const SeriesStats& cst = it->second;
    if (bst.mean == 0.0 && cst.mean == 0.0) continue;  // both flat at zero
    if (bst.mean == 0.0) {
      std::printf("  %-*s %12s %12s %9s\n", static_cast<int>(name_w),
                  name.c_str(), Fmt(bst.mean).c_str(), Fmt(cst.mean).c_str(),
                  "new");
      continue;
    }
    const double delta_pct = (cst.mean - bst.mean) / bst.mean * 100.0;
    std::printf("  %-*s %12s %12s %+8.1f%%\n", static_cast<int>(name_w),
                name.c_str(), Fmt(bst.mean).c_str(), Fmt(cst.mean).c_str(),
                delta_pct);
  }
  for (const auto& [name, cst] : cur.series) {
    (void)cst;
    if (base.series.find(name) == base.series.end()) {
      std::printf("  %-*s  only in current\n", static_cast<int>(name_w),
                  name.c_str());
    }
  }
  std::printf("telereport: %zu series compared\n", compared);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "telereport: unknown flag '%s'\n", arg.c_str());
      return 1;
    }
    files.push_back(arg);
  }
  if (files.size() == 1) return Render(files[0]);
  if (files.size() == 2) return Diff(files[0], files[1]);
  std::fprintf(stderr,
               "usage: telereport BUNDLE.json            render a bundle\n"
               "       telereport BASE.json CURRENT.json diff two bundles\n");
  return 1;
}
