/// \file main.cc
/// gsl_lint — standalone lint driver for the GSL static verifier
/// (src/script/analyzer.h). Lints .gsl files without running them:
///
///   gsl_lint [options] file.gsl [file2.gsl ...]
///
/// Options (defaults in brackets):
///   --restriction=full|no-recursion|declarative   language level [full]
///   --phase=sequential|parallel-defer|parallel-reject
///                        execution phase the script is checked for
///                        [sequential]
///   --budget=N           per-entry-point cost budget in planner cost
///                        units; 0 = off [0]
///   --views=a,b          view names that exist (standalone runs have no
///                        ViewCatalog; without this, view names are not
///                        checked)
///   --channels=a,b       wired effect channels (emit() into any other
///                        literal channel warns)
///   --werror             treat warnings as errors
///   --quiet              print findings only (no per-file summary, no
///                        access summaries / conflict matrix)
///   --json               print one machine-readable document
///                        (schema gamedb.gsl_lint.v1) to stdout; findings
///                        go to stderr. The document is validated against
///                        its own schema before printing.
///   --dot                print the per-file conflict graph as Graphviz
///                        DOT instead of the text matrix
///
/// A .gsl file can carry the same configuration in-line via lint directive
/// comments (any line starting with `# lint:`), e.g.
///
///   # lint: phase=parallel-defer restriction=no-recursion budget=5000
///   # lint: views=wounded,critical channels=damage,regen
///
/// Command-line options override file directives; file directives override
/// the defaults. Component/field names always resolve against the global
/// reflection registry (the standard component set).
///
/// Exit codes: 0 clean; 1 findings; 2 usage or I/O error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/reflect.h"
#include "core/world.h"
#include "script/analyzer.h"
#include "script/bindings.h"
#include "script/builtins.h"
#include "script/lint_report.h"
#include "script/parser.h"
#include "script/triggers.h"
#include "views/maintainer.h"

using namespace gamedb;  // NOLINT

namespace {

/// One file's effective lint configuration (defaults <- directives <- CLI).
struct LintConfig {
  script::Restriction restriction = script::Restriction::kFull;
  script::PhaseContext phase = script::PhaseContext::kSequential;
  double budget = 0.0;
  std::vector<std::string> views;
  std::vector<std::string> channels;
  // Which keys the CLI pinned (those ignore file directives).
  bool cli_restriction = false, cli_phase = false, cli_budget = false;
  bool cli_views = false, cli_channels = false;
};

std::vector<std::string> SplitCommas(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(csv);
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool ParseRestriction(const std::string& v, script::Restriction* out) {
  if (v == "full") *out = script::Restriction::kFull;
  else if (v == "no-recursion") *out = script::Restriction::kNoRecursion;
  else if (v == "declarative") *out = script::Restriction::kDeclarative;
  else return false;
  return true;
}

bool ParsePhase(const std::string& v, script::PhaseContext* out) {
  if (v == "sequential") *out = script::PhaseContext::kSequential;
  else if (v == "parallel-defer") *out = script::PhaseContext::kParallelDefer;
  else if (v == "parallel-reject") {
    *out = script::PhaseContext::kParallelReject;
  } else {
    return false;
  }
  return true;
}

/// Applies one key=value setting (from a directive or the CLI). Returns
/// false on an unknown key or a bad value.
bool ApplySetting(const std::string& key, const std::string& value,
                  bool from_cli, LintConfig* cfg) {
  if (key == "restriction") {
    if (from_cli) cfg->cli_restriction = true;
    else if (cfg->cli_restriction) return true;
    return ParseRestriction(value, &cfg->restriction);
  }
  if (key == "phase") {
    if (from_cli) cfg->cli_phase = true;
    else if (cfg->cli_phase) return true;
    return ParsePhase(value, &cfg->phase);
  }
  if (key == "budget") {
    if (from_cli) cfg->cli_budget = true;
    else if (cfg->cli_budget) return true;
    char* end = nullptr;
    cfg->budget = std::strtod(value.c_str(), &end);
    return end != nullptr && *end == '\0' && cfg->budget >= 0;
  }
  if (key == "views") {
    if (from_cli) cfg->cli_views = true;
    else if (cfg->cli_views) return true;
    cfg->views = SplitCommas(value);
    return true;
  }
  if (key == "channels") {
    if (from_cli) cfg->cli_channels = true;
    else if (cfg->cli_channels) return true;
    cfg->channels = SplitCommas(value);
    return true;
  }
  return false;
}

/// Scans `source` for `# lint: key=value ...` directive comments.
bool ApplyFileDirectives(const std::string& source, const std::string& path,
                         LintConfig* cfg) {
  std::stringstream ss(source);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    size_t at = line.find_first_not_of(" \t");
    if (at == std::string::npos) continue;
    const char kPrefix[] = "# lint:";
    if (line.compare(at, sizeof(kPrefix) - 1, kPrefix) != 0) continue;
    std::stringstream items(line.substr(at + sizeof(kPrefix) - 1));
    std::string item;
    while (items >> item) {
      size_t eq = item.find('=');
      if (eq == std::string::npos ||
          !ApplySetting(item.substr(0, eq), item.substr(eq + 1),
                        /*from_cli=*/false, cfg)) {
        std::fprintf(stderr, "%s:%d: bad lint directive '%s'\n", path.c_str(),
                     lineno, item.c_str());
        return false;
      }
    }
  }
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: gsl_lint [options] file.gsl [file2.gsl ...]\n"
      "  --restriction=full|no-recursion|declarative\n"
      "  --phase=sequential|parallel-defer|parallel-reject\n"
      "  --budget=N       per-entry cost budget (planner units, 0=off)\n"
      "  --views=a,b      view names that exist\n"
      "  --channels=a,b   wired effect channels\n"
      "  --werror         treat warnings as errors\n"
      "  --quiet          findings only, no summaries\n"
      "  --json           machine-readable output (gamedb.gsl_lint.v1)\n"
      "  --dot            conflict graph as Graphviz DOT\n"
      "files may embed '# lint: key=value ...' directive comments\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  RegisterStandardComponents();

  LintConfig base;
  bool werror = false;
  bool quiet = false;
  bool json = false;
  bool dot = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--werror") {
      werror = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg.rfind("--", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq == std::string::npos ||
          !ApplySetting(arg.substr(2, eq - 2), arg.substr(eq + 1),
                        /*from_cli=*/true, &base)) {
        std::fprintf(stderr, "gsl_lint: bad option '%s'\n", arg.c_str());
        return Usage();
      }
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return Usage();

  // A throwaway interpreter with the full builtin surface (core + world +
  // views + fire) tells the verifier which call names are native.
  World world;
  views::ViewCatalog catalog(&world);
  script::Interpreter interp;
  script::RegisterCoreBuiltins(&interp);
  script::BindWorld(&interp, &world, nullptr, script::WorldBindOptions{});
  script::BindViews(&interp, &catalog);
  script::TriggerSystem triggers(&interp);
  triggers.InstallFireBuiltin();

  size_t total_errors = 0;
  size_t total_warnings = 0;
  std::vector<script::LintFileResult> results;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "gsl_lint: cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();

    LintConfig cfg = base;
    if (!ApplyFileDirectives(source, path, &cfg)) return 2;

    // Origin: file name without directories (matches the embedded-header
    // origins the programs use, so rendered findings line up).
    size_t slash = path.find_last_of('/');
    const std::string origin =
        slash == std::string::npos ? path : path.substr(slash + 1);

    script::LintFileResult result;
    result.file = origin;
    result.phase = cfg.phase;

    auto parsed = script::Parse(source, origin);
    if (!parsed.ok()) {
      std::fprintf(json ? stderr : stdout, "%s: parse error: %s\n",
                   origin.c_str(), parsed.status().ToString().c_str());
      ++total_errors;
      result.parse_error = parsed.status().ToString();
      results.push_back(std::move(result));
      continue;
    }

    script::VerifierOptions vopts;
    vopts.restriction = cfg.restriction;
    vopts.phase = cfg.phase;
    vopts.cost_budget = cfg.budget;
    vopts.is_builtin = [&interp](const std::string& name) {
      return interp.IsBuiltin(name);
    };
    vopts.schema = script::ReflectionSchema();
    if (!cfg.views.empty()) {
      std::unordered_set<std::string> views(cfg.views.begin(),
                                            cfg.views.end());
      vopts.schema.has_view = [views](const std::string& name) {
        return views.count(name) > 0;
      };
      std::vector<std::string> view_list = cfg.views;
      vopts.schema.view_names = [view_list]() { return view_list; };
    }
    if (!cfg.channels.empty()) {
      std::unordered_set<std::string> channels(cfg.channels.begin(),
                                               cfg.channels.end());
      vopts.schema.has_channel = [channels](const std::string& name) {
        return channels.count(name) > 0;
      };
      std::vector<std::string> channel_list = cfg.channels;
      vopts.schema.channel_names = [channel_list]() { return channel_list; };
    }
    vopts.top_level_must_be_pure =
        cfg.phase != script::PhaseContext::kSequential;

    script::DiagnosticSink sink;
    script::VerifyReport report = script::Verify(*parsed, vopts, &sink);
    for (const auto& d : sink.diagnostics()) {
      std::fprintf(json ? stderr : stdout, "%s\n", d.ToString().c_str());
    }
    total_errors += sink.error_count();
    total_warnings += sink.warning_count();
    if (!json && !quiet) {
      std::printf(
          "%s: %zu error(s), %zu warning(s); phase %s, effects [%s], max "
          "entry cost %.0f units (%s)\n",
          origin.c_str(), sink.error_count(), sink.warning_count(),
          script::PhaseContextName(cfg.phase),
          script::EffectSetName(report.effects).c_str(),
          report.max_entry_cost, report.max_entry_name.c_str());
      if (dot) {
        std::printf("%s", script::RenderConflictDot(origin, report).c_str());
      } else {
        std::printf("%s", script::RenderAccessReport(origin, report).c_str());
      }
    }
    result.diagnostics = sink.diagnostics();
    result.report = std::move(report);
    results.push_back(std::move(result));
  }
  if (json) {
    const std::string doc = script::RenderLintJson(results, werror);
    // Round-trip through the validator so a schema regression fails here,
    // loudly, not in whatever CI consumer reads the document.
    Status valid = script::ValidateLintJson(doc);
    if (!valid.ok()) {
      std::fprintf(stderr, "gsl_lint: internal error: emitted json fails "
                   "its own schema: %s\n",
                   valid.ToString().c_str());
      return 2;
    }
    std::printf("%s", doc.c_str());
  }
  if (total_errors > 0) return 1;
  if (werror && total_warnings > 0) return 1;
  return 0;
}
