/// \file main.cc
/// bench_diff — compares two Google Benchmark JSON files (the
/// `--benchmark_out=FILE --benchmark_out_format=json` artifacts CI's
/// bench-smoke job uploads) benchmark-by-benchmark and flags real_time
/// regressions beyond a threshold.
///
///   bench_diff BASELINE.json CURRENT.json [--threshold=10]
///
/// Benchmarks are matched by name; time units are normalized (ns/us/ms/s),
/// so the two files need not agree on unit. Benchmarks present in only one
/// file are reported but never fail the diff — adding or retiring a bench
/// is not a regression.
///
/// `gamedb.e15.v1` scenario reports (loadgen's BENCH_e15_*.json) are also
/// accepted on either side: their timing section is synthesized into
/// benchmark-shaped entries named `<scenario>/<phase>_<stat>` (e.g.
/// "steady_state/tick_ns_p99"), so CI can regression-gate scenario
/// latency with the same tool and threshold machinery it gates
/// microbenchmarks with.
///
/// Exit codes: 0 no regression; 1 usage / unreadable or malformed input;
/// 2 at least one benchmark regressed past the threshold.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace {

using gamedb::Result;
using gamedb::Status;
using gamedb::json::JsonValue;
using gamedb::json::ParseJson;

struct BenchEntry {
  double real_time_ns = 0.0;
  double cpu_time_ns = 0.0;
};

/// ns-per-unit for Google Benchmark's "time_unit" field ("ns" when absent).
double UnitScale(const std::string& unit) {
  if (unit == "ns" || unit.empty()) return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return -1.0;
}

/// Synthesizes benchmark-shaped entries from a gamedb.e15.v1 scenario
/// report: every percentile/mean/max of every timing phase becomes one
/// entry named "<scenario>/<phase>_<stat>". The nested slo object and the
/// sample counts are skipped — counts are workload facts, not latencies.
Result<std::map<std::string, BenchEntry>> LoadE15Json(const std::string& path,
                                                      const JsonValue& doc) {
  const JsonValue* config = doc.Find("config");
  const JsonValue* timing = doc.Find("timing");
  if (config == nullptr || !config->Is(JsonValue::Kind::kObject) ||
      timing == nullptr || !timing->Is(JsonValue::Kind::kObject)) {
    return Status::ParseError(path + ": e15 report missing config/timing");
  }
  const JsonValue* scenario = config->Find("scenario");
  if (scenario == nullptr || !scenario->Is(JsonValue::Kind::kString)) {
    return Status::ParseError(path + ": e15 config.scenario missing");
  }
  std::map<std::string, BenchEntry> out;
  for (const auto& [phase, hist] : timing->members) {
    if (phase == "slo" || !hist.Is(JsonValue::Kind::kObject)) continue;
    for (const char* stat : {"p50", "p99", "p999", "max", "mean"}) {
      const JsonValue* v = hist.Find(stat);
      if (v == nullptr || !v->Is(JsonValue::Kind::kNumber)) continue;
      BenchEntry e;
      e.real_time_ns = v->number;  // timing section is already in ns
      e.cpu_time_ns = v->number;
      out[scenario->str + "/" + phase + "_" + stat] = e;
    }
  }
  if (out.empty()) {
    return Status::ParseError(path + ": e15 timing section has no phases");
  }
  return out;
}

/// Loads `path` and extracts name -> times from its "benchmarks" array.
/// Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
/// skipped: comparing a raw run against an aggregate would be apples to
/// oranges. gamedb.e15.v1 scenario reports are dispatched to LoadE15Json.
Result<std::map<std::string, BenchEntry>> LoadBenchJson(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue doc;
  GAMEDB_ASSIGN_OR_RETURN(doc, ParseJson(buffer.str()));
  if (!doc.Is(JsonValue::Kind::kObject)) {
    return Status::ParseError(path + ": top level is not an object");
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema != nullptr && schema->Is(JsonValue::Kind::kString) &&
      schema->str == "gamedb.e15.v1") {
    return LoadE15Json(path, doc);
  }
  const JsonValue* benches = doc.Find("benchmarks");
  if (benches == nullptr || !benches->Is(JsonValue::Kind::kArray)) {
    return Status::ParseError(path + ": missing \"benchmarks\" array");
  }
  std::map<std::string, BenchEntry> out;
  for (const JsonValue& b : benches->elements) {
    if (!b.Is(JsonValue::Kind::kObject)) continue;
    const JsonValue* name = b.Find("name");
    const JsonValue* real_time = b.Find("real_time");
    if (name == nullptr || !name->Is(JsonValue::Kind::kString) ||
        real_time == nullptr || !real_time->Is(JsonValue::Kind::kNumber)) {
      continue;
    }
    const JsonValue* run_type = b.Find("run_type");
    if (run_type != nullptr && run_type->Is(JsonValue::Kind::kString) &&
        run_type->str == "aggregate") {
      continue;
    }
    const JsonValue* unit = b.Find("time_unit");
    double scale = UnitScale(
        unit != nullptr && unit->Is(JsonValue::Kind::kString) ? unit->str
                                                              : "ns");
    if (scale < 0.0) {
      return Status::ParseError(path + ": unknown time_unit for '" +
                                name->str + "'");
    }
    BenchEntry e;
    e.real_time_ns = real_time->number * scale;
    const JsonValue* cpu_time = b.Find("cpu_time");
    if (cpu_time != nullptr && cpu_time->Is(JsonValue::Kind::kNumber)) {
      e.cpu_time_ns = cpu_time->number * scale;
    }
    out[name->str] = e;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  double threshold_pct = 10.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--threshold=";
    if (arg.rfind(prefix, 0) == 0) {
      char* end = nullptr;
      threshold_pct = std::strtod(arg.c_str() + prefix.size(), &end);
      if (end == nullptr || *end != '\0' || threshold_pct <= 0.0) {
        std::fprintf(stderr, "bench_diff: bad threshold '%s'\n", arg.c_str());
        return 1;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown flag '%s'\n", arg.c_str());
      return 1;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff BASELINE.json CURRENT.json "
                 "[--threshold=PCT]\n");
    return 1;
  }

  auto baseline_or = LoadBenchJson(files[0]);
  if (!baseline_or.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n",
                 baseline_or.status().ToString().c_str());
    return 1;
  }
  auto current_or = LoadBenchJson(files[1]);
  if (!current_or.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n",
                 current_or.status().ToString().c_str());
    return 1;
  }
  const auto& baseline = *baseline_or;
  const auto& current = *current_or;

  size_t regressions = 0, improvements = 0, compared = 0;
  for (const auto& [name, base] : baseline) {
    auto it = current.find(name);
    if (it == current.end()) {
      std::printf("  only in baseline: %s\n", name.c_str());
      continue;
    }
    ++compared;
    const BenchEntry& cur = it->second;
    if (base.real_time_ns <= 0.0) continue;
    double delta_pct =
        (cur.real_time_ns - base.real_time_ns) / base.real_time_ns * 100.0;
    if (delta_pct > threshold_pct) {
      ++regressions;
      std::printf("REGRESSION %-48s %12.1f -> %12.1f ns (%+.1f%%)\n",
                  name.c_str(), base.real_time_ns, cur.real_time_ns,
                  delta_pct);
    } else if (delta_pct < -threshold_pct) {
      ++improvements;
      std::printf("improved   %-48s %12.1f -> %12.1f ns (%+.1f%%)\n",
                  name.c_str(), base.real_time_ns, cur.real_time_ns,
                  delta_pct);
    }
  }
  for (const auto& [name, cur] : current) {
    (void)cur;
    if (baseline.find(name) == baseline.end()) {
      std::printf("  only in current:  %s\n", name.c_str());
    }
  }
  std::printf(
      "bench_diff: %zu compared, %zu regression(s), %zu improvement(s) "
      "(threshold %.1f%%)\n",
      compared, regressions, improvements, threshold_pct);
  return regressions > 0 ? 2 : 0;
}
