#include "loadgen/metrics.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <vector>

#include "common/macros.h"

namespace gamedb::loadgen {

namespace {

// --- Rendering --------------------------------------------------------------

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Fixed-precision double rendering: deterministic for identical values,
/// never locale-dependent, never scientific notation.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Streams `"key": value` pairs with fixed order and indentation.
class ObjectWriter {
 public:
  ObjectWriter(std::string* out, int indent) : out_(out), indent_(indent) {
    *out_ += "{";
  }
  void Field(const char* key, const std::string& s) {
    Key(key);
    *out_ += '"' + EscapeJson(s) + '"';
  }
  void Field(const char* key, uint64_t v) {
    Key(key);
    *out_ += std::to_string(v);
  }
  void Field(const char* key, double v) {
    Key(key);
    *out_ += FormatDouble(v);
  }
  void Field(const char* key, bool v) {
    Key(key);
    *out_ += v ? "true" : "false";
  }
  /// Opens a nested object; `body` fills it via its own ObjectWriter.
  template <typename Fn>
  void Object(const char* key, Fn body) {
    Key(key);
    ObjectWriter child(out_, indent_ + 2);
    body(child);
    child.Close();
  }
  void Close() {
    *out_ += '\n' + std::string(indent_ > 2 ? indent_ - 2 : 0, ' ') + "}";
  }

 private:
  void Key(const char* key) {
    if (!first_) *out_ += ',';
    first_ = false;
    *out_ += '\n' + std::string(indent_, ' ') + '"' + key + "\": ";
  }
  std::string* out_;
  int indent_;
  bool first_ = true;
};

void RenderSummary(ObjectWriter& w, const char* key,
                   const LatencySummary& s) {
  w.Object(key, [&](ObjectWriter& o) {
    o.Field("count", s.count);
    o.Field("p50", s.p50_ns);
    o.Field("p99", s.p99_ns);
    o.Field("p999", s.p999_ns);
    o.Field("max", s.max_ns);
    o.Field("mean", s.mean_ns);
  });
}

// --- Minimal JSON parser (validation only) ----------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  /// Insertion order is irrelevant for validation; a map keeps lookup easy.
  std::map<std::string, JsonValue> fields;

  const JsonValue* Find(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Status Parse(JsonValue* out) {
    GAMEDB_RETURN_NOT_OK(ParseValue(out));
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return Status::OK();
  }

 private:
  Status Fail(const std::string& what) {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') return ParseLiteral(out);
    if (c == 'n') return ParseLiteral(out);
    return ParseNumber(out);
  }
  Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      std::string key;
      GAMEDB_RETURN_NOT_OK(ParseString(&key));
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      GAMEDB_RETURN_NOT_OK(ParseValue(&value));
      out->fields.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }
  Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      GAMEDB_RETURN_NOT_OK(ParseValue(&value));
      out->items.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }
  Status ParseString(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            // Validation never inspects escaped text; keep the raw form.
            *out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }
  Status ParseLiteral(JsonValue* out) {
    auto match = [&](const char* word) {
      size_t n = std::char_traits<char>::length(word);
      if (text_.compare(pos_, n, word) == 0) {
        pos_ += n;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->b = true;
      return Status::OK();
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->b = false;
      return Status::OK();
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    return Fail("bad literal");
  }
  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    try {
      out->num = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return Fail("bad number");
    }
    out->kind = JsonValue::Kind::kNumber;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Schema checks ----------------------------------------------------------

Status Require(const JsonValue& obj, const char* section, const char* key,
               JsonValue::Kind kind) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(std::string("schema: missing ") + section +
                                   "." + key);
  }
  if (v->kind != kind) {
    return Status::InvalidArgument(std::string("schema: wrong type for ") +
                                   section + "." + key);
  }
  return Status::OK();
}

Status CheckSummary(const JsonValue& timing, const char* key) {
  const JsonValue* s = timing.Find(key);
  if (s == nullptr || s->kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument(std::string("schema: missing timing.") +
                                   key);
  }
  for (const char* field : {"count", "p50", "p99", "p999", "max", "mean"}) {
    GAMEDB_RETURN_NOT_OK(Require(*s, key, field, JsonValue::Kind::kNumber));
  }
  return Status::OK();
}

}  // namespace

std::string RenderReportJson(const ScenarioReport& report) {
  std::string out;
  out.reserve(2048);
  ObjectWriter root(&out, 2);
  root.Field("schema", std::string(kReportSchema));
  root.Object("config", [&](ObjectWriter& o) {
    const ScenarioConfig& c = report.config;
    o.Field("scenario", c.scenario);
    o.Field("clients", static_cast<uint64_t>(c.clients));
    o.Field("npcs", static_cast<uint64_t>(c.npcs));
    o.Field("ticks", static_cast<uint64_t>(c.ticks));
    o.Field("seed", c.seed);
    // Thread count is an execution detail the determinism contract says
    // cannot affect results; replay-mode reports omit it so the whole file
    // is byte-identical at any thread count.
    if (c.collect_timing) {
      o.Field("threads", static_cast<uint64_t>(c.threads));
    }
    o.Field("planner", std::string(c.planner_on ? "on" : "off"));
    o.Field("arena", static_cast<double>(c.arena));
    o.Field("interest_radius", static_cast<double>(c.interest_radius));
    o.Field("collect_timing", c.collect_timing);
  });
  root.Object("deterministic", [&](ObjectWriter& o) {
    o.Field("world_hash", report.world_hash);
    o.Field("final_entities", report.final_entities);
    o.Field("peak_entities", report.peak_entities);
    o.Field("logins", report.logins);
    o.Field("logouts", report.logouts);
    o.Field("spawns", report.spawns);
    o.Field("despawns", report.despawns);
    o.Field("deaths", report.deaths);
    o.Field("sync_bytes_total", report.sync_bytes_total);
    o.Field("sync_rows_total", report.sync_rows_total);
    o.Field("sync_removals_total", report.sync_removals_total);
    o.Field("client_ticks", report.client_ticks);
    o.Field("sync_bytes_per_client_tick", report.sync_bytes_per_client_tick);
    o.Field("script_errors", report.script_errors);
    o.Field("effect_contributions", report.effect_contributions);
    o.Field("deferred_ops", report.deferred_ops);
    o.Field("view_rounds", report.view_rounds);
    o.Field("view_change_records", report.view_change_records);
    o.Field("wounded_final", report.wounded_final);
    o.Field("critical_final", report.critical_final);
    o.Field("checkpoints", report.checkpoints);
    o.Field("wal_records", report.wal_records);
    o.Field("recovery_tick", report.recovery_tick);
  });
  if (report.config.collect_timing) {
    root.Object("timing", [&](ObjectWriter& o) {
      RenderSummary(o, "tick_ns", report.tick);
      RenderSummary(o, "script_phase_ns", report.script_phase);
      RenderSummary(o, "view_maintain_ns", report.view_maintain);
      RenderSummary(o, "sync_phase_ns", report.sync_phase);
      RenderSummary(o, "persist_phase_ns", report.persist_phase);
      o.Object("slo", [&](ObjectWriter& slo) {
        slo.Field("evaluated", report.slo_evaluated);
        slo.Field("violated", report.slo_violated);
        slo.Field("detail", report.slo_detail);
        // One structured record per configured gate (passed or not), keyed
        // by gate name — the evidence --enforce-slo prints and bundles
        // embed.
        slo.Object("checks", [&](ObjectWriter& checks) {
          for (const auto& c : report.slo_checks) {
            checks.Object(c.name.c_str(), [&](ObjectWriter& w) {
              w.Field("target_ms", c.target_ms);
              w.Field("measured_ms", c.measured_ms);
              w.Field("violated", c.violated);
            });
          }
        });
      });
    });
  }
  root.Close();
  out += '\n';
  return out;
}

std::string ReportFileName(const std::string& scenario) {
  return "BENCH_e15_" + scenario + ".json";
}

Result<std::string> WriteReportFile(const ScenarioReport& report,
                                    const std::string& dir) {
  std::string path = dir.empty()
                         ? ReportFileName(report.config.scenario)
                         : dir + "/" + ReportFileName(report.config.scenario);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  out << RenderReportJson(report);
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return path;
}

Status ValidateReportJson(const std::string& json) {
  JsonValue root;
  GAMEDB_RETURN_NOT_OK(JsonParser(json).Parse(&root));
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("schema: top level must be an object");
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString) {
    return Status::InvalidArgument("schema: missing schema tag");
  }
  if (schema->str != kReportSchema) {
    return Status::InvalidArgument("schema: unknown schema '" + schema->str +
                                   "'");
  }

  const JsonValue* config = root.Find("config");
  if (config == nullptr || config->kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("schema: missing config object");
  }
  GAMEDB_RETURN_NOT_OK(
      Require(*config, "config", "scenario", JsonValue::Kind::kString));
  for (const char* key : {"clients", "npcs", "ticks", "seed"}) {
    GAMEDB_RETURN_NOT_OK(
        Require(*config, "config", key, JsonValue::Kind::kNumber));
  }
  // `threads` is omitted from replay-mode reports (see RenderReportJson).
  const JsonValue* threads = config->Find("threads");
  if (threads != nullptr && threads->kind != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument("schema: wrong type for config.threads");
  }
  GAMEDB_RETURN_NOT_OK(
      Require(*config, "config", "planner", JsonValue::Kind::kString));
  GAMEDB_RETURN_NOT_OK(Require(*config, "config", "collect_timing",
                               JsonValue::Kind::kBool));

  const JsonValue* det = root.Find("deterministic");
  if (det == nullptr || det->kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("schema: missing deterministic object");
  }
  GAMEDB_RETURN_NOT_OK(Require(*det, "deterministic", "world_hash",
                               JsonValue::Kind::kString));
  for (const char* key :
       {"final_entities", "peak_entities", "logins", "logouts", "spawns",
        "despawns", "deaths", "sync_bytes_total", "sync_rows_total",
        "sync_removals_total", "client_ticks", "sync_bytes_per_client_tick",
        "script_errors", "effect_contributions", "deferred_ops",
        "view_rounds", "view_change_records", "wounded_final",
        "critical_final", "checkpoints", "wal_records", "recovery_tick"}) {
    GAMEDB_RETURN_NOT_OK(
        Require(*det, "deterministic", key, JsonValue::Kind::kNumber));
  }

  const JsonValue* timing = root.Find("timing");
  const JsonValue* collect = config->Find("collect_timing");
  if (collect != nullptr && collect->b) {
    if (timing == nullptr || timing->kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument(
          "schema: collect_timing=true but no timing object");
    }
  }
  if (timing != nullptr) {
    if (timing->kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("schema: timing must be an object");
    }
    for (const char* key : {"tick_ns", "script_phase_ns", "view_maintain_ns",
                            "sync_phase_ns", "persist_phase_ns"}) {
      GAMEDB_RETURN_NOT_OK(CheckSummary(*timing, key));
    }
    const JsonValue* slo = timing->Find("slo");
    if (slo == nullptr || slo->kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("schema: missing timing.slo");
    }
    GAMEDB_RETURN_NOT_OK(
        Require(*slo, "timing.slo", "evaluated", JsonValue::Kind::kBool));
    GAMEDB_RETURN_NOT_OK(
        Require(*slo, "timing.slo", "violated", JsonValue::Kind::kBool));
    const JsonValue* checks = slo->Find("checks");
    if (checks == nullptr || checks->kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("schema: missing timing.slo.checks");
    }
    for (const auto& [name, check] : checks->fields) {
      if (check.kind != JsonValue::Kind::kObject) {
        return Status::InvalidArgument("schema: timing.slo.checks." + name +
                                       " must be an object");
      }
      const std::string at = "timing.slo.checks." + name;
      GAMEDB_RETURN_NOT_OK(
          Require(check, at.c_str(), "target_ms", JsonValue::Kind::kNumber));
      GAMEDB_RETURN_NOT_OK(
          Require(check, at.c_str(), "measured_ms", JsonValue::Kind::kNumber));
      GAMEDB_RETURN_NOT_OK(
          Require(check, at.c_str(), "violated", JsonValue::Kind::kBool));
    }
  }
  return Status::OK();
}

}  // namespace gamedb::loadgen
