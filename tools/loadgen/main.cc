/// \file main.cc
/// loadgen CLI — the e15 scenario harness entry point.
///
///   loadgen --list
///   loadgen --scenario=steady_state --clients=64 --npcs=4000 --ticks=200
///   loadgen --scenario=all --out=bench_out --validate --enforce-slo
///   loadgen --scenario=chase --deterministic --threads=4
///   loadgen --scenario=flash_crowd --trace=trace.json --metrics=metrics.json
///
/// Exit codes: 0 success; 1 usage / harness error; 2 schema validation
/// failure (--validate, or a --trace/--metrics artifact failing its
/// validator); 3 SLO violation (--enforce-slo).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "loadgen/driver.h"
#include "loadgen/metrics.h"
#include "loadgen/scenario.h"
#include "telemetry/bundle.h"
#include "telemetry/registry.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "telemetry/watchdog.h"

namespace {

using gamedb::Result;
using gamedb::Status;
using namespace gamedb::loadgen;

void PrintUsage() {
  std::fprintf(stderr,
               "usage: loadgen [--scenario=<name|all>] [options]\n"
               "  --list              list scenarios and exit\n"
               "  --scenario=NAME     scenario to run, or 'all' (default: "
               "steady_state)\n"
               "  --clients=N         simulated clients\n"
               "  --npcs=N            initial NPC population\n"
               "  --ticks=N           simulation ticks\n"
               "  --seed=N            rng seed\n"
               "  --threads=N         script-phase threads\n"
               "  --planner=on|off    cost-based planner policy\n"
               "  --out=DIR           directory for BENCH_e15_*.json "
               "(default: .)\n"
               "  --deterministic     omit timing from the report (replay "
               "mode)\n"
               "  --validate          schema-check each emitted report\n"
               "  --enforce-slo       exit 3 if any scenario violates its "
               "SLO\n"
               "  --strict-scripts    reject the behavior pack on any GSL "
               "verifier error\n"
               "  --lint              verify the behavior pack against the "
               "full stack and exit\n"
               "  --trace=FILE        write a chrome://tracing span trace "
               "(trace_event JSON)\n"
               "  --metrics=FILE      write a gamedb.telemetry.v1 metrics "
               "snapshot\n"
               "  --flightrec=FILE    arm the flight recorder + watchdog; "
               "dump a gamedb.flightrec.v1\n"
               "                      bundle to FILE on SLO breach, watchdog "
               "trip, or run failure\n"
               "                      (not combinable with --trace: bundles "
               "keep only the last tick's spans)\n"
               "  --slo-p50=MS        override the scenario's tick p50 SLO "
               "(0 disables)\n"
               "  --slo-p99=MS        override the scenario's tick p99 SLO\n"
               "  --slo-p999=MS       override the scenario's tick p99.9 "
               "SLO\n"
               "  --watch=SPEC        add a watchdog rule (repeatable): "
               "NAME,METRIC,AGG,WINDOW,\n"
               "                      OP,THRESHOLD[,SEVERITY[,FOR,CLEAR]] — "
               "e.g.\n"
               "                      stall,loadgen.tick_ns:p99,last,1,gt,"
               "5e6,critical\n");
}

bool ParseUint(const std::string& v, uint64_t* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

struct CliOptions {
  std::string scenario = "steady_state";
  std::string out_dir;
  std::string trace_path;
  std::string metrics_path;
  std::string flightrec_path;
  /// Extra watchdog rules from --watch, pre-parsed at argv time.
  std::vector<gamedb::telemetry::HealthRule> watch_rules;
  /// Live taps owned by main() when --trace/--metrics/--flightrec were
  /// given.
  gamedb::telemetry::MetricsRegistry* metrics = nullptr;
  gamedb::telemetry::Tracer* tracer = nullptr;
  bool list = false;
  bool lint = false;
  bool deterministic = false;
  bool validate = false;
  bool enforce_slo = false;
  bool strict_scripts = false;
  // Overrides: only applied when the flag was given, so per-scenario
  // defaults (DefaultConfig) survive untouched flags.
  bool has_clients = false, has_npcs = false, has_ticks = false;
  bool has_seed = false, has_threads = false, has_planner = false;
  bool has_slo_p50 = false, has_slo_p99 = false, has_slo_p999 = false;
  uint64_t clients = 0, npcs = 0, ticks = 0, seed = 0, threads = 0;
  double slo_p50_ms = 0.0, slo_p99_ms = 0.0, slo_p999_ms = 0.0;
  bool planner_on = true;
  /// True when more than one scenario runs (--scenario=all): bundle files
  /// get a per-scenario suffix so runs don't overwrite each other.
  bool multi_scenario = false;
};

bool ParseMs(const std::string& v, double* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(v.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    auto eat = [&](const char* name) {
      std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        value = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    if (arg == "--list") {
      opts->list = true;
    } else if (arg == "--lint") {
      opts->lint = true;
    } else if (arg == "--strict-scripts") {
      opts->strict_scripts = true;
    } else if (arg == "--deterministic") {
      opts->deterministic = true;
    } else if (arg == "--validate") {
      opts->validate = true;
    } else if (arg == "--enforce-slo") {
      opts->enforce_slo = true;
    } else if (eat("--scenario")) {
      opts->scenario = value;
    } else if (eat("--out")) {
      opts->out_dir = value;
    } else if (eat("--trace")) {
      if (value.empty()) return false;
      opts->trace_path = value;
    } else if (eat("--metrics")) {
      if (value.empty()) return false;
      opts->metrics_path = value;
    } else if (eat("--flightrec")) {
      if (value.empty()) return false;
      opts->flightrec_path = value;
    } else if (eat("--watch")) {
      Result<gamedb::telemetry::HealthRule> rule =
          gamedb::telemetry::ParseHealthRule(value);
      if (!rule.ok()) {
        std::fprintf(stderr, "loadgen: %s\n",
                     rule.status().ToString().c_str());
        return false;
      }
      opts->watch_rules.push_back(rule.value());
    } else if (eat("--slo-p50")) {
      if (!ParseMs(value, &opts->slo_p50_ms)) return false;
      opts->has_slo_p50 = true;
    } else if (eat("--slo-p99")) {
      if (!ParseMs(value, &opts->slo_p99_ms)) return false;
      opts->has_slo_p99 = true;
    } else if (eat("--slo-p999")) {
      if (!ParseMs(value, &opts->slo_p999_ms)) return false;
      opts->has_slo_p999 = true;
    } else if (eat("--clients")) {
      if (!ParseUint(value, &opts->clients)) return false;
      opts->has_clients = true;
    } else if (eat("--npcs")) {
      if (!ParseUint(value, &opts->npcs)) return false;
      opts->has_npcs = true;
    } else if (eat("--ticks")) {
      if (!ParseUint(value, &opts->ticks)) return false;
      opts->has_ticks = true;
    } else if (eat("--seed")) {
      if (!ParseUint(value, &opts->seed)) return false;
      opts->has_seed = true;
    } else if (eat("--threads")) {
      if (!ParseUint(value, &opts->threads) || opts->threads == 0) {
        return false;
      }
      opts->has_threads = true;
    } else if (eat("--planner")) {
      if (value != "on" && value != "off") return false;
      opts->planner_on = (value == "on");
      opts->has_planner = true;
    } else {
      std::fprintf(stderr, "loadgen: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int WriteTelemetryArtifact(const std::string& path, const std::string& content,
                           const char* what,
                           Status (*validate)(const std::string&));

/// Bundle file path for `name`: --flightrec's path, with ".<scenario>"
/// inserted before the extension on a multi-scenario sweep so runs don't
/// overwrite each other.
std::string BundlePathFor(const CliOptions& opts, const std::string& name) {
  if (!opts.multi_scenario) return opts.flightrec_path;
  const std::string& path = opts.flightrec_path;
  size_t dot = path.rfind('.');
  size_t slash = path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + "." + name;
  }
  return path.substr(0, dot) + "." + name + path.substr(dot);
}

/// Runs one scenario; returns its exit code contribution (0/1/2/3).
int RunOne(const std::string& name, const CliOptions& opts) {
  Result<ScenarioConfig> cfg_or = DefaultConfig(name);
  if (!cfg_or.ok()) {
    std::fprintf(stderr, "loadgen: %s\n",
                 cfg_or.status().ToString().c_str());
    return 1;
  }
  ScenarioConfig cfg = cfg_or.value();
  if (opts.has_clients) cfg.clients = opts.clients;
  if (opts.has_npcs) cfg.npcs = opts.npcs;
  if (opts.has_ticks) cfg.ticks = opts.ticks;
  if (opts.has_seed) cfg.seed = opts.seed;
  if (opts.has_threads) cfg.threads = opts.threads;
  if (opts.has_planner) cfg.planner_on = opts.planner_on;
  if (opts.has_slo_p50) cfg.slo_p50_ms = opts.slo_p50_ms;
  if (opts.has_slo_p99) cfg.slo_p99_ms = opts.slo_p99_ms;
  if (opts.has_slo_p999) cfg.slo_p999_ms = opts.slo_p999_ms;
  cfg.strict_scripts = opts.strict_scripts;
  cfg.collect_timing = !opts.deterministic;
  cfg.metrics = opts.metrics;
  cfg.tracer = opts.tracer;

  // Flight recorder + watchdog, armed per scenario (the registry above is
  // shared, so delta baselines are primed at enable; ticks restart at 1
  // each scenario, which a per-run recorder keeps monotonic).
  gamedb::telemetry::FlightRecorder recorder(opts.metrics);
  gamedb::telemetry::Watchdog watchdog(&recorder);
  std::vector<std::string> hot_plans;
  const bool flightrec = !opts.flightrec_path.empty();
  if (flightrec) {
    recorder.SetEnabled(true);
    cfg.recorder = &recorder;
    cfg.watchdog = &watchdog;
    cfg.hot_plans_out = &hot_plans;
    cfg.trace_last_tick_only = true;
    // The scenario's SLO targets double as default watchdog rules over the
    // harness tick histogram, so a breach is visible the tick it develops
    // — not just in the post-run verdict.
    auto slo_rule = [&](const char* rule_name, const char* metric,
                       double target_ms) {
      if (target_ms <= 0.0) return;
      gamedb::telemetry::HealthRule r;
      r.name = rule_name;
      r.metric = metric;
      r.aggregation = gamedb::telemetry::Aggregation::kLast;
      r.window = 1;
      r.above = true;
      r.threshold = target_ms * 1e6;  // ms -> ns, the histogram's unit
      r.severity = gamedb::telemetry::Severity::kCritical;
      watchdog.AddRule(r);
    };
    if (cfg.collect_timing) {
      slo_rule("slo_tick_p50", "loadgen.tick_ns:p50", cfg.slo_p50_ms);
      slo_rule("slo_tick_p99", "loadgen.tick_ns:p99", cfg.slo_p99_ms);
      slo_rule("slo_tick_p999", "loadgen.tick_ns:p999", cfg.slo_p999_ms);
    }
    for (const auto& rule : opts.watch_rules) watchdog.AddRule(rule);
  }
  auto dump_bundle =
      [&](const std::string& reason, uint64_t tick,
          const std::vector<gamedb::telemetry::SloCheck>& checks) {
        gamedb::telemetry::BundleInputs in;
        in.reason = reason;
        in.tick = tick;
        in.scenario = name;
        in.recorder = &recorder;
        in.watchdog = &watchdog;
        in.metrics = opts.metrics;
        in.tracer = opts.tracer;
        in.slo_checks = checks;
        in.hot_plans = hot_plans;
        return WriteTelemetryArtifact(
            BundlePathFor(opts, name),
            gamedb::telemetry::RenderFlightRecorderBundle(in), "flightrec",
            &gamedb::telemetry::ValidateFlightRecorderBundle);
      };

  Result<ScenarioReport> report_or = RunScenario(cfg);
  if (!report_or.ok()) {
    std::fprintf(stderr, "loadgen: %s: %s\n", name.c_str(),
                 report_or.status().ToString().c_str());
    // A failed run (e.g. the crash-recovery differential) is exactly when
    // the evidence matters: dump the bundle before bailing.
    if (flightrec) {
      dump_bundle("run_failure: " + report_or.status().ToString(),
                  cfg.ticks, {});
    }
    return 1;
  }
  const ScenarioReport& report = report_or.value();

  Result<std::string> path_or = WriteReportFile(report, opts.out_dir);
  if (!path_or.ok()) {
    std::fprintf(stderr, "loadgen: %s\n",
                 path_or.status().ToString().c_str());
    return 1;
  }
  std::printf("%-14s hash=%s entities=%llu sync=%.1f B/client-tick",
              name.c_str(), report.world_hash.c_str(),
              static_cast<unsigned long long>(report.final_entities),
              report.sync_bytes_per_client_tick);
  if (cfg.collect_timing) {
    std::printf(" tick p50=%.3fms p99=%.3fms p99.9=%.3fms",
                report.tick.p50_ns / 1e6, report.tick.p99_ns / 1e6,
                report.tick.p999_ns / 1e6);
  }
  std::printf(" -> %s\n", path_or.value().c_str());

  int rc = 0;
  if (opts.validate) {
    std::ifstream in(path_or.value(), std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    Status v = ValidateReportJson(buffer.str());
    if (!v.ok()) {
      std::fprintf(stderr, "loadgen: %s: validation failed: %s\n",
                   name.c_str(), v.ToString().c_str());
      rc = 2;
    } else {
      std::printf("%-14s schema OK (%s)\n", name.c_str(), kReportSchema);
    }
  }
  if (report.slo_evaluated && report.slo_violated) {
    // Name the tripping gates with measured-vs-allowed evidence — the exit
    // code alone is not a diagnosis.
    std::fprintf(stderr, "loadgen: %s: SLO VIOLATED:\n", name.c_str());
    for (const auto& check : report.slo_checks) {
      std::fprintf(stderr, "loadgen:   %s\n", check.ToString().c_str());
    }
    if (opts.enforce_slo && rc == 0) rc = 3;
  }
  if (flightrec &&
      (report.slo_violated || watchdog.total_trips() > 0)) {
    int one = dump_bundle(report.slo_violated ? "slo_breach" : "watchdog",
                          cfg.ticks, report.slo_checks);
    if (one != 0 && (rc == 0 || one < rc)) rc = one;
  }
  return rc;
}

/// --lint: stand up the full stack (world, planner, views, channels),
/// strict-load the shipped behavior pack so the GSL verifier checks it
/// against the real schema/catalog, print every finding, and exit 0/1.
int RunLint() {
  ScenarioConfig cfg;
  cfg.clients = 1;
  cfg.npcs = 4;
  cfg.ticks = 0;
  cfg.collect_timing = false;
  cfg.strict_scripts = true;
  Driver driver(cfg);
  Status st = driver.Init();
  for (const auto& d : driver.script_diagnostics().diagnostics()) {
    std::printf("%s\n", d.ToString().c_str());
  }
  if (!st.ok()) {
    std::fprintf(stderr, "loadgen: lint failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("loadgen behavior pack: strict verification clean (%zu "
              "warning(s))\n",
              driver.script_diagnostics().warning_count());
  return 0;
}

/// Writes `content` to `path` and re-validates it with `validate` — the
/// emitted artifact itself (not the in-memory string) is what downstream
/// tools load, so that's what gets schema-checked. Returns 0/1/2.
int WriteTelemetryArtifact(const std::string& path, const std::string& content,
                           const char* what,
                           Status (*validate)(const std::string&)) {
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "loadgen: cannot write %s file '%s'\n", what,
                   path.c_str());
      return 1;
    }
    out << content;
    if (!out.flush()) {
      std::fprintf(stderr, "loadgen: short write to %s file '%s'\n", what,
                   path.c_str());
      return 1;
    }
  }
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  Status v = validate(buffer.str());
  if (!v.ok()) {
    std::fprintf(stderr, "loadgen: %s validation failed: %s\n", what,
                 v.ToString().c_str());
    return 2;
  }
  std::printf("%-14s %s OK -> %s\n", what, "schema", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    PrintUsage();
    return 1;
  }
  // Telemetry taps live here, above every scenario the invocation runs, so
  // one --scenario=all sweep lands in a single trace/snapshot.
  gamedb::telemetry::MetricsRegistry registry;
  gamedb::telemetry::Tracer tracer;
  if (!opts.metrics_path.empty()) {
    registry.SetEnabled(true);
    opts.metrics = &registry;
  }
  if (!opts.trace_path.empty()) {
    tracer.SetEnabled(true);
    opts.tracer = &tracer;
  }
  if (!opts.flightrec_path.empty()) {
    if (!opts.trace_path.empty()) {
      std::fprintf(stderr,
                   "loadgen: --flightrec and --trace are mutually exclusive "
                   "(bundles keep only the current tick's spans; a whole-run "
                   "trace needs them all)\n");
      return 1;
    }
    // The recorder samples the registry and bundles embed the current
    // tick's spans, so both taps are live even without --metrics/--trace.
    registry.SetEnabled(true);
    opts.metrics = &registry;
    tracer.SetEnabled(true);
    opts.tracer = &tracer;
  }
  opts.multi_scenario = opts.scenario == "all";
  if (opts.lint) return RunLint();
  if (opts.list) {
    for (const std::string& name : ScenarioNames()) {
      std::printf("%-14s %s\n", name.c_str(),
                  ScenarioDescription(name).c_str());
    }
    return 0;
  }
  std::vector<std::string> to_run;
  if (opts.scenario == "all") {
    to_run = ScenarioNames();
  } else {
    if (!IsScenarioName(opts.scenario)) {
      std::fprintf(stderr, "loadgen: unknown scenario '%s' (try --list)\n",
                   opts.scenario.c_str());
      return 1;
    }
    to_run.push_back(opts.scenario);
  }
  int rc = 0;
  for (const std::string& name : to_run) {
    int one = RunOne(name, opts);
    if (one != 0 && (rc == 0 || one < rc)) rc = one;
  }
  if (!opts.trace_path.empty()) {
    int one = WriteTelemetryArtifact(
        opts.trace_path, gamedb::telemetry::RenderChromeTraceJson(tracer),
        "trace", &gamedb::telemetry::ValidateChromeTraceJson);
    if (one != 0 && (rc == 0 || one < rc)) rc = one;
  }
  if (!opts.metrics_path.empty()) {
    int one = WriteTelemetryArtifact(
        opts.metrics_path, gamedb::telemetry::RenderTelemetryJson(registry),
        "metrics", &gamedb::telemetry::ValidateTelemetryJson);
    if (one != 0 && (rc == 0 || one < rc)) rc = one;
  }
  return rc;
}
