#pragma once

/// \file metrics.h
/// Machine-readable perf trajectory: renders a ScenarioReport as JSON with
/// a fixed key order (schema "gamedb.e15.v1"), writes the canonical
/// BENCH_e15_<scenario>.json artifact, and validates emitted files against
/// the schema (the CI scenario-smoke job runs `loadgen --validate`).
///
/// The deterministic section is rendered first and contains no timing; when
/// the run was configured with collect_timing=false the timing object is
/// omitted entirely, so the whole file is byte-identical for a fixed
/// (scenario, seed, clients, npcs, ticks) at any thread count — that file
/// equality is what the scenario-replay regression tier pins.

#include <string>

#include "common/status.h"
#include "loadgen/scenario.h"

namespace gamedb::loadgen {

/// Schema identifier stamped into (and required from) every report.
inline constexpr char kReportSchema[] = "gamedb.e15.v1";

/// Renders the report as pretty-printed JSON with deterministic key order.
std::string RenderReportJson(const ScenarioReport& report);

/// Canonical artifact name: BENCH_e15_<scenario>.json.
std::string ReportFileName(const std::string& scenario);

/// Renders and writes the report under `dir` (default: cwd). Returns the
/// path written.
Result<std::string> WriteReportFile(const ScenarioReport& report,
                                    const std::string& dir);

/// Structural schema check over a rendered report: valid JSON, schema tag
/// "gamedb.e15.v1", required config + deterministic fields with the right
/// types, and — when the timing section is present — the latency digests.
/// Returns OK or an InvalidArgument naming the first problem.
Status ValidateReportJson(const std::string& json);

}  // namespace gamedb::loadgen
