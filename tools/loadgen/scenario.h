#pragma once

/// \file scenario.h
/// The MMO scenario load harness: seed-deterministic hostile workloads
/// driven against the *full* gamedb stack — World mutations, the ScriptHost
/// parallel query phase, the cost-based planner, ViewCatalog interest-view
/// client sync, and the WAL/checkpoint persistence tier — with per-tick
/// latency histograms (p50/p99/p99.9), per-phase breakdowns and sync
/// bytes/client, serialized as machine-readable BENCH_e15_<scenario>.json
/// (metrics.h) so the perf trajectory is diffable PR-over-PR.
///
/// Paper: the tutorial's core claim is that a declarative, database-backed
/// engine can sustain massive multiplayer workloads; the Sowell et al.
/// follow-up argues the payoff shows up under rich, *shifting* query
/// workloads. The scenario library is exactly that shifting load: login
/// storms, hotspot flash crowds, mass spawn waves, churny interest-view
/// chases — not one subsystem in isolation (e01–e14), the whole tick loop.
///
/// Determinism contract (tests/loadgen, tests/stress): for a fixed
/// (scenario, seed, clients, npcs, ticks), the final world-state hash — and
/// every counter in ScenarioReport's deterministic section — is identical
/// at 1 vs N ScriptHost threads and with the planner on vs off. Latency
/// timings are observational only and never feed back into the simulation.

#include <cstdint>
#include <string>
#include <vector>

#include "common/percentile.h"
#include "common/status.h"
#include "telemetry/bundle.h"

namespace gamedb::telemetry {
class MetricsRegistry;
class Tracer;
}  // namespace gamedb::telemetry

namespace gamedb::loadgen {

/// Parameters of one scenario run. Defaults are the bench-scale
/// configuration; tests run reduced scale, the stress tier larger.
struct ScenarioConfig {
  std::string scenario = "steady_state";
  /// Simulated clients (each: an avatar entity + an interest-view synced
  /// replica). Scenario phases may connect/disconnect a subset.
  size_t clients = 32;
  /// Initial NPC population (spawn waves may grow it).
  size_t npcs = 2000;
  size_t ticks = 120;
  uint64_t seed = 2026;
  /// ScriptHost query-phase threads (also the shard count).
  size_t threads = 1;
  /// Cost-based planner on (PlannerPolicy::kOn) or off (built-in paths).
  bool planner_on = true;
  float arena = 1000.0f;
  float interest_radius = 80.0f;
  /// When false, latency histograms are not collected and the emitted JSON
  /// omits the timing section entirely — the whole report is then
  /// byte-identical for a given (scenario, seed) at any thread count (the
  /// scenario-replay regression tier asserts exactly this).
  bool collect_timing = true;
  /// Load the behavior pack under Strictness::kStrict — any error-severity
  /// finding from the GSL static verifier (script/analyzer.h) rejects the
  /// load and fails Init. The default kWarn keeps findings observable via
  /// Driver::script_diagnostics() without gating.
  bool strict_scripts = false;
  /// Tick-latency SLO targets in milliseconds; <= 0 disables that gate.
  /// Violations are recorded in the report (and fail the CLI under
  /// --enforce-slo); they never abort the run.
  double slo_p50_ms = 0.0;
  double slo_p99_ms = 0.0;
  double slo_p999_ms = 0.0;
  /// Optional telemetry taps (telemetry/registry.h, telemetry/trace.h),
  /// threaded into every subsystem the Driver builds. Non-owning; the
  /// caller (loadgen --metrics/--trace) owns them and must keep them alive
  /// across RunScenario. Telemetry is observational only — it never feeds
  /// back into the simulation, so the determinism contract above holds
  /// with or without these taps.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::Tracer* tracer = nullptr;
  /// Continuous-observability pair (PR 10): when set, the Driver samples
  /// the recorder and evaluates the watchdog at the sequential point of
  /// every tick (after persistence, before the next tick's mutations).
  /// Non-owning, same lifetime contract as metrics/tracer; observational
  /// only, so the determinism contract still holds.
  telemetry::FlightRecorder* recorder = nullptr;
  telemetry::Watchdog* watchdog = nullptr;
  /// Clear the tracer at each tick start so it only ever holds the current
  /// tick's spans — what a flight-recorder bundle wants. Mutually
  /// exclusive with whole-run --trace output (loadgen refuses both).
  bool trace_last_tick_only = false;
  /// When non-null, RunScenario turns on planner runtime collection and
  /// fills this with EXPLAIN ANALYZE text of the hottest cached plans
  /// after the tick loop — before the Driver (and its planner) is torn
  /// down, so a bundle can include them even when Finish() fails.
  std::vector<std::string>* hot_plans_out = nullptr;
};

/// Quantile digest of one latency histogram, in nanoseconds.
struct LatencySummary {
  uint64_t count = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  uint64_t max_ns = 0;
  double mean_ns = 0.0;
};

LatencySummary Summarize(const LatencyHistogram& h);

/// Everything one scenario run produced. Fields above `tick` are the
/// deterministic section (thread- and planner-invariant, timing-free);
/// the LatencySummary fields and the SLO verdict are observational.
struct ScenarioReport {
  ScenarioConfig config;

  // --- Deterministic section --------------------------------------------
  /// CRC-32C (hex) of the final world snapshot: the whole-system
  /// differential discipline of PRs 3–5 extended to scenario scale.
  std::string world_hash;
  uint64_t final_entities = 0;
  uint64_t peak_entities = 0;
  uint64_t logins = 0;
  uint64_t logouts = 0;
  uint64_t spawns = 0;
  uint64_t despawns = 0;
  uint64_t deaths = 0;
  uint64_t sync_bytes_total = 0;
  uint64_t sync_rows_total = 0;
  uint64_t sync_removals_total = 0;
  /// Σ over ticks of connected clients — the denominator of bytes/client.
  uint64_t client_ticks = 0;
  double sync_bytes_per_client_tick = 0.0;
  uint64_t script_errors = 0;
  uint64_t effect_contributions = 0;
  uint64_t deferred_ops = 0;
  uint64_t view_rounds = 0;
  uint64_t view_change_records = 0;
  /// Final membership of the two global monitoring views.
  uint64_t wounded_final = 0;
  uint64_t critical_final = 0;
  uint64_t checkpoints = 0;
  uint64_t wal_records = 0;
  /// Post-run crash-recovery check: tick a fresh Recover() restored to.
  uint64_t recovery_tick = 0;

  // --- Timing section (zeroed when !config.collect_timing) ---------------
  LatencySummary tick;           ///< whole tick (mutate+script+sync+persist)
  LatencySummary script_phase;   ///< ScriptHost parallel query fan-out
  LatencySummary view_maintain;  ///< ViewCatalog::Maintain rounds
  LatencySummary sync_phase;     ///< SyncServer::SyncAll
  LatencySummary persist_phase;  ///< PersistenceManager::OnTickEnd
  bool slo_evaluated = false;
  bool slo_violated = false;
  std::string slo_detail;
  /// One structured entry per configured SLO gate (violated or not), so
  /// breach reporting can say which metric tripped with measured vs
  /// allowed values — the same records a flight-recorder bundle embeds.
  std::vector<telemetry::SloCheck> slo_checks;
};

/// Names of every registered scenario, in registry order.
std::vector<std::string> ScenarioNames();
bool IsScenarioName(const std::string& name);
/// One-line description of a scenario ("" when unknown).
std::string ScenarioDescription(const std::string& name);

/// Bench-scale default configuration for a scenario, including its default
/// latency SLO targets. InvalidArgument on an unknown name.
Result<ScenarioConfig> DefaultConfig(const std::string& name);

/// Runs one scenario to completion. Fails only on harness-level errors
/// (unknown scenario, script load failure); script errors and SLO
/// violations are reported through the ScenarioReport.
Result<ScenarioReport> RunScenario(const ScenarioConfig& cfg);

}  // namespace gamedb::loadgen
