#include "loadgen/scenario.h"

#include <algorithm>

#include "common/macros.h"
#include "common/rng.h"
#include "loadgen/driver.h"

namespace gamedb::loadgen {

namespace {

/// One registered scenario: a name, a one-liner for --list, per-scenario
/// SLO defaults, and the per-tick mutation step. Every step draws all
/// randomness from driver.rng() and runs at the tick's sequential point.
struct Scenario {
  const char* name;
  const char* description;
  double slo_p50_ms;
  double slo_p99_ms;
  double slo_p999_ms;
  void (*step)(Driver&, uint64_t);
};

/// Logs clients in/out toward `target` connected, at most `burst` per tick.
void RampClients(Driver& d, size_t target, size_t burst) {
  size_t connected = d.connected_clients();
  for (size_t i = 0; connected < target && i < burst; ++i, ++connected) {
    d.Login();
  }
  for (size_t i = 0; connected > target && i < burst; ++i, --connected) {
    d.LogoutOne();
  }
}

// --- login_storm ------------------------------------------------------------
// Connection churn is the load: ramp everyone on in the first third (each
// login registers + populates an interest view and cold-syncs a replica),
// hold steady, then a disconnect storm down to a quarter — while the world
// itself stays comparatively calm.
void StepLoginStorm(Driver& d, uint64_t t) {
  const ScenarioConfig& cfg = d.config();
  const size_t burst = std::max<size_t>(1, cfg.clients / 8);
  if (t * 3 <= cfg.ticks) {
    RampClients(d, cfg.clients, burst);
  } else if (t * 3 <= cfg.ticks * 2) {
    RampClients(d, cfg.clients, 1);  // top up slots freed by logouts
  } else {
    RampClients(d, std::max<size_t>(1, cfg.clients / 4), burst);
  }
  d.JitterPositions(0.10, 8.0f);
  d.ChurnHealth(0.02);
  d.Retarget(0.02);
}

// --- flash_crowd ------------------------------------------------------------
// Everyone converges on one hotspot that relocates every quarter-run: the
// worst case for spatial density stats, interest-view overlap (every
// client's view covers the same crowd) and the pair-wise damage load.
void StepFlashCrowd(Driver& d, uint64_t t) {
  const ScenarioConfig& cfg = d.config();
  if (t == 1) RampClients(d, cfg.clients, cfg.clients);
  // The hotspot is a pure function of (seed, period index): every run sees
  // the same jump sequence without threading state between ticks.
  const uint64_t period = std::max<uint64_t>(1, cfg.ticks / 4);
  Rng hot(cfg.seed ^ (0x9e3779b97f4a7c15ULL * ((t - 1) / period + 1)));
  const Vec3 hotspot{hot.NextFloat(0.0f, cfg.arena), 0.0f,
                     hot.NextFloat(0.0f, cfg.arena)};
  d.MoveNpcsToward(hotspot, 25.0f, 0.8);
  for (ClientSlot& slot : d.clients()) {
    if (slot.connected) d.MoveEntityToward(slot.avatar, hotspot, 20.0f);
  }
  d.ChurnHealth(0.03);
  d.Retarget(0.05);
}

// --- spawn_wave -------------------------------------------------------------
// Mass spawn waves with trailing despawns: the entity allocator, change
// capture `added`/`removed` coalescing, view (re)entries and replica
// removals all churn; population breathes between 1× and ~1.6× npcs.
void StepSpawnWave(Driver& d, uint64_t t) {
  const ScenarioConfig& cfg = d.config();
  if (t == 1) RampClients(d, cfg.clients, cfg.clients);
  const size_t wave = std::max<size_t>(1, cfg.npcs / 8);
  if (t % 8 == 2) {
    for (size_t i = 0; i < wave; ++i) d.SpawnNpc();
  }
  if (t % 8 == 6 && d.npcs().size() > cfg.npcs) {
    d.DespawnNpcs(wave);
  }
  d.JitterPositions(0.15, 10.0f);
  d.ChurnHealth(0.03);
  d.Retarget(0.03);
}

// --- chase ------------------------------------------------------------------
// The aggro/chase workload: every avatar sprints after a fleeing quarry, so
// every client's interest-view center moves every tick — per-tick Recenter
// repopulations at full client count, the ROADMAP's annulus-delta gap made
// measurable.
void StepChase(Driver& d, uint64_t t) {
  const ScenarioConfig& cfg = d.config();
  if (t == 1) RampClients(d, cfg.clients, cfg.clients);
  std::vector<ClientSlot>& clients = d.clients();
  d.scratch.resize(clients.size(), EntityId::Invalid());
  for (size_t i = 0; i < clients.size(); ++i) {
    if (!clients[i].connected || !d.world().Alive(clients[i].avatar)) continue;
    EntityId quarry = d.scratch[i];
    if (!d.world().Alive(quarry)) {
      quarry = d.RandomLiveNpc();
      d.scratch[i] = quarry;
    }
    if (!quarry.valid()) continue;
    const Position* qp = d.world().Get<Position>(quarry);
    const Position* ap = d.world().Get<Position>(clients[i].avatar);
    if (qp == nullptr || ap == nullptr) continue;
    // Quarry flees directly away from its hunter; hunter closes at higher
    // speed, so catches happen and a new quarry is picked.
    Vec3 flee{qp->value.x * 2.0f - ap->value.x, 0.0f,
              qp->value.z * 2.0f - ap->value.z};
    d.MoveEntityToward(quarry, flee, 12.0f);
    d.MoveEntityToward(clients[i].avatar, qp->value, 16.0f);
    const Position* qp2 = d.world().Get<Position>(quarry);
    const Position* ap2 = d.world().Get<Position>(clients[i].avatar);
    if (qp2 != nullptr && ap2 != nullptr &&
        qp2->value.DistanceSquaredTo(ap2->value) < 4.0f) {
      d.scratch[i] = EntityId::Invalid();  // caught; pick a new quarry
    }
  }
  d.JitterPositions(0.10, 6.0f);
  d.ChurnHealth(0.02);
  d.Retarget(0.02);
}

// --- steady_state -----------------------------------------------------------
// The mixed background workload every other scenario deviates from: modest
// movement, health churn, retargeting, a trickle of spawns/despawns and
// connection churn, all at once.
void StepSteadyState(Driver& d, uint64_t t) {
  const ScenarioConfig& cfg = d.config();
  if (t == 1) RampClients(d, cfg.clients, cfg.clients);
  d.JitterPositions(0.20, 10.0f);
  d.ChurnHealth(0.05);
  d.Retarget(0.03);
  if (d.rng().NextBool(0.25)) d.SpawnNpc();
  if (d.rng().NextBool(0.25)) d.DespawnNpcs(1);
  if (d.rng().NextBool(0.05)) d.LogoutOne();
  if (d.rng().NextBool(0.05) && d.connected_clients() < cfg.clients) {
    d.Login();
  }
}

constexpr Scenario kScenarios[] = {
    {"login_storm",
     "connection churn: interest-view registration/teardown storms",
     20.0, 60.0, 200.0, StepLoginStorm},
    // flash_crowd's targets are looser than the rest: with every client and
    // npc converging on one bubble, interest sets approach the whole world
    // and sync volume is ~100x login_storm's (see docs/BASELINES.md).
    {"flash_crowd",
     "hotspot convergence: every entity and client piles onto one bubble",
     60.0, 120.0, 300.0, StepFlashCrowd},
    {"spawn_wave",
     "mass spawn/despawn waves: allocator + change-capture churn",
     20.0, 60.0, 200.0, StepSpawnWave},
    {"chase",
     "per-tick interest recenters: every avatar chases a fleeing quarry",
     25.0, 80.0, 250.0, StepChase},
    {"steady_state",
     "mixed background load: movement, churn, trickle spawns and logins",
     15.0, 50.0, 150.0, StepSteadyState},
};

const Scenario* FindScenario(const std::string& name) {
  for (const Scenario& s : kScenarios) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> ScenarioNames() {
  std::vector<std::string> names;
  for (const Scenario& s : kScenarios) names.emplace_back(s.name);
  return names;
}

bool IsScenarioName(const std::string& name) {
  return FindScenario(name) != nullptr;
}

std::string ScenarioDescription(const std::string& name) {
  const Scenario* s = FindScenario(name);
  return s != nullptr ? s->description : "";
}

Result<ScenarioConfig> DefaultConfig(const std::string& name) {
  const Scenario* s = FindScenario(name);
  if (s == nullptr) {
    return Status::InvalidArgument("unknown scenario: " + name);
  }
  ScenarioConfig cfg;
  cfg.scenario = s->name;
  cfg.slo_p50_ms = s->slo_p50_ms;
  cfg.slo_p99_ms = s->slo_p99_ms;
  cfg.slo_p999_ms = s->slo_p999_ms;
  return cfg;
}

Result<ScenarioReport> RunScenario(const ScenarioConfig& cfg) {
  const Scenario* s = FindScenario(cfg.scenario);
  if (s == nullptr) {
    return Status::InvalidArgument("unknown scenario: " + cfg.scenario);
  }
  Driver driver(cfg);
  GAMEDB_RETURN_NOT_OK(driver.Init());
  for (uint64_t t = 1; t <= cfg.ticks; ++t) {
    GAMEDB_RETURN_NOT_OK(driver.Tick(t, [&](Driver& d, uint64_t tick) {
      s->step(d, tick);
    }));
  }
  // Hot plans are harvested before Finish: the recovery differential can
  // fail Finish, and the diagnostic bundle wants the plans precisely then.
  if (cfg.hot_plans_out != nullptr) {
    *cfg.hot_plans_out = driver.planner().HottestPlans(5);
  }
  return driver.Finish();
}

}  // namespace gamedb::loadgen
