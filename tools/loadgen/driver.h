#pragma once

/// \file driver.h
/// The scenario driver: owns one full-stack shard (World + QueryPlanner +
/// ViewCatalog + ScriptHost + interest-view SyncServer + WAL/checkpoint
/// PersistenceManager) and exposes the deterministic mutation vocabulary
/// scenarios are written in (login/logout, spawn/despawn waves, movement,
/// health churn, retargeting).
///
/// Every stochastic decision flows through one Rng seeded from
/// ScenarioConfig::seed, and every mutation runs at the sequential point of
/// the tick (before the parallel script phase), so a scenario is a pure
/// function of its config — the replay-determinism property the regression
/// tier asserts. See scenario.h for the public entry points.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/world.h"
#include "loadgen/scenario.h"
#include "persist/manager.h"
#include "persist/storage.h"
#include "planner/planner.h"
#include "replication/sync.h"
#include "script/host.h"
#include "views/maintainer.h"

namespace gamedb::loadgen {

/// One simulated client slot.
struct ClientSlot {
  size_t sync_index = 0;  ///< index in the SyncServer
  EntityId avatar;
  bool connected = false;
};

class Driver {
 public:
  explicit Driver(const ScenarioConfig& cfg);
  ~Driver();
  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  /// Builds the stack, loads the behavior script, registers the global
  /// monitoring views and spawns the initial population + clients.
  Status Init();

  /// Runs one tick: sequential scenario mutations via `step`, then the
  /// scripted parallel phase (planner quiescent hook + view maintenance +
  /// query fan-out + apply), then client sync and persistence. Latency is
  /// recorded when the config asks for timing.
  Status Tick(uint64_t t,
              const std::function<void(Driver&, uint64_t)>& step);

  /// Final report: world hash, counters, quantile digests, SLO verdict,
  /// and the post-run recovery check.
  Result<ScenarioReport> Finish();

  // --- Scenario mutation vocabulary (sequential point only) ---------------

  /// Connects a new client: spawns an avatar and registers it with the
  /// sync server (kInterestView: registers + populates its interest view).
  size_t Login();
  /// Disconnects an rng-chosen connected client and despawns its avatar.
  /// No-op when none are connected.
  void LogoutOne();
  EntityId SpawnNpc();
  /// Despawns up to `n` oldest live NPCs; returns how many died.
  size_t DespawnNpcs(size_t n);
  /// Tracked position jitter on ~fraction of live NPCs.
  void JitterPositions(double fraction, float amplitude);
  /// Tracked hp rewrites on ~fraction of live NPCs.
  void ChurnHealth(double fraction);
  /// Points ~fraction of live NPCs' Combat.target at other live NPCs.
  void Retarget(double fraction);
  /// Moves ~fraction of live NPCs `step` units toward `target`.
  void MoveNpcsToward(const Vec3& target, float step, double fraction);
  void MoveEntityToward(EntityId e, const Vec3& target, float step);

  // --- State scenarios read ----------------------------------------------

  const ScenarioConfig& config() const { return cfg_; }
  World& world() { return world_; }
  Rng& rng() { return rng_; }
  size_t connected_clients() const;
  std::vector<ClientSlot>& clients() { return clients_; }
  std::vector<EntityId>& npcs() { return npcs_; }
  /// A live NPC chosen by rng, or Invalid when none are left.
  EntityId RandomLiveNpc();
  /// Static-verifier findings from the behavior-pack load (host Load runs
  /// the GSL verifier; see ScriptHostOptions::strictness). Valid after
  /// Init().
  const script::DiagnosticSink& script_diagnostics() const {
    return host_->diagnostics();
  }
  /// The shard's planner (EXPLAIN ANALYZE of hot plans for bundles).
  planner::QueryPlanner& planner() { return planner_; }
  Vec3 RandomPoint();
  /// Per-scenario scratch (e.g. chase quarry assignments).
  std::vector<EntityId> scratch;

 private:
  void SpawnAvatarComponents(EntityId e);
  void CountEntities();

  ScenarioConfig cfg_;
  World world_;
  Rng rng_;
  planner::QueryPlanner planner_;
  views::ViewCatalog catalog_;
  std::unique_ptr<script::ScriptHost> host_;
  persist::MemStorage storage_;
  std::unique_ptr<persist::PersistenceManager> persistence_;
  std::unique_ptr<replication::SyncServer> sync_;

  std::vector<ClientSlot> clients_;
  std::vector<EntityId> npcs_;
  std::vector<replication::SyncStats> sync_scratch_;

  // Deterministic counters.
  uint64_t logins_ = 0, logouts_ = 0, spawns_ = 0, despawns_ = 0;
  uint64_t deaths_ = 0;
  uint64_t peak_entities_ = 0;
  uint64_t sync_bytes_ = 0, sync_rows_ = 0, sync_removals_ = 0;
  uint64_t client_ticks_ = 0;
  uint64_t script_errors_ = 0, effect_contributions_ = 0, deferred_ops_ = 0;
  Status first_script_error_ = Status::OK();

  // Latency accumulators (unused when !cfg_.collect_timing).
  LatencyHistogram tick_hist_, script_hist_, maintain_hist_, sync_hist_,
      persist_hist_;

  // Harness-level registry instruments (null without a metrics sink); the
  // per-tick series the watchdog's default SLO rules are written against.
  telemetry::Histogram* m_tick_ns_ = nullptr;
  telemetry::Histogram* m_script_ns_ = nullptr;
  telemetry::Histogram* m_sync_ns_ = nullptr;
  telemetry::Histogram* m_persist_ns_ = nullptr;
  telemetry::Counter* m_sync_bytes_ = nullptr;
  telemetry::Gauge* m_entities_ = nullptr;
  telemetry::Gauge* m_clients_ = nullptr;
};

}  // namespace gamedb::loadgen
