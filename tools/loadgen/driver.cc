#include "loadgen/driver.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/crc32.h"
#include "common/percentile.h"
#include "core/serialize.h"
#include "loadgen_combat_gsl.h"
#include "telemetry/sink.h"

namespace gamedb::loadgen {

namespace {

// The per-entity behavior every scenario runs through the parallel script
// phase ships as assets/scripts/loadgen_combat.gsl, embedded at build time
// (cmake/EmbedGsl.cmake) as kLoadgenCombatScript.

uint64_t HashSnapshot(const World& world) {
  std::string snapshot;
  EncodeWorldSnapshot(world, &snapshot);
  return Crc32c(snapshot.data(), snapshot.size());
}

std::string HashHex(uint64_t h) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08" PRIx64, h);
  return buf;
}

}  // namespace

LatencySummary Summarize(const LatencyHistogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.p50_ns = h.Percentile(50.0);
  s.p99_ns = h.Percentile(99.0);
  s.p999_ns = h.Percentile(99.9);
  s.max_ns = h.max();
  s.mean_ns = h.mean();
  return s;
}

static telemetry::TelemetrySink MakeSink(const ScenarioConfig& cfg) {
  telemetry::TelemetrySink sink;
  sink.metrics = cfg.metrics;
  sink.tracer = cfg.tracer;
  sink.recorder = cfg.recorder;
  sink.watchdog = cfg.watchdog;
  return sink;
}

static planner::PlannerOptions MakePlannerOptions(const ScenarioConfig& cfg) {
  planner::PlannerOptions opts;
  opts.policy = cfg.planner_on ? planner::PlannerPolicy::kOn
                               : planner::PlannerPolicy::kOff;
  opts.telemetry = MakeSink(cfg);
  return opts;
}

Driver::Driver(const ScenarioConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      planner_(&world_, MakePlannerOptions(cfg)),
      catalog_(&world_, &planner_) {
  catalog_.SetTelemetry(MakeSink(cfg));
}

Driver::~Driver() = default;

Status Driver::Init() {
  RegisterStandardComponents();

  // Harness-level instruments: the tick-loop latencies and populations the
  // watchdog's default SLO rules watch (loadgen.tick_ns:p99 etc.). The
  // subsystems feed their own instruments through the sinks below.
  if (cfg_.metrics != nullptr) {
    m_tick_ns_ = cfg_.metrics->GetHistogram("loadgen.tick_ns");
    m_script_ns_ = cfg_.metrics->GetHistogram("loadgen.script_ns");
    m_sync_ns_ = cfg_.metrics->GetHistogram("loadgen.sync_ns");
    m_persist_ns_ = cfg_.metrics->GetHistogram("loadgen.persist_ns");
    m_sync_bytes_ = cfg_.metrics->GetCounter("loadgen.sync_bytes");
    m_entities_ = cfg_.metrics->GetGauge("loadgen.entities");
    m_clients_ = cfg_.metrics->GetGauge("loadgen.clients");
  }
  // EXPLAIN ANALYZE needs runtime collection; bundles ask for it via
  // hot_plans_out. Row counting is observational — determinism holds.
  if (cfg_.hot_plans_out != nullptr) planner_.SetCollectRuntime(true);

  // Initial NPC population.
  for (size_t i = 0; i < cfg_.npcs; ++i) SpawnNpc();
  planner_.Analyze();

  // Global monitoring views: the scripted behavior reads
  // `loadgen_wounded` every entity-tick; `loadgen_critical` carries a
  // maintained aggregate so the aggregate-maintenance path is also under
  // load. Final memberships land in the deterministic report section.
  views::ViewDef wounded;
  wounded.name = "loadgen_wounded";
  wounded.where = {{"Health", "hp", CmpOp::kLt, 30.0}};
  GAMEDB_RETURN_NOT_OK(catalog_.Register(std::move(wounded)).status());
  views::ViewDef critical;
  critical.name = "loadgen_critical";
  critical.where = {{"Health", "hp", CmpOp::kLt, 10.0}};
  critical.aggregate = views::AggKind::kAvg;
  critical.agg_component = "Health";
  critical.agg_field = "hp";
  GAMEDB_RETURN_NOT_OK(catalog_.Register(std::move(critical)).status());

  // Interest-view client replication.
  replication::SyncOptions sopts;
  sopts.strategy = replication::SyncStrategy::kInterestView;
  sopts.interest_radius = cfg_.interest_radius;
  sopts.view_catalog = &catalog_;
  sopts.telemetry = MakeSink(cfg_);
  sync_ = std::make_unique<replication::SyncServer>(&world_, sopts);

  // WAL + checkpoint persistence (importance-aware policy, as the
  // mmo_shard example wires it).
  persist::PersistenceOptions popts;
  popts.mode = persist::DurabilityMode::kWalAndCheckpoint;
  popts.telemetry = MakeSink(cfg_);
  persistence_ = std::make_unique<persist::PersistenceManager>(
      &storage_,
      std::make_unique<persist::HybridPolicy>(/*max_interval_ticks=*/25,
                                              /*accumulate_threshold=*/60.0,
                                              /*urgent_threshold=*/40.0),
      popts);

  // Parallel scripted behavior.
  script::ScriptHostOptions hopts;
  hopts.num_threads = cfg_.threads;
  hopts.planner = &planner_;
  hopts.views = &catalog_;
  hopts.interpreter.rng_seed = cfg_.seed ^ 0x5ca1ab1eULL;
  hopts.telemetry = MakeSink(cfg_);
  if (cfg_.strict_scripts) hopts.strictness = script::Strictness::kStrict;
  host_ = std::make_unique<script::ScriptHost>(&world_, hopts);
  host_->OnChannel("damage", [this](EntityId e, double total) {
    bool dead = false;
    world_.Patch<Health>(e, [&](Health& h) {
      h.hp -= static_cast<float>(total);
      dead = h.hp <= 0.0f;
    });
    if (dead) {
      world_.Destroy(e);
      ++deaths_;
    }
  });
  host_->OnChannel("regen", [this](EntityId e, double total) {
    world_.Patch<Health>(e, [&](Health& h) {
      h.hp = std::min(h.hp + static_cast<float>(total), h.max_hp);
    });
  });
  return host_->Load(kLoadgenCombatScript, kLoadgenCombatScriptName);
}

Status Driver::Tick(uint64_t t,
                    const std::function<void(Driver&, uint64_t)>& step) {
  // Flight-recorder mode keeps only the current tick's spans, so a bundle
  // cut at tick T shows exactly tick T's phase breakdown.
  if (cfg_.trace_last_tick_only && cfg_.tracer != nullptr) {
    cfg_.tracer->Clear();
  }
  telemetry::TraceSpan tick_span(cfg_.tracer, "tick");
  const uint64_t tick_t0 = MonotonicNanos();
  world_.AdvanceTick();

  // 1. Sequential scenario mutations (hostile load shape).
  step(*this, t);

  // 2. Parallel scripted query phase (planner quiescent hook + view
  //    maintenance run at its sequential point).
  auto stats = host_->RunTickOver("tick", "Combat");
  GAMEDB_RETURN_NOT_OK(stats.status());
  script_errors_ += stats->script_errors;
  if (stats->script_errors > 0 && first_script_error_.ok()) {
    first_script_error_ = stats->first_error;
  }
  effect_contributions_ += stats->effect_contributions;
  deferred_ops_ += stats->deferred_ops;

  // 3. Game events feed the checkpoint policy (and the WAL). The periodic
  //    autosave mark guarantees a WAL-traffic floor even on an rng stream
  //    that never rolls an organic event (short runs do hit that).
  if (t % 10 == 0) {
    GAMEDB_RETURN_NOT_OK(
        persistence_->OnEvent(world_.tick(), 1.0, "autosave_mark"));
  }
  if (rng_.NextBool(0.02)) {
    GAMEDB_RETURN_NOT_OK(
        persistence_->OnEvent(world_.tick(), 50.0, "boss_kill"));
  } else if (rng_.NextBool(0.2)) {
    GAMEDB_RETURN_NOT_OK(
        persistence_->OnEvent(world_.tick(), 1.0, "quest_step"));
  }

  // 4. Interest-view client sync (second maintenance round + recenters).
  const uint64_t sync_t0 = MonotonicNanos();
  GAMEDB_RETURN_NOT_OK(sync_->SyncAll(&sync_scratch_));
  const uint64_t sync_ns = MonotonicNanos() - sync_t0;
  for (const auto& s : sync_scratch_) {
    sync_bytes_ += s.bytes_sent;
    sync_rows_ += s.rows_sent;
    sync_removals_ += s.removals_sent;
  }
  client_ticks_ += sync_->connected_count();

  // 5. Persistence.
  const uint64_t persist_t0 = MonotonicNanos();
  GAMEDB_RETURN_NOT_OK(persistence_->OnTickEnd(world_).status());
  const uint64_t persist_ns = MonotonicNanos() - persist_t0;

  CountEntities();

  const uint64_t tick_ns = MonotonicNanos() - tick_t0;
  if (cfg_.collect_timing) {
    tick_hist_.Record(tick_ns);
    script_hist_.Record(stats->query_phase_ns);
    maintain_hist_.Record(stats->maintain_ns);
    // The sync round's maintenance (flush + recenter routing) is the
    // catalog's most recent round.
    maintain_hist_.Record(catalog_.stats().last_round_ns);
    sync_hist_.Record(sync_ns);
    persist_hist_.Record(persist_ns);
  }

  // 6. Continuous observability at the sequential point: feed the
  //    harness-level instruments, sample the flight recorder, evaluate the
  //    watchdog. All observational — nothing here feeds the simulation.
  if (m_tick_ns_ != nullptr) m_tick_ns_->Record(tick_ns);
  if (m_script_ns_ != nullptr) m_script_ns_->Record(stats->query_phase_ns);
  if (m_sync_ns_ != nullptr) m_sync_ns_->Record(sync_ns);
  if (m_persist_ns_ != nullptr) m_persist_ns_->Record(persist_ns);
  if (m_sync_bytes_ != nullptr) {
    uint64_t tick_sync_bytes = 0;
    for (const auto& s : sync_scratch_) tick_sync_bytes += s.bytes_sent;
    m_sync_bytes_->Add(tick_sync_bytes);
  }
  if (m_entities_ != nullptr) {
    m_entities_->Set(static_cast<int64_t>(world_.AliveCount()));
  }
  if (m_clients_ != nullptr) {
    m_clients_->Set(static_cast<int64_t>(sync_->connected_count()));
  }
  if (cfg_.recorder != nullptr) cfg_.recorder->Sample(t);
  if (cfg_.watchdog != nullptr) {
    for (const std::string& rule : cfg_.watchdog->Evaluate(t)) {
      std::fprintf(stderr, "loadgen: watchdog TRIPPED at tick %llu: %s\n",
                   static_cast<unsigned long long>(t), rule.c_str());
    }
  }
  return Status::OK();
}

Result<ScenarioReport> Driver::Finish() {
  ScenarioReport r;
  r.config = cfg_;

  const uint64_t final_hash = HashSnapshot(world_);
  r.world_hash = HashHex(final_hash);
  r.final_entities = world_.AliveCount();
  r.peak_entities = peak_entities_;
  r.logins = logins_;
  r.logouts = logouts_;
  r.spawns = spawns_;
  r.despawns = despawns_;
  r.deaths = deaths_;
  r.sync_bytes_total = sync_bytes_;
  r.sync_rows_total = sync_rows_;
  r.sync_removals_total = sync_removals_;
  r.client_ticks = client_ticks_;
  r.sync_bytes_per_client_tick =
      client_ticks_ == 0
          ? 0.0
          : static_cast<double>(sync_bytes_) / static_cast<double>(client_ticks_);
  r.script_errors = script_errors_;
  if (script_errors_ > 0) {
    return Status::Aborted("scenario script errors: " +
                           first_script_error_.ToString());
  }
  r.effect_contributions = effect_contributions_;
  r.deferred_ops = deferred_ops_;
  r.view_rounds = catalog_.stats().rounds;
  r.view_change_records = catalog_.stats().change_records;
  const views::LiveView* wounded = catalog_.Find("loadgen_wounded");
  const views::LiveView* critical = catalog_.Find("loadgen_critical");
  r.wounded_final = wounded != nullptr ? wounded->size() : 0;
  r.critical_final = critical != nullptr ? critical->size() : 0;
  r.checkpoints = persistence_->metrics().checkpoints;
  r.wal_records = persistence_->metrics().wal_records;

  // Post-run crash-recovery differential: force a final checkpoint, recover
  // into a fresh world, and require the recovered snapshot to hash
  // identically — the persistence tier must round-trip scenario-scale state.
  GAMEDB_RETURN_NOT_OK(persistence_->ForceCheckpoint(world_));
  World recovered;
  GAMEDB_ASSIGN_OR_RETURN(persist::RecoveryOutcome outcome,
                          persist::PersistenceManager::Recover(storage_,
                                                               &recovered));
  r.recovery_tick = outcome.recovered_tick;
  if (HashSnapshot(recovered) != final_hash) {
    return Status::Corruption("recovered world hash differs from live world");
  }

  if (cfg_.collect_timing) {
    r.tick = Summarize(tick_hist_);
    r.script_phase = Summarize(script_hist_);
    r.view_maintain = Summarize(maintain_hist_);
    r.sync_phase = Summarize(sync_hist_);
    r.persist_phase = Summarize(persist_hist_);

    auto check = [&](const char* name, double target_ms, uint64_t got_ns) {
      if (target_ms <= 0.0) return;
      r.slo_evaluated = true;
      double got_ms = static_cast<double>(got_ns) / 1e6;
      telemetry::SloCheck sc;
      sc.name = name;
      sc.target_ms = target_ms;
      sc.measured_ms = got_ms;
      sc.violated = got_ms > target_ms;
      r.slo_checks.push_back(sc);
      if (got_ms > target_ms) {
        r.slo_violated = true;
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s %.3fms > target %.3fms; ", name,
                      got_ms, target_ms);
        r.slo_detail += buf;
      }
    };
    check("tick_p50", cfg_.slo_p50_ms, r.tick.p50_ns);
    check("tick_p99", cfg_.slo_p99_ms, r.tick.p99_ns);
    check("tick_p999", cfg_.slo_p999_ms, r.tick.p999_ns);
  }
  return r;
}

// --- Mutation vocabulary ----------------------------------------------------

void Driver::SpawnAvatarComponents(EntityId e) {
  world_.Set(e, Position{RandomPoint()});
  world_.Set(e, Health{100.0f, 100.0f});
  Combat c;
  c.attack = 2.0f;
  c.range = 8.0f;
  world_.Set(e, c);
  Actor a;
  a.account_id = static_cast<int64_t>(logins_);
  a.is_player = true;
  world_.Set(e, a);
}

size_t Driver::Login() {
  EntityId avatar = world_.Create();
  SpawnAvatarComponents(avatar);
  ClientSlot slot;
  slot.avatar = avatar;
  slot.connected = true;
  slot.sync_index = sync_->AddClient(avatar);
  clients_.push_back(slot);
  ++logins_;
  return clients_.size() - 1;
}

void Driver::LogoutOne() {
  // rng-chosen among connected, scanning from an rng start for
  // determinism without building a temporary index.
  if (clients_.empty()) return;
  size_t n = clients_.size();
  size_t start = static_cast<size_t>(rng_.NextBounded(n));
  for (size_t k = 0; k < n; ++k) {
    ClientSlot& slot = clients_[(start + k) % n];
    if (!slot.connected) continue;
    sync_->RemoveClient(slot.sync_index);
    if (world_.Alive(slot.avatar)) world_.Destroy(slot.avatar);
    slot.connected = false;
    ++logouts_;
    return;
  }
}

EntityId Driver::SpawnNpc() {
  EntityId e = world_.Create();
  world_.Set(e, Position{RandomPoint()});
  world_.Set(e, Health{rng_.NextFloat(40.0f, 100.0f), 100.0f});
  Combat c;
  c.attack = rng_.NextFloat(1.0f, 4.0f);
  c.range = 6.0f;
  world_.Set(e, c);
  world_.Set(e, Faction{static_cast<int32_t>(spawns_ % 4)});
  npcs_.push_back(e);
  ++spawns_;
  return e;
}

size_t Driver::DespawnNpcs(size_t n) {
  size_t killed = 0;
  size_t scan = 0;
  while (killed < n && scan < npcs_.size()) {
    EntityId e = npcs_[scan++];
    if (!world_.Alive(e)) continue;
    world_.Destroy(e);
    ++killed;
    ++despawns_;
  }
  if (scan > 0) npcs_.erase(npcs_.begin(), npcs_.begin() + scan);
  return killed;
}

void Driver::JitterPositions(double fraction, float amplitude) {
  for (EntityId e : npcs_) {
    if (!world_.Alive(e) || !rng_.NextBool(fraction)) continue;
    world_.Patch<Position>(e, [&](Position& p) {
      p.value.x = std::clamp(p.value.x + rng_.NextFloat(-amplitude, amplitude),
                             0.0f, cfg_.arena);
      p.value.z = std::clamp(p.value.z + rng_.NextFloat(-amplitude, amplitude),
                             0.0f, cfg_.arena);
    });
  }
}

void Driver::ChurnHealth(double fraction) {
  for (EntityId e : npcs_) {
    if (!world_.Alive(e) || !rng_.NextBool(fraction)) continue;
    world_.Patch<Health>(e, [&](Health& h) {
      h.hp = rng_.NextFloat(5.0f, 100.0f);
    });
  }
}

void Driver::Retarget(double fraction) {
  for (EntityId e : npcs_) {
    if (!world_.Alive(e) || !rng_.NextBool(fraction)) continue;
    EntityId target = RandomLiveNpc();
    if (target == e || !target.valid()) continue;
    world_.Patch<Combat>(e, [&](Combat& c) { c.target = target; });
  }
}

void Driver::MoveNpcsToward(const Vec3& target, float step, double fraction) {
  for (EntityId e : npcs_) {
    if (!world_.Alive(e) || !rng_.NextBool(fraction)) continue;
    MoveEntityToward(e, target, step);
  }
}

void Driver::MoveEntityToward(EntityId e, const Vec3& target, float step) {
  if (!world_.Alive(e)) return;
  world_.Patch<Position>(e, [&](Position& p) {
    Vec3 d{target.x - p.value.x, 0.0f, target.z - p.value.z};
    float len = std::sqrt(d.x * d.x + d.z * d.z);
    if (len < 1e-3f) return;
    float s = std::min(step, len) / len;
    p.value.x = std::clamp(p.value.x + d.x * s, 0.0f, cfg_.arena);
    p.value.z = std::clamp(p.value.z + d.z * s, 0.0f, cfg_.arena);
  });
}

size_t Driver::connected_clients() const {
  return sync_ != nullptr ? sync_->connected_count() : 0;
}

EntityId Driver::RandomLiveNpc() {
  if (npcs_.empty()) return EntityId::Invalid();
  // Bounded rejection scan: deterministic, and cheap as long as most of the
  // pool is alive (despawn compacts the dead prefix).
  for (int tries = 0; tries < 8; ++tries) {
    EntityId e = npcs_[rng_.NextBounded(npcs_.size())];
    if (world_.Alive(e)) return e;
  }
  return EntityId::Invalid();
}

Vec3 Driver::RandomPoint() {
  return {rng_.NextFloat(0.0f, cfg_.arena), 0.0f,
          rng_.NextFloat(0.0f, cfg_.arena)};
}

void Driver::CountEntities() {
  peak_entities_ = std::max(peak_entities_,
                            static_cast<uint64_t>(world_.AliveCount()));
}

}  // namespace gamedb::loadgen
