// Cross-index differential test: the planner chooses freely among the four
// spatial indexes (and the three pair-join algorithms), which is only sound
// if they agree on every answer. Randomized insert/update/remove workloads
// followed by randomized range, radius and proximity-pair queries assert
// exactly that: identical result sets everywhere.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "spatial/kdbsp_tree.h"
#include "spatial/linear_scan.h"
#include "spatial/loose_octree.h"
#include "spatial/pair_join.h"
#include "spatial/uniform_grid.h"

namespace gamedb::spatial {
namespace {

constexpr float kArea = 400.0f;

std::vector<std::unique_ptr<SpatialIndex>> MakeAllIndexes() {
  std::vector<std::unique_ptr<SpatialIndex>> out;
  out.push_back(std::make_unique<LinearScan>());
  out.push_back(std::make_unique<UniformGrid>(UniformGridOptions{25.0f}));
  out.push_back(std::make_unique<KdBspTree>());
  LooseOctreeOptions octree;
  octree.world_bounds = Aabb{{-50, -50, -50}, {kArea + 50, 50, kArea + 50}};
  out.push_back(std::make_unique<LooseOctree>(octree));
  return out;
}

std::vector<uint64_t> SortedRangeHits(const SpatialIndex& index,
                                      const Aabb& range) {
  std::vector<uint64_t> hits;
  index.QueryRange(range, [&](EntityId e, const Aabb&) {
    hits.push_back(e.Raw());
  });
  std::sort(hits.begin(), hits.end());
  return hits;
}

std::vector<uint64_t> SortedRadiusHits(const SpatialIndex& index,
                                       const Vec3& center, float radius) {
  std::vector<uint64_t> hits;
  index.QueryRadius(center, radius, [&](EntityId e, const Aabb&) {
    hits.push_back(e.Raw());
  });
  std::sort(hits.begin(), hits.end());
  return hits;
}

TEST(IndexDifferentialTest, RandomizedWorkloadIdenticalAcrossAllIndexes) {
  Rng rng(2009);
  auto indexes = MakeAllIndexes();

  // Mutation phase: inserts, then a mix of updates and removes, mirrored
  // into every index.
  std::vector<std::pair<EntityId, Aabb>> live;
  for (uint32_t i = 0; i < 600; ++i) {
    Vec3 p{rng.NextFloat(0, kArea), rng.NextFloat(-5, 5),
           rng.NextFloat(0, kArea)};
    Aabb box = Aabb::FromPoint(p).Inflated(rng.NextFloat(0.1f, 3.0f));
    EntityId e(i, 1);
    live.emplace_back(e, box);
    for (auto& index : indexes) index->Insert(e, box);
  }
  for (int step = 0; step < 400; ++step) {
    size_t pick = rng.NextBounded(live.size());
    if (step % 3 == 0 && live.size() > 50) {
      for (auto& index : indexes) {
        EXPECT_TRUE(index->Remove(live[pick].first));
      }
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      Vec3 p{rng.NextFloat(0, kArea), rng.NextFloat(-5, 5),
             rng.NextFloat(0, kArea)};
      Aabb box = Aabb::FromPoint(p).Inflated(rng.NextFloat(0.1f, 3.0f));
      live[pick].second = box;
      for (auto& index : indexes) index->Update(live[pick].first, box);
    }
  }
  for (auto& index : indexes) {
    EXPECT_EQ(index->Size(), live.size()) << index->Name();
  }

  // Query phase: random ranges and radii, all four must agree.
  for (int qi = 0; qi < 60; ++qi) {
    Vec3 c{rng.NextFloat(0, kArea), 0, rng.NextFloat(0, kArea)};
    Aabb range = Aabb::FromPoint(c).Inflated(rng.NextFloat(5.0f, 60.0f));
    auto expected = SortedRangeHits(*indexes[0], range);
    for (size_t k = 1; k < indexes.size(); ++k) {
      EXPECT_EQ(SortedRangeHits(*indexes[k], range), expected)
          << indexes[k]->Name() << " range query " << qi;
    }
    float radius = rng.NextFloat(5.0f, 60.0f);
    auto expected_r = SortedRadiusHits(*indexes[0], c, radius);
    for (size_t k = 1; k < indexes.size(); ++k) {
      EXPECT_EQ(SortedRadiusHits(*indexes[k], c, radius), expected_r)
          << indexes[k]->Name() << " radius query " << qi;
    }
  }
}

std::set<std::pair<uint64_t, uint64_t>> PairSet(
    PairAlgo algo, const std::vector<PointEntry>& points, float max_dist) {
  std::set<std::pair<uint64_t, uint64_t>> pairs;
  RunPairs(algo, points, max_dist,
           [&](const PointEntry& a, const PointEntry& b) {
             EXPECT_LT(a.id.Raw(), b.id.Raw());
             auto [it, inserted] =
                 pairs.emplace(a.id.Raw(), b.id.Raw());
             EXPECT_TRUE(inserted) << "duplicate pair from "
                                   << PairAlgoName(algo);
           });
  return pairs;
}

TEST(IndexDifferentialTest, PairJoinAlgorithmsProduceIdenticalPairSets) {
  Rng rng(77);
  for (float radius : {3.0f, 12.0f, 45.0f}) {
    std::vector<PointEntry> points;
    for (uint32_t i = 0; i < 500; ++i) {
      points.push_back(PointEntry{
          EntityId(i, 2),
          {rng.NextFloat(0, kArea), 0, rng.NextFloat(0, kArea)}});
    }
    auto nested = PairSet(PairAlgo::kNestedLoop, points, radius);
    auto grid = PairSet(PairAlgo::kGrid, points, radius);
    auto indexed = PairSet(PairAlgo::kIndexed, points, radius);
    EXPECT_EQ(nested, grid) << "grid vs nested at r=" << radius;
    EXPECT_EQ(nested, indexed) << "indexed vs nested at r=" << radius;
    EXPECT_FALSE(nested.empty()) << "degenerate workload at r=" << radius;
  }
}

}  // namespace
}  // namespace gamedb::spatial
