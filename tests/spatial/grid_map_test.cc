#include "spatial/grid_map.h"

#include <gtest/gtest.h>

namespace gamedb::spatial {
namespace {

TEST(GridMapTest, FromAsciiParsesFlags) {
  auto r = GridMap::FromAscii({
      "####",
      "#.D#",
      "#CH#",
      "####",
  });
  ASSERT_TRUE(r.ok());
  const GridMap& map = *r;
  EXPECT_EQ(map.width(), 4);
  EXPECT_EQ(map.height(), 4);
  EXPECT_FALSE(map.Walkable(0, 0));
  EXPECT_TRUE(map.Walkable(1, 1));
  EXPECT_EQ(map.FlagsAt(1, 1), kNavWalkable);
  EXPECT_EQ(map.FlagsAt(2, 1), kNavWalkable | kNavDanger);
  EXPECT_EQ(map.FlagsAt(1, 2), kNavWalkable | kNavCover);
  EXPECT_EQ(map.FlagsAt(2, 2), kNavWalkable | kNavHide);
  EXPECT_EQ(map.WalkableCount(), 4u);
}

TEST(GridMapTest, MarkersRecordedAndWalkable) {
  auto r = GridMap::FromAscii({
      "S..",
      "...",
      "..G",
  });
  ASSERT_TRUE(r.ok());
  const GridMap& map = *r;
  ASSERT_EQ(map.Markers().count('S'), 1u);
  ASSERT_EQ(map.Markers().count('G'), 1u);
  EXPECT_EQ(map.Markers().at('S')[0], std::make_pair(0, 0));
  EXPECT_EQ(map.Markers().at('G')[0], std::make_pair(2, 2));
  EXPECT_TRUE(map.Walkable(0, 0));
  EXPECT_TRUE(map.Walkable(2, 2));
}

TEST(GridMapTest, RaggedAndEmptyRejected) {
  EXPECT_TRUE(GridMap::FromAscii({}).status().IsInvalidArgument());
  EXPECT_TRUE(GridMap::FromAscii({""}).status().IsInvalidArgument());
  EXPECT_TRUE(GridMap::FromAscii({"..", "..."}).status().IsInvalidArgument());
}

TEST(GridMapTest, OutOfBoundsIsBlocked) {
  GridMap map(3, 3);
  EXPECT_EQ(map.FlagsAt(-1, 0), 0);
  EXPECT_EQ(map.FlagsAt(0, 3), 0);
  EXPECT_FALSE(map.Walkable(99, 99));
  EXPECT_FALSE(map.InBounds(-1, 0));
  EXPECT_TRUE(map.InBounds(2, 2));
}

TEST(GridMapTest, SetFlags) {
  GridMap map(2, 2);
  EXPECT_FALSE(map.Walkable(0, 0));
  map.SetFlags(0, 0, kNavWalkable | kNavDefensible);
  EXPECT_TRUE(map.Walkable(0, 0));
  EXPECT_TRUE(map.FlagsAt(0, 0) & kNavDefensible);
}

TEST(GridMapTest, WorldCoordinates) {
  GridMapOptions opts;
  opts.cell_size = 2.0f;
  opts.origin = {10.0f, 20.0f};
  GridMap map(4, 4, opts);
  Vec2 c = map.CellCenter(0, 0);
  EXPECT_FLOAT_EQ(c.x, 11.0f);
  EXPECT_FLOAT_EQ(c.z, 21.0f);
  int x, y;
  map.CellOf(c, &x, &y);
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 0);
  map.CellOf({15.9f, 27.9f}, &x, &y);
  EXPECT_EQ(x, 2);
  EXPECT_EQ(y, 3);
}

TEST(GridMapTest, CellRoundTripProperty) {
  GridMapOptions opts;
  opts.cell_size = 1.5f;
  opts.origin = {-7.0f, 3.0f};
  GridMap map(20, 30, opts);
  for (int y = 0; y < 30; ++y) {
    for (int x = 0; x < 20; ++x) {
      int cx, cy;
      map.CellOf(map.CellCenter(x, y), &cx, &cy);
      ASSERT_EQ(cx, x);
      ASSERT_EQ(cy, y);
    }
  }
}

}  // namespace
}  // namespace gamedb::spatial
