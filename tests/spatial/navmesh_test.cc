#include "spatial/navmesh.h"

#include <gtest/gtest.h>

#include "spatial/grid_astar.h"
#include "spatial/navmesh_builder.h"

namespace gamedb::spatial {
namespace {

GridMap Must(Result<GridMap> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

NavMesh MustMesh(Result<NavMesh> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(NavPolyTest, ContainsConvex) {
  NavPoly poly;
  poly.verts = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  EXPECT_TRUE(poly.Contains({2, 2}));
  EXPECT_TRUE(poly.Contains({0, 0}));  // boundary inclusive
  EXPECT_TRUE(poly.Contains({4, 2}));
  EXPECT_FALSE(poly.Contains({4.1f, 2}));
  EXPECT_FALSE(poly.Contains({-0.1f, 2}));
}

TEST(NavMeshTest, AddPolygonComputesCentroidArea) {
  NavMesh mesh;
  uint32_t id = mesh.AddPolygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const NavPoly& p = mesh.polygon(id);
  EXPECT_FLOAT_EQ(p.area, 4.0f);
  EXPECT_NEAR(p.centroid.x, 1.0f, 1e-5);
  EXPECT_NEAR(p.centroid.z, 1.0f, 1e-5);
}

TEST(NavMeshTest, ConnectValidation) {
  NavMesh mesh;
  uint32_t a = mesh.AddPolygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  uint32_t b = mesh.AddPolygon({{2, 0}, {4, 0}, {4, 2}, {2, 2}});
  EXPECT_TRUE(mesh.Connect(a, b, {2, 0}, {2, 2}).ok());
  EXPECT_TRUE(mesh.Connect(a, 99, {0, 0}, {1, 1}).IsInvalidArgument());
  EXPECT_TRUE(mesh.Connect(a, a, {0, 0}, {1, 1}).IsInvalidArgument());
  EXPECT_EQ(mesh.Neighbors(a).size(), 1u);
  EXPECT_EQ(mesh.Neighbors(b).size(), 1u);
}

TEST(NavMeshTest, SamePolygonPathIsDirect) {
  NavMesh mesh;
  mesh.AddPolygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  auto path = mesh.FindPath({1, 1}, {9, 9});
  ASSERT_TRUE(path.found);
  ASSERT_EQ(path.waypoints.size(), 2u);
  EXPECT_NEAR(path.cost, std::sqrt(128.0f), 1e-4);
}

TEST(NavMeshTest, PathAcrossTwoPolygons) {
  NavMesh mesh;
  uint32_t a = mesh.AddPolygon({{0, 0}, {5, 0}, {5, 5}, {0, 5}});
  uint32_t b = mesh.AddPolygon({{5, 0}, {10, 0}, {10, 5}, {5, 5}});
  ASSERT_TRUE(mesh.Connect(a, b, {5, 0}, {5, 5}).ok());
  auto path = mesh.FindPath({1, 2.5f}, {9, 2.5f});
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.corridor.size(), 2u);
  // Straight corridor: funnel should produce a straight line.
  ASSERT_EQ(path.waypoints.size(), 2u);
  EXPECT_NEAR(PathLength(path.waypoints), 8.0f, 1e-4);
}

TEST(NavMeshTest, OutsideMeshFails) {
  NavMesh mesh;
  mesh.AddPolygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_FALSE(mesh.FindPath({5, 5}, {0.5f, 0.5f}).found);
  EXPECT_FALSE(mesh.FindPath({0.5f, 0.5f}, {5, 5}).found);
}

TEST(NavMeshTest, DisconnectedComponentsFail) {
  NavMesh mesh;
  mesh.AddPolygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  mesh.AddPolygon({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  EXPECT_FALSE(mesh.FindPath({0.5f, 0.5f}, {5.5f, 5.5f}).found);
}

TEST(BuilderTest, SingleRoomIsOnePolygon) {
  GridMap map = Must(GridMap::FromAscii({
      "....",
      "....",
  }));
  NavMeshBuildStats stats;
  NavMesh mesh = MustMesh(BuildNavMesh(map, &stats));
  EXPECT_EQ(stats.polygon_count, 1u);
  EXPECT_EQ(stats.walkable_cells, 8u);
  EXPECT_EQ(stats.portal_count, 0u);
}

TEST(BuilderTest, AnnotationsSplitPolygons) {
  GridMap map = Must(GridMap::FromAscii({
      "..DD..",
  }));
  NavMeshBuildStats stats;
  NavMesh mesh = MustMesh(BuildNavMesh(map, &stats));
  EXPECT_EQ(stats.polygon_count, 3u);  // plain | danger | plain
  EXPECT_EQ(stats.portal_count, 2u);
  int danger_polys = 0;
  for (uint32_t i = 0; i < mesh.PolygonCount(); ++i) {
    if (mesh.polygon(i).flags & kNavDanger) ++danger_polys;
  }
  EXPECT_EQ(danger_polys, 1);
}

TEST(BuilderTest, NoWalkableCellsFails) {
  GridMap map = Must(GridMap::FromAscii({"##", "##"}));
  EXPECT_TRUE(BuildNavMesh(map).status().IsInvalidArgument());
}

TEST(BuilderTest, PathThroughDoorway) {
  GridMap map = Must(GridMap::FromAscii({
      ".....#.....",
      ".....#.....",
      "...........",
      ".....#.....",
      ".....#.....",
  }));
  NavMesh mesh = MustMesh(BuildNavMesh(map));
  Vec2 start = map.CellCenter(1, 0);
  Vec2 goal = map.CellCenter(9, 4);
  auto path = mesh.FindPath(start, goal);
  ASSERT_TRUE(path.found);
  // Path must pass through the doorway column (x == 5, row 2).
  Vec2 door = map.CellCenter(5, 2);
  bool near_door = false;
  for (size_t i = 1; i < path.waypoints.size(); ++i) {
    // Sample along segments.
    for (float t = 0; t <= 1.0f; t += 0.05f) {
      Vec2 p = path.waypoints[i - 1] + (path.waypoints[i] - path.waypoints[i - 1]) * t;
      if (p.DistanceTo(door) < 1.5f) near_door = true;
    }
  }
  EXPECT_TRUE(near_door);
  // Grid path on the same map agrees on reachability and rough length. The
  // funnel path is taut within its corridor but the corridor itself (portal-
  // midpoint A*) may be slightly suboptimal, so allow a 15% band.
  auto grid_path = FindGridPath(map, {1, 0}, {9, 4});
  ASSERT_TRUE(grid_path.found);
  EXPECT_LE(PathLength(path.waypoints), grid_path.cost * 1.15f);
}

TEST(BuilderTest, NavmeshExpandsFarFewerNodesThanGrid) {
  // Large open room: navmesh search should expand ~1 polygon, grid A*
  // hundreds of cells.
  std::vector<std::string> rows(40, std::string(40, '.'));
  GridMap map = Must(GridMap::FromAscii(rows));
  NavMesh mesh = MustMesh(BuildNavMesh(map));
  auto nav = mesh.FindPath(map.CellCenter(1, 1), map.CellCenter(38, 38));
  auto grid = FindGridPath(map, {1, 1}, {38, 38});
  ASSERT_TRUE(nav.found);
  ASSERT_TRUE(grid.found);
  EXPECT_LT(nav.expanded * 10, grid.expanded);
}

TEST(BuilderTest, DangerousShortcutAvoidedWithMultiplier) {
  GridMap map = Must(GridMap::FromAscii({
      "#####",
      "..D..",
      ".###.",
      ".....",
  }));
  NavMesh mesh = MustMesh(BuildNavMesh(map));
  Vec2 start = map.CellCenter(0, 1);
  Vec2 goal = map.CellCenter(4, 1);

  NavPathOptions indifferent;
  auto direct = mesh.FindPath(start, goal, indifferent);
  ASSERT_TRUE(direct.found);
  bool crosses_danger = false;
  for (uint32_t pid : direct.corridor) {
    if (mesh.polygon(pid).flags & kNavDanger) crosses_danger = true;
  }
  EXPECT_TRUE(crosses_danger);

  NavPathOptions cautious;
  cautious.danger_multiplier = 50.0f;
  auto detour = mesh.FindPath(start, goal, cautious);
  ASSERT_TRUE(detour.found);
  for (uint32_t pid : detour.corridor) {
    EXPECT_FALSE(mesh.polygon(pid).flags & kNavDanger);
  }

  NavPathOptions forbid;
  forbid.avoid_flags = kNavDanger;
  auto hard = mesh.FindPath(start, goal, forbid);
  ASSERT_TRUE(hard.found);
  for (uint32_t pid : hard.corridor) {
    EXPECT_FALSE(mesh.polygon(pid).flags & kNavDanger);
  }
}

TEST(BuilderTest, FindAnnotatedLocatesHidingSpots) {
  GridMap map = Must(GridMap::FromAscii({
      "H....",
      ".....",
      "....H",
  }));
  NavMesh mesh = MustMesh(BuildNavMesh(map));
  Vec2 origin = map.CellCenter(0, 0);
  auto near = mesh.FindAnnotated(origin, 2.0f, kNavHide);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_TRUE(mesh.polygon(near[0]).Contains(origin));
  auto all = mesh.FindAnnotated(origin, 100.0f, kNavHide);
  EXPECT_EQ(all.size(), 2u);
}

TEST(FunnelTest, StraightCorridorGivesStraightPath) {
  std::vector<Portal> portals = {
      {{2, 1}, {2, -1}},
      {{4, 1}, {4, -1}},
      {{6, 1}, {6, -1}},
  };
  auto path = StringPull({0, 0}, {8, 0}, portals);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_NEAR(PathLength(path), 8.0f, 1e-5);
}

TEST(FunnelTest, BendsAroundCorner) {
  // Corridor that turns: the taut path must touch the inner corner.
  std::vector<Portal> portals = {
      {{5, 2}, {5, 0}},  // heading +x: left endpoint is the +z side
      {{5, 2}, {7, 2}},  // heading +z: left endpoint is the -x side
  };
  auto path = StringPull({0, 1}, {6, 6}, portals);
  ASSERT_GE(path.size(), 3u);
  // Inner corner (5, 2) must appear.
  bool corner = false;
  for (const Vec2& p : path) {
    if (p.DistanceTo({5, 2}) < 1e-4) corner = true;
  }
  EXPECT_TRUE(corner);
  // Taut path is shorter than the midpoint polyline.
  float mid_len = Vec2{0, 1}.DistanceTo({5, 1}) + Vec2{5, 1}.DistanceTo({6, 2}) +
                  Vec2{6, 2}.DistanceTo({6, 6});
  EXPECT_LE(PathLength(path), mid_len + 1e-4);
}

TEST(FunnelTest, NoPortalsDirectSegment) {
  auto path = StringPull({0, 0}, {3, 4}, {});
  ASSERT_EQ(path.size(), 2u);
  EXPECT_NEAR(PathLength(path), 5.0f, 1e-5);
}

}  // namespace
}  // namespace gamedb::spatial
