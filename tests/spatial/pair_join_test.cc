#include "spatial/pair_join.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "spatial/kdbsp_tree.h"
#include "spatial/uniform_grid.h"

namespace gamedb::spatial {
namespace {

std::vector<PointEntry> RandomPoints(size_t n, uint64_t seed, float span) {
  Rng rng(seed);
  Aabb world{{-span, 0, -span}, {span, 0, span}};
  std::vector<PointEntry> pts;
  pts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    pts.push_back(PointEntry{EntityId(i, 0), rng.NextPointIn(world)});
  }
  return pts;
}

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

PairSet Collect(const std::function<void(const PairCallback&)>& run) {
  PairSet out;
  run([&](const PointEntry& a, const PointEntry& b) {
    EXPECT_LT(a.id.Raw(), b.id.Raw()) << "pair not id-ordered";
    EXPECT_TRUE(out.emplace(a.id.Raw(), b.id.Raw()).second)
        << "duplicate pair";
  });
  return out;
}

class PairJoinParamTest
    : public ::testing::TestWithParam<std::tuple<size_t, float>> {};

TEST_P(PairJoinParamTest, AllJoinsAgreeWithNestedLoop) {
  auto [n, dist] = GetParam();
  auto pts = RandomPoints(n, 42 + n, 60.0f);

  PairSet naive = Collect([&](const PairCallback& cb) {
    NestedLoopPairs(pts, dist, cb);
  });
  PairSet grid = Collect([&](const PairCallback& cb) {
    GridPairs(pts, dist, cb);
  });
  EXPECT_EQ(grid, naive);

  UniformGrid gi(UniformGridOptions{dist});
  for (const auto& p : pts) gi.Insert(p.id, Aabb::FromPoint(p.pos));
  PairSet via_grid_index = Collect([&](const PairCallback& cb) {
    IndexPairs(gi, pts, dist, cb);
  });
  EXPECT_EQ(via_grid_index, naive);

  KdBspTree kd;
  for (const auto& p : pts) kd.Insert(p.id, Aabb::FromPoint(p.pos));
  PairSet via_kd = Collect([&](const PairCallback& cb) {
    IndexPairs(kd, pts, dist, cb);
  });
  EXPECT_EQ(via_kd, naive);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PairJoinParamTest,
    ::testing::Values(std::make_tuple(size_t{0}, 5.0f),
                      std::make_tuple(size_t{1}, 5.0f),
                      std::make_tuple(size_t{2}, 1000.0f),
                      std::make_tuple(size_t{64}, 8.0f),
                      std::make_tuple(size_t{300}, 5.0f),
                      std::make_tuple(size_t{300}, 25.0f)));

TEST(PairJoinTest, ExactDistanceBoundaryIncluded) {
  std::vector<PointEntry> pts = {{EntityId(1, 0), {0, 0, 0}},
                                 {EntityId(2, 0), {3, 0, 4}}};  // dist 5
  int count = 0;
  GridPairs(pts, 5.0f, [&](const PointEntry&, const PointEntry&) { ++count; });
  EXPECT_EQ(count, 1);
  count = 0;
  GridPairs(pts, 4.99f,
            [&](const PointEntry&, const PointEntry&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(PairJoinTest, DensePackProducesAllPairs) {
  // 10 coincident points -> C(10,2) = 45 pairs.
  std::vector<PointEntry> pts;
  for (uint32_t i = 0; i < 10; ++i) {
    pts.push_back({EntityId(i, 0), {1, 2, 3}});
  }
  PairSet grid = Collect([&](const PairCallback& cb) {
    GridPairs(pts, 0.5f, cb);
  });
  EXPECT_EQ(grid.size(), 45u);
}

TEST(PairJoinTest, CrossCellNeighborsFound) {
  // Two points in adjacent grid cells but within distance.
  std::vector<PointEntry> pts = {{EntityId(1, 0), {0.9f, 0, 0}},
                                 {EntityId(2, 0), {1.1f, 0, 0}}};
  int count = 0;
  GridPairs(pts, 1.0f, [&](const PointEntry&, const PointEntry&) { ++count; });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace gamedb::spatial
