#include "spatial/spatial_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/rng.h"
#include "spatial/kdbsp_tree.h"
#include "spatial/linear_scan.h"
#include "spatial/loose_octree.h"
#include "spatial/uniform_grid.h"

namespace gamedb::spatial {
namespace {

enum class IndexKind { kLinear, kGrid, kKdBsp, kOctree };

std::unique_ptr<SpatialIndex> MakeIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kLinear:
      return std::make_unique<LinearScan>();
    case IndexKind::kGrid:
      return std::make_unique<UniformGrid>(UniformGridOptions{8.0f});
    case IndexKind::kKdBsp:
      return std::make_unique<KdBspTree>();
    case IndexKind::kOctree: {
      LooseOctreeOptions opts;
      opts.world_bounds = Aabb{{-200, -200, -200}, {200, 200, 200}};
      return std::make_unique<LooseOctree>(opts);
    }
  }
  return nullptr;
}

std::set<uint64_t> CollectRange(const SpatialIndex& idx, const Aabb& range) {
  std::set<uint64_t> out;
  idx.QueryRange(range, [&](EntityId e, const Aabb&) {
    EXPECT_TRUE(out.insert(e.Raw()).second) << "duplicate result";
  });
  return out;
}

std::set<uint64_t> CollectRadius(const SpatialIndex& idx, const Vec3& c,
                                 float r) {
  std::set<uint64_t> out;
  idx.QueryRadius(c, r, [&](EntityId e, const Aabb&) {
    EXPECT_TRUE(out.insert(e.Raw()).second) << "duplicate result";
  });
  return out;
}

class SpatialIndexTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(SpatialIndexTest, EmptyIndexReturnsNothing) {
  auto idx = MakeIndex(GetParam());
  EXPECT_EQ(idx->Size(), 0u);
  EXPECT_TRUE(CollectRange(*idx, Aabb{{-10, -10, -10}, {10, 10, 10}}).empty());
}

TEST_P(SpatialIndexTest, InsertQueryRemove) {
  auto idx = MakeIndex(GetParam());
  EntityId a(1, 0), b(2, 0);
  idx->Insert(a, Aabb::FromPoint({0, 0, 0}));
  idx->Insert(b, Aabb::FromPoint({50, 0, 0}));
  EXPECT_EQ(idx->Size(), 2u);

  auto near_origin = CollectRange(*idx, Aabb{{-1, -1, -1}, {1, 1, 1}});
  EXPECT_EQ(near_origin.size(), 1u);
  EXPECT_TRUE(near_origin.count(a.Raw()));

  EXPECT_TRUE(idx->Remove(a));
  EXPECT_FALSE(idx->Remove(a));
  EXPECT_EQ(idx->Size(), 1u);
  EXPECT_TRUE(CollectRange(*idx, Aabb{{-1, -1, -1}, {1, 1, 1}}).empty());
}

TEST_P(SpatialIndexTest, UpdateMovesEntry) {
  auto idx = MakeIndex(GetParam());
  EntityId e(7, 0);
  idx->Insert(e, Aabb::FromPoint({0, 0, 0}));
  idx->Update(e, Aabb::FromPoint({100, 0, 0}));
  EXPECT_TRUE(CollectRange(*idx, Aabb{{-1, -1, -1}, {1, 1, 1}}).empty());
  auto far = CollectRange(*idx, Aabb{{99, -1, -1}, {101, 1, 1}});
  EXPECT_EQ(far.size(), 1u);
}

TEST_P(SpatialIndexTest, BoxesOverlappingRangeBoundaryAreFound) {
  auto idx = MakeIndex(GetParam());
  EntityId e(3, 0);
  // Box straddles the query boundary.
  idx->Insert(e, Aabb{{9, -1, -1}, {12, 1, 1}});
  auto hits = CollectRange(*idx, Aabb{{0, 0, 0}, {10, 0, 0}});
  EXPECT_EQ(hits.size(), 1u);
}

TEST_P(SpatialIndexTest, ClearEmptiesIndex) {
  auto idx = MakeIndex(GetParam());
  for (uint32_t i = 0; i < 50; ++i) {
    idx->Insert(EntityId(i, 0), Aabb::FromPoint({float(i), 0, 0}));
  }
  idx->Clear();
  EXPECT_EQ(idx->Size(), 0u);
  EXPECT_TRUE(CollectRange(*idx, Aabb{{-1000, -1000, -1000},
                                      {1000, 1000, 1000}})
                  .empty());
  // Usable after clear.
  idx->Insert(EntityId(0, 1), Aabb::FromPoint({1, 1, 1}));
  EXPECT_EQ(idx->Size(), 1u);
}

TEST_P(SpatialIndexTest, AgreesWithLinearScanUnderRandomWorkload) {
  auto idx = MakeIndex(GetParam());
  LinearScan oracle;
  Rng rng(123);
  Aabb world{{-150, -20, -150}, {150, 20, 150}};
  std::vector<EntityId> present;
  uint32_t next_id = 0;

  for (int op = 0; op < 3000; ++op) {
    double roll = rng.NextDouble();
    if (roll < 0.4 || present.empty()) {
      EntityId e(next_id++, 0);
      Vec3 p = rng.NextPointIn(world);
      float half = rng.NextFloat(0.0f, 3.0f);
      Aabb box{p - Vec3(half, half, half), p + Vec3(half, half, half)};
      idx->Insert(e, box);
      oracle.Insert(e, box);
      present.push_back(e);
    } else if (roll < 0.6) {
      size_t i = rng.NextBounded(present.size());
      EXPECT_TRUE(idx->Remove(present[i]));
      oracle.Remove(present[i]);
      present[i] = present.back();
      present.pop_back();
    } else if (roll < 0.8) {
      EntityId e = present[rng.NextBounded(present.size())];
      Vec3 p = rng.NextPointIn(world);
      Aabb box = Aabb::FromPoint(p).Inflated(rng.NextFloat(0.0f, 2.0f));
      idx->Update(e, box);
      oracle.Update(e, box);
    } else {
      // Compare a random range query and a random radius query.
      Vec3 c = rng.NextPointIn(world);
      float r = rng.NextFloat(1.0f, 40.0f);
      Aabb range = Aabb::FromSphere(c, r);
      ASSERT_EQ(CollectRange(*idx, range), CollectRange(oracle, range))
          << "op " << op;
      ASSERT_EQ(CollectRadius(*idx, c, r), CollectRadius(oracle, c, r))
          << "op " << op;
    }
    ASSERT_EQ(idx->Size(), oracle.Size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, SpatialIndexTest,
                         ::testing::Values(IndexKind::kLinear,
                                           IndexKind::kGrid,
                                           IndexKind::kKdBsp,
                                           IndexKind::kOctree),
                         [](const auto& info) {
                           switch (info.param) {
                             case IndexKind::kLinear:
                               return "LinearScan";
                             case IndexKind::kGrid:
                               return "UniformGrid";
                             case IndexKind::kKdBsp:
                               return "KdBspTree";
                             case IndexKind::kOctree:
                               return "LooseOctree";
                           }
                           return "?";
                         });

TEST(KdBspTreeTest, NearestNeighborsExact) {
  KdBspTree tree;
  LinearScan oracle;
  Rng rng(55);
  Aabb world{{-100, 0, -100}, {100, 0, 100}};
  for (uint32_t i = 0; i < 500; ++i) {
    Vec3 p = rng.NextPointIn(world);
    tree.Insert(EntityId(i, 0), Aabb::FromPoint(p));
    oracle.Insert(EntityId(i, 0), Aabb::FromPoint(p));
  }
  for (int q = 0; q < 50; ++q) {
    Vec3 c = rng.NextPointIn(world);
    // Oracle: brute-force distances.
    std::vector<std::pair<float, uint64_t>> all;
    oracle.QueryRange(world.Inflated(1), [&](EntityId e, const Aabb& box) {
      all.emplace_back(box.DistanceSquaredTo(c), e.Raw());
    });
    std::sort(all.begin(), all.end());

    std::vector<uint64_t> got;
    std::vector<float> dists;
    tree.QueryNearest(c, 5, [&](EntityId e, const Aabb&, float d) {
      got.push_back(e.Raw());
      dists.push_back(d);
    });
    ASSERT_EQ(got.size(), 5u);
    // Distances must be sorted ascending and match the oracle's top-5 set
    // (ties may permute ids, so compare distances).
    for (size_t i = 0; i < 5; ++i) {
      ASSERT_NEAR(dists[i] * dists[i], all[i].first, 1e-3f);
      if (i > 0) {
        ASSERT_GE(dists[i], dists[i - 1]);
      }
    }
  }
}

TEST(KdBspTreeTest, LazyRebuildCountStaysLow) {
  KdBspTree tree;
  Rng rng(9);
  Aabb world{{-50, 0, -50}, {50, 0, 50}};
  for (uint32_t i = 0; i < 1000; ++i) {
    tree.Insert(EntityId(i, 0), Aabb::FromPoint(rng.NextPointIn(world)));
  }
  (void)CollectRange(tree, world);  // forces first build
  uint64_t builds_after_load = tree.rebuild_count();
  // A few updates below the threshold must not trigger rebuilds.
  for (uint32_t i = 0; i < 50; ++i) {
    tree.Update(EntityId(i, 0), Aabb::FromPoint(rng.NextPointIn(world)));
    (void)CollectRange(tree, Aabb::FromSphere(rng.NextPointIn(world), 5));
  }
  EXPECT_EQ(tree.rebuild_count(), builds_after_load);
}

TEST(LooseOctreeTest, EntriesOutsideWorldBoundsStillFound) {
  LooseOctreeOptions opts;
  opts.world_bounds = Aabb{{-10, -10, -10}, {10, 10, 10}};
  LooseOctree tree(opts);
  EntityId e(1, 0);
  tree.Insert(e, Aabb::FromPoint({500, 500, 500}));  // way outside
  auto hits = CollectRange(tree, Aabb{{499, 499, 499}, {501, 501, 501}});
  EXPECT_EQ(hits.size(), 1u);
}

TEST(LooseOctreeTest, PrunedNodesAreRecycled) {
  LooseOctree tree;
  Rng rng(3);
  Aabb world{{-900, -900, -900}, {900, 900, 900}};
  std::vector<EntityId> ids;
  for (uint32_t i = 0; i < 500; ++i) {
    EntityId e(i, 0);
    tree.Insert(e, Aabb::FromPoint(rng.NextPointIn(world)).Inflated(0.5f));
    ids.push_back(e);
  }
  size_t peak = tree.NodeCount();  // slab size only grows
  EXPECT_GT(peak, 1u);
  for (EntityId e : ids) tree.Remove(e);
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_TRUE(CollectRange(tree, world.Inflated(10)).empty());
  // Re-inserting the same load must reuse freed nodes, not grow the slab.
  for (uint32_t i = 0; i < 500; ++i) {
    tree.Insert(EntityId(i, 1),
                Aabb::FromPoint(rng.NextPointIn(world)).Inflated(0.5f));
  }
  EXPECT_LE(tree.NodeCount(), peak * 2);  // recycled, not doubled-and-leaked
}

TEST(UniformGridTest, CellsMaterializeAndFree) {
  UniformGrid grid(UniformGridOptions{10.0f});
  EntityId e(1, 0);
  grid.Insert(e, Aabb{{0, 0, 0}, {25, 5, 5}});  // spans 3 cells in x
  EXPECT_GE(grid.CellCount(), 3u);
  grid.Remove(e);
  EXPECT_EQ(grid.CellCount(), 0u);
}

}  // namespace
}  // namespace gamedb::spatial
