#include "spatial/grid_astar.h"

#include <gtest/gtest.h>

namespace gamedb::spatial {
namespace {

GridMap Must(Result<GridMap> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(GridAstarTest, StraightLine) {
  GridMap map = Must(GridMap::FromAscii({
      ".....",
  }));
  auto path = FindGridPath(map, {0, 0}, {4, 0});
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.cells.size(), 5u);
  EXPECT_FLOAT_EQ(path.cost, 4.0f);
  EXPECT_EQ(path.cells.front(), std::make_pair(0, 0));
  EXPECT_EQ(path.cells.back(), std::make_pair(4, 0));
}

TEST(GridAstarTest, DiagonalCheaperThanManhattan) {
  GridMap map = Must(GridMap::FromAscii({
      "...",
      "...",
      "...",
  }));
  auto diag = FindGridPath(map, {0, 0}, {2, 2});
  ASSERT_TRUE(diag.found);
  EXPECT_NEAR(diag.cost, 2 * 1.41421356f, 1e-4);

  GridPathOptions no_diag;
  no_diag.diagonal = false;
  auto manhattan = FindGridPath(map, {0, 0}, {2, 2}, no_diag);
  ASSERT_TRUE(manhattan.found);
  EXPECT_FLOAT_EQ(manhattan.cost, 4.0f);
}

TEST(GridAstarTest, WallsForceDetour) {
  GridMap map = Must(GridMap::FromAscii({
      "..#..",
      "..#..",
      "..#..",
      ".....",
  }));
  auto path = FindGridPath(map, {0, 0}, {4, 0});
  ASSERT_TRUE(path.found);
  // Must route through row 3.
  bool used_bottom = false;
  for (auto [x, y] : path.cells) {
    ASSERT_TRUE(map.Walkable(x, y));
    if (y == 3) used_bottom = true;
  }
  EXPECT_TRUE(used_bottom);
}

TEST(GridAstarTest, NoPathReported) {
  GridMap map = Must(GridMap::FromAscii({
      ".#.",
      ".#.",
      ".#.",
  }));
  auto path = FindGridPath(map, {0, 0}, {2, 0});
  EXPECT_FALSE(path.found);
  EXPECT_TRUE(path.cells.empty());
}

TEST(GridAstarTest, BlockedEndpointsFail) {
  GridMap map = Must(GridMap::FromAscii({
      ".#",
      "..",
  }));
  EXPECT_FALSE(FindGridPath(map, {1, 0}, {0, 0}).found);
  EXPECT_FALSE(FindGridPath(map, {0, 0}, {1, 0}).found);
  EXPECT_FALSE(FindGridPath(map, {-1, 0}, {0, 0}).found);
}

TEST(GridAstarTest, NoCornerCutting) {
  GridMap map = Must(GridMap::FromAscii({
      ".#",
      "#.",
  }));
  // Diagonal from (0,0) to (1,1) would cut between two walls.
  auto path = FindGridPath(map, {0, 0}, {1, 1});
  EXPECT_FALSE(path.found);
}

TEST(GridAstarTest, DangerAvoidedWhenPenalized) {
  GridMap map = Must(GridMap::FromAscii({
      ".....",
      ".DDD.",
      ".....",
  }));
  // Through the middle is shortest by distance but crosses danger.
  GridPathOptions indifferent;
  indifferent.diagonal = false;
  auto direct = FindGridPath(map, {0, 1}, {4, 1}, indifferent);
  ASSERT_TRUE(direct.found);
  bool hits_danger = false;
  for (auto [x, y] : direct.cells) {
    if (map.FlagsAt(x, y) & kNavDanger) hits_danger = true;
  }
  EXPECT_TRUE(hits_danger);

  GridPathOptions cautious;
  cautious.diagonal = false;
  cautious.danger_multiplier = 10.0f;
  auto detour = FindGridPath(map, {0, 1}, {4, 1}, cautious);
  ASSERT_TRUE(detour.found);
  for (auto [x, y] : detour.cells) {
    ASSERT_FALSE(map.FlagsAt(x, y) & kNavDanger);
  }
  EXPECT_GT(detour.cells.size(), direct.cells.size());
}

TEST(GridAstarTest, AvoidFlagsHardBlock) {
  GridMap map = Must(GridMap::FromAscii({
      ".D.",
  }));
  GridPathOptions opts;
  opts.avoid_flags = kNavDanger;
  EXPECT_FALSE(FindGridPath(map, {0, 0}, {2, 0}, opts).found);
  EXPECT_TRUE(FindGridPath(map, {0, 0}, {2, 0}).found);
}

TEST(GridAstarTest, StartEqualsGoal) {
  GridMap map = Must(GridMap::FromAscii({"..."}));
  auto path = FindGridPath(map, {1, 0}, {1, 0});
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.cells.size(), 1u);
  EXPECT_FLOAT_EQ(path.cost, 0.0f);
}

TEST(GridAstarTest, CostIsOptimalOnOpenField) {
  // On an empty field, A* cost must equal the octile distance.
  GridMap map(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) map.SetFlags(x, y, kNavWalkable);
  }
  auto path = FindGridPath(map, {1, 2}, {20, 9});
  ASSERT_TRUE(path.found);
  float dx = 19, dy = 7;
  float octile = std::max(dx, dy) + 0.41421356f * std::min(dx, dy);
  EXPECT_NEAR(path.cost, octile, 1e-3);
}

}  // namespace
}  // namespace gamedb::spatial
