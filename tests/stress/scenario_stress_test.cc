// Stress tier of the scenario-replay regression suite (`ctest -L stress`;
// also the TSan CI target): every scenario at a config an order of
// magnitude past tests/loadgen — hundreds of clients, thousands of NPCs,
// real thread fan-out — still bit-identical at 1 vs 4 ScriptHost threads
// and with the planner on vs off. tests/loadgen/scenario_test.cc holds the
// fast tier-1 versions of these assertions.

#include <gtest/gtest.h>

#include <string>

#include "loadgen/metrics.h"
#include "loadgen/scenario.h"

namespace gamedb::loadgen {
namespace {

ScenarioConfig StressConfig(const std::string& name) {
  ScenarioConfig cfg = DefaultConfig(name).value();
  cfg.clients = 96;
  cfg.npcs = 3000;
  cfg.ticks = 60;
  cfg.seed = 20260808;
  cfg.collect_timing = false;
  return cfg;
}

ScenarioReport MustRun(ScenarioConfig cfg) {
  Result<ScenarioReport> r = RunScenario(cfg);
  EXPECT_TRUE(r.ok()) << cfg.scenario << ": " << r.status().ToString();
  return r.ok() ? r.value() : ScenarioReport{};
}

class ScenarioStressTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioStressTest, LargeConfigBitIdenticalAcrossThreadsAndPlanner) {
  ScenarioConfig cfg = StressConfig(GetParam());
  ScenarioReport one = MustRun(cfg);
  EXPECT_EQ(one.script_errors, 0u);
  EXPECT_GT(one.client_ticks, 0u);

  cfg.threads = 4;
  ScenarioReport four = MustRun(cfg);
  EXPECT_EQ(one.world_hash, four.world_hash);
  EXPECT_EQ(RenderReportJson(one), RenderReportJson(four))
      << GetParam() << ": replay artifact diverged across thread counts";

  cfg.planner_on = false;
  ScenarioReport off = MustRun(cfg);
  EXPECT_EQ(one.world_hash, off.world_hash)
      << GetParam() << ": planner policy leaked into world state";
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioStressTest,
                         ::testing::ValuesIn(ScenarioNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace gamedb::loadgen
