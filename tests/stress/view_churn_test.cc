// Stress tier (ctest -L stress): scaled live-view churn. Two angles:
//  - a big-world mutation storm where per-tick maintenance must stay
//    bit-identical to from-scratch execution (the differential contract at
//    20k entities instead of the unit suite's hundreds);
//  - parallel-phase view reads: every scripted entity calls the view
//    builtins while the membership sort cache rebuilds concurrently —
//    the double-checked lock in LiveView::Members is what the CI
//    ThreadSanitizer job exercises here.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "planner/planner.h"
#include "script/host.h"
#include "views/maintainer.h"

namespace gamedb::views {
namespace {

using planner::QueryPlanner;

class ViewChurnStressTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }
  World world;
};

TEST_F(ViewChurnStressTest, BigWorldStormStaysExact) {
  QueryPlanner planner(&world);
  ViewCatalog catalog(&world, &planner);

  ViewDef wounded;
  wounded.name = "wounded";
  wounded.where = {{"Health", "hp", CmpOp::kLt, 20.0}};
  wounded.aggregate = AggKind::kSum;
  wounded.agg_component = "Health";
  wounded.agg_field = "hp";
  LiveView* view = *catalog.Register(wounded);

  ViewDef bubble;
  bubble.name = "bubble";
  bubble.has_near = true;
  bubble.near = {"Position", "value", {500, 0, 500}, 50.0f};
  LiveView* near_view = *catalog.Register(bubble);

  Rng rng(1234);
  std::vector<EntityId> pool;
  const size_t kWorld = 20000;
  for (size_t i = 0; i < kWorld; ++i) {
    EntityId e = world.Create();
    world.Set(e, Health{rng.NextFloat(0, 100), 100.0f});
    world.Set(e, Position{{rng.NextFloat(0, 1000), 0,
                           rng.NextFloat(0, 1000)}});
    pool.push_back(e);
  }
  planner.Analyze();
  catalog.Maintain();

  auto check = [&](int tick) {
    DynamicQuery q(&world);
    q.SetPlanner(&planner);
    q.WhereField("Health", "hp", CmpOp::kLt, 20.0);
    q.With("Health");
    auto fresh = q.Collect();
    ASSERT_TRUE(fresh.ok());
    ASSERT_EQ(view->Members(), *fresh) << "tick " << tick;
    auto fresh_sum = [&] {
      DynamicQuery qs(&world);
      qs.SetPlanner(&planner);
      qs.WhereField("Health", "hp", CmpOp::kLt, 20.0);
      return qs.Sum("Health", "hp");
    }();
    ASSERT_TRUE(fresh_sum.ok());
    ASSERT_EQ(*view->Aggregate(), *fresh_sum) << "tick " << tick;

    DynamicQuery qn(&world);
    qn.SetPlanner(&planner);
    qn.WithinRadius("Position", "value", near_view->def().near.center,
                    50.0f);
    auto fresh_near = qn.Collect();
    ASSERT_TRUE(fresh_near.ok());
    ASSERT_EQ(near_view->Members(), *fresh_near) << "tick " << tick;
  };

  for (int tick = 1; tick <= 30; ++tick) {
    world.AdvanceTick();
    // ~8% churn: hp writes and movement, plus destroy/respawn pairs.
    for (size_t i = 0; i < kWorld / 12; ++i) {
      EntityId e = pool[rng.NextU64() % pool.size()];
      if (!world.Alive(e)) continue;
      if (rng.NextBool(0.5)) {
        world.Patch<Health>(e,
                            [&](Health& h) { h.hp = rng.NextFloat(0, 100); });
      } else {
        world.Patch<Position>(e, [&](Position& p) {
          p.value.x += rng.NextFloat(-30, 30);
          p.value.z += rng.NextFloat(-30, 30);
        });
      }
    }
    for (int i = 0; i < 40; ++i) {
      size_t idx = rng.NextU64() % pool.size();
      if (world.Alive(pool[idx])) world.Destroy(pool[idx]);
      EntityId e = world.Create();
      world.Set(e, Health{rng.NextFloat(0, 100), 100.0f});
      world.Set(e, Position{{rng.NextFloat(0, 1000), 0,
                             rng.NextFloat(0, 1000)}});
      pool[idx] = e;
    }
    if (tick % 10 == 0) {
      ASSERT_TRUE(near_view
                      ->Recenter({rng.NextFloat(0, 1000), 0,
                                  rng.NextFloat(0, 1000)})
                      .ok());
    }
    catalog.Maintain();
    check(tick);
    if (HasFatalFailure()) return;
  }
  // Maintenance actually ran incrementally, it did not repopulate.
  EXPECT_GT(view->stats().reevaluated, 0u);
  EXPECT_EQ(view->stats().repopulations, 1u);
}

TEST_F(ViewChurnStressTest, ParallelPhaseViewReadsAreRaceFree) {
  QueryPlanner planner(&world);
  ViewCatalog catalog(&world, &planner);

  ViewDef def;
  def.name = "hot";
  def.where = {{"Health", "hp", CmpOp::kGe, 50.0}};
  def.aggregate = AggKind::kCount;
  def.agg_component = "Health";
  def.agg_field = "hp";
  ASSERT_TRUE(catalog.Register(def).ok());

  Rng rng(777);
  for (int i = 0; i < 2000; ++i) {
    EntityId e = world.Create();
    world.Set(e, Health{rng.NextFloat(0, 100), 100.0f});
  }

  script::ScriptHostOptions opts;
  opts.num_threads = 4;
  opts.planner = &planner;
  opts.views = &catalog;
  script::ScriptHost host(&world, opts);
  // Every entity reads the view during the parallel phase: size, exact
  // aggregate (folds the shared sorted-members cache) and membership; the
  // first readers of a tick race to rebuild the sort cache.
  ASSERT_TRUE(host.Load("fn tick(e) {\n"
                        "  let n = view_count(\"hot\")\n"
                        "  let c = view_aggregate(\"hot\")\n"
                        "  if n != c { emit(\"mismatch\", e, 1) }\n"
                        "  let m = view_members(\"hot\")\n"
                        "  if len(m) != n { emit(\"mismatch\", e, 1) }\n"
                        "  if view_contains(\"hot\", e) {\n"
                        "    set(e, \"Health\", \"hp\", random() * 100)\n"
                        "  }\n"
                        "}\n")
                  .ok());
  double mismatches = 0;
  host.OnChannel("mismatch", [&](EntityId, double v) { mismatches += v; });

  for (int tick = 1; tick <= 15; ++tick) {
    world.AdvanceTick();
    auto stats = host.RunTickOver("tick", "Health");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_EQ(stats->script_errors, 0u) << stats->first_error.ToString();
  }
  EXPECT_EQ(mismatches, 0.0);

  // Post-run differential check.
  catalog.Maintain();
  DynamicQuery q(&world);
  q.SetPlanner(&planner);
  q.WhereField("Health", "hp", CmpOp::kGe, 50.0);
  q.With("Health");
  auto fresh = q.Collect();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(catalog.Find("hot")->Members(), *fresh);
}

}  // namespace
}  // namespace gamedb::views
