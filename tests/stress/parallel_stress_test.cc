// Stress tier (ctest label: stress): bigger worlds and longer parallel
// loops than the unit suites run, sized to still finish in seconds. These
// are the suites the ThreadSanitizer CI job runs — they exist to make
// cross-thread interleavings dense enough that a reintroduced race (e.g. a
// mutation builtin writing the World from a query-phase thread, or a
// thread-pool completion bug) actually fires.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/serialize.h"
#include "core/state_effect.h"
#include "script/host.h"

namespace gamedb {
namespace {

using script::ScriptHost;
using script::ScriptHostOptions;

class ParallelStressTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }
};

// A long scripted parallel loop over a big world must stay bit-identical
// to the single-threaded run — the unit-suite determinism proof, scaled up
// until scheduling noise has thousands of chances to leak in.
TEST_F(ParallelStressTest, LargeScriptedWorldDeterminism) {
  constexpr size_t kEntities = 4096;
  constexpr size_t kTicks = 30;
  auto run = [](size_t threads) {
    World world;
    std::vector<EntityId> ids;
    ids.reserve(kEntities);
    for (size_t i = 0; i < kEntities; ++i) {
      EntityId e = world.Create();
      ids.push_back(e);
      world.Set(e, Health{40.0f + float(i % 61), 120.0f});
      Combat c;
      c.attack = 0.5f + float(i % 9);
      world.Set(e, c);
    }
    for (size_t i = 0; i < kEntities; ++i) {
      world.Patch<Combat>(ids[i], [&](Combat& c) {
        c.target = ids[(i * 37 + 11) % kEntities];  // scattered targets
      });
    }
    ScriptHostOptions opts;
    opts.num_threads = threads;
    ScriptHost host(&world, opts);
    host.OnChannel("damage", [&world](EntityId e, double total) {
      bool dead = false;
      world.Patch<Health>(e, [&](Health& h) {
        h.hp -= float(total);
        dead = h.hp <= 0.0f;
      });
      if (dead) world.Destroy(e);
    });
    host.OnChannel("regen", [&world](EntityId e, double total) {
      world.Patch<Health>(e, [&](Health& h) {
        h.hp = std::min(h.hp + float(total), h.max_hp);
      });
    });
    EXPECT_TRUE(host
                    .Load("fn tick(e) {\n"
                          "  let t = get(e, \"Combat\", \"target\")\n"
                          "  if is_alive(t) {\n"
                          "    emit(\"damage\", t, get(e, \"Combat\", "
                          "\"attack\"))\n"
                          "  }\n"
                          "  emit(\"regen\", e, random() * 3)\n"
                          "  if get(e, \"Health\", \"hp\") > 110 {\n"
                          "    set(e, \"Health\", \"hp\", 110)\n"
                          "  }\n"
                          "}")
                    .ok());
    for (size_t t = 0; t < kTicks; ++t) {
      world.AdvanceTick();
      auto stats = host.RunTickOver("tick", "Combat");
      EXPECT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(stats->script_errors, 0u) << stats->first_error.ToString();
    }
    std::string snap;
    EncodeWorldSnapshot(world, &snap);
    return snap;
  };
  std::string seq = run(1);
  EXPECT_EQ(seq, run(4));
  EXPECT_EQ(seq, run(8));
}

// Many external threads hammering one pool with overlapping batches, some
// of whose tasks submit and wait on nested batches.
TEST(ThreadPoolStressTest, OverlappingAndNestedBatches) {
  ThreadPool pool(8);
  std::atomic<long> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 6; ++c) {
    callers.emplace_back([&pool, &total, c] {
      for (int round = 0; round < 60; ++round) {
        if ((round + c) % 3 == 0) {
          // Nested: every chunk fans out again from inside its task.
          ThreadPool::TaskGroup outer;
          for (int part = 0; part < 4; ++part) {
            pool.Submit(&outer, [&pool, &total] {
              pool.ParallelForChunks(512, [&](size_t, size_t b, size_t e) {
                total.fetch_add(long(e - b));
              });
            });
          }
          pool.Wait(outer);
        } else {
          pool.ParallelFor(2048, [&](size_t b, size_t e) {
            total.fetch_add(long(e - b));
          });
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  pool.Wait();
  // Per caller: 20 nested rounds of 4*512 + 40 plain rounds of 2048.
  EXPECT_EQ(total.load(), 6L * (20 * 4 * 512 + 40 * 2048));
}

// Long contribute/drain loop through the state-effect executor: per-shard
// buffers on pool threads, merged drains on the caller thread.
TEST(StateEffectStressTest, RepeatedParallelContributeDrain) {
  StateEffectExecutor exec(8);
  Effect<double> acc(exec.shard_count());
  std::vector<int> items(20000);
  for (size_t i = 0; i < items.size(); ++i) items[i] = int(i);
  double expected_per_round = 0;
  for (int v : items) expected_per_round += double(v % 97);
  for (int round = 0; round < 50; ++round) {
    exec.ParallelOver(items, [&](size_t shard, int v) {
      acc.Contribute(shard, EntityId(uint32_t(v % 512), 0), double(v % 97));
    });
    double sum = 0;
    acc.Drain([&](EntityId, const double& v) { sum += v; });
    ASSERT_DOUBLE_EQ(sum, expected_per_round);
  }
}

}  // namespace
}  // namespace gamedb
