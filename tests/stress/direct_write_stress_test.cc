// Stress tier (ctest label: stress; TSan CI target) for
// MutationPolicy::kDirectChecked: the analysis-gated in-place write path
// at real thread fan-out over a big world. The unit-suite differential
// test (tests/script/host_test.cc DirectCheckedTest) proves the semantics;
// this tier makes the interleavings dense enough that a reintroduced race
// — e.g. the gate's per-shard cursor read from the wrong thread, a
// version bump from a pool thread, or StoreById growing the store map
// mid-query — actually fires under ThreadSanitizer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/serialize.h"
#include "script/host.h"

namespace gamedb {
namespace {

using script::MutationPolicy;
using script::ScriptHost;
using script::ScriptHostOptions;

class DirectWriteStressTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }
};

// Self-only writes across three tables, branchy and randomized — eligible
// for the direct path, with every shard writing its own rows in place
// while neighbors do the same.
constexpr char kStormScript[] = R"(
fn storm(e) {
  let a = get(e, "Combat", "attack")
  let r = random()
  if r > 0.66 {
    set(e, "Health", "hp", a * 2 + r * 20)
  }
  if r <= 0.66 {
    set(e, "Health", "max_hp", 80 + a + r)
  }
  set(e, "Combat", "range", r * 6)
  set(e, "Velocity", "max_accel", a + r)
}
)";

constexpr size_t kEntities = 4096;
constexpr size_t kTicks = 25;

TEST_F(DirectWriteStressTest, LargeStormBitIdenticalToDeferUnderFanOut) {
  auto run = [](MutationPolicy policy, size_t threads) {
    World world;
    std::vector<EntityId> ids;
    ids.reserve(kEntities);
    for (size_t i = 0; i < kEntities; ++i) {
      EntityId e = world.Create();
      ids.push_back(e);
      world.Set(e, Health{50.0f + float(i % 37), 150.0f});
      Combat c;
      c.attack = 1.0f + float(i % 13);
      world.Set(e, c);
      Velocity v;
      v.max_accel = float(i % 5);
      world.Set(e, v);
    }
    ScriptHostOptions opts;
    opts.num_threads = threads;
    opts.mutations = policy;
    ScriptHost host(&world, opts);
    EXPECT_TRUE(host.Load(kStormScript).ok());
    size_t direct_writes = 0;
    size_t redirected = 0;
    for (size_t t = 0; t < kTicks; ++t) {
      world.AdvanceTick();
      auto stats = host.RunTick("storm", ids);
      EXPECT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(stats->script_errors, 0u) << stats->first_error.ToString();
      direct_writes += stats->direct_writes;
      redirected += stats->direct_redirected;
    }
    if (policy == MutationPolicy::kDirectChecked) {
      EXPECT_EQ(host.direct_ticks(), kTicks);
      EXPECT_GT(direct_writes, kEntities);  // several writes/entity/tick
      EXPECT_EQ(redirected, 0u);
    }
    std::string snapshot;
    EncodeWorldSnapshot(world, &snapshot);
    return snapshot;
  };

  std::string defer = run(MutationPolicy::kDefer, 1);
  EXPECT_EQ(run(MutationPolicy::kDirectChecked, 4), defer);
  EXPECT_EQ(run(MutationPolicy::kDirectChecked, 8), defer);
}

}  // namespace
}  // namespace gamedb
