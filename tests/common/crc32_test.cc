#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace gamedb {
namespace {

TEST(Crc32Test, KnownVector) {
  // CRC-32C of "123456789" is 0xE3069283 (iSCSI test vector).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t one_shot = Crc32c(data.data(), data.size());
  uint32_t partial = Crc32c(data.data(), 10);
  partial = Crc32c(data.data() + 10, data.size() - 10, partial);
  EXPECT_EQ(partial, one_shot);
}

TEST(Crc32Test, SensitiveToSingleBitFlip) {
  std::string data(64, 'a');
  uint32_t before = Crc32c(data.data(), data.size());
  data[17] = static_cast<char>(data[17] ^ 0x01);
  EXPECT_NE(Crc32c(data.data(), data.size()), before);
}

TEST(Crc32Test, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);  // masking must change the value
  }
}

}  // namespace
}  // namespace gamedb
