#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace gamedb {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextBounded(17);
    ASSERT_LT(v, 17u);
    int64_t s = rng.NextInt(-5, 5);
    ASSERT_GE(s, -5);
    ASSERT_LE(s, 5);
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    float f = rng.NextFloat(2.0f, 3.0f);
    ASSERT_GE(f, 2.0f);
    ASSERT_LT(f, 3.0f);
  }
}

TEST(RngTest, NextIntCoversFullRange) {
  Rng rng(99);
  std::vector<bool> seen(11, false);
  for (int i = 0; i < 2000; ++i) {
    seen[static_cast<size_t>(rng.NextInt(0, 10))] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, PointInBoxStaysInBox) {
  Rng rng(5);
  Aabb box({-3, 0, 2}, {4, 1, 9});
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(box.Contains(rng.NextPointIn(box)));
  }
}

TEST(RngTest, DirXZIsUnitAndPlanar) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    Vec3 d = rng.NextDirXZ();
    ASSERT_NEAR(d.Length(), 1.0f, 1e-5f);
    ASSERT_EQ(d.y, 0.0f);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(2026);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

class ZipfParamTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfParamTest, SamplesInRangeAndSkewed) {
  double alpha = GetParam();
  const uint64_t n = 1000;
  ZipfGenerator zipf(n, alpha);
  Rng rng(31337);
  std::vector<int> counts(n, 0);
  const int samples = 50000;
  for (int i = 0; i < samples; ++i) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  if (alpha >= 0.8) {
    // Hot item dominates the median item under real skew.
    EXPECT_GT(counts[0], counts[n / 2] * 5);
    // Top-10 items get a sizeable share.
    int top = 0;
    for (int i = 0; i < 10; ++i) top += counts[i];
    EXPECT_GT(top, samples / 10);
  }
  if (alpha == 0.0) {
    // Uniform: hottest item should not be wildly over-represented.
    int max_count = 0;
    for (int c : counts) max_count = std::max(max_count, c);
    EXPECT_LT(max_count, samples * 5 / n);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfParamTest,
                         ::testing::Values(0.0, 0.5, 0.8, 0.99, 1.2));

}  // namespace
}  // namespace gamedb
