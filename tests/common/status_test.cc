#include "common/status.h"

#include <gtest/gtest.h>

namespace gamedb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status st = Status::NotFound("entity 42");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "entity 42");
  EXPECT_EQ(st.ToString(), "NotFound: entity 42");
}

TEST(StatusTest, AllPredicatesMatchTheirFactory) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::SchemaMismatch("x").IsSchemaMismatch());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::Busy("a"), Status::Busy("a"));
  EXPECT_FALSE(Status::Busy("a") == Status::Busy("b"));
  EXPECT_FALSE(Status::Busy("a") == Status::Aborted("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    GAMEDB_RETURN_NOT_OK(Status::IOError("disk"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsIOError());

  auto succeeds = []() -> Status {
    GAMEDB_RETURN_NOT_OK(Status::OK());
    return Status::Aborted("later");
  };
  EXPECT_TRUE(succeeds().IsAborted());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.status(), Status::OK());
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Busy("locked");
    return 41;
  };
  auto outer = [&](bool fail) -> Result<int> {
    GAMEDB_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 42);
  EXPECT_TRUE(outer(true).status().IsBusy());
}

}  // namespace
}  // namespace gamedb
