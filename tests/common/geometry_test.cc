#include "common/geometry.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gamedb {
namespace {

TEST(Vec3Test, Arithmetic) {
  Vec3 a(1, 2, 3), b(4, 5, 6);
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
  EXPECT_EQ(2.0f * a, Vec3(2, 4, 6));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
  EXPECT_FLOAT_EQ(a.Dot(b), 32.0f);
  EXPECT_EQ(a.Cross(b), Vec3(-3, 6, -3));
}

TEST(Vec3Test, LengthAndNormalize) {
  Vec3 v(3, 4, 0);
  EXPECT_FLOAT_EQ(v.Length(), 5.0f);
  EXPECT_FLOAT_EQ(v.LengthSquared(), 25.0f);
  Vec3 n = v.Normalized();
  EXPECT_NEAR(n.Length(), 1.0f, 1e-6f);
  EXPECT_EQ(Vec3().Normalized(), Vec3());  // zero vector stays zero
}

TEST(AabbTest, DefaultIsEmpty) {
  Aabb box;
  EXPECT_TRUE(box.Empty());
  EXPECT_FLOAT_EQ(box.Volume(), 0.0f);
  EXPECT_FALSE(box.Intersects(box));
}

TEST(AabbTest, ContainsAndIntersects) {
  Aabb a({0, 0, 0}, {10, 10, 10});
  Aabb b({5, 5, 5}, {15, 15, 15});
  Aabb c({20, 20, 20}, {30, 30, 30});
  EXPECT_TRUE(a.Contains(Vec3(5, 5, 5)));
  EXPECT_TRUE(a.Contains(Vec3(0, 0, 0)));  // boundary inclusive
  EXPECT_FALSE(a.Contains(Vec3(10.01f, 5, 5)));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Aabb({1, 1, 1}, {2, 2, 2})));
  EXPECT_FALSE(a.Contains(b));
}

TEST(AabbTest, UnionIntersection) {
  Aabb a({0, 0, 0}, {4, 4, 4});
  Aabb b({2, 2, 2}, {6, 6, 6});
  Aabb u = a.Union(b);
  EXPECT_EQ(u.min, Vec3(0, 0, 0));
  EXPECT_EQ(u.max, Vec3(6, 6, 6));
  Aabb i = a.Intersection(b);
  EXPECT_EQ(i.min, Vec3(2, 2, 2));
  EXPECT_EQ(i.max, Vec3(4, 4, 4));
  EXPECT_TRUE(a.Intersection(Aabb({9, 9, 9}, {10, 10, 10})).Empty());
  // Union with empty is identity.
  EXPECT_EQ(a.Union(Aabb()).min, a.min);
  EXPECT_EQ(a.Union(Aabb()).max, a.max);
}

TEST(AabbTest, SphereQueries) {
  Aabb box({0, 0, 0}, {10, 10, 10});
  EXPECT_TRUE(box.IntersectsSphere({5, 5, 5}, 0.1f));   // center inside
  EXPECT_TRUE(box.IntersectsSphere({12, 5, 5}, 2.5f));  // overlaps face
  EXPECT_FALSE(box.IntersectsSphere({15, 5, 5}, 2.0f));
  EXPECT_FLOAT_EQ(box.DistanceSquaredTo({12, 5, 5}), 4.0f);
  EXPECT_FLOAT_EQ(box.DistanceSquaredTo({5, 5, 5}), 0.0f);
}

TEST(AabbTest, FromSphereInflated) {
  Aabb s = Aabb::FromSphere({1, 2, 3}, 2.0f);
  EXPECT_EQ(s.min, Vec3(-1, 0, 1));
  EXPECT_EQ(s.max, Vec3(3, 4, 5));
  Aabb g = Aabb::FromPoint({0, 0, 0}).Inflated(1.0f);
  EXPECT_EQ(g.min, Vec3(-1, -1, -1));
  EXPECT_EQ(g.max, Vec3(1, 1, 1));
}

TEST(Vec2Test, CrossOrientation) {
  Vec2 a(0, 0), b(1, 0), c(1, 1);
  EXPECT_GT(Orient2D(a, b, c), 0.0f);  // CCW
  EXPECT_LT(Orient2D(a, c, b), 0.0f);  // CW
  EXPECT_FLOAT_EQ(Orient2D(a, b, Vec2(2, 0)), 0.0f);  // collinear
}

TEST(GeometryProperty, UnionContainsBothOperands) {
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    Aabb world({-100, -100, -100}, {100, 100, 100});
    Vec3 p1 = rng.NextPointIn(world), p2 = rng.NextPointIn(world);
    Vec3 p3 = rng.NextPointIn(world), p4 = rng.NextPointIn(world);
    Aabb a(Min(p1, p2), Max(p1, p2));
    Aabb b(Min(p3, p4), Max(p3, p4));
    Aabb u = a.Union(b);
    ASSERT_TRUE(u.Contains(a));
    ASSERT_TRUE(u.Contains(b));
    Aabb inter = a.Intersection(b);
    if (!inter.Empty()) {
      ASSERT_TRUE(a.Contains(inter));
      ASSERT_TRUE(b.Contains(inter));
      ASSERT_TRUE(a.Intersects(b));
    } else {
      ASSERT_FALSE(a.Intersects(b));
    }
  }
}

}  // namespace
}  // namespace gamedb
