#include "common/coding.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gamedb {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed32(&buf, 0xFFFFFFFFu);
  EXPECT_EQ(buf.size(), 16u);

  Decoder dec(buf);
  uint32_t v;
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 0xDEADBEEFu);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 0xFFFFFFFFu);
  EXPECT_TRUE(dec.empty());
}

TEST(CodingTest, Fixed32IsLittleEndian) {
  std::string buf;
  PutFixed32(&buf, 0x04030201u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
  EXPECT_EQ(buf[2], 0x03);
  EXPECT_EQ(buf[3], 0x04);
}

TEST(CodingTest, VarintBoundaries) {
  // Each 7-bit boundary changes the encoded length.
  const uint64_t cases[] = {0,       127,        128,        16383,
                            16384,   (1ull << 35) - 1, 1ull << 35,
                            ~0ull};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    Decoder dec(buf);
    uint64_t out;
    ASSERT_TRUE(dec.GetVarint64(&out).ok()) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(dec.empty());
  }
}

TEST(CodingTest, VarintSignedZigZag) {
  const int64_t cases[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int64_t v : cases) {
    std::string buf;
    PutVarintSigned64(&buf, v);
    Decoder dec(buf);
    int64_t out;
    ASSERT_TRUE(dec.GetVarintSigned64(&out).ok()) << v;
    EXPECT_EQ(out, v);
  }
  // Small magnitudes encode small.
  std::string buf;
  PutVarintSigned64(&buf, -1);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(CodingTest, FloatDoubleBitExact) {
  std::string buf;
  PutFloat(&buf, 3.14159f);
  PutDouble(&buf, -2.718281828459045);
  PutFloat(&buf, 0.0f);
  Decoder dec(buf);
  float f;
  double d;
  ASSERT_TRUE(dec.GetFloat(&f).ok());
  EXPECT_EQ(f, 3.14159f);
  ASSERT_TRUE(dec.GetDouble(&d).ok());
  EXPECT_EQ(d, -2.718281828459045);
  ASSERT_TRUE(dec.GetFloat(&f).ok());
  EXPECT_EQ(f, 0.0f);
}

TEST(CodingTest, LengthPrefixed) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(300, 'x'));
  Decoder dec(buf);
  std::string_view s;
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s.size(), 300u);
  EXPECT_TRUE(dec.empty());
}

TEST(CodingTest, UnderflowReturnsCorruption) {
  std::string buf;
  PutFixed32(&buf, 7);
  Decoder dec(buf);
  uint64_t v64;
  EXPECT_TRUE(dec.GetFixed64(&v64).IsCorruption());

  Decoder dec2("\xff\xff");  // truncated varint
  uint64_t v;
  EXPECT_TRUE(dec2.GetVarint64(&v).IsCorruption());

  Decoder dec3("\x05" "abc");  // length prefix says 5, only 3 bytes
  std::string_view s;
  EXPECT_TRUE(dec3.GetLengthPrefixed(&s).IsCorruption());
}

TEST(CodingTest, OverlongVarintRejected) {
  std::string buf(11, '\x80');  // 11 continuation bytes
  Decoder dec(buf);
  uint64_t v;
  EXPECT_TRUE(dec.GetVarint64(&v).IsCorruption());
}

TEST(CodingTest, RandomRoundTripProperty) {
  Rng rng(20260609);
  for (int i = 0; i < 2000; ++i) {
    uint64_t u = rng.NextU64() >> (rng.NextU64() % 64);
    int64_t s = static_cast<int64_t>(rng.NextU64());
    std::string buf;
    PutVarint64(&buf, u);
    PutVarintSigned64(&buf, s);
    Decoder dec(buf);
    uint64_t uo;
    int64_t so;
    ASSERT_TRUE(dec.GetVarint64(&uo).ok());
    ASSERT_TRUE(dec.GetVarintSigned64(&so).ok());
    ASSERT_EQ(uo, u);
    ASSERT_EQ(so, s);
    ASSERT_TRUE(dec.empty());
  }
}

}  // namespace
}  // namespace gamedb
