// LatencyHistogram: exactness below one octave's sub-bucket width, the
// ~3.2% (1/32) relative-error bound everywhere else, quantile semantics at
// the edges, and exact bucket-wise merging.

#include "common/percentile.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace gamedb {
namespace {

TEST(LatencyHistogramTest, EmptyIsAllZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(99.9), 0u);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < 32; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  // Values below kSub=32 land in exact single-value buckets: the p-th
  // percentile of {0..31} is exactly the rank-⌈32p/100⌉ element.
  EXPECT_EQ(h.Percentile(50), 15u);
  EXPECT_EQ(h.Percentile(100), 31u);
  EXPECT_EQ(h.Percentile(3.125), 0u);  // rank 1
}

TEST(LatencyHistogramTest, SingleValueAllQuantilesCollapse) {
  LatencyHistogram h;
  h.Record(123456789);
  for (double p : {0.1, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 123456789u) << p;
  }
  EXPECT_EQ(h.mean(), 123456789.0);
}

TEST(LatencyHistogramTest, RelativeErrorBoundHolds) {
  // For any single recorded value v, Percentile must return a value within
  // one sub-bucket width (1/32 of v's octave) — and clamped to [min,max]
  // it returns v exactly when only v was recorded. Exercise the bound via
  // pairs instead: record v and 4v, and check p50's bucket edge is within
  // 1/32 relative error of v.
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    uint64_t v = (rng.NextU64() % (uint64_t{1} << 40)) + 32;
    LatencyHistogram h;
    h.Record(v);
    h.Record(v * 4);  // forces p50 to resolve v's bucket, unclamped above
    uint64_t got = h.Percentile(50);
    double rel = (double(got) - double(v)) / double(v);
    EXPECT_GE(rel, 0.0) << v;        // upper edge never undershoots
    EXPECT_LE(rel, 1.0 / 32 + 1e-9) << v << " -> " << got;
  }
}

TEST(LatencyHistogramTest, QuantilesAreMonotoneAndClamped) {
  Rng rng(7);
  LatencyHistogram h;
  uint64_t lo = UINT64_MAX, hi = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextU64() % 5000000;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    h.Record(v);
  }
  uint64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    uint64_t q = h.Percentile(p);
    EXPECT_GE(q, prev) << p;
    EXPECT_GE(q, lo) << p;
    EXPECT_LE(q, hi) << p;
    prev = q;
  }
  EXPECT_EQ(h.Percentile(100), hi);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  Rng rng(11);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.NextU64() % 1000000;
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.mean(), combined.mean());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p)) << p;
  }
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(42);
  h.Record(9000);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(LatencyHistogramTest, HandlesExtremeValues) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(UINT64_MAX);
  h.Record(uint64_t{1} << 63);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_EQ(h.Percentile(100), UINT64_MAX);
  // p34 is rank 2 of 3 → the 2^63 sample's bucket upper edge (within one
  // 2^58-wide sub-bucket above it).
  EXPECT_GE(h.Percentile(34), uint64_t{1} << 63);
  EXPECT_LE(h.Percentile(34), (uint64_t{1} << 63) + (uint64_t{1} << 58));
}

TEST(MonotonicNanosTest, IsMonotone) {
  uint64_t a = MonotonicNanos();
  uint64_t b = MonotonicNanos();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace gamedb
