#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace gamedb {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSmallRunsInline) {
  ThreadPool pool(4);
  std::vector<int> hits(3, 0);  // not atomic: must be single-threaded
  pool.ParallelFor(hits.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
}

TEST(ThreadPoolTest, ParallelForChunksShardIdsAreDisjointAndBounded) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> owner(n);
  for (auto& o : owner) o.store(-1);
  pool.ParallelForChunks(n, [&](size_t chunk, size_t b, size_t e) {
    ASSERT_LT(chunk, pool.num_threads());
    for (size_t i = b; i < e; ++i) {
      int expected = -1;
      ASSERT_TRUE(owner[i].compare_exchange_strong(
          expected, static_cast<int>(chunk)));
    }
  });
  for (auto& o : owner) ASSERT_NE(o.load(), -1);
}

TEST(ThreadPoolTest, ChunkingIsDeterministic) {
  std::vector<std::pair<size_t, size_t>> first, second;
  for (int round = 0; round < 2; ++round) {
    ThreadPool pool(3);
    std::mutex mu;
    auto& out = round == 0 ? first : second;
    pool.ParallelForChunks(100, [&](size_t, size_t b, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      out.emplace_back(b, e);
    });
    std::sort(out.begin(), out.end());
  }
  EXPECT_EQ(first, second);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(50, [&](size_t b, size_t e) {
    counter.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(1); });
  });
  // Wait until both generations drain.
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

// Regression: Wait(group) must complete while an unrelated batch is still
// blocked. The old single-global-counter Wait() hung here until the slow
// batch's tasks were released.
TEST(ThreadPoolTest, GroupWaitIgnoresUnrelatedInFlightBatch) {
  ThreadPool pool(4);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;

  ThreadPool::TaskGroup slow;
  for (int i = 0; i < 2; ++i) {
    pool.Submit(&slow, [&] {
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&] { return gate_open; });
    });
  }

  std::atomic<int> fast_done{0};
  ThreadPool::TaskGroup fast;
  for (int i = 0; i < 8; ++i) {
    pool.Submit(&fast, [&] { fast_done.fetch_add(1); });
  }
  pool.Wait(fast);  // must return even though `slow` is still blocked
  EXPECT_EQ(fast_done.load(), 8);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  pool.Wait(slow);
}

// Regression: concurrent ParallelFor calls from different external threads
// each wait on their own batch only; with the shared in_flight_ counter they
// blocked on each other's tasks.
TEST(ThreadPoolTest, ConcurrentParallelForBatchesDoNotCrossBlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        pool.ParallelFor(256, [&](size_t b, size_t e) {
          total.fetch_add(static_cast<int>(e - b));
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4 * 50 * 256);
}

// Regression: a task that submits nested work and waits for it used to
// deadlock the worker (Wait blocked inside the pool while the nested tasks
// needed that same worker). Help-running waits make this safe even on a
// single-thread pool.
TEST(ThreadPoolTest, NestedSubmitAndWaitFromTask) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  ThreadPool::TaskGroup outer;
  pool.Submit(&outer, [&] {
    ThreadPool::TaskGroup inner;
    for (int i = 0; i < 4; ++i) {
      pool.Submit(&inner, [&] { counter.fetch_add(1); });
    }
    pool.Wait(inner);
    counter.fetch_add(100);
  });
  pool.Wait(outer);
  EXPECT_EQ(counter.load(), 104);
}

// Nested ParallelForChunks from inside a pool task (the scripted query
// phase does this when a script builtin parallelizes internally).
TEST(ThreadPoolTest, NestedParallelForFromTask) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  ThreadPool::TaskGroup outer;
  for (int t = 0; t < 4; ++t) {
    pool.Submit(&outer, [&] {
      pool.ParallelForChunks(100, [&](size_t, size_t b, size_t e) {
        sum.fetch_add(static_cast<int>(e - b));
      });
    });
  }
  pool.Wait(outer);
  EXPECT_EQ(sum.load(), 400);
}

// Two tasks blocked in global Wait() at the same time must both return:
// each would otherwise count the other's (unfinishable) task as pending
// work and deadlock the pair — and everyone waiting behind them.
TEST(ThreadPoolTest, ConcurrentGlobalWaitsFromTwoTasksDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> executing{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      executing.fetch_add(1);
      while (executing.load() < 2) std::this_thread::yield();
      pool.Wait();  // both tasks reach this: the pool must treat both
                    // blocked stacks as quiesced
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 2);
}

// A task blocked in Wait(group) and that group's task calling the global
// Wait() must release each other: the group waiter's stacked task cannot
// finish first, so the global waiter has to exclude it from the drain —
// otherwise each waits on the other forever.
TEST(ThreadPoolTest, GroupWaiterAndInTaskGlobalWaiterReleaseEachOther) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::atomic<bool> inner_running{false};
  pool.Submit([&] {
    ThreadPool::TaskGroup g;
    pool.Submit(&g, [&] {
      inner_running.store(true);
      pool.Wait();  // global wait from inside a group-tracked task
      done.fetch_add(1);
    });
    // Ensure the group task runs on the other worker (not helped inline).
    while (!inner_running.load()) std::this_thread::yield();
    pool.Wait(g);
    done.fetch_add(10);
  });
  pool.Wait();
  EXPECT_EQ(done.load(), 11);
}

// Wait() (pool-wide) still covers tasks submitted without a group, and
// helps instead of deadlocking when called from a task.
TEST(ThreadPoolTest, GlobalWaitFromInsideTask) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    pool.Submit([&] { counter.fetch_add(1); });
    pool.Wait();  // helper runs the nested task on this same worker
    counter.fetch_add(10);
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

}  // namespace
}  // namespace gamedb
