#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gamedb {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSmallRunsInline) {
  ThreadPool pool(4);
  std::vector<int> hits(3, 0);  // not atomic: must be single-threaded
  pool.ParallelFor(hits.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
}

TEST(ThreadPoolTest, ParallelForChunksShardIdsAreDisjointAndBounded) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> owner(n);
  for (auto& o : owner) o.store(-1);
  pool.ParallelForChunks(n, [&](size_t chunk, size_t b, size_t e) {
    ASSERT_LT(chunk, pool.num_threads());
    for (size_t i = b; i < e; ++i) {
      int expected = -1;
      ASSERT_TRUE(owner[i].compare_exchange_strong(
          expected, static_cast<int>(chunk)));
    }
  });
  for (auto& o : owner) ASSERT_NE(o.load(), -1);
}

TEST(ThreadPoolTest, ChunkingIsDeterministic) {
  std::vector<std::pair<size_t, size_t>> first, second;
  for (int round = 0; round < 2; ++round) {
    ThreadPool pool(3);
    std::mutex mu;
    auto& out = round == 0 ? first : second;
    pool.ParallelForChunks(100, [&](size_t, size_t b, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      out.emplace_back(b, e);
    });
    std::sort(out.begin(), out.end());
  }
  EXPECT_EQ(first, second);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(50, [&](size_t b, size_t e) {
    counter.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(1); });
  });
  // Wait until both generations drain.
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace gamedb
