#include "common/string_util.h"

#include <gtest/gtest.h>

namespace gamedb {
namespace {

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("nosep", ',')[0], "nosep");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("gamedb", "game"));
  EXPECT_FALSE(StartsWith("game", "gamedb"));
  EXPECT_TRUE(EndsWith("file.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", "file.xml"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("HeLLo123"), "hello123");
}

TEST(StringUtilTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StringFormat("plain"), "plain");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, Fnv1a64StableAndDistinct) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64(std::string_view("\0", 1)));
  // Known FNV-1a 64 vector.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
}

TEST(StringUtilTest, ParseDouble) {
  double d;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_TRUE(ParseDouble("-1e3", &d));
  EXPECT_DOUBLE_EQ(d, -1000.0);
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("3.5x", &d));
  EXPECT_FALSE(ParseDouble("abc", &d));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12abc", &v));
  // Overflow must fail, not clamp to INT64_MAX/MIN.
  EXPECT_FALSE(ParseInt64("99999999999999999999", &v));
  EXPECT_FALSE(ParseInt64("-99999999999999999999", &v));
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v;
  EXPECT_TRUE(ParseUint64("42", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(ParseUint64("00000000000000000007", &v));  // zero-padded ticks
  EXPECT_EQ(v, 7u);
  // The full unsigned range: INT64_MAX+1 and UINT64_MAX must parse.
  EXPECT_TRUE(ParseUint64("9223372036854775808", &v));
  EXPECT_EQ(v, 9223372036854775808ull);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, 18446744073709551615ull);
  // Overflow, signs, garbage.
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("+1", &v));
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12abc", &v));
  EXPECT_FALSE(ParseUint64("4.2", &v));
}

}  // namespace
}  // namespace gamedb
