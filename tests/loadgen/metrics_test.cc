// The machine-readable report surface: JSON rendering key order, the
// BENCH_e15_* artifact writer, and the schema validator the CI
// scenario-smoke job relies on (`loadgen --validate`).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "loadgen/metrics.h"
#include "loadgen/scenario.h"

namespace gamedb::loadgen {
namespace {

ScenarioReport SampleReport(bool collect_timing) {
  ScenarioReport r;
  r.config.scenario = "steady_state";
  r.config.clients = 6;
  r.config.npcs = 100;
  r.config.ticks = 10;
  r.config.seed = 42;
  r.config.threads = 2;
  r.config.collect_timing = collect_timing;
  r.world_hash = "deadbeef";
  r.final_entities = 106;
  r.peak_entities = 110;
  r.logins = 6;
  r.sync_bytes_total = 1234;
  r.client_ticks = 60;
  r.sync_bytes_per_client_tick = 1234.0 / 60.0;
  if (collect_timing) {
    r.tick = {10, 100, 200, 300, 400, 150.0};
    r.script_phase = r.tick;
    r.view_maintain = r.tick;
    r.sync_phase = r.tick;
    r.persist_phase = r.tick;
    r.slo_evaluated = true;
    r.slo_detail = "ok";
  }
  return r;
}

TEST(MetricsRenderTest, TimedReportValidates) {
  std::string json = RenderReportJson(SampleReport(true));
  EXPECT_NE(json.find("\"schema\": \"gamedb.e15.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"timing\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
  Status v = ValidateReportJson(json);
  EXPECT_TRUE(v.ok()) << v.ToString() << "\n" << json;
}

TEST(MetricsRenderTest, ReplayReportOmitsTimingAndThreads) {
  std::string json = RenderReportJson(SampleReport(false));
  EXPECT_EQ(json.find("\"timing\""), std::string::npos);
  EXPECT_EQ(json.find("\"threads\""), std::string::npos);
  EXPECT_EQ(json.find("\"slo\""), std::string::npos);
  Status v = ValidateReportJson(json);
  EXPECT_TRUE(v.ok()) << v.ToString();
}

TEST(MetricsRenderTest, EscapesStrings) {
  ScenarioReport r = SampleReport(true);
  r.slo_detail = "tick \"p50\"\nover\tbudget \\ done";
  std::string json = RenderReportJson(r);
  EXPECT_NE(json.find("\\\"p50\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\\\ done"), std::string::npos);
  EXPECT_TRUE(ValidateReportJson(json).ok());
}

TEST(MetricsFileTest, WritesCanonicalArtifactName) {
  EXPECT_EQ(ReportFileName("chase"), "BENCH_e15_chase.json");
  ScenarioReport r = SampleReport(true);
  Result<std::string> path = WriteReportFile(r, ::testing::TempDir());
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_NE(path.value().find("BENCH_e15_steady_state.json"),
            std::string::npos);
  std::ifstream in(path.value(), std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), RenderReportJson(r));
  std::remove(path.value().c_str());
}

TEST(MetricsFileTest, UnwritableDirectoryFails) {
  EXPECT_FALSE(WriteReportFile(SampleReport(true),
                               "/nonexistent-loadgen-dir")
                   .ok());
}

// --- Validator negative space ----------------------------------------------

TEST(MetricsValidateTest, RejectsGarbage) {
  EXPECT_FALSE(ValidateReportJson("").ok());
  EXPECT_FALSE(ValidateReportJson("not json").ok());
  EXPECT_FALSE(ValidateReportJson("{").ok());
  EXPECT_FALSE(ValidateReportJson("[1,2,3]").ok());
  EXPECT_FALSE(ValidateReportJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ValidateReportJson("{\"a\":}").ok());
  EXPECT_FALSE(ValidateReportJson("{\"a\":\"unterminated").ok());
}

TEST(MetricsValidateTest, RejectsWrongSchemaTag) {
  std::string json = RenderReportJson(SampleReport(true));
  size_t pos = json.find("gamedb.e15.v1");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 13, "gamedb.e14.v1");
  EXPECT_FALSE(ValidateReportJson(json).ok());
  EXPECT_FALSE(ValidateReportJson("{\"config\":{}}").ok());
}

TEST(MetricsValidateTest, RejectsMissingSections) {
  EXPECT_FALSE(ValidateReportJson("{\"schema\":\"gamedb.e15.v1\"}").ok());
  EXPECT_FALSE(
      ValidateReportJson(
          "{\"schema\":\"gamedb.e15.v1\",\"config\":{\"scenario\":\"x\","
          "\"clients\":1,\"npcs\":1,\"ticks\":1,\"seed\":1,"
          "\"planner\":\"on\",\"collect_timing\":false}}")
          .ok())
      << "deterministic section must be required";
}

TEST(MetricsValidateTest, RejectsMissingDeterministicField) {
  std::string json = RenderReportJson(SampleReport(false));
  size_t pos = json.find("\"world_hash\"");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 12, "\"world_hush\"");
  Status v = ValidateReportJson(json);
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.ToString().find("world_hash"), std::string::npos);
}

TEST(MetricsValidateTest, RejectsWrongFieldType) {
  std::string json = RenderReportJson(SampleReport(false));
  size_t pos = json.find("\"logins\": 6");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 11, "\"logins\": \"6\"");
  EXPECT_FALSE(ValidateReportJson(json).ok());
}

TEST(MetricsValidateTest, RequiresTimingWhenCollected) {
  std::string json = RenderReportJson(SampleReport(true));
  size_t pos = json.find("\"timing\"");
  ASSERT_NE(pos, std::string::npos);
  // Truncate the timing object off (plus the comma that precedes it).
  std::string headless = json.substr(0, json.rfind(',', pos)) + "\n}\n";
  Status v = ValidateReportJson(headless);
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.ToString().find("timing"), std::string::npos);
}

TEST(MetricsValidateTest, RejectsIncompleteTimingDigest) {
  std::string json = RenderReportJson(SampleReport(true));
  size_t pos = json.find("\"p999\"");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 6, "\"p998\"");
  EXPECT_FALSE(ValidateReportJson(json).ok());
}

}  // namespace
}  // namespace gamedb::loadgen
