// Scenario-replay regression tier (reduced scale; tests/stress runs the big
// configs). The contract under test is scenario.h's determinism promise:
// for a fixed (scenario, seed, clients, npcs, ticks) every deterministic
// report field — the world-state hash above all — is identical at 1 vs 4
// ScriptHost threads and with the planner on vs off, and the replay-mode
// JSON artifact is byte-identical across thread counts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "loadgen/metrics.h"
#include "loadgen/scenario.h"

namespace gamedb::loadgen {
namespace {

ScenarioConfig TestConfig(const std::string& name) {
  ScenarioConfig cfg = DefaultConfig(name).value();
  cfg.clients = 6;
  cfg.npcs = 150;
  cfg.ticks = 24;
  cfg.seed = 77;
  cfg.collect_timing = false;
  return cfg;
}

ScenarioReport MustRun(ScenarioConfig cfg) {
  Result<ScenarioReport> r = RunScenario(cfg);
  EXPECT_TRUE(r.ok()) << cfg.scenario << ": " << r.status().ToString();
  return r.ok() ? r.value() : ScenarioReport{};
}

class ScenarioReplayTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioReplayTest, BitIdenticalAcrossThreadCounts) {
  ScenarioConfig cfg = TestConfig(GetParam());
  ScenarioReport one = MustRun(cfg);
  cfg.threads = 4;
  ScenarioReport four = MustRun(cfg);

  EXPECT_EQ(one.world_hash, four.world_hash);
  EXPECT_EQ(one.final_entities, four.final_entities);
  EXPECT_EQ(one.peak_entities, four.peak_entities);
  EXPECT_EQ(one.logins, four.logins);
  EXPECT_EQ(one.logouts, four.logouts);
  EXPECT_EQ(one.spawns, four.spawns);
  EXPECT_EQ(one.despawns, four.despawns);
  EXPECT_EQ(one.deaths, four.deaths);
  EXPECT_EQ(one.sync_bytes_total, four.sync_bytes_total);
  EXPECT_EQ(one.sync_rows_total, four.sync_rows_total);
  EXPECT_EQ(one.sync_removals_total, four.sync_removals_total);
  EXPECT_EQ(one.client_ticks, four.client_ticks);
  EXPECT_EQ(one.effect_contributions, four.effect_contributions);
  EXPECT_EQ(one.deferred_ops, four.deferred_ops);
  EXPECT_EQ(one.view_change_records, four.view_change_records);
  EXPECT_EQ(one.wounded_final, four.wounded_final);
  EXPECT_EQ(one.critical_final, four.critical_final);
  EXPECT_EQ(one.wal_records, four.wal_records);
  EXPECT_EQ(one.recovery_tick, four.recovery_tick);

  // The replay artifact itself: byte-identical, thread count and all.
  EXPECT_EQ(RenderReportJson(one), RenderReportJson(four));
}

TEST_P(ScenarioReplayTest, BitIdenticalPlannerOnVsOff) {
  ScenarioConfig cfg = TestConfig(GetParam());
  ScenarioReport on = MustRun(cfg);
  cfg.planner_on = false;
  ScenarioReport off = MustRun(cfg);
  EXPECT_EQ(on.world_hash, off.world_hash);
  EXPECT_EQ(on.final_entities, off.final_entities);
  EXPECT_EQ(on.deaths, off.deaths);
  EXPECT_EQ(on.sync_bytes_total, off.sync_bytes_total);
  EXPECT_EQ(on.effect_contributions, off.effect_contributions);
  EXPECT_EQ(on.wounded_final, off.wounded_final);
  EXPECT_EQ(on.critical_final, off.critical_final);
}

TEST_P(ScenarioReplayTest, RerunIsBitIdentical) {
  ScenarioConfig cfg = TestConfig(GetParam());
  ScenarioReport a = MustRun(cfg);
  ScenarioReport b = MustRun(cfg);
  EXPECT_EQ(a.world_hash, b.world_hash);
  EXPECT_EQ(RenderReportJson(a), RenderReportJson(b));
}

TEST_P(ScenarioReplayTest, SeedChangesTheRun) {
  ScenarioConfig cfg = TestConfig(GetParam());
  ScenarioReport a = MustRun(cfg);
  cfg.seed ^= 0xdecafbad;
  ScenarioReport b = MustRun(cfg);
  // Not a hard guarantee for every conceivable scenario, but all shipped
  // ones are rng-driven enough that a different seed must diverge.
  EXPECT_NE(a.world_hash, b.world_hash) << GetParam();
}

TEST_P(ScenarioReplayTest, EmitsSchemaValidJson) {
  ScenarioConfig cfg = TestConfig(GetParam());
  ScenarioReport replay = MustRun(cfg);
  Status v = ValidateReportJson(RenderReportJson(replay));
  EXPECT_TRUE(v.ok()) << v.ToString();

  cfg.collect_timing = true;
  ScenarioReport timed = MustRun(cfg);
  v = ValidateReportJson(RenderReportJson(timed));
  EXPECT_TRUE(v.ok()) << v.ToString();
  EXPECT_EQ(timed.tick.count, cfg.ticks);
}

TEST_P(ScenarioReplayTest, RunsDoWork) {
  ScenarioConfig cfg = TestConfig(GetParam());
  ScenarioReport r = MustRun(cfg);
  EXPECT_EQ(r.script_errors, 0u);
  EXPECT_GT(r.logins, 0u) << "no client ever connected";
  EXPECT_GT(r.client_ticks, 0u);
  EXPECT_GT(r.sync_bytes_total, 0u) << "interest-view sync moved no bytes";
  EXPECT_GT(r.effect_contributions, 0u) << "behavior script emitted nothing";
  EXPECT_GT(r.final_entities, 0u);
  EXPECT_GE(r.peak_entities, r.final_entities);
  EXPECT_GT(r.wal_records, 0u) << "persistence captured nothing";
  EXPECT_EQ(r.recovery_tick, cfg.ticks)
      << "post-run recovery did not restore to the final tick";
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioReplayTest,
                         ::testing::ValuesIn(ScenarioNames()),
                         [](const auto& info) { return info.param; });

TEST(ScenarioRegistryTest, FiveScenariosRegistered) {
  std::vector<std::string> names = ScenarioNames();
  EXPECT_GE(names.size(), 5u);
  for (const std::string& name : names) {
    EXPECT_TRUE(IsScenarioName(name));
    EXPECT_FALSE(ScenarioDescription(name).empty());
    EXPECT_TRUE(DefaultConfig(name).ok());
  }
}

TEST(ScenarioRegistryTest, UnknownScenarioIsAnError) {
  EXPECT_FALSE(IsScenarioName("nope"));
  EXPECT_FALSE(DefaultConfig("nope").ok());
  ScenarioConfig cfg;
  cfg.scenario = "nope";
  EXPECT_FALSE(RunScenario(cfg).ok());
}

TEST(ScenarioSloTest, GenerousSloPassesAndTightSloTrips) {
  ScenarioConfig cfg = TestConfig("steady_state");
  cfg.collect_timing = true;
  cfg.slo_p50_ms = 1e6;  // a thousand seconds: cannot trip
  cfg.slo_p99_ms = 1e6;
  ScenarioReport ok = MustRun(cfg);
  EXPECT_TRUE(ok.slo_evaluated);
  EXPECT_FALSE(ok.slo_violated) << ok.slo_detail;

  cfg.slo_p50_ms = 1e-7;  // 0.1 microseconds: a full tick cannot fit
  ScenarioReport bad = MustRun(cfg);
  EXPECT_TRUE(bad.slo_evaluated);
  EXPECT_TRUE(bad.slo_violated);
  EXPECT_NE(bad.slo_detail.find("p50"), std::string::npos);
}

TEST(ScenarioSloTest, StructuredChecksNameEveryGateWithEvidence) {
  ScenarioConfig cfg = TestConfig("steady_state");
  cfg.collect_timing = true;
  cfg.slo_p50_ms = 1e-7;  // trips
  cfg.slo_p99_ms = 1e6;   // passes
  cfg.slo_p999_ms = 0.0;  // unset: no gate, no check
  ScenarioReport r = MustRun(cfg);
  ASSERT_EQ(r.slo_checks.size(), 2u);  // one per *configured* gate
  const telemetry::SloCheck& p50 = r.slo_checks[0];
  EXPECT_EQ(p50.name, "tick_p50");
  EXPECT_TRUE(p50.violated);
  EXPECT_EQ(p50.target_ms, 1e-7);
  EXPECT_GT(p50.measured_ms, p50.target_ms);
  EXPECT_NE(p50.ToString().find("[VIOLATED]"), std::string::npos);
  const telemetry::SloCheck& p99 = r.slo_checks[1];
  EXPECT_EQ(p99.name, "tick_p99");
  EXPECT_FALSE(p99.violated);
  EXPECT_NE(p99.ToString().find("[ok]"), std::string::npos);
}

TEST(ScenarioSloTest, ReplayModeSkipsSloEvaluation) {
  ScenarioConfig cfg = TestConfig("steady_state");
  cfg.slo_p50_ms = 1e-7;
  ASSERT_FALSE(cfg.collect_timing);
  ScenarioReport r = MustRun(cfg);
  EXPECT_FALSE(r.slo_evaluated);
  EXPECT_FALSE(r.slo_violated);
}

}  // namespace
}  // namespace gamedb::loadgen
