// Watchdog: rule evaluation over flight-recorder series — trip / no-trip,
// every aggregation, the for_ticks / clear_ticks hysteresis contract (one
// noisy tick neither fires nor silences), missing-series semantics
// (configured-but-silent, never tripped), and the --watch rule-spec parser
// including its negative space (the 8-part spec is specifically invalid:
// FOR and CLEAR come as a pair or not at all).

#include "telemetry/watchdog.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace gamedb::telemetry {
namespace {

/// A registry+recorder pair the tests feed one gauge through: gauges
/// record absolutes, so a test can drive the series to exact values.
struct Rig {
  MetricsRegistry registry;
  Gauge* gauge = nullptr;
  FlightRecorder recorder;

  Rig() : recorder(&registry) {
    registry.SetEnabled(true);
    gauge = registry.GetGauge("load");
    recorder.SetEnabled(true);
  }

  void Tick(uint64_t t, int64_t value, Watchdog* dog) {
    gauge->Set(value);
    recorder.Sample(t);
    dog->Evaluate(t);
  }
};

HealthRule GaugeRule(Aggregation agg, size_t window, bool above,
                     double threshold) {
  HealthRule r;
  r.name = "r";
  r.metric = "load:gauge";
  r.aggregation = agg;
  r.window = window;
  r.above = above;
  r.threshold = threshold;
  return r;
}

TEST(WatchdogTest, TripsOnBreachAndReportsNewlyTripped) {
  Rig rig;
  Watchdog dog(&rig.recorder);
  dog.AddRule(GaugeRule(Aggregation::kLast, 1, /*above=*/true, 100.0));
  rig.gauge->Set(50);
  rig.recorder.Sample(1);
  EXPECT_TRUE(dog.Evaluate(1).empty());
  EXPECT_FALSE(dog.AnyTripped());

  rig.gauge->Set(150);
  rig.recorder.Sample(2);
  std::vector<std::string> newly = dog.Evaluate(2);
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0], "r");
  EXPECT_TRUE(dog.AnyTripped());
  EXPECT_EQ(dog.total_trips(), 1u);
  const RuleStatus& st = dog.status()[0];
  EXPECT_TRUE(st.tripped);
  EXPECT_EQ(st.tripped_tick, 2u);
  EXPECT_EQ(st.last_value, 150.0);
  EXPECT_EQ(st.evaluations, 2u);
}

TEST(WatchdogTest, BelowRuleTripsWhenValueDrops) {
  Rig rig;
  Watchdog dog(&rig.recorder);
  dog.AddRule(GaugeRule(Aggregation::kLast, 1, /*above=*/false, 10.0));
  rig.Tick(1, 50, &dog);
  EXPECT_FALSE(dog.AnyTripped());
  rig.Tick(2, 5, &dog);
  EXPECT_TRUE(dog.AnyTripped());
}

TEST(WatchdogTest, AggregationsOverWindow) {
  // Series: 10, 20, 60 — window 3.
  struct Case {
    Aggregation agg;
    double expected;
  };
  const Case cases[] = {
      {Aggregation::kLast, 60.0}, {Aggregation::kMean, 30.0},
      {Aggregation::kMin, 10.0},  {Aggregation::kMax, 60.0},
      {Aggregation::kSum, 90.0},
  };
  for (const Case& c : cases) {
    Rig rig;
    Watchdog dog(&rig.recorder);
    // Threshold just below the expected aggregate: the rule must trip on
    // the final tick precisely when the aggregation matches.
    dog.AddRule(GaugeRule(c.agg, 3, /*above=*/true, c.expected - 0.5));
    rig.Tick(1, 10, &dog);
    rig.Tick(2, 20, &dog);
    rig.Tick(3, 60, &dog);
    EXPECT_TRUE(dog.AnyTripped()) << AggregationName(c.agg);
    EXPECT_EQ(dog.status()[0].last_value, c.expected)
        << AggregationName(c.agg);
  }
}

TEST(WatchdogTest, WindowLargerThanHistoryAggregatesWhatExists) {
  Rig rig;
  Watchdog dog(&rig.recorder);
  dog.AddRule(GaugeRule(Aggregation::kSum, 100, /*above=*/true, 29.0));
  rig.Tick(1, 10, &dog);
  EXPECT_FALSE(dog.AnyTripped());  // sum over the 1 existing point = 10
  rig.Tick(2, 20, &dog);
  EXPECT_TRUE(dog.AnyTripped());  // 10 + 20 = 30 > 29
}

TEST(WatchdogTest, MissingSeriesIsSilentNotTripped) {
  Rig rig;
  Watchdog dog(&rig.recorder);
  HealthRule r = GaugeRule(Aggregation::kLast, 1, true, 0.0);
  r.metric = "no.such.series";
  dog.AddRule(r);
  rig.Tick(1, 999, &dog);
  EXPECT_FALSE(dog.AnyTripped());
  EXPECT_FALSE(dog.status()[0].evaluated);
  // A visit to a missing series is not an evaluation: the pair
  // (evaluated=false, evaluations=0) reads as "never found its series".
  EXPECT_EQ(dog.status()[0].evaluations, 0u);
}

TEST(WatchdogTest, ForTicksRequiresConsecutiveBreaches) {
  Rig rig;
  Watchdog dog(&rig.recorder);
  HealthRule r = GaugeRule(Aggregation::kLast, 1, true, 100.0);
  r.for_ticks = 3;
  dog.AddRule(r);
  rig.Tick(1, 150, &dog);
  rig.Tick(2, 150, &dog);
  EXPECT_FALSE(dog.AnyTripped());  // 2 of 3
  rig.Tick(3, 50, &dog);           // healthy tick resets the streak
  rig.Tick(4, 150, &dog);
  rig.Tick(5, 150, &dog);
  EXPECT_FALSE(dog.AnyTripped());
  rig.Tick(6, 150, &dog);
  EXPECT_TRUE(dog.AnyTripped());
  EXPECT_EQ(dog.status()[0].tripped_tick, 6u);
}

TEST(WatchdogTest, ClearTicksRequiresConsecutiveHealthy) {
  Rig rig;
  Watchdog dog(&rig.recorder);
  HealthRule r = GaugeRule(Aggregation::kLast, 1, true, 100.0);
  r.clear_ticks = 2;
  dog.AddRule(r);
  rig.Tick(1, 150, &dog);
  EXPECT_TRUE(dog.AnyTripped());
  rig.Tick(2, 50, &dog);
  EXPECT_TRUE(dog.AnyTripped());  // 1 healthy of 2: still an incident
  rig.Tick(3, 150, &dog);         // breach resets the clear streak
  rig.Tick(4, 50, &dog);
  EXPECT_TRUE(dog.AnyTripped());
  rig.Tick(5, 50, &dog);
  EXPECT_FALSE(dog.AnyTripped());
  // Re-trip after clearing counts as a new trip.
  rig.Tick(6, 150, &dog);
  EXPECT_TRUE(dog.AnyTripped());
  EXPECT_EQ(dog.total_trips(), 2u);
}

TEST(WatchdogTest, MaxTrippedSeverityPicksHighest) {
  Rig rig;
  Watchdog dog(&rig.recorder);
  HealthRule info = GaugeRule(Aggregation::kLast, 1, true, 10.0);
  info.name = "i";
  info.severity = Severity::kInfo;
  HealthRule crit = GaugeRule(Aggregation::kLast, 1, true, 20.0);
  crit.name = "c";
  crit.severity = Severity::kCritical;
  dog.AddRule(info);
  dog.AddRule(crit);
  rig.Tick(1, 15, &dog);  // only the info rule breaches
  EXPECT_EQ(dog.MaxTrippedSeverity(), Severity::kInfo);
  rig.Tick(2, 25, &dog);  // now both
  EXPECT_EQ(dog.MaxTrippedSeverity(), Severity::kCritical);
}

TEST(WatchdogTest, ParseFullSpecRoundTrips) {
  auto r = ParseHealthRule(
      "tick_p99,loadgen.tick_ns:p99,mean,30,gt,5000000,critical,3,5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->name, "tick_p99");
  EXPECT_EQ(r->metric, "loadgen.tick_ns:p99");
  EXPECT_EQ(r->aggregation, Aggregation::kMean);
  EXPECT_EQ(r->window, 30u);
  EXPECT_TRUE(r->above);
  EXPECT_EQ(r->threshold, 5000000.0);
  EXPECT_EQ(r->severity, Severity::kCritical);
  EXPECT_EQ(r->for_ticks, 3u);
  EXPECT_EQ(r->clear_ticks, 5u);
  EXPECT_EQ(r->ToString(),
            "tick_p99: mean(loadgen.tick_ns:p99, 30) > 5000000 "
            "[critical, for 3, clear 5]");
}

TEST(WatchdogTest, ParseDefaultsSeverityAndHysteresis) {
  auto r = ParseHealthRule("low_fps,fps:gauge,min,10,lt,30");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->above);
  EXPECT_EQ(r->severity, Severity::kWarning);
  EXPECT_EQ(r->for_ticks, 1u);
  EXPECT_EQ(r->clear_ticks, 1u);
  auto r7 = ParseHealthRule("low_fps,fps:gauge,min,10,lt,30,info");
  ASSERT_TRUE(r7.ok());
  EXPECT_EQ(r7->severity, Severity::kInfo);
}

TEST(WatchdogTest, ParseRejectsMalformedSpecs) {
  // Too few parts, and the specifically-invalid 8-part form (FOR without
  // CLEAR).
  EXPECT_FALSE(ParseHealthRule("").ok());
  EXPECT_FALSE(ParseHealthRule("a,b,last,1,gt").ok());
  EXPECT_FALSE(ParseHealthRule("a,b,last,1,gt,5,warning,3").ok());
  EXPECT_FALSE(
      ParseHealthRule("a,b,last,1,gt,5,warning,3,5,extra").ok());
  // Bad enum values and numbers.
  EXPECT_FALSE(ParseHealthRule("a,b,median,1,gt,5").ok());
  EXPECT_FALSE(ParseHealthRule("a,b,last,1,ge,5").ok());
  EXPECT_FALSE(ParseHealthRule("a,b,last,1,gt,5,fatal").ok());
  EXPECT_FALSE(ParseHealthRule("a,b,last,0,gt,5").ok());
  EXPECT_FALSE(ParseHealthRule("a,b,last,x,gt,5").ok());
  EXPECT_FALSE(ParseHealthRule("a,b,last,1,gt,oops").ok());
  EXPECT_FALSE(ParseHealthRule("a,b,last,1,gt,5,warning,0,1").ok());
  // Empty name or metric.
  EXPECT_FALSE(ParseHealthRule(",b,last,1,gt,5").ok());
  EXPECT_FALSE(ParseHealthRule("a,,last,1,gt,5").ok());
}

}  // namespace
}  // namespace gamedb::telemetry
