// EXPLAIN ANALYZE: per-operator runtime row counts recorded by
// QueryPlanner::Execute under SetCollectRuntime(true), checked for exact
// equality against hand-counted query results, plus the rendered
// estimated-vs-actual report and its off/empty edge cases.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/world.h"
#include "planner/planner.h"

namespace gamedb::planner {
namespace {

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }

  /// 200 entities with deterministic hp = i % 100 and a Position grid, so
  /// every expected row count below is hand-computable.
  void Populate(World* w, size_t n = 200) {
    for (size_t i = 0; i < n; ++i) {
      EntityId e = w->Create();
      w->Set(e, Health{float(i % 100), 100.0f});
      w->Set(e, Position{{float(i % 20) * 10.0f, 0, float(i / 20) * 10.0f}});
    }
  }

  World world;
};

TEST_F(ExplainAnalyzeTest, ActualRowsMatchHandCount) {
  Populate(&world);
  QueryPlanner planner(&world);
  planner.Analyze();
  planner.SetCollectRuntime(true);

  // Hand count: hp = i % 100 < 90 -> 90 of every 100, so 180 of 200.
  const uint64_t expected_matches = 180;

  DynamicQuery q(&world);
  q.SetPlanner(&planner).WhereField("Health", "hp", CmpOp::kLt, 90.0);
  ASSERT_EQ(planner.BuildPlan(q).access, AccessPath::kFullScan);
  auto rows = q.Collect();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), expected_matches);

  PlanRuntimeStats stats;
  ASSERT_TRUE(planner.GetRuntimeStats(q, &stats));
  EXPECT_EQ(stats.executions, 1u);
  EXPECT_EQ(stats.output_rows, expected_matches);
  // 90% selectivity stays a full scan: the driver visited every Health row
  // and the predicate saw all of them.
  EXPECT_EQ(stats.driver_rows, 200u);
  ASSERT_EQ(stats.predicate_in.size(), 1u);
  ASSERT_EQ(stats.predicate_out.size(), 1u);
  EXPECT_EQ(stats.predicate_in[0], 200u);
  EXPECT_EQ(stats.predicate_out[0], expected_matches);
}

// A selective predicate flips to the field index; the runtime counters
// then expose exactly what the index saved: the driver visits only the
// candidate range, not the whole table.
TEST_F(ExplainAnalyzeTest, FieldIndexDriverVisitsOnlyCandidates) {
  Populate(&world);
  QueryPlanner planner(&world);
  planner.Analyze();
  planner.SetCollectRuntime(true);

  DynamicQuery q(&world);
  q.SetPlanner(&planner).WhereField("Health", "hp", CmpOp::kLt, 30.0);
  if (planner.BuildPlan(q).access != AccessPath::kFieldIndex) {
    GTEST_SKIP() << "planner kept the scan at this scale";
  }
  auto rows = q.Collect();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 60u);  // i % 100 < 30 -> 60 of 200

  PlanRuntimeStats stats;
  ASSERT_TRUE(planner.GetRuntimeStats(q, &stats));
  EXPECT_EQ(stats.output_rows, 60u);
  EXPECT_GE(stats.driver_rows, 60u);   // every match came through the index
  EXPECT_LT(stats.driver_rows, 200u);  // ...but far from the whole table
}

TEST_F(ExplainAnalyzeTest, RepeatedExecutionsAccumulate) {
  Populate(&world);
  QueryPlanner planner(&world);
  planner.Analyze();
  planner.SetCollectRuntime(true);

  DynamicQuery q(&world);
  q.SetPlanner(&planner).WhereField("Health", "hp", CmpOp::kLt, 90.0);
  ASSERT_TRUE(q.Collect().ok());
  ASSERT_TRUE(q.Collect().ok());

  PlanRuntimeStats stats;
  ASSERT_TRUE(planner.GetRuntimeStats(q, &stats));
  EXPECT_EQ(stats.executions, 2u);
  EXPECT_EQ(stats.output_rows, 360u);
  EXPECT_EQ(stats.driver_rows, 400u);
}

TEST_F(ExplainAnalyzeTest, RadiusPredicateCountsActualRows) {
  Populate(&world);
  QueryPlanner planner(&world);
  planner.Analyze();
  planner.SetCollectRuntime(true);

  const Vec3 center{50.0f, 0.0f, 50.0f};
  const float radius = 25.0f;
  // Hand count against the same world the query runs over.
  uint64_t expected = 0;
  world.Table<Position>().ForEach([&](EntityId, const Position& p) {
    float dx = p.value.x - center.x, dz = p.value.z - center.z;
    if (std::sqrt(dx * dx + dz * dz) <= radius) ++expected;
  });
  ASSERT_GT(expected, 0u);

  DynamicQuery q(&world);
  q.SetPlanner(&planner)
      .WithinRadius("Position", "value", center, radius);
  auto rows = q.Collect();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), expected);

  PlanRuntimeStats stats;
  ASSERT_TRUE(planner.GetRuntimeStats(q, &stats));
  EXPECT_EQ(stats.executions, 1u);
  EXPECT_EQ(stats.output_rows, expected);
}

TEST_F(ExplainAnalyzeTest, ReportShowsEstimatedVsActualPerOperator) {
  Populate(&world);
  QueryPlanner planner(&world);
  planner.Analyze();
  planner.SetCollectRuntime(true);

  DynamicQuery q(&world);
  q.SetPlanner(&planner).WhereField("Health", "hp", CmpOp::kLt, 90.0);
  ASSERT_TRUE(q.Collect().ok());

  auto text = planner.ExplainAnalyzeQuery(q);
  ASSERT_TRUE(text.ok());
  // The cost-based EXPLAIN half is intact...
  EXPECT_NE(text->find("access: full_scan"), std::string::npos) << *text;
  // ...and every operator line carries estimated and actual rows.
  EXPECT_NE(text->find("analyze (1 execution"), std::string::npos) << *text;
  EXPECT_NE(text->find("driver rows: est "), std::string::npos) << *text;
  EXPECT_NE(text->find("actual 200.0"), std::string::npos) << *text;
  EXPECT_NE(text->find("filter Health.hp < 90"), std::string::npos) << *text;
  EXPECT_NE(text->find("actual 200.0 -> 180.0"), std::string::npos) << *text;
  EXPECT_NE(text->find("output rows: est "), std::string::npos) << *text;
  EXPECT_NE(text->find("actual 180.0"), std::string::npos) << *text;
}

TEST_F(ExplainAnalyzeTest, NoSamplesYieldsHintNotError) {
  Populate(&world);
  QueryPlanner planner(&world);
  planner.Analyze();
  planner.SetCollectRuntime(true);

  DynamicQuery q(&world);
  q.SetPlanner(&planner).WhereField("Health", "hp", CmpOp::kLt, 30.0);
  // Never executed: ANALYZE degrades to the hint, not a failure.
  auto text = planner.ExplainAnalyzeQuery(q);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("no runtime samples"), std::string::npos) << *text;
}

TEST_F(ExplainAnalyzeTest, CollectRuntimeOffRecordsNothing) {
  Populate(&world);
  QueryPlanner planner(&world);
  planner.Analyze();
  ASSERT_FALSE(planner.collect_runtime());  // off by default

  DynamicQuery q(&world);
  q.SetPlanner(&planner).WhereField("Health", "hp", CmpOp::kLt, 30.0);
  ASSERT_TRUE(q.Collect().ok());

  PlanRuntimeStats stats;
  EXPECT_FALSE(planner.GetRuntimeStats(q, &stats));
}

// Runtime collection must not perturb results: same rows, same order, with
// the toggle on and off.
TEST_F(ExplainAnalyzeTest, CollectionDoesNotChangeResults) {
  Populate(&world);
  QueryPlanner planner(&world);
  planner.Analyze();

  DynamicQuery q(&world);
  q.SetPlanner(&planner).WhereField("Health", "hp", CmpOp::kGe, 70.0);
  auto off_rows = q.Collect();
  ASSERT_TRUE(off_rows.ok());
  planner.SetCollectRuntime(true);
  auto on_rows = q.Collect();
  ASSERT_TRUE(on_rows.ok());
  EXPECT_EQ(*off_rows, *on_rows);
}

}  // namespace
}  // namespace gamedb::planner
