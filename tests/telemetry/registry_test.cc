// MetricsRegistry: the enabled/disabled kill-switch contract (disabled
// instruments record nothing, ever), pointer stability, LatencyHistogram
// bucket equivalence, multi-threaded recording exactness (the TSan CI
// target runs this binary), and the gamedb.telemetry.v1 JSON round-trip
// through the independent validator — including the negative cases the
// validator must reject.

#include "telemetry/registry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/percentile.h"
#include "common/rng.h"

namespace gamedb::telemetry {
namespace {

TEST(RegistryTest, DisabledInstrumentsRecordNothing) {
  MetricsRegistry registry;  // disabled by default
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h");
  c->Add(5);
  c->Increment();
  g->Set(42);
  g->Add(-7);
  h->Record(1000);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), 0u);
  EXPECT_EQ(h->mean(), 0.0);
  EXPECT_EQ(h->Percentile(50.0), 0u);
}

TEST(RegistryTest, RuntimeKillSwitchFreezesValues) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  registry.SetEnabled(true);
  c->Add(3);
  registry.SetEnabled(false);
  c->Add(100);  // dropped
  EXPECT_EQ(c->value(), 3u);
  registry.SetEnabled(true);
  c->Increment();
  EXPECT_EQ(c->value(), 4u);
}

TEST(RegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("same");
  Counter* c2 = registry.GetCounter("same");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.GetCounter("other"), c1);
  // Names are per-kind namespaces: a gauge named like a counter is distinct.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("same")),
            static_cast<void*>(c1));
}

TEST(RegistryTest, GaugeCanGoNegative) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Gauge* g = registry.GetGauge("g");
  g->Set(10);
  g->Add(-25);
  EXPECT_EQ(g->value(), -15);
}

// The atomic histogram shares LatencyHistogram's bucket layout, so for any
// value stream the two must agree exactly on count/min/max and every
// quantile.
TEST(RegistryTest, HistogramMatchesLatencyHistogram) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Histogram* h = registry.GetHistogram("h");
  LatencyHistogram reference;
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextBounded(1u << 20);
    h->Record(v);
    reference.Record(v);
  }
  EXPECT_EQ(h->count(), reference.count());
  EXPECT_EQ(h->min(), reference.min());
  EXPECT_EQ(h->max(), reference.max());
  EXPECT_DOUBLE_EQ(h->mean(), reference.mean());
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(h->Percentile(p), reference.Percentile(p)) << "p" << p;
  }
}

// Lock-free recording must lose nothing under contention: totals are exact,
// not approximate. This is also the data-race probe for the TSan CI build.
TEST(RegistryTest, ConcurrentRecordingIsExact) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        g->Add(1);
        h->Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  const uint64_t expected = uint64_t(kThreads) * kPerThread;
  EXPECT_EQ(c->value(), expected);
  EXPECT_EQ(g->value(), int64_t(expected));
  EXPECT_EQ(h->count(), expected);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), expected - 1);
}

// Toggling the kill-switch while writers hammer instruments must be safe
// (values land or don't — never tear, never race).
TEST(RegistryTest, ConcurrentToggleIsSafe) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  std::thread toggler([&]() {
    for (int i = 0; i < 1000; ++i) registry.SetEnabled(i % 2 == 0);
  });
  std::thread writer([&]() {
    for (int i = 0; i < 100000; ++i) c->Increment();
  });
  toggler.join();
  writer.join();
  EXPECT_LE(c->value(), 100000u);
}

TEST(RegistryTest, SnapshotsAreSortedByName) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  registry.GetCounter("zeta")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetCounter("mid")->Add(3);
  auto counters = registry.CounterValues();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].first, "alpha");
  EXPECT_EQ(counters[1].first, "mid");
  EXPECT_EQ(counters[2].first, "zeta");
}

// --- JSON round-trip --------------------------------------------------------

TEST(TelemetryJsonTest, EmptyRegistryRoundTrips) {
  MetricsRegistry registry;
  std::string doc = RenderTelemetryJson(registry);
  EXPECT_TRUE(ValidateTelemetryJson(doc).ok()) << doc;
}

TEST(TelemetryJsonTest, PopulatedRegistryRoundTripsWithExactValues) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  registry.GetCounter("script.ticks")->Add(30);
  registry.GetGauge("world.entities")->Set(-5);
  Histogram* h = registry.GetHistogram("tick_ns");
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v * 1000);

  std::string doc = RenderTelemetryJson(registry);
  ASSERT_TRUE(ValidateTelemetryJson(doc).ok()) << doc;

  // Re-read through the shared parser and check the numbers survived.
  auto parsed = json::ParseJson(doc);
  ASSERT_TRUE(parsed.ok());
  const json::JsonValue* schema = parsed->Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, kTelemetrySchema);
  const json::JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const json::JsonValue* ticks = counters->Find("script.ticks");
  ASSERT_NE(ticks, nullptr);
  EXPECT_EQ(ticks->number, 30.0);
  const json::JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const json::JsonValue* entities = gauges->Find("world.entities");
  ASSERT_NE(entities, nullptr);
  EXPECT_EQ(entities->number, -5.0);
  const json::JsonValue* hists = parsed->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::JsonValue* tick_ns = hists->Find("tick_ns");
  ASSERT_NE(tick_ns, nullptr);
  const json::JsonValue* count = tick_ns->Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->number, 100.0);
  const json::JsonValue* p50 = tick_ns->Find("p50");
  ASSERT_NE(p50, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(p50->number), h->Percentile(50.0));
}

TEST(TelemetryJsonTest, RenderIsDeterministic) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  registry.GetCounter("b")->Add(2);
  registry.GetCounter("a")->Add(1);
  registry.GetHistogram("h")->Record(7);
  EXPECT_EQ(RenderTelemetryJson(registry), RenderTelemetryJson(registry));
}

TEST(TelemetryJsonTest, ValidatorRejectsWrongSchema) {
  Status st = ValidateTelemetryJson(
      "{\"schema\": \"gamedb.telemetry.v2\", \"counters\": {}, "
      "\"gauges\": {}, \"histograms\": {}}");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("telemetry json schema violation"),
            std::string::npos)
      << st.ToString();
}

TEST(TelemetryJsonTest, ValidatorRejectsMissingSection) {
  Status st = ValidateTelemetryJson(
      "{\"schema\": \"gamedb.telemetry.v1\", \"counters\": {}, "
      "\"gauges\": {}}");
  EXPECT_FALSE(st.ok());
}

TEST(TelemetryJsonTest, ValidatorRejectsNonNumericCounter) {
  Status st = ValidateTelemetryJson(
      "{\"schema\": \"gamedb.telemetry.v1\", \"counters\": {\"c\": \"x\"}, "
      "\"gauges\": {}, \"histograms\": {}}");
  EXPECT_FALSE(st.ok());
}

TEST(TelemetryJsonTest, ValidatorRejectsUnsortedKeys) {
  Status st = ValidateTelemetryJson(
      "{\"schema\": \"gamedb.telemetry.v1\", \"counters\": {\"b\": 1, "
      "\"a\": 2}, \"gauges\": {}, \"histograms\": {}}");
  EXPECT_FALSE(st.ok());
}

TEST(TelemetryJsonTest, ValidatorRejectsIncompleteHistogram) {
  Status st = ValidateTelemetryJson(
      "{\"schema\": \"gamedb.telemetry.v1\", \"counters\": {}, "
      "\"gauges\": {}, \"histograms\": {\"h\": {\"count\": 1}}}");
  EXPECT_FALSE(st.ok());
}

TEST(TelemetryJsonTest, ValidatorRejectsGarbage) {
  EXPECT_FALSE(ValidateTelemetryJson("not json").ok());
  EXPECT_FALSE(ValidateTelemetryJson("[]").ok());
  EXPECT_FALSE(ValidateTelemetryJson("").ok());
}

// The build in this repo compiles telemetry in; the macro kill-switch is
// covered by the compile flag itself, but pin the constant so a CMake
// change that silently defines GAMEDB_TELEMETRY_DISABLED fails loudly.
TEST(RegistryTest, TelemetryIsCompiledInByDefault) {
  EXPECT_TRUE(kCompiledIn);
}

}  // namespace
}  // namespace gamedb::telemetry
