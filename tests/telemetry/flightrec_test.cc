// gamedb.flightrec.v1 diagnostic bundles: a fully-populated render (rules +
// SLO checks + series + embedded telemetry doc + trace + plans) must pass
// the independent validating parser and re-parse to the exact inputs; the
// validator's negative space (wrong schema tag, missing sections, unsorted
// or ragged series, out-of-vocabulary enums) must all be rejected with the
// schema-violation error prefix.

#include "telemetry/bundle.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"

namespace gamedb::telemetry {
namespace {

using json::JsonValue;
using json::ParseJson;

/// The smallest structurally-valid bundle; negatives are built by
/// perturbing one section at a time.
const char kMinimalBundle[] = R"({
  "schema": "gamedb.flightrec.v1",
  "trigger": {"reason": "manual", "tick": 7, "scenario": "test"},
  "rules": [],
  "slo": [],
  "series": [],
  "metrics": null,
  "trace": [],
  "plans": []
}
)";

std::string Replace(const std::string& doc, const std::string& from,
                    const std::string& to) {
  std::string out = doc;
  const size_t pos = out.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  if (pos != std::string::npos) out.replace(pos, from.size(), to);
  return out;
}

TEST(FlightRecBundleTest, MinimalDocumentValidates) {
  EXPECT_TRUE(ValidateFlightRecorderBundle(kMinimalBundle).ok());
}

TEST(FlightRecBundleTest, EmptyInputsRenderValidates) {
  BundleInputs inputs;
  inputs.reason = "manual";
  inputs.tick = 1;
  inputs.scenario = "empty";
  const std::string doc = RenderFlightRecorderBundle(inputs);
  EXPECT_TRUE(ValidateFlightRecorderBundle(doc).ok()) << doc;
}

TEST(FlightRecBundleTest, FullBundleRoundTrips) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* c = registry.GetCounter("work.done");
  Histogram* h = registry.GetHistogram("work.lat_ns");
  FlightRecorder recorder(&registry);
  recorder.SetEnabled(true);
  Watchdog watchdog(&recorder);
  HealthRule rule;
  rule.name = "too_much_work";
  rule.metric = "work.done";
  rule.aggregation = Aggregation::kLast;
  rule.above = true;
  rule.threshold = 5.0;
  rule.severity = Severity::kCritical;
  watchdog.AddRule(rule);

  Tracer tracer;
  tracer.SetEnabled(true);
  for (uint64_t t = 1; t <= 3; ++t) {
    { TraceSpan span(&tracer, "tick"); }
    c->Add(t * 4);  // 4, 8, 12 — breaches from tick 2 on
    h->Record(1000 * t);
    recorder.Sample(t);
    watchdog.Evaluate(t);
  }

  BundleInputs inputs;
  inputs.reason = "watchdog";
  inputs.tick = 3;
  inputs.scenario = "unit";
  inputs.recorder = &recorder;
  inputs.watchdog = &watchdog;
  inputs.metrics = &registry;
  inputs.tracer = &tracer;
  SloCheck check;
  check.name = "tick_p99";
  check.target_ms = 5.0;
  check.measured_ms = 7.25;
  check.violated = true;
  inputs.slo_checks.push_back(check);
  inputs.hot_plans.push_back("plan:\n  full_scan of Work\n");

  const std::string doc = RenderFlightRecorderBundle(inputs);
  ASSERT_TRUE(ValidateFlightRecorderBundle(doc).ok()) << doc;

  // Independent re-parse: the values that went in come back out.
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok());
  const JsonValue& root = *parsed;
  EXPECT_EQ(root.Find("schema")->str, kFlightRecSchema);
  EXPECT_EQ(root.Find("trigger")->Find("reason")->str, "watchdog");
  EXPECT_EQ(root.Find("trigger")->Find("tick")->number, 3.0);

  const JsonValue* rules = root.Find("rules");
  ASSERT_EQ(rules->elements.size(), 1u);
  EXPECT_EQ(rules->elements[0].Find("name")->str, "too_much_work");
  EXPECT_TRUE(rules->elements[0].Find("tripped")->boolean);
  EXPECT_EQ(rules->elements[0].Find("last_value")->number, 12.0);

  const JsonValue* slo = root.Find("slo");
  ASSERT_EQ(slo->elements.size(), 1u);
  EXPECT_EQ(slo->elements[0].Find("rendered")->str,
            "tick_p99: measured 7.250 ms vs allowed 5.000 ms [VIOLATED]");

  // The counter series carries the per-tick deltas, not the absolutes.
  const JsonValue* series = root.Find("series");
  const JsonValue* work = nullptr;
  for (const JsonValue& s : series->elements) {
    if (s.Find("name")->str == "work.done") work = &s;
  }
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->Find("kind")->str, "counter_delta");
  const std::vector<JsonValue>& vals = work->Find("values")->elements;
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_EQ(vals[0].number, 4.0);
  EXPECT_EQ(vals[1].number, 8.0);
  EXPECT_EQ(vals[2].number, 12.0);

  EXPECT_EQ(root.Find("metrics")->Find("schema")->str, kTelemetrySchema);
  EXPECT_EQ(root.Find("trace")->elements.size(), 3u);
  ASSERT_EQ(root.Find("plans")->elements.size(), 1u);
  EXPECT_EQ(root.Find("plans")->elements[0].str,
            "plan:\n  full_scan of Work\n");
}

TEST(FlightRecBundleTest, ValidatorRejectsNonJson) {
  Status s = ValidateFlightRecorderBundle("not json at all {");
  EXPECT_FALSE(s.ok());
}

TEST(FlightRecBundleTest, ValidatorRejectsWrongSchemaTag) {
  Status s = ValidateFlightRecorderBundle(
      Replace(kMinimalBundle, "gamedb.flightrec.v1", "gamedb.flightrec.v2"));
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("schema violation"), std::string::npos);
}

TEST(FlightRecBundleTest, ValidatorRejectsMissingSections) {
  for (const char* removal :
       {R"("rules": [],)", R"("slo": [],)", R"("series": [],)",
        R"("metrics": null,)", R"("trace": [],)"}) {
    Status s = ValidateFlightRecorderBundle(
        Replace(kMinimalBundle, removal, ""));
    EXPECT_FALSE(s.ok()) << removal;
  }
  Status s = ValidateFlightRecorderBundle(Replace(
      kMinimalBundle, R"("trigger": {"reason": "manual", "tick": 7, )"
                      R"("scenario": "test"},)",
      ""));
  EXPECT_FALSE(s.ok());
}

TEST(FlightRecBundleTest, ValidatorRejectsBadSeries) {
  // Unsorted by name.
  Status s = ValidateFlightRecorderBundle(Replace(
      kMinimalBundle, R"("series": [])",
      R"("series": [
    {"name": "b", "kind": "gauge", "ticks": [1], "values": [1]},
    {"name": "a", "kind": "gauge", "ticks": [1], "values": [1]}
  ])"));
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("not sorted"), std::string::npos);

  // ticks/values length mismatch.
  s = ValidateFlightRecorderBundle(Replace(
      kMinimalBundle, R"("series": [])",
      R"("series": [{"name": "a", "kind": "gauge", "ticks": [1, 2],
                     "values": [1]}])"));
  EXPECT_FALSE(s.ok());

  // Empty series entry (never-sampled series must be omitted instead).
  s = ValidateFlightRecorderBundle(Replace(
      kMinimalBundle, R"("series": [])",
      R"("series": [{"name": "a", "kind": "gauge", "ticks": [],
                     "values": []}])"));
  EXPECT_FALSE(s.ok());

  // Unknown kind.
  s = ValidateFlightRecorderBundle(Replace(
      kMinimalBundle, R"("series": [])",
      R"("series": [{"name": "a", "kind": "rate", "ticks": [1],
                     "values": [1]}])"));
  EXPECT_FALSE(s.ok());

  // Ticks must be non-decreasing.
  s = ValidateFlightRecorderBundle(Replace(
      kMinimalBundle, R"("series": [])",
      R"("series": [{"name": "a", "kind": "gauge", "ticks": [5, 3],
                     "values": [1, 2]}])"));
  EXPECT_FALSE(s.ok());
}

TEST(FlightRecBundleTest, ValidatorRejectsBadRules) {
  // Out-of-vocabulary severity.
  Status s = ValidateFlightRecorderBundle(Replace(
      kMinimalBundle, R"("rules": [])",
      R"("rules": [{"name": "r", "rendered": "r: ...", "metric": "m",
                    "aggregation": "mean", "window": 1, "op": "gt",
                    "threshold": 1, "severity": "fatal", "for_ticks": 1,
                    "clear_ticks": 1, "evaluated": true, "tripped": false,
                    "trip_count": 0, "tripped_tick": 0, "last_value": 0,
                    "evaluations": 1}])"));
  EXPECT_FALSE(s.ok());

  // window below 1.
  s = ValidateFlightRecorderBundle(Replace(
      kMinimalBundle, R"("rules": [])",
      R"("rules": [{"name": "r", "rendered": "r: ...", "metric": "m",
                    "aggregation": "mean", "window": 0, "op": "gt",
                    "threshold": 1, "severity": "warning", "for_ticks": 1,
                    "clear_ticks": 1, "evaluated": true, "tripped": false,
                    "trip_count": 0, "tripped_tick": 0, "last_value": 0,
                    "evaluations": 1}])"));
  EXPECT_FALSE(s.ok());
}

TEST(FlightRecBundleTest, ValidatorRejectsBadSloAndPlansAndMetrics) {
  // SLO entry missing its verdict.
  Status s = ValidateFlightRecorderBundle(Replace(
      kMinimalBundle, R"("slo": [])",
      R"("slo": [{"name": "p99", "rendered": "p99: ...", "target_ms": 5,
                  "measured_ms": 7}])"));
  EXPECT_FALSE(s.ok());

  // Plans must be strings.
  s = ValidateFlightRecorderBundle(
      Replace(kMinimalBundle, R"("plans": [])", R"("plans": [42])"));
  EXPECT_FALSE(s.ok());

  // Embedded metrics doc must carry the telemetry schema tag.
  s = ValidateFlightRecorderBundle(Replace(
      kMinimalBundle, R"("metrics": null)",
      R"("metrics": {"schema": "gamedb.telemetry.v9", "counters": {},
                     "gauges": {}, "histograms": {}})"));
  EXPECT_FALSE(s.ok());

  // Trace events need non-negative numeric fields.
  s = ValidateFlightRecorderBundle(Replace(
      kMinimalBundle, R"("trace": [])",
      R"("trace": [{"name": "tick", "ts_ns": -1, "dur_ns": 0, "tid": 0}])"));
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace gamedb::telemetry
