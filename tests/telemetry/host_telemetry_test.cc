// ScriptHost <-> telemetry integration: tick counters and phase histograms
// fold into the registry, spans land on the tracer with the shard tid
// convention, a wired-but-disabled sink records nothing, and the
// per-reason fallback counters (the fix for fallback_reason keeping only
// the last tick's reason) accumulate in the stats map, the host, and the
// categorized registry counters.

#include "script/host.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/world.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace gamedb::script {
namespace {

class HostTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }

  std::vector<EntityId> Populate(World* w, size_t n) {
    std::vector<EntityId> ids;
    for (size_t i = 0; i < n; ++i) {
      EntityId e = w->Create();
      w->Set(e, Health{20.0f + float(i % 60), 100.0f});
      ids.push_back(e);
    }
    return ids;
  }

  World world;
};

constexpr char kRegenScript[] =
    "fn tick(e) {\n"
    "  if get(e, \"Health\", \"hp\") < 50 {\n"
    "    emit(\"regen\", e, 1)\n"
    "  }\n"
    "}\n";

TEST_F(HostTelemetryTest, TickCountersAndSpansFlow) {
  Populate(&world, 16);
  telemetry::MetricsRegistry registry;
  registry.SetEnabled(true);
  telemetry::Tracer tracer;
  tracer.SetEnabled(true);

  ScriptHostOptions opts;
  opts.num_threads = 2;
  opts.telemetry.metrics = &registry;
  opts.telemetry.tracer = &tracer;
  ScriptHost host(&world, opts);
  host.OnChannel("regen", [this](EntityId e, double total) {
    world.Patch<Health>(e, [&](Health& h) {
      h.hp += static_cast<float>(total);
    });
  });
  ASSERT_TRUE(host.Load(kRegenScript).ok());

  for (int t = 0; t < 3; ++t) {
    world.AdvanceTick();
    auto stats = host.RunTickOver("tick", "Health");
    ASSERT_TRUE(stats.ok());
    ASSERT_EQ(stats->script_errors, 0u) << stats->first_error.ToString();
  }

  EXPECT_EQ(registry.GetCounter("script.ticks")->value(), 3u);
  EXPECT_EQ(registry.GetCounter("script.entities")->value(), 48u);
  EXPECT_GT(registry.GetCounter("script.effect_contributions")->value(), 0u);
  EXPECT_EQ(registry.GetCounter("script.errors")->value(), 0u);
  EXPECT_EQ(registry.GetHistogram("script.phase.query_ns")->count(), 3u);
  EXPECT_EQ(registry.GetHistogram("script.phase.apply_ns")->count(), 3u);

  std::set<std::string> names;
  std::set<uint32_t> shard_tids;
  for (const auto& e : tracer.Events()) {
    names.insert(e.name);
    if (e.name == "script.shard") shard_tids.insert(e.tid);
  }
  EXPECT_TRUE(names.count("script.query_phase")) << tracer.size();
  EXPECT_TRUE(names.count("script.apply_phase"));
  ASSERT_TRUE(names.count("script.shard"));
  // Shard spans sit on tid = shard index + 1, never the main track.
  EXPECT_FALSE(shard_tids.count(0u));
}

TEST_F(HostTelemetryTest, DisabledSinkRecordsNothing) {
  Populate(&world, 8);
  telemetry::MetricsRegistry registry;  // wired but left disabled
  telemetry::Tracer tracer;
  ScriptHostOptions opts;
  opts.telemetry.metrics = &registry;
  opts.telemetry.tracer = &tracer;
  ScriptHost host(&world, opts);
  host.OnChannel("regen", [](EntityId, double) {});
  ASSERT_TRUE(host.Load(kRegenScript).ok());

  world.AdvanceTick();
  ASSERT_TRUE(host.RunTickOver("tick", "Health").ok());

  EXPECT_EQ(registry.GetCounter("script.ticks")->value(), 0u);
  EXPECT_EQ(registry.GetCounter("script.entities")->value(), 0u);
  EXPECT_EQ(registry.GetHistogram("script.phase.query_ns")->count(), 0u);
  EXPECT_EQ(tracer.size(), 0u);
}

// The satellite fix: fallback_reason held only the *last* tick's reason;
// the map (per tick-stats and cumulative on the host) plus the categorized
// registry counters must count every occurrence.
TEST_F(HostTelemetryTest, FallbackReasonsAccumulatePerReason) {
  Populate(&world, 4);
  telemetry::MetricsRegistry registry;
  registry.SetEnabled(true);
  ScriptHostOptions opts;
  opts.mutations = MutationPolicy::kDirectChecked;
  opts.telemetry.metrics = &registry;
  ScriptHost host(&world, opts);
  host.OnChannel("howl", [](EntityId, double) {});
  // Emits an effect while writing: statically ineligible for the direct
  // path, so every tick falls back with the same reason.
  ASSERT_TRUE(host.Load("fn tick(e) {\n"
                        "  emit(\"howl\", e, 1)\n"
                        "  set(e, \"Health\", \"hp\", 55)\n"
                        "}")
                  .ok());

  std::string reason;
  for (int t = 0; t < 3; ++t) {
    world.AdvanceTick();
    auto stats = host.RunTickOver("tick", "Health");
    ASSERT_TRUE(stats.ok());
    EXPECT_FALSE(stats->direct_checked);
    ASSERT_EQ(stats->fallback_reasons.size(), 1u);
    reason = stats->fallback_reasons.begin()->first;
    // The last-only string field still agrees with the map's key.
    EXPECT_EQ(stats->fallback_reason, reason);
  }
  EXPECT_NE(reason.find("emits effects"), std::string::npos) << reason;

  // Cumulative per-reason map on the host: 3 ticks, one reason, count 3.
  const auto& counts = host.fallback_reason_counts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.begin()->first, reason);
  EXPECT_EQ(counts.begin()->second, 3u);

  // Categorized registry counter: "emits effects" buckets as ineligible.
  EXPECT_EQ(registry.GetCounter("script.fallback.ineligible")->value(), 3u);
  EXPECT_EQ(registry.GetCounter("script.fallback_ticks")->value(), 3u);
  EXPECT_EQ(registry.GetCounter("script.direct_ticks")->value(), 0u);
}

TEST_F(HostTelemetryTest, ObserverFallbackBucketsAsObservers) {
  auto ids = Populate(&world, 4);
  (void)ids;
  telemetry::MetricsRegistry registry;
  registry.SetEnabled(true);
  ScriptHostOptions opts;
  opts.mutations = MutationPolicy::kDirectChecked;
  opts.telemetry.metrics = &registry;
  ScriptHost host(&world, opts);
  ASSERT_TRUE(host.Load("fn tick(e) { set(e, \"Health\", \"hp\", 1) }").ok());

  world.AdvanceTick();
  auto direct = host.RunTickOver("tick", "Health");
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->direct_checked);
  EXPECT_TRUE(direct->fallback_reasons.empty());

  world.Table<Health>().Subscribe(
      [](ChangeKind, EntityId, const Health*, const Health*) {});
  world.AdvanceTick();
  auto fallback = host.RunTickOver("tick", "Health");
  ASSERT_TRUE(fallback.ok());
  EXPECT_FALSE(fallback->direct_checked);
  ASSERT_EQ(fallback->fallback_reasons.size(), 1u);
  EXPECT_NE(fallback->fallback_reasons.begin()->first.find(
                "change observers"),
            std::string::npos);

  EXPECT_EQ(registry.GetCounter("script.fallback.observers")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("script.direct_ticks")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("script.fallback_ticks")->value(), 1u);
}

}  // namespace
}  // namespace gamedb::script
