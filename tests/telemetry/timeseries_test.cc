// FlightRecorder: ring-buffer wraparound exactness (oldest samples evicted,
// survivors byte-exact), counter-delta semantics with prime-on-enable (the
// first sample records the delta since SetEnabled, not since process
// start), the disabled-recorder zero-overhead identity (a wired-but-off
// recorder leaves no observable trace), the max_series bound, and
// sampling-while-parallel-shards-record — the TSan CI target runs this
// binary, so the lock-free claim in timeseries.h is a sanitized claim.

#include "telemetry/timeseries.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace gamedb::telemetry {
namespace {

TEST(FlightRecorderTest, DisabledRecorderIsInert) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* c = registry.GetCounter("c");
  FlightRecorder recorder(&registry);  // never enabled
  c->Add(5);
  recorder.Sample(1);
  c->Add(5);
  recorder.Sample(2);
  EXPECT_EQ(recorder.samples(), 0u);
  EXPECT_EQ(recorder.series_count(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
  FlightRecorder::Series s;
  EXPECT_FALSE(recorder.Find("c", &s));
}

TEST(FlightRecorderTest, CounterSeriesRecordsPerTickDeltas) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* c = registry.GetCounter("c");
  FlightRecorder recorder(&registry);
  recorder.SetEnabled(true);
  c->Add(5);
  recorder.Sample(1);
  c->Add(3);
  recorder.Sample(2);
  recorder.Sample(3);  // no activity: delta 0, not the absolute 8

  FlightRecorder::Series s;
  ASSERT_TRUE(recorder.Find("c", &s));
  EXPECT_EQ(s.kind, SeriesKind::kCounterDelta);
  ASSERT_EQ(s.ticks.size(), 3u);
  EXPECT_EQ(s.ticks, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(s.values, (std::vector<double>{5.0, 3.0, 0.0}));
}

TEST(FlightRecorderTest, EnablePrimesCounterBaselines) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* c = registry.GetCounter("c");
  c->Add(100);  // pre-enable history must not leak into the first delta
  FlightRecorder recorder(&registry);
  recorder.SetEnabled(true);
  c->Add(7);
  recorder.Sample(1);
  FlightRecorder::Series s;
  ASSERT_TRUE(recorder.Find("c", &s));
  ASSERT_EQ(s.values.size(), 1u);
  EXPECT_EQ(s.values[0], 7.0);
}

TEST(FlightRecorderTest, GaugeSeriesRecordsSampledLevel) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Gauge* g = registry.GetGauge("g");
  FlightRecorder recorder(&registry);
  recorder.SetEnabled(true);
  g->Set(42);
  recorder.Sample(1);
  g->Set(17);
  recorder.Sample(2);
  FlightRecorder::Series s;
  ASSERT_TRUE(recorder.Find("g:gauge", &s));
  EXPECT_EQ(s.kind, SeriesKind::kGauge);
  EXPECT_EQ(s.values, (std::vector<double>{42.0, 17.0}));
}

TEST(FlightRecorderTest, HistogramYieldsPercentileAndCountSeries) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Histogram* h = registry.GetHistogram("h");
  FlightRecorder recorder(&registry);
  recorder.SetEnabled(true);
  for (int i = 1; i <= 100; ++i) h->Record(static_cast<uint64_t>(i * 10));
  recorder.Sample(1);
  for (int i = 0; i < 5; ++i) h->Record(1000);
  recorder.Sample(2);

  FlightRecorder::Series p50, p99, p999, count;
  ASSERT_TRUE(recorder.Find("h:p50", &p50));
  ASSERT_TRUE(recorder.Find("h:p99", &p99));
  ASSERT_TRUE(recorder.Find("h:p999", &p999));
  ASSERT_TRUE(recorder.Find("h:count", &count));
  EXPECT_EQ(p50.kind, SeriesKind::kHistP50);
  EXPECT_EQ(p99.kind, SeriesKind::kHistP99);
  EXPECT_EQ(p999.kind, SeriesKind::kHistP999);
  EXPECT_EQ(count.kind, SeriesKind::kHistCount);
  // Percentiles are absolutes over the cumulative distribution; counts
  // are per-tick deltas.
  EXPECT_EQ(count.values, (std::vector<double>{100.0, 5.0}));
  ASSERT_EQ(p50.values.size(), 2u);
  EXPECT_GT(p50.values[0], 0.0);
  EXPECT_GE(p99.values[0], p50.values[0]);
  EXPECT_GE(p999.values[0], p99.values[0]);
}

TEST(FlightRecorderTest, RingWraparoundKeepsNewestExactly) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* c = registry.GetCounter("c");
  FlightRecorder::Options opts;
  opts.capacity = 4;
  FlightRecorder recorder(&registry, opts);
  recorder.SetEnabled(true);
  for (uint64_t t = 1; t <= 10; ++t) {
    c->Add(t);  // delta at tick t is exactly t
    recorder.Sample(t);
  }
  FlightRecorder::Series s;
  ASSERT_TRUE(recorder.Find("c", &s));
  // Only the newest `capacity` ticks survive, oldest -> newest, exact.
  EXPECT_EQ(s.ticks, (std::vector<uint64_t>{7, 8, 9, 10}));
  EXPECT_EQ(s.values, (std::vector<double>{7.0, 8.0, 9.0, 10.0}));
  EXPECT_EQ(recorder.samples(), 10u);
}

TEST(FlightRecorderTest, MaxSeriesBoundDropsExcessInstruments) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  FlightRecorder::Options opts;
  opts.max_series = 2;
  FlightRecorder recorder(&registry, opts);
  recorder.SetEnabled(true);
  for (int i = 0; i < 5; ++i) {
    registry.GetCounter("c" + std::to_string(i))->Add(1);
  }
  recorder.Sample(1);
  EXPECT_EQ(recorder.series_count(), 2u);
  EXPECT_GT(recorder.dropped_series(), 0u);
  recorder.Sample(2);  // dropped instruments stay dropped, bound holds
  EXPECT_EQ(recorder.series_count(), 2u);
}

TEST(FlightRecorderTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  registry.GetCounter("zeta");
  registry.GetCounter("alpha");
  registry.GetGauge("mid");
  FlightRecorder recorder(&registry);
  recorder.SetEnabled(true);
  recorder.Sample(1);
  std::vector<FlightRecorder::Series> all = recorder.Snapshot();
  ASSERT_GE(all.size(), 3u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].name, all[i].name);
  }
}

TEST(FlightRecorderTest, DisableFreezesRings) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* c = registry.GetCounter("c");
  FlightRecorder recorder(&registry);
  recorder.SetEnabled(true);
  c->Add(1);
  recorder.Sample(1);
  recorder.SetEnabled(false);
  c->Add(99);
  recorder.Sample(2);  // must be the one-relaxed-load-and-out path
  FlightRecorder::Series s;
  ASSERT_TRUE(recorder.Find("c", &s));
  EXPECT_EQ(s.ticks, (std::vector<uint64_t>{1}));
  EXPECT_EQ(recorder.samples(), 1u);
}

// The lock-free sampling claim: parallel shards hammer instruments while
// the sequential point samples. TSan runs this binary; the assertion is
// that every increment lands in exactly one tick's delta (the deltas sum
// to the grand total).
TEST(FlightRecorderTest, SampleWhileParallelShardsRecord) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* c = registry.GetCounter("shard.work");
  Histogram* h = registry.GetHistogram("shard.lat");
  FlightRecorder::Options opts;
  opts.capacity = 4096;
  FlightRecorder recorder(&registry, opts);
  recorder.SetEnabled(true);

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> shards;
  shards.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    shards.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {}
      for (uint64_t j = 0; j < kPerThread; ++j) {
        c->Add(1);
        h->Record(j & 0x3FF);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (uint64_t t = 1; t <= 200; ++t) recorder.Sample(t);
  for (std::thread& th : shards) th.join();
  recorder.Sample(201);  // drain the tail after the shards quiesce

  FlightRecorder::Series s;
  ASSERT_TRUE(recorder.Find("shard.work", &s));
  double sum = 0.0;
  for (double v : s.values) sum += v;
  EXPECT_EQ(sum, static_cast<double>(kThreads) * kPerThread);
  ASSERT_TRUE(recorder.Find("shard.lat:count", &s));
  sum = 0.0;
  for (double v : s.values) sum += v;
  EXPECT_EQ(sum, static_cast<double>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace gamedb::telemetry
