// Tracer + TraceSpan: the disabled/null no-op contract, span capture with
// the tid track convention, deterministic Chrome trace_event rendering, the
// round-trip through the independent validator, and the malformed documents
// the validator must reject.

#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/json.h"

namespace gamedb::telemetry {
namespace {

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;  // disabled by default
  tracer.RecordSpan("x", 100, 10, 0);
  { TraceSpan span(&tracer, "y"); }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, NullTracerSpanIsSafe) {
  TraceSpan span(nullptr, "x");
  // Destructor must be a no-op; reaching the end of scope is the test.
}

TEST(TracerTest, SpanRecordsNameAndTid) {
  Tracer tracer;
  tracer.SetEnabled(true);
  { TraceSpan span(&tracer, "script.shard", /*tid=*/3); }
  { TraceSpan span(&tracer, "tick"); }
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "script.shard");
  EXPECT_EQ(events[0].tid, 3u);
  EXPECT_EQ(events[1].name, "tick");
  EXPECT_EQ(events[1].tid, 0u);
  EXPECT_GE(events[1].ts_ns, events[0].ts_ns);
}

TEST(TracerTest, DisableMidRunStopsRecording) {
  Tracer tracer;
  tracer.SetEnabled(true);
  tracer.RecordSpan("a", 1, 1, 0);
  tracer.SetEnabled(false);
  tracer.RecordSpan("b", 2, 1, 0);
  EXPECT_EQ(tracer.size(), 1u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, ConcurrentSpansAllLand) {
  Tracer tracer;
  tracer.SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.RecordSpan("span", uint64_t(i), 1, uint32_t(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.size(), size_t(kThreads) * kPerThread);
}

// --- Chrome trace JSON ------------------------------------------------------

TEST(ChromeTraceJsonTest, EmptyTraceValidates) {
  Tracer tracer;
  std::string doc = RenderChromeTraceJson(tracer);
  EXPECT_TRUE(ValidateChromeTraceJson(doc).ok()) << doc;
}

TEST(ChromeTraceJsonTest, RoundTripPreservesEveryField) {
  Tracer tracer;
  tracer.SetEnabled(true);
  // 1234567 ns -> 1234.567 us: the microsecond conversion must keep the
  // full nanosecond resolution in its 3 decimals.
  tracer.RecordSpan("tick", 1234567, 1000, 0);
  tracer.RecordSpan("script.shard", 2000000, 500, 2);
  std::string doc = RenderChromeTraceJson(tracer);
  ASSERT_TRUE(ValidateChromeTraceJson(doc).ok()) << doc;

  auto parsed = json::ParseJson(doc);
  ASSERT_TRUE(parsed.ok());
  const json::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->elements.size(), 2u);
  const json::JsonValue& first = events->elements[0];
  EXPECT_EQ(first.Find("name")->str, "tick");
  EXPECT_EQ(first.Find("ph")->str, "X");
  EXPECT_EQ(first.Find("cat")->str, "gamedb");
  EXPECT_DOUBLE_EQ(first.Find("ts")->number, 1234.567);
  EXPECT_DOUBLE_EQ(first.Find("dur")->number, 1.0);
  EXPECT_EQ(first.Find("pid")->number, 1.0);
  EXPECT_EQ(first.Find("tid")->number, 0.0);
  EXPECT_EQ(events->elements[1].Find("tid")->number, 2.0);
}

TEST(ChromeTraceJsonTest, RenderSortsByTimestampAndIsDeterministic) {
  Tracer tracer;
  tracer.SetEnabled(true);
  tracer.RecordSpan("late", 3000, 10, 0);
  tracer.RecordSpan("early", 1000, 10, 0);
  tracer.RecordSpan("mid", 2000, 10, 1);
  std::string doc = RenderChromeTraceJson(tracer);
  ASSERT_TRUE(ValidateChromeTraceJson(doc).ok());
  auto parsed = json::ParseJson(doc);
  ASSERT_TRUE(parsed.ok());
  const json::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_EQ(events->elements.size(), 3u);
  EXPECT_EQ(events->elements[0].Find("name")->str, "early");
  EXPECT_EQ(events->elements[1].Find("name")->str, "mid");
  EXPECT_EQ(events->elements[2].Find("name")->str, "late");
  EXPECT_EQ(doc, RenderChromeTraceJson(tracer));
}

TEST(ChromeTraceJsonTest, ValidatorRejectsMissingEventsArray) {
  Status st = ValidateChromeTraceJson("{\"displayTimeUnit\": \"ms\"}");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("trace json schema violation"),
            std::string::npos)
      << st.ToString();
}

TEST(ChromeTraceJsonTest, ValidatorRejectsNonCompleteSpan) {
  Status st = ValidateChromeTraceJson(
      "{\"traceEvents\": [{\"name\": \"x\", \"cat\": \"gamedb\", "
      "\"ph\": \"B\", \"ts\": 1, \"dur\": 1, \"pid\": 1, \"tid\": 0}]}");
  EXPECT_FALSE(st.ok());
}

TEST(ChromeTraceJsonTest, ValidatorRejectsEmptyName) {
  Status st = ValidateChromeTraceJson(
      "{\"traceEvents\": [{\"name\": \"\", \"cat\": \"gamedb\", "
      "\"ph\": \"X\", \"ts\": 1, \"dur\": 1, \"pid\": 1, \"tid\": 0}]}");
  EXPECT_FALSE(st.ok());
}

TEST(ChromeTraceJsonTest, ValidatorRejectsNegativeTimes) {
  Status st = ValidateChromeTraceJson(
      "{\"traceEvents\": [{\"name\": \"x\", \"cat\": \"gamedb\", "
      "\"ph\": \"X\", \"ts\": -1, \"dur\": 1, \"pid\": 1, \"tid\": 0}]}");
  EXPECT_FALSE(st.ok());
}

TEST(ChromeTraceJsonTest, ValidatorRejectsGarbage) {
  EXPECT_FALSE(ValidateChromeTraceJson("not json").ok());
  EXPECT_FALSE(ValidateChromeTraceJson("").ok());
}

}  // namespace
}  // namespace gamedb::telemetry
