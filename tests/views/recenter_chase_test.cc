// LiveView::Recenter under a chase workload: the interest-view center moves
// every tick (the avatar is running) while the underlying rows churn from
// tracked mutations. After every tick's maintenance + recenter, membership,
// iteration order and the maintained aggregate must be bit-identical to a
// from-scratch planner execution at the new center — the scenario harness's
// `chase` scenario leans on exactly this equivalence at full client count.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/query.h"
#include "core/reflect.h"
#include "core/world.h"
#include "planner/planner.h"
#include "views/maintainer.h"

namespace gamedb::views {
namespace {

using planner::QueryPlanner;

constexpr float kArena = 400.0f;
constexpr float kRadius = 60.0f;

class RecenterChaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardComponents();
    planner_ = std::make_unique<QueryPlanner>(&world_);
    catalog_ = std::make_unique<ViewCatalog>(&world_, planner_.get());
    Rng rng(424242);
    for (int i = 0; i < 400; ++i) {
      EntityId e = world_.Create();
      world_.Set(e, Position{{rng.NextFloat(0, kArena), 0,
                              rng.NextFloat(0, kArena)}});
      world_.Set(e, Health{rng.NextFloat(1, 100), 100.0f});
      pool_.push_back(e);
    }
    planner_->Analyze();
  }

  ViewDef InterestDef(const std::string& name, bool with_aggregate) {
    ViewDef def;
    def.name = name;
    def.where = {{"Health", "hp", CmpOp::kGt, 0.0}};
    def.has_near = true;
    def.near = {"Position", "value", {kArena / 2, 0, kArena / 2}, kRadius};
    if (with_aggregate) {
      def.aggregate = AggKind::kAvg;
      def.agg_component = "Health";
      def.agg_field = "hp";
    }
    return def;
  }

  /// Fresh planner execution of `def` with its near-center at `center`.
  std::vector<EntityId> FreshMembers(const ViewDef& def, const Vec3& center) {
    DynamicQuery q(&world_);
    q.SetPlanner(planner_.get());
    for (const auto& w : def.where) {
      q.WhereField(w.component, w.field, w.op, w.rhs);
    }
    q.WithinRadius(def.near.component, def.near.field, center,
                   def.near.radius);
    if (def.aggregate != AggKind::kNone) q.With(def.agg_component);
    auto r = q.Collect();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : std::vector<EntityId>{};
  }

  Result<double> FreshAvg(const ViewDef& def, const Vec3& center) {
    DynamicQuery q(&world_);
    q.SetPlanner(planner_.get());
    for (const auto& w : def.where) {
      q.WhereField(w.component, w.field, w.op, w.rhs);
    }
    q.WithinRadius(def.near.component, def.near.field, center,
                   def.near.radius);
    return q.Avg(def.agg_component, def.agg_field);
  }

  /// Tracked churn: a slice of the pool moves, another slice's hp rewrites
  /// (some rows to 0, killing their predicate match inside the bubble).
  void Churn(Rng& rng) {
    for (int i = 0; i < 40; ++i) {
      EntityId e = pool_[rng.NextBounded(pool_.size())];
      world_.Set(e, Position{{rng.NextFloat(0, kArena), 0,
                              rng.NextFloat(0, kArena)}});
    }
    for (int i = 0; i < 20; ++i) {
      EntityId e = pool_[rng.NextBounded(pool_.size())];
      float hp = rng.NextBool(0.2) ? 0.0f : rng.NextFloat(1, 100);
      world_.Patch<Health>(e, [hp](Health& h) { h.hp = hp; });
    }
  }

  World world_;
  std::unique_ptr<QueryPlanner> planner_;
  std::unique_ptr<ViewCatalog> catalog_;
  std::vector<EntityId> pool_;
};

TEST_F(RecenterChaseTest, PerTickMovingCenterMatchesFreshExecution) {
  ViewDef def = InterestDef("chase_interest", /*with_aggregate=*/false);
  LiveView* view = catalog_->Register(def).value();

  // The avatar sprints on a deterministic zig-zag; every tick the world
  // churns, maintenance runs, then the interest bubble recenters.
  Rng rng(99);
  Vec3 center = def.near.center;
  for (int tick = 0; tick < 60; ++tick) {
    Churn(rng);
    catalog_->Maintain();
    center = {center.x + rng.NextFloat(-25, 25), 0,
              center.z + rng.NextFloat(-25, 25)};
    center.x = std::min(kArena, std::max(0.0f, center.x));
    center.z = std::min(kArena, std::max(0.0f, center.z));
    ASSERT_TRUE(view->Recenter(center).ok());

    EXPECT_EQ(view->Members(), FreshMembers(def, center))
        << "tick " << tick << ": membership diverged from fresh execution";
  }
  EXPECT_GE(view->stats().repopulations, 60u)
      << "every distinct-center Recenter must repopulate";
}

TEST_F(RecenterChaseTest, AggregateTracksTheMovingBubble) {
  ViewDef def = InterestDef("chase_avg", /*with_aggregate=*/true);
  LiveView* view = catalog_->Register(def).value();

  Rng rng(7);
  Vec3 center = def.near.center;
  for (int tick = 0; tick < 40; ++tick) {
    Churn(rng);
    catalog_->Maintain();
    center = {rng.NextFloat(0, kArena), 0, rng.NextFloat(0, kArena)};
    ASSERT_TRUE(view->Recenter(center).ok());

    Result<double> expect = FreshAvg(def, center);
    Result<double> got = view->Aggregate();
    ASSERT_EQ(expect.ok(), got.ok()) << "tick " << tick;
    if (expect.ok()) {
      EXPECT_EQ(*got, *expect)
          << "tick " << tick << ": aggregate diverged at the new center";
    }
  }
}

TEST_F(RecenterChaseTest, SubscribersSeeEnterExitDeltasAcrossRecenters) {
  ViewDef def = InterestDef("chase_subs", /*with_aggregate=*/false);
  LiveView* view = catalog_->Register(def).value();

  // Mirror membership purely from subscription callbacks; it must track
  // real membership through every recenter (Recenter promises diffs, not
  // a silent rebuild).
  std::set<uint64_t> mirror;
  for (EntityId e : view->Members()) mirror.insert(e.Raw());
  view->OnEnter([&](EntityId e) { mirror.insert(e.Raw()); });
  view->OnExit([&](EntityId e) { mirror.erase(e.Raw()); });

  Rng rng(31337);
  for (int tick = 0; tick < 40; ++tick) {
    Churn(rng);
    catalog_->Maintain();
    Vec3 center{rng.NextFloat(0, kArena), 0, rng.NextFloat(0, kArena)};
    ASSERT_TRUE(view->Recenter(center).ok());

    std::set<uint64_t> actual;
    for (EntityId e : view->Members()) actual.insert(e.Raw());
    EXPECT_EQ(mirror, actual) << "tick " << tick
                              << ": callback mirror diverged";
  }
  EXPECT_GT(view->stats().enters, 0u);
  EXPECT_GT(view->stats().exits, 0u);
}

TEST_F(RecenterChaseTest, UnchangedCenterIsANoOp) {
  ViewDef def = InterestDef("chase_noop", /*with_aggregate=*/false);
  LiveView* view = catalog_->Register(def).value();
  uint64_t before = view->stats().repopulations;
  ASSERT_TRUE(view->Recenter(def.near.center).ok());
  EXPECT_EQ(view->stats().repopulations, before)
      << "same-center Recenter must not repopulate";
}

TEST_F(RecenterChaseTest, RecenterWithoutNearTermFails) {
  ViewDef def;
  def.name = "no_near";
  def.where = {{"Health", "hp", CmpOp::kGt, 0.0}};
  LiveView* view = catalog_->Register(def).value();
  EXPECT_FALSE(view->Recenter({1, 0, 1}).ok());
}

}  // namespace
}  // namespace gamedb::views
