#include "views/view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "planner/planner.h"
#include "script/bindings.h"
#include "script/builtins.h"
#include "script/parser.h"
#include "script/triggers.h"
#include "views/maintainer.h"

namespace gamedb::views {
namespace {

using planner::QueryPlanner;

class LiveViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardComponents();
    planner = std::make_unique<QueryPlanner>(&world);
    catalog = std::make_unique<ViewCatalog>(&world, planner.get());
  }

  EntityId Spawn(float hp, int32_t team = 0) {
    EntityId e = world.Create();
    world.Set(e, Health{hp, 100.0f});
    world.Set(e, Faction{team});
    return e;
  }

  /// The fresh-query twin of a registered view: same construction order.
  std::vector<EntityId> FreshCollect(const ViewDef& def) {
    DynamicQuery q(&world);
    q.SetPlanner(planner.get());
    for (const auto& c : def.with) q.With(c);
    for (const auto& w : def.where) {
      q.WhereField(w.component, w.field, w.op, w.rhs);
    }
    if (def.has_near) {
      q.WithinRadius(def.near.component, def.near.field, def.near.center,
                     def.near.radius);
    }
    if (def.aggregate != AggKind::kNone) q.With(def.agg_component);
    auto r = q.Collect();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : std::vector<EntityId>{};
  }

  World world;
  std::unique_ptr<QueryPlanner> planner;
  std::unique_ptr<ViewCatalog> catalog;
};

TEST_F(LiveViewTest, RegisterValidatesNames) {
  ViewDef unknown;
  unknown.name = "bad";
  unknown.with = {"NoSuchComponent"};
  EXPECT_TRUE(catalog->Register(unknown).status().IsNotFound());

  ViewDef unknown_field;
  unknown_field.name = "bad2";
  unknown_field.where = {{"Health", "no_such_field", CmpOp::kLt, 1.0}};
  EXPECT_TRUE(catalog->Register(unknown_field).status().IsNotFound());

  ViewDef empty;
  empty.name = "empty";
  EXPECT_TRUE(catalog->Register(empty).status().IsInvalidArgument());

  ViewDef nameless;
  nameless.with = {"Health"};
  EXPECT_TRUE(catalog->Register(nameless).status().IsInvalidArgument());

  ViewDef ok;
  ok.name = "wounded";
  ok.where = {{"Health", "hp", CmpOp::kLt, 50.0}};
  ASSERT_TRUE(catalog->Register(ok).ok());
  EXPECT_TRUE(catalog->Register(ok).status().IsInvalidArgument())
      << "duplicate name";
  EXPECT_EQ(catalog->view_count(), 1u);
  EXPECT_NE(catalog->Find("wounded"), nullptr);
  EXPECT_EQ(catalog->Find("nope"), nullptr);
}

TEST_F(LiveViewTest, UnregisterRemovesTheViewAndFreesTheName) {
  ViewDef def;
  def.name = "temp";
  def.where = {{"Health", "hp", CmpOp::kLt, 50.0}};
  ASSERT_TRUE(catalog->Register(def).ok());
  ASSERT_NE(catalog->Find("temp"), nullptr);

  EXPECT_TRUE(catalog->Unregister("temp"));
  EXPECT_EQ(catalog->Find("temp"), nullptr);
  EXPECT_EQ(catalog->view_count(), 0u);
  EXPECT_FALSE(catalog->Unregister("temp"));

  // Deltas for the dead view are dropped, not routed into freed memory.
  EntityId e = Spawn(10);
  catalog->Maintain();

  // The name is reusable; the new view sees current state.
  auto again = catalog->Register(def);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE((*again)->Contains(e));
}

TEST_F(LiveViewTest, MembershipFollowsPredicateAcrossMaintenance) {
  EntityId weak = Spawn(10);
  EntityId strong = Spawn(90);

  ViewDef def;
  def.name = "wounded";
  def.where = {{"Health", "hp", CmpOp::kLt, 50.0}};
  auto view_r = catalog->Register(def);
  ASSERT_TRUE(view_r.ok());
  LiveView* view = *view_r;

  // Population through the planner at registration.
  EXPECT_TRUE(view->Contains(weak));
  EXPECT_FALSE(view->Contains(strong));
  EXPECT_EQ(view->size(), 1u);

  std::vector<EntityId> entered, exited, updated;
  view->OnEnter([&](EntityId e) { entered.push_back(e); });
  view->OnExit([&](EntityId e) { exited.push_back(e); });
  view->OnUpdate([&](EntityId e) { updated.push_back(e); });

  // strong drops below the threshold, weak heals above it.
  world.Patch<Health>(strong, [](Health& h) { h.hp = 5; });
  world.Patch<Health>(weak, [](Health& h) { h.hp = 80; });
  catalog->Maintain();

  EXPECT_TRUE(view->Contains(strong));
  EXPECT_FALSE(view->Contains(weak));
  EXPECT_EQ(entered, std::vector<EntityId>{strong});
  EXPECT_EQ(exited, std::vector<EntityId>{weak});
  EXPECT_TRUE(updated.empty());

  // An in-membership write fires update, not enter/exit.
  world.Patch<Health>(strong, [](Health& h) { h.hp = 7; });
  catalog->Maintain();
  EXPECT_EQ(updated, std::vector<EntityId>{strong});
  EXPECT_EQ(entered.size(), 1u);
  EXPECT_EQ(exited.size(), 1u);

  // Destroy removes the member (component erase -> captured removal).
  world.Destroy(strong);
  catalog->Maintain();
  EXPECT_FALSE(view->Contains(strong));
  EXPECT_EQ(exited.back(), strong);
  EXPECT_EQ(view->size(), 0u);
}

TEST_F(LiveViewTest, MembersMatchFreshExecutionOrder) {
  for (int i = 0; i < 64; ++i) Spawn(float(i * 3 % 100), i % 4);
  ViewDef def;
  def.name = "team2";
  def.where = {{"Faction", "team", CmpOp::kEq, int64_t{2}}};
  auto view = catalog->Register(def);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->Members(), FreshCollect(def));

  // Mutate some rows (team churn) and re-check order equivalence.
  int i = 0;
  world.Table<Faction>().ForEach([&](EntityId, Faction& f) {
    if (++i % 3 == 0) f.team = (f.team + 1) % 4;
  });
  // ForEach bypassed tracking on purpose; redo it tracked.
  std::vector<EntityId> all;
  world.Table<Faction>().ForEach(
      [&](EntityId e, const Faction&) { all.push_back(e); });
  for (EntityId e : all) world.Patch<Faction>(e, [](Faction&) {});
  catalog->Maintain();
  EXPECT_EQ((*view)->Members(), FreshCollect(def));
}

TEST_F(LiveViewTest, AggregatesMatchFreshTerminals) {
  for (int i = 0; i < 40; ++i) Spawn(float(i * 7 % 100), i % 2);

  auto reg = [&](const char* name, AggKind kind) {
    ViewDef def;
    def.name = name;
    def.where = {{"Faction", "team", CmpOp::kEq, int64_t{1}}};
    def.aggregate = kind;
    def.agg_component = "Health";
    def.agg_field = "hp";
    auto r = catalog->Register(def);
    EXPECT_TRUE(r.ok());
    return *r;
  };
  LiveView* sum = reg("sum", AggKind::kSum);
  LiveView* avg = reg("avg", AggKind::kAvg);
  LiveView* mn = reg("min", AggKind::kMin);
  LiveView* mx = reg("max", AggKind::kMax);
  LiveView* cnt = reg("count", AggKind::kCount);

  auto fresh = [&](auto terminal) {
    DynamicQuery q(&world);
    q.SetPlanner(planner.get());
    q.WhereField("Faction", "team", CmpOp::kEq, int64_t{1});
    return terminal(q);
  };
  auto check_all = [&]() {
    auto sum_f =
        fresh([](DynamicQuery& q) { return q.Sum("Health", "hp"); });
    ASSERT_TRUE(sum_f.ok());
    EXPECT_EQ(*sum->Aggregate(), *sum_f);  // bit-identical fold
    EXPECT_EQ(*avg->Aggregate(),
              *fresh([](DynamicQuery& q) { return q.Avg("Health", "hp"); }));
    EXPECT_EQ(*mn->Aggregate(),
              *fresh([](DynamicQuery& q) { return q.Min("Health", "hp"); }));
    EXPECT_EQ(*mx->Aggregate(),
              *fresh([](DynamicQuery& q) { return q.Max("Health", "hp"); }));
    // Count() on the fresh query does not require Health; the count view
    // does (its fold would) — compare against a query with Health required.
    DynamicQuery qc(&world);
    qc.SetPlanner(planner.get());
    qc.WhereField("Faction", "team", CmpOp::kEq, int64_t{1});
    qc.With("Health");
    EXPECT_EQ(*cnt->Aggregate(), static_cast<double>(*qc.Count()));
    // Maintained O(1)/O(log n) reads agree on count and extrema exactly.
    EXPECT_EQ(sum->count(), static_cast<int64_t>(sum->size()));
    EXPECT_EQ(mn->running_min(), *mn->Aggregate());
    EXPECT_EQ(mx->running_max(), *mx->Aggregate());
    EXPECT_NEAR(sum->running_sum(), *sum->Aggregate(), 1e-6);
  };
  check_all();

  // Churn: hp writes, team flips, destroys, spawns.
  std::vector<EntityId> all;
  world.Table<Health>().ForEach(
      [&](EntityId e, const Health&) { all.push_back(e); });
  for (size_t i = 0; i < all.size(); i += 3) {
    world.Patch<Health>(all[i], [&](Health& h) { h.hp += float(i % 11); });
  }
  for (size_t i = 0; i < all.size(); i += 5) {
    world.Patch<Faction>(all[i], [](Faction& f) { f.team ^= 1; });
  }
  world.Destroy(all[7]);
  Spawn(33.0f, 1);
  catalog->Maintain();
  check_all();
}

TEST_F(LiveViewTest, EmptyAggregateMirrorsFreshNotFound) {
  ViewDef def;
  def.name = "empty_min";
  def.where = {{"Health", "hp", CmpOp::kLt, -1.0}};  // matches nothing
  def.aggregate = AggKind::kMin;
  def.agg_component = "Health";
  def.agg_field = "hp";
  auto view = catalog->Register(def);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE((*view)->Aggregate().status().IsNotFound());
  EXPECT_TRUE((*view)->running_extrema_empty());

  ViewDef plain;
  plain.name = "plain";
  plain.with = {"Health"};
  auto pv = catalog->Register(plain);
  ASSERT_TRUE(pv.ok());
  EXPECT_TRUE((*pv)->Aggregate().status().IsNotSupported());
}

TEST_F(LiveViewTest, RadiusViewReprobesOnlyMovedEntities) {
  std::vector<EntityId> es;
  for (int i = 0; i < 50; ++i) {
    EntityId e = world.Create();
    world.Set(e, Position{{float(i), 0, 0}});
    es.push_back(e);
  }
  ViewDef def;
  def.name = "near_origin";
  def.has_near = true;
  def.near = {"Position", "value", {0, 0, 0}, 10.0f};
  auto view_r = catalog->Register(def);
  ASSERT_TRUE(view_r.ok());
  LiveView* view = *view_r;
  EXPECT_EQ(view->size(), 11u);  // x = 0..10 inclusive

  uint64_t before = view->stats().reevaluated;
  // Move exactly two entities: one out of range, one into range.
  world.Patch<Position>(es[5], [](Position& p) { p.value.x = 100; });
  world.Patch<Position>(es[20], [](Position& p) { p.value.x = 3; });
  catalog->Maintain();
  EXPECT_FALSE(view->Contains(es[5]));
  EXPECT_TRUE(view->Contains(es[20]));
  // Incrementality: only the two moved entities were re-evaluated, not the
  // whole Position table.
  EXPECT_EQ(view->stats().reevaluated - before, 2u);
  EXPECT_EQ(view->Members(), FreshCollect(def));
}

TEST_F(LiveViewTest, RecenterDiffsThroughThePlanner) {
  for (int i = 0; i < 100; ++i) {
    EntityId e = world.Create();
    world.Set(e, Position{{float(i), 0, 0}});
  }
  ViewDef def;
  def.name = "bubble";
  def.has_near = true;
  def.near = {"Position", "value", {0, 0, 0}, 5.0f};
  auto view_r = catalog->Register(def);
  ASSERT_TRUE(view_r.ok());
  LiveView* view = *view_r;
  ASSERT_EQ(view->size(), 6u);

  size_t enters = 0, exits = 0;
  view->OnEnter([&](EntityId) { ++enters; });
  view->OnExit([&](EntityId) { ++exits; });

  ASSERT_TRUE(view->Recenter({50, 0, 0}).ok());
  EXPECT_EQ(view->size(), 11u);  // x = 45..55
  EXPECT_EQ(enters, 11u);
  EXPECT_EQ(exits, 6u);
  def.near.center = {50, 0, 0};
  EXPECT_EQ(view->Members(), FreshCollect(def));

  // Unchanged center is a cheap no-op.
  uint64_t repop = view->stats().repopulations;
  ASSERT_TRUE(view->Recenter({50, 0, 0}).ok());
  EXPECT_EQ(view->stats().repopulations, repop);

  ViewDef no_near;
  no_near.name = "no_near";
  no_near.with = {"Position"};
  auto plain = catalog->Register(no_near);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE((*plain)->Recenter({1, 2, 3}).IsInvalidArgument());
}

TEST_F(LiveViewTest, WatchViewFiresGslHandlersOnMembershipChanges) {
  using script::Interpreter;
  using script::Parse;
  using script::TriggerSystem;

  EntityId e = Spawn(80);

  ViewDef def;
  def.name = "wounded";
  def.where = {{"Health", "hp", CmpOp::kLt, 50.0}};
  auto view = catalog->Register(def);
  ASSERT_TRUE(view.ok());

  Interpreter interp;
  script::RegisterCoreBuiltins(&interp);
  auto parsed = Parse(
      "let entered = 0\nlet exited = 0\nlet last = nil\n"
      "on view_enter(e) { entered = entered + 1 last = e }\n"
      "on view_exit(e) { exited = exited + 1 }");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(interp.Load(std::move(*parsed)).ok());
  TriggerSystem triggers(&interp);
  triggers.WatchView(*view, "view_enter", "view_exit");

  world.Patch<Health>(e, [](Health& h) { h.hp = 10; });
  catalog->Maintain();  // enqueues view_enter(e)
  ASSERT_TRUE(triggers.Pump().ok());
  EXPECT_DOUBLE_EQ(interp.GetGlobal("entered")->AsNumber(), 1.0);
  EXPECT_EQ(interp.GetGlobal("last")->AsEntity(), e);

  world.Patch<Health>(e, [](Health& h) { h.hp = 99; });
  catalog->Maintain();
  ASSERT_TRUE(triggers.Pump().ok());
  EXPECT_DOUBLE_EQ(interp.GetGlobal("exited")->AsNumber(), 1.0);
}

TEST_F(LiveViewTest, ViewBuiltinsReadTheCatalog) {
  using script::Interpreter;
  using script::Parse;
  using script::Value;

  EntityId weak = Spawn(10);
  Spawn(90);

  ViewDef def;
  def.name = "wounded";
  def.where = {{"Health", "hp", CmpOp::kLt, 50.0}};
  def.aggregate = AggKind::kSum;
  def.agg_component = "Health";
  def.agg_field = "hp";
  ASSERT_TRUE(catalog->Register(def).ok());

  Interpreter interp;
  script::RegisterCoreBuiltins(&interp);
  script::BindViews(&interp, catalog.get());
  auto parsed = Parse(
      "fn n() { return view_count(\"wounded\") }\n"
      "fn have(e) { return view_contains(\"wounded\", e) }\n"
      "fn first() { return at(view_members(\"wounded\"), 0) }\n"
      "fn total() { return view_aggregate(\"wounded\") }\n"
      "fn missing() { return view_count(\"nope\") }");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(interp.Load(std::move(*parsed)).ok());

  auto n = interp.Call("n", {});
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_DOUBLE_EQ(n->AsNumber(), 1.0);
  auto have = interp.Call("have", {Value(weak)});
  ASSERT_TRUE(have.ok());
  EXPECT_TRUE(have->AsBool());
  auto first = interp.Call("first", {});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->AsEntity(), weak);
  auto total = interp.Call("total", {});
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ(total->AsNumber(), 10.0);
  EXPECT_TRUE(interp.Call("missing", {}).status().IsNotFound());
}

}  // namespace
}  // namespace gamedb::views
