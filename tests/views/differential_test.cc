// The LiveView correctness harness: randomized mutation storms with the
// differential oracle "after maintenance, every view's membership, order
// and aggregate are bit-identical to a from-scratch planner execution of
// the same query". Covers the sequential direct-mutation path (planner on
// AND off — delta maintenance must not care how queries execute) and the
// ScriptHost path at 1 and 4 threads (deferred mutations, views maintained
// at the host's quiescent point).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "planner/planner.h"
#include "script/host.h"
#include "views/maintainer.h"

namespace gamedb::views {
namespace {

using planner::PlannerOptions;
using planner::PlannerPolicy;
using planner::QueryPlanner;

/// World + planner + catalog with a representative set of registered views:
/// predicate-only, multi-table join, proximity, and every aggregate kind.
class Harness {
 public:
  explicit Harness(PlannerPolicy policy) {
    RegisterStandardComponents();
    PlannerOptions opts;
    opts.policy = policy;
    planner_ = std::make_unique<QueryPlanner>(&world_, opts);
    catalog_ = std::make_unique<ViewCatalog>(&world_, planner_.get());

    Add([] {
      ViewDef d;
      d.name = "wounded";
      d.where = {{"Health", "hp", CmpOp::kLt, 50.0}};
      return d;
    }());
    Add([] {
      ViewDef d;
      d.name = "team1_hp";
      d.where = {{"Faction", "team", CmpOp::kEq, int64_t{1}}};
      d.aggregate = AggKind::kSum;
      d.agg_component = "Health";
      d.agg_field = "hp";
      return d;
    }());
    Add([] {
      ViewDef d;
      d.name = "nearby_sturdy";
      d.where = {{"Health", "hp", CmpOp::kGe, 20.0}};
      d.has_near = true;
      d.near = {"Position", "value", {50, 0, 50}, 30.0f};
      d.aggregate = AggKind::kCount;
      d.agg_component = "Health";
      d.agg_field = "hp";
      return d;
    }());
    Add([] {
      ViewDef d;
      d.name = "richest";
      d.with = {"Actor"};
      d.aggregate = AggKind::kMax;
      d.agg_component = "Actor";
      d.agg_field = "gold";
      return d;
    }());
    Add([] {
      ViewDef d;
      d.name = "placed_avg_hp";
      d.with = {"Position"};
      d.aggregate = AggKind::kAvg;
      d.agg_component = "Health";
      d.agg_field = "hp";
      return d;
    }());
    Add([] {
      ViewDef d;
      d.name = "nonteam3_min";
      d.where = {{"Faction", "team", CmpOp::kNe, int64_t{3}}};
      d.aggregate = AggKind::kMin;
      d.agg_component = "Health";
      d.agg_field = "hp";
      return d;
    }());
  }

  World& world() { return world_; }
  ViewCatalog& catalog() { return *catalog_; }
  QueryPlanner& planner() { return *planner_; }
  const std::vector<LiveView*>& views() const { return views_; }

  EntityId Spawn(Rng& rng) {
    EntityId e = world_.Create();
    world_.Set(e, Health{rng.NextFloat(0, 100), 100.0f});
    world_.Set(e, Faction{int32_t(rng.NextInt(0, 3))});
    if (rng.NextBool(0.8)) {
      world_.Set(e, Position{{rng.NextFloat(0, 100), 0,
                              rng.NextFloat(0, 100)}});
    }
    if (rng.NextBool(0.3)) {
      world_.Set(e, Actor{rng.NextInt(0, 1000), rng.NextInt(0, 500), 1,
                          false});
    }
    live_.push_back(e);
    return e;
  }

  /// One tick of randomized churn: spawns, destroys, field writes,
  /// movement, component add/remove — all tracked mutations.
  void StormTick(Rng& rng) {
    world_.AdvanceTick();
    const size_t ops = 30;
    for (size_t i = 0; i < ops; ++i) {
      if (live_.empty()) {
        Spawn(rng);
        continue;
      }
      EntityId e = live_[rng.NextU64() % live_.size()];
      switch (rng.NextInt(0, 9)) {
        case 0:
          Spawn(rng);
          break;
        case 1: {
          // Destroy (swap-remove from the pool).
          size_t idx = rng.NextU64() % live_.size();
          EntityId victim = live_[idx];
          live_[idx] = live_.back();
          live_.pop_back();
          world_.Destroy(victim);
          break;
        }
        case 2:
        case 3:
        case 4:
          world_.Patch<Health>(
              e, [&](Health& h) { h.hp = rng.NextFloat(0, 100); });
          break;
        case 5:
        case 6:
          if (world_.Has<Position>(e)) {
            world_.Patch<Position>(e, [&](Position& p) {
              p.value.x += rng.NextFloat(-15, 15);
              p.value.z += rng.NextFloat(-15, 15);
            });
          } else {
            world_.Set(e, Position{{rng.NextFloat(0, 100), 0,
                                    rng.NextFloat(0, 100)}});
          }
          break;
        case 7:
          if (world_.Has<Faction>(e)) {
            world_.Remove<Faction>(e);
          } else {
            world_.Set(e, Faction{int32_t(rng.NextInt(0, 3))});
          }
          break;
        case 8:
          if (world_.Has<Actor>(e)) {
            world_.Patch<Actor>(
                e, [&](Actor& a) { a.gold = rng.NextInt(0, 500); });
          } else {
            world_.Set(e, Actor{rng.NextInt(0, 1000), rng.NextInt(0, 500),
                                1, false});
          }
          break;
        case 9:
          world_.Remove<Health>(e);
          world_.Set(e, Health{rng.NextFloat(0, 100), 100.0f});
          break;
      }
    }
  }

  /// The differential oracle. `where` labels failures.
  void CheckAll(const std::string& where) {
    for (LiveView* v : views_) {
      // Membership and order vs a from-scratch planner execution.
      DynamicQuery q(&world_);
      q.SetPlanner(planner_.get());
      BuildShape(v->def(), &q);
      auto fresh = q.Collect();
      ASSERT_TRUE(fresh.ok()) << where << " " << v->name();
      EXPECT_EQ(v->Members(), *fresh)
          << where << ": view '" << v->name()
          << "' diverged from fresh execution";
      EXPECT_EQ(v->size(), fresh->size()) << where << " " << v->name();

      // Aggregate vs the equivalent fresh terminal, bit for bit.
      if (v->def().aggregate == AggKind::kNone) continue;
      DynamicQuery qa(&world_);
      qa.SetPlanner(planner_.get());
      BuildShape(v->def(), &qa, /*add_agg_component=*/false);
      Result<double> expect = RunTerminal(v->def(), &qa);
      Result<double> got = v->Aggregate();
      ASSERT_EQ(expect.ok(), got.ok())
          << where << " " << v->name() << ": "
          << (expect.ok() ? got.status() : expect.status()).ToString();
      if (expect.ok()) {
        EXPECT_EQ(*got, *expect)
            << where << ": aggregate of '" << v->name() << "' diverged";
      }
    }
  }

 private:
  void Add(ViewDef def) {
    auto r = catalog_->Register(std::move(def));
    GAMEDB_CHECK(r.ok());
    views_.push_back(*r);
  }

  /// Rebuilds the view's query with DynamicQuery's construction order.
  static void BuildShape(const ViewDef& def, DynamicQuery* q,
                         bool add_agg_component = true) {
    for (const auto& c : def.with) q->With(c);
    for (const auto& w : def.where) {
      q->WhereField(w.component, w.field, w.op, w.rhs);
    }
    if (def.has_near) {
      q->WithinRadius(def.near.component, def.near.field, def.near.center,
                      def.near.radius);
    }
    if (def.aggregate != AggKind::kNone && add_agg_component) {
      q->With(def.agg_component);
    }
  }

  static Result<double> RunTerminal(const ViewDef& def, DynamicQuery* q) {
    switch (def.aggregate) {
      case AggKind::kCount: {
        // Count does not fold the field, but the view requires the
        // aggregated component; mirror that.
        q->With(def.agg_component);
        auto n = q->Count();
        if (!n.ok()) return n.status();
        return static_cast<double>(*n);
      }
      case AggKind::kSum:
        return q->Sum(def.agg_component, def.agg_field);
      case AggKind::kAvg:
        return q->Avg(def.agg_component, def.agg_field);
      case AggKind::kMin:
        return q->Min(def.agg_component, def.agg_field);
      case AggKind::kMax:
        return q->Max(def.agg_component, def.agg_field);
      case AggKind::kNone:
        break;
    }
    return Status::InvalidArgument("no aggregate");
  }

  World world_;
  std::unique_ptr<QueryPlanner> planner_;
  std::unique_ptr<ViewCatalog> catalog_;
  std::vector<LiveView*> views_;
  std::vector<EntityId> live_;
};

class DifferentialTest : public ::testing::TestWithParam<PlannerPolicy> {};

// Acceptance: >= 100 ticks of randomized spawn/destroy/field-write/movement
// storms; every registered view stays bit-identical to its from-scratch
// execution. Runs with the planner on and off — maintenance consumes the
// same change capture either way.
TEST_P(DifferentialTest, StormStaysBitIdenticalToFreshExecution) {
  Harness h(GetParam());
  Rng rng(20260726);
  for (int i = 0; i < 40; ++i) h.Spawn(rng);
  h.planner().Analyze();
  h.catalog().Maintain();  // absorb the post-registration spawns
  h.CheckAll("initial");
  for (int tick = 1; tick <= 120; ++tick) {
    h.StormTick(rng);
    if (tick % 7 == 0) {
      // Occasionally move the proximity view's bubble (planner-assisted
      // repopulate path).
      ASSERT_TRUE(h.catalog()
                      .Find("nearby_sturdy")
                      ->Recenter({rng.NextFloat(0, 100), 0,
                                  rng.NextFloat(0, 100)})
                      .ok());
    }
    h.catalog().Maintain();
    h.CheckAll("tick " + std::to_string(tick));
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, DifferentialTest,
                         ::testing::Values(PlannerPolicy::kOn,
                                           PlannerPolicy::kOff),
                         [](const auto& info) {
                           return info.param == PlannerPolicy::kOn
                                      ? "PlannerOn"
                                      : "PlannerOff";
                         });

// Same storm, two harnesses, planner on vs off: view contents must be
// identical tick for tick (the change log and maintenance cannot depend on
// how population queries execute).
TEST(DifferentialCrossTest, PlannerOnAndOffSeeIdenticalViews) {
  Harness on(PlannerPolicy::kOn);
  Harness off(PlannerPolicy::kOff);
  Rng rng_on(7), rng_off(7);
  for (int i = 0; i < 40; ++i) {
    on.Spawn(rng_on);
    off.Spawn(rng_off);
  }
  for (int tick = 1; tick <= 60; ++tick) {
    on.StormTick(rng_on);
    off.StormTick(rng_off);
    on.catalog().Maintain();
    off.catalog().Maintain();
    for (size_t v = 0; v < on.views().size(); ++v) {
      EXPECT_EQ(on.views()[v]->Members(), off.views()[v]->Members())
          << "tick " << tick << " view " << on.views()[v]->name();
    }
  }
}

// The scripted path: deferred mutations from a parallel query phase, views
// maintained at the host's sequential point. 1 and 4 threads (acceptance).
class HostDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HostDifferentialTest, ScriptedStormStaysBitIdentical) {
  Harness h(PlannerPolicy::kOn);
  Rng rng(42);
  for (int i = 0; i < 150; ++i) h.Spawn(rng);
  h.planner().Analyze();

  script::ScriptHostOptions opts;
  opts.num_threads = GetParam();
  opts.planner = &h.planner();
  opts.views = &h.catalog();
  script::ScriptHost host(&h.world(), opts);
  // Per-entity churn: hp rewrites every tick, movement for ~30%, a 1%
  // deferred destroy. random() streams are per-entity-seeded, so the world
  // evolves identically at any thread count.
  Status load = host.Load(
      "fn tick(e) {\n"
      "  set(e, \"Health\", \"hp\", floor(random() * 100))\n"
      "  if has(e, \"Position\") {\n"
      "    if random() < 0.3 {\n"
      "      set(e, \"Position\", \"value\",\n"
      "          vec3(random() * 100, 0, random() * 100))\n"
      "    }\n"
      "  }\n"
      "  if random() < 0.01 { destroy(e) }\n"
      "}\n");
  ASSERT_TRUE(load.ok()) << load.ToString();

  for (int tick = 1; tick <= 100; ++tick) {
    h.world().AdvanceTick();
    auto stats = host.RunTickOver("tick", "Health");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->script_errors, 0u) << stats->first_error.ToString();
    // Top up what the storm destroyed (host-side spawns, tracked).
    h.Spawn(rng);
    if (tick % 5 == 0) {
      h.catalog().Maintain();  // quiescent point for the comparison
      h.CheckAll("host tick " + std::to_string(tick));
      if (HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, HostDifferentialTest,
                         ::testing::Values(size_t{1}, size_t{4}),
                         [](const auto& info) {
                           return "threads_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gamedb::views
