#include "persist/player_store.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"

namespace gamedb::persist {
namespace {

PlayerRecord MakeRecord(int64_t id, int32_t level, int64_t gold) {
  PlayerRecord rec;
  rec.id = id;
  rec.name = "player_" + std::to_string(id);
  rec.level = level;
  rec.gold = gold;
  rec.position = {float(id), 0, float(id) * 2};
  rec.items = {int32_t(id % 7), int32_t(id % 13)};
  rec.guild_id = int32_t(id % 5);
  rec.rating = 1500.0 + double(id % 100);
  return rec;
}

TEST(PlayerRecordTest, EncodeDecodeLatest) {
  PlayerRecord rec = MakeRecord(42, 30, 999);
  std::string buf;
  EncodePlayerRecord(rec, kPlayerSchemaLatest, &buf);
  PlayerRecord out;
  uint32_t version = 0;
  ASSERT_TRUE(DecodePlayerRecord(buf, &out, &version).ok());
  EXPECT_EQ(version, kPlayerSchemaLatest);
  EXPECT_EQ(out, rec);
}

TEST(PlayerRecordTest, OldVersionsUpgradeViaMigrationSteps) {
  PlayerRecord rec = MakeRecord(7, 20, 100);
  std::string v1;
  EncodePlayerRecord(rec, 1, &v1);
  PlayerRecord out;
  uint32_t version = 0;
  ASSERT_TRUE(DecodePlayerRecord(v1, &out, &version).ok());
  EXPECT_EQ(version, 1u);
  // v1 fields survive; v2/v3 fields come from the migration defaults.
  EXPECT_EQ(out.name, rec.name);
  EXPECT_EQ(out.gold, rec.gold);
  EXPECT_EQ(out.guild_id, -1);                       // v1->v2 default
  EXPECT_DOUBLE_EQ(out.rating, 1000.0 + 25.0 * 20);  // v2->v3 seeded by level

  std::string v2;
  EncodePlayerRecord(rec, 2, &v2);
  ASSERT_TRUE(DecodePlayerRecord(v2, &out, &version).ok());
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(out.guild_id, rec.guild_id);  // v2 kept its own guild
}

TEST(PlayerRecordTest, CorruptionAndUnknownVersionRejected) {
  PlayerRecord out;
  EXPECT_FALSE(DecodePlayerRecord("", &out).ok());
  std::string buf;
  EncodePlayerRecord(MakeRecord(1, 1, 1), 3, &buf);
  EXPECT_FALSE(
      DecodePlayerRecord(std::string_view(buf).substr(0, 4), &out).ok());
  std::string bad = buf;
  bad[0] = 9;  // version 9 does not exist
  EXPECT_TRUE(DecodePlayerRecord(bad, &out).IsSchemaMismatch());
}

enum class StoreKind { kStructured, kBlob, kHybrid };

std::unique_ptr<PlayerStore> MakeStore(StoreKind kind) {
  switch (kind) {
    case StoreKind::kStructured:
      return std::make_unique<StructuredPlayerStore>();
    case StoreKind::kBlob:
      return std::make_unique<BlobPlayerStore>();
    case StoreKind::kHybrid:
      return std::make_unique<HybridPlayerStore>();
  }
  return nullptr;
}

class PlayerStoreParamTest : public ::testing::TestWithParam<StoreKind> {};

TEST_P(PlayerStoreParamTest, PutGetEraseLifecycle) {
  auto store = MakeStore(GetParam());
  PlayerRecord rec = MakeRecord(1, 10, 500);
  ASSERT_TRUE(store->Put(rec).ok());
  EXPECT_EQ(store->Size(), 1u);
  auto got = store->Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, rec);

  EXPECT_TRUE(store->Get(2).status().IsNotFound());
  EXPECT_TRUE(store->Erase(1));
  EXPECT_FALSE(store->Erase(1));
  EXPECT_EQ(store->Size(), 0u);
}

TEST_P(PlayerStoreParamTest, PutOverwrites) {
  auto store = MakeStore(GetParam());
  ASSERT_TRUE(store->Put(MakeRecord(1, 10, 500)).ok());
  PlayerRecord updated = MakeRecord(1, 11, 600);
  ASSERT_TRUE(store->Put(updated).ok());
  EXPECT_EQ(store->Size(), 1u);
  EXPECT_EQ(*store->Get(1), updated);
}

TEST_P(PlayerStoreParamTest, QueriesAgreeAcrossLayouts) {
  auto store = MakeStore(GetParam());
  Rng rng(9);
  double expected_sum = 0;
  for (int64_t id = 0; id < 200; ++id) {
    auto level = static_cast<int32_t>(rng.NextInt(1, 60));
    auto gold = rng.NextInt(0, 10000);
    ASSERT_TRUE(store->Put(MakeRecord(id, level, gold)).ok());
    if (level >= 30) expected_sum += static_cast<double>(gold);
  }
  EXPECT_DOUBLE_EQ(store->SumGoldWhereLevelAtLeast(30), expected_sum);

  auto top = store->TopKByGold(10);
  ASSERT_EQ(top.size(), 10u);
  // Verify descending gold.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(store->Get(top[i - 1])->gold, store->Get(top[i])->gold);
  }
}

TEST_P(PlayerStoreParamTest, MigrateAllIsIdempotent) {
  auto store = MakeStore(GetParam());
  for (int64_t id = 0; id < 20; ++id) {
    ASSERT_TRUE(store->Put(MakeRecord(id, 5, 10)).ok());
  }
  auto first = store->MigrateAll();
  ASSERT_TRUE(first.ok());
  auto second = store->MigrateAll();
  ASSERT_TRUE(second.ok());
  if (GetParam() != StoreKind::kStructured) {
    EXPECT_EQ(*second, 0u);  // nothing left to touch
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, PlayerStoreParamTest,
                         ::testing::Values(StoreKind::kStructured,
                                           StoreKind::kBlob,
                                           StoreKind::kHybrid),
                         [](const auto& info) {
                           switch (info.param) {
                             case StoreKind::kStructured:
                               return "Structured";
                             case StoreKind::kBlob:
                               return "Blob";
                             case StoreKind::kHybrid:
                               return "Hybrid";
                           }
                           return "?";
                         });

TEST(BlobStoreLazyMigrationTest, ReadsUpgradeStaleRows) {
  BlobPlayerStore store(/*write_version=*/1);  // an old binary writing v1
  for (int64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(store.Put(MakeRecord(id, 10, 100)).ok());
  }
  EXPECT_EQ(store.stale_rows(), 10u);

  // Touch three rows: they upgrade in place.
  for (int64_t id = 0; id < 3; ++id) {
    auto rec = store.Get(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->guild_id, -1);  // migration default applied
  }
  EXPECT_EQ(store.stale_rows(), 7u);

  // Background sweep finishes the rest.
  auto touched = store.MigrateAll();
  ASSERT_TRUE(touched.ok());
  EXPECT_EQ(*touched, 7u);
  EXPECT_EQ(store.stale_rows(), 0u);
}

TEST(BlobStoreLazyMigrationTest, SecondReadIsAlreadyUpgraded) {
  BlobPlayerStore store(/*write_version=*/2);
  ASSERT_TRUE(store.Put(MakeRecord(5, 40, 100)).ok());
  ASSERT_TRUE(store.Get(5).ok());
  EXPECT_EQ(store.stale_rows(), 0u);
  auto rec = store.Get(5);
  ASSERT_TRUE(rec.ok());
  EXPECT_DOUBLE_EQ(rec->rating, 1000.0 + 25.0 * 40);  // stable after upgrade
}

TEST(StoreFootprintTest, LayoutsReportPlausibleBytes) {
  StructuredPlayerStore structured;
  BlobPlayerStore blob;
  HybridPlayerStore hybrid;
  for (int64_t id = 0; id < 100; ++id) {
    PlayerRecord rec = MakeRecord(id, 10, 100);
    ASSERT_TRUE(structured.Put(rec).ok());
    ASSERT_TRUE(blob.Put(rec).ok());
    ASSERT_TRUE(hybrid.Put(rec).ok());
  }
  EXPECT_GT(structured.ApproxBytes(), 0u);
  EXPECT_GT(blob.ApproxBytes(), 0u);
  // Hybrid duplicates hot fields, so it is the largest.
  EXPECT_GE(hybrid.ApproxBytes(), blob.ApproxBytes());
}

}  // namespace
}  // namespace gamedb::persist
