#include "persist/checkpoint.h"

#include <gtest/gtest.h>

#include "persist/fault_injection.h"

namespace gamedb::persist {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardComponents();
    e = world.Create();
    world.Set(e, Health{42, 100});
  }
  MemStorage storage;
  World world;
  EntityId e;
};

TEST_F(CheckpointTest, WriteLoadRoundTrip) {
  world.SetTick(10);
  CheckpointStore store(&storage);
  uint64_t bytes = 0;
  ASSERT_TRUE(store.WriteCheckpoint(world, &bytes).ok());
  EXPECT_GT(bytes, 0u);

  World restored;
  auto tick = store.LoadLatest(&restored);
  ASSERT_TRUE(tick.ok());
  EXPECT_EQ(*tick, 10u);
  ASSERT_TRUE(restored.Alive(e));
  EXPECT_FLOAT_EQ(restored.Get<Health>(e)->hp, 42);
}

TEST_F(CheckpointTest, LoadsNewestFirst) {
  CheckpointStore store(&storage, /*keep=*/5);
  world.SetTick(1);
  ASSERT_TRUE(store.WriteCheckpoint(world).ok());
  world.Patch<Health>(e, [](Health& h) { h.hp = 10; });
  world.SetTick(2);
  ASSERT_TRUE(store.WriteCheckpoint(world).ok());

  World restored;
  auto tick = store.LoadLatest(&restored);
  ASSERT_TRUE(tick.ok());
  EXPECT_EQ(*tick, 2u);
  EXPECT_FLOAT_EQ(restored.Get<Health>(e)->hp, 10);
}

TEST_F(CheckpointTest, CorruptNewestFallsBackToOlder) {
  CheckpointStore store(&storage, /*keep=*/5);
  world.SetTick(1);
  ASSERT_TRUE(store.WriteCheckpoint(world).ok());
  world.SetTick(2);
  ASSERT_TRUE(store.WriteCheckpoint(world).ok());
  // Corrupt the tick-2 image.
  auto names = storage.List();
  FaultInjectingStorage(&storage).FlipByte(names.back(), 20);

  World restored;
  auto tick = store.LoadLatest(&restored);
  ASSERT_TRUE(tick.ok());
  EXPECT_EQ(*tick, 1u);  // fell back
}

TEST_F(CheckpointTest, NoCheckpointsIsNotFound) {
  CheckpointStore store(&storage);
  World restored;
  EXPECT_TRUE(store.LoadLatest(&restored).status().IsNotFound());
}

TEST_F(CheckpointTest, GarbageCollectionKeepsNewest) {
  CheckpointStore store(&storage, /*keep=*/2);
  for (uint64_t t = 1; t <= 5; ++t) {
    world.SetTick(t);
    ASSERT_TRUE(store.WriteCheckpoint(world).ok());
  }
  auto ticks = store.CheckpointTicks();
  EXPECT_EQ(ticks, (std::vector<uint64_t>{4, 5}));
}

TEST_F(CheckpointTest, WriteLeavesNoTmpBehind) {
  world.SetTick(3);
  CheckpointStore store(&storage);
  ASSERT_TRUE(store.WriteCheckpoint(world).ok());
  for (const std::string& name : storage.List()) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

TEST_F(CheckpointTest, CrashMidTmpWriteKeepsOlderCheckpoint) {
  FaultInjectingStorage faults(&storage);
  CheckpointStore store(&faults, /*keep=*/5);
  world.SetTick(1);
  ASSERT_TRUE(store.WriteCheckpoint(world).ok());
  world.Patch<Health>(e, [](Health& h) { h.hp = 10; });
  world.SetTick(2);
  // Crash during the tick-2 tmp write: nothing of it may become visible.
  faults.FailAfter(0);
  EXPECT_FALSE(store.WriteCheckpoint(world).ok());
  faults.ClearFailure();

  World restored;
  auto tick = store.LoadLatest(&restored);
  ASSERT_TRUE(tick.ok());
  EXPECT_EQ(*tick, 1u);
  EXPECT_FLOAT_EQ(restored.Get<Health>(e)->hp, 42);
}

TEST_F(CheckpointTest, CrashBeforeRenameKeepsOlderCheckpointAndGcReapsTmp) {
  FaultInjectingStorage faults(&storage);
  CheckpointStore store(&faults, /*keep=*/5);
  world.SetTick(1);
  ASSERT_TRUE(store.WriteCheckpoint(world).ok());
  world.SetTick(2);
  // tmp write and its sync land, the rename does not: the orphaned .tmp
  // must be invisible to CheckpointTicks/LoadLatest.
  faults.FailAfter(2);
  EXPECT_FALSE(store.WriteCheckpoint(world).ok());
  faults.ClearFailure();

  EXPECT_TRUE(storage.Exists("ckpt-00000000000000000002.tmp"));
  EXPECT_EQ(store.CheckpointTicks(), (std::vector<uint64_t>{1}));
  World restored;
  auto tick = store.LoadLatest(&restored);
  ASSERT_TRUE(tick.ok());
  EXPECT_EQ(*tick, 1u);

  // The next successful checkpoint garbage-collects the orphan.
  world.SetTick(3);
  ASSERT_TRUE(store.WriteCheckpoint(world).ok());
  EXPECT_FALSE(storage.Exists("ckpt-00000000000000000002.tmp"));
  EXPECT_EQ(store.CheckpointTicks(), (std::vector<uint64_t>{1, 3}));
}

// Regression: CheckpointTicks parsed the 20-digit tick with a signed
// ParseInt64, silently dropping any checkpoint with tick > INT64_MAX.
TEST_F(CheckpointTest, TickBeyondInt64Survives) {
  const uint64_t huge = (1ull << 63) + 12345;  // > INT64_MAX
  world.SetTick(huge);
  CheckpointStore store(&storage);
  ASSERT_TRUE(store.WriteCheckpoint(world).ok());
  EXPECT_EQ(store.CheckpointTicks(), (std::vector<uint64_t>{huge}));

  World restored;
  auto tick = store.LoadLatest(&restored);
  ASSERT_TRUE(tick.ok());
  EXPECT_EQ(*tick, huge);
}

TEST(PolicyTest, PeriodicFiresOnInterval) {
  PeriodicPolicy p(10);
  TickObservation obs;
  obs.ticks_since_checkpoint = 9;
  EXPECT_FALSE(p.ShouldCheckpoint(obs));
  obs.ticks_since_checkpoint = 10;
  EXPECT_TRUE(p.ShouldCheckpoint(obs));
}

TEST(PolicyTest, ImportanceFiresOnAccumulationOrUrgentEvent) {
  ImportancePolicy p(/*accumulate=*/100.0, /*urgent=*/40.0);
  TickObservation obs;
  obs.pending_importance = 50;
  obs.max_pending_event = 5;
  EXPECT_FALSE(p.ShouldCheckpoint(obs));
  obs.pending_importance = 120;
  EXPECT_TRUE(p.ShouldCheckpoint(obs));
  obs.pending_importance = 45;
  obs.max_pending_event = 45;  // epic loot: checkpoint NOW
  EXPECT_TRUE(p.ShouldCheckpoint(obs));
}

TEST(PolicyTest, HybridIsUnionOfTriggers) {
  HybridPolicy p(/*max_interval=*/100, /*accumulate=*/50.0, /*urgent=*/30.0);
  TickObservation obs;
  EXPECT_FALSE(p.ShouldCheckpoint(obs));
  obs.ticks_since_checkpoint = 100;
  EXPECT_TRUE(p.ShouldCheckpoint(obs));
  obs.ticks_since_checkpoint = 1;
  obs.pending_importance = 60;
  EXPECT_TRUE(p.ShouldCheckpoint(obs));
}

}  // namespace
}  // namespace gamedb::persist
