#include "persist/manager.h"

#include <gtest/gtest.h>

#include "persist/fault_injection.h"

namespace gamedb::persist {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardComponents();
    for (int i = 0; i < 5; ++i) {
      EntityId e = world.Create();
      ids.push_back(e);
      world.Set(e, Health{100, 100});
      world.Set(e, Actor{i, 100, 1, true});
      world.Set(e, Position{{float(i), 0, 0}});
    }
  }

  txn::GameTxn Attack(EntityId a, EntityId b, float amount) {
    txn::GameTxn t;
    t.type = txn::TxnType::kAttack;
    t.a = a;
    t.b = b;
    t.amount = amount;
    return t;
  }

  MemStorage storage;
  World world;
  std::vector<EntityId> ids;
};

TEST_F(ManagerTest, CheckpointOnlyLosesPostCheckpointWork) {
  PersistenceManager mgr(&storage, std::make_unique<PeriodicPolicy>(10));
  // Tick 1..10: one attack per tick; checkpoint fires at tick 10.
  for (int tick = 1; tick <= 10; ++tick) {
    world.AdvanceTick();
    txn::GameTxn t = Attack(ids[0], ids[1], 1);
    txn::ApplyTxn(&world, t);
    ASSERT_TRUE(mgr.OnTxn(t, world.tick()).ok());
    auto ckpt = mgr.OnTickEnd(world);
    ASSERT_TRUE(ckpt.ok());
    EXPECT_EQ(*ckpt, tick == 10);
  }
  // 5 more attacks after the checkpoint, then crash.
  for (int tick = 11; tick <= 15; ++tick) {
    world.AdvanceTick();
    txn::GameTxn t = Attack(ids[0], ids[1], 1);
    txn::ApplyTxn(&world, t);
    ASSERT_TRUE(mgr.OnTxn(t, world.tick()).ok());
    ASSERT_TRUE(mgr.OnTickEnd(world).ok());
  }
  EXPECT_FLOAT_EQ(world.Get<Health>(ids[1])->hp, 85);

  World recovered;
  auto outcome = PersistenceManager::Recover(storage, &recovered);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->checkpoint_tick, 10u);
  EXPECT_EQ(outcome->replayed_txns, 0u);  // no WAL in this mode
  // Ticks 11-15 are lost: hp is back at the checkpoint value.
  EXPECT_FLOAT_EQ(recovered.Get<Health>(ids[1])->hp, 90);
}

TEST_F(ManagerTest, WalModeRecoversEverything) {
  PersistenceOptions opts;
  opts.mode = DurabilityMode::kWalAndCheckpoint;
  PersistenceManager mgr(&storage, std::make_unique<PeriodicPolicy>(10),
                         opts);
  for (int tick = 1; tick <= 15; ++tick) {
    world.AdvanceTick();
    txn::GameTxn t = Attack(ids[0], ids[1], 1);
    txn::ApplyTxn(&world, t);
    ASSERT_TRUE(mgr.OnTxn(t, world.tick()).ok());
    ASSERT_TRUE(mgr.OnTickEnd(world).ok());
  }
  World recovered;
  auto outcome = PersistenceManager::Recover(storage, &recovered);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->checkpoint_tick, 10u);
  EXPECT_EQ(outcome->replayed_txns, 5u);
  EXPECT_EQ(outcome->recovered_tick, 15u);
  EXPECT_FLOAT_EQ(recovered.Get<Health>(ids[1])->hp, 85);  // nothing lost
}

TEST_F(ManagerTest, WalTornTailDropsOnlyTail) {
  PersistenceOptions opts;
  opts.mode = DurabilityMode::kWalAndCheckpoint;
  PersistenceManager mgr(&storage, std::make_unique<PeriodicPolicy>(1000),
                         opts);
  ASSERT_TRUE(mgr.ForceCheckpoint(world).ok());
  for (int tick = 1; tick <= 5; ++tick) {
    world.AdvanceTick();
    txn::GameTxn t = Attack(ids[0], ids[1], 1);
    txn::ApplyTxn(&world, t);
    ASSERT_TRUE(mgr.OnTxn(t, world.tick()).ok());
  }
  FaultInjectingStorage(&storage)
      .CorruptTail("wal", 5);  // crash mid-append of the last record

  World recovered;
  auto outcome = PersistenceManager::Recover(storage, &recovered);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->wal_torn_tail);
  EXPECT_EQ(outcome->replayed_txns, 4u);
  EXPECT_FLOAT_EQ(recovered.Get<Health>(ids[1])->hp, 96);
}

TEST_F(ManagerTest, IntelligentPolicyCheckpointsOnBossKill) {
  PersistenceManager mgr(
      &storage,
      std::make_unique<ImportancePolicy>(/*accumulate=*/100.0,
                                         /*urgent=*/10.0));
  world.AdvanceTick();
  ASSERT_TRUE(mgr.OnEvent(world.tick(), 0.5, "trash_kill").ok());
  auto r1 = mgr.OnTickEnd(world);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(*r1);  // not worth a checkpoint
  EXPECT_DOUBLE_EQ(mgr.pending_importance(), 0.5);

  world.AdvanceTick();
  ASSERT_TRUE(mgr.OnEvent(world.tick(), 50.0, "boss_kill").ok());
  auto r2 = mgr.OnTickEnd(world);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);  // urgent event -> immediate checkpoint
  EXPECT_DOUBLE_EQ(mgr.pending_importance(), 0.0);
  EXPECT_EQ(mgr.metrics().checkpoints, 1u);
}

// Regression: AfterCheckpoint only reset the WAL in kWalAndCheckpoint, so
// a WAL left behind by an earlier kWalAndCheckpoint incarnation was
// replayed over the checkpoints of a later kCheckpointOnly run.
TEST_F(ManagerTest, CheckpointOnlyRunRemovesStaleWal) {
  {
    PersistenceOptions opts;
    opts.mode = DurabilityMode::kWalAndCheckpoint;
    PersistenceManager old_run(&storage, std::make_unique<PeriodicPolicy>(1000),
                               opts);
    for (int tick = 1; tick <= 20; ++tick) {
      world.AdvanceTick();
      txn::GameTxn t = Attack(ids[0], ids[1], 1);
      txn::ApplyTxn(&world, t);
      ASSERT_TRUE(old_run.OnTxn(t, world.tick()).ok());
    }
  }
  ASSERT_TRUE(storage.Exists("wal"));  // stale: ticks 1..20, no checkpoint

  // The server is wiped and restarts fresh in kCheckpointOnly mode on the
  // same storage.
  World fresh;
  EntityId hero = fresh.Create();
  fresh.Set(hero, Health{100, 100});
  PersistenceManager mgr(&storage, std::make_unique<PeriodicPolicy>(5));
  for (int tick = 1; tick <= 5; ++tick) {
    fresh.AdvanceTick();
    ASSERT_TRUE(mgr.OnTickEnd(fresh).ok());
  }
  EXPECT_FALSE(storage.Exists("wal"));  // checkpoint superseded it

  World recovered;
  auto outcome = PersistenceManager::Recover(storage, &recovered);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->checkpoint_tick, 5u);
  EXPECT_EQ(outcome->replayed_txns, 0u);  // stale records must NOT replay
  EXPECT_EQ(outcome->recovered_tick, 5u);
}

TEST_F(ManagerTest, WalGroupCommitOptionReachesTheLog) {
  PersistenceOptions opts;
  opts.mode = DurabilityMode::kWalAndCheckpoint;
  opts.wal.sync_every_n = 4;
  PersistenceManager mgr(&storage, std::make_unique<PeriodicPolicy>(1000),
                         opts);
  for (int tick = 1; tick <= 8; ++tick) {
    world.AdvanceTick();
    txn::GameTxn t = Attack(ids[0], ids[1], 1);
    ASSERT_TRUE(mgr.OnTxn(t, world.tick()).ok());
    ASSERT_TRUE(mgr.OnTickEnd(world).ok());
  }
  EXPECT_EQ(storage.syncs(), 2u);  // 8 appends / group of 4
}

TEST_F(ManagerTest, RecoverWithNoDataFails) {
  World recovered;
  EXPECT_TRUE(
      PersistenceManager::Recover(storage, &recovered).status().IsNotFound());
}

TEST_F(ManagerTest, MetricsAccumulate) {
  PersistenceOptions opts;
  opts.mode = DurabilityMode::kWalAndCheckpoint;
  PersistenceManager mgr(&storage, std::make_unique<PeriodicPolicy>(2), opts);
  for (int tick = 1; tick <= 4; ++tick) {
    world.AdvanceTick();
    txn::GameTxn t = Attack(ids[0], ids[1], 1);
    ASSERT_TRUE(mgr.OnTxn(t, world.tick()).ok());
    ASSERT_TRUE(mgr.OnTickEnd(world).ok());
  }
  EXPECT_EQ(mgr.metrics().checkpoints, 2u);
  EXPECT_GT(mgr.metrics().checkpoint_bytes, 0u);
  EXPECT_EQ(mgr.metrics().wal_records, 4u);
  EXPECT_GT(mgr.metrics().wal_bytes, 0u);
}

}  // namespace
}  // namespace gamedb::persist
