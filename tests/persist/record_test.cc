#include "persist/record.h"

#include <gtest/gtest.h>

namespace gamedb::persist {
namespace {

TEST(LogRecordTest, TxnRoundTrip) {
  LogRecord rec;
  rec.type = LogRecordType::kTxn;
  rec.tick = 12345;
  rec.txn.type = txn::TxnType::kAoe;
  rec.txn.a = EntityId(7, 1);
  rec.txn.b = EntityId(9, 2);
  rec.txn.amount = 12.5f;
  rec.txn.dest = {1, 2, 3};
  rec.txn.extra = {EntityId(1, 0), EntityId(2, 0), EntityId(3, 0)};

  std::string buf;
  EncodeLogRecord(rec, &buf);
  LogRecord out;
  ASSERT_TRUE(DecodeLogRecord(buf, &out).ok());
  EXPECT_EQ(out.type, LogRecordType::kTxn);
  EXPECT_EQ(out.tick, 12345u);
  EXPECT_EQ(out.txn.type, txn::TxnType::kAoe);
  EXPECT_EQ(out.txn.a, rec.txn.a);
  EXPECT_EQ(out.txn.b, rec.txn.b);
  EXPECT_FLOAT_EQ(out.txn.amount, 12.5f);
  EXPECT_EQ(out.txn.dest, Vec3(1, 2, 3));
  EXPECT_EQ(out.txn.extra, rec.txn.extra);
}

TEST(LogRecordTest, EventRoundTrip) {
  LogRecord rec;
  rec.type = LogRecordType::kEvent;
  rec.tick = 99;
  rec.importance = 50.0;
  rec.label = "epic_loot:sword_of_a_thousand_truths";
  std::string buf;
  EncodeLogRecord(rec, &buf);
  LogRecord out;
  ASSERT_TRUE(DecodeLogRecord(buf, &out).ok());
  EXPECT_EQ(out.type, LogRecordType::kEvent);
  EXPECT_DOUBLE_EQ(out.importance, 50.0);
  EXPECT_EQ(out.label, rec.label);
}

TEST(LogRecordTest, TickMarkRoundTrip) {
  LogRecord rec;
  rec.type = LogRecordType::kTickMark;
  rec.tick = 7;
  std::string buf;
  EncodeLogRecord(rec, &buf);
  LogRecord out;
  ASSERT_TRUE(DecodeLogRecord(buf, &out).ok());
  EXPECT_EQ(out.type, LogRecordType::kTickMark);
  EXPECT_EQ(out.tick, 7u);
}

TEST(LogRecordTest, CorruptionRejected) {
  LogRecord rec;
  rec.type = LogRecordType::kTxn;
  rec.txn.type = txn::TxnType::kAttack;
  std::string buf;
  EncodeLogRecord(rec, &buf);

  LogRecord out;
  EXPECT_FALSE(DecodeLogRecord("", &out).ok());
  EXPECT_FALSE(
      DecodeLogRecord(std::string_view(buf).substr(0, buf.size() / 2), &out)
          .ok());
  std::string bad_type = buf;
  bad_type[0] = 0x7F;
  EXPECT_FALSE(DecodeLogRecord(bad_type, &out).ok());
  std::string trailing = buf + "junk";
  EXPECT_FALSE(DecodeLogRecord(trailing, &out).ok());
}

}  // namespace
}  // namespace gamedb::persist
