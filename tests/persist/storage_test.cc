#include "persist/storage.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "persist/fault_injection.h"

namespace gamedb::persist {
namespace {

// Every Storage contract assertion runs against both backends: MemStorage
// and a tmpdir-backed DiskStorage.
template <typename T>
class StorageTypedTest : public ::testing::Test {
 protected:
  Storage* storage() {
    if constexpr (std::is_same_v<T, MemStorage>) {
      return &mem_;
    } else {
      if (!disk_) {
        dir_ = std::filesystem::temp_directory_path() /
               ("gamedb_storage_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        disk_ = std::make_unique<DiskStorage>(dir_.string());
      }
      return disk_.get();
    }
  }
  void TearDown() override {
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  MemStorage mem_;
  std::unique_ptr<DiskStorage> disk_;
  std::filesystem::path dir_;
};

using StorageKinds = ::testing::Types<MemStorage, DiskStorage>;
TYPED_TEST_SUITE(StorageTypedTest, StorageKinds);

TYPED_TEST(StorageTypedTest, WriteReadRoundTrip) {
  Storage* s = this->storage();
  ASSERT_TRUE(s->Write("a", "hello").ok());
  std::string out;
  ASSERT_TRUE(s->Read("a", &out).ok());
  EXPECT_EQ(out, "hello");
  EXPECT_TRUE(s->Exists("a"));
  EXPECT_FALSE(s->Exists("b"));
}

TYPED_TEST(StorageTypedTest, WriteTruncates) {
  Storage* s = this->storage();
  ASSERT_TRUE(s->Write("a", "long content").ok());
  ASSERT_TRUE(s->Write("a", "x").ok());
  std::string out;
  ASSERT_TRUE(s->Read("a", &out).ok());
  EXPECT_EQ(out, "x");
}

TYPED_TEST(StorageTypedTest, AppendGrows) {
  Storage* s = this->storage();
  ASSERT_TRUE(s->Append("log", "one").ok());
  ASSERT_TRUE(s->Append("log", "two").ok());
  std::string out;
  ASSERT_TRUE(s->Read("log", &out).ok());
  EXPECT_EQ(out, "onetwo");
}

TYPED_TEST(StorageTypedTest, ReadMissingIsNotFound) {
  std::string out;
  EXPECT_TRUE(this->storage()->Read("missing", &out).IsNotFound());
}

TYPED_TEST(StorageTypedTest, RemoveAndList) {
  Storage* s = this->storage();
  ASSERT_TRUE(s->Write("b", "2").ok());
  ASSERT_TRUE(s->Write("a", "1").ok());
  ASSERT_TRUE(s->Write("c", "3").ok());
  auto names = s->List();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_TRUE(s->Remove("b").ok());
  EXPECT_FALSE(s->Exists("b"));
  ASSERT_TRUE(s->Remove("b").ok());  // idempotent
  EXPECT_EQ(s->List().size(), 2u);
  EXPECT_EQ(s->TotalBytes(), 2u);
}

TYPED_TEST(StorageTypedTest, SyncCountsOnlySuccesses) {
  Storage* s = this->storage();
  EXPECT_EQ(s->syncs(), 0u);
  EXPECT_TRUE(s->Sync("missing").IsNotFound());
  EXPECT_EQ(s->syncs(), 0u);
  ASSERT_TRUE(s->Write("a", "payload").ok());
  ASSERT_TRUE(s->Sync("a").ok());
  ASSERT_TRUE(s->Sync("a").ok());
  EXPECT_EQ(s->syncs(), 2u);
}

TYPED_TEST(StorageTypedTest, RenameMovesAndOverwrites) {
  Storage* s = this->storage();
  ASSERT_TRUE(s->Write("from", "new").ok());
  ASSERT_TRUE(s->Write("to", "old").ok());
  ASSERT_TRUE(s->Rename("from", "to").ok());
  EXPECT_FALSE(s->Exists("from"));
  std::string out;
  ASSERT_TRUE(s->Read("to", &out).ok());
  EXPECT_EQ(out, "new");  // POSIX semantics: destination replaced
  EXPECT_TRUE(s->Rename("missing", "x").IsNotFound());
}

TYPED_TEST(StorageTypedTest, RenameToSelfIsNoOp) {
  Storage* s = this->storage();
  ASSERT_TRUE(s->Write("a", "keep").ok());
  ASSERT_TRUE(s->Rename("a", "a").ok());  // POSIX: self-rename is a no-op
  std::string out;
  ASSERT_TRUE(s->Read("a", &out).ok());
  EXPECT_EQ(out, "keep");
}

// Fault injection is a Storage decorator, so the same crash tests run
// against both backends too.
TYPED_TEST(StorageTypedTest, FaultInjectionCorruptsDurableData) {
  FaultInjectingStorage f(this->storage());
  ASSERT_TRUE(f.Write("f", "0123456789").ok());
  f.CorruptTail("f", 4);
  std::string out;
  ASSERT_TRUE(f.Read("f", &out).ok());
  EXPECT_EQ(out, "012345");
  f.FlipByte("f", 0);
  ASSERT_TRUE(f.Read("f", &out).ok());
  EXPECT_EQ(out.size(), 6u);
  EXPECT_NE(out[0], '0');
}

TYPED_TEST(StorageTypedTest, FaultInjectionCrashPointKillsMutations) {
  FaultInjectingStorage f(this->storage());
  ASSERT_TRUE(f.Write("a", "1").ok());
  f.FailAfter(2);  // two more ops succeed, then the "process dies"
  ASSERT_TRUE(f.Append("a", "2").ok());
  ASSERT_TRUE(f.Sync("a").ok());
  EXPECT_FALSE(f.crashed());
  EXPECT_TRUE(f.Write("a", "gone").IsIOError());
  EXPECT_TRUE(f.crashed());
  EXPECT_TRUE(f.Rename("a", "b").IsIOError());
  EXPECT_TRUE(f.Remove("a").IsIOError());
  EXPECT_EQ(f.ops(), 6u);
  // The durable image is exactly what landed before the crash, and reads
  // still work for post-mortem inspection.
  std::string out;
  ASSERT_TRUE(f.Read("a", &out).ok());
  EXPECT_EQ(out, "12");
  f.ClearFailure();
  EXPECT_TRUE(f.Write("a", "alive").ok());
}

TEST(MemStorageTest, CumulativeWriteAccounting) {
  MemStorage s;
  ASSERT_TRUE(s.Write("f", "0123456789").ok());
  ASSERT_TRUE(s.Append("f", "ab").ok());
  ASSERT_TRUE(s.Remove("f").ok());
  // Cumulative: Remove does not reduce bytes ever written.
  EXPECT_EQ(s.bytes_written(), 12u);
}

class DiskStorageDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gamedb_disk_dir_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    disk_ = std::make_unique<DiskStorage>(dir_.string());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::unique_ptr<DiskStorage> disk_;
};

TEST_F(DiskStorageDirTest, ListSkipsNonRegularEntries) {
  ASSERT_TRUE(disk_->Write("real", "data").ok());
  std::filesystem::create_directory(dir_ / "subdir");
  std::error_code ec;
  std::filesystem::create_symlink(dir_ / "no_such_target", dir_ / "dangling",
                                  ec);
  EXPECT_EQ(disk_->List(), (std::vector<std::string>{"real"}));
  EXPECT_EQ(disk_->TotalBytes(), 4u);
}

// Regression for the throwing is_regular_file()/file_size() overloads:
// files removed while List()/TotalBytes() iterate (checkpoint GC racing a
// reader) must be skipped, never thrown as std::filesystem_error.
TEST_F(DiskStorageDirTest, ListAndTotalBytesSurviveConcurrentRemoval) {
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::string name = "churn-" + std::to_string(i++ % 50);
      (void)disk_->Write(name, "xxxxxxxx");
      (void)disk_->Remove(name);
    }
  });
  for (int i = 0; i < 300; ++i) {
    EXPECT_NO_THROW({
      (void)disk_->List();
      (void)disk_->TotalBytes();
    });
  }
  stop.store(true);
  churn.join();
}

}  // namespace
}  // namespace gamedb::persist
