#include "persist/storage.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace gamedb::persist {
namespace {

template <typename T>
class StorageTypedTest : public ::testing::Test {
 protected:
  Storage* storage() {
    if constexpr (std::is_same_v<T, MemStorage>) {
      return &mem_;
    } else {
      if (!disk_) {
        dir_ = std::filesystem::temp_directory_path() /
               ("gamedb_storage_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        disk_ = std::make_unique<DiskStorage>(dir_.string());
      }
      return disk_.get();
    }
  }
  void TearDown() override {
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  MemStorage mem_;
  std::unique_ptr<DiskStorage> disk_;
  std::filesystem::path dir_;
};

using StorageKinds = ::testing::Types<MemStorage, DiskStorage>;
TYPED_TEST_SUITE(StorageTypedTest, StorageKinds);

TYPED_TEST(StorageTypedTest, WriteReadRoundTrip) {
  Storage* s = this->storage();
  ASSERT_TRUE(s->Write("a", "hello").ok());
  std::string out;
  ASSERT_TRUE(s->Read("a", &out).ok());
  EXPECT_EQ(out, "hello");
  EXPECT_TRUE(s->Exists("a"));
  EXPECT_FALSE(s->Exists("b"));
}

TYPED_TEST(StorageTypedTest, WriteTruncates) {
  Storage* s = this->storage();
  ASSERT_TRUE(s->Write("a", "long content").ok());
  ASSERT_TRUE(s->Write("a", "x").ok());
  std::string out;
  ASSERT_TRUE(s->Read("a", &out).ok());
  EXPECT_EQ(out, "x");
}

TYPED_TEST(StorageTypedTest, AppendGrows) {
  Storage* s = this->storage();
  ASSERT_TRUE(s->Append("log", "one").ok());
  ASSERT_TRUE(s->Append("log", "two").ok());
  std::string out;
  ASSERT_TRUE(s->Read("log", &out).ok());
  EXPECT_EQ(out, "onetwo");
}

TYPED_TEST(StorageTypedTest, ReadMissingIsNotFound) {
  std::string out;
  EXPECT_TRUE(this->storage()->Read("missing", &out).IsNotFound());
}

TYPED_TEST(StorageTypedTest, RemoveAndList) {
  Storage* s = this->storage();
  ASSERT_TRUE(s->Write("b", "2").ok());
  ASSERT_TRUE(s->Write("a", "1").ok());
  ASSERT_TRUE(s->Write("c", "3").ok());
  auto names = s->List();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_TRUE(s->Remove("b").ok());
  EXPECT_FALSE(s->Exists("b"));
  ASSERT_TRUE(s->Remove("b").ok());  // idempotent
  EXPECT_EQ(s->List().size(), 2u);
  EXPECT_EQ(s->TotalBytes(), 2u);
}

TEST(MemStorageTest, FaultInjection) {
  MemStorage s;
  ASSERT_TRUE(s.Write("f", "0123456789").ok());
  s.CorruptTail("f", 4);
  std::string out;
  ASSERT_TRUE(s.Read("f", &out).ok());
  EXPECT_EQ(out, "012345");
  s.FlipByte("f", 0);
  ASSERT_TRUE(s.Read("f", &out).ok());
  EXPECT_NE(out[0], '0');
  // Cumulative write accounting unaffected by corruption.
  EXPECT_EQ(s.bytes_written(), 10u);
}

}  // namespace
}  // namespace gamedb::persist
