#include "persist/wal.h"

#include <gtest/gtest.h>

#include "persist/fault_injection.h"

namespace gamedb::persist {
namespace {

TEST(WalTest, AppendAndReadBack) {
  MemStorage storage;
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append("first").ok());
  ASSERT_TRUE(writer.Append("second").ok());
  ASSERT_TRUE(writer.Append("").ok());  // empty records are legal
  EXPECT_EQ(writer.records_appended(), 3u);

  auto r = ReadWal(storage, "wal");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->torn_tail);
  ASSERT_EQ(r->records.size(), 3u);
  EXPECT_EQ(r->records[0], "first");
  EXPECT_EQ(r->records[1], "second");
  EXPECT_EQ(r->records[2], "");
}

TEST(WalTest, MissingLogIsEmpty) {
  MemStorage storage;
  auto r = ReadWal(storage, "nope");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->records.empty());
  EXPECT_FALSE(r->torn_tail);
}

TEST(WalTest, TornTailReturnsValidPrefix) {
  MemStorage storage;
  FaultInjectingStorage faults(&storage);
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append("keep-me-1").ok());
  ASSERT_TRUE(writer.Append("keep-me-2").ok());
  ASSERT_TRUE(writer.Append("torn-away").ok());
  faults.CorruptTail("wal", 3);  // rip bytes off the last record

  auto r = ReadWal(storage, "wal");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->torn_tail);
  ASSERT_EQ(r->records.size(), 2u);
  EXPECT_EQ(r->records[0], "keep-me-1");
  EXPECT_EQ(r->records[1], "keep-me-2");
}

TEST(WalTest, BitFlipDetectedByCrc) {
  MemStorage storage;
  FaultInjectingStorage faults(&storage);
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append("aaaa").ok());
  ASSERT_TRUE(writer.Append("bbbb").ok());
  // Flip a byte inside the *second* record's payload.
  std::string data;
  ASSERT_TRUE(storage.Read("wal", &data).ok());
  faults.FlipByte("wal", data.size() - 2);

  auto r = ReadWal(storage, "wal");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->torn_tail);
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0], "aaaa");
}

TEST(WalTest, ResetTruncates) {
  MemStorage storage;
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append("old").ok());
  ASSERT_TRUE(writer.Reset().ok());
  ASSERT_TRUE(writer.Append("new").ok());
  auto r = ReadWal(storage, "wal");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0], "new");
}

// Regression: Reset() used to leave bytes_appended_/records_appended_
// untouched, so per-epoch WAL metrics over-reported after every checkpoint.
TEST(WalTest, ResetZeroesEpochCounters) {
  MemStorage storage;
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append("record-one").ok());
  ASSERT_TRUE(writer.Append("record-two").ok());
  EXPECT_EQ(writer.records_appended(), 2u);
  EXPECT_GT(writer.bytes_appended(), 0u);
  ASSERT_TRUE(writer.Reset().ok());
  EXPECT_EQ(writer.records_appended(), 0u);
  EXPECT_EQ(writer.bytes_appended(), 0u);
  ASSERT_TRUE(writer.Append("next-epoch").ok());
  EXPECT_EQ(writer.records_appended(), 1u);
}

TEST(WalTest, SyncsPerAppendByDefault) {
  MemStorage storage;
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append("a").ok());
  ASSERT_TRUE(writer.Append("b").ok());
  ASSERT_TRUE(writer.Append("c").ok());
  EXPECT_EQ(storage.syncs(), 3u);
}

TEST(WalTest, GroupCommitBatchesSyncs) {
  MemStorage storage;
  WalOptions options;
  options.sync_every_n = 3;
  WalWriter writer(&storage, "wal", options);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(writer.Append("r").ok());
  }
  EXPECT_EQ(storage.syncs(), 2u);  // after records 3 and 6
  // Reset makes the truncation durable too and restarts the batch window.
  ASSERT_TRUE(writer.Reset().ok());
  EXPECT_EQ(storage.syncs(), 3u);
  ASSERT_TRUE(writer.Append("r").ok());
  ASSERT_TRUE(writer.Append("r").ok());
  EXPECT_EQ(storage.syncs(), 3u);  // batch of 3 not full yet
}

TEST(WalTest, SyncDisabledNeverSyncs) {
  MemStorage storage;
  WalOptions options;
  options.sync_every_n = 0;
  WalWriter writer(&storage, "wal", options);
  ASSERT_TRUE(writer.Append("a").ok());
  ASSERT_TRUE(writer.Reset().ok());
  EXPECT_EQ(storage.syncs(), 0u);
}

TEST(WalTest, AppendFailsPastInjectedCrashPoint) {
  MemStorage base;
  FaultInjectingStorage storage(&base);
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append("durable").ok());
  storage.FailAfter(0);
  EXPECT_FALSE(writer.Append("lost").ok());
  auto r = ReadWal(base, "wal");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0], "durable");
}

TEST(WalTest, LargeRecordsSurvive) {
  MemStorage storage;
  WalWriter writer(&storage, "wal");
  std::string big(1 << 16, 'x');
  ASSERT_TRUE(writer.Append(big).ok());
  auto r = ReadWal(storage, "wal");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0].size(), big.size());
}

}  // namespace
}  // namespace gamedb::persist
