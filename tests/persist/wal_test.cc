#include "persist/wal.h"

#include <gtest/gtest.h>

namespace gamedb::persist {
namespace {

TEST(WalTest, AppendAndReadBack) {
  MemStorage storage;
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append("first").ok());
  ASSERT_TRUE(writer.Append("second").ok());
  ASSERT_TRUE(writer.Append("").ok());  // empty records are legal
  EXPECT_EQ(writer.records_appended(), 3u);

  auto r = ReadWal(storage, "wal");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->torn_tail);
  ASSERT_EQ(r->records.size(), 3u);
  EXPECT_EQ(r->records[0], "first");
  EXPECT_EQ(r->records[1], "second");
  EXPECT_EQ(r->records[2], "");
}

TEST(WalTest, MissingLogIsEmpty) {
  MemStorage storage;
  auto r = ReadWal(storage, "nope");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->records.empty());
  EXPECT_FALSE(r->torn_tail);
}

TEST(WalTest, TornTailReturnsValidPrefix) {
  MemStorage storage;
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append("keep-me-1").ok());
  ASSERT_TRUE(writer.Append("keep-me-2").ok());
  ASSERT_TRUE(writer.Append("torn-away").ok());
  storage.CorruptTail("wal", 3);  // rip bytes off the last record

  auto r = ReadWal(storage, "wal");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->torn_tail);
  ASSERT_EQ(r->records.size(), 2u);
  EXPECT_EQ(r->records[0], "keep-me-1");
  EXPECT_EQ(r->records[1], "keep-me-2");
}

TEST(WalTest, BitFlipDetectedByCrc) {
  MemStorage storage;
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append("aaaa").ok());
  ASSERT_TRUE(writer.Append("bbbb").ok());
  // Flip a byte inside the *second* record's payload.
  std::string data;
  ASSERT_TRUE(storage.Read("wal", &data).ok());
  storage.FlipByte("wal", data.size() - 2);

  auto r = ReadWal(storage, "wal");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->torn_tail);
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0], "aaaa");
}

TEST(WalTest, ResetTruncates) {
  MemStorage storage;
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append("old").ok());
  ASSERT_TRUE(writer.Reset().ok());
  ASSERT_TRUE(writer.Append("new").ok());
  auto r = ReadWal(storage, "wal");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0], "new");
}

TEST(WalTest, LargeRecordsSurvive) {
  MemStorage storage;
  WalWriter writer(&storage, "wal");
  std::string big(1 << 16, 'x');
  ASSERT_TRUE(writer.Append(big).ok());
  auto r = ReadWal(storage, "wal");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0].size(), big.size());
}

}  // namespace
}  // namespace gamedb::persist
