#include "planner/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/serialize.h"
#include "core/world.h"
#include "script/host.h"

namespace gamedb::planner {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }

  /// Entities with Health (hp uniform in [0, 100)), Faction (4 teams) and,
  /// for even entities, Position uniform in [0, area)².
  std::vector<EntityId> Populate(World* w, size_t n, float area) {
    Rng rng(42);
    std::vector<EntityId> ids;
    for (size_t i = 0; i < n; ++i) {
      EntityId e = w->Create();
      ids.push_back(e);
      w->Set(e, Health{rng.NextFloat(0, 100), 100.0f});
      w->Set(e, Faction{int32_t(i % 4)});
      if (i % 2 == 0) {
        w->Set(e, Position{{rng.NextFloat(0, area), 0,
                            rng.NextFloat(0, area)}});
      }
    }
    return ids;
  }

  /// Collect() under the planner vs the built-in path must agree exactly,
  /// including order.
  void ExpectIdenticalCollect(World* w, QueryPlanner* planner,
                              const std::function<void(DynamicQuery&)>& shape,
                              const char* what) {
    DynamicQuery off(w);
    shape(off);
    auto off_r = off.Collect();
    DynamicQuery on(w);
    on.SetPlanner(planner);
    shape(on);
    auto on_r = on.Collect();
    ASSERT_EQ(off_r.ok(), on_r.ok()) << what;
    if (!off_r.ok()) return;
    EXPECT_EQ(*off_r, *on_r) << what << ": planned results differ";
  }

  World world;
};

TEST_F(PlannerTest, UnselectivePredicateStaysFullScan) {
  Populate(&world, 512, 100);
  QueryPlanner planner(&world);
  planner.Analyze();
  DynamicQuery q(&world);
  q.WhereField("Health", "hp", CmpOp::kLe, 1000.0);  // matches everything
  QueryPlan plan = planner.BuildPlan(q);
  EXPECT_EQ(plan.access, AccessPath::kFullScan);
  auto text = q.SetPlanner(&planner).Explain();
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("access: full_scan"), std::string::npos) << *text;
}

// Acceptance: a selective field predicate flips scan -> index as the table
// grows (the build cost stops mattering, the scan cost keeps growing).
TEST_F(PlannerTest, SelectiveFieldPredicateFlipsScanToIndexWithTableSize) {
  auto plan_for = [&](World* w) {
    QueryPlanner planner(w);
    planner.Analyze();
    DynamicQuery q(w);
    q.WhereField("Health", "hp", CmpOp::kLt, 1.0);  // ~1% selectivity
    return planner.BuildPlan(q).access;
  };
  {
    World small;
    Populate(&small, 32, 100);
    EXPECT_EQ(plan_for(&small), AccessPath::kFullScan);
  }
  {
    World big;
    Populate(&big, 8192, 1000);
    EXPECT_EQ(plan_for(&big), AccessPath::kFieldIndex);
  }
}

// Acceptance: the proximity plan flips from the linear filter to an indexed
// join as the world grows from sparse to dense.
TEST_F(PlannerTest, ProximityPlanFlipsToSpatialIndexAsWorldGrows) {
  World w;
  Populate(&w, 40, 1000);
  QueryPlanner planner(&w);
  planner.Analyze();
  auto shape = [](DynamicQuery& q) {
    q.WithinRadius("Position", "value", Vec3(500, 0, 500), 25.0f);
  };
  DynamicQuery sparse_q(&w);
  shape(sparse_q);
  EXPECT_EQ(planner.BuildPlan(sparse_q).access, AccessPath::kFullScan);

  // Grow the same world to 8192 entities (same area -> much denser).
  Populate(&w, 8152, 1000);
  planner.Analyze();
  DynamicQuery dense_q(&w);
  shape(dense_q);
  QueryPlan plan = planner.BuildPlan(dense_q);
  EXPECT_EQ(plan.access, AccessPath::kSpatialIndex);
  DynamicQuery explain_q(&w);
  explain_q.SetPlanner(&planner);
  shape(explain_q);
  auto text = explain_q.Explain();
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("access: spatial_index"), std::string::npos) << *text;
}

// Acceptance: the pair-join plan flips from nested loop to an indexed join
// as the world grows from sparse to dense.
TEST_F(PlannerTest, PairJoinPlanFlipsFromNestedLoopAsWorldGrows) {
  World w;
  Populate(&w, 64, 1000);
  QueryPlanner planner(&w);
  planner.Analyze();
  PairJoinPlan sparse =
      planner.PlanPairJoinFor("Position", "value", 32, 10.0f);
  EXPECT_EQ(sparse.algo, spatial::PairAlgo::kNestedLoop) << sparse.ToString();

  Populate(&w, 8128, 1000);
  planner.Analyze();
  PairJoinPlan dense =
      planner.PlanPairJoinFor("Position", "value", 4096, 10.0f);
  EXPECT_NE(dense.algo, spatial::PairAlgo::kNestedLoop) << dense.ToString();
  EXPECT_NE(dense.ToString().find("pair_join:"), std::string::npos);
}

TEST_F(PlannerTest, PlannedResultsBitIdenticalToUnplanned) {
  auto ids = Populate(&world, 4096, 300);
  // Kill some entities so alive-filtering is exercised.
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    world.Destroy(ids[rng.NextBounded(ids.size())]);
  }
  QueryPlanner planner(&world);
  planner.Analyze();

  ExpectIdenticalCollect(
      &world, &planner, [](DynamicQuery& q) { q.With("Health"); },
      "bare with");
  ExpectIdenticalCollect(
      &world, &planner,
      [](DynamicQuery& q) { q.With("Health").With("Position"); },
      "two-table join");
  ExpectIdenticalCollect(
      &world, &planner,
      [](DynamicQuery& q) {
        q.WhereField("Health", "hp", CmpOp::kLt, 2.0);
      },
      "selective predicate (index plan)");
  ExpectIdenticalCollect(
      &world, &planner,
      [](DynamicQuery& q) {
        q.WhereField("Health", "hp", CmpOp::kGe, 5.0);
      },
      "unselective predicate");
  ExpectIdenticalCollect(
      &world, &planner,
      [](DynamicQuery& q) {
        q.WhereField("Health", "hp", CmpOp::kEq, 50.0);
      },
      "equality predicate");
  ExpectIdenticalCollect(
      &world, &planner,
      [](DynamicQuery& q) {
        q.WithinRadius("Position", "value", Vec3(150, 0, 150), 40.0f);
      },
      "radius predicate (spatial plan)");
  ExpectIdenticalCollect(
      &world, &planner,
      [](DynamicQuery& q) {
        q.WhereField("Faction", "team", CmpOp::kEq, int64_t{2})
            .WhereField("Health", "hp", CmpOp::kLt, 30.0)
            .WithinRadius("Position", "value", Vec3(100, 0, 100), 80.0f);
      },
      "combined predicates");

  // Aggregates and arg-extremes (tie-breaks depend on scan order, so these
  // prove order preservation too).
  DynamicQuery a_off(&world), a_on(&world);
  a_on.SetPlanner(&planner);
  a_off.WhereField("Health", "hp", CmpOp::kLt, 30.0);
  a_on.WhereField("Health", "hp", CmpOp::kLt, 30.0);
  EXPECT_DOUBLE_EQ(*a_off.Sum("Health", "hp"), *a_on.Sum("Health", "hp"));
  DynamicQuery m_off(&world), m_on(&world);
  m_on.SetPlanner(&planner);
  m_off.WhereField("Faction", "team", CmpOp::kEq, int64_t{1});
  m_on.WhereField("Faction", "team", CmpOp::kEq, int64_t{1});
  EXPECT_EQ(*m_off.ArgMin("Health", "hp"), *m_on.ArgMin("Health", "hp"));
}

TEST_F(PlannerTest, ForcedPlansAllProduceIdenticalResults) {
  Populate(&world, 2048, 200);
  QueryPlanner planner(&world);
  planner.Analyze();

  auto shape = [](DynamicQuery& q) {
    q.WhereField("Health", "hp", CmpOp::kLt, 20.0)
        .WithinRadius("Position", "value", Vec3(100, 0, 100), 60.0f);
  };
  DynamicQuery reference(&world);
  shape(reference);
  auto expected = *reference.Collect();

  for (AccessPath access :
       {AccessPath::kFullScan, AccessPath::kFieldIndex,
        AccessPath::kSpatialIndex}) {
    DynamicQuery q(&world);
    shape(q);
    QueryPlan plan = planner.BuildPlan(q);
    plan.access = access;
    // Forcing an access path means re-deriving which predicates the path
    // serves vs which stay filters (what BuildPlan does for its choice).
    if (access == AccessPath::kFieldIndex) {
      plan.index_predicate = 0;
      plan.radius_predicate = -1;
      plan.predicate_order.clear();
    } else if (access == AccessPath::kSpatialIndex) {
      plan.index_predicate = -1;
      plan.radius_predicate = 0;
      plan.predicate_order.assign({0});
    } else {
      plan.index_predicate = -1;
      plan.radius_predicate = -1;
      plan.predicate_order.assign({0});
    }
    std::vector<EntityId> got;
    ASSERT_TRUE(planner
                    .ExecuteWithPlan(q, plan,
                                     [&](EntityId e) { got.push_back(e); })
                    .ok());
    EXPECT_EQ(got, expected) << "access path "
                             << AccessPathName(access);
  }

  // A malformed plan — an index access path with no served predicate (the
  // -1 sentinels) — must take the full-scan fallback, not read
  // predicates()[-1].
  for (AccessPath access :
       {AccessPath::kFieldIndex, AccessPath::kSpatialIndex}) {
    DynamicQuery q(&world);
    shape(q);
    QueryPlan bogus;
    bogus.access = access;
    std::vector<EntityId> got;
    ASSERT_TRUE(planner
                    .ExecuteWithPlan(q, bogus,
                                     [&](EntityId e) { got.push_back(e); })
                    .ok());
    EXPECT_EQ(got, expected) << "sentinel fallback for "
                             << AccessPathName(access);
  }
}

TEST_F(PlannerTest, PlanCacheHitsUntilStatsDrift) {
  Populate(&world, 1024, 100);
  QueryPlanner planner(&world);
  planner.Analyze();
  auto run = [&] {
    DynamicQuery q(&world);
    q.SetPlanner(&planner);
    q.WhereField("Health", "hp", CmpOp::kLt, 10.0);
    ASSERT_TRUE(q.Count().ok());
  };
  run();
  EXPECT_EQ(planner.plan_cache_misses(), 1u);
  EXPECT_EQ(planner.plan_cache_hits(), 0u);
  run();
  run();
  EXPECT_EQ(planner.plan_cache_misses(), 1u);
  EXPECT_EQ(planner.plan_cache_hits(), 2u);

  // Different rhs value = different shape = its own plan.
  DynamicQuery q2(&world);
  q2.SetPlanner(&planner);
  q2.WhereField("Health", "hp", CmpOp::kLt, 99.0);
  ASSERT_TRUE(q2.Count().ok());
  EXPECT_EQ(planner.plan_cache_misses(), 2u);

  // Grow the world past the drift threshold; the quiescent hook refreshes
  // stats, which invalidates every cached plan.
  Populate(&world, 1024, 100);
  planner.OnQuiescent();
  EXPECT_EQ(planner.stats_refreshes(), 2u);
  run();
  EXPECT_EQ(planner.plan_cache_misses(), 3u);
}

TEST_F(PlannerTest, FieldIndexIsReusedWhileTheTableIsUnchanged) {
  Populate(&world, 4096, 100);
  QueryPlanner planner(&world);
  planner.Analyze();
  for (int i = 0; i < 10; ++i) {
    DynamicQuery q(&world);
    q.SetPlanner(&planner);
    q.WhereField("Health", "hp", CmpOp::kLt, 1.0);
    ASSERT_TRUE(q.Count().ok());
  }
  EXPECT_EQ(planner.field_index_builds(), 1u);

  // A mutation invalidates the index; the next query rebuilds once.
  world.Patch<Health>(world.Table<Health>().EntityAt(0),
                      [](Health& h) { h.hp += 0.5f; });
  DynamicQuery q(&world);
  q.SetPlanner(&planner);
  q.WhereField("Health", "hp", CmpOp::kLt, 1.0);
  ASSERT_TRUE(q.Count().ok());
  EXPECT_EQ(planner.field_index_builds(), 2u);
}

TEST_F(PlannerTest, PolicyOffKeepsBuiltInPathButStillExplains) {
  Populate(&world, 2048, 100);
  PlannerOptions opts;
  opts.policy = PlannerPolicy::kOff;
  QueryPlanner planner(&world, opts);
  planner.Analyze();
  DynamicQuery q(&world);
  q.SetPlanner(&planner);
  q.WhereField("Health", "hp", CmpOp::kLt, 1.0);
  ASSERT_TRUE(q.Count().ok());
  // kOff: no plan was fetched for execution...
  EXPECT_EQ(planner.plan_cache_misses() + planner.plan_cache_hits(), 0u);
  // ...but EXPLAIN still shows what kOn would pick.
  auto text = q.Explain();
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("policy is kOff"), std::string::npos);
}

TEST_F(PlannerTest, EdgeCasesMatchUnplannedSemantics) {
  QueryPlanner planner(&world);
  planner.Analyze();

  // Empty world, table never created.
  DynamicQuery q(&world);
  q.SetPlanner(&planner);
  q.With("Health");
  EXPECT_EQ(*q.Count(), 0);

  // All rows filtered out.
  Populate(&world, 64, 100);
  planner.Analyze();
  DynamicQuery q2(&world);
  q2.SetPlanner(&planner);
  q2.WhereField("Health", "hp", CmpOp::kGt, 1e9);
  EXPECT_EQ(*q2.Count(), 0);
  DynamicQuery q3(&world);
  q3.SetPlanner(&planner);
  q3.WhereField("Health", "hp", CmpOp::kGt, 1e9);
  EXPECT_TRUE(q3.Min("Health", "hp").status().IsNotFound());
  DynamicQuery q4(&world);
  q4.SetPlanner(&planner);
  q4.WhereField("Health", "hp", CmpOp::kGt, 1e9);
  EXPECT_DOUBLE_EQ(*q4.Sum("Health", "hp"), 0.0);

  // Unknown names keep erroring identically.
  DynamicQuery q5(&world);
  q5.SetPlanner(&planner);
  q5.With("Bogus");
  EXPECT_TRUE(q5.Count().status().IsNotFound());
}

// The end-to-end determinism proof: a scripted world ticked with the
// planner enabled must be bit-identical to one ticked without it, at any
// thread count.
TEST_F(PlannerTest, ScriptHostWithPlannerIsBitIdenticalToWithout) {
  constexpr char kScript[] = R"(
fn tick(e) {
  let pos = get(e, "Position", "value")
  let nearby = within(pos, 12)
  emit("crowd", e, len(nearby))
  let weak = where("Health", "hp", "<", 15)
  emit("panic", e, len(weak))
}
)";
  auto run = [&](bool use_planner, size_t threads) {
    World w;
    Rng rng(123);
    for (int i = 0; i < 600; ++i) {
      EntityId e = w.Create();
      w.Set(e, Position{{rng.NextFloat(0, 120), 0, rng.NextFloat(0, 120)}});
      w.Set(e, Health{rng.NextFloat(0, 100), 100.0f});
    }
    QueryPlanner planner(&w);
    script::ScriptHostOptions opts;
    opts.num_threads = threads;
    if (use_planner) opts.planner = &planner;
    script::ScriptHost host(&w, opts);
    host.OnChannel("crowd", [&w](EntityId e, double v) {
      w.Patch<Health>(e, [&](Health& h) {
        h.hp = std::max(0.0f, h.hp - float(v) * 0.1f);
      });
    });
    host.OnChannel("panic", [&w](EntityId e, double v) {
      w.Patch<Health>(e, [&](Health& h) {
        h.hp = std::min(h.max_hp, h.hp + float(v) * 0.05f);
      });
    });
    EXPECT_TRUE(host.Load(kScript).ok());
    for (int t = 0; t < 5; ++t) {
      w.AdvanceTick();
      auto stats = host.RunTickOver("tick", "Health");
      EXPECT_TRUE(stats.ok());
      EXPECT_EQ(stats->script_errors, 0u) << stats->first_error.ToString();
    }
    std::string snap;
    EncodeWorldSnapshot(w, &snap);
    return snap;
  };

  std::string off1 = run(false, 1);
  std::string on1 = run(true, 1);
  std::string on4 = run(true, 4);
  EXPECT_EQ(off1, on1) << "planner changed scripted results";
  EXPECT_EQ(on1, on4) << "planner broke thread-count determinism";
}

}  // namespace
}  // namespace gamedb::planner
