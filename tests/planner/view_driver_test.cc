// The View<Ts...> driver-choice satellite: live-row statistics pick the
// join driver instead of the raw smallest-table heuristic. The regression
// scenario: a table written through the raw SparseSet API can carry rows
// for entities that have since died (a system applying a buffered batch
// with stale ids). Those rows are skipped by View's alive check but still
// cost scan time — and they never probe. A raw-smallest table full of live
// rows then pays more probes than a slightly larger mostly-dead table pays
// scan visits, so smallest-by-Size() is the wrong driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/query.h"
#include "core/world.h"
#include "planner/planner.h"

namespace gamedb::planner {
namespace {

class ViewDriverTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }

  /// 50 live entities carrying Health + Faction; then 1150 Health rows for
  /// destroyed entities, written via the raw table API with stale ids.
  /// Result: Health raw=1200/live=50, Faction raw=1000/live=1000 (950
  /// extra live Faction-only entities pad it).
  void PopulateSkewed() {
    for (int i = 0; i < 50; ++i) {
      EntityId e = world.Create();
      world.Set(e, Health{float(i), 100.0f});
      world.Set(e, Faction{i % 4});
      joined.push_back(e);
    }
    for (int i = 0; i < 950; ++i) {
      EntityId e = world.Create();
      world.Set(e, Faction{i % 4});
    }
    std::vector<EntityId> stale;
    for (int i = 0; i < 1150; ++i) stale.push_back(world.Create());
    for (EntityId e : stale) world.Destroy(e);
    auto& health = world.Table<Health>();
    for (EntityId e : stale) health.Set(e, Health{1.0f, 100.0f});

    ASSERT_EQ(world.Table<Health>().Size(), 1200u);
    ASSERT_EQ(world.Table<Faction>().Size(), 1000u);
  }

  World world;
  std::vector<EntityId> joined;
};

TEST_F(ViewDriverTest, LiveRowStatsOverrideRawSmallestTable) {
  PopulateSkewed();
  QueryPlanner planner(&world);
  planner.Analyze();

  const uint32_t health_id = TypeRegistry::IdOf<Health>();
  const uint32_t faction_id = TypeRegistry::IdOf<Faction>();
  ASSERT_EQ(planner.stats().EstimateRows(health_id), 1200.0);
  ASSERT_EQ(planner.stats().EstimateLiveRows(health_id), 50.0);
  ASSERT_EQ(planner.stats().EstimateLiveRows(faction_id), 1000.0);

  // Raw smallest is Faction (1000 < 1200) — the built-in heuristic's pick.
  // Live-aware cost: Health = 1200 scans + 50 probes; Faction = 1000
  // scans + 1000 probes. Health wins.
  const uint32_t ids[] = {health_id, faction_id};
  EXPECT_EQ(planner.ChooseViewDriver(ids, 2), 0u);
  const uint32_t flipped[] = {faction_id, health_id};
  EXPECT_EQ(planner.ChooseViewDriver(flipped, 2), 1u);
}

TEST_F(ViewDriverTest, PlannedViewVisitsTheSameEntities) {
  PopulateSkewed();
  QueryPlanner planner(&world);
  planner.Analyze();

  View<Health, Faction> unplanned(world);
  std::vector<EntityId> base = unplanned.Entities();

  View<Health, Faction> planned(world);
  planned.SetPlanner(&planner);
  std::vector<EntityId> picked = planned.Entities();

  // Different driver => possibly different order, identical set.
  auto sorted = [](std::vector<EntityId> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(base), sorted(picked));
  EXPECT_EQ(picked.size(), joined.size());
  EXPECT_EQ(planned.Count(), joined.size());
}

TEST_F(ViewDriverTest, PolicyOffKeepsBuiltinDriver) {
  PopulateSkewed();
  PlannerOptions opts;
  opts.policy = PlannerPolicy::kOff;
  QueryPlanner planner(&world, opts);
  planner.Analyze();

  View<Health, Faction> off(world);
  off.SetPlanner(&planner);
  View<Health, Faction> base(world);
  // kOff: identical driver, identical order.
  EXPECT_EQ(off.Entities(), base.Entities());
}

TEST_F(ViewDriverTest, UnanalyzedPlannerFallsBackToSmallest) {
  PopulateSkewed();
  QueryPlanner planner(&world);  // no Analyze(): no table stats
  const uint32_t ids[] = {TypeRegistry::IdOf<Health>(),
                          TypeRegistry::IdOf<Faction>()};
  // Without stats every row is assumed live: the cost model degenerates to
  // the built-in smallest-table choice (Faction).
  EXPECT_EQ(planner.ChooseViewDriver(ids, 2), 1u);
}

TEST_F(ViewDriverTest, LiveRowsNeverExceedRawRows) {
  PopulateSkewed();
  QueryPlanner planner(&world);
  planner.Analyze();
  for (uint32_t id :
       {TypeRegistry::IdOf<Health>(), TypeRegistry::IdOf<Faction>()}) {
    EXPECT_LE(planner.stats().EstimateLiveRows(id),
              planner.stats().EstimateRows(id));
  }
}

}  // namespace
}  // namespace gamedb::planner
