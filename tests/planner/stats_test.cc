#include "planner/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/world.h"

namespace gamedb::planner {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }

  World world;
};

TEST_F(StatsTest, AnalyzeCollectsRowCountsAndMinMax) {
  for (int i = 0; i < 100; ++i) {
    EntityId e = world.Create();
    world.Set(e, Health{float(i), 100.0f});
  }
  WorldStats stats;
  EXPECT_EQ(stats.epoch(), 0u);
  stats.Analyze(world);
  EXPECT_EQ(stats.epoch(), 1u);

  uint32_t health_id = TypeRegistry::Global().FindByName("Health")->id();
  const TableStats* t = stats.Table(health_id);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->rows, 100u);

  const FieldStats* hp = stats.Field(health_id, "hp");
  ASSERT_NE(hp, nullptr);
  EXPECT_DOUBLE_EQ(hp->min, 0.0);
  EXPECT_DOUBLE_EQ(hp->max, 99.0);
  EXPECT_TRUE(hp->integral);
  uint32_t total = 0;
  for (uint32_t b : hp->buckets) total += b;
  EXPECT_EQ(total, 100u);
}

TEST_F(StatsTest, SelectivityEstimatesFollowTheHistogram) {
  for (int i = 0; i < 1000; ++i) {
    EntityId e = world.Create();
    world.Set(e, Health{float(i % 100), 100.0f});
    world.Set(e, Faction{i % 4});
  }
  WorldStats stats;
  stats.Analyze(world);
  uint32_t health_id = TypeRegistry::Global().FindByName("Health")->id();
  uint32_t faction_id = TypeRegistry::Global().FindByName("Faction")->id();

  const FieldStats* hp = stats.Field(health_id, "hp");
  ASSERT_NE(hp, nullptr);
  EXPECT_NEAR(hp->EstimateSelectivity(CmpOp::kLt, 50.0), 0.5, 0.1);
  EXPECT_NEAR(hp->EstimateSelectivity(CmpOp::kGe, 90.0), 0.1, 0.05);
  EXPECT_NEAR(hp->EstimateSelectivity(CmpOp::kLt, -5.0), 0.0, 1e-9);
  EXPECT_NEAR(hp->EstimateSelectivity(CmpOp::kGe, 1000.0), 0.0, 1e-9);
  EXPECT_NEAR(hp->EstimateSelectivity(CmpOp::kLe, 1000.0), 1.0, 1e-9);

  const FieldStats* team = stats.Field(faction_id, "team");
  ASSERT_NE(team, nullptr);
  EXPECT_NEAR(team->EstimateSelectivity(CmpOp::kEq, 2.0), 0.25, 0.1);
  EXPECT_NEAR(team->EstimateSelectivity(CmpOp::kNe, 2.0), 0.75, 0.1);
}

TEST_F(StatsTest, SpatialDensityEstimatesNeighbors) {
  // 2000 entities uniform on a 100x100 plane: the analytic neighbor count
  // within r=10 is n * pi r^2 / area ~= 62.8.
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EntityId e = world.Create();
    world.Set(e, Position{{rng.NextFloat(0, 100), 0, rng.NextFloat(0, 100)}});
  }
  StatsOptions opts;
  opts.ref_radius = 10.0f;
  WorldStats stats(opts);
  stats.Analyze(world);
  uint32_t pos_id = TypeRegistry::Global().FindByName("Position")->id();
  const SpatialFieldStats* ss = stats.Spatial(pos_id, "value");
  ASSERT_NE(ss, nullptr);
  EXPECT_EQ(ss->rows, 2000u);
  EXPECT_EQ(ss->dims, 2);
  double est = ss->EstimateNeighbors(10.0f);
  EXPECT_GT(est, 30.0);
  EXPECT_LT(est, 120.0);
  // Density estimates scale with the square of the radius in 2D.
  EXPECT_NEAR(ss->EstimateNeighbors(20.0f) / est, 4.0, 0.01);
}

TEST_F(StatsTest, DriftTriggersRefreshOnlyPastThreshold) {
  for (int i = 0; i < 100; ++i) {
    EntityId e = world.Create();
    world.Set(e, Health{50.0f, 100.0f});
  }
  WorldStats stats;
  stats.Analyze(world);
  uint64_t epoch = stats.epoch();

  // +10% rows: under the 25% threshold.
  for (int i = 0; i < 10; ++i) {
    world.Set(world.Create(), Health{50.0f, 100.0f});
  }
  EXPECT_FALSE(stats.MaybeRefresh(world, 0.25));
  EXPECT_EQ(stats.epoch(), epoch);

  // +30% more: past the threshold.
  for (int i = 0; i < 30; ++i) {
    world.Set(world.Create(), Health{50.0f, 100.0f});
  }
  EXPECT_TRUE(stats.MaybeRefresh(world, 0.25));
  EXPECT_EQ(stats.epoch(), epoch + 1);
}

TEST_F(StatsTest, NeverAnalyzedCountsAsDrifted) {
  world.Set(world.Create(), Health{1.0f, 1.0f});
  WorldStats stats;
  EXPECT_TRUE(stats.Drifted(world, 0.25));
  stats.Analyze(world);
  EXPECT_FALSE(stats.Drifted(world, 0.25));
}

TEST_F(StatsTest, ConstantColumnEstimatesExactComparison) {
  for (int i = 0; i < 50; ++i) {
    world.Set(world.Create(), Faction{3});
  }
  WorldStats stats;
  stats.Analyze(world);
  uint32_t faction_id = TypeRegistry::Global().FindByName("Faction")->id();
  const FieldStats* team = stats.Field(faction_id, "team");
  ASSERT_NE(team, nullptr);
  EXPECT_DOUBLE_EQ(team->EstimateSelectivity(CmpOp::kEq, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(team->EstimateSelectivity(CmpOp::kEq, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(team->EstimateSelectivity(CmpOp::kLt, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(team->EstimateSelectivity(CmpOp::kLe, 3.0), 1.0);
}

}  // namespace
}  // namespace gamedb::planner
