// Integration: the full MMO shard loop — bubble-partitioned transactions,
// interest-managed replication and intelligent checkpointing running
// together over many ticks, with the invariants each subsystem promises
// checked against the others.

#include <gtest/gtest.h>

#include "persist/manager.h"
#include "replication/divergence.h"
#include "replication/sync.h"
#include "txn/bubbles.h"
#include "txn/executors.h"
#include "txn/workload.h"

namespace gamedb {
namespace {

TEST(ShardLoopTest, AllSubsystemsHoldTheirInvariantsTogether) {
  txn::WorkloadOptions wopts;
  wopts.num_entities = 300;
  wopts.area_extent = 400.0f;
  wopts.attack_fraction = 0.4f;
  wopts.trade_fraction = 0.3f;
  wopts.seed = 99;
  txn::MmoWorkload workload(wopts);
  World& world = workload.world();
  int64_t gold_genesis = workload.TotalGold();

  txn::BubbleOptions bopts;
  bopts.interaction_radius = wopts.interaction_radius;
  bopts.horizon_seconds = 0.5f;
  bopts.repartition_interval = 5;
  txn::BubbleExecutor executor(bopts);
  ThreadPool pool(4);

  replication::SyncOptions sopts;
  sopts.strategy = replication::SyncStrategy::kDelta;
  replication::SyncServer sync(&world, sopts);
  sync.AddClient(workload.entities()[0]);

  persist::MemStorage storage;
  persist::PersistenceManager persistence(
      &storage, std::make_unique<persist::HybridPolicy>(20, 50.0, 25.0));

  Rng rng(5);
  std::vector<replication::SyncStats> sync_stats;
  uint64_t committed = 0, submitted = 0;
  for (int tick = 1; tick <= 60; ++tick) {
    world.AdvanceTick();
    auto batch = workload.NextBatch();
    submitted += batch.size();
    auto stats = executor.ExecuteBatch(&world, batch, &pool);
    committed += stats.committed;
    // Publish the parallel executor's untracked writes to version-tracked
    // consumers (delta sync below would miss them otherwise).
    txn::PublishBatchDirty(&world, batch);

    if (rng.NextBool(0.1)) {
      ASSERT_TRUE(persistence.OnEvent(world.tick(), 30.0, "boss").ok());
    }
    ASSERT_TRUE(sync.SyncAll(&sync_stats).ok());
    ASSERT_TRUE(persistence.OnTickEnd(world).ok());
    workload.AdvancePositions(0.05f);
  }

  // Transactions: exactly-once execution, conserved gold.
  EXPECT_EQ(committed, submitted);
  EXPECT_EQ(workload.TotalGold(), gold_genesis);

  // One final sync so the replica has seen the last AdvancePositions.
  ASSERT_TRUE(sync.SyncAll(&sync_stats).ok());

  // Replication: the delta client converged on the final state.
  auto divergence =
      replication::MeasureDivergence(world, sync.client(0).world());
  EXPECT_EQ(divergence.missing_on_client, 0u);
  EXPECT_DOUBLE_EQ(divergence.position_rmse, 0.0);
  EXPECT_DOUBLE_EQ(divergence.hp_mean_abs_error, 0.0);

  // Persistence: a checkpoint exists and restores to a consistent world
  // with the same conserved gold.
  EXPECT_GT(persistence.metrics().checkpoints, 0u);
  World recovered;
  auto outcome = persist::PersistenceManager::Recover(storage, &recovered);
  ASSERT_TRUE(outcome.ok());
  int64_t recovered_gold = 0;
  recovered.ForEachEntity([&](EntityId e) {
    if (const Actor* a = recovered.Get<Actor>(e)) recovered_gold += a->gold;
  });
  EXPECT_EQ(recovered_gold, gold_genesis);
  EXPECT_EQ(recovered.AliveCount(), world.AliveCount());
}

TEST(ShardLoopTest, BubbleAndLockingEnginesAgreeUnderFullLoop) {
  // The consistency cross-check: executing the identical pre-generated
  // batch sequence under bubbles and under 2PL must land on identical
  // commutative state (hp, gold). Batches are generated once from a
  // separate generator world so that engine-specific move ordering cannot
  // feed back into batch content.
  txn::WorkloadOptions wopts;
  wopts.num_entities = 200;
  wopts.area_extent = 150.0f;
  wopts.attack_fraction = 0.5f;
  wopts.trade_fraction = 0.3f;
  wopts.seed = 4242;

  std::vector<std::vector<txn::GameTxn>> batches;
  {
    txn::MmoWorkload generator(wopts);
    for (int tick = 0; tick < 20; ++tick) {
      batches.push_back(generator.NextBatch());
      generator.AdvancePositions(0.05f);
    }
  }

  auto run = [&](int engine_kind) {
    auto workload = std::make_unique<txn::MmoWorkload>(wopts);
    std::unique_ptr<txn::TxnExecutor> engine;
    if (engine_kind == 0) {
      txn::BubbleOptions bopts;
      bopts.interaction_radius = wopts.interaction_radius;
      bopts.repartition_interval = 3;
      engine = std::make_unique<txn::BubbleExecutor>(bopts);
    } else {
      engine = std::make_unique<txn::EntityLockExecutor>();
    }
    ThreadPool pool(4);
    for (const auto& batch : batches) {
      engine->ExecuteBatch(&workload->world(), batch, &pool);
      workload->AdvancePositions(0.05f);
    }
    return workload;
  };
  auto bubbles = run(0);
  auto locking = run(1);
  for (size_t i = 0; i < bubbles->entities().size(); ++i) {
    EntityId eb = bubbles->entities()[i];
    EntityId el = locking->entities()[i];
    // Damage totals are order-insensitive in game terms, but float
    // subtraction is not associative: engines apply the same contributions
    // in different orders, so allow a small absolute tolerance.
    ASSERT_NEAR(bubbles->world().Get<Health>(eb)->hp,
                locking->world().Get<Health>(el)->hp, 0.01f);
    ASSERT_EQ(bubbles->world().Get<Actor>(eb)->gold,
              locking->world().Get<Actor>(el)->gold);
  }
}

}  // namespace
}  // namespace gamedb
