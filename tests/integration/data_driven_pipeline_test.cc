// Integration: the full data-driven content pipeline — XML prefabs spawn
// entities, a GSL script (at the designer restriction level) drives their
// behavior through declarative queries and state-effect emissions, and
// triggers cascade — exactly the authoring stack the tutorial describes.

#include <gtest/gtest.h>

#include "content/prefab.h"
#include "core/aggregate.h"
#include "script/bindings.h"
#include "script/builtins.h"
#include "script/parser.h"
#include "script/triggers.h"

namespace gamedb {
namespace {

constexpr char kPrefabs[] = R"(
<Prefabs>
  <Prefab name="grunt">
    <Component type="Health" hp="30" max_hp="30"/>
    <Component type="Position" value="0,0,0"/>
    <Component type="Faction" team="2"/>
    <Component type="Combat" attack="4" range="3"/>
  </Prefab>
  <Prefab name="champion" extends="grunt">
    <Component type="Health" hp="90" max_hp="90"/>
    <Component type="Combat" attack="10" range="3"/>
  </Prefab>
</Prefabs>)";

// Declarative-restriction script: no loops, no recursion — everything bulk
// goes through aggregate builtins.
constexpr char kBehavior[] = R"(
fn focus_fire(team) {
  let victim = argmin("Health", "hp")
  if victim == nil { return nil }
  emit("damage", victim, sum("Combat", "attack"))
  return victim
}

on victim_down(e) {
  fire("cheer")
}

on cheer() {
  print("victory cry")
}
)";

TEST(DataDrivenPipelineTest, PrefabsScriptEffectsAndTriggersCompose) {
  RegisterStandardComponents();
  World world;

  auto prefabs = content::PrefabLibrary::Load(kPrefabs);
  ASSERT_TRUE(prefabs.ok()) << prefabs.status().ToString();
  std::vector<EntityId> squad;
  for (int i = 0; i < 4; ++i) {
    auto e = prefabs->Instantiate(&world, "grunt");
    ASSERT_TRUE(e.ok());
    squad.push_back(*e);
  }
  auto champ = prefabs->Instantiate(&world, "champion");
  ASSERT_TRUE(champ.ok());

  // The squad's total attack is queryable before any scripting.
  DynamicQuery q(&world);
  auto total_attack = q.Sum("Combat", "attack");
  ASSERT_TRUE(total_attack.ok());
  EXPECT_DOUBLE_EQ(*total_attack, 4 * 4 + 10);

  // Boot a *declarative-restricted* interpreter: the script must load.
  script::InterpreterOptions opts;
  opts.restriction = script::Restriction::kDeclarative;
  script::Interpreter interp(opts);
  script::RegisterCoreBuiltins(&interp);
  script::ScriptEffects effects(1);
  script::BindWorld(&interp, &world, &effects);
  script::TriggerSystem triggers(&interp);
  triggers.InstallFireBuiltin();

  auto parsed = script::Parse(kBehavior);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(interp.Load(std::move(*parsed)).ok());

  // One scripted focus-fire round: weakest (a grunt at 30) takes 26.
  auto victim = interp.Call("focus_fire", {script::Value(2.0)});
  ASSERT_TRUE(victim.ok()) << victim.status().ToString();
  ASSERT_TRUE(victim->IsEntity());

  // Effects are deferred until the host drains them.
  EXPECT_FLOAT_EQ(world.Get<Health>(victim->AsEntity())->hp, 30);
  int applied = 0;
  effects.Drain("damage", [&](EntityId e, double amount) {
    EXPECT_DOUBLE_EQ(amount, 26.0);
    world.Patch<Health>(e, [&](Health& h) { h.hp -= float(amount); });
    ++applied;
    if (world.Get<Health>(e)->hp <= 0) {
      triggers.Fire("victim_down", {script::Value(e)});
    }
  });
  EXPECT_EQ(applied, 1);
  EXPECT_FLOAT_EQ(world.Get<Health>(victim->AsEntity())->hp, 4);

  // Round two kills it and the trigger cascade fires (down -> cheer).
  ASSERT_TRUE(interp.Call("focus_fire", {script::Value(2.0)}).ok());
  effects.Drain("damage", [&](EntityId e, double amount) {
    world.Patch<Health>(e, [&](Health& h) { h.hp -= float(amount); });
    if (world.Get<Health>(e)->hp <= 0) {
      triggers.Fire("victim_down", {script::Value(e)});
    }
  });
  ASSERT_TRUE(triggers.Pump().ok());
  ASSERT_EQ(interp.output().size(), 1u);
  EXPECT_EQ(interp.output()[0], "victory cry");
  EXPECT_EQ(triggers.stats().handled, 2u);  // victim_down + cheer
}

TEST(DataDrivenPipelineTest, LoopScriptRejectedWhereDeclarativeLoads) {
  // The governance story in one test: identical behavior, two phrasings,
  // one restriction level.
  RegisterStandardComponents();
  World world;
  script::InterpreterOptions opts;
  opts.restriction = script::Restriction::kDeclarative;
  script::Interpreter interp(opts);
  script::RegisterCoreBuiltins(&interp);
  script::BindWorld(&interp, &world, nullptr);

  auto loop_version = script::Parse(R"(
    fn weakest() {
      let best = nil
      foreach e in entities_with("Health") { best = e }
      return best
    })");
  ASSERT_TRUE(loop_version.ok());
  Status st = interp.Load(std::move(*loop_version));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("iteration"), std::string::npos);

  auto declarative_version = script::Parse(
      "fn weakest() { return argmin(\"Health\", \"hp\") }");
  ASSERT_TRUE(declarative_version.ok());
  EXPECT_TRUE(interp.Load(std::move(*declarative_version)).ok());
}

TEST(DataDrivenPipelineTest, ScriptWritesFeedMaintainedAggregates) {
  // Script set() -> PatchRaw -> observers: the aggregate index a designer
  // dashboard reads stays exact while scripts mutate state.
  RegisterStandardComponents();
  World world;
  auto prefabs = content::PrefabLibrary::Load(kPrefabs);
  ASSERT_TRUE(prefabs.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(prefabs->Instantiate(&world, "grunt").ok());
  }
  SumAggregate<Health> total(world, [](const Health& h) { return h.hp; });
  EXPECT_DOUBLE_EQ(total.sum(), 90.0);

  script::Interpreter interp;
  script::RegisterCoreBuiltins(&interp);
  script::BindWorld(&interp, &world, nullptr);
  auto parsed = script::Parse(R"(
    foreach e in entities_with("Health") {
      set(e, "Health", "hp", get(e, "Health", "hp") - 10)
    })");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(interp.Load(std::move(*parsed)).ok());
  EXPECT_DOUBLE_EQ(total.sum(), 60.0);
}

}  // namespace
}  // namespace gamedb
