// Disk-backed crash-recovery equivalence (the ROADMAP "no disk-backed
// integration coverage" item). A deterministic shard session runs twice —
// once over MemStorage, once over a tmpdir DiskStorage — both behind a
// FaultInjectingStorage that kills persistence after exactly N mutating
// storage ops. Sweeping N over every op in the session hits every crash
// point there is: mid-WAL-append, mid-WAL-sync, mid-checkpoint-tmp-write,
// mid-tmp-sync, mid-rename, and between the rename and the WAL reset.
// For each N, recovery from the disk image must be *equivalent* to
// recovery from the in-memory reference image: same outcome, same world.

#include <gtest/gtest.h>

#include <filesystem>

#include "persist/fault_injection.h"
#include "persist/manager.h"
#include "txn/txn.h"

namespace gamedb {
namespace {

using persist::DiskStorage;
using persist::DurabilityMode;
using persist::FaultInjectingStorage;
using persist::MemStorage;
using persist::PeriodicPolicy;
using persist::PersistenceManager;
using persist::PersistenceOptions;
using persist::RecoveryOutcome;
using persist::Storage;

constexpr int kTicks = 14;
constexpr uint64_t kCheckpointInterval = 5;

/// Builds the fixed 4-entity cast every session starts from.
std::vector<EntityId> Populate(World* world) {
  std::vector<EntityId> ids;
  for (int i = 0; i < 4; ++i) {
    EntityId e = world->Create();
    world->Set(e, Health{200, 200});
    world->Set(e, Actor{i, 100, 1, true});
    ids.push_back(e);
  }
  return ids;
}

txn::GameTxn Attack(EntityId a, EntityId b, float amount) {
  txn::GameTxn t;
  t.type = txn::TxnType::kAttack;
  t.a = a;
  t.b = b;
  t.amount = amount;
  return t;
}

/// Runs the deterministic session over `faults` until the injected crash
/// (or clean completion). Status-tolerant: the first persistence error is
/// the crash, after which the "process" stops touching storage.
void RunSessionUntilCrash(FaultInjectingStorage* faults) {
  World world;
  std::vector<EntityId> ids = Populate(&world);

  PersistenceOptions popts;
  popts.mode = DurabilityMode::kWalAndCheckpoint;
  PersistenceManager mgr(faults,
                         std::make_unique<PeriodicPolicy>(kCheckpointInterval),
                         popts);
  for (int tick = 1; tick <= kTicks; ++tick) {
    world.AdvanceTick();
    // Two deterministic transactions per tick.
    for (int k = 0; k < 2; ++k) {
      txn::GameTxn t =
          Attack(ids[(tick + k) % 4], ids[(tick + k + 1) % 4], 1.0f + k);
      txn::ApplyTxn(&world, t);
      if (!mgr.OnTxn(t, world.tick()).ok()) return;  // crash
    }
    if (tick % 3 == 0) {
      if (!mgr.OnEvent(world.tick(), 25.0, "boss_kill").ok()) return;
    }
    if (!mgr.OnTickEnd(world).ok()) return;  // crash (possibly mid-ckpt)
  }
}

/// Structural equality over the components the session mutates.
void ExpectWorldsEqual(const World& a, const World& b) {
  ASSERT_EQ(a.AliveCount(), b.AliveCount());
  a.ForEachEntity([&](EntityId e) {
    ASSERT_TRUE(b.Alive(e)) << e.ToString();
    const Health* ha = a.Get<Health>(e);
    const Health* hb = b.Get<Health>(e);
    ASSERT_EQ(ha == nullptr, hb == nullptr);
    if (ha != nullptr) {
      ASSERT_FLOAT_EQ(ha->hp, hb->hp) << e.ToString();
    }
  });
}

class DiskRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardComponents();
    dir_ = std::filesystem::temp_directory_path() /
           ("gamedb_disk_recovery_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A fresh storage dir per crash run ("the machine rebooted").
  std::string FreshDir(uint64_t crash_op) {
    std::string d = (dir_ / std::to_string(crash_op)).string();
    std::filesystem::remove_all(d);
    return d;
  }

  std::filesystem::path dir_;
};

/// Crashes `base` after `crash_op` mutating ops (optionally tearing
/// `torn_tail_bytes` off the WAL afterwards), then recovers from what the
/// backend durably holds.
Result<RecoveryOutcome> CrashAndRecover(Storage* base, uint64_t crash_op,
                                        size_t torn_tail_bytes,
                                        World* recovered) {
  FaultInjectingStorage faults(base);
  faults.FailAfter(crash_op);
  RunSessionUntilCrash(&faults);
  if (torn_tail_bytes > 0) faults.CorruptTail("wal", torn_tail_bytes);
  return PersistenceManager::Recover(*base, recovered);
}

TEST_F(DiskRecoveryTest, EveryCrashPointRecoversEquivalentToMemStorage) {
  // Dry run with no fault to learn the session's total op count (and that
  // WAL mode really syncs: the fsync accounting E8 charts).
  uint64_t total_ops = 0;
  {
    MemStorage probe;
    FaultInjectingStorage faults(&probe);
    RunSessionUntilCrash(&faults);
    total_ops = faults.ops();
    EXPECT_GT(probe.syncs(), 0u);
  }
  ASSERT_GT(total_ops, 30u);  // the sweep must cover a real session

  for (uint64_t crash_op = 0; crash_op <= total_ops; ++crash_op) {
    SCOPED_TRACE("crash after op " + std::to_string(crash_op));

    MemStorage mem;
    World mem_world;
    auto mem_outcome = CrashAndRecover(&mem, crash_op, 0, &mem_world);

    DiskStorage disk(FreshDir(crash_op));
    World disk_world;
    auto disk_outcome = CrashAndRecover(&disk, crash_op, 0, &disk_world);

    // Recovery equivalence: both backends recover the same outcome — or
    // fail identically (crash before the first checkpoint landed).
    ASSERT_EQ(mem_outcome.ok(), disk_outcome.ok());
    if (!mem_outcome.ok()) {
      EXPECT_EQ(mem_outcome.status().code(), disk_outcome.status().code());
      continue;
    }
    EXPECT_EQ(mem_outcome->checkpoint_tick, disk_outcome->checkpoint_tick);
    EXPECT_EQ(mem_outcome->replayed_txns, disk_outcome->replayed_txns);
    EXPECT_EQ(mem_outcome->recovered_tick, disk_outcome->recovered_tick);
    EXPECT_EQ(mem_outcome->wal_torn_tail, disk_outcome->wal_torn_tail);
    ExpectWorldsEqual(mem_world, disk_world);
  }
}

TEST_F(DiskRecoveryTest, TornWalTailAfterCrashStaysEquivalent) {
  // A crash can also tear the record being appended; rip a few bytes off
  // the durable WAL tail on both backends and require equivalence again.
  uint64_t total_ops = 0;
  {
    MemStorage probe;
    FaultInjectingStorage faults(&probe);
    RunSessionUntilCrash(&faults);
    total_ops = faults.ops();
  }
  for (uint64_t crash_op = total_ops / 2; crash_op <= total_ops;
       crash_op += 3) {
    size_t torn = 1 + crash_op % 9;
    SCOPED_TRACE("crash after op " + std::to_string(crash_op) + ", torn " +
                 std::to_string(torn));

    MemStorage mem;
    World mem_world;
    auto mem_outcome = CrashAndRecover(&mem, crash_op, torn, &mem_world);

    DiskStorage disk(FreshDir(crash_op));
    World disk_world;
    auto disk_outcome = CrashAndRecover(&disk, crash_op, torn, &disk_world);

    ASSERT_EQ(mem_outcome.ok(), disk_outcome.ok());
    if (!mem_outcome.ok()) {
      EXPECT_EQ(mem_outcome.status().code(), disk_outcome.status().code());
      continue;
    }
    EXPECT_EQ(mem_outcome->recovered_tick, disk_outcome->recovered_tick);
    EXPECT_EQ(mem_outcome->wal_torn_tail, disk_outcome->wal_torn_tail);
    ExpectWorldsEqual(mem_world, disk_world);
  }
}

TEST_F(DiskRecoveryTest, CleanDiskSessionRecoversEverything) {
  // No fault at all: the disk-backed WAL run must recover the full session
  // and have fsynced every append (sync_every_n defaults to 1).
  DiskStorage disk(FreshDir(~0ull));
  FaultInjectingStorage faults(&disk);
  RunSessionUntilCrash(&faults);  // no crash point injected — runs clean
  EXPECT_FALSE(faults.crashed());
  EXPECT_GT(disk.syncs(), 0u);

  World recovered;
  auto outcome = PersistenceManager::Recover(disk, &recovered);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->recovered_tick, uint64_t(kTicks));
  EXPECT_GT(outcome->replayed_txns, 0u);
}

}  // namespace
}  // namespace gamedb
