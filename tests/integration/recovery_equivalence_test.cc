// Integration property: for any seeded session, crash + recovery under
// kWalAndCheckpoint reproduces the pre-crash world EXACTLY (checkpoint +
// replay determinism), and under kCheckpointOnly reproduces the world as of
// the last checkpoint. This is the end-to-end durability contract of the
// persistence tier.

#include <gtest/gtest.h>

#include "persist/fault_injection.h"
#include "persist/manager.h"
#include "txn/workload.h"

namespace gamedb {
namespace {

using persist::DurabilityMode;
using persist::MemStorage;
using persist::PeriodicPolicy;
using persist::PersistenceManager;
using persist::PersistenceOptions;

/// Runs `ticks` of a seeded session, persisting according to `mode`;
/// returns the storage plus the live world at the moment of the "crash".
struct SessionRun {
  MemStorage storage;
  std::unique_ptr<txn::MmoWorkload> workload;
};

std::unique_ptr<SessionRun> RunSession(uint64_t seed, int ticks,
                                       DurabilityMode mode,
                                       uint64_t ckpt_interval) {
  auto run = std::make_unique<SessionRun>();
  txn::WorkloadOptions wopts;
  wopts.num_entities = 150;
  wopts.txns_per_entity = 0.5f;
  wopts.seed = seed;
  run->workload = std::make_unique<txn::MmoWorkload>(wopts);
  World& world = run->workload->world();

  PersistenceOptions popts;
  popts.mode = mode;
  PersistenceManager mgr(&run->storage,
                         std::make_unique<PeriodicPolicy>(ckpt_interval),
                         popts);
  for (int tick = 1; tick <= ticks; ++tick) {
    world.AdvanceTick();
    auto batch = run->workload->NextBatch();
    for (const auto& t : batch) {
      txn::ApplyTxn(&world, t);
      GAMEDB_CHECK(mgr.OnTxn(t, world.tick()).ok());
    }
    GAMEDB_CHECK(mgr.OnTickEnd(world).ok());
    run->workload->AdvancePositions(0.05f);
  }
  return run;
}

/// Structural equality of two worlds over the standard components.
void ExpectWorldsEqual(const World& a, const World& b) {
  ASSERT_EQ(a.AliveCount(), b.AliveCount());
  a.ForEachEntity([&](EntityId e) {
    ASSERT_TRUE(b.Alive(e)) << e.ToString();
    const Health* ha = a.Get<Health>(e);
    const Health* hb = b.Get<Health>(e);
    ASSERT_EQ(ha == nullptr, hb == nullptr);
    if (ha != nullptr) {
      ASSERT_FLOAT_EQ(ha->hp, hb->hp) << e.ToString();
    }
    const Actor* aa = a.Get<Actor>(e);
    const Actor* ab = b.Get<Actor>(e);
    ASSERT_EQ(aa == nullptr, ab == nullptr);
    if (aa != nullptr) {
      ASSERT_EQ(aa->gold, ab->gold) << e.ToString();
    }
  });
}

class RecoveryEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryEquivalenceTest, WalRecoveryIsExact) {
  uint64_t seed = GetParam();
  auto run = RunSession(seed, /*ticks=*/37,
                        DurabilityMode::kWalAndCheckpoint,
                        /*ckpt_interval=*/10);
  World recovered;
  auto outcome = PersistenceManager::Recover(run->storage, &recovered);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->recovered_tick, 37u);
  EXPECT_GT(outcome->replayed_txns, 0u);  // ticks 31..37 replay
  ExpectWorldsEqual(run->workload->world(), recovered);
}

TEST_P(RecoveryEquivalenceTest, CheckpointOnlyRecoversToLastCheckpoint) {
  uint64_t seed = GetParam();
  // Reference session stopping exactly at the checkpoint tick...
  auto reference = RunSession(seed, /*ticks=*/30,
                              DurabilityMode::kCheckpointOnly,
                              /*ckpt_interval=*/10);
  // ...and the crashed session that ran 7 ticks past it.
  auto crashed = RunSession(seed, /*ticks=*/37,
                            DurabilityMode::kCheckpointOnly,
                            /*ckpt_interval=*/10);
  World recovered;
  auto outcome = PersistenceManager::Recover(crashed->storage, &recovered);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->checkpoint_tick, 30u);
  EXPECT_EQ(outcome->replayed_txns, 0u);
  // Determinism: same seed, same 30 ticks -> recovered == reference.
  ExpectWorldsEqual(reference->workload->world(), recovered);
}

TEST_P(RecoveryEquivalenceTest, TornWalTailStillRecoversPrefix) {
  uint64_t seed = GetParam();
  auto run = RunSession(seed, /*ticks=*/25,
                        DurabilityMode::kWalAndCheckpoint,
                        /*ckpt_interval=*/10);
  persist::FaultInjectingStorage(&run->storage)
      .CorruptTail("wal", 7);  // crash mid-append
  World recovered;
  auto outcome = PersistenceManager::Recover(run->storage, &recovered);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->wal_torn_tail);
  EXPECT_GE(outcome->recovered_tick, 20u);  // checkpoint at 20 + prefix
  EXPECT_LE(outcome->recovered_tick, 25u);
  EXPECT_GT(recovered.AliveCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryEquivalenceTest,
                         ::testing::Values(1u, 42u, 20090629u, 777777u));

}  // namespace
}  // namespace gamedb
