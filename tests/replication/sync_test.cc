#include "replication/sync.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "planner/planner.h"
#include "replication/divergence.h"
#include "views/maintainer.h"

namespace gamedb::replication {
namespace {

class SyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardComponents();
    for (int i = 0; i < 20; ++i) {
      EntityId e = server.Create();
      ids.push_back(e);
      server.Set(e, Position{{float(i) * 10, 0, 0}});
      server.Set(e, Health{100, 100});
    }
  }

  void MutateSome() {
    server.AdvanceTick();
    server.Patch<Position>(ids[0], [](Position& p) { p.value.x += 1; });
    server.Patch<Health>(ids[1], [](Health& h) { h.hp -= 5; });
  }

  World server;
  std::vector<EntityId> ids;
};

TEST_F(SyncTest, FullSnapshotReplicatesEverything) {
  SyncServer sync(&server, SyncOptions{SyncStrategy::kFullSnapshot});
  sync.AddClient(ids[0]);
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  auto report = MeasureDivergence(server, sync.client(0).world());
  EXPECT_EQ(report.missing_on_client, 0u);
  EXPECT_DOUBLE_EQ(report.position_rmse, 0.0);
  EXPECT_GT(stats[0].bytes_sent, 0u);
}

TEST_F(SyncTest, DeltaConvergesAndSecondSyncIsCheap) {
  SyncServer sync(&server, SyncOptions{SyncStrategy::kDelta});
  sync.AddClient(ids[0]);
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  uint64_t first_bytes = stats[0].bytes_sent;

  // Nothing changed: the next delta should be (near) empty.
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_EQ(stats[0].bytes_sent, 0u);

  // One position + one hp change: tiny delta.
  MutateSome();
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_GT(stats[0].bytes_sent, 0u);
  EXPECT_LT(stats[0].bytes_sent, first_bytes / 4);
  EXPECT_EQ(stats[0].rows_sent, 2u);

  auto report = MeasureDivergence(server, sync.client(0).world());
  EXPECT_DOUBLE_EQ(report.position_rmse, 0.0);
  EXPECT_DOUBLE_EQ(report.hp_mean_abs_error, 0.0);
}

TEST_F(SyncTest, DeltaPropagatesRemovals) {
  SyncServer sync(&server, SyncOptions{SyncStrategy::kDelta});
  sync.AddClient(ids[0]);
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  ASSERT_TRUE(sync.client(0).world().Has<Health>(ids[5]));

  server.Remove<Health>(ids[5]);
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_FALSE(sync.client(0).world().Has<Health>(ids[5]));
  EXPECT_GE(stats[0].removals_sent, 1u);
}

TEST_F(SyncTest, InterestOnlyReplicatesNearbyEntities) {
  SyncOptions opts;
  opts.strategy = SyncStrategy::kInterest;
  opts.interest_radius = 25.0f;  // positions are x = 0,10,...,190
  SyncServer sync(&server, opts);
  sync.AddClient(ids[0]);  // avatar at x=0
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());

  World& replica = sync.client(0).world();
  EXPECT_TRUE(replica.Has<Position>(ids[0]));
  EXPECT_TRUE(replica.Has<Position>(ids[2]));   // x=20, inside
  EXPECT_FALSE(replica.Has<Position>(ids[5]));  // x=50, outside
  auto report = MeasureDivergence(server, replica);
  EXPECT_GT(report.missing_on_client, 0u);
}

TEST_F(SyncTest, InterestHandlesEnterAndLeave) {
  SyncOptions opts;
  opts.strategy = SyncStrategy::kInterest;
  opts.interest_radius = 25.0f;
  SyncServer sync(&server, opts);
  sync.AddClient(ids[0]);
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  World& replica = sync.client(0).world();
  ASSERT_FALSE(replica.Has<Position>(ids[5]));

  // ids[5] walks into interest range.
  server.AdvanceTick();
  server.Patch<Position>(ids[5], [](Position& p) { p.value.x = 15; });
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_TRUE(replica.Has<Position>(ids[5]));
  EXPECT_TRUE(replica.Has<Health>(ids[5]));  // full row on enter

  // ...and walks back out.
  server.AdvanceTick();
  server.Patch<Position>(ids[5], [](Position& p) { p.value.x = 120; });
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_FALSE(replica.Has<Position>(ids[5]));
  EXPECT_FALSE(replica.Has<Health>(ids[5]));
}

TEST_F(SyncTest, EventualSkipsRoundsAndDiverges) {
  SyncOptions opts;
  opts.strategy = SyncStrategy::kEventual;
  opts.period_ticks = 5;
  SyncServer sync(&server, opts);
  sync.AddClient(ids[0]);
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());  // initial sync

  // Ticks 1..3: mutations without sync traffic.
  uint64_t bytes_between = 0;
  for (int i = 0; i < 3; ++i) {
    MutateSome();
    ASSERT_TRUE(sync.SyncAll(&stats).ok());
    bytes_between += stats[0].bytes_sent;
  }
  EXPECT_EQ(bytes_between, 0u);  // inside the period: silence
  auto drift = MeasureDivergence(server, sync.client(0).world());
  EXPECT_GT(drift.position_rmse, 0.0);  // visibly stale

  // Cross the period boundary: one sync collapses divergence to zero.
  MutateSome();
  MutateSome();
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_GT(stats[0].bytes_sent, 0u);
  auto after = MeasureDivergence(server, sync.client(0).world());
  EXPECT_DOUBLE_EQ(after.position_rmse, 0.0);
}

// kInterestView must replicate exactly what kInterest replicates — the
// LiveView-backed interest set only changes *how* the set is computed
// (incremental deltas + recenter instead of a per-client world rescan).
TEST_F(SyncTest, InterestViewReplicatesExactlyLikeInterest) {
  Rng rng(99);
  SyncOptions scan_opts;
  scan_opts.strategy = SyncStrategy::kInterest;
  scan_opts.interest_radius = 25.0f;
  SyncServer scan_sync(&server, scan_opts);
  scan_sync.AddClient(ids[0]);

  planner::QueryPlanner planner(&server);
  views::ViewCatalog catalog(&server, &planner);
  SyncOptions view_opts = scan_opts;
  view_opts.strategy = SyncStrategy::kInterestView;
  view_opts.view_catalog = &catalog;
  SyncServer view_sync(&server, view_opts);
  view_sync.AddClient(ids[0]);

  std::vector<SyncStats> stats;
  for (int tick = 0; tick < 12; ++tick) {
    server.AdvanceTick();
    // Wander everyone, including the avatar (exercises Recenter), so
    // entities churn in and out of the interest bubble.
    for (EntityId e : ids) {
      server.Patch<Position>(e, [&](Position& p) {
        p.value.x += rng.NextFloat(-12, 12);
        p.value.z += rng.NextFloat(-12, 12);
      });
      if (rng.NextBool(0.3)) {
        server.Patch<Health>(e, [&](Health& h) {
          h.hp = rng.NextFloat(0, 100);
        });
      }
    }
    ASSERT_TRUE(scan_sync.SyncAll(&stats).ok());
    ASSERT_TRUE(view_sync.SyncAll(&stats).ok());

    // Same replicated rows, same values, tick for tick.
    const World& a = scan_sync.client(0).world();
    const World& b = view_sync.client(0).world();
    for (EntityId e : ids) {
      ASSERT_EQ(a.Has<Position>(e), b.Has<Position>(e)) << "tick " << tick;
      ASSERT_EQ(a.Has<Health>(e), b.Has<Health>(e)) << "tick " << tick;
      if (a.Has<Position>(e)) {
        EXPECT_EQ(a.Get<Position>(e)->value, b.Get<Position>(e)->value);
        EXPECT_EQ(a.Get<Health>(e)->hp, b.Get<Health>(e)->hp);
      }
    }
    auto report = MeasureDivergence(server, b);
    EXPECT_EQ(report.missing_on_client,
              MeasureDivergence(server, a).missing_on_client);
  }
}

// A torn-down kInterestView server must release its catalog views so a
// successor (shard restart, reconnect) can register cleanly.
TEST_F(SyncTest, InterestViewServersShareACatalogAcrossRestarts) {
  planner::QueryPlanner planner(&server);
  views::ViewCatalog catalog(&server, &planner);
  SyncOptions opts;
  opts.strategy = SyncStrategy::kInterestView;
  opts.interest_radius = 25.0f;
  opts.view_catalog = &catalog;

  std::vector<SyncStats> stats;
  {
    SyncServer first(&server, opts);
    first.AddClient(ids[0]);
    ASSERT_TRUE(first.SyncAll(&stats).ok());
    EXPECT_EQ(catalog.view_count(), 1u);
  }
  EXPECT_EQ(catalog.view_count(), 0u);  // destructor unregistered

  SyncServer second(&server, opts);
  second.AddClient(ids[0]);  // same client index: name must not collide
  ASSERT_TRUE(second.SyncAll(&stats).ok());
  EXPECT_TRUE(second.client(0).world().Has<Position>(ids[1]));
}

TEST_F(SyncTest, MultipleClientsTrackIndependently) {
  SyncOptions opts;
  opts.strategy = SyncStrategy::kInterest;
  opts.interest_radius = 15.0f;
  SyncServer sync(&server, opts);
  sync.AddClient(ids[0]);   // near x=0
  sync.AddClient(ids[19]);  // near x=190
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_TRUE(sync.client(0).world().Has<Position>(ids[1]));
  EXPECT_FALSE(sync.client(0).world().Has<Position>(ids[18]));
  EXPECT_TRUE(sync.client(1).world().Has<Position>(ids[18]));
  EXPECT_FALSE(sync.client(1).world().Has<Position>(ids[1]));
}

}  // namespace
}  // namespace gamedb::replication
