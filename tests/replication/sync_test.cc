#include "replication/sync.h"

#include <gtest/gtest.h>

#include "replication/divergence.h"

namespace gamedb::replication {
namespace {

class SyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardComponents();
    for (int i = 0; i < 20; ++i) {
      EntityId e = server.Create();
      ids.push_back(e);
      server.Set(e, Position{{float(i) * 10, 0, 0}});
      server.Set(e, Health{100, 100});
    }
  }

  void MutateSome() {
    server.AdvanceTick();
    server.Patch<Position>(ids[0], [](Position& p) { p.value.x += 1; });
    server.Patch<Health>(ids[1], [](Health& h) { h.hp -= 5; });
  }

  World server;
  std::vector<EntityId> ids;
};

TEST_F(SyncTest, FullSnapshotReplicatesEverything) {
  SyncServer sync(&server, SyncOptions{SyncStrategy::kFullSnapshot});
  sync.AddClient(ids[0]);
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  auto report = MeasureDivergence(server, sync.client(0).world());
  EXPECT_EQ(report.missing_on_client, 0u);
  EXPECT_DOUBLE_EQ(report.position_rmse, 0.0);
  EXPECT_GT(stats[0].bytes_sent, 0u);
}

TEST_F(SyncTest, DeltaConvergesAndSecondSyncIsCheap) {
  SyncServer sync(&server, SyncOptions{SyncStrategy::kDelta});
  sync.AddClient(ids[0]);
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  uint64_t first_bytes = stats[0].bytes_sent;

  // Nothing changed: the next delta should be (near) empty.
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_EQ(stats[0].bytes_sent, 0u);

  // One position + one hp change: tiny delta.
  MutateSome();
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_GT(stats[0].bytes_sent, 0u);
  EXPECT_LT(stats[0].bytes_sent, first_bytes / 4);
  EXPECT_EQ(stats[0].rows_sent, 2u);

  auto report = MeasureDivergence(server, sync.client(0).world());
  EXPECT_DOUBLE_EQ(report.position_rmse, 0.0);
  EXPECT_DOUBLE_EQ(report.hp_mean_abs_error, 0.0);
}

TEST_F(SyncTest, DeltaPropagatesRemovals) {
  SyncServer sync(&server, SyncOptions{SyncStrategy::kDelta});
  sync.AddClient(ids[0]);
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  ASSERT_TRUE(sync.client(0).world().Has<Health>(ids[5]));

  server.Remove<Health>(ids[5]);
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_FALSE(sync.client(0).world().Has<Health>(ids[5]));
  EXPECT_GE(stats[0].removals_sent, 1u);
}

TEST_F(SyncTest, InterestOnlyReplicatesNearbyEntities) {
  SyncOptions opts;
  opts.strategy = SyncStrategy::kInterest;
  opts.interest_radius = 25.0f;  // positions are x = 0,10,...,190
  SyncServer sync(&server, opts);
  sync.AddClient(ids[0]);  // avatar at x=0
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());

  World& replica = sync.client(0).world();
  EXPECT_TRUE(replica.Has<Position>(ids[0]));
  EXPECT_TRUE(replica.Has<Position>(ids[2]));   // x=20, inside
  EXPECT_FALSE(replica.Has<Position>(ids[5]));  // x=50, outside
  auto report = MeasureDivergence(server, replica);
  EXPECT_GT(report.missing_on_client, 0u);
}

TEST_F(SyncTest, InterestHandlesEnterAndLeave) {
  SyncOptions opts;
  opts.strategy = SyncStrategy::kInterest;
  opts.interest_radius = 25.0f;
  SyncServer sync(&server, opts);
  sync.AddClient(ids[0]);
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  World& replica = sync.client(0).world();
  ASSERT_FALSE(replica.Has<Position>(ids[5]));

  // ids[5] walks into interest range.
  server.AdvanceTick();
  server.Patch<Position>(ids[5], [](Position& p) { p.value.x = 15; });
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_TRUE(replica.Has<Position>(ids[5]));
  EXPECT_TRUE(replica.Has<Health>(ids[5]));  // full row on enter

  // ...and walks back out.
  server.AdvanceTick();
  server.Patch<Position>(ids[5], [](Position& p) { p.value.x = 120; });
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_FALSE(replica.Has<Position>(ids[5]));
  EXPECT_FALSE(replica.Has<Health>(ids[5]));
}

TEST_F(SyncTest, EventualSkipsRoundsAndDiverges) {
  SyncOptions opts;
  opts.strategy = SyncStrategy::kEventual;
  opts.period_ticks = 5;
  SyncServer sync(&server, opts);
  sync.AddClient(ids[0]);
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());  // initial sync

  // Ticks 1..3: mutations without sync traffic.
  uint64_t bytes_between = 0;
  for (int i = 0; i < 3; ++i) {
    MutateSome();
    ASSERT_TRUE(sync.SyncAll(&stats).ok());
    bytes_between += stats[0].bytes_sent;
  }
  EXPECT_EQ(bytes_between, 0u);  // inside the period: silence
  auto drift = MeasureDivergence(server, sync.client(0).world());
  EXPECT_GT(drift.position_rmse, 0.0);  // visibly stale

  // Cross the period boundary: one sync collapses divergence to zero.
  MutateSome();
  MutateSome();
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_GT(stats[0].bytes_sent, 0u);
  auto after = MeasureDivergence(server, sync.client(0).world());
  EXPECT_DOUBLE_EQ(after.position_rmse, 0.0);
}

TEST_F(SyncTest, MultipleClientsTrackIndependently) {
  SyncOptions opts;
  opts.strategy = SyncStrategy::kInterest;
  opts.interest_radius = 15.0f;
  SyncServer sync(&server, opts);
  sync.AddClient(ids[0]);   // near x=0
  sync.AddClient(ids[19]);  // near x=190
  std::vector<SyncStats> stats;
  ASSERT_TRUE(sync.SyncAll(&stats).ok());
  EXPECT_TRUE(sync.client(0).world().Has<Position>(ids[1]));
  EXPECT_FALSE(sync.client(0).world().Has<Position>(ids[18]));
  EXPECT_TRUE(sync.client(1).world().Has<Position>(ids[18]));
  EXPECT_FALSE(sync.client(1).world().Has<Position>(ids[1]));
}

}  // namespace
}  // namespace gamedb::replication
