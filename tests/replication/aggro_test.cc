#include "replication/aggro.h"

#include <gtest/gtest.h>

namespace gamedb::replication {
namespace {

TEST(ThreatTableTest, HighestThreatHolds) {
  ThreatTable table;
  EntityId tank(1, 0), dps(2, 0);
  table.OnDamage(tank, 100);
  table.OnDamage(dps, 60);
  EXPECT_EQ(table.CurrentTarget(), tank);
  EXPECT_DOUBLE_EQ(table.ThreatOf(tank), 100);
}

TEST(ThreatTableTest, StickySwitchRule) {
  ThreatTable table;  // default margin 1.1
  EntityId tank(1, 0), dps(2, 0);
  table.OnDamage(tank, 100);
  EXPECT_EQ(table.CurrentTarget(), tank);

  // dps pulls slightly ahead — but not past 110%: no switch.
  table.OnDamage(dps, 105);
  EXPECT_EQ(table.CurrentTarget(), tank);
  EXPECT_EQ(table.target_switches(), 0u);

  // dps exceeds 110% of the tank: switch.
  table.OnDamage(dps, 10);  // 115 > 110
  EXPECT_EQ(table.CurrentTarget(), dps);
  EXPECT_EQ(table.target_switches(), 1u);
}

TEST(ThreatTableTest, HealingGeneratesReducedThreat) {
  ThreatTable table;
  EntityId healer(3, 0), dps(2, 0);
  table.OnHeal(healer, 100);  // 50 threat at default 0.5 weight
  table.OnDamage(dps, 40);
  EXPECT_EQ(table.CurrentTarget(), healer);  // healers pull first!
  table.OnDamage(dps, 30);                   // 70 > 50*1.1
  EXPECT_EQ(table.CurrentTarget(), dps);
}

TEST(ThreatTableTest, TauntJumpsQueue) {
  ThreatTable table;
  EntityId tank(1, 0), dps(2, 0);
  table.OnDamage(dps, 500);
  EXPECT_EQ(table.CurrentTarget(), dps);
  table.OnTaunt(tank);
  EXPECT_EQ(table.CurrentTarget(), tank);
  EXPECT_GE(table.ThreatOf(tank), 500 * 1.1);
}

TEST(ThreatTableTest, RemoveParticipantRetargets) {
  ThreatTable table;
  EntityId a(1, 0), b(2, 0);
  table.OnDamage(a, 100);
  table.OnDamage(b, 50);
  EXPECT_EQ(table.CurrentTarget(), a);
  table.RemoveParticipant(a);  // a died
  EXPECT_EQ(table.CurrentTarget(), b);
  table.RemoveParticipant(b);
  EXPECT_FALSE(table.CurrentTarget().valid());
}

TEST(ThreatTableTest, DecayErodesThreat) {
  AggroOptions opts;
  opts.decay_per_tick = 0.1;
  ThreatTable table(opts);
  EntityId a(1, 0);
  table.OnDamage(a, 100);
  table.Tick();
  EXPECT_DOUBLE_EQ(table.ThreatOf(a), 90.0);
  table.Tick();
  EXPECT_DOUBLE_EQ(table.ThreatOf(a), 81.0);
}

TEST(ThreatTableTest, NegativeAmountsIgnored) {
  ThreatTable table;
  EntityId a(1, 0);
  table.OnDamage(a, -5);
  table.OnHeal(a, 0);
  EXPECT_EQ(table.participant_count(), 0u);
}

class SpatialTargetingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardComponents();
    npc = world.Create();
    world.Set(npc, Position{{0, 0, 0}});
    world.Set(npc, Faction{0});
    world.Set(npc, Health{100, 100});
  }

  EntityId Enemy(Vec3 pos, float hp = 100) {
    EntityId e = world.Create();
    world.Set(e, Position{pos});
    world.Set(e, Faction{1});
    world.Set(e, Health{hp, 100});
    return e;
  }

  World world;
  EntityId npc;
};

TEST_F(SpatialTargetingTest, PicksNearestLivingEnemy) {
  EntityId far = Enemy({50, 0, 0});
  EntityId near = Enemy({5, 0, 0});
  EXPECT_EQ(SelectNearestEnemy(world, npc), near);
  // Kill the near one: falls to the far one.
  world.Patch<Health>(near, [](Health& h) { h.hp = 0; });
  EXPECT_EQ(SelectNearestEnemy(world, npc), far);
}

TEST_F(SpatialTargetingTest, IgnoresAlliesAndSelf) {
  EntityId ally = world.Create();
  world.Set(ally, Position{{1, 0, 0}});
  world.Set(ally, Faction{0});
  world.Set(ally, Health{100, 100});
  EXPECT_FALSE(SelectNearestEnemy(world, npc).valid());
  EntityId enemy = Enemy({30, 0, 0});
  EXPECT_EQ(SelectNearestEnemy(world, npc), enemy);
}

TEST_F(SpatialTargetingTest, SpatialTargetingPingPongsWhereAggroHolds) {
  // Two melee dancers swap distance every tick. Nearest-enemy retargets
  // every swap; the threat table holds one target — the E11 claim in
  // miniature.
  EntityId a = Enemy({2, 0, 0});
  EntityId b = Enemy({3, 0, 0});
  ThreatTable threat;
  threat.OnDamage(a, 100);
  threat.OnDamage(b, 95);

  int spatial_switches = 0;
  EntityId last_spatial;
  for (int tick = 0; tick < 10; ++tick) {
    // Dancers swap positions each tick.
    world.Patch<Position>(a, [&](Position& p) {
      p.value.x = (tick % 2 == 0) ? 3.0f : 2.0f;
    });
    world.Patch<Position>(b, [&](Position& p) {
      p.value.x = (tick % 2 == 0) ? 2.0f : 3.0f;
    });
    EntityId spatial = SelectNearestEnemy(world, npc);
    if (tick > 0 && spatial != last_spatial) ++spatial_switches;
    last_spatial = spatial;
    (void)threat.CurrentTarget();
  }
  EXPECT_GE(spatial_switches, 8);
  EXPECT_EQ(threat.target_switches(), 0u);
}

}  // namespace
}  // namespace gamedb::replication
