#include "content/xml.h"

#include <gtest/gtest.h>

namespace gamedb::content {
namespace {

std::unique_ptr<XmlNode> MustParse(std::string_view src) {
  auto r = ParseXml(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(XmlTest, SimpleElement) {
  auto root = MustParse("<Root/>");
  EXPECT_EQ(root->name, "Root");
  EXPECT_TRUE(root->children.empty());
  EXPECT_TRUE(root->attributes.empty());
}

TEST(XmlTest, AttributesBothQuoteStyles) {
  auto root = MustParse(R"(<Frame name="hp" width='200' deep="a'b"/>)");
  EXPECT_EQ(*root->FindAttribute("name"), "hp");
  EXPECT_EQ(*root->FindAttribute("width"), "200");
  EXPECT_EQ(*root->FindAttribute("deep"), "a'b");
  EXPECT_EQ(root->FindAttribute("missing"), nullptr);
  EXPECT_EQ(root->AttributeOr("missing", "dflt"), "dflt");
}

TEST(XmlTest, NestedChildrenAndText) {
  auto root = MustParse(
      "<A>\n"
      "  <B id=\"1\"><C/></B>\n"
      "  <B id=\"2\">hello world</B>\n"
      "</A>");
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->children[0]->name, "B");
  EXPECT_EQ(root->children[0]->children.size(), 1u);
  EXPECT_EQ(root->children[1]->text, "hello world");
  EXPECT_EQ(root->Children("B").size(), 2u);
  EXPECT_NE(root->FirstChild("B"), nullptr);
  EXPECT_EQ(root->FirstChild("Z"), nullptr);
}

TEST(XmlTest, EntitiesDecoded) {
  auto root = MustParse(
      R"(<T msg="a &lt; b &amp;&amp; c &gt; d">&quot;quoted&quot; &apos;x&apos;</T>)");
  EXPECT_EQ(*root->FindAttribute("msg"), "a < b && c > d");
  EXPECT_EQ(root->text, "\"quoted\" 'x'");
}

TEST(XmlTest, CommentsAndPrologSkipped) {
  auto root = MustParse(
      "<?xml version=\"1.0\"?>\n"
      "<!-- top comment -->\n"
      "<R><!-- inner --><X/><!-- after --></R>");
  EXPECT_EQ(root->name, "R");
  ASSERT_EQ(root->children.size(), 1u);
}

TEST(XmlTest, TypedAttributeAccessors) {
  auto root = MustParse(R"(<T n="3.5" i="42" b="true" bad="xyz"/>)");
  EXPECT_DOUBLE_EQ(*root->NumberAttribute("n"), 3.5);
  EXPECT_EQ(*root->IntAttribute("i"), 42);
  EXPECT_TRUE(*root->BoolAttribute("b"));
  EXPECT_TRUE(root->NumberAttribute("bad").status().IsParseError());
  EXPECT_TRUE(root->NumberAttribute("missing").status().IsNotFound());
  EXPECT_TRUE(root->IntAttribute("n").status().IsParseError());
  EXPECT_TRUE(root->BoolAttribute("i").status().IsParseError());
}

TEST(XmlTest, LineNumbersOnNodes) {
  auto root = MustParse("<A>\n<B/>\n<C/></A>");
  EXPECT_EQ(root->line, 1);
  EXPECT_EQ(root->children[0]->line, 2);
  EXPECT_EQ(root->children[1]->line, 3);
}

TEST(XmlTest, MalformedInputsRejected) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<A>").ok());                     // unterminated
  EXPECT_FALSE(ParseXml("<A></B>").ok());                 // mismatched
  EXPECT_FALSE(ParseXml("<A x=1/>").ok());                // unquoted attr
  EXPECT_FALSE(ParseXml("<A x=\"1\" x=\"2\"/>").ok());    // duplicate attr
  EXPECT_FALSE(ParseXml("<A/><B/>").ok());                // two roots
  EXPECT_FALSE(ParseXml("<A>&bogus;</A>").ok());          // unknown entity
  EXPECT_FALSE(ParseXml("<A x=\"unterminated/>").ok());
}

TEST(XmlTest, ErrorsCarryLineNumbers) {
  auto r = ParseXml("<A>\n  <B>\n</A>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace gamedb::content
