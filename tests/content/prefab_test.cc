#include "content/prefab.h"

#include <gtest/gtest.h>

#include "core/aggregate.h"

namespace gamedb::content {
namespace {

constexpr char kLibrary[] = R"(
<Prefabs>
  <Prefab name="beast">
    <Component type="Health" hp="50" max_hp="50"/>
    <Component type="Position" value="1,2,3"/>
    <Component type="Faction" team="2"/>
  </Prefab>
  <Prefab name="wolf" extends="beast">
    <Component type="Health" hp="35" max_hp="35"/>
    <Component type="Combat" attack="7" range="2.5"/>
    <Component type="ScriptRef" script_name="wolf.gsl"/>
  </Prefab>
  <Prefab name="alpha_wolf" extends="wolf">
    <Component type="Combat" attack="15" range="2.5"/>
  </Prefab>
</Prefabs>)";

class PrefabTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }
  World world;
};

TEST_F(PrefabTest, LoadParsesAllPrefabs) {
  auto lib = PrefabLibrary::Load(kLibrary);
  ASSERT_TRUE(lib.ok()) << lib.status().ToString();
  EXPECT_EQ(lib->size(), 3u);
  EXPECT_TRUE(lib->Has("wolf"));
  EXPECT_FALSE(lib->Has("dragon"));
}

TEST_F(PrefabTest, InstantiateSetsFields) {
  auto lib = PrefabLibrary::Load(kLibrary);
  ASSERT_TRUE(lib.ok());
  auto e = lib->Instantiate(&world, "beast");
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(world.Alive(*e));
  ASSERT_TRUE(world.Has<Health>(*e));
  EXPECT_FLOAT_EQ(world.Get<Health>(*e)->hp, 50);
  EXPECT_EQ(world.Get<Position>(*e)->value, Vec3(1, 2, 3));
  EXPECT_EQ(world.Get<Faction>(*e)->team, 2);
}

TEST_F(PrefabTest, InheritanceAppliesBaseThenOverrides) {
  auto lib = PrefabLibrary::Load(kLibrary);
  ASSERT_TRUE(lib.ok());
  auto wolf = lib->Instantiate(&world, "wolf");
  ASSERT_TRUE(wolf.ok());
  // Overridden by wolf:
  EXPECT_FLOAT_EQ(world.Get<Health>(*wolf)->hp, 35);
  // Inherited from beast:
  EXPECT_EQ(world.Get<Position>(*wolf)->value, Vec3(1, 2, 3));
  EXPECT_EQ(world.Get<Faction>(*wolf)->team, 2);
  // Added by wolf:
  EXPECT_FLOAT_EQ(world.Get<Combat>(*wolf)->attack, 7);
  EXPECT_EQ(world.Get<ScriptRef>(*wolf)->script_name, "wolf.gsl");

  // Two levels deep.
  auto alpha = lib->Instantiate(&world, "alpha_wolf");
  ASSERT_TRUE(alpha.ok());
  EXPECT_FLOAT_EQ(world.Get<Combat>(*alpha)->attack, 15);
  EXPECT_FLOAT_EQ(world.Get<Health>(*alpha)->hp, 35);  // from wolf
}

TEST_F(PrefabTest, UnknownPrefabFails) {
  auto lib = PrefabLibrary::Load(kLibrary);
  ASSERT_TRUE(lib.ok());
  size_t before = world.AliveCount();
  EXPECT_TRUE(lib->Instantiate(&world, "dragon").status().IsNotFound());
  EXPECT_EQ(world.AliveCount(), before);  // failed instantiate cleans up
}

TEST_F(PrefabTest, LoadRejectsBadContent) {
  EXPECT_TRUE(PrefabLibrary::Load("<Wrong/>").status().IsInvalidArgument());
  // Unknown component type.
  EXPECT_TRUE(PrefabLibrary::Load(R"(
      <Prefabs><Prefab name="x">
        <Component type="Ghost" hp="1"/>
      </Prefab></Prefabs>)")
                  .status()
                  .IsNotFound());
  // Unknown field.
  EXPECT_TRUE(PrefabLibrary::Load(R"(
      <Prefabs><Prefab name="x">
        <Component type="Health" mana="1"/>
      </Prefab></Prefabs>)")
                  .status()
                  .IsNotFound());
  // Bad field value.
  EXPECT_TRUE(PrefabLibrary::Load(R"(
      <Prefabs><Prefab name="x">
        <Component type="Health" hp="lots"/>
      </Prefab></Prefabs>)")
                  .status()
                  .IsParseError());
  // Unknown extends target.
  EXPECT_TRUE(PrefabLibrary::Load(R"(
      <Prefabs><Prefab name="x" extends="nothing"/></Prefabs>)")
                  .status()
                  .IsNotFound());
  // Inheritance cycle.
  EXPECT_TRUE(PrefabLibrary::Load(R"(
      <Prefabs>
        <Prefab name="a" extends="b"/>
        <Prefab name="b" extends="a"/>
      </Prefabs>)")
                  .status()
                  .IsInvalidArgument());
  // Duplicate names.
  EXPECT_TRUE(PrefabLibrary::Load(R"(
      <Prefabs><Prefab name="a"/><Prefab name="a"/></Prefabs>)")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(PrefabTest, ApplyToExistingEntity) {
  auto lib = PrefabLibrary::Load(kLibrary);
  ASSERT_TRUE(lib.ok());
  EntityId e = world.Create();
  world.Set(e, Actor{7, 100, 1, true});  // pre-existing component survives
  ASSERT_TRUE(lib->ApplyTo(&world, e, "beast").ok());
  EXPECT_TRUE(world.Has<Health>(e));
  EXPECT_EQ(world.Get<Actor>(e)->account_id, 7);
  EXPECT_TRUE(lib->ApplyTo(&world, EntityId(99, 9), "beast")
                  .IsInvalidArgument());
}

TEST_F(PrefabTest, PrefabAppliedFieldsVisibleToAggregates) {
  auto lib = PrefabLibrary::Load(kLibrary);
  ASSERT_TRUE(lib.ok());
  SumAggregate<Health> total(world, [](const Health& h) { return h.hp; });
  ASSERT_TRUE(lib->Instantiate(&world, "wolf").ok());
  ASSERT_TRUE(lib->Instantiate(&world, "beast").ok());
  EXPECT_DOUBLE_EQ(total.sum(), 35.0 + 50.0);
}

}  // namespace
}  // namespace gamedb::content
