#include "content/schema.h"

#include <gtest/gtest.h>

namespace gamedb::content {
namespace {

class SchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema.Element("Quest")
        .RequiredAttr("name", AttrType::kString)
        .OptionalAttr("level", AttrType::kInt)
        .Child("Objective", 1, 3)
        .Child("Reward", 0, 1);
    schema.Element("Objective")
        .RequiredAttr("kind", AttrType::kString)
        .RequiredAttr("count", AttrType::kInt);
    schema.Element("Reward").OptionalAttr("gold", AttrType::kNumber);
  }

  Status Check(std::string_view xml) {
    auto parsed = ParseXml(xml);
    if (!parsed.ok()) return parsed.status();
    return schema.Validate(**parsed);
  }

  Schema schema;
};

TEST_F(SchemaTest, ValidDocumentPasses) {
  EXPECT_TRUE(Check(R"(
    <Quest name="wolves" level="5">
      <Objective kind="kill" count="10"/>
      <Objective kind="collect" count="3"/>
      <Reward gold="25.5"/>
    </Quest>)")
                  .ok());
}

TEST_F(SchemaTest, MissingRequiredAttr) {
  Status st = Check(R"(<Quest><Objective kind="kill" count="1"/></Quest>)");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("name"), std::string::npos);
}

TEST_F(SchemaTest, WrongAttrType) {
  Status st = Check(R"(
    <Quest name="q" level="not_a_number">
      <Objective kind="kill" count="1"/>
    </Quest>)");
  EXPECT_FALSE(st.ok());
}

TEST_F(SchemaTest, UnknownAttrRejected) {
  Status st = Check(R"(
    <Quest name="q" bogus="1"><Objective kind="k" count="1"/></Quest>)");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("bogus"), std::string::npos);
}

TEST_F(SchemaTest, UnknownAttrAllowedWhenOpened) {
  schema.Element("Quest").AllowUnknownAttrs();
  EXPECT_TRUE(Check(R"(
    <Quest name="q" extension="1"><Objective kind="k" count="1"/></Quest>)")
                  .ok());
}

TEST_F(SchemaTest, CardinalityEnforced) {
  // No objectives: below min.
  EXPECT_FALSE(Check(R"(<Quest name="q"/>)").ok());
  // Four objectives: above max.
  EXPECT_FALSE(Check(R"(
    <Quest name="q">
      <Objective kind="k" count="1"/><Objective kind="k" count="1"/>
      <Objective kind="k" count="1"/><Objective kind="k" count="1"/>
    </Quest>)")
                   .ok());
  // Two rewards: above max 1.
  EXPECT_FALSE(Check(R"(
    <Quest name="q">
      <Objective kind="k" count="1"/><Reward/><Reward/>
    </Quest>)")
                   .ok());
}

TEST_F(SchemaTest, UnknownElementRejected) {
  Status st = Check(R"(
    <Quest name="q"><Objective kind="k" count="1"/><Imposter/></Quest>)");
  ASSERT_FALSE(st.ok());
  // Rejected either as unexpected child or unknown element.
}

TEST_F(SchemaTest, ValidationRecursesIntoChildren) {
  // The nested Objective is missing `count`.
  Status st = Check(R"(
    <Quest name="q"><Objective kind="k"/></Quest>)");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("count"), std::string::npos);
}

}  // namespace
}  // namespace gamedb::content
