#include "content/data_table.h"

#include <gtest/gtest.h>

#include <map>

namespace gamedb::content {
namespace {

constexpr char kTables[] = R"(
<LootTables>
  <LootTable name="boss">
    <Entry item="epic_sword" weight="1"/>
    <Entry item="rare_gem" weight="9"/>
    <Entry item="gold_pile" weight="90" min="50" max="200"/>
  </LootTable>
  <LootTable name="trash">
    <Entry item="rag" weight="1"/>
  </LootTable>
</LootTables>)";

TEST(LootTableTest, LoadsAndLooksUp) {
  auto set = LootTableSet::Load(kTables);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->size(), 2u);
  ASSERT_NE(set->Find("boss"), nullptr);
  EXPECT_EQ(set->Find("missing"), nullptr);
  EXPECT_EQ(set->Find("boss")->entries().size(), 3u);
}

TEST(LootTableTest, ProbabilitiesFollowWeights) {
  auto set = LootTableSet::Load(kTables);
  ASSERT_TRUE(set.ok());
  const LootTable* boss = set->Find("boss");
  EXPECT_DOUBLE_EQ(boss->ProbabilityOf("epic_sword"), 0.01);
  EXPECT_DOUBLE_EQ(boss->ProbabilityOf("rare_gem"), 0.09);
  EXPECT_DOUBLE_EQ(boss->ProbabilityOf("gold_pile"), 0.90);
  EXPECT_DOUBLE_EQ(boss->ProbabilityOf("unknown"), 0.0);
}

TEST(LootTableTest, RollDistributionMatchesWeights) {
  auto set = LootTableSet::Load(kTables);
  ASSERT_TRUE(set.ok());
  const LootTable* boss = set->Find("boss");
  Rng rng(2026);
  std::map<std::string, int> counts;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    LootDrop drop = boss->Roll(&rng);
    counts[drop.item] += 1;
    if (drop.item == "gold_pile") {
      EXPECT_GE(drop.count, 50);
      EXPECT_LE(drop.count, 200);
    } else {
      EXPECT_EQ(drop.count, 1);
    }
  }
  EXPECT_NEAR(counts["epic_sword"] / double(trials), 0.01, 0.005);
  EXPECT_NEAR(counts["rare_gem"] / double(trials), 0.09, 0.01);
  EXPECT_NEAR(counts["gold_pile"] / double(trials), 0.90, 0.01);
}

TEST(LootTableTest, SingleEntryAlwaysDrops) {
  auto set = LootTableSet::Load(kTables);
  ASSERT_TRUE(set.ok());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(set->Find("trash")->Roll(&rng).item, "rag");
  }
}

TEST(LootTableTest, RejectsBadContent) {
  EXPECT_FALSE(LootTableSet::Load("<Nope/>").ok());
  EXPECT_FALSE(LootTableSet::Load(
                   R"(<LootTables><LootTable name="x"/></LootTables>)")
                   .ok());  // empty table
  EXPECT_FALSE(
      LootTableSet::Load(R"(
      <LootTables><LootTable name="x">
        <Entry item="a" weight="0"/>
      </LootTable></LootTables>)")
          .ok());  // zero weight
  EXPECT_FALSE(
      LootTableSet::Load(R"(
      <LootTables><LootTable name="x">
        <Entry item="a" min="5" max="2"/>
      </LootTable></LootTables>)")
          .ok());  // min > max
  EXPECT_FALSE(
      LootTableSet::Load(R"(
      <LootTables>
        <LootTable name="x"><Entry item="a"/></LootTable>
        <LootTable name="x"><Entry item="b"/></LootTable>
      </LootTables>)")
          .ok());  // duplicate name
}

}  // namespace
}  // namespace gamedb::content
