#include "content/ui_layout.h"

#include <gtest/gtest.h>

namespace gamedb::content {
namespace {

UiLayout MustLoad(std::string_view xml) {
  auto r = UiLayout::Load(xml);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(UiLayoutTest, TopLeftAnchorWithOffset) {
  UiLayout ui = MustLoad(R"(
    <Ui width="800" height="600">
      <Frame name="panel" width="200" height="100" anchor="TOPLEFT"
             x="10" y="20"/>
    </Ui>)");
  auto rect = ui.RectOf("panel");
  ASSERT_TRUE(rect.ok());
  EXPECT_FLOAT_EQ(rect->x, 10);
  EXPECT_FLOAT_EQ(rect->y, 20);
  EXPECT_FLOAT_EQ(rect->width, 200);
  EXPECT_FLOAT_EQ(rect->height, 100);
}

TEST(UiLayoutTest, CenterAnchorCentersTheFrame) {
  UiLayout ui = MustLoad(R"(
    <Ui width="800" height="600">
      <Frame name="dialog" width="400" height="200" anchor="CENTER"/>
    </Ui>)");
  auto rect = ui.RectOf("dialog");
  ASSERT_TRUE(rect.ok());
  EXPECT_FLOAT_EQ(rect->x, 200);  // (800-400)/2
  EXPECT_FLOAT_EQ(rect->y, 200);  // (600-200)/2
}

TEST(UiLayoutTest, BottomRightHugsCorner) {
  UiLayout ui = MustLoad(R"(
    <Ui width="800" height="600">
      <Frame name="minimap" width="150" height="150" anchor="BOTTOMRIGHT"
             x="-10" y="-10"/>
    </Ui>)");
  auto rect = ui.RectOf("minimap");
  ASSERT_TRUE(rect.ok());
  EXPECT_FLOAT_EQ(rect->right(), 790);
  EXPECT_FLOAT_EQ(rect->bottom(), 590);
}

TEST(UiLayoutTest, NestedFramesAnchorToParent) {
  UiLayout ui = MustLoad(R"(
    <Ui width="800" height="600">
      <Frame name="panel" width="200" height="100" anchor="TOPLEFT"
             x="100" y="100">
        <Frame name="label" width="50" height="20" anchor="CENTER"/>
        <Frame name="close" width="16" height="16" anchor="TOPRIGHT"/>
      </Frame>
    </Ui>)");
  auto label = ui.RectOf("label");
  ASSERT_TRUE(label.ok());
  EXPECT_FLOAT_EQ(label->x, 100 + (200 - 50) / 2.0f);
  EXPECT_FLOAT_EQ(label->y, 100 + (100 - 20) / 2.0f);
  auto close = ui.RectOf("close");
  ASSERT_TRUE(close.ok());
  EXPECT_FLOAT_EQ(close->right(), 300);
  EXPECT_FLOAT_EQ(close->y, 100);
}

TEST(UiLayoutTest, HitTestPrefersDeepestFrame) {
  UiLayout ui = MustLoad(R"(
    <Ui width="800" height="600">
      <Frame name="panel" width="200" height="200" anchor="TOPLEFT">
        <Frame name="button" width="50" height="50" anchor="TOPLEFT"
               x="10" y="10"/>
      </Frame>
    </Ui>)");
  EXPECT_EQ(ui.HitTest(30, 30), "button");
  EXPECT_EQ(ui.HitTest(150, 150), "panel");
  EXPECT_EQ(ui.HitTest(700, 500), "");
}

TEST(UiLayoutTest, ValidationFailures) {
  EXPECT_FALSE(UiLayout::Load("<NotUi width=\"1\" height=\"1\"/>").ok());
  // Missing size.
  EXPECT_FALSE(UiLayout::Load(R"(
      <Ui width="800" height="600"><Frame name="x" width="10"/></Ui>)")
                   .ok());
  // Unknown anchor.
  EXPECT_FALSE(UiLayout::Load(R"(
      <Ui width="800" height="600">
        <Frame name="x" width="10" height="10" anchor="NOWHERE"/>
      </Ui>)")
                   .ok());
  // Duplicate names.
  EXPECT_FALSE(UiLayout::Load(R"(
      <Ui width="800" height="600">
        <Frame name="x" width="10" height="10"/>
        <Frame name="x" width="10" height="10"/>
      </Ui>)")
                   .ok());
  // Missing frame name.
  EXPECT_FALSE(UiLayout::Load(R"(
      <Ui width="800" height="600"><Frame width="10" height="10"/></Ui>)")
                   .ok());
  // Negative size.
  EXPECT_FALSE(UiLayout::Load(R"(
      <Ui width="800" height="600">
        <Frame name="x" width="-10" height="10"/>
      </Ui>)")
                   .ok());
}

TEST(UiLayoutTest, UnknownFrameLookupIsNotFound) {
  UiLayout ui = MustLoad(R"(<Ui width="10" height="10"/>)");
  EXPECT_TRUE(ui.RectOf("nope").status().IsNotFound());
  EXPECT_EQ(ui.FrameCount(), 0u);
}

}  // namespace
}  // namespace gamedb::content
