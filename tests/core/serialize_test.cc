#include "core/serialize.h"

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/rng.h"

namespace gamedb {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }

  // Builds a world with a mix of components and some destroyed slots.
  void BuildSample(World* w, std::vector<EntityId>* out) {
    Rng rng(99);
    std::vector<EntityId> all;
    for (int i = 0; i < 30; ++i) {
      EntityId e = w->Create();
      all.push_back(e);
      w->Set(e, Position{{float(i), float(i * 2), 0}});
      if (i % 2 == 0) w->Set(e, Health{float(100 - i), 100});
      if (i % 3 == 0) {
        Actor a;
        a.account_id = i;
        a.gold = i * 10;
        a.is_player = (i % 2 == 0);
        w->Set(e, a);
      }
      if (i % 5 == 0) w->Set(e, ScriptRef{"script_" + std::to_string(i)});
    }
    // Destroy a few to create generation gaps.
    w->Destroy(all[4]);
    w->Destroy(all[11]);
    EntityId reused = w->Create();  // reuses a slot with a new generation
    w->Set(reused, Health{42, 100});
    for (EntityId e : all) {
      if (w->Alive(e)) out->push_back(e);
    }
    out->push_back(reused);
    w->SetTick(777);
  }
};

TEST_F(SerializeTest, SnapshotRoundTripPreservesEverything) {
  World src;
  std::vector<EntityId> live;
  BuildSample(&src, &live);

  std::string buf;
  EncodeWorldSnapshot(src, &buf);

  World dst;
  ASSERT_TRUE(DecodeWorldSnapshot(buf, &dst).ok());

  EXPECT_EQ(dst.tick(), 777u);
  EXPECT_EQ(dst.AliveCount(), src.AliveCount());
  for (EntityId e : live) {
    ASSERT_TRUE(dst.Alive(e)) << e.ToString();
    const Position* sp = src.Get<Position>(e);
    const Position* dp = dst.Get<Position>(e);
    ASSERT_EQ(sp == nullptr, dp == nullptr);
    if (sp) {
      EXPECT_EQ(sp->value, dp->value);
    }
    const Health* sh = src.Get<Health>(e);
    const Health* dh = dst.Get<Health>(e);
    ASSERT_EQ(sh == nullptr, dh == nullptr);
    if (sh) {
      EXPECT_FLOAT_EQ(sh->hp, dh->hp);
      EXPECT_FLOAT_EQ(sh->max_hp, dh->max_hp);
    }
    const Actor* sa = src.Get<Actor>(e);
    const Actor* da = dst.Get<Actor>(e);
    ASSERT_EQ(sa == nullptr, da == nullptr);
    if (sa) {
      EXPECT_EQ(sa->gold, da->gold);
      EXPECT_EQ(sa->account_id, da->account_id);
      EXPECT_EQ(sa->is_player, da->is_player);
    }
    const ScriptRef* ss = src.Get<ScriptRef>(e);
    const ScriptRef* ds = dst.Get<ScriptRef>(e);
    ASSERT_EQ(ss == nullptr, ds == nullptr);
    if (ss) {
      EXPECT_EQ(ss->script_name, ds->script_name);
    }
  }
}

TEST_F(SerializeTest, SnapshotIsDeterministic) {
  World a, b;
  std::vector<EntityId> live_a, live_b;
  BuildSample(&a, &live_a);
  BuildSample(&b, &live_b);
  std::string buf_a, buf_b;
  EncodeWorldSnapshot(a, &buf_a);
  EncodeWorldSnapshot(b, &buf_b);
  EXPECT_EQ(buf_a, buf_b);
}

TEST_F(SerializeTest, GenerationsSurviveRoundTrip) {
  World src;
  EntityId e0 = src.Create();
  src.Destroy(e0);
  EntityId e1 = src.Create();  // same slot, generation 1
  src.Set(e1, Health{1, 1});
  ASSERT_EQ(e1.index, e0.index);

  std::string buf;
  EncodeWorldSnapshot(src, &buf);
  World dst;
  ASSERT_TRUE(DecodeWorldSnapshot(buf, &dst).ok());
  EXPECT_FALSE(dst.Alive(e0));  // stale handle must stay stale
  EXPECT_TRUE(dst.Alive(e1));
}

TEST_F(SerializeTest, CorruptionDetected) {
  World src;
  std::vector<EntityId> live;
  BuildSample(&src, &live);
  std::string buf;
  EncodeWorldSnapshot(src, &buf);

  // Flip a byte in the middle.
  std::string corrupted = buf;
  corrupted[buf.size() / 2] = static_cast<char>(corrupted[buf.size() / 2] ^ 0x40);
  World dst;
  EXPECT_TRUE(DecodeWorldSnapshot(corrupted, &dst).IsCorruption());

  // Truncation.
  World dst2;
  EXPECT_TRUE(DecodeWorldSnapshot(std::string_view(buf).substr(0, buf.size() - 5),
                                  &dst2)
                  .IsCorruption());
  // Empty.
  World dst3;
  EXPECT_TRUE(DecodeWorldSnapshot("", &dst3).IsCorruption());
}

TEST_F(SerializeTest, BadMagicRejected) {
  World src;
  std::string buf;
  EncodeWorldSnapshot(src, &buf);
  buf[0] = 'X';
  // Fix up the CRC so only the magic is wrong.
  buf.resize(buf.size() - 4);
  uint32_t crc = Crc32c(buf.data(), buf.size());
  PutFixed32(&buf, MaskCrc(crc));
  World dst;
  Status st = DecodeWorldSnapshot(buf, &dst);
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("magic"), std::string::npos);
}

TEST_F(SerializeTest, EmptyWorldRoundTrips) {
  World src;
  src.SetTick(5);
  std::string buf;
  EncodeWorldSnapshot(src, &buf);
  World dst;
  ASSERT_TRUE(DecodeWorldSnapshot(buf, &dst).ok());
  EXPECT_EQ(dst.AliveCount(), 0u);
  EXPECT_EQ(dst.tick(), 5u);
}

TEST_F(SerializeTest, EntityRecordRoundTrip) {
  World w;
  EntityId e = w.Create();
  w.Set(e, Health{33, 100});
  w.Set(e, Position{{7, 8, 9}});

  std::string rec;
  EncodeEntityRecord(w, e, &rec);

  World w2;
  EntityId e2 = w2.Create();
  ASSERT_TRUE(DecodeEntityRecord(rec, &w2, e2).ok());
  ASSERT_NE(w2.Get<Health>(e2), nullptr);
  EXPECT_FLOAT_EQ(w2.Get<Health>(e2)->hp, 33);
  ASSERT_NE(w2.Get<Position>(e2), nullptr);
  EXPECT_EQ(w2.Get<Position>(e2)->value, Vec3(7, 8, 9));
}

TEST_F(SerializeTest, EntityRecordOnDeadEntityFails) {
  World w;
  EntityId e = w.Create();
  w.Set(e, Health{1, 1});
  std::string rec;
  EncodeEntityRecord(w, e, &rec);
  World w2;
  EXPECT_TRUE(DecodeEntityRecord(rec, &w2, EntityId(5, 0)).IsInvalidArgument());
}

TEST_F(SerializeTest, EntityRecordLeavesOtherComponentsAlone) {
  World w;
  EntityId e = w.Create();
  w.Set(e, Health{10, 100});
  std::string rec;
  EncodeEntityRecord(w, e, &rec);  // record contains Health only

  World w2;
  EntityId e2 = w2.Create();
  w2.Set(e2, Position{{1, 1, 1}});
  ASSERT_TRUE(DecodeEntityRecord(rec, &w2, e2).ok());
  EXPECT_NE(w2.Get<Position>(e2), nullptr);  // untouched
  EXPECT_FLOAT_EQ(w2.Get<Health>(e2)->hp, 10);
}

}  // namespace
}  // namespace gamedb
