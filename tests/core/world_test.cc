#include "core/world.h"

#include <gtest/gtest.h>

#include <vector>

namespace gamedb {
namespace {

class WorldTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }
  World world;
};

TEST_F(WorldTest, CreateDestroyLifecycle) {
  EntityId e = world.Create();
  EXPECT_TRUE(world.Alive(e));
  EXPECT_EQ(world.AliveCount(), 1u);
  world.Destroy(e);
  EXPECT_FALSE(world.Alive(e));
  EXPECT_EQ(world.AliveCount(), 0u);
  world.Destroy(e);  // double-destroy is a no-op
  EXPECT_EQ(world.AliveCount(), 0u);
}

TEST_F(WorldTest, SlotReuseBumpsGeneration) {
  EntityId a = world.Create();
  world.Destroy(a);
  EntityId b = world.Create();
  EXPECT_EQ(b.index, a.index);
  EXPECT_NE(b.generation, a.generation);
  EXPECT_FALSE(world.Alive(a));  // stale handle stays dead
  EXPECT_TRUE(world.Alive(b));
}

TEST_F(WorldTest, ComponentsFollowEntity) {
  EntityId e = world.Create();
  world.Set(e, Health{50, 100});
  world.Set(e, Position{{1, 2, 3}});
  EXPECT_TRUE(world.Has<Health>(e));
  EXPECT_TRUE(world.Has<Position>(e));
  ASSERT_NE(world.Get<Health>(e), nullptr);
  EXPECT_FLOAT_EQ(world.Get<Health>(e)->hp, 50);

  world.Destroy(e);
  EXPECT_EQ(world.Get<Health>(e), nullptr);
  EXPECT_EQ(world.Table<Health>().Size(), 0u);
  EXPECT_EQ(world.Table<Position>().Size(), 0u);
}

TEST_F(WorldTest, RemoveSingleComponent) {
  EntityId e = world.Create();
  world.Set(e, Health{});
  world.Set(e, Position{});
  EXPECT_TRUE(world.Remove<Health>(e));
  EXPECT_FALSE(world.Remove<Health>(e));
  EXPECT_TRUE(world.Alive(e));
  EXPECT_TRUE(world.Has<Position>(e));
}

TEST_F(WorldTest, PatchThroughWorld) {
  EntityId e = world.Create();
  world.Set(e, Health{10, 100});
  EXPECT_TRUE(world.Patch<Health>(e, [](Health& h) { h.hp += 5; }));
  EXPECT_FLOAT_EQ(world.Get<Health>(e)->hp, 15);
}

TEST_F(WorldTest, CreateWithIdForRecovery) {
  EntityId e(10, 3);
  ASSERT_TRUE(world.CreateWithId(e).ok());
  EXPECT_TRUE(world.Alive(e));
  // Same slot alive again fails.
  EXPECT_TRUE(world.CreateWithId(EntityId(10, 4)).IsInvalidArgument());
  // Fresh Create() must not collide with recovered slots.
  for (int i = 0; i < 20; ++i) {
    EntityId f = world.Create();
    EXPECT_TRUE(world.Alive(f));
    EXPECT_NE(f.index, e.index);
  }
  EXPECT_TRUE(world.CreateWithId(EntityId::Invalid()).IsInvalidArgument());
}

TEST_F(WorldTest, ForEachEntityVisitsExactlyLive) {
  std::vector<EntityId> created;
  for (int i = 0; i < 10; ++i) created.push_back(world.Create());
  world.Destroy(created[3]);
  world.Destroy(created[7]);
  size_t count = 0;
  world.ForEachEntity([&](EntityId e) {
    EXPECT_TRUE(world.Alive(e));
    ++count;
  });
  EXPECT_EQ(count, 8u);
}

TEST_F(WorldTest, StoreByNameCreatesRegisteredTables) {
  ComponentStore* store = world.StoreByName("Health");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->Size(), 0u);
  EXPECT_EQ(world.StoreByName("NoSuchComponent"), nullptr);

  EntityId e = world.Create();
  void* comp = store->EmplaceDefault(e);
  ASSERT_NE(comp, nullptr);
  EXPECT_TRUE(world.Has<Health>(e));
  EXPECT_FLOAT_EQ(world.Get<Health>(e)->hp, 100);  // default constructed
}

TEST_F(WorldTest, TickAdvances) {
  EXPECT_EQ(world.tick(), 0u);
  world.AdvanceTick();
  world.AdvanceTick();
  EXPECT_EQ(world.tick(), 2u);
  world.SetTick(100);
  EXPECT_EQ(world.tick(), 100u);
}

TEST_F(WorldTest, ClearResetsEverything) {
  EntityId e = world.Create();
  world.Set(e, Health{});
  world.AdvanceTick();
  world.Clear();
  EXPECT_EQ(world.AliveCount(), 0u);
  EXPECT_FALSE(world.Alive(e));
  EXPECT_EQ(world.tick(), 0u);
  EXPECT_EQ(world.Table<Health>().Size(), 0u);
  // World remains usable.
  EntityId f = world.Create();
  EXPECT_TRUE(world.Alive(f));
}

TEST_F(WorldTest, ForEachStoreSeesCreatedTables) {
  EntityId e = world.Create();
  world.Set(e, Health{});
  world.Set(e, Position{});
  std::vector<std::string> names;
  world.ForEachStore([&](const TypeInfo& info, ComponentStore&) {
    names.push_back(info.name());
  });
  EXPECT_GE(names.size(), 2u);
  EXPECT_NE(std::find(names.begin(), names.end(), "Health"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Position"), names.end());
}

}  // namespace
}  // namespace gamedb
