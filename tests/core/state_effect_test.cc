#include "core/state_effect.h"

#include <gtest/gtest.h>

#include <atomic>

namespace gamedb {
namespace {

class StateEffectTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }
  World world;
};

TEST_F(StateEffectTest, EffectCombinesPerEntity) {
  Effect<double> dmg(2);
  EntityId a(0, 0), b(1, 0);
  dmg.Contribute(0, a, 5.0);
  dmg.Contribute(1, a, 7.0);
  dmg.Contribute(0, b, 1.0);
  EXPECT_EQ(dmg.contribution_count(), 3u);

  std::unordered_map<EntityId, double> out;
  dmg.Drain([&](EntityId e, const double& v) { out[e] = v; });
  EXPECT_DOUBLE_EQ(out[a], 12.0);
  EXPECT_DOUBLE_EQ(out[b], 1.0);
  EXPECT_EQ(dmg.contribution_count(), 0u);  // drained
}

TEST_F(StateEffectTest, CustomCombineMonoid) {
  // Max-combine: "strongest taunt wins".
  Effect<double> taunt(1, [](double& acc, const double& v) {
    acc = std::max(acc, v);
  });
  EntityId boss(0, 0);
  taunt.Contribute(0, boss, 3.0);
  taunt.Contribute(0, boss, 9.0);
  taunt.Contribute(0, boss, 5.0);
  double result = 0;
  taunt.Drain([&](EntityId, const double& v) { result = v; });
  EXPECT_DOUBLE_EQ(result, 9.0);
}

TEST_F(StateEffectTest, DrainVisitsInFirstContributionOrder) {
  Effect<int> eff(1, [](int& a, const int& b) { a += b; });
  eff.Contribute(0, EntityId(5, 0), 1);
  eff.Contribute(0, EntityId(2, 0), 1);
  eff.Contribute(0, EntityId(5, 0), 1);
  std::vector<uint32_t> order;
  eff.Drain([&](EntityId e, const int&) { order.push_back(e.index); });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 5u);
  EXPECT_EQ(order[1], 2u);
}

TEST_F(StateEffectTest, QueryPhaseVisitsAllMatching) {
  for (int i = 0; i < 100; ++i) {
    EntityId e = world.Create();
    world.Set(e, Health{float(i), 100});
    if (i % 2 == 0) world.Set(e, Position{{float(i), 0, 0}});
  }
  StateEffectExecutor exec(4);
  std::atomic<int> visits{0};
  std::atomic<int> hp_sum{0};
  exec.QueryPhase<Health, Position>(
      world, [&](size_t shard, EntityId, const Health& h, const Position&) {
        ASSERT_LT(shard, exec.shard_count());
        visits.fetch_add(1);
        hp_sum.fetch_add(static_cast<int>(h.hp));
      });
  EXPECT_EQ(visits.load(), 50);
  int expected = 0;
  for (int i = 0; i < 100; i += 2) expected += i;
  EXPECT_EQ(hp_sum.load(), expected);
}

TEST_F(StateEffectTest, FullTickDeterministicAcrossThreadCounts) {
  // Damage tick: every entity with Combat hits its target. Run the same
  // world under 1-thread and 4-thread executors; final hp must match.
  auto build = [&](World& w, std::vector<EntityId>* ids) {
    for (int i = 0; i < 64; ++i) {
      EntityId e = w.Create();
      ids->push_back(e);
      w.Set(e, Health{100, 100});
    }
    for (int i = 0; i < 64; ++i) {
      Combat c;
      c.attack = float(i % 7 + 1);
      c.target = (*ids)[(i + 1) % 64];
      w.Set((*ids)[i], c);
    }
  };

  auto run_tick = [](World& w, size_t threads) {
    StateEffectExecutor exec(threads);
    Effect<double> damage(exec.shard_count());
    exec.QueryPhase<Combat>(
        w, [&](size_t shard, EntityId, const Combat& c) {
          damage.Contribute(shard, c.target, c.attack);
        });
    damage.Drain([&](EntityId e, const double& total) {
      w.Patch<Health>(e, [&](Health& h) {
        h.hp -= static_cast<float>(total);
      });
    });
  };

  World w1, w4;
  std::vector<EntityId> ids1, ids4;
  build(w1, &ids1);
  build(w4, &ids4);
  run_tick(w1, 1);
  run_tick(w4, 4);

  for (size_t i = 0; i < ids1.size(); ++i) {
    ASSERT_FLOAT_EQ(w1.Get<Health>(ids1[i])->hp, w4.Get<Health>(ids4[i])->hp);
  }
  // Sanity: damage actually applied.
  EXPECT_LT(w1.Get<Health>(ids1[0])->hp, 100.0f);
}

TEST_F(StateEffectTest, ParallelOverPassesShards) {
  StateEffectExecutor exec(3);
  std::vector<int> items(1000);
  for (int i = 0; i < 1000; ++i) items[i] = i;
  std::atomic<long> sum{0};
  exec.ParallelOver(items, [&](size_t shard, int v) {
    ASSERT_LT(shard, exec.shard_count());
    sum.fetch_add(v);
  });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST_F(StateEffectTest, Vec3EffectAccumulates) {
  Effect<Vec3> force(2);
  EntityId e(0, 0);
  force.Contribute(0, e, Vec3(1, 0, 0));
  force.Contribute(1, e, Vec3(0, 2, 0));
  Vec3 total;
  force.Drain([&](EntityId, const Vec3& v) { total = v; });
  EXPECT_EQ(total, Vec3(1, 2, 0));
}

TEST_F(StateEffectTest, ClearDiscardsContributions) {
  Effect<double> eff(1);
  eff.Contribute(0, EntityId(0, 0), 1.0);
  eff.Clear();
  int calls = 0;
  eff.Drain([&](EntityId, const double&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace gamedb
