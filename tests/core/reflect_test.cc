#include "core/reflect.h"

#include <gtest/gtest.h>

#include "common/coding.h"

namespace gamedb {
namespace {

class ReflectTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }
};

TEST_F(ReflectTest, RegistryLookupByNameAndId) {
  const TypeInfo* info = TypeRegistry::Global().FindByName("Health");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name(), "Health");
  EXPECT_EQ(info->size(), sizeof(Health));
  EXPECT_EQ(TypeRegistry::Global().Find(info->id()), info);
  EXPECT_EQ(TypeRegistry::Global().FindByName("Nope"), nullptr);
  EXPECT_EQ(TypeRegistry::IdOf<Health>(), info->id());
}

TEST_F(ReflectTest, ReRegistrationIsIdempotent) {
  const TypeInfo* before = TypeRegistry::Global().FindByName("Health");
  RegisterStandardComponents();
  RegisterStandardComponents();
  EXPECT_EQ(TypeRegistry::Global().FindByName("Health"), before);
  EXPECT_EQ(before->fields().size(), 2u);  // fields not duplicated
}

TEST_F(ReflectTest, FieldGetSetNumeric) {
  const TypeInfo* info = TypeRegistry::Global().FindByName("Health");
  const FieldInfo* hp = info->FindField("hp");
  ASSERT_NE(hp, nullptr);
  EXPECT_EQ(hp->type(), FieldType::kFloat);

  Health h{25, 100};
  FieldValue v = hp->Get(&h);
  EXPECT_DOUBLE_EQ(std::get<double>(v), 25.0);

  ASSERT_TRUE(hp->Set(&h, FieldValue(60.0)).ok());
  EXPECT_FLOAT_EQ(h.hp, 60);
  ASSERT_TRUE(hp->Set(&h, FieldValue(int64_t{30})).ok());  // int -> float
  EXPECT_FLOAT_EQ(h.hp, 30);
  EXPECT_TRUE(hp->Set(&h, FieldValue(std::string("x"))).IsInvalidArgument());
}

TEST_F(ReflectTest, FieldGetSetAllKinds) {
  const TypeInfo* actor = TypeRegistry::Global().FindByName("Actor");
  Actor a;
  ASSERT_TRUE(actor->FindField("gold")->Set(&a, FieldValue(int64_t{500})).ok());
  ASSERT_TRUE(actor->FindField("level")->Set(&a, FieldValue(int64_t{7})).ok());
  ASSERT_TRUE(actor->FindField("is_player")->Set(&a, FieldValue(true)).ok());
  EXPECT_EQ(a.gold, 500);
  EXPECT_EQ(a.level, 7);
  EXPECT_TRUE(a.is_player);
  EXPECT_EQ(std::get<int64_t>(actor->FindField("gold")->Get(&a)), 500);
  EXPECT_EQ(std::get<bool>(actor->FindField("is_player")->Get(&a)), true);

  const TypeInfo* pos = TypeRegistry::Global().FindByName("Position");
  Position p;
  ASSERT_TRUE(pos->FindField("value")->Set(&p, FieldValue(Vec3(1, 2, 3))).ok());
  EXPECT_EQ(p.value, Vec3(1, 2, 3));

  const TypeInfo* combat = TypeRegistry::Global().FindByName("Combat");
  Combat c;
  EntityId target(9, 1);
  ASSERT_TRUE(combat->FindField("target")->Set(&c, FieldValue(target)).ok());
  EXPECT_EQ(c.target, target);

  const TypeInfo* script = TypeRegistry::Global().FindByName("ScriptRef");
  ScriptRef s;
  ASSERT_TRUE(script->FindField("script_name")
                  ->Set(&s, FieldValue(std::string("guard.gsl")))
                  .ok());
  EXPECT_EQ(s.script_name, "guard.gsl");
}

TEST_F(ReflectTest, UnknownFieldIsNull) {
  const TypeInfo* info = TypeRegistry::Global().FindByName("Health");
  EXPECT_EQ(info->FindField("mana"), nullptr);
}

TEST_F(ReflectTest, EncodeDecodeComponentRoundTrip) {
  const TypeInfo* info = TypeRegistry::Global().FindByName("Combat");
  Combat in;
  in.attack = 42.5f;
  in.defense = 7.25f;
  in.range = 30.0f;
  in.target = EntityId(77, 3);

  std::string buf;
  info->EncodeComponent(&in, &buf);

  Combat out;
  Decoder dec(buf);
  ASSERT_TRUE(info->DecodeComponent(&out, &dec).ok());
  EXPECT_TRUE(dec.empty());
  EXPECT_FLOAT_EQ(out.attack, in.attack);
  EXPECT_FLOAT_EQ(out.defense, in.defense);
  EXPECT_FLOAT_EQ(out.range, in.range);
  EXPECT_EQ(out.target, in.target);
}

TEST_F(ReflectTest, DecodeTruncatedFails) {
  const TypeInfo* info = TypeRegistry::Global().FindByName("Combat");
  Combat in;
  std::string buf;
  info->EncodeComponent(&in, &buf);
  Combat out;
  Decoder dec(std::string_view(buf).substr(0, buf.size() / 2));
  EXPECT_FALSE(info->DecodeComponent(&out, &dec).ok());
}

TEST_F(ReflectTest, StringFieldEncoding) {
  const TypeInfo* info = TypeRegistry::Global().FindByName("ScriptRef");
  ScriptRef in{"behaviors/wolf.gsl"};
  std::string buf;
  info->EncodeComponent(&in, &buf);
  ScriptRef out;
  Decoder dec(buf);
  ASSERT_TRUE(info->DecodeComponent(&out, &dec).ok());
  EXPECT_EQ(out.script_name, in.script_name);
}

TEST_F(ReflectTest, MakeStoreProducesWorkingStore) {
  const TypeInfo* info = TypeRegistry::Global().FindByName("Health");
  auto store = info->MakeStore();
  EntityId e(0, 0);
  void* comp = store->EmplaceDefault(e);
  ASSERT_NE(comp, nullptr);
  const FieldInfo* hp = info->FindField("hp");
  ASSERT_TRUE(hp->Set(comp, FieldValue(12.0)).ok());
  EXPECT_DOUBLE_EQ(std::get<double>(hp->Get(store->Find(e))), 12.0);
  EXPECT_EQ(store->Size(), 1u);
}

TEST_F(ReflectTest, FieldValueToStringForms) {
  EXPECT_EQ(FieldValueToString(FieldValue(1.5)), "1.5");
  EXPECT_EQ(FieldValueToString(FieldValue(int64_t{-3})), "-3");
  EXPECT_EQ(FieldValueToString(FieldValue(true)), "true");
  EXPECT_EQ(FieldValueToString(FieldValue(std::string("s"))), "s");
  EXPECT_EQ(FieldValueToString(FieldValue(EntityId(1, 2))), "e1v2");
}

}  // namespace
}  // namespace gamedb
