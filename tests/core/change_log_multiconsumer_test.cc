// Pins the documented ChangeSet multi-consumer footgun (see
// views/maintainer.h "Ownership rule" and ROADMAP.md): a component table's
// change ring is consumed destructively by FlushChanges, so two
// ViewCatalogs on one World — or a catalog plus any external FlushChanges
// caller — steal each other's deltas, and the loser silently serves stale
// view state.
//
// These tests document the CURRENT (lossy) semantics on purpose. When
// scale-out work replaces the single-flusher ring with per-consumer
// cursors, the stale-view expectations below are the spec to flip: each
// EXPECT marked "footgun:" should then assert fresh state instead.

#include "core/change_log.h"

#include <gtest/gtest.h>

#include "core/reflect.h"
#include "core/sparse_set.h"
#include "core/world.h"
#include "views/maintainer.h"

namespace gamedb {
namespace {

using views::LiveView;
using views::ViewCatalog;
using views::ViewDef;

ViewDef WoundedDef(const std::string& name) {
  ViewDef def;
  def.name = name;
  def.where = {{"Health", "hp", CmpOp::kLt, 30.0}};
  return def;
}

class ChangeLogMultiConsumerTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }

  EntityId Spawn(float hp) {
    EntityId e = world.Create();
    world.Set(e, Health{hp, 100.0f});
    return e;
  }

  void Wound(EntityId e) {
    world.Patch<Health>(e, [](Health& h) { h.hp = 5.0f; });
  }

  World world;
};

// Baseline sanity: with exactly one consumer, deltas arrive exactly once
// and maintenance converges. (If this fails, the footgun tests below are
// meaningless.)
TEST_F(ChangeLogMultiConsumerTest, SingleCatalogSeesEveryDelta) {
  ViewCatalog catalog(&world);
  EntityId e = Spawn(80.0f);
  LiveView* view = catalog.Register(WoundedDef("wounded")).value();
  EXPECT_FALSE(view->Contains(e));

  Wound(e);
  catalog.Maintain();
  EXPECT_TRUE(view->Contains(e));
  EXPECT_EQ(catalog.stats().change_records, 1u);
}

// An external FlushChanges between the mutation and Maintain() consumes the
// ring; the catalog's next Maintain sees an empty window and the view goes
// stale even though the table state changed.
TEST_F(ChangeLogMultiConsumerTest, ExternalFlushStarvesTheCatalog) {
  ViewCatalog catalog(&world);
  EntityId e = Spawn(80.0f);
  LiveView* view = catalog.Register(WoundedDef("wounded")).value();

  Wound(e);
  ChangeSet stolen;
  world.Table<Health>().FlushChanges(&stolen);
  ASSERT_EQ(stolen.updated.size(), 1u) << "external consumer got the delta";

  catalog.Maintain();
  // footgun: the entity now matches the predicate but the view never heard.
  EXPECT_FALSE(view->Contains(e))
      << "current semantics: the externally-flushed delta is lost to the "
         "catalog; if this now sees the entity, the ring grew per-consumer "
         "cursors — flip this test into a freshness assertion";
  EXPECT_EQ(catalog.stats().change_records, 0u);

  // The loss is permanent for that window, not just deferred: later
  // windows only carry later mutations.
  catalog.Maintain();
  EXPECT_FALSE(view->Contains(e));

  // A later mutation of the same row does reach the catalog (the ring
  // restarts empty after the steal) — stale, not wedged.
  world.Patch<Health>(e, [](Health& h) { h.hp = 4.0f; });
  catalog.Maintain();
  EXPECT_TRUE(view->Contains(e));
}

// Two catalogs on one World: whoever Maintains first after a mutation
// consumes the shared ring; the other catalog's dependent view misses the
// transition. Maintenance order decides who is correct.
TEST_F(ChangeLogMultiConsumerTest, TwoCatalogsStealEachOthersDeltas) {
  ViewCatalog first(&world);
  ViewCatalog second(&world);
  EntityId e = Spawn(80.0f);
  LiveView* first_view = first.Register(WoundedDef("wounded_a")).value();
  LiveView* second_view = second.Register(WoundedDef("wounded_b")).value();

  Wound(e);
  first.Maintain();
  second.Maintain();

  EXPECT_TRUE(first_view->Contains(e)) << "the first flusher wins";
  // footgun: the second catalog flushed an already-drained ring.
  EXPECT_FALSE(second_view->Contains(e))
      << "current semantics: the second catalog lost the delta; per-consumer "
         "change cursors would make both views converge";
  EXPECT_EQ(second.stats().change_records, 0u);

  // Reverse the order for the next mutation: the winner flips, proving the
  // data race is ordering, not catalog identity.
  world.Patch<Health>(e, [](Health& h) { h.hp = 95.0f; });
  second.Maintain();
  first.Maintain();
  EXPECT_FALSE(second_view->Contains(e)) << "now the second catalog is fresh";
  EXPECT_TRUE(first_view->Contains(e))
      << "footgun: the first catalog missed the exit transition and still "
         "lists a healed entity as wounded";
}

// Registration itself populates from a full scan, so a brand-new catalog is
// correct at birth even if another consumer has been draining the ring all
// along — the footgun is confined to incremental maintenance.
TEST_F(ChangeLogMultiConsumerTest, RegistrationSnapshotIsUnaffected) {
  ViewCatalog drainer(&world);
  drainer.Register(WoundedDef("drain")).value();
  EntityId e = Spawn(80.0f);
  Wound(e);
  drainer.Maintain();  // consumes the delta

  ViewCatalog late(&world);
  LiveView* late_view = late.Register(WoundedDef("late")).value();
  EXPECT_TRUE(late_view->Contains(e))
      << "Register() populates by scan, not from the (already drained) ring";
}

// Destroying a catalog disables capture on its tables — which also discards
// deltas a second catalog was counting on (the destructor cannot know
// another flusher exists). Documented corollary of the ownership rule.
TEST_F(ChangeLogMultiConsumerTest, CatalogTeardownDropsPendingDeltas) {
  ViewCatalog survivor(&world);
  LiveView* view = survivor.Register(WoundedDef("survivor")).value();
  EntityId e = Spawn(80.0f);
  {
    ViewCatalog doomed(&world);
    doomed.Register(WoundedDef("doomed")).value();
    Wound(e);  // buffered in the shared ring
  }  // ~ViewCatalog disables capture on Health, discarding the buffer

  ASSERT_FALSE(world.Table<Health>().change_capture_enabled())
      << "teardown disabled capture under the surviving catalog";
  survivor.Maintain();
  // footgun: the surviving catalog never sees the wound.
  EXPECT_FALSE(view->Contains(e));

  // And with capture now off, even future mutations go unseen until
  // something re-enables it.
  world.Patch<Health>(e, [](Health& h) { h.hp = 2.0f; });
  survivor.Maintain();
  EXPECT_FALSE(view->Contains(e));
}

}  // namespace
}  // namespace gamedb
