#include "core/change_log.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/reflect.h"
#include "core/sparse_set.h"
#include "core/world.h"

namespace gamedb {
namespace {

class ChangeLogTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }

  /// Raw ids in a ChangeSet list, for order-insensitive membership checks.
  static std::vector<uint64_t> Raw(const std::vector<EntityId>& v) {
    std::vector<uint64_t> out;
    for (EntityId e : v) out.push_back(e.Raw());
    return out;
  }

  static bool Lists(const std::vector<EntityId>& v, EntityId e) {
    return std::find(v.begin(), v.end(), e) != v.end();
  }

  World world;
  ChangeSet cs;
};

TEST_F(ChangeLogTest, CaptureDisabledRecordsNothing) {
  auto& table = world.Table<Health>();
  EXPECT_FALSE(table.change_capture_enabled());
  EntityId e = world.Create();
  world.Set(e, Health{50, 100});
  world.Patch<Health>(e, [](Health& h) { h.hp = 10; });
  table.Erase(e);
  EXPECT_EQ(table.pending_change_records(), 0u);
  table.FlushChanges(&cs);
  EXPECT_TRUE(cs.Empty());
}

TEST_F(ChangeLogTest, DisableDiscardsBufferAndStopsRecording) {
  auto& table = world.Table<Health>();
  table.EnableChangeCapture();
  EntityId e = world.Create();
  world.Set(e, Health{50, 100});
  ASSERT_GT(table.pending_change_records(), 0u);

  table.DisableChangeCapture();
  EXPECT_FALSE(table.change_capture_enabled());
  EXPECT_EQ(table.pending_change_records(), 0u);
  world.Patch<Health>(e, [](Health& h) { h.hp = 1; });
  EXPECT_EQ(table.pending_change_records(), 0u);
  table.FlushChanges(&cs);
  EXPECT_TRUE(cs.Empty());
}

TEST_F(ChangeLogTest, AddUpdateRemoveReportedSeparately) {
  auto& table = world.Table<Health>();
  table.EnableChangeCapture();
  EXPECT_TRUE(table.change_capture_enabled());

  EntityId e = world.Create();
  world.Set(e, Health{50, 100});
  table.FlushChanges(&cs);
  EXPECT_EQ(cs.added.size(), 1u);
  EXPECT_TRUE(cs.removed.empty());
  EXPECT_TRUE(cs.updated.empty());
  EXPECT_TRUE(Lists(cs.added, e));

  // Multiple updates coalesce into one net `updated` record.
  world.Patch<Health>(e, [](Health& h) { h.hp = 20; });
  world.Patch<Health>(e, [](Health& h) { h.hp = 30; });
  table.Touch(e);
  table.FlushChanges(&cs);
  EXPECT_TRUE(cs.added.empty());
  EXPECT_EQ(cs.updated.size(), 1u);
  EXPECT_TRUE(Lists(cs.updated, e));

  table.Erase(e);
  table.FlushChanges(&cs);
  EXPECT_EQ(cs.removed.size(), 1u);
  EXPECT_TRUE(Lists(cs.removed, e));

  // Flushing again reports nothing: the window reset.
  table.FlushChanges(&cs);
  EXPECT_TRUE(cs.Empty());
}

TEST_F(ChangeLogTest, UpdateThenRemoveCoalescesToRemoved) {
  auto& table = world.Table<Health>();
  EntityId e = world.Create();
  world.Set(e, Health{50, 100});
  table.EnableChangeCapture();

  world.Patch<Health>(e, [](Health& h) { h.hp = 1; });
  world.Patch<Health>(e, [](Health& h) { h.hp = 2; });
  table.Erase(e);
  table.FlushChanges(&cs);
  EXPECT_TRUE(cs.added.empty());
  EXPECT_TRUE(cs.updated.empty());
  EXPECT_EQ(Raw(cs.removed), std::vector<uint64_t>{e.Raw()});
}

TEST_F(ChangeLogTest, AddThenRemoveCancelsOut) {
  auto& table = world.Table<Health>();
  table.EnableChangeCapture();
  EntityId e = world.Create();
  world.Set(e, Health{50, 100});
  world.Patch<Health>(e, [](Health& h) { h.hp = 1; });
  table.Erase(e);
  table.FlushChanges(&cs);
  EXPECT_TRUE(cs.Empty()) << "a row born and dead within one window is "
                             "invisible to delta consumers";
}

TEST_F(ChangeLogTest, RemoveThenReAddReportsUpdated) {
  auto& table = world.Table<Health>();
  EntityId e = world.Create();
  world.Set(e, Health{50, 100});
  table.EnableChangeCapture();

  table.Erase(e);
  world.Set(e, Health{75, 100});
  table.FlushChanges(&cs);
  EXPECT_TRUE(cs.added.empty());
  EXPECT_TRUE(cs.removed.empty());
  EXPECT_EQ(Raw(cs.updated), std::vector<uint64_t>{e.Raw()})
      << "row existed at window start and exists now, value may differ";
}

TEST_F(ChangeLogTest, DestroyThenRecreateSameSlotInOneWindow) {
  auto& table = world.Table<Health>();
  table.EnableChangeCapture();

  EntityId old_e = world.Create();
  world.Set(old_e, Health{50, 100});
  table.FlushChanges(&cs);  // window boundary: old_e's add is consumed

  world.Destroy(old_e);  // erases the Health row -> captured as remove
  EntityId new_e = world.Create();
  ASSERT_EQ(new_e.index, old_e.index);  // slot reuse
  ASSERT_NE(new_e, old_e);              // distinct generation
  world.Set(new_e, Health{10, 100});

  table.FlushChanges(&cs);
  EXPECT_EQ(Raw(cs.removed), std::vector<uint64_t>{old_e.Raw()});
  EXPECT_EQ(Raw(cs.added), std::vector<uint64_t>{new_e.Raw()});
  EXPECT_TRUE(cs.updated.empty());
}

TEST_F(ChangeLogTest, ClearReportsEveryRemoval) {
  auto& table = world.Table<Health>();
  std::vector<EntityId> es;
  for (int i = 0; i < 5; ++i) {
    EntityId e = world.Create();
    world.Set(e, Health{float(i), 100});
    es.push_back(e);
  }
  table.EnableChangeCapture();
  table.Clear();
  table.FlushChanges(&cs);
  EXPECT_EQ(cs.removed.size(), 5u);
  for (EntityId e : es) EXPECT_TRUE(Lists(cs.removed, e));
}

TEST_F(ChangeLogTest, FirstMutationOrderIsPreserved) {
  auto& table = world.Table<Health>();
  table.EnableChangeCapture();
  EntityId a = world.Create();
  EntityId b = world.Create();
  EntityId c = world.Create();
  world.Set(b, Health{1, 100});
  world.Set(a, Health{2, 100});
  world.Set(c, Health{3, 100});
  world.Patch<Health>(a, [](Health& h) { h.hp = 9; });  // no reordering
  table.FlushChanges(&cs);
  EXPECT_EQ(Raw(cs.added),
            (std::vector<uint64_t>{b.Raw(), a.Raw(), c.Raw()}));
}

}  // namespace
}  // namespace gamedb
