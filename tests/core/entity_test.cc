#include "core/entity.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace gamedb {
namespace {

TEST(EntityIdTest, DefaultIsInvalid) {
  EntityId e;
  EXPECT_FALSE(e.valid());
  EXPECT_EQ(e, EntityId::Invalid());
}

TEST(EntityIdTest, RawRoundTrip) {
  EntityId e(12345, 678);
  EXPECT_TRUE(e.valid());
  EXPECT_EQ(EntityId::FromRaw(e.Raw()), e);
  EXPECT_EQ(e.Raw(), (uint64_t{678} << 32) | 12345);
}

TEST(EntityIdTest, GenerationDistinguishesReusedSlots) {
  EntityId old_ref(7, 0);
  EntityId new_ref(7, 1);
  EXPECT_NE(old_ref, new_ref);
  EXPECT_NE(old_ref.Raw(), new_ref.Raw());
}

TEST(EntityIdTest, OrderingFollowsRaw) {
  EXPECT_LT(EntityId(1, 0), EntityId(2, 0));
  EXPECT_LT(EntityId(5, 0), EntityId(1, 1));  // generation dominates
}

TEST(EntityIdTest, HashSpreads) {
  std::unordered_set<size_t> hashes;
  std::hash<EntityId> h;
  for (uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(h(EntityId(i, i % 3)));
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions in this tiny set
}

TEST(EntityIdTest, ToStringFormat) {
  EXPECT_EQ(EntityId(4, 2).ToString(), "e4v2");
}

}  // namespace
}  // namespace gamedb
