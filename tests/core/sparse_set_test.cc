#include "core/sparse_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"

namespace gamedb {
namespace {

struct Hp {
  float value = 0;
};

TEST(SparseSetTest, SetGetContains) {
  SparseSet<Hp> set;
  EntityId e(3, 0);
  EXPECT_FALSE(set.Contains(e));
  EXPECT_EQ(set.Get(e), nullptr);
  set.Set(e, Hp{10});
  EXPECT_TRUE(set.Contains(e));
  ASSERT_NE(set.Get(e), nullptr);
  EXPECT_FLOAT_EQ(set.Get(e)->value, 10);
  EXPECT_EQ(set.Size(), 1u);
}

TEST(SparseSetTest, SetOverwrites) {
  SparseSet<Hp> set;
  EntityId e(0, 0);
  set.Set(e, Hp{1});
  set.Set(e, Hp{2});
  EXPECT_EQ(set.Size(), 1u);
  EXPECT_FLOAT_EQ(set.Get(e)->value, 2);
}

TEST(SparseSetTest, GenerationMismatchIsMiss) {
  SparseSet<Hp> set;
  set.Set(EntityId(5, 0), Hp{1});
  EXPECT_FALSE(set.Contains(EntityId(5, 1)));
  EXPECT_EQ(set.Get(EntityId(5, 1)), nullptr);
  EXPECT_FALSE(set.Erase(EntityId(5, 1)));
  EXPECT_EQ(set.Size(), 1u);
}

TEST(SparseSetTest, EraseSwapsLastIntoHole) {
  SparseSet<Hp> set;
  EntityId a(0, 0), b(1, 0), c(2, 0);
  set.Set(a, Hp{1});
  set.Set(b, Hp{2});
  set.Set(c, Hp{3});
  EXPECT_TRUE(set.Erase(b));
  EXPECT_EQ(set.Size(), 2u);
  EXPECT_FALSE(set.Contains(b));
  EXPECT_FLOAT_EQ(set.Get(a)->value, 1);
  EXPECT_FLOAT_EQ(set.Get(c)->value, 3);  // survived the swap
  EXPECT_FALSE(set.Erase(b));             // double-erase is a no-op
}

TEST(SparseSetTest, PatchMutatesInPlace) {
  SparseSet<Hp> set;
  EntityId e(9, 0);
  set.Set(e, Hp{5});
  EXPECT_TRUE(set.Patch(e, [](Hp& hp) { hp.value += 1; }));
  EXPECT_FLOAT_EQ(set.Get(e)->value, 6);
  EXPECT_FALSE(set.Patch(EntityId(8, 0), [](Hp&) {}));
}

TEST(SparseSetTest, VersionsIncreaseMonotonically) {
  SparseSet<Hp> set;
  EntityId a(0, 0), b(1, 0);
  uint64_t v0 = set.last_version();
  set.Set(a, Hp{1});
  uint64_t v1 = set.last_version();
  EXPECT_GT(v1, v0);
  set.Set(b, Hp{2});
  set.Patch(a, [](Hp& hp) { hp.value = 9; });
  uint64_t v3 = set.last_version();
  EXPECT_GT(v3, v1);

  // b's insert and a's patch both occurred after v1.
  std::vector<EntityId> changed;
  set.ForEachChangedSince(v1, [&](EntityId e, const Hp&) {
    changed.push_back(e);
  });
  EXPECT_EQ(changed.size(), 2u);

  changed.clear();
  set.ForEachChangedSince(v3, [&](EntityId e, const Hp&) {
    changed.push_back(e);
  });
  EXPECT_TRUE(changed.empty());
}

TEST(SparseSetTest, RemovedLogTracksErasures) {
  SparseSet<Hp> set;
  EntityId a(0, 0), b(1, 0);
  set.Set(a, Hp{1});
  set.Set(b, Hp{2});
  uint64_t before = set.last_version();
  set.Erase(a);
  std::vector<EntityId> removed;
  set.ForEachRemovedSince(before, [&](EntityId e) { removed.push_back(e); });
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], a);

  set.TrimRemovedLog(set.last_version());
  removed.clear();
  set.ForEachRemovedSince(0, [&](EntityId e) { removed.push_back(e); });
  EXPECT_TRUE(removed.empty());
}

TEST(SparseSetTest, ObserversSeeAddUpdateRemove) {
  SparseSet<Hp> set;
  std::vector<ChangeKind> kinds;
  std::vector<float> old_values, new_values;
  set.Subscribe([&](ChangeKind k, EntityId, const Hp* o, const Hp* n) {
    kinds.push_back(k);
    old_values.push_back(o ? o->value : -1);
    new_values.push_back(n ? n->value : -1);
  });
  EntityId e(0, 0);
  set.Set(e, Hp{1});                       // add
  set.Set(e, Hp{2});                       // update (overwrite)
  set.Patch(e, [](Hp& hp) { hp.value = 3; });  // update (patch)
  set.Erase(e);                            // remove

  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], ChangeKind::kAdd);
  EXPECT_EQ(kinds[1], ChangeKind::kUpdate);
  EXPECT_EQ(kinds[2], ChangeKind::kUpdate);
  EXPECT_EQ(kinds[3], ChangeKind::kRemove);
  EXPECT_FLOAT_EQ(old_values[1], 1);
  EXPECT_FLOAT_EQ(new_values[1], 2);
  EXPECT_FLOAT_EQ(old_values[2], 2);
  EXPECT_FLOAT_EQ(new_values[2], 3);
  EXPECT_FLOAT_EQ(old_values[3], 3);
  EXPECT_FLOAT_EQ(new_values[3], -1);
}

TEST(SparseSetTest, UnsubscribeStopsNotifications) {
  SparseSet<Hp> set;
  int calls = 0;
  size_t h = set.Subscribe(
      [&](ChangeKind, EntityId, const Hp*, const Hp*) { ++calls; });
  set.Set(EntityId(0, 0), Hp{1});
  set.Unsubscribe(h);
  set.Set(EntityId(1, 0), Hp{2});
  EXPECT_EQ(calls, 1);
}

TEST(SparseSetTest, GetMutableUntrackedSkipsVersionBump) {
  SparseSet<Hp> set;
  EntityId e(0, 0);
  set.Set(e, Hp{1});
  uint64_t v = set.last_version();
  Hp* hp = set.GetMutableUntracked(e);
  ASSERT_NE(hp, nullptr);
  hp->value = 99;
  EXPECT_EQ(set.last_version(), v);
  set.Touch(e);
  EXPECT_GT(set.last_version(), v);
}

TEST(SparseSetTest, ClearNotifiesRemovals) {
  SparseSet<Hp> set;
  for (uint32_t i = 0; i < 10; ++i) set.Set(EntityId(i, 0), Hp{float(i)});
  int removals = 0;
  set.Subscribe([&](ChangeKind k, EntityId, const Hp*, const Hp*) {
    if (k == ChangeKind::kRemove) ++removals;
  });
  set.Clear();
  EXPECT_EQ(set.Size(), 0u);
  EXPECT_EQ(removals, 10);
}

TEST(SparseSetTest, RandomOpsAgainstReferenceModel) {
  SparseSet<Hp> set;
  std::set<uint32_t> model;  // indexes present (generation fixed at 0)
  Rng rng(777);
  for (int op = 0; op < 20000; ++op) {
    uint32_t idx = static_cast<uint32_t>(rng.NextBounded(256));
    EntityId e(idx, 0);
    switch (rng.NextBounded(3)) {
      case 0:
        set.Set(e, Hp{float(idx)});
        model.insert(idx);
        break;
      case 1:
        EXPECT_EQ(set.Erase(e), model.erase(idx) > 0);
        break;
      case 2:
        EXPECT_EQ(set.Contains(e), model.count(idx) > 0);
        break;
    }
    ASSERT_EQ(set.Size(), model.size());
  }
  // Values survived the swaps correctly.
  set.ForEach([&](EntityId e, const Hp& hp) {
    ASSERT_TRUE(model.count(e.index));
    ASSERT_FLOAT_EQ(hp.value, float(e.index));
  });
}

}  // namespace
}  // namespace gamedb
