#include "core/aggregate.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gamedb {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }
  World world;
};

TEST_F(AggregateTest, SumTracksSetPatchErase) {
  SumAggregate<Health> total(world, [](const Health& h) { return h.hp; });
  EXPECT_DOUBLE_EQ(total.sum(), 0.0);
  EXPECT_EQ(total.count(), 0);

  EntityId a = world.Create(), b = world.Create();
  world.Set(a, Health{10, 100});
  world.Set(b, Health{20, 100});
  EXPECT_DOUBLE_EQ(total.sum(), 30.0);
  EXPECT_EQ(total.count(), 2);
  EXPECT_DOUBLE_EQ(total.average(), 15.0);

  world.Patch<Health>(a, [](Health& h) { h.hp = 50; });
  EXPECT_DOUBLE_EQ(total.sum(), 70.0);

  world.Set(b, Health{5, 100});  // overwrite counts as update
  EXPECT_DOUBLE_EQ(total.sum(), 55.0);

  world.Remove<Health>(a);
  EXPECT_DOUBLE_EQ(total.sum(), 5.0);
  EXPECT_EQ(total.count(), 1);

  world.Destroy(b);  // destroy removes components too
  EXPECT_DOUBLE_EQ(total.sum(), 0.0);
  EXPECT_EQ(total.count(), 0);
}

TEST_F(AggregateTest, SumFoldsPreexistingRows) {
  for (int i = 1; i <= 4; ++i) {
    world.Set(world.Create(), Health{float(i), 100});
  }
  SumAggregate<Health> total(world, [](const Health& h) { return h.hp; });
  EXPECT_DOUBLE_EQ(total.sum(), 10.0);
}

TEST_F(AggregateTest, SumIgnoresUntrackedWrites) {
  EntityId e = world.Create();
  world.Set(e, Health{10, 100});
  SumAggregate<Health> total(world, [](const Health& h) { return h.hp; });
  world.GetMutableUntracked<Health>(e)->hp = 999;  // bypasses tracking
  EXPECT_DOUBLE_EQ(total.sum(), 10.0);  // by design: see E1 ablation
}

TEST_F(AggregateTest, ExtremaExactUnderRemoval) {
  ExtremaAggregate<Health> ex(world, [](const Health& h) { return h.hp; });
  EXPECT_TRUE(ex.empty());

  EntityId a = world.Create(), b = world.Create(), c = world.Create();
  world.Set(a, Health{30, 100});
  world.Set(b, Health{10, 100});
  world.Set(c, Health{20, 100});
  EXPECT_DOUBLE_EQ(ex.min(), 10.0);
  EXPECT_DOUBLE_EQ(ex.max(), 30.0);

  world.Remove<Health>(b);  // remove current minimum
  EXPECT_DOUBLE_EQ(ex.min(), 20.0);

  world.Patch<Health>(a, [](Health& h) { h.hp = 5; });  // update below min
  EXPECT_DOUBLE_EQ(ex.min(), 5.0);
  EXPECT_DOUBLE_EQ(ex.max(), 20.0);
}

TEST_F(AggregateTest, ExtremaHandlesDuplicateValues) {
  EntityId a = world.Create(), b = world.Create();
  world.Set(a, Health{10, 100});
  world.Set(b, Health{10, 100});
  ExtremaAggregate<Health> ex(world, [](const Health& h) { return h.hp; });
  world.Remove<Health>(a);
  EXPECT_DOUBLE_EQ(ex.min(), 10.0);  // the other 10 remains
  world.Remove<Health>(b);
  EXPECT_TRUE(ex.empty());
}

TEST_F(AggregateTest, GroupedSumMovesRowsBetweenGroups) {
  GroupedSumAggregate<Actor> gold_by_team(
      world, [](const Actor& a) { return a.account_id; },
      [](const Actor& a) { return double(a.gold); });

  EntityId a = world.Create(), b = world.Create();
  world.Set(a, Actor{1, 100, 1, true});
  world.Set(b, Actor{1, 50, 1, true});
  EXPECT_DOUBLE_EQ(gold_by_team.SumOf(1), 150.0);
  EXPECT_EQ(gold_by_team.CountOf(1), 2);
  EXPECT_EQ(gold_by_team.group_count(), 1u);

  // Move `b` to account 2.
  world.Patch<Actor>(b, [](Actor& act) {
    act.account_id = 2;
    act.gold = 60;
  });
  EXPECT_DOUBLE_EQ(gold_by_team.SumOf(1), 100.0);
  EXPECT_DOUBLE_EQ(gold_by_team.SumOf(2), 60.0);
  EXPECT_EQ(gold_by_team.group_count(), 2u);

  world.Remove<Actor>(a);
  EXPECT_DOUBLE_EQ(gold_by_team.SumOf(1), 0.0);
  EXPECT_EQ(gold_by_team.group_count(), 1u);  // empty group dropped
}

TEST_F(AggregateTest, GroupedForEachVisitsAllGroups) {
  GroupedSumAggregate<Faction> by_team(
      world, [](const Faction& f) { return f.team; },
      [](const Faction&) { return 1.0; });
  for (int i = 0; i < 9; ++i) {
    world.Set(world.Create(), Faction{i % 3});
  }
  int groups = 0;
  double total = 0;
  by_team.ForEachGroup([&](int64_t, double sum, int64_t count) {
    ++groups;
    total += sum;
    EXPECT_EQ(count, 3);
  });
  EXPECT_EQ(groups, 3);
  EXPECT_DOUBLE_EQ(total, 9.0);
}

// Property: the maintained sum equals a full rescan after a random workload.
TEST_F(AggregateTest, MaintainedSumMatchesRescanProperty) {
  SumAggregate<Health> total(world, [](const Health& h) { return h.hp; });
  Rng rng(4242);
  std::vector<EntityId> pool;
  for (int op = 0; op < 5000; ++op) {
    double roll = rng.NextDouble();
    if (roll < 0.4 || pool.empty()) {
      EntityId e = world.Create();
      world.Set(e, Health{float(rng.NextInt(0, 100)), 100});
      pool.push_back(e);
    } else if (roll < 0.7) {
      EntityId e = pool[rng.NextBounded(pool.size())];
      world.Patch<Health>(e, [&](Health& h) {
        h.hp = float(rng.NextInt(0, 100));
      });
    } else {
      size_t i = rng.NextBounded(pool.size());
      world.Destroy(pool[i]);
      pool[i] = pool.back();
      pool.pop_back();
    }
  }
  double rescan = 0;
  world.Table<Health>().ForEach(
      [&](EntityId, const Health& h) { rescan += h.hp; });
  EXPECT_NEAR(total.sum(), rescan, 1e-6);
  EXPECT_EQ(total.count(), static_cast<int64_t>(world.Table<Health>().Size()));
}

}  // namespace
}  // namespace gamedb
