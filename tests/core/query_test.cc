#include "core/query.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace gamedb {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardComponents();
    // 10 entities: all have Health; evens have Position; entity i has
    // hp = i * 10, team = i % 2.
    for (int i = 0; i < 10; ++i) {
      EntityId e = world.Create();
      ids.push_back(e);
      world.Set(e, Health{float(i) * 10, 200});
      world.Set(e, Faction{i % 2});
      if (i % 2 == 0) world.Set(e, Position{{float(i), 0, 0}});
    }
  }

  World world;
  std::vector<EntityId> ids;
};

TEST_F(QueryTest, ViewJoinsTables) {
  size_t count = 0;
  View<Health, Position>(world).Each([&](EntityId, Health& h, Position& p) {
    EXPECT_FLOAT_EQ(h.hp, p.value.x * 10);  // evens: hp = 10*i, x = i
    ++count;
  });
  EXPECT_EQ(count, 5u);
  EXPECT_EQ((View<Health, Position>(world).Count()), 5u);
  EXPECT_EQ(View<Health>(world).Count(), 10u);
}

TEST_F(QueryTest, ViewSkipsDeadEntities) {
  world.Destroy(ids[0]);
  world.Destroy(ids[2]);
  EXPECT_EQ((View<Health, Position>(world).Count()), 3u);
}

TEST_F(QueryTest, ViewCanMutateValues) {
  View<Health>(world).Each([](EntityId, Health& h) { h.hp += 1; });
  EXPECT_FLOAT_EQ(world.Get<Health>(ids[3])->hp, 31);
}

TEST_F(QueryTest, ViewEntitiesReturnsMatching) {
  auto ents = View<Position>(world).Entities();
  EXPECT_EQ(ents.size(), 5u);
  for (EntityId e : ents) EXPECT_TRUE(world.Has<Position>(e));
}

TEST_F(QueryTest, DynamicCount) {
  DynamicQuery q(&world);
  q.With("Health");
  auto r = q.Count();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 10);
}

TEST_F(QueryTest, DynamicWhereFieldFilters) {
  DynamicQuery q(&world);
  q.WhereField("Health", "hp", CmpOp::kGe, 50.0);
  auto r = q.Count();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);  // hp in {50,60,70,80,90}

  DynamicQuery q2(&world);
  q2.WhereField("Faction", "team", CmpOp::kEq, int64_t{1});
  EXPECT_EQ(*q2.Count(), 5);

  DynamicQuery q3(&world);
  q3.WhereField("Health", "hp", CmpOp::kGt, 40.0)
      .WhereField("Faction", "team", CmpOp::kEq, int64_t{0});
  EXPECT_EQ(*q3.Count(), 2);  // hp in {60, 80}
}

TEST_F(QueryTest, DynamicAggregates) {
  DynamicQuery sum(&world);
  auto s = sum.Sum("Health", "hp");
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 450.0);  // 0+10+...+90

  DynamicQuery avg(&world);
  EXPECT_DOUBLE_EQ(*avg.Avg("Health", "hp"), 45.0);

  DynamicQuery mn(&world);
  EXPECT_DOUBLE_EQ(*mn.Min("Health", "hp"), 0.0);

  DynamicQuery mx(&world);
  EXPECT_DOUBLE_EQ(*mx.Max("Health", "hp"), 90.0);
}

TEST_F(QueryTest, DynamicAggregatesWithPredicate) {
  DynamicQuery q(&world);
  q.WhereField("Faction", "team", CmpOp::kEq, int64_t{1});
  auto s = q.Sum("Health", "hp");
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 10 + 30 + 50 + 70 + 90);
}

TEST_F(QueryTest, DynamicArgMinMax) {
  DynamicQuery q(&world);
  q.WhereField("Faction", "team", CmpOp::kEq, int64_t{0});
  auto weakest = q.ArgMin("Health", "hp");
  ASSERT_TRUE(weakest.ok());
  EXPECT_EQ(*weakest, ids[0]);

  DynamicQuery q2(&world);
  auto strongest = q2.ArgMax("Health", "hp");
  ASSERT_TRUE(strongest.ok());
  EXPECT_EQ(*strongest, ids[9]);
}

TEST_F(QueryTest, DynamicEmptyMatchBehaviour) {
  DynamicQuery q(&world);
  q.WhereField("Health", "hp", CmpOp::kGt, 1e9);
  EXPECT_EQ(*q.Count(), 0);
  DynamicQuery q2(&world);
  q2.WhereField("Health", "hp", CmpOp::kGt, 1e9);
  EXPECT_TRUE(q2.Min("Health", "hp").status().IsNotFound());
}

TEST_F(QueryTest, DynamicEmptyTableBehaviour) {
  // "Actor" is registered but this world never created its table: every
  // terminal must treat it as an empty relation, not an error.
  DynamicQuery q(&world);
  q.With("Actor");
  EXPECT_EQ(*q.Count(), 0);

  DynamicQuery q2(&world);
  q2.With("Actor");
  EXPECT_TRUE(q2.Collect()->empty());

  DynamicQuery q3(&world);
  EXPECT_DOUBLE_EQ(*q3.Sum("Actor", "gold"), 0.0);

  DynamicQuery q4(&world);
  EXPECT_TRUE(q4.Avg("Actor", "gold").status().IsNotFound());

  DynamicQuery q5(&world);
  EXPECT_TRUE(q5.ArgMin("Actor", "gold").status().IsNotFound());

  // Joining an empty table against a populated one is still empty.
  DynamicQuery q6(&world);
  q6.With("Health").With("Actor");
  EXPECT_EQ(*q6.Count(), 0);
}

TEST_F(QueryTest, DynamicAllRowsFilteredBehaviour) {
  // Predicates that reject every row: all terminals see zero matches.
  auto shape = [](DynamicQuery& q) {
    q.WhereField("Health", "hp", CmpOp::kLt, -1.0);
  };
  DynamicQuery q(&world);
  shape(q);
  EXPECT_TRUE(q.Collect()->empty());

  DynamicQuery q2(&world);
  shape(q2);
  EXPECT_DOUBLE_EQ(*q2.Sum("Health", "hp"), 0.0);

  DynamicQuery q3(&world);
  shape(q3);
  EXPECT_TRUE(q3.Max("Health", "hp").status().IsNotFound());

  DynamicQuery q4(&world);
  shape(q4);
  EXPECT_TRUE(q4.Avg("Health", "hp").status().IsNotFound());

  DynamicQuery q5(&world);
  shape(q5);
  EXPECT_TRUE(q5.ArgMax("Health", "hp").status().IsNotFound());

  DynamicQuery q6(&world);
  shape(q6);
  size_t visits = 0;
  EXPECT_TRUE(q6.Each([&](EntityId) { ++visits; }).ok());
  EXPECT_EQ(visits, 0u);
}

TEST_F(QueryTest, DynamicAggregateOverZeroMatchingRows) {
  // The aggregate's component joins against the predicate's matches:
  // team==1 entities (odd i) never carry Position, so the fold sees zero
  // rows even though both tables are populated.
  DynamicQuery q(&world);
  q.WhereField("Faction", "team", CmpOp::kEq, int64_t{1});
  EXPECT_DOUBLE_EQ(*q.Sum("Health", "hp"), 10 + 30 + 50 + 70 + 90);
  DynamicQuery q2(&world);
  q2.WhereField("Faction", "team", CmpOp::kEq, int64_t{1});
  q2.With("Position");
  EXPECT_DOUBLE_EQ(*q2.Sum("Health", "hp"), 0.0);
  DynamicQuery q3(&world);
  q3.WhereField("Faction", "team", CmpOp::kEq, int64_t{1});
  EXPECT_TRUE(q3.Min("Position", "value").status().IsNotFound());
}

TEST_F(QueryTest, ExplainWithoutPlannerDescribesBuiltInPath) {
  DynamicQuery q(&world);
  q.WhereField("Health", "hp", CmpOp::kGe, 50.0);
  auto text = q.Explain();
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("no planner"), std::string::npos) << *text;
  EXPECT_NE(text->find("full_scan"), std::string::npos) << *text;

  DynamicQuery q2(&world);
  EXPECT_TRUE(q2.Explain().status().IsInvalidArgument());
}

TEST_F(QueryTest, DynamicUnknownNamesError) {
  DynamicQuery q(&world);
  q.With("Bogus");
  EXPECT_TRUE(q.Count().status().IsNotFound());

  DynamicQuery q2(&world);
  q2.WhereField("Health", "bogus_field", CmpOp::kEq, 1.0);
  EXPECT_TRUE(q2.Count().status().IsNotFound());

  DynamicQuery q3(&world);
  EXPECT_TRUE(q3.Count().status().IsInvalidArgument());  // no constraints
}

TEST_F(QueryTest, DynamicWithinRadius) {
  DynamicQuery q(&world);
  q.WithinRadius("Position", "value", Vec3(0, 0, 0), 4.5f);
  // Positions are x = 0,2,4,6,8 -> within 4.5: 0,2,4.
  EXPECT_EQ(*q.Count(), 3);
}

TEST_F(QueryTest, DynamicCollect) {
  DynamicQuery q(&world);
  q.With("Position");
  auto r = q.Collect();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
}

TEST(CompareFieldValuesTest, NumericCrossKind) {
  EXPECT_TRUE(CompareFieldValues(FieldValue(1.0), CmpOp::kEq,
                                 FieldValue(int64_t{1})));
  EXPECT_TRUE(CompareFieldValues(FieldValue(int64_t{2}), CmpOp::kGt,
                                 FieldValue(1.5)));
  EXPECT_TRUE(CompareFieldValues(FieldValue(true), CmpOp::kEq,
                                 FieldValue(int64_t{1})));
}

TEST(CompareFieldValuesTest, StringsAndEntities) {
  EXPECT_TRUE(CompareFieldValues(FieldValue(std::string("a")), CmpOp::kLt,
                                 FieldValue(std::string("b"))));
  EXPECT_TRUE(CompareFieldValues(FieldValue(EntityId(1, 0)), CmpOp::kNe,
                                 FieldValue(EntityId(2, 0))));
  EXPECT_TRUE(CompareFieldValues(FieldValue(EntityId(1, 0)), CmpOp::kEq,
                                 FieldValue(EntityId(1, 0))));
}

TEST(CompareFieldValuesTest, MismatchedKinds) {
  EXPECT_FALSE(CompareFieldValues(FieldValue(std::string("1")), CmpOp::kEq,
                                  FieldValue(1.0)));
  EXPECT_TRUE(CompareFieldValues(FieldValue(std::string("1")), CmpOp::kNe,
                                 FieldValue(1.0)));
  EXPECT_FALSE(CompareFieldValues(FieldValue(Vec3(1, 0, 0)), CmpOp::kLt,
                                  FieldValue(Vec3(2, 0, 0))));
  EXPECT_TRUE(CompareFieldValues(FieldValue(Vec3(1, 0, 0)), CmpOp::kEq,
                                 FieldValue(Vec3(1, 0, 0))));
}

}  // namespace
}  // namespace gamedb
