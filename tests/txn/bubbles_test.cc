#include "txn/bubbles.h"

#include <gtest/gtest.h>

#include "txn/workload.h"

namespace gamedb::txn {
namespace {

class BubblesTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }

  EntityId Ship(Vec3 pos, Vec3 vel, float accel) {
    EntityId e = world.Create();
    world.Set(e, Position{pos});
    Velocity v;
    v.value = vel;
    v.max_accel = accel;
    world.Set(e, v);
    return e;
  }

  World world;
};

TEST_F(BubblesTest, DistantStaticShipsAreSeparate) {
  EntityId a = Ship({0, 0, 0}, {}, 0);
  EntityId b = Ship({100, 0, 0}, {}, 0);
  BubbleOptions opts;
  opts.interaction_radius = 10;
  opts.horizon_seconds = 1;
  auto part = ComputeBubbles(&world, opts);
  EXPECT_EQ(part.bubble_count, 2u);
  EXPECT_NE(part.BubbleOf(a), part.BubbleOf(b));
  EXPECT_EQ(part.max_bubble_size, 1u);
}

TEST_F(BubblesTest, NearbyShipsShareABubble) {
  EntityId a = Ship({0, 0, 0}, {}, 0);
  EntityId b = Ship({5, 0, 0}, {}, 0);
  BubbleOptions opts;
  opts.interaction_radius = 10;
  auto part = ComputeBubbles(&world, opts);
  EXPECT_EQ(part.bubble_count, 1u);
  EXPECT_EQ(part.BubbleOf(a), part.BubbleOf(b));
}

TEST_F(BubblesTest, FastShipsMergeAcrossLargerGaps) {
  // 40 apart: static ships with radius 10 are separate...
  Ship({0, 0, 0}, {}, 0);
  Ship({40, 0, 0}, {}, 0);
  BubbleOptions opts;
  opts.interaction_radius = 10;
  opts.horizon_seconds = 2;
  EXPECT_EQ(ComputeBubbles(&world, opts).bubble_count, 2u);

  // ...but fast ships can close 40 units within the horizon.
  World fast_world;
  auto mk = [&](Vec3 pos, Vec3 vel) {
    EntityId e = fast_world.Create();
    fast_world.Set(e, Position{pos});
    Velocity v;
    v.value = vel;
    fast_world.Set(e, v);
    return e;
  };
  mk({0, 0, 0}, {10, 0, 0});   // reach = 20 over 2s
  mk({40, 0, 0}, {-5, 0, 0});  // reach = 10
  // 10 + 20 + 10 = 40 >= gap -> merged.
  EXPECT_EQ(ComputeBubbles(&fast_world, opts).bubble_count, 1u);
}

TEST_F(BubblesTest, AccelerationWidensReach) {
  Ship({0, 0, 0}, {}, 10.0f);   // ½·10·2² = 20 reach
  Ship({45, 0, 0}, {}, 10.0f);  // another 20
  BubbleOptions opts;
  opts.interaction_radius = 10;
  opts.horizon_seconds = 2;
  // 10 + 20 + 20 = 50 >= 45 -> one bubble.
  EXPECT_EQ(ComputeBubbles(&world, opts).bubble_count, 1u);

  opts.horizon_seconds = 1;  // ½·10·1 = 5 reach each; 10+5+5=20 < 45
  EXPECT_EQ(ComputeBubbles(&world, opts).bubble_count, 2u);
}

TEST_F(BubblesTest, ChainsMergeTransitively) {
  // A line of ships, each within radius of the next: one bubble.
  for (int i = 0; i < 10; ++i) {
    Ship({float(i) * 8, 0, 0}, {}, 0);
  }
  BubbleOptions opts;
  opts.interaction_radius = 10;
  auto part = ComputeBubbles(&world, opts);
  EXPECT_EQ(part.bubble_count, 1u);
  EXPECT_EQ(part.max_bubble_size, 10u);
}

TEST_F(BubblesTest, EntitiesWithoutPositionUnassigned) {
  EntityId ghost = world.Create();  // no Position
  Ship({0, 0, 0}, {}, 0);
  auto part = ComputeBubbles(&world, BubbleOptions{});
  EXPECT_EQ(part.BubbleOf(ghost), -1);
  EXPECT_EQ(part.bubble_count, 1u);
}

TEST_F(BubblesTest, EmptyWorld) {
  auto part = ComputeBubbles(&world, BubbleOptions{});
  EXPECT_EQ(part.bubble_count, 0u);
}

TEST_F(BubblesTest, ExecutorRoutesCrossBubbleTxnsToSerialPhase) {
  EntityId a = Ship({0, 0, 0}, {}, 0);
  EntityId b = Ship({3, 0, 0}, {}, 0);
  EntityId c = Ship({500, 0, 0}, {}, 0);
  for (EntityId e : {a, b, c}) {
    world.Set(e, Health{100, 100});
    world.Set(e, Combat{});
    world.Set(e, Actor{0, 100, 1, true});
  }
  BubbleOptions opts;
  opts.interaction_radius = 10;
  opts.horizon_seconds = 0.1f;
  BubbleExecutor exec(opts);
  ThreadPool pool(4);

  GameTxn local;  // a attacks b: same bubble
  local.type = TxnType::kAttack;
  local.a = a;
  local.b = b;
  local.amount = 10;
  GameTxn cross;  // a trades with c: different bubbles
  cross.type = TxnType::kTrade;
  cross.a = a;
  cross.b = c;
  cross.amount = 10;

  ExecStats stats = exec.ExecuteBatch(&world, {local, cross}, &pool);
  EXPECT_EQ(stats.committed, 2u);
  EXPECT_EQ(stats.cross_bubble_txns, 1u);
  EXPECT_EQ(stats.bubble_count, 2u);
  EXPECT_FLOAT_EQ(world.Get<Health>(b)->hp, 90);
  EXPECT_EQ(world.Get<Actor>(c)->gold, 110);
}

TEST_F(BubblesTest, DensityDrivesBubbleSizes) {
  // Property (the E6 claim): as density rises, the max bubble grows toward
  // a single world-spanning component.
  auto measure = [&](float extent) {
    WorkloadOptions wopts;
    wopts.num_entities = 300;
    wopts.area_extent = extent;
    wopts.max_speed = 1.0f;
    wopts.max_accel = 0.0f;
    wopts.seed = 11;
    MmoWorkload workload(wopts);
    BubbleOptions bopts;
    bopts.interaction_radius = 10.0f;
    bopts.horizon_seconds = 0.5f;
    auto part = ComputeBubbles(&workload.world(), bopts);
    return part;
  };
  auto sparse = measure(2000.0f);
  auto dense = measure(100.0f);
  EXPECT_GT(sparse.bubble_count, dense.bubble_count);
  EXPECT_LT(sparse.max_bubble_size, dense.max_bubble_size);
}

}  // namespace
}  // namespace gamedb::txn
