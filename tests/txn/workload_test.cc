#include "txn/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace gamedb::txn {
namespace {

TEST(WorkloadTest, PopulatesAllComponents) {
  WorkloadOptions opts;
  opts.num_entities = 50;
  MmoWorkload w(opts);
  EXPECT_EQ(w.entities().size(), 50u);
  EXPECT_EQ(w.world().AliveCount(), 50u);
  for (EntityId e : w.entities()) {
    EXPECT_TRUE(w.world().Has<Position>(e));
    EXPECT_TRUE(w.world().Has<Velocity>(e));
    EXPECT_TRUE(w.world().Has<Health>(e));
    EXPECT_TRUE(w.world().Has<Combat>(e));
    EXPECT_TRUE(w.world().Has<Actor>(e));
  }
  EXPECT_EQ(w.TotalGold(), 50 * 1000);
  EXPECT_DOUBLE_EQ(w.TotalHp(), 50 * 100.0);
}

TEST(WorkloadTest, DeterministicForSeed) {
  WorkloadOptions opts;
  opts.num_entities = 100;
  opts.seed = 77;
  MmoWorkload w1(opts), w2(opts);
  auto b1 = w1.NextBatch();
  auto b2 = w2.NextBatch();
  ASSERT_EQ(b1.size(), b2.size());
  for (size_t i = 0; i < b1.size(); ++i) {
    EXPECT_EQ(b1[i].type, b2[i].type);
    EXPECT_EQ(b1[i].a, b2[i].a);
    EXPECT_EQ(b1[i].b, b2[i].b);
  }
}

TEST(WorkloadTest, BatchSizeFollowsOption) {
  WorkloadOptions opts;
  opts.num_entities = 100;
  opts.txns_per_entity = 2.5f;
  MmoWorkload w(opts);
  EXPECT_EQ(w.NextBatch().size(), 250u);
}

TEST(WorkloadTest, AttackTargetsAreInRange) {
  WorkloadOptions opts;
  opts.num_entities = 200;
  opts.area_extent = 100.0f;
  opts.attack_fraction = 1.0f;
  opts.interaction_radius = 15.0f;
  MmoWorkload w(opts);
  auto batch = w.NextBatch();
  for (const GameTxn& t : batch) {
    if (t.type != TxnType::kAttack) continue;
    const Position* pa = w.world().Get<Position>(t.a);
    const Position* pb = w.world().Get<Position>(t.b);
    ASSERT_NE(pa, nullptr);
    ASSERT_NE(pb, nullptr);
    EXPECT_LE(pa->value.DistanceTo(pb->value), 15.0f + 1e-4f);
    EXPECT_NE(t.a, t.b);  // no self-attacks
  }
}

TEST(WorkloadTest, HotspotSkewsInitiators) {
  WorkloadOptions opts;
  opts.num_entities = 500;
  opts.hotspot_alpha = 0.99;
  opts.attack_fraction = 0.0f;
  opts.trade_fraction = 0.0f;  // all moves; initiator choice is the point
  opts.txns_per_entity = 10.0f;
  MmoWorkload w(opts);
  auto batch = w.NextBatch();
  std::map<uint32_t, int> counts;
  for (const GameTxn& t : batch) counts[t.a.index] += 1;
  // Hottest initiator should dwarf the median.
  int max_count = 0;
  for (auto& [slot, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 50);  // uniform would give ~10
}

TEST(WorkloadTest, ClusteredFractionPacksTheTown) {
  WorkloadOptions opts;
  opts.num_entities = 400;
  opts.area_extent = 1000.0f;
  opts.clustered_fraction = 0.5f;
  opts.seed = 3;
  MmoWorkload w(opts);
  float town = std::max(1000.0f * 0.05f, opts.interaction_radius);
  int in_town = 0;
  for (EntityId e : w.entities()) {
    const Vec3& p = w.world().Get<Position>(e)->value;
    if (p.x <= town && p.z <= town) ++in_town;
  }
  // Around half (plus uniform strays).
  EXPECT_GT(in_town, 150);
}

TEST(WorkloadTest, AdvancePositionsKeepsEntitiesInBounds) {
  WorkloadOptions opts;
  opts.num_entities = 100;
  opts.area_extent = 50.0f;
  opts.max_speed = 20.0f;
  MmoWorkload w(opts);
  for (int i = 0; i < 100; ++i) w.AdvancePositions(0.5f);
  for (EntityId e : w.entities()) {
    const Vec3& p = w.world().Get<Position>(e)->value;
    EXPECT_GE(p.x, 0.0f);
    EXPECT_LE(p.x, 50.0f);
    EXPECT_GE(p.z, 0.0f);
    EXPECT_LE(p.z, 50.0f);
  }
}

}  // namespace
}  // namespace gamedb::txn
