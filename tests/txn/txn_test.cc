#include "txn/txn.h"

#include <gtest/gtest.h>

namespace gamedb::txn {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardComponents();
    a = world.Create();
    b = world.Create();
    world.Set(a, Health{100, 100});
    world.Set(b, Health{100, 100});
    Combat ca;
    ca.attack = 12;
    world.Set(a, ca);
    Combat cb;
    cb.attack = 8;
    cb.defense = 4;
    world.Set(b, cb);
    world.Set(a, Actor{1, 100, 1, true});
    world.Set(b, Actor{2, 50, 1, true});
    world.Set(a, Position{{0, 0, 0}});
  }

  World world;
  EntityId a, b;
};

TEST_F(TxnTest, AttackUsesStatsMinusDefense) {
  GameTxn t;
  t.type = TxnType::kAttack;
  t.a = a;
  t.b = b;
  ApplyTxn(&world, t);
  EXPECT_FLOAT_EQ(world.Get<Health>(b)->hp, 100 - (12 - 4));
}

TEST_F(TxnTest, AttackWithOverrideAmount) {
  GameTxn t;
  t.type = TxnType::kAttack;
  t.a = a;
  t.b = b;
  t.amount = 25;
  ApplyTxn(&world, t);
  EXPECT_FLOAT_EQ(world.Get<Health>(b)->hp, 75);
}

TEST_F(TxnTest, AttackMinimumDamageIsOne) {
  world.Patch<Combat>(b, [](Combat& c) { c.defense = 99; });
  GameTxn t;
  t.type = TxnType::kAttack;
  t.a = a;
  t.b = b;
  ApplyTxn(&world, t);
  EXPECT_FLOAT_EQ(world.Get<Health>(b)->hp, 99);
}

TEST_F(TxnTest, AttackOnDeadTargetIsNoop) {
  GameTxn t;
  t.type = TxnType::kAttack;
  t.a = a;
  t.b = EntityId(99, 0);  // never existed
  ApplyTxn(&world, t);    // must not crash
}

TEST_F(TxnTest, TradeTransfersAndClamps) {
  GameTxn t;
  t.type = TxnType::kTrade;
  t.a = a;
  t.b = b;
  t.amount = 30;
  ApplyTxn(&world, t);
  EXPECT_EQ(world.Get<Actor>(a)->gold, 70);
  EXPECT_EQ(world.Get<Actor>(b)->gold, 80);

  t.amount = 1000;  // more than a has
  ApplyTxn(&world, t);
  EXPECT_EQ(world.Get<Actor>(a)->gold, 0);
  EXPECT_EQ(world.Get<Actor>(b)->gold, 150);

  ApplyTxn(&world, t);  // broke: no-op
  EXPECT_EQ(world.Get<Actor>(b)->gold, 150);
}

TEST_F(TxnTest, MoveWritesPosition) {
  GameTxn t;
  t.type = TxnType::kMove;
  t.a = a;
  t.dest = {5, 0, 7};
  ApplyTxn(&world, t);
  EXPECT_EQ(world.Get<Position>(a)->value, Vec3(5, 0, 7));
}

TEST_F(TxnTest, AoeHitsAllTargets) {
  EntityId c = world.Create();
  world.Set(c, Health{100, 100});
  GameTxn t;
  t.type = TxnType::kAoe;
  t.a = a;
  t.amount = 10;
  t.extra = {b, c};
  ApplyTxn(&world, t);
  EXPECT_FLOAT_EQ(world.Get<Health>(b)->hp, 90);
  EXPECT_FLOAT_EQ(world.Get<Health>(c)->hp, 90);
}

TEST_F(TxnTest, ReadWriteSetsMatchSemantics) {
  GameTxn attack;
  attack.type = TxnType::kAttack;
  attack.a = a;
  attack.b = b;
  std::vector<EntityId> ws, rs;
  attack.AppendWriteSet(&ws);
  attack.AppendReadSet(&rs);
  EXPECT_EQ(ws, std::vector<EntityId>{b});
  EXPECT_EQ(rs, (std::vector<EntityId>{a, b}));

  GameTxn trade;
  trade.type = TxnType::kTrade;
  trade.a = a;
  trade.b = b;
  ws.clear();
  trade.AppendWriteSet(&ws);
  EXPECT_EQ(ws, (std::vector<EntityId>{a, b}));

  GameTxn move;
  move.type = TxnType::kMove;
  move.a = a;
  ws.clear();
  move.AppendWriteSet(&ws);
  EXPECT_EQ(ws, std::vector<EntityId>{a});
}

}  // namespace
}  // namespace gamedb::txn
