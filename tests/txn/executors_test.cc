#include "txn/executors.h"

#include <gtest/gtest.h>

#include <memory>

#include "txn/bubbles.h"
#include "txn/workload.h"

namespace gamedb::txn {
namespace {

enum class EngineKind { kGlobal, k2pl, kOcc, kBubbles };

std::unique_ptr<TxnExecutor> MakeEngine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kGlobal:
      return std::make_unique<GlobalLockExecutor>();
    case EngineKind::k2pl:
      return std::make_unique<EntityLockExecutor>();
    case EngineKind::kOcc:
      return std::make_unique<OccExecutor>();
    case EngineKind::kBubbles: {
      BubbleOptions opts;
      opts.interaction_radius = 12.0f;
      opts.horizon_seconds = 0.5f;
      return std::make_unique<BubbleExecutor>(opts);
    }
  }
  return nullptr;
}

class ExecutorParamTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ExecutorParamTest, InvariantsHoldUnderConcurrency) {
  WorkloadOptions opts;
  opts.num_entities = 400;
  opts.area_extent = 200.0f;
  opts.attack_fraction = 0.4f;
  opts.trade_fraction = 0.4f;
  opts.txns_per_entity = 2.0f;
  opts.seed = 42;
  MmoWorkload workload(opts);

  int64_t gold_before = workload.TotalGold();
  double hp_before = workload.TotalHp();

  auto engine = MakeEngine(GetParam());
  ThreadPool pool(4);
  uint64_t committed = 0;
  size_t txn_count = 0;
  for (int tick = 0; tick < 5; ++tick) {
    auto batch = workload.NextBatch();
    txn_count += batch.size();
    ExecStats stats = engine->ExecuteBatch(&workload.world(), batch, &pool);
    committed += stats.committed;
    workload.AdvancePositions(0.1f);
  }
  // Every transaction committed exactly once.
  EXPECT_EQ(committed, txn_count);
  // Gold is conserved by trades.
  EXPECT_EQ(workload.TotalGold(), gold_before);
  // Attacks strictly reduce total hp.
  EXPECT_LT(workload.TotalHp(), hp_before);
}

TEST_P(ExecutorParamTest, MatchesSerialOutcomeOnCommutativeWorkload) {
  // Attacks and trades are commutative, so any correct executor must land
  // on exactly the serial totals (per entity, since damage depends only on
  // static stats).
  WorkloadOptions opts;
  opts.num_entities = 200;
  opts.area_extent = 80.0f;  // dense -> heavy conflicts
  opts.attack_fraction = 0.6f;
  opts.trade_fraction = 0.4f;  // no moves
  opts.txns_per_entity = 3.0f;
  opts.seed = 7;

  // Serial reference.
  MmoWorkload ref_workload(opts);
  auto ref_batch = ref_workload.NextBatch();
  for (const GameTxn& t : ref_batch) ApplyTxn(&ref_workload.world(), t);

  // Engine under test, same seed -> identical batch.
  MmoWorkload workload(opts);
  auto batch = workload.NextBatch();
  ASSERT_EQ(batch.size(), ref_batch.size());
  auto engine = MakeEngine(GetParam());
  ThreadPool pool(8);
  engine->ExecuteBatch(&workload.world(), batch, &pool);

  for (size_t i = 0; i < workload.entities().size(); ++i) {
    EntityId e = workload.entities()[i];
    EntityId re = ref_workload.entities()[i];
    ASSERT_FLOAT_EQ(workload.world().Get<Health>(e)->hp,
                    ref_workload.world().Get<Health>(re)->hp)
        << "entity " << i;
    ASSERT_EQ(workload.world().Get<Actor>(e)->gold,
              ref_workload.world().Get<Actor>(re)->gold)
        << "entity " << i;
  }
}

TEST_P(ExecutorParamTest, EmptyBatchIsFine) {
  WorkloadOptions opts;
  opts.num_entities = 10;
  MmoWorkload workload(opts);
  auto engine = MakeEngine(GetParam());
  ThreadPool pool(2);
  ExecStats stats = engine->ExecuteBatch(&workload.world(), {}, &pool);
  EXPECT_EQ(stats.committed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Engines, ExecutorParamTest,
                         ::testing::Values(EngineKind::kGlobal,
                                           EngineKind::k2pl, EngineKind::kOcc,
                                           EngineKind::kBubbles),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kGlobal:
                               return "GlobalLock";
                             case EngineKind::k2pl:
                               return "Entity2pl";
                             case EngineKind::kOcc:
                               return "Occ";
                             case EngineKind::kBubbles:
                               return "Bubbles";
                           }
                           return "?";
                         });

TEST(OccExecutorTest, AbortsHappenUnderContentionButAllCommit) {
  // Hotspot: everyone trades with a tiny set of partners.
  WorkloadOptions opts;
  opts.num_entities = 100;
  opts.area_extent = 10.0f;  // everyone in range of everyone
  opts.attack_fraction = 0.0f;
  opts.trade_fraction = 1.0f;
  opts.txns_per_entity = 4.0f;
  MmoWorkload workload(opts);
  auto batch = workload.NextBatch();
  OccExecutor occ;
  ThreadPool pool(8);
  ExecStats stats = occ.ExecuteBatch(&workload.world(), batch, &pool);
  EXPECT_EQ(stats.committed, batch.size());
  // With 8 threads hammering a dense trade graph there should be conflicts.
  // (Not asserted as a hard bound — scheduling dependent — but tracked.)
  EXPECT_GE(stats.aborted, 0u);
}

TEST(LockManagerTest, GuardCountsDistinctStripes) {
  LockManager mgr(LockManagerOptions{64});
  std::vector<EntityId> dup = {EntityId(1, 0), EntityId(1, 0),
                               EntityId(2, 0)};
  LockManager::MultiGuard guard(&mgr, dup);
  EXPECT_LE(guard.lock_count(), 2u);
  EXPECT_GE(guard.lock_count(), 1u);
}

TEST(LockManagerTest, ConcurrentGuardsDoNotDeadlock) {
  LockManager mgr(LockManagerOptions{8});  // few stripes -> heavy overlap
  ThreadPool pool(8);
  Rng rng(5);
  std::vector<std::vector<EntityId>> sets;
  for (int i = 0; i < 400; ++i) {
    std::vector<EntityId> set;
    for (int j = 0; j < 6; ++j) {
      set.push_back(EntityId(static_cast<uint32_t>(rng.NextBounded(64)), 0));
    }
    sets.push_back(std::move(set));
  }
  std::atomic<int> done{0};
  pool.ParallelFor(sets.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      LockManager::MultiGuard guard(&mgr, sets[i]);
      done.fetch_add(1);
    }
  });
  EXPECT_EQ(done.load(), 400);
}

}  // namespace
}  // namespace gamedb::txn
