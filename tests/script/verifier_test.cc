#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/reflect.h"
#include "core/world.h"
#include "script/analyzer.h"
#include "script/bindings.h"
#include "script/builtins.h"
#include "script/host.h"
#include "script/lint_report.h"
#include "script/parser.h"
#include "script/triggers.h"
#include "views/maintainer.h"

// Tests for the multi-pass load-time verifier (script/analyzer.h Verify):
// phase safety, schema bindings, static cost and the multi-error
// DiagnosticSink contract. The historical fail-fast Analyze() surface keeps
// its own suite in analyzer_test.cc.

namespace gamedb::script {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardComponents();
    RegisterCoreBuiltins(&interp_);
    BindWorld(&interp_, &world_, nullptr, WorldBindOptions{});
    BindViews(&interp_, &catalog_);
    triggers_.InstallFireBuiltin();
  }

  /// Parses `src` and runs the full verifier into `sink`.
  VerifyReport Run(std::string_view src, VerifierOptions opts,
                   DiagnosticSink* sink) {
    auto parsed = Parse(src, "test.gsl");
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (!opts.is_builtin) {
      opts.is_builtin = [this](const std::string& n) {
        return interp_.IsBuiltin(n);
      };
    }
    if (!opts.schema.has_component) opts.schema = ReflectionSchema();
    return Verify(*parsed, opts, sink);
  }

  static bool HasError(const DiagnosticSink& sink, DiagPass pass,
                       const std::string& needle) {
    for (const auto& d : sink.diagnostics()) {
      if (d.severity == Severity::kError && d.pass == pass &&
          d.message.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  World world_;
  views::ViewCatalog catalog_{&world_};
  Interpreter interp_;
  TriggerSystem triggers_{&interp_};
};

// ---------------------------------------------------------------------------
// Phase pass

TEST_F(VerifierTest, DirectWriteRejectedInReadOnlyPhase) {
  const char* src = R"(fn t(e) {
  set(e, "Health", "hp", 0)
})";
  VerifierOptions opts;
  opts.phase = PhaseContext::kParallelReject;
  DiagnosticSink sink;
  Run(src, opts, &sink);
  ASSERT_TRUE(sink.has_errors());
  ASSERT_EQ(sink.diagnostics().size(), 1u);
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_EQ(d.pass, DiagPass::kPhase);
  EXPECT_NE(d.message.find("read-only"), std::string::npos) << d.message;
  EXPECT_EQ(d.loc.line, 2);
  EXPECT_GT(d.loc.col, 0);
  EXPECT_EQ(d.origin, "test.gsl");

  // The identical script is fine where writes defer (gated) or run direct.
  for (PhaseContext ok_phase :
       {PhaseContext::kSequential, PhaseContext::kParallelDefer}) {
    VerifierOptions vo;
    vo.phase = ok_phase;
    DiagnosticSink clean;
    Run(src, vo, &clean);
    EXPECT_FALSE(clean.has_errors()) << clean.ToString();
  }
}

TEST_F(VerifierTest, SpawnRejectedInBothParallelPhases) {
  const char* src = "fn t(e) { spawn() }";
  for (PhaseContext phase :
       {PhaseContext::kParallelDefer, PhaseContext::kParallelReject}) {
    VerifierOptions opts;
    opts.phase = phase;
    DiagnosticSink sink;
    Run(src, opts, &sink);
    EXPECT_TRUE(HasError(sink, DiagPass::kPhase, "spawn()"))
        << PhaseContextName(phase) << ": " << sink.ToString();
    // Message mirrors the runtime rejection text designers already know.
    EXPECT_TRUE(HasError(sink, DiagPass::kPhase, "apply phase"));
  }
  VerifierOptions seq;
  seq.phase = PhaseContext::kSequential;
  DiagnosticSink sink;
  Run(src, seq, &sink);
  EXPECT_FALSE(sink.has_errors()) << sink.ToString();
}

TEST_F(VerifierTest, EffectsPropagateTransitivelyThroughHelpers) {
  // The write is two calls deep; only the effect analysis sees it.
  const char* src = R"(fn inner(e) { set(e, "Health", "hp", 1) }
fn outer(e) { inner(e) }
fn t(e) { outer(e) })";
  VerifierOptions opts;
  opts.phase = PhaseContext::kParallelReject;
  DiagnosticSink sink;
  VerifyReport report = Run(src, opts, &sink);
  EXPECT_TRUE(HasError(sink, DiagPass::kPhase, "read-only"))
      << sink.ToString();
  // Every entry point carries the transitive write in its effect set.
  for (const auto& entry : report.entries) {
    EXPECT_TRUE(entry.facts.effects & kEffectGatedWrite) << entry.name;
  }
  EXPECT_EQ(EffectSetName(report.effects), "write");
}

TEST_F(VerifierTest, TopLevelSideEffectsRejectedWhenPurityRequired) {
  const char* src = "emit(\"damage\", 1, 2)";
  VerifierOptions opts;
  opts.phase = PhaseContext::kParallelDefer;
  opts.top_level_must_be_pure = true;
  DiagnosticSink sink;
  Run(src, opts, &sink);
  EXPECT_TRUE(HasError(sink, DiagPass::kPhase, "top level"))
      << sink.ToString();
}

// ---------------------------------------------------------------------------
// Bindings pass

TEST_F(VerifierTest, UnknownComponentFieldAndViewAreErrors) {
  const char* src = R"(fn t(e) {
  let a = get(e, "Nope", "hp")
  let b = get(e, "Health", "mana")
  let c = view_count("ghost_view")
})";
  VerifierOptions opts;
  opts.schema = ReflectionSchema();
  opts.schema.has_view = [](const std::string&) { return false; };
  DiagnosticSink sink;
  Run(src, opts, &sink);
  EXPECT_TRUE(HasError(sink, DiagPass::kBindings, "unknown component 'Nope'"))
      << sink.ToString();
  EXPECT_TRUE(
      HasError(sink, DiagPass::kBindings, "component 'Health' has no field"))
      << sink.ToString();
  EXPECT_TRUE(HasError(sink, DiagPass::kBindings, "no view named"))
      << sink.ToString();
  EXPECT_EQ(sink.error_count(), 3u);
  // Findings land in source order with real positions.
  EXPECT_EQ(sink.diagnostics()[0].loc.line, 2);
  EXPECT_EQ(sink.diagnostics()[1].loc.line, 3);
  EXPECT_EQ(sink.diagnostics()[2].loc.line, 4);
}

TEST_F(VerifierTest, AbsentSchemaCallbacksSkipThatCheckFamily) {
  // Without a view catalog (gsl_lint standalone mode) view names pass.
  const char* src = "fn t(e) { let c = view_count(\"anything\") }";
  VerifierOptions opts;
  opts.schema = ReflectionSchema();  // has_view left unset
  DiagnosticSink sink;
  Run(src, opts, &sink);
  EXPECT_FALSE(sink.has_errors()) << sink.ToString();
}

TEST_F(VerifierTest, UnknownChannelAndUnhandledEventAreWarnings) {
  const char* src = R"(fn t(e) {
  emit("unwired", e, 1)
  fire("unhandled")
})";
  VerifierOptions opts;
  opts.schema = ReflectionSchema();
  opts.schema.has_channel = [](const std::string& c) { return c == "damage"; };
  opts.schema.has_event = [](const std::string&) { return false; };
  DiagnosticSink sink;
  Run(src, opts, &sink);
  EXPECT_FALSE(sink.has_errors()) << sink.ToString();
  EXPECT_EQ(sink.warning_count(), 2u) << sink.ToString();
}

TEST_F(VerifierTest, BadArityAndBadComparisonOperatorAreErrors) {
  const char* src = R"(fn t(e) {
  let a = get(e, "Health")
  let b = where("Health", "hp", "<>", 10)
})";
  DiagnosticSink sink;
  Run(src, VerifierOptions{}, &sink);
  EXPECT_TRUE(HasError(sink, DiagPass::kBindings, "expected 3 args"))
      << sink.ToString();
  EXPECT_TRUE(HasError(sink, DiagPass::kBindings, "'<>'")) << sink.ToString();
}

// ---------------------------------------------------------------------------
// Structure pass (multi-error surface; the fail-fast Analyze() contract is
// covered in analyzer_test.cc)

TEST_F(VerifierTest, RecursionDiagnosticAnchorsTheCycleClosingCall) {
  const char* src = R"(fn f(n) {
  if n > 0 {
    return f(n - 1)
  }
  return 0
})";
  VerifierOptions opts;
  opts.restriction = Restriction::kNoRecursion;
  DiagnosticSink sink;
  Run(src, opts, &sink);
  ASSERT_TRUE(sink.has_errors());
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_EQ(d.pass, DiagPass::kStructure);
  EXPECT_NE(d.message.find("recursion involving 'f'"), std::string::npos)
      << d.message;
  EXPECT_EQ(d.loc.line, 3);  // the `f(n - 1)` call site, not the fn decl
  EXPECT_GT(d.loc.col, 0);
}

// ---------------------------------------------------------------------------
// Cost pass

TEST_F(VerifierTest, ScanLoopTripsTightBudgetAndFitsLooseOne) {
  const char* src = R"(fn t(e) {
  foreach x in entities_with("Health") {
    let hp = get(x, "Health", "hp")
  }
})";
  VerifierOptions tight;
  tight.cost_budget = 100;
  DiagnosticSink sink;
  VerifyReport report = Run(src, tight, &sink);
  EXPECT_TRUE(HasError(sink, DiagPass::kCost, "over the budget"))
      << sink.ToString();
  EXPECT_GT(report.max_entry_cost, 100.0);
  EXPECT_EQ(report.max_entry_name, "t");

  VerifierOptions loose;
  loose.cost_budget = 1e9;
  DiagnosticSink clean;
  Run(src, loose, &clean);
  EXPECT_FALSE(clean.has_errors()) << clean.ToString();

  // Budget <= 0 disables enforcement but the report still carries costs.
  DiagnosticSink off;
  VerifyReport unpriced = Run(src, VerifierOptions{}, &off);
  EXPECT_FALSE(off.has_errors()) << off.ToString();
  EXPECT_GT(unpriced.max_entry_cost, 0.0);
}

TEST_F(VerifierTest, RecursiveEntryIsUnboundedUnderAnyBudget) {
  const char* src = "fn f(n) { return f(n - 1) }";
  VerifierOptions opts;  // kFull: recursion structurally legal...
  opts.cost_budget = 1e12;
  DiagnosticSink sink;
  VerifyReport report = Run(src, opts, &sink);
  // ...but no finite budget can admit it.
  EXPECT_TRUE(HasError(sink, DiagPass::kCost, "statically unbounded"))
      << sink.ToString();
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_TRUE(report.entries[0].facts.cost_unbounded);
}

// ---------------------------------------------------------------------------
// Multi-error collection and ordering

TEST_F(VerifierTest, AllFindingsCollectedInPassThenSourceOrder) {
  const char* src = R"(fn a(e) { set(e, "Nope", "hp", 1) }
fn b(e) { spawn() })";
  VerifierOptions opts;
  opts.phase = PhaseContext::kParallelReject;
  DiagnosticSink sink;
  Run(src, opts, &sink);
  // One run, every problem: both phase violations and the bad component.
  ASSERT_EQ(sink.error_count(), 3u) << sink.ToString();
  const auto& diags = sink.diagnostics();
  EXPECT_EQ(diags[0].pass, DiagPass::kPhase);
  EXPECT_EQ(diags[0].loc.line, 1);
  EXPECT_EQ(diags[1].pass, DiagPass::kPhase);
  EXPECT_EQ(diags[1].loc.line, 2);
  EXPECT_EQ(diags[2].pass, DiagPass::kBindings);
  EXPECT_EQ(diags[2].loc.line, 1);
}

// ---------------------------------------------------------------------------
// Report facts

TEST_F(VerifierTest, ReportNamesEntriesEffectsAndHandlers) {
  const char* src = R"(fn t(e) {
  emit("damage", e, 1)
}
on killed(prey) {
  print("down")
})";
  DiagnosticSink sink;
  VerifyReport report = Run(src, VerifierOptions{}, &sink);
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_EQ(report.entries[0].name, "t");
  EXPECT_FALSE(report.entries[0].is_handler);
  EXPECT_EQ(report.entries[1].name, "on killed");
  EXPECT_TRUE(report.entries[1].is_handler);
  EXPECT_TRUE(report.effects & kEffectEmit);
  EXPECT_EQ(EffectSetName(0), "pure");
}

// ---------------------------------------------------------------------------
// Shipped assets: every .gsl pack in assets/scripts/ must verify clean

TEST_F(VerifierTest, EveryShippedAssetVerifiesClean) {
  const std::string self = __FILE__;
  const std::string suffix = "tests/script/verifier_test.cc";
  ASSERT_NE(self.size(), self.find(suffix));
  const std::filesystem::path assets =
      std::filesystem::path(self.substr(0, self.size() - suffix.size())) /
      "assets" / "scripts";
  ASSERT_TRUE(std::filesystem::is_directory(assets)) << assets;

  size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(assets)) {
    if (entry.path().extension() != ".gsl") continue;
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();

    VerifierOptions opts;
    opts.restriction = Restriction::kNoRecursion;
    // Parallel-phase packs declare themselves via their lint directive.
    if (source.find("phase=parallel") != std::string::npos) {
      opts.phase = PhaseContext::kParallelDefer;
      opts.top_level_must_be_pure = true;
    }
    DiagnosticSink sink;
    VerifyReport report =
        Run(source, opts, &sink);
    EXPECT_FALSE(sink.has_errors())
        << entry.path().filename() << ":\n" << sink.ToString();
    EXPECT_FALSE(report.entries.empty()) << entry.path().filename();
    ++checked;
  }
  EXPECT_GE(checked, 3u);  // hunt, wolf_pack, loadgen_combat at minimum
}

// ---------------------------------------------------------------------------
// ScriptHost strictness regression: the same bad pack that used to fail only
// at runtime now fails at Load under kStrict, still loads (with findings)
// under kWarn, and under kWarn the historical runtime rejection is intact.

TEST_F(VerifierTest, HostStrictRejectsWhatWarnDefersToRuntime) {
  // Direct write in a read-only (kReject) parallel phase.
  const char* src = R"(fn t(e) {
  set(e, "Health", "hp", 0)
})";
  EntityId e = world_.Create();
  world_.Set(e, Health{50.0f, 100.0f});

  ScriptHostOptions warn_opts;
  warn_opts.mutations = MutationPolicy::kReject;
  warn_opts.strictness = Strictness::kWarn;  // the default
  ScriptHost warn_host(&world_, warn_opts);
  ASSERT_TRUE(warn_host.Load(src, "bad.gsl").ok());
  // The verifier saw the problem and kept it readable...
  EXPECT_TRUE(warn_host.diagnostics().has_errors());
  EXPECT_NE(warn_host.diagnostics().ToString().find("read-only"),
            std::string::npos);
  // ...and the runtime backstop still rejects the write mid-tick.
  auto stats = warn_host.RunTick("t", {e});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().script_errors, 1u);
  EXPECT_NE(stats.value().first_error.message().find("read-only"),
            std::string::npos)
      << stats.value().first_error.ToString();

  ScriptHostOptions strict_opts = warn_opts;
  strict_opts.strictness = Strictness::kStrict;
  ScriptHost strict_host(&world_, strict_opts);
  Status st = strict_host.Load(src, "bad.gsl");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("script verification failed"),
            std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("bad.gsl:2:"), std::string::npos)
      << st.ToString();

  // kOff retains the historical behavior: no verifier, no diagnostics.
  ScriptHostOptions off_opts = warn_opts;
  off_opts.strictness = Strictness::kOff;
  ScriptHost off_host(&world_, off_opts);
  ASSERT_TRUE(off_host.Load(src, "bad.gsl").ok());
  EXPECT_TRUE(off_host.diagnostics().empty());
}

TEST_F(VerifierTest, HostStrictAcceptsCleanPackAndReportsFacts) {
  const char* src = R"(fn t(e) {
  emit("damage", e, get(e, "Combat", "attack"))
})";
  EntityId e = world_.Create();
  world_.Set(e, Combat{});
  ScriptHostOptions opts;
  opts.strictness = Strictness::kStrict;
  ScriptHost host(&world_, opts);
  host.OnChannel("damage", [](EntityId, double) {});
  ASSERT_TRUE(host.Load(src, "clean.gsl").ok());
  EXPECT_FALSE(host.diagnostics().has_errors());
  EXPECT_TRUE(host.verify_report().effects & kEffectEmit);
  EXPECT_EQ(host.verify_report().max_entry_name, "t");
}

// ---------------------------------------------------------------------------
// Access-summary dataflow pass

TEST_F(VerifierTest, SelfWritesSurviveHelperParameterSubstitution) {
  // The write is inside a helper, through the helper's own parameter; the
  // entry only ever passes its ticked entity, so the summary stays :self.
  const char* src = R"(fn hurt(x, amount) {
  set(x, "Health", "hp", amount)
}
fn t(e) {
  hurt(e, get(e, "Combat", "attack"))
})";
  DiagnosticSink sink;
  VerifyReport report = Run(src, VerifierOptions{}, &sink);
  ASSERT_FALSE(sink.has_errors()) << sink.ToString();
  const EntryFacts* t = nullptr;
  for (const auto& entry : report.entries) {
    if (entry.name == "t") t = &entry;
  }
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(AccessSummaryToString(t->facts.access),
            "reads{Combat.attack} writes{Health.hp:self} radius 0");
  EXPECT_TRUE(DirectWriteEligible(*t));
}

TEST_F(VerifierTest, AliasedEntityWritesDemoteToForeign) {
  // `let victim = e` breaks the parameter chain: the analysis is
  // flow-insensitive about locals, so the write conservatively counts as
  // foreign (any entity) and direct-write eligibility is lost.
  const char* src = R"(fn t(e) {
  let victim = e
  set(victim, "Health", "hp", 0)
})";
  DiagnosticSink sink;
  VerifyReport report = Run(src, VerifierOptions{}, &sink);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(AccessSummaryToString(report.entries[0].facts.access),
            "reads{} writes{Health.hp:foreign} radius 0");
  std::string reason;
  EXPECT_FALSE(DirectWriteEligible(report.entries[0], &reason));
  EXPECT_NE(reason.find("other than the ticked entity"), std::string::npos)
      << reason;
}

TEST_F(VerifierTest, RecursionPoisonsSummaryToTop) {
  const char* src = "fn f(e) { return f(e) }";
  VerifierOptions opts;  // kFull: recursion is structurally legal
  DiagnosticSink sink;
  VerifyReport report = Run(src, opts, &sink);
  ASSERT_EQ(report.entries.size(), 1u);
  const AccessSummary& a = report.entries[0].facts.access;
  EXPECT_TRUE(a.unknown_read);
  EXPECT_TRUE(a.unknown_write);
  EXPECT_TRUE(a.radius_unbounded);
  EXPECT_EQ(AccessSummaryToString(a),
            "reads{*} writes{*} radius unbounded");
  EXPECT_FALSE(DirectWriteEligible(report.entries[0]));
}

TEST_F(VerifierTest, SpatialFootprintTakesMaxLiteralRadiusOrTop) {
  const char* bounded = R"(fn t(e) {
  let near = within(vec3(0, 0, 0), 5)
  let far = within(vec3(0, 0, 0), 40)
})";
  DiagnosticSink sink;
  VerifyReport report = Run(bounded, VerifierOptions{}, &sink);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].facts.access.radius, 40.0);
  EXPECT_FALSE(report.entries[0].facts.access.radius_unbounded);
  // within() reads positions.
  EXPECT_EQ(AccessSummaryToString(report.entries[0].facts.access),
            "reads{Position.value} writes{} radius 40");

  const char* dynamic = R"(fn t(e) {
  let r = get(e, "Combat", "range")
  let near = within(vec3(0, 0, 0), r)
})";
  DiagnosticSink sink2;
  VerifyReport report2 = Run(dynamic, VerifierOptions{}, &sink2);
  ASSERT_EQ(report2.entries.size(), 1u);
  EXPECT_TRUE(report2.entries[0].facts.access.radius_unbounded);
}

TEST_F(VerifierTest, ComputedComponentNameIsUnknownAccess) {
  const char* src = R"(fn t(e, comp) {
  set(e, comp, "hp", 0)
})";
  DiagnosticSink sink;
  VerifyReport report = Run(src, VerifierOptions{}, &sink);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_TRUE(report.entries[0].facts.access.unknown_write);
}

TEST_F(VerifierTest, ConflictGraphFlagsOverlapsAndClearsDisjointPairs) {
  const char* src = R"(fn writer(e) { set(e, "Health", "hp", 1) }
fn reader(e) { let hp = get(e, "Health", "hp") }
fn bystander(e) { let g = get(e, "Actor", "gold") })";
  DiagnosticSink sink;
  VerifyReport report = Run(src, VerifierOptions{}, &sink);
  ASSERT_EQ(report.entries.size(), 3u);
  // Exactly one edge: writer ~ reader on Health.hp. bystander touches a
  // disjoint table and pairs with nobody.
  ASSERT_EQ(report.conflicts.size(), 1u) << [&] {
    std::string all;
    for (const auto& c : report.conflicts) all += c.reason + "; ";
    return all;
  }();
  EXPECT_EQ(report.conflicts[0].a, 0u);
  EXPECT_EQ(report.conflicts[0].b, 1u);
  EXPECT_NE(report.conflicts[0].reason.find("Health.hp"), std::string::npos)
      << report.conflicts[0].reason;
}

TEST_F(VerifierTest, SpawnAndFireForceConflictsRegardlessOfFields) {
  const char* src = R"(fn spawner(e) { let s = spawn() }
fn unrelated(e) { let g = get(e, "Actor", "gold") })";
  DiagnosticSink sink;
  VerifyReport report = Run(src, VerifierOptions{}, &sink);
  ASSERT_EQ(report.conflicts.size(), 1u);
  EXPECT_NE(report.conflicts[0].reason.find("spawn()"), std::string::npos);
}

TEST_F(VerifierTest, DirectWriteEligibilityRules) {
  struct Case {
    const char* src;
    bool eligible;
    const char* reason_needle;  // nullptr when eligible
  };
  const Case cases[] = {
      // Read-only: trivially eligible.
      {"fn t(e) { let hp = get(e, \"Health\", \"hp\") }", true, nullptr},
      // Self-write of a field it does not read: eligible.
      {"fn t(e) { set(e, \"Health\", \"hp\", 1) }", true, nullptr},
      // emit alongside a write: channel applies would see mid-tick state.
      {"fn t(e) { set(e, \"Health\", \"hp\", 1) emit(\"damage\", e, 1) }",
       false, "emits effects while writing"},
      // Write overlaps its own read: tick-start snapshot would differ.
      {"fn t(e) { set(e, \"Health\", \"hp\", get(e, \"Health\", \"hp\")) }",
       false, "overlap reads"},
      // Structural.
      {"fn t(e) { destroy(e) }", false, "membership"},
      // Reads one field, writes a *different* field of the same table: the
      // keys are disjoint, so still eligible.
      {"fn t(e) { set(e, \"Health\", \"hp\", get(e, \"Health\", "
       "\"max_hp\")) }",
       true, nullptr},
  };
  for (const Case& c : cases) {
    DiagnosticSink sink;
    VerifyReport report = Run(c.src, VerifierOptions{}, &sink);
    ASSERT_EQ(report.entries.size(), 1u) << c.src;
    std::string reason;
    EXPECT_EQ(DirectWriteEligible(report.entries[0], &reason), c.eligible)
        << c.src << " -> " << reason;
    if (c.reason_needle != nullptr) {
      EXPECT_NE(reason.find(c.reason_needle), std::string::npos)
          << c.src << " -> " << reason;
    }
  }
}

// ---------------------------------------------------------------------------
// Golden access summaries for every shipped pack

TEST_F(VerifierTest, ShippedPackGoldenSummariesAndConflicts) {
  const std::string self = __FILE__;
  const std::string suffix = "tests/script/verifier_test.cc";
  ASSERT_NE(self.size(), self.find(suffix));
  const std::filesystem::path assets =
      std::filesystem::path(self.substr(0, self.size() - suffix.size())) /
      "assets" / "scripts";

  struct Golden {
    const char* entry;
    const char* summary;
  };
  struct Pack {
    const char* file;
    std::vector<Golden> entries;
    size_t conflict_edges;
  };
  const Pack packs[] = {
      {"hunt.gsl",
       {{"hunt_tick",
         "reads{Combat.attack, Health.hp} writes{Health.hp:foreign, *} "
         "structural radius 0"},
        {"on killed", "reads{Health.*} writes{} radius 0"}},
       1},  // hunt_tick fires "killed" -> forced edge to its handler
      {"loadgen_combat.gsl",
       {{"tick",
         "reads{Combat.attack, Combat.target, Health.hp} writes{} "
         "radius 0"}},
       0},
      {"wolf_pack.gsl",
       {{"pack_tick",
         "reads{Combat.attack, Combat.target, Health.hp} "
         "writes{Health.hp:self} radius 0"}},
       0},
  };
  for (const Pack& pack : packs) {
    std::ifstream in(assets / pack.file);
    ASSERT_TRUE(in.good()) << pack.file;
    std::stringstream buf;
    buf << in.rdbuf();
    VerifierOptions opts;
    opts.restriction = Restriction::kNoRecursion;
    DiagnosticSink sink;
    VerifyReport report = Run(buf.str(), opts, &sink);
    ASSERT_EQ(report.entries.size(), pack.entries.size()) << pack.file;
    for (size_t i = 0; i < pack.entries.size(); ++i) {
      EXPECT_EQ(report.entries[i].name, pack.entries[i].entry) << pack.file;
      EXPECT_EQ(AccessSummaryToString(report.entries[i].facts.access),
                pack.entries[i].summary)
          << pack.file << " " << report.entries[i].name;
    }
    EXPECT_EQ(report.conflicts.size(), pack.conflict_edges) << pack.file;
  }
}

// ---------------------------------------------------------------------------
// Did-you-mean suggestions (bindings pass)

TEST_F(VerifierTest, UnknownNamesGetDidYouMeanSuggestions) {
  const char* src = R"(fn t(e) {
  let a = get(e, "Helth", "hp")
  let b = get(e, "Health", "atack")
  let c = view_count("woonded")
  emit("damge", e, 1)
})";
  VerifierOptions opts;
  opts.schema = ReflectionSchema();
  opts.schema.has_view = [](const std::string& v) { return v == "wounded"; };
  opts.schema.view_names = []() {
    return std::vector<std::string>{"wounded"};
  };
  opts.schema.has_channel = [](const std::string& c) {
    return c == "damage";
  };
  opts.schema.channel_names = []() {
    return std::vector<std::string>{"damage"};
  };
  DiagnosticSink sink;
  Run(src, opts, &sink);
  EXPECT_TRUE(HasError(sink, DiagPass::kBindings,
                       "unknown component 'Helth'; did you mean 'Health'?"))
      << sink.ToString();
  // "atack" is edit distance 1 from Health's real field "attack"? No —
  // "attack" lives on Combat; Health offers hp/max_hp, neither within 2.
  // The field suggestion draws from the *resolved component's* fields, so
  // no suggestion fires here — just the plain error.
  EXPECT_TRUE(
      HasError(sink, DiagPass::kBindings, "component 'Health' has no field"))
      << sink.ToString();
  EXPECT_TRUE(HasError(sink, DiagPass::kBindings,
                       "did you mean 'wounded'?"))
      << sink.ToString();
  bool channel_hint = false;
  for (const auto& d : sink.diagnostics()) {
    channel_hint = channel_hint ||
                   d.message.find("did you mean 'damage'?") !=
                       std::string::npos;
  }
  EXPECT_TRUE(channel_hint) << sink.ToString();
}

TEST_F(VerifierTest, FieldSuggestionDrawsFromTheResolvedComponent) {
  const char* src = R"(fn t(e) {
  let a = get(e, "Combat", "atack")
  let b = get(e, "Health", "max_h")
})";
  DiagnosticSink sink;
  Run(src, VerifierOptions{}, &sink);
  EXPECT_TRUE(HasError(sink, DiagPass::kBindings, "did you mean 'attack'?"))
      << sink.ToString();
  EXPECT_TRUE(HasError(sink, DiagPass::kBindings, "did you mean 'max_hp'?"))
      << sink.ToString();
}

TEST_F(VerifierTest, NoSuggestionBeyondEditDistanceTwo) {
  const char* src = "fn t(e) { let a = get(e, \"Zebra\", \"hp\") }";
  DiagnosticSink sink;
  Run(src, VerifierOptions{}, &sink);
  ASSERT_TRUE(sink.has_errors());
  for (const auto& d : sink.diagnostics()) {
    EXPECT_EQ(d.message.find("did you mean"), std::string::npos)
        << d.message;
  }
}

// ---------------------------------------------------------------------------
// gsl_lint JSON document: emit -> validate round-trip

TEST_F(VerifierTest, LintJsonRoundTripsThroughItsValidator) {
  const char* src = R"(fn t(e) {
  set(e, "Health", "hp", get(e, "Combat", "attack"))
  emit("unwired", e, 1)
})";
  VerifierOptions opts;
  opts.schema = ReflectionSchema();
  opts.schema.has_channel = [](const std::string&) { return false; };
  DiagnosticSink sink;
  VerifyReport report = Run(src, opts, &sink);
  EXPECT_EQ(sink.warning_count(), 1u);  // unwired channel

  LintFileResult file;
  file.file = "test.gsl";
  file.phase = PhaseContext::kParallelDefer;
  file.diagnostics = sink.diagnostics();
  file.report = report;
  const std::string doc = RenderLintJson({file}, /*werror=*/true);
  EXPECT_TRUE(ValidateLintJson(doc).ok())
      << ValidateLintJson(doc).ToString() << "\n" << doc;

  // The document carries the facts consumers need.
  EXPECT_NE(doc.find("\"schema\": \"gamedb.gsl_lint.v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"field\": \"Health.hp\""), std::string::npos);
  EXPECT_NE(doc.find("\"target\": \"self\""), std::string::npos);
  EXPECT_NE(doc.find("\"severity\": \"warning\""), std::string::npos);
  // Pack static cost estimate: total + most expensive entry.
  EXPECT_NE(doc.find("\"static_cost\": {\"total\": "), std::string::npos);
  EXPECT_NE(doc.find("\"max_entry\": \"t\""), std::string::npos);

  // Corruptions are rejected: bad severity, truncation, wrong schema tag.
  std::string bad = doc;
  size_t at = bad.find("\"warning\"");
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, 9, "\"whisper\"");
  EXPECT_FALSE(ValidateLintJson(bad).ok());
  EXPECT_FALSE(ValidateLintJson(doc.substr(0, doc.size() / 2)).ok());
  std::string wrong_tag = doc;
  at = wrong_tag.find("gamedb.gsl_lint.v1");
  wrong_tag.replace(at, 18, "gamedb.gsl_lint.v9");
  EXPECT_FALSE(ValidateLintJson(wrong_tag).ok());
  EXPECT_FALSE(ValidateLintJson("not json at all").ok());
}

TEST_F(VerifierTest, AccessReportRendersMatrixForConflictingPack) {
  const char* src = R"(fn writer(e) { set(e, "Health", "hp", 1) }
fn reader(e) { let hp = get(e, "Health", "hp") })";
  DiagnosticSink sink;
  VerifyReport report = Run(src, VerifierOptions{}, &sink);
  const std::string text = RenderAccessReport("pack.gsl", report);
  EXPECT_NE(text.find("conflict matrix (2 entries, 1 edges)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("[0]x[1] writer ~ reader"), std::string::npos) << text;
  EXPECT_NE(text.find("direct-write: yes"), std::string::npos) << text;
  const std::string dot = RenderConflictDot("pack.gsl", report);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos) << dot;
  EXPECT_NE(dot.find("label=\"writer"), std::string::npos) << dot;
}

TEST_F(VerifierTest, HostCostBudgetGatesLoadUnderStrict) {
  const char* src = R"(fn t(e) {
  foreach x in entities_with("Health") {
    foreach y in entities_with("Health") {
      let hp = get(y, "Health", "hp")
    }
  }
})";
  ScriptHostOptions opts;
  opts.strictness = Strictness::kStrict;
  opts.script_cost_budget = 10000;  // the nested scan prices in the millions
  ScriptHost host(&world_, opts);
  Status st = host.Load(src, "hot.gsl");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("over the budget"), std::string::npos)
      << st.ToString();
}

}  // namespace
}  // namespace gamedb::script
