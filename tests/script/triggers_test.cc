#include "script/triggers.h"

#include <gtest/gtest.h>

#include "script/builtins.h"
#include "script/parser.h"

namespace gamedb::script {
namespace {

class TriggersTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterCoreBuiltins(&interp); }

  void Load(std::string_view src) {
    auto parsed = Parse(src);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_TRUE(interp.Load(std::move(*parsed)).ok());
  }

  Interpreter interp;
};

TEST_F(TriggersTest, HandlersRunOnPump) {
  Load("let hits = 0\n"
       "on damage(amount) { hits = hits + 1 }");
  TriggerSystem triggers(&interp);
  triggers.Fire("damage", {Value(5.0)});
  triggers.Fire("damage", {Value(7.0)});
  EXPECT_DOUBLE_EQ(interp.GetGlobal("hits")->AsNumber(), 0.0);  // queued
  ASSERT_TRUE(triggers.Pump().ok());
  EXPECT_DOUBLE_EQ(interp.GetGlobal("hits")->AsNumber(), 2.0);
  EXPECT_EQ(triggers.stats().fired, 2u);
  EXPECT_EQ(triggers.stats().handled, 2u);
}

TEST_F(TriggersTest, MultipleHandlersForSameEvent) {
  Load("let a = 0\nlet b = 0\n"
       "on hit(x) { a = a + x }\n"
       "on hit(x) { b = b + x * 2 }");
  TriggerSystem triggers(&interp);
  triggers.Fire("hit", {Value(3.0)});
  ASSERT_TRUE(triggers.Pump().ok());
  EXPECT_DOUBLE_EQ(interp.GetGlobal("a")->AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(interp.GetGlobal("b")->AsNumber(), 6.0);
}

TEST_F(TriggersTest, UnknownEventIsNoop) {
  Load("on known() { }");
  TriggerSystem triggers(&interp);
  triggers.Fire("unknown", {});
  EXPECT_TRUE(triggers.Pump().ok());
  EXPECT_EQ(triggers.stats().handled, 0u);
}

TEST_F(TriggersTest, CascadedEventsRunBreadthFirst) {
  TriggerSystem triggers(&interp);
  triggers.InstallFireBuiltin();
  Load("let order = []\n"
       "on first() { push(order, 1) fire(\"second\") push(order, 2) }\n"
       "on second() { push(order, 3) }");
  triggers.Fire("first", {});
  ASSERT_TRUE(triggers.Pump().ok());
  auto order = interp.GetGlobal("order")->AsList();
  // Handler runs to completion before the cascaded event is processed.
  ASSERT_EQ(order->size(), 3u);
  EXPECT_DOUBLE_EQ((*order)[0].AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ((*order)[1].AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ((*order)[2].AsNumber(), 3.0);
}

TEST_F(TriggersTest, CascadeDepthLimitStopsEventLoops) {
  TriggerOptions opts;
  opts.max_cascade_depth = 5;
  TriggerSystem triggers(&interp, opts);
  triggers.InstallFireBuiltin();
  Load("let count = 0\n"
       "on ping() { count = count + 1 fire(\"ping\") }");
  triggers.Fire("ping", {});
  ASSERT_TRUE(triggers.Pump().ok());
  EXPECT_DOUBLE_EQ(interp.GetGlobal("count")->AsNumber(), 5.0);
  EXPECT_GT(triggers.stats().dropped_depth, 0u);
}

TEST_F(TriggersTest, QueueLimitDropsEventStorms) {
  TriggerOptions opts;
  opts.max_queue = 10;
  TriggerSystem triggers(&interp, opts);
  Load("on e() { }");
  for (int i = 0; i < 100; ++i) triggers.Fire("e", {});
  EXPECT_EQ(triggers.pending(), 10u);
  EXPECT_EQ(triggers.stats().dropped_queue, 90u);
  EXPECT_TRUE(triggers.Pump().ok());
}

TEST_F(TriggersTest, HandlerErrorsReportedButPumpContinues) {
  Load("let ran = 0\n"
       "on bad() { let x = 1 / 0 }\n"
       "on fine() { ran = ran + 1 }");
  TriggerSystem triggers(&interp);
  triggers.Fire("bad", {});
  triggers.Fire("fine", {});
  Status st = triggers.Pump();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(triggers.stats().errors, 1u);
  EXPECT_DOUBLE_EQ(interp.GetGlobal("ran")->AsNumber(), 1.0);
}

// Regression: `handled` used to credit HandlerCount(event) even when
// FireEvent stopped at a failing handler, overcounting on error. With three
// handlers and the second erroring, exactly one invocation completed.
TEST_F(TriggersTest, HandledCountsOnlyCompletedInvocationsOnError) {
  Load("let ran = 0\n"
       "on hit() { ran = ran + 1 }\n"
       "on hit() { let x = 1 / 0 }\n"
       "on hit() { ran = ran + 100 }");
  TriggerSystem triggers(&interp);
  triggers.Fire("hit", {});
  Status st = triggers.Pump();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(triggers.stats().errors, 1u);
  EXPECT_EQ(triggers.stats().handled, 1u);  // first handler only
  // The third handler never ran (FireEvent stops at the first error).
  EXPECT_DOUBLE_EQ(interp.GetGlobal("ran")->AsNumber(), 1.0);
}

TEST_F(TriggersTest, HandlerArgsArePassed) {
  Load("let total = 0\n"
       "on pay(who, amount) { total = total + amount }");
  TriggerSystem triggers(&interp);
  triggers.Fire("pay", {Value("alice"), Value(10.0)});
  triggers.Fire("pay", {Value("bob"), Value(32.0)});
  ASSERT_TRUE(triggers.Pump().ok());
  EXPECT_DOUBLE_EQ(interp.GetGlobal("total")->AsNumber(), 42.0);
}

TEST_F(TriggersTest, EachHandlerGetsFreshFuel) {
  InterpreterOptions iopts;
  iopts.fuel_per_invocation = 5'000;
  Interpreter small(iopts);
  RegisterCoreBuiltins(&small);
  auto parsed = Parse(
      "let done = 0\n"
      "on work() { let t = 0 foreach i in range(100) { t = t + i } "
      "done = done + 1 }");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(small.Load(std::move(*parsed)).ok());
  TriggerSystem triggers(&small);
  // 20 events, each needing ~700 fuel: only passes if budgets are fresh.
  for (int i = 0; i < 20; ++i) triggers.Fire("work", {});
  ASSERT_TRUE(triggers.Pump().ok());
  EXPECT_DOUBLE_EQ(small.GetGlobal("done")->AsNumber(), 20.0);
}

}  // namespace
}  // namespace gamedb::script
