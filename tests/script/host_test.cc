#include "script/host.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/serialize.h"

namespace gamedb::script {
namespace {

// Per-entity behavior with every parallel-host concern in it: effect
// emission, a per-entity random() stream, a read of another entity's
// tick-start state, and a deferred field write.
constexpr char kPackScript[] = R"(
fn tick(e) {
  let t = get(e, "Combat", "target")
  if is_alive(t) {
    emit("damage", t, get(e, "Combat", "attack"))
  }
  emit("regen", e, 1 + random() * 2)
  if get(e, "Health", "hp") > 90 {
    set(e, "Health", "hp", 90)
  }
}
)";

class ScriptHostTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterStandardComponents(); }

  // Deterministic world: a ring of n fighters, each targeting the next.
  static std::vector<EntityId> BuildRing(World* world, size_t n) {
    std::vector<EntityId> ids;
    ids.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      EntityId e = world->Create();
      ids.push_back(e);
      world->Set(e, Health{30.0f + float(i % 50), 100.0f});
      Combat c;
      c.attack = 1.0f + float(i % 7);
      world->Set(e, c);
      world->Set(e, Faction{int32_t(i)});
    }
    for (size_t i = 0; i < n; ++i) {
      world->Patch<Combat>(ids[i], [&](Combat& c) {
        c.target = ids[(i + 1) % n];
      });
    }
    return ids;
  }

  // Wires the standard damage/regen channels onto a host.
  static void WireCombatChannels(ScriptHost* host, World* world) {
    host->OnChannel("damage", [world](EntityId e, double total) {
      bool dead = false;
      world->Patch<Health>(e, [&](Health& h) {
        h.hp -= float(total);
        dead = h.hp <= 0.0f;
      });
      if (dead) world->Destroy(e);
    });
    host->OnChannel("regen", [world](EntityId e, double total) {
      world->Patch<Health>(e, [&](Health& h) {
        h.hp = std::min(h.hp + float(total), h.max_hp);
      });
    });
  }

  // Runs the pack simulation for `ticks` ticks at `threads` threads and
  // returns the serialized end state.
  static std::string RunPackSim(size_t threads, size_t ticks, size_t n) {
    World world;
    BuildRing(&world, n);
    ScriptHostOptions opts;
    opts.num_threads = threads;
    ScriptHost host(&world, opts);
    WireCombatChannels(&host, &world);
    EXPECT_TRUE(host.Load(kPackScript).ok());
    for (size_t t = 0; t < ticks && world.AliveCount() > 0; ++t) {
      world.AdvanceTick();
      auto stats = host.RunTickOver("tick", "Combat");
      EXPECT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(stats->script_errors, 0u) << stats->first_error.ToString();
    }
    std::string snapshot;
    EncodeWorldSnapshot(world, &snapshot);
    return snapshot;
  }
};

// The acceptance-criteria determinism proof: the same scripted world run
// 100 ticks at 1, 2, and 8 threads ends in bit-identical serialized state.
TEST_F(ScriptHostTest, Deterministic100TicksAt1And2And8Threads) {
  std::string one = RunPackSim(1, 100, 128);
  std::string two = RunPackSim(2, 100, 128);
  std::string eight = RunPackSim(8, 100, 128);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

// Deferred writes + tick-start reads give simultaneous-update semantics: a
// mutual hp swap. A host that let set() write through during the tick would
// produce (20, 20) here instead.
TEST_F(ScriptHostTest, QueryPhaseReadsTickStartState) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 2);
  world.Patch<Health>(ids[0], [](Health& h) { h.hp = 10; });
  world.Patch<Health>(ids[1], [](Health& h) { h.hp = 20; });
  ScriptHost host(&world, {});
  ASSERT_TRUE(host
                  .Load("fn tick(e) {\n"
                        "  let t = get(e, \"Combat\", \"target\")\n"
                        "  set(e, \"Health\", \"hp\", get(t, \"Health\", "
                        "\"hp\"))\n"
                        "}")
                  .ok());
  auto stats = host.RunTick("tick", ids);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->script_errors, 0u) << stats->first_error.ToString();
  EXPECT_EQ(stats->deferred_ops, 2u);
  EXPECT_FLOAT_EQ(world.Get<Health>(ids[0])->hp, 20.0f);
  EXPECT_FLOAT_EQ(world.Get<Health>(ids[1])->hp, 10.0f);
}

// random() streams are seeded per entity, so the values an entity draws do
// not depend on which shard it landed in.
TEST_F(ScriptHostTest, PerEntityRngStreamsAreShardingIndependent) {
  auto collect = [](size_t threads) {
    World world;
    std::vector<EntityId> ids = ScriptHostTest::BuildRing(&world, 64);
    ScriptHostOptions opts;
    opts.num_threads = threads;
    ScriptHost host(&world, opts);
    std::unordered_map<EntityId, double> drawn;
    host.OnChannel("r", [&drawn](EntityId e, double v) { drawn[e] = v; });
    EXPECT_TRUE(
        host.Load("fn tick(e) { emit(\"r\", e, random()) }").ok());
    world.AdvanceTick();
    auto stats = host.RunTick("tick", ids);
    EXPECT_TRUE(stats.ok());
    return drawn;
  };
  auto seq = collect(1);
  auto par = collect(4);
  ASSERT_EQ(seq.size(), 64u);
  ASSERT_EQ(par.size(), 64u);
  for (const auto& [e, v] : seq) {
    ASSERT_TRUE(par.count(e));
    EXPECT_DOUBLE_EQ(par[e], v) << e.ToString();
  }
}

TEST_F(ScriptHostTest, RejectPolicyFailsMutationsWithClearError) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 4);
  ScriptHostOptions opts;
  opts.num_threads = 2;
  opts.mutations = MutationPolicy::kReject;
  ScriptHost host(&world, opts);
  ASSERT_TRUE(
      host.Load("fn tick(e) { set(e, \"Health\", \"hp\", 1) }").ok());
  auto stats = host.RunTick("tick", ids);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->script_errors, 4u);
  EXPECT_TRUE(stats->first_error.IsNotSupported());
  EXPECT_NE(stats->first_error.ToString().find("read-only"),
            std::string::npos)
      << stats->first_error.ToString();
  // Nothing was written.
  EXPECT_FLOAT_EQ(world.Get<Health>(ids[0])->hp, 30.0f);
}

TEST_F(ScriptHostTest, SpawnIsRejectedDuringQueryPhase) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 2);
  ScriptHost host(&world, {});
  ASSERT_TRUE(host.Load("fn tick(e) { spawn() }").ok());
  auto stats = host.RunTick("tick", ids);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->script_errors, 2u);
  EXPECT_TRUE(stats->first_error.IsNotSupported());
  EXPECT_EQ(world.AliveCount(), 2u);  // no entity appeared
}

// A deferred destroy earlier in entity order invalidates a later deferred
// set on the same entity; the set is skipped and counted, not applied to a
// corpse and not an error.
TEST_F(ScriptHostTest, DeferredOpsInvalidatedByEarlierDestroyAreSkipped) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 2);
  ScriptHost host(&world, {});
  // Entity 0 destroys its target (entity 1); entity 1 sets its own hp.
  ASSERT_TRUE(host
                  .Load("fn tick(e) {\n"
                        "  if get(e, \"Faction\", \"team\") == 0 {\n"
                        "    destroy(get(e, \"Combat\", \"target\"))\n"
                        "  }\n"
                        "  if get(e, \"Faction\", \"team\") == 1 {\n"
                        "    set(e, \"Health\", \"hp\", 55)\n"
                        "  }\n"
                        "}")
                  .ok());
  auto stats = host.RunTick("tick", ids);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->script_errors, 0u) << stats->first_error.ToString();
  EXPECT_EQ(stats->deferred_ops, 2u);
  EXPECT_EQ(stats->deferred_skipped, 1u);  // the set lost to the destroy
  EXPECT_FALSE(world.Alive(ids[1]));
}

TEST_F(ScriptHostTest, ContributionsToUnwiredChannelsAreDroppedAndCounted) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 3);
  ScriptHost host(&world, {});
  ASSERT_TRUE(host.Load("fn tick(e) { emit(\"nobody_home\", e, 1) }").ok());
  auto stats = host.RunTick("tick", ids);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->effect_contributions, 3u);
  EXPECT_EQ(stats->dropped_contributions, 3u);
}

TEST_F(ScriptHostTest, ScriptErrorReportedIsEarliestInEntityOrder) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 64);
  ScriptHostOptions opts;
  opts.num_threads = 4;
  ScriptHost host(&world, opts);
  host.OnChannel("ok", [](EntityId, double) {});
  // Entities with team 17 and 40 fail; everyone else emits.
  ASSERT_TRUE(host
                  .Load("fn tick(e) {\n"
                        "  let team = get(e, \"Faction\", \"team\")\n"
                        "  if team == 17 { let x = 1 / 0 }\n"
                        "  if team == 40 { let y = 1 / 0 }\n"
                        "  emit(\"ok\", e, 1)\n"
                        "}")
                  .ok());
  auto stats = host.RunTick("tick", ids);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->script_errors, 2u);
  // Division by zero from line 3 (entity 17), not line 4 (entity 40).
  EXPECT_NE(stats->first_error.ToString().find("line 3"), std::string::npos)
      << stats->first_error.ToString();
  // The failing entities still count toward the tick; others applied.
  EXPECT_EQ(stats->effect_contributions, 62u);
}

TEST_F(ScriptHostTest, PrintOutputDrainsInEntityOrder) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 64);
  ScriptHostOptions opts;
  opts.num_threads = 4;
  ScriptHost host(&world, opts);
  ASSERT_TRUE(
      host.Load("fn tick(e) { print(get(e, \"Faction\", \"team\")) }").ok());
  auto stats = host.RunTick("tick", ids);
  ASSERT_TRUE(stats.ok());
  std::vector<std::string> lines = host.DrainOutput();
  ASSERT_EQ(lines.size(), 64u);
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i], std::to_string(i)) << "line " << i;
  }
  EXPECT_TRUE(host.DrainOutput().empty());  // drained
}

TEST_F(ScriptHostTest, TopLevelWorldMutationFailsLoad) {
  World world;
  BuildRing(&world, 2);
  ScriptHost host(&world, {});
  Status st = host.Load(
      "emit(\"damage\", at(entities_with(\"Health\"), 0), 5)\n"
      "fn tick(e) { }");
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

// A failed Load must leave the host exactly as it was: re-loading a
// corrected script (same function names) works and ticks run. Covers both
// failure paths — a top-level runtime error, and the host's own top-level
// side-effect rejection.
TEST_F(ScriptHostTest, FailedLoadRollsBackAndHostStaysLoadable) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 8);
  ScriptHostOptions opts;
  opts.num_threads = 4;
  ScriptHost host(&world, opts);
  host.OnChannel("ok", [](EntityId, double) {});

  // Top-level runtime error after the functions were registered.
  Status runtime_err = host.Load(
      "fn tick(e) { emit(\"ok\", e, 1) }\n"
      "let boom = 1 / 0");
  EXPECT_FALSE(runtime_err.ok());

  // Host-level rejection: top level emits.
  Status emit_err = host.Load(
      "fn tick(e) { emit(\"ok\", e, 1) }\n"
      "emit(\"ok\", at(entities_with(\"Health\"), 0), 5)");
  EXPECT_TRUE(emit_err.IsInvalidArgument()) << emit_err.ToString();

  // Same function name loads cleanly and runs on every shard.
  ASSERT_TRUE(host.Load("fn tick(e) { emit(\"ok\", e, 1) }").ok());
  auto stats = host.RunTick("tick", ids);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->script_errors, 0u) << stats->first_error.ToString();
  EXPECT_EQ(stats->effect_contributions, 8u);
}

TEST_F(ScriptHostTest, UnknownTickFunctionIsNotFound) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 2);
  ScriptHost host(&world, {});
  ASSERT_TRUE(host.Load("fn tick(e) { }").ok());
  EXPECT_TRUE(host.RunTick("nope", ids).status().IsNotFound());
}

TEST_F(ScriptHostTest, DeadEntitiesInTheSetAreSkipped) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 4);
  world.Destroy(ids[2]);
  ScriptHost host(&world, {});
  host.OnChannel("ok", [](EntityId, double) {});
  ASSERT_TRUE(host.Load("fn tick(e) { emit(\"ok\", e, 1) }").ok());
  auto stats = host.RunTick("tick", ids);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entities, 4u);
  EXPECT_EQ(stats->effect_contributions, 3u);
  EXPECT_EQ(stats->script_errors, 0u);
}

TEST_F(ScriptHostTest, FuelIsAccountedAcrossShards) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 32);
  ScriptHostOptions opts;
  opts.num_threads = 4;
  ScriptHost host(&world, opts);
  host.OnChannel("ok", [](EntityId, double) {});
  ASSERT_TRUE(host.Load("fn tick(e) { emit(\"ok\", e, 1) }").ok());
  auto stats = host.RunTick("tick", ids);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->fuel_used, 32u * 4);  // several nodes per invocation
}

// print() output, globals and loaded functions are per shard; globals set
// through the host broadcast to every shard.
TEST_F(ScriptHostTest, HostGlobalsBroadcastToAllShards) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 64);
  ScriptHostOptions opts;
  opts.num_threads = 4;
  ScriptHost host(&world, opts);
  std::unordered_map<EntityId, double> got;
  host.OnChannel("boosted", [&got](EntityId e, double v) { got[e] = v; });
  ASSERT_TRUE(
      host.Load("let boost = 0\n"
                "fn tick(e) { emit(\"boosted\", e, boost) }")
          .ok());
  host.SetGlobal("boost", Value(7.5));
  auto stats = host.RunTick("tick", ids);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(got.size(), 64u);
  for (const auto& [e, v] : got) EXPECT_DOUBLE_EQ(v, 7.5);
}

// ---------------------------------------------------------------------------
// MutationPolicy::kDirectChecked — the analysis-gated in-place write path.

// A stormy but analysis-provable behavior: self-only writes to fields
// disjoint from every read, a per-entity random() stream and data-dependent
// branches. No emit (channel applies drain before deferred replay, so an
// emitting writer is ineligible) and no structural mutation.
constexpr char kStormScript[] = R"(
fn storm(e) {
  let a = get(e, "Combat", "attack")
  let d = get(e, "Combat", "defense")
  let r = random()
  if r > 0.5 {
    set(e, "Health", "hp", a * 3 + r * 10)
  }
  if r <= 0.5 {
    set(e, "Health", "max_hp", 50 + d + r)
  }
  set(e, "Combat", "range", r * 4)
}
)";

/// End state plus the observable write stream of one storm simulation.
struct StormRun {
  std::string snapshot;  ///< serialized world at the end
  std::string versions;  ///< per-tick (entity, row-version) stream
  size_t direct_writes = 0;
  size_t redirected = 0;
  uint64_t direct_ticks = 0;
  uint64_t fallback_ticks = 0;
};

class DirectCheckedTest : public ScriptHostTest {
 protected:
  /// Runs the storm pack and records, after every tick, the dense
  /// (entity, row version) sequence of both written tables. kDefer bumps
  /// versions in PatchRaw replay; kDirectChecked must reproduce the exact
  /// same stream through its Touch replay — not just the same end state.
  static StormRun RunStorm(MutationPolicy policy, size_t threads,
                           size_t ticks, size_t n) {
    World world;
    std::vector<EntityId> ids = BuildRing(&world, n);
    ScriptHostOptions opts;
    opts.num_threads = threads;
    opts.mutations = policy;
    ScriptHost host(&world, opts);
    EXPECT_TRUE(host.Load(kStormScript).ok());
    StormRun run;
    std::stringstream vs;
    for (size_t t = 0; t < ticks; ++t) {
      world.AdvanceTick();
      auto stats = host.RunTick("storm", ids);
      EXPECT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(stats->script_errors, 0u) << stats->first_error.ToString();
      run.direct_writes += stats->direct_writes;
      run.redirected += stats->direct_redirected;
      const ComponentStore* written[] = {&world.Table<Health>(),
                                         &world.Table<Combat>()};
      for (const ComponentStore* store : written) {
        for (size_t i = 0; i < store->Size(); ++i) {
          vs << store->EntityAt(i).index << ':' << store->VersionAt(i) << ' ';
        }
        vs << '|';
      }
    }
    run.direct_ticks = host.direct_ticks();
    run.fallback_ticks = host.fallback_ticks();
    run.versions = vs.str();
    EncodeWorldSnapshot(world, &run.snapshot);
    return run;
  }
};

// The tentpole acceptance test: a 100-tick randomized storm under
// kDirectChecked is bit-identical to kDefer at 1, 2 and 8 threads — same
// serialized end state AND the same per-row version stream tick by tick —
// while actually taking the in-place path (direct_writes > 0, nothing
// redirected, no fallback ticks).
TEST_F(DirectCheckedTest, StormIsBitIdenticalToDeferAt1And2And8Threads) {
  StormRun defer = RunStorm(MutationPolicy::kDefer, 1, 100, 96);
  EXPECT_EQ(defer.direct_ticks, 0u);
  EXPECT_EQ(defer.direct_writes, 0u);
  for (size_t threads : {size_t(1), size_t(2), size_t(8)}) {
    StormRun direct =
        RunStorm(MutationPolicy::kDirectChecked, threads, 100, 96);
    EXPECT_EQ(direct.snapshot, defer.snapshot) << threads << " threads";
    EXPECT_EQ(direct.versions, defer.versions) << threads << " threads";
    EXPECT_GT(direct.direct_writes, 0u);
    EXPECT_EQ(direct.redirected, 0u) << "analysis verdict was wrong";
    EXPECT_EQ(direct.direct_ticks, 100u);
    EXPECT_EQ(direct.fallback_ticks, 0u);

    StormRun control = RunStorm(MutationPolicy::kDefer, threads, 100, 96);
    EXPECT_EQ(control.snapshot, defer.snapshot) << threads << " threads";
    EXPECT_EQ(control.versions, defer.versions) << threads << " threads";
  }
}

// A pack the analysis cannot prove disjoint (it emits while writing fields)
// demonstrably falls back: the load-time verdict says why, every tick runs
// as kDefer (counters assert it), and the semantics are kDefer's.
TEST_F(DirectCheckedTest, FallsBackWhenAnalysisCannotProveDisjointness) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 4);
  ScriptHostOptions opts;
  opts.num_threads = 2;
  opts.mutations = MutationPolicy::kDirectChecked;
  ScriptHost host(&world, opts);
  size_t howls = 0;
  host.OnChannel("howl", [&howls](EntityId, double) { ++howls; });
  ASSERT_TRUE(host
                  .Load("fn tick(e) {\n"
                        "  emit(\"howl\", e, 1)\n"
                        "  set(e, \"Health\", \"hp\", 55)\n"
                        "}")
                  .ok());

  auto [eligible, reason] = host.DirectVerdict("tick");
  EXPECT_FALSE(eligible);
  EXPECT_NE(reason.find("emits effects while writing"), std::string::npos)
      << reason;
  // Functions the analysis never saw are ineligible, with a reason.
  EXPECT_FALSE(host.DirectVerdict("nope").first);

  world.AdvanceTick();
  auto stats = host.RunTick("tick", ids);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->script_errors, 0u) << stats->first_error.ToString();
  EXPECT_FALSE(stats->direct_checked);
  EXPECT_EQ(stats->direct_writes, 0u);
  EXPECT_NE(stats->fallback_reason.find("emits effects"), std::string::npos)
      << stats->fallback_reason;
  EXPECT_EQ(host.direct_ticks(), 0u);
  EXPECT_EQ(host.fallback_ticks(), 1u);
  // kDefer semantics: writes landed through the apply phase.
  EXPECT_EQ(howls, 4u);
  EXPECT_FLOAT_EQ(world.Get<Health>(ids[0])->hp, 55.0f);
}

// The per-tick runtime check: an eligible pack still falls back once the
// written table grows a change observer (Touch replay reports old_value ==
// nullptr, which value-maintained aggregates cannot absorb).
TEST_F(DirectCheckedTest, FallsBackWhenWrittenTableHasObservers) {
  World world;
  std::vector<EntityId> ids = BuildRing(&world, 4);
  ScriptHostOptions opts;
  opts.mutations = MutationPolicy::kDirectChecked;
  ScriptHost host(&world, opts);
  ASSERT_TRUE(host.Load("fn tick(e) { set(e, \"Health\", \"hp\", 1) }").ok());
  EXPECT_TRUE(host.DirectVerdict("tick").first)
      << host.DirectVerdict("tick").second;

  world.AdvanceTick();
  auto before = host.RunTick("tick", ids);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->direct_checked);
  EXPECT_EQ(before->direct_writes, 4u);

  world.Table<Health>().Subscribe(
      [](ChangeKind, EntityId, const Health*, const Health*) {});

  world.AdvanceTick();
  auto after = host.RunTick("tick", ids);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->direct_checked);
  EXPECT_EQ(after->direct_writes, 0u);
  EXPECT_NE(after->fallback_reason.find("change observers"),
            std::string::npos)
      << after->fallback_reason;
  EXPECT_EQ(host.direct_ticks(), 1u);
  EXPECT_EQ(host.fallback_ticks(), 1u);
  EXPECT_FLOAT_EQ(world.Get<Health>(ids[0])->hp, 1.0f);
}

}  // namespace
}  // namespace gamedb::script
