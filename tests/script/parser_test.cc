#include "script/parser.h"

#include <gtest/gtest.h>

namespace gamedb::script {
namespace {

Script MustParse(std::string_view src) {
  auto r = Parse(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ParserTest, TopLevelStatements) {
  Script s = MustParse("let x = 1\nx = x + 1\nprint(x)");
  ASSERT_EQ(s.top_level.size(), 3u);
  EXPECT_EQ(s.top_level[0]->kind, StmtKind::kLet);
  EXPECT_EQ(s.top_level[1]->kind, StmtKind::kAssign);
  EXPECT_EQ(s.top_level[2]->kind, StmtKind::kExpr);
  EXPECT_EQ(s.top_level[2]->expr->kind, ExprKind::kCall);
}

TEST(ParserTest, OperatorPrecedence) {
  Script s = MustParse("let x = 1 + 2 * 3");
  const Expr& root = *s.top_level[0]->expr;
  ASSERT_EQ(root.kind, ExprKind::kBinary);
  EXPECT_EQ(root.op, TokenType::kPlus);
  EXPECT_EQ(root.args[1]->op, TokenType::kStar);  // * binds tighter
}

TEST(ParserTest, ParensOverridePrecedence) {
  Script s = MustParse("let x = (1 + 2) * 3");
  const Expr& root = *s.top_level[0]->expr;
  EXPECT_EQ(root.op, TokenType::kStar);
  EXPECT_EQ(root.args[0]->op, TokenType::kPlus);
}

TEST(ParserTest, ComparisonAndLogicalChain) {
  Script s = MustParse("let ok = a < b and b <= c or not d");
  const Expr& root = *s.top_level[0]->expr;
  EXPECT_EQ(root.op, TokenType::kOr);  // or is loosest
}

TEST(ParserTest, FunctionDeclaration) {
  Script s = MustParse("fn add(a, b) { return a + b }");
  ASSERT_EQ(s.functions.count("add"), 1u);
  const Stmt* fn = s.functions.at("add");
  EXPECT_EQ(fn->params, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(fn->body.size(), 1u);
  EXPECT_EQ(fn->body[0]->kind, StmtKind::kReturn);
}

TEST(ParserTest, EventHandlers) {
  Script s = MustParse(
      "on damage(attacker, target, amount) { print(amount) }\n"
      "on damage(a, t, x) { print(x) }\n"
      "on spawn(e) { print(e) }");
  EXPECT_EQ(s.handlers.size(), 3u);
  EXPECT_EQ(s.handlers[0]->name, "damage");
  EXPECT_EQ(s.handlers[2]->name, "spawn");
}

TEST(ParserTest, IfElseChains) {
  Script s = MustParse(
      "if a > 1 { print(1) } else if a > 0 { print(2) } else { print(3) }");
  const Stmt& root = *s.top_level[0];
  ASSERT_EQ(root.kind, StmtKind::kIf);
  ASSERT_EQ(root.else_body.size(), 1u);
  EXPECT_EQ(root.else_body[0]->kind, StmtKind::kIf);  // else-if nests
  EXPECT_EQ(root.else_body[0]->else_body.size(), 1u);
}

TEST(ParserTest, LoopsAndControlFlow) {
  Script s = MustParse(
      "while x < 10 { x = x + 1 if x == 5 { break } }\n"
      "foreach e in entities_with(\"Health\") { continue }");
  EXPECT_EQ(s.top_level[0]->kind, StmtKind::kWhile);
  EXPECT_EQ(s.top_level[1]->kind, StmtKind::kForeach);
  EXPECT_EQ(s.top_level[1]->name, "e");
}

TEST(ParserTest, ListLiterals) {
  Script s = MustParse("let l = [1, 2 + 3, \"x\", []]");
  const Expr& root = *s.top_level[0]->expr;
  ASSERT_EQ(root.kind, ExprKind::kList);
  EXPECT_EQ(root.args.size(), 4u);
  EXPECT_EQ(root.args[3]->kind, ExprKind::kList);
}

TEST(ParserTest, ReturnWithoutValue) {
  Script s = MustParse("fn f() { return }");
  const Stmt* fn = s.functions.at("f");
  EXPECT_EQ(fn->body[0]->expr, nullptr);
}

TEST(ParserTest, DuplicateFunctionRejected) {
  auto r = Parse("fn f() { } fn f() { }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("duplicate"), std::string::npos);
}

TEST(ParserTest, SyntaxErrorsCarryLines) {
  auto r = Parse("let x = 1\nlet = 2");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(ParserTest, UnterminatedBlockFails) {
  EXPECT_FALSE(Parse("fn f() { let x = 1").ok());
  EXPECT_FALSE(Parse("if x { ").ok());
}

TEST(ParserTest, MissingParenFails) {
  EXPECT_FALSE(Parse("let x = (1 + 2").ok());
  EXPECT_FALSE(Parse("print(1, 2").ok());
}

}  // namespace
}  // namespace gamedb::script
