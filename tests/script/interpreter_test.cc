#include "script/interpreter.h"

#include <gtest/gtest.h>

#include "script/builtins.h"
#include "script/parser.h"

namespace gamedb::script {
namespace {

/// Parses + loads `src` into a fresh interpreter and returns it.
std::unique_ptr<Interpreter> Boot(std::string_view src,
                                  InterpreterOptions opts = {}) {
  auto interp = std::make_unique<Interpreter>(opts);
  RegisterCoreBuiltins(interp.get());
  auto parsed = Parse(src);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  Status st = interp->Load(std::move(*parsed));
  EXPECT_TRUE(st.ok()) << st.ToString();
  return interp;
}

// Load is transactional: a script whose top level errors at runtime leaves
// no functions or handlers registered, so a corrected script reusing the
// names loads cleanly afterwards.
TEST(InterpreterTest, FailedTopLevelRollsBackFunctionsAndHandlers) {
  Interpreter in;
  RegisterCoreBuiltins(&in);
  auto broken = Parse(
      "fn f() { return 1 }\n"
      "on ping() { }\n"
      "let boom = 1 / 0");
  ASSERT_TRUE(broken.ok());
  EXPECT_FALSE(in.Load(std::move(*broken)).ok());
  EXPECT_FALSE(in.HasFunction("f"));
  EXPECT_EQ(in.HandlerCount("ping"), 0u);

  auto fixed = Parse("fn f() { return 2 }\non ping() { }");
  ASSERT_TRUE(fixed.ok());
  ASSERT_TRUE(in.Load(std::move(*fixed)).ok());
  auto r = in.Call("f", {});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->AsNumber(), 2.0);
  EXPECT_EQ(in.HandlerCount("ping"), 1u);
}

// UnloadLast removes the newest script's functions/handlers but keeps
// earlier scripts' registrations (and all globals).
TEST(InterpreterTest, UnloadLastRemovesOnlyNewestScript) {
  Interpreter in;
  RegisterCoreBuiltins(&in);
  auto first = Parse("fn keep() { return 1 }");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(in.Load(std::move(*first)).ok());
  auto second = Parse("let g = 7\nfn drop_me() { return 2 }\non hit() { }");
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(in.Load(std::move(*second)).ok());

  in.UnloadLast();
  EXPECT_TRUE(in.HasFunction("keep"));
  EXPECT_FALSE(in.HasFunction("drop_me"));
  EXPECT_EQ(in.HandlerCount("hit"), 0u);
  EXPECT_DOUBLE_EQ(in.GetGlobal("g")->AsNumber(), 7.0);  // globals persist
}

TEST(InterpreterTest, ArithmeticAndGlobals) {
  auto in = Boot("let x = 2 + 3 * 4\nlet y = (2 + 3) * 4\nlet z = 10 / 4");
  EXPECT_DOUBLE_EQ(in->GetGlobal("x")->AsNumber(), 14.0);
  EXPECT_DOUBLE_EQ(in->GetGlobal("y")->AsNumber(), 20.0);
  EXPECT_DOUBLE_EQ(in->GetGlobal("z")->AsNumber(), 2.5);
}

TEST(InterpreterTest, StringConcatAndComparison) {
  auto in = Boot(
      "let s = \"a\" + 1 + \"b\"\n"
      "let eq = \"x\" == \"x\"\n"
      "let ne = \"x\" != \"y\"");
  EXPECT_EQ(in->GetGlobal("s")->AsString(), "a1b");
  EXPECT_TRUE(in->GetGlobal("eq")->AsBool());
  EXPECT_TRUE(in->GetGlobal("ne")->AsBool());
}

TEST(InterpreterTest, ControlFlow) {
  auto in = Boot(
      "let x = 0\n"
      "if 1 < 2 { x = 10 } else { x = 20 }\n"
      "let y = 0\n"
      "if 1 > 2 { y = 1 } else if 2 > 3 { y = 2 } else { y = 3 }");
  EXPECT_DOUBLE_EQ(in->GetGlobal("x")->AsNumber(), 10.0);
  EXPECT_DOUBLE_EQ(in->GetGlobal("y")->AsNumber(), 3.0);
}

TEST(InterpreterTest, WhileWithBreakContinue) {
  auto in = Boot(
      "let total = 0\n"
      "let i = 0\n"
      "while true {\n"
      "  i = i + 1\n"
      "  if i > 100 { break }\n"
      "  if i % 2 == 0 { continue }\n"
      "  total = total + i\n"
      "}");
  // Sum of odd numbers 1..99 = 2500.
  EXPECT_DOUBLE_EQ(in->GetGlobal("total")->AsNumber(), 2500.0);
}

TEST(InterpreterTest, ForeachOverList) {
  auto in = Boot(
      "let total = 0\n"
      "foreach v in [1, 2, 3, 4] { total = total + v }");
  EXPECT_DOUBLE_EQ(in->GetGlobal("total")->AsNumber(), 10.0);
}

TEST(InterpreterTest, ForeachOverNonListFails) {
  auto interp = std::make_unique<Interpreter>();
  RegisterCoreBuiltins(interp.get());
  auto parsed = Parse("foreach v in 42 { }");
  ASSERT_TRUE(parsed.ok());
  Status st = interp->Load(std::move(*parsed));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("foreach expects a list"), std::string::npos);
}

TEST(InterpreterTest, FunctionsAndReturn) {
  auto in = Boot(
      "fn add(a, b) { return a + b }\n"
      "fn fib(n) { if n < 2 { return n } return fib(n-1) + fib(n-2) }");
  auto r = in->Call("add", {Value(2.0), Value(40.0)});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->AsNumber(), 42.0);
  auto f = in->Call("fib", {Value(10.0)});
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->AsNumber(), 55.0);
}

TEST(InterpreterTest, FunctionArityChecked) {
  auto in = Boot("fn f(a) { return a }");
  EXPECT_TRUE(in->Call("f", {}).status().IsInvalidArgument());
  EXPECT_TRUE(
      in->Call("f", {Value(1.0), Value(2.0)}).status().IsInvalidArgument());
  EXPECT_TRUE(in->Call("missing", {}).status().IsNotFound());
}

TEST(InterpreterTest, LocalsScopedToFrames) {
  auto in = Boot(
      "let g = 1\n"
      "fn f() { let local = 99 g = g + 1 return local }\n");
  ASSERT_TRUE(in->Call("f", {}).ok());
  EXPECT_DOUBLE_EQ(in->GetGlobal("g")->AsNumber(), 2.0);  // global visible
  EXPECT_TRUE(in->GetGlobal("local").status().IsNotFound());  // local is not
}

TEST(InterpreterTest, AssignToUndeclaredFails) {
  auto interp = std::make_unique<Interpreter>();
  RegisterCoreBuiltins(interp.get());
  auto parsed = Parse("nope = 1");
  ASSERT_TRUE(parsed.ok());
  Status st = interp->Load(std::move(*parsed));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("undeclared"), std::string::npos);
}

TEST(InterpreterTest, DivisionByZeroFails) {
  auto interp = std::make_unique<Interpreter>();
  RegisterCoreBuiltins(interp.get());
  auto parsed = Parse("let x = 1 / 0");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(interp->Load(std::move(*parsed)).ok());
}

TEST(InterpreterTest, ShortCircuitEvaluation) {
  // `or` must not evaluate the failing right side.
  auto in = Boot("let x = true or (1 / 0)\nlet y = false and (1 / 0)");
  EXPECT_TRUE(in->GetGlobal("x")->AsBool());
  EXPECT_FALSE(in->GetGlobal("y")->AsBool());
}

TEST(InterpreterTest, FuelExhaustionStopsRunawayScript) {
  InterpreterOptions opts;
  opts.fuel_per_invocation = 10'000;
  auto interp = std::make_unique<Interpreter>(opts);
  RegisterCoreBuiltins(interp.get());
  auto parsed = Parse("let i = 0\nwhile true { i = i + 1 }");
  ASSERT_TRUE(parsed.ok());
  Status st = interp->Load(std::move(*parsed));
  ASSERT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(interp->last_fuel_used(), 10'000u);
}

TEST(InterpreterTest, FuelScalesWithWork) {
  InterpreterOptions opts;
  auto measure = [&](const char* src) {
    Interpreter in(opts);
    RegisterCoreBuiltins(&in);
    auto parsed = Parse(src);
    EXPECT_TRUE(parsed.ok());
    EXPECT_TRUE(in.Load(std::move(*parsed)).ok());
    return in.last_fuel_used();
  };
  uint64_t small = measure("let t = 0 foreach i in range(10) { t = t + i }");
  uint64_t large = measure("let t = 0 foreach i in range(1000) { t = t + i }");
  EXPECT_GT(large, small * 50);  // fuel is roughly linear in iterations
}

TEST(InterpreterTest, CallDepthLimited) {
  InterpreterOptions opts;
  opts.max_call_depth = 16;
  opts.fuel_per_invocation = 1'000'000;
  Interpreter in(opts);
  RegisterCoreBuiltins(&in);
  auto parsed = Parse("fn down(n) { if n == 0 { return 0 } return down(n-1) }");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(in.Load(std::move(*parsed)).ok());
  EXPECT_TRUE(in.Call("down", {Value(10.0)}).ok());
  auto deep = in.Call("down", {Value(100.0)});
  ASSERT_FALSE(deep.ok());
  EXPECT_TRUE(deep.status().IsResourceExhausted());
}

TEST(InterpreterTest, PrintCapturedInOutput) {
  auto in = Boot("print(\"hello\", 1 + 1, [1, 2])");
  ASSERT_EQ(in->output().size(), 1u);
  EXPECT_EQ(in->output()[0], "hello 2 [1, 2]");
}

TEST(InterpreterTest, CoreBuiltins) {
  auto in = Boot(
      "let a = abs(-3)\n"
      "let b = min(2, max(1, 5))\n"
      "let c = clamp(99, 0, 10)\n"
      "let d = sqrt(16)\n"
      "let v = vec3(1, 2, 3)\n"
      "let vx_ = vx(v)\n"
      "let dist = distance(vec3(0,0,0), vec3(3,0,4))\n"
      "let l = [10, 20]\n"
      "push(l, 30)\n"
      "let n = len(l)\n"
      "let second = at(l, 1)\n"
      "let s = str(42)");
  EXPECT_DOUBLE_EQ(in->GetGlobal("a")->AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(in->GetGlobal("b")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(in->GetGlobal("c")->AsNumber(), 10.0);
  EXPECT_DOUBLE_EQ(in->GetGlobal("d")->AsNumber(), 4.0);
  EXPECT_DOUBLE_EQ(in->GetGlobal("vx_")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(in->GetGlobal("dist")->AsNumber(), 5.0);
  EXPECT_DOUBLE_EQ(in->GetGlobal("n")->AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(in->GetGlobal("second")->AsNumber(), 20.0);
  EXPECT_EQ(in->GetGlobal("s")->AsString(), "42");
}

TEST(InterpreterTest, RandomDeterministicPerSeed) {
  InterpreterOptions opts;
  opts.rng_seed = 777;
  auto run = [&]() {
    Interpreter in(opts);
    RegisterCoreBuiltins(&in);
    auto parsed = Parse("let r = random()\nlet i = random_int(1, 6)");
    EXPECT_TRUE(parsed.ok());
    EXPECT_TRUE(in.Load(std::move(*parsed)).ok());
    return std::make_pair(in.GetGlobal("r")->AsNumber(),
                          in.GetGlobal("i")->AsNumber());
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GE(a.second, 1.0);
  EXPECT_LE(a.second, 6.0);
}

TEST(InterpreterTest, ListIndexOutOfRange) {
  auto interp = std::make_unique<Interpreter>();
  RegisterCoreBuiltins(interp.get());
  auto parsed = Parse("let x = at([1], 5)");
  ASSERT_TRUE(parsed.ok());
  Status st = interp->Load(std::move(*parsed));
  EXPECT_TRUE(st.IsOutOfRange()) << st.ToString();
}

TEST(InterpreterTest, RestrictionEnforcedAtLoad) {
  InterpreterOptions opts;
  opts.restriction = Restriction::kDeclarative;
  Interpreter in(opts);
  RegisterCoreBuiltins(&in);
  auto parsed = Parse("while true { break }");
  ASSERT_TRUE(parsed.ok());
  Status st = in.Load(std::move(*parsed));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsParseError());
}

TEST(InterpreterTest, VectorArithmeticInScripts) {
  auto in = Boot(
      "let a = vec3(1, 2, 3) + vec3(10, 20, 30)\n"
      "let b = vec3(5, 5, 5) - vec3(1, 1, 1)\n"
      "let c = vec3(1, 0, 0) * 4");
  EXPECT_EQ(in->GetGlobal("a")->AsVec3(), Vec3(11, 22, 33));
  EXPECT_EQ(in->GetGlobal("b")->AsVec3(), Vec3(4, 4, 4));
  EXPECT_EQ(in->GetGlobal("c")->AsVec3(), Vec3(4, 0, 0));
}

}  // namespace
}  // namespace gamedb::script
