#include "script/analyzer.h"

#include <gtest/gtest.h>

#include "script/parser.h"

namespace gamedb::script {
namespace {

Status AnalyzeSrc(std::string_view src, Restriction r) {
  auto parsed = Parse(src);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto is_builtin = [](const std::string& n) {
    return n == "print" || n == "sum" || n == "entities_with";
  };
  return Analyze(*parsed, r, is_builtin);
}

TEST(AnalyzerTest, CleanScriptPassesAllLevels) {
  const char* src =
      "fn helper(a) { return a * 2 }\n"
      "let x = helper(21)\n"
      "print(x)";
  EXPECT_TRUE(AnalyzeSrc(src, Restriction::kFull).ok());
  EXPECT_TRUE(AnalyzeSrc(src, Restriction::kNoRecursion).ok());
  EXPECT_TRUE(AnalyzeSrc(src, Restriction::kDeclarative).ok());
}

TEST(AnalyzerTest, UndefinedFunctionRejected) {
  Status st = AnalyzeSrc("mystery(1)", Restriction::kFull);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("mystery"), std::string::npos);
}

TEST(AnalyzerTest, BuiltinsAreNotUndefined) {
  EXPECT_TRUE(AnalyzeSrc("print(sum(\"a\", \"b\"))", Restriction::kFull).ok());
}

TEST(AnalyzerTest, DirectRecursionRejectedUnderNoRecursion) {
  const char* src = "fn f(n) { if n > 0 { return f(n - 1) } return 0 }";
  EXPECT_TRUE(AnalyzeSrc(src, Restriction::kFull).ok());
  Status st = AnalyzeSrc(src, Restriction::kNoRecursion);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("recursion"), std::string::npos);
}

TEST(AnalyzerTest, MutualRecursionRejectedUnderNoRecursion) {
  const char* src =
      "fn even(n) { if n == 0 { return true } return odd(n - 1) }\n"
      "fn odd(n) { if n == 0 { return false } return even(n - 1) }";
  EXPECT_TRUE(AnalyzeSrc(src, Restriction::kFull).ok());
  EXPECT_FALSE(AnalyzeSrc(src, Restriction::kNoRecursion).ok());
  EXPECT_FALSE(AnalyzeSrc(src, Restriction::kDeclarative).ok());
}

TEST(AnalyzerTest, LoopsRejectedUnderDeclarative) {
  EXPECT_TRUE(
      AnalyzeSrc("while true { break }", Restriction::kNoRecursion).ok());
  Status st = AnalyzeSrc("while true { break }", Restriction::kDeclarative);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("iteration"), std::string::npos);

  EXPECT_FALSE(AnalyzeSrc("foreach e in entities_with(\"H\") { print(e) }",
                          Restriction::kDeclarative)
                   .ok());
  // Aggregates remain fine at the declarative level.
  EXPECT_TRUE(
      AnalyzeSrc("print(sum(\"Health\", \"hp\"))", Restriction::kDeclarative)
          .ok());
}

TEST(AnalyzerTest, LoopInsideFunctionAlsoRejected) {
  const char* src = "fn f() { while true { break } }";
  EXPECT_FALSE(AnalyzeSrc(src, Restriction::kDeclarative).ok());
}

TEST(AnalyzerTest, BreakOutsideLoopRejected) {
  EXPECT_FALSE(AnalyzeSrc("break", Restriction::kFull).ok());
  EXPECT_FALSE(AnalyzeSrc("fn f() { continue }", Restriction::kFull).ok());
  EXPECT_TRUE(
      AnalyzeSrc("while true { if true { break } }", Restriction::kFull).ok());
}

TEST(AnalyzerTest, ReportsStatsAndCallDepth) {
  auto parsed = Parse(
      "fn a() { return b() }\n"
      "fn b() { return c() }\n"
      "fn c() { return 1 }\n"
      "on hit(x) { print(a()) }\n"
      "while 0 { }");
  ASSERT_TRUE(parsed.ok());
  AnalysisReport report;
  ASSERT_TRUE(Analyze(*parsed, Restriction::kFull,
                      [](const std::string& n) { return n == "print"; },
                      &report)
                  .ok());
  EXPECT_EQ(report.stats.functions, 3u);
  EXPECT_EQ(report.stats.handlers, 1u);
  EXPECT_EQ(report.stats.loops, 1u);
  EXPECT_EQ(report.max_call_depth, 3u);  // a -> b -> c
}

}  // namespace
}  // namespace gamedb::script
