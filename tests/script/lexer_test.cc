#include "script/lexer.h"

#include <gtest/gtest.h>

namespace gamedb::script {
namespace {

std::vector<TokenType> Types(const std::vector<Token>& tokens) {
  std::vector<TokenType> out;
  for (const auto& t : tokens) out.push_back(t.type);
  return out;
}

TEST(LexerTest, EmptyGivesEof) {
  auto r = Lex("");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].type, TokenType::kEof);
}

TEST(LexerTest, NumbersIncludingFloatsAndExponents) {
  auto r = Lex("0 42 3.14 .5 1e3 2.5e-2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 7u);
  EXPECT_DOUBLE_EQ((*r)[0].number, 0);
  EXPECT_DOUBLE_EQ((*r)[1].number, 42);
  EXPECT_DOUBLE_EQ((*r)[2].number, 3.14);
  EXPECT_DOUBLE_EQ((*r)[3].number, 0.5);
  EXPECT_DOUBLE_EQ((*r)[4].number, 1000);
  EXPECT_DOUBLE_EQ((*r)[5].number, 0.025);
}

TEST(LexerTest, KeywordsVsIdentifiers) {
  auto r = Lex("let letter fn fnord while whiled");
  ASSERT_TRUE(r.ok());
  auto types = Types(*r);
  EXPECT_EQ(types[0], TokenType::kLet);
  EXPECT_EQ(types[1], TokenType::kIdent);
  EXPECT_EQ(types[2], TokenType::kFn);
  EXPECT_EQ(types[3], TokenType::kIdent);
  EXPECT_EQ(types[4], TokenType::kWhile);
  EXPECT_EQ(types[5], TokenType::kIdent);
}

TEST(LexerTest, OperatorsSingleAndDouble) {
  auto r = Lex("= == != < <= > >= + - * / %");
  ASSERT_TRUE(r.ok());
  auto types = Types(*r);
  std::vector<TokenType> expected = {
      TokenType::kAssign, TokenType::kEq,      TokenType::kNe,
      TokenType::kLt,     TokenType::kLe,      TokenType::kGt,
      TokenType::kGe,     TokenType::kPlus,    TokenType::kMinus,
      TokenType::kStar,   TokenType::kSlash,   TokenType::kPercent,
      TokenType::kEof};
  EXPECT_EQ(types, expected);
}

TEST(LexerTest, StringsWithEscapes) {
  auto r = Lex(R"( "hello" "a\nb" "q\"q" "back\\slash" )");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].text, "hello");
  EXPECT_EQ((*r)[1].text, "a\nb");
  EXPECT_EQ((*r)[2].text, "q\"q");
  EXPECT_EQ((*r)[3].text, "back\\slash");
}

TEST(LexerTest, CommentsIgnored) {
  auto r = Lex("let x = 1 # the rest is ignored == != \n let y = 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 9u);  // let x = 1 let y = 2 EOF
}

TEST(LexerTest, LineNumbersTracked) {
  auto r = Lex("a\nb\n\nc");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].line, 1);
  EXPECT_EQ((*r)[1].line, 2);
  EXPECT_EQ((*r)[2].line, 4);
}

TEST(LexerTest, ErrorsCarryLine) {
  auto r = Lex("ok\n$bad");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Lex("\"oops").status().IsParseError());
  EXPECT_TRUE(Lex("\"oops\nmore\"").status().IsParseError());
}

TEST(LexerTest, BareBangRejected) {
  EXPECT_TRUE(Lex("!x").status().IsParseError());
}

TEST(LexerTest, UnknownEscapeRejected) {
  EXPECT_TRUE(Lex(R"("\q")").status().IsParseError());
}

}  // namespace
}  // namespace gamedb::script
