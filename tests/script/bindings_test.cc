#include "script/bindings.h"

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "script/builtins.h"
#include "script/parser.h"

namespace gamedb::script {
namespace {

class BindingsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterStandardComponents();
    RegisterCoreBuiltins(&interp);
    BindWorld(&interp, &world, &effects, /*shard=*/0);
    // A small squad: 4 fighters with hp 10/20/30/40, teams 0/1/0/1.
    for (int i = 0; i < 4; ++i) {
      EntityId e = world.Create();
      ids.push_back(e);
      world.Set(e, Health{float(i + 1) * 10, 100});
      world.Set(e, Faction{i % 2});
      world.Set(e, Position{{float(i) * 5, 0, 0}});
    }
  }

  Status Run(std::string_view src) {
    auto parsed = Parse(src);
    if (!parsed.ok()) return parsed.status();
    return interp.Load(std::move(*parsed));
  }

  World world;
  ScriptEffects effects{1};
  Interpreter interp;
  std::vector<EntityId> ids;
};

TEST_F(BindingsTest, SpawnDestroyLifecycle) {
  ASSERT_TRUE(Run("let e = spawn()\n"
                  "let alive_before = is_alive(e)\n"
                  "destroy(e)\n"
                  "let alive_after = is_alive(e)")
                  .ok());
  EXPECT_TRUE(interp.GetGlobal("alive_before")->AsBool());
  EXPECT_FALSE(interp.GetGlobal("alive_after")->AsBool());
}

TEST_F(BindingsTest, GetSetComponentFields) {
  interp.SetGlobal("target", Value(ids[0]));
  ASSERT_TRUE(Run("let hp = get(target, \"Health\", \"hp\")\n"
                  "set(target, \"Health\", \"hp\", hp - 4)")
                  .ok());
  EXPECT_DOUBLE_EQ(interp.GetGlobal("hp")->AsNumber(), 10.0);
  EXPECT_FLOAT_EQ(world.Get<Health>(ids[0])->hp, 6.0f);
}

TEST_F(BindingsTest, SetKeepsAggregatesConsistent) {
  SumAggregate<Health> total(world, [](const Health& h) { return h.hp; });
  EXPECT_DOUBLE_EQ(total.sum(), 100.0);
  interp.SetGlobal("e", Value(ids[1]));
  ASSERT_TRUE(Run("set(e, \"Health\", \"hp\", 0)").ok());
  EXPECT_DOUBLE_EQ(total.sum(), 80.0);  // script write was tracked
}

TEST_F(BindingsTest, AddRemoveHas) {
  interp.SetGlobal("e", Value(ids[0]));
  ASSERT_TRUE(Run("let before = has(e, \"Combat\")\n"
                  "add(e, \"Combat\")\n"
                  "let after = has(e, \"Combat\")\n"
                  "remove(e, \"Combat\")\n"
                  "let final_ = has(e, \"Combat\")")
                  .ok());
  EXPECT_FALSE(interp.GetGlobal("before")->AsBool());
  EXPECT_TRUE(interp.GetGlobal("after")->AsBool());
  EXPECT_FALSE(interp.GetGlobal("final_")->AsBool());
}

TEST_F(BindingsTest, UnknownComponentOrFieldErrors) {
  interp.SetGlobal("e", Value(ids[0]));
  EXPECT_TRUE(Run("get(e, \"Bogus\", \"hp\")").IsNotFound());
  EXPECT_TRUE(Run("get(e, \"Health\", \"bogus\")").IsNotFound());
  EXPECT_TRUE(Run("get(e, \"Combat\", \"attack\")").IsNotFound());  // absent
}

TEST_F(BindingsTest, DeclarativeAggregates) {
  ASSERT_TRUE(Run("let total = sum(\"Health\", \"hp\")\n"
                  "let lo = smin(\"Health\", \"hp\")\n"
                  "let hi = smax(\"Health\", \"hp\")\n"
                  "let mean = avg(\"Health\", \"hp\")\n"
                  "let n = count(\"Health\")")
                  .ok());
  EXPECT_DOUBLE_EQ(interp.GetGlobal("total")->AsNumber(), 100.0);
  EXPECT_DOUBLE_EQ(interp.GetGlobal("lo")->AsNumber(), 10.0);
  EXPECT_DOUBLE_EQ(interp.GetGlobal("hi")->AsNumber(), 40.0);
  EXPECT_DOUBLE_EQ(interp.GetGlobal("mean")->AsNumber(), 25.0);
  EXPECT_DOUBLE_EQ(interp.GetGlobal("n")->AsNumber(), 4.0);
}

TEST_F(BindingsTest, AggregateOverEmptyTableIsNil) {
  ASSERT_TRUE(Run("let m = smin(\"Combat\", \"attack\")").ok());
  EXPECT_TRUE(interp.GetGlobal("m")->IsNil());
}

TEST_F(BindingsTest, WhereAndForeachDriveEntityLogic) {
  ASSERT_TRUE(Run(
      "let team1 = where(\"Faction\", \"team\", \"==\", 1)\n"
      "let team1_hp = 0\n"
      "foreach e in team1 {\n"
      "  team1_hp = team1_hp + get(e, \"Health\", \"hp\")\n"
      "}")
                  .ok());
  EXPECT_DOUBLE_EQ(interp.GetGlobal("team1_hp")->AsNumber(), 60.0);  // 20+40
}

TEST_F(BindingsTest, ArgMinFindsWeakest) {
  ASSERT_TRUE(Run("let weakest = argmin(\"Health\", \"hp\")\n"
                  "let strongest = argmax(\"Health\", \"hp\")")
                  .ok());
  EXPECT_EQ(interp.GetGlobal("weakest")->AsEntity(), ids[0]);
  EXPECT_EQ(interp.GetGlobal("strongest")->AsEntity(), ids[3]);
}

TEST_F(BindingsTest, WithinRadiusQuery) {
  // Positions are x = 0, 5, 10, 15.
  ASSERT_TRUE(Run("let near = within(vec3(0, 0, 0), 7)\n"
                  "let n = len(near)")
                  .ok());
  EXPECT_DOUBLE_EQ(interp.GetGlobal("n")->AsNumber(), 2.0);
}

TEST_F(BindingsTest, EntitiesWithLists) {
  ASSERT_TRUE(Run("let n = len(entities_with(\"Health\"))").ok());
  EXPECT_DOUBLE_EQ(interp.GetGlobal("n")->AsNumber(), 4.0);
}

TEST_F(BindingsTest, EmitRoutesThroughEffectChannel) {
  interp.SetGlobal("a", Value(ids[0]));
  interp.SetGlobal("b", Value(ids[1]));
  ASSERT_TRUE(Run("emit(\"damage\", a, 3)\n"
                  "emit(\"damage\", a, 4)\n"
                  "emit(\"damage\", b, 10)")
                  .ok());
  // Nothing applied yet: effects are deferred.
  EXPECT_FLOAT_EQ(world.Get<Health>(ids[0])->hp, 10.0f);

  effects.Drain("damage", [&](EntityId e, double total) {
    world.Patch<Health>(e, [&](Health& h) {
      h.hp -= static_cast<float>(total);
    });
  });
  EXPECT_FLOAT_EQ(world.Get<Health>(ids[0])->hp, 3.0f);   // 10 - 7
  EXPECT_FLOAT_EQ(world.Get<Health>(ids[1])->hp, 10.0f);  // 20 - 10
}

TEST_F(BindingsTest, EmitWithoutEffectsHostFails) {
  Interpreter bare;
  RegisterCoreBuiltins(&bare);
  BindWorld(&bare, &world, nullptr);
  bare.SetGlobal("e", Value(ids[0]));
  auto parsed = Parse("emit(\"damage\", e, 1)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(bare.Load(std::move(*parsed)).IsNotSupported());
}

TEST_F(BindingsTest, DeclarativeRestrictionStillExpressesCombat) {
  // The whole point of kDeclarative: the same decision logic without loops.
  InterpreterOptions opts;
  opts.restriction = Restriction::kDeclarative;
  Interpreter decl(opts);
  RegisterCoreBuiltins(&decl);
  BindWorld(&decl, &world, &effects);
  auto parsed = Parse(
      "let target = argmin(\"Health\", \"hp\")\n"
      "if target != nil { emit(\"damage\", target, 5) }");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(decl.Load(std::move(*parsed)).ok());
  int applied = 0;
  effects.Drain("damage", [&](EntityId e, double v) {
    EXPECT_EQ(e, ids[0]);
    EXPECT_DOUBLE_EQ(v, 5.0);
    ++applied;
  });
  EXPECT_EQ(applied, 1);
}

TEST_F(BindingsTest, TickBuiltin) {
  world.AdvanceTick();
  world.AdvanceTick();
  ASSERT_TRUE(Run("let t = tick()").ok());
  EXPECT_DOUBLE_EQ(interp.GetGlobal("t")->AsNumber(), 2.0);
}

}  // namespace
}  // namespace gamedb::script
