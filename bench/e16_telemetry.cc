// E16 — telemetry overhead. The registry's contract is a lock-free hot
// path when enabled and provably near-zero cost when disabled (one relaxed
// atomic load + branch per record). This experiment prices every instrument
// in both states, plus the span primitives, so "telemetry is safe to leave
// compiled in" is a measured claim, not a hope:
//
// Part A: Counter / Gauge / Histogram record cost, enabled vs disabled.
// Part B: TraceSpan cost — null tracer (no sink wired), disabled tracer,
//         and enabled tracer (two clock reads + a mutex push).
// Part C: an instrumented ScriptHost tick at loadgen scale, telemetry off
//         vs on — the end-to-end number the e12/e15 ±1% gate is about.
// Part D: FlightRecorder::Sample against a populated registry, disabled vs
//         enabled — the per-tick price of continuous observability, and
//         the "wired but off is free" claim the watchdog tier rests on.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/world.h"
#include "script/host.h"
#include "telemetry/registry.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace {

using namespace gamedb;  // NOLINT

// --- Part A: registry instruments ------------------------------------------

void BM_CounterAdd(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  registry.SetEnabled(state.range(0) != 0);
  telemetry::Counter* c = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    c->Add(1);
  }
  benchmark::DoNotOptimize(c->value());
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}
BENCHMARK(BM_CounterAdd)->Arg(0)->Arg(1);

void BM_GaugeSet(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  registry.SetEnabled(state.range(0) != 0);
  telemetry::Gauge* g = registry.GetGauge("bench.gauge");
  int64_t v = 0;
  for (auto _ : state) {
    g->Set(++v);
  }
  benchmark::DoNotOptimize(g->value());
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}
BENCHMARK(BM_GaugeSet)->Arg(0)->Arg(1);

void BM_HistogramRecord(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  registry.SetEnabled(state.range(0) != 0);
  telemetry::Histogram* h = registry.GetHistogram("bench.histogram");
  uint64_t v = 1;
  for (auto _ : state) {
    h->Record(v);
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;  // LCG spread
    v &= 0xFFFFFF;                                            // keep in range
  }
  benchmark::DoNotOptimize(h->count());
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}
BENCHMARK(BM_HistogramRecord)->Arg(0)->Arg(1);

// --- Part B: spans ----------------------------------------------------------

void BM_SpanNullTracer(benchmark::State& state) {
  for (auto _ : state) {
    telemetry::TraceSpan span(nullptr, "bench.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanNullTracer);

void BM_SpanDisabledTracer(benchmark::State& state) {
  telemetry::Tracer tracer;  // constructed but never SetEnabled(true)
  for (auto _ : state) {
    telemetry::TraceSpan span(&tracer, "bench.span");
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(tracer.size());
}
BENCHMARK(BM_SpanDisabledTracer);

void BM_SpanEnabledTracer(benchmark::State& state) {
  telemetry::Tracer tracer;
  tracer.SetEnabled(true);
  for (auto _ : state) {
    telemetry::TraceSpan span(&tracer, "bench.span");
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(tracer.size());
  // Unbounded growth would distort late iterations; report and reset.
  state.SetItemsProcessed(static_cast<int64_t>(tracer.size()));
  tracer.Clear();
}
BENCHMARK(BM_SpanEnabledTracer);

// --- Part C: instrumented tick ----------------------------------------------

constexpr char kBenchScript[] = R"GSL(
fn tick(e) {
  if get(e, "Health", "hp") < 30 {
    emit("regen", e, 2)
  }
}
)GSL";

/// One scripted world tick at small loadgen scale; range(0) selects the
/// telemetry state: 0 = no sink wired, 1 = sink + flight recorder wired
/// but disabled, 2 = metrics + tracing + per-tick recorder sampling
/// enabled. Mode 1 vs mode 0 is the acceptance gate: a wired-but-off
/// recorder must price within 1% of no recorder at all.
void BM_ScriptTickTelemetry(benchmark::State& state) {
  RegisterStandardComponents();
  World world;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EntityId e = world.Create();
    world.Set(e, Health{rng.NextFloat(10.0f, 100.0f), 100.0f});
    world.Set(e, Position{{rng.NextFloat(0, 500), 0, rng.NextFloat(0, 500)}});
  }

  telemetry::MetricsRegistry registry;
  telemetry::Tracer tracer;
  telemetry::FlightRecorder recorder(&registry);
  const int mode = static_cast<int>(state.range(0));
  registry.SetEnabled(mode == 2);
  tracer.SetEnabled(mode == 2);
  recorder.SetEnabled(mode == 2);

  script::ScriptHostOptions opts;
  opts.num_threads = 1;
  if (mode > 0) {
    opts.telemetry.metrics = &registry;
    opts.telemetry.tracer = &tracer;
  }
  script::ScriptHost host(&world, opts);
  host.OnChannel("regen", [&world](EntityId e, double total) {
    world.Patch<Health>(e, [&](Health& h) {
      h.hp = std::min(h.hp + static_cast<float>(total), h.max_hp);
    });
  });
  if (!host.Load(kBenchScript, "bench.gsl").ok()) {
    state.SkipWithError("bench script failed to load");
    return;
  }

  uint64_t tick = 0;
  for (auto _ : state) {
    world.AdvanceTick();
    auto stats = host.RunTickOver("tick", "Health");
    if (!stats.ok()) {
      state.SkipWithError("tick failed");
      return;
    }
    benchmark::DoNotOptimize(stats->entities);
    if (mode > 0) recorder.Sample(++tick);  // wired in 1 and 2; off in 1
    tracer.Clear();  // keep the span buffer from growing across iterations
  }
  state.SetLabel(mode == 0 ? "no_sink" : mode == 1 ? "sink_disabled"
                                                   : "sink_enabled");
}
BENCHMARK(BM_ScriptTickTelemetry)->Arg(0)->Arg(1)->Arg(2);

// --- Part D: flight recorder sampling ---------------------------------------

/// FlightRecorder::Sample over a registry populated at loadgen scale
/// (30 counters, 10 gauges, 10 histograms fed with spread values — the
/// shape a real shard exposes). range(0): 0 = recorder wired but
/// disabled (one relaxed load + branch), 1 = enabled (full snapshot into
/// the ring buffers, including per-histogram percentile estimation).
void BM_FlightRecorderSample(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  registry.SetEnabled(true);
  std::vector<telemetry::Counter*> counters;
  for (int i = 0; i < 30; ++i) {
    counters.push_back(
        registry.GetCounter("bench.counter." + std::to_string(i)));
  }
  for (int i = 0; i < 10; ++i) {
    registry.GetGauge("bench.gauge." + std::to_string(i))->Set(i * 17);
  }
  uint64_t v = 1;
  for (int i = 0; i < 10; ++i) {
    telemetry::Histogram* h =
        registry.GetHistogram("bench.hist." + std::to_string(i));
    for (int j = 0; j < 256; ++j) {
      h->Record(v & 0xFFFFFF);
      v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    }
  }

  telemetry::FlightRecorder recorder(&registry);
  recorder.SetEnabled(state.range(0) != 0);
  uint64_t tick = 0;
  for (auto _ : state) {
    counters[tick % counters.size()]->Add(3);  // keep deltas non-trivial
    recorder.Sample(++tick);
  }
  benchmark::DoNotOptimize(recorder.samples());
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}
BENCHMARK(BM_FlightRecorderSample)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
