// E15 — MMO scenario load harness: whole-stack tick latency under hostile
// scripted workloads. Where e01–e14 isolate one subsystem each, e15 drives
// the *composed* engine — World mutations, the ScriptHost parallel query
// phase, the cost-based planner, ViewCatalog interest-view client sync and
// WAL/checkpoint persistence — through the tools/loadgen scenario library
// (login storms, hotspot flash crowds, mass spawn waves, chase-recenter
// churn, mixed steady state). This is the paper's actual claim under test:
// a declarative database-backed engine sustaining an MMO-shaped load, not a
// microbenchmark of one of its organs.
//
// Each counter iteration is one full scenario run; per-tick latency
// quantiles (p50/p99/p99.9) and sync bytes/client-tick are attached as
// benchmark counters. The canonical machine-readable trajectory artifact is
// produced by the standalone `loadgen` CLI (BENCH_e15_<scenario>.json);
// this wrapper exists so the scenario sweep rides the same bench-smoke
// harness as e01–e14.

#include <benchmark/benchmark.h>

#include <string>

#include "loadgen/scenario.h"

namespace {

using namespace gamedb::loadgen;  // NOLINT

void RunScenarioBench(benchmark::State& state, const std::string& name) {
  ScenarioConfig cfg = DefaultConfig(name).value();
  cfg.clients = static_cast<size_t>(state.range(0));
  cfg.npcs = static_cast<size_t>(state.range(1));
  cfg.ticks = 60;
  cfg.threads = static_cast<size_t>(state.range(2));
  ScenarioReport last;
  for (auto _ : state) {
    auto report = RunScenario(cfg);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    last = report.value();
    benchmark::DoNotOptimize(last.world_hash);
  }
  state.counters["tick_p50_us"] = double(last.tick.p50_ns) / 1e3;
  state.counters["tick_p99_us"] = double(last.tick.p99_ns) / 1e3;
  state.counters["tick_p999_us"] = double(last.tick.p999_ns) / 1e3;
  state.counters["sync_B_per_client_tick"] = last.sync_bytes_per_client_tick;
  state.counters["script_p99_us"] = double(last.script_phase.p99_ns) / 1e3;
  state.counters["maintain_p99_us"] =
      double(last.view_maintain.p99_ns) / 1e3;
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(cfg.ticks));
}

void ScenarioArgs(benchmark::internal::Benchmark* b) {
  // {clients, npcs, threads}: small and bench-scale, 1 vs 4 threads at
  // bench scale (the container is 1-CPU, so the 4-thread rows measure
  // oversubscription overhead, not speedup — see docs/BASELINES.md).
  b->Args({8, 500, 1})->Args({32, 2000, 1})->Args({32, 2000, 4});
  b->Unit(benchmark::kMillisecond);
}

#define GAMEDB_SCENARIO_BENCH(scenario)                            \
  void BM_Scenario_##scenario(benchmark::State& state) {           \
    RunScenarioBench(state, #scenario);                            \
  }                                                                \
  BENCHMARK(BM_Scenario_##scenario)->Apply(ScenarioArgs)

GAMEDB_SCENARIO_BENCH(login_storm);
GAMEDB_SCENARIO_BENCH(flash_crowd);
GAMEDB_SCENARIO_BENCH(spawn_wave);
GAMEDB_SCENARIO_BENCH(chase);
GAMEDB_SCENARIO_BENCH(steady_state);

#undef GAMEDB_SCENARIO_BENCH

}  // namespace

BENCHMARK_MAIN();
