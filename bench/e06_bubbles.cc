// E6 — EVE Online's partitioner: "a continuous differential equation that
// takes into account the acceleration of every space ship in a solar
// system ... determine, for any given time interval, which ships can move
// within range of each other; this way they can dynamically partition the
// map into feasible units."
//
// The partitioner itself under density and horizon sweeps: partition cost,
// bubble count, max bubble size, and the fraction of transactions that end
// up cross-bubble. Expected shape: bubbles stay small and numerous until
// density (or horizon) crosses the percolation-style threshold where the
// world fuses into one component.

#include <benchmark/benchmark.h>

#include "txn/bubbles.h"
#include "txn/workload.h"

namespace {

using namespace gamedb;       // NOLINT
using namespace gamedb::txn;  // NOLINT

void BM_PartitionCost(benchmark::State& state) {
  WorkloadOptions wopts;
  wopts.num_entities = uint32_t(state.range(0));
  wopts.area_extent = float(state.range(1));
  wopts.max_speed = 10.0f;
  wopts.max_accel = 4.0f;
  MmoWorkload workload(wopts);

  BubbleOptions bopts;
  bopts.interaction_radius = 10.0f;
  bopts.horizon_seconds = 0.5f;

  size_t bubbles = 0, max_size = 0, rounds = 0;
  for (auto _ : state) {
    auto part = ComputeBubbles(&workload.world(), bopts);
    bubbles += part.bubble_count;
    max_size = std::max(max_size, part.max_bubble_size);
    ++rounds;
    workload.AdvancePositions(0.1f);
  }
  state.counters["bubbles"] =
      benchmark::Counter(rounds ? double(bubbles) / double(rounds) : 0);
  state.counters["max_bubble"] = benchmark::Counter(double(max_size));
  state.counters["entities/s"] = benchmark::Counter(
      double(state.range(0)) * double(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PartitionCost)
    ->ArgsProduct({{1000, 10000, 50000}, {500, 2000, 8000}})
    ->Unit(benchmark::kMillisecond);

void BM_HorizonSweep(benchmark::State& state) {
  // Longer horizons = wider motion bounds = fewer, larger bubbles. The
  // horizon is the server's re-partition interval: this sweep is the
  // partition-stability-vs-granularity trade.
  WorkloadOptions wopts;
  wopts.num_entities = 10000;
  wopts.area_extent = 4000.0f;
  wopts.max_speed = 20.0f;
  wopts.max_accel = 8.0f;
  MmoWorkload workload(wopts);

  BubbleOptions bopts;
  bopts.interaction_radius = 10.0f;
  bopts.horizon_seconds = float(state.range(0)) / 10.0f;

  size_t bubbles = 0, max_size = 0, rounds = 0;
  for (auto _ : state) {
    auto part = ComputeBubbles(&workload.world(), bopts);
    bubbles += part.bubble_count;
    max_size = std::max(max_size, part.max_bubble_size);
    ++rounds;
  }
  state.counters["bubbles"] =
      benchmark::Counter(rounds ? double(bubbles) / double(rounds) : 0);
  state.counters["max_bubble"] = benchmark::Counter(double(max_size));
  state.SetLabel("tau=" + std::to_string(double(state.range(0)) / 10.0) + "s");
}
BENCHMARK(BM_HorizonSweep)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_CrossBubbleFraction(benchmark::State& state) {
  // How much of the actual transaction load escapes its bubble, by density.
  WorkloadOptions wopts;
  wopts.num_entities = 4000;
  wopts.area_extent = float(state.range(0));
  wopts.attack_fraction = 0.6f;
  wopts.trade_fraction = 0.2f;
  MmoWorkload workload(wopts);

  BubbleOptions bopts;
  bopts.interaction_radius = wopts.interaction_radius;
  bopts.horizon_seconds = 0.25f;
  // Stale-partition regime: entities move between batches, so transactions
  // start escaping their (old) bubbles — the cross fraction measures it.
  bopts.repartition_interval = 5;
  BubbleExecutor exec(bopts);
  ThreadPool pool(8);

  uint64_t committed = 0, cross = 0;
  for (auto _ : state) {
    auto batch = workload.NextBatch();
    ExecStats stats = exec.ExecuteBatch(&workload.world(), batch, &pool);
    committed += stats.committed;
    cross += stats.cross_bubble_txns;
    workload.AdvancePositions(0.05f);
  }
  state.counters["cross_frac"] = benchmark::Counter(
      committed ? double(cross) / double(committed) : 0);
  state.SetLabel("extent=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CrossBubbleFraction)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(4000)
    ->Iterations(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
