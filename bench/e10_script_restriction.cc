// E10 — "some studios have taken drastic measures — such as removing
// support for iteration and recursion from their scripting languages — to
// keep their designers from producing computationally expensive behavior.
// As scripts are sometimes processed every animation frame, seemingly
// innocuous code can cripple the performance of a game."
//
// The same NPC decision logic written three ways:
//   loop_script        — foreach over all entities (allowed at kFull)
//   declarative_script — argmin/sum aggregate builtins (kDeclarative-legal)
//   native             — the C++ the engine would run
// plus the cost of the engine-side aggregate the declarative builtin calls.
// Expected shape: the loop script's fuel & time grow linearly with world
// size; the declarative script is flat in script-side fuel (the engine does
// an indexed/maintained evaluation); restriction converts an unbounded
// designer cost into a bounded engine cost.

#include <benchmark/benchmark.h>

#include <sstream>

#include "common/rng.h"
#include "script/analyzer.h"
#include "script/bindings.h"
#include "script/builtins.h"
#include "script/parser.h"

namespace {

using namespace gamedb;          // NOLINT
using namespace gamedb::script;  // NOLINT

constexpr char kLoopScript[] = R"(
fn pick_target() {
  let best = nil
  let best_hp = 999999
  foreach e in entities_with("Health") {
    let hp = get(e, "Health", "hp")
    if hp < best_hp {
      best_hp = hp
      best = e
    }
  }
  return best
}
)";

constexpr char kDeclarativeScript[] = R"(
fn pick_target() {
  return argmin("Health", "hp")
}
)";

void PopulateWorld(World* world, size_t n) {
  RegisterStandardComponents();
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) {
    EntityId e = world->Create();
    world->Set(e, Health{float(rng.NextInt(1, 1000)), 1000});
  }
}

std::unique_ptr<Interpreter> Boot(World* world, const char* source,
                                  Restriction restriction) {
  InterpreterOptions opts;
  opts.restriction = restriction;
  opts.fuel_per_invocation = 100'000'000;
  auto interp = std::make_unique<Interpreter>(opts);
  RegisterCoreBuiltins(interp.get());
  BindWorld(interp.get(), world, nullptr);
  auto parsed = Parse(source);
  GAMEDB_CHECK(parsed.ok());
  GAMEDB_CHECK(interp->Load(std::move(*parsed)).ok());
  return interp;
}

void BM_LoopScript(benchmark::State& state) {
  World world;
  PopulateWorld(&world, size_t(state.range(0)));
  auto interp = Boot(&world, kLoopScript, Restriction::kFull);
  uint64_t fuel = 0, calls = 0;
  for (auto _ : state) {
    auto r = interp->Call("pick_target", {});
    GAMEDB_CHECK(r.ok());
    fuel += interp->last_fuel_used();
    ++calls;
  }
  state.counters["fuel/frame"] =
      benchmark::Counter(calls ? double(fuel) / double(calls) : 0);
  state.SetLabel("loop_script");
}
BENCHMARK(BM_LoopScript)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DeclarativeScript(benchmark::State& state) {
  World world;
  PopulateWorld(&world, size_t(state.range(0)));
  // This source passes the kDeclarative analyzer — the loop version cannot
  // even load at that restriction level.
  auto interp = Boot(&world, kDeclarativeScript, Restriction::kDeclarative);
  uint64_t fuel = 0, calls = 0;
  for (auto _ : state) {
    auto r = interp->Call("pick_target", {});
    GAMEDB_CHECK(r.ok());
    fuel += interp->last_fuel_used();
    ++calls;
  }
  state.counters["fuel/frame"] =
      benchmark::Counter(calls ? double(fuel) / double(calls) : 0);
  state.SetLabel("declarative_script");
}
BENCHMARK(BM_DeclarativeScript)->Arg(100)->Arg(1000)->Arg(10000);

void BM_NativeBaseline(benchmark::State& state) {
  World world;
  PopulateWorld(&world, size_t(state.range(0)));
  for (auto _ : state) {
    EntityId best;
    float best_hp = 1e9f;
    world.Table<Health>().ForEach([&](EntityId e, const Health& h) {
      if (h.hp < best_hp) {
        best_hp = h.hp;
        best = e;
      }
    });
    benchmark::DoNotOptimize(best);
  }
  state.SetLabel("native");
}
BENCHMARK(BM_NativeBaseline)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FuelExhaustionGuard(benchmark::State& state) {
  // What the fuel limit buys: a runaway designer loop is cut off at a
  // bounded cost instead of eating the frame.
  World world;
  PopulateWorld(&world, 100);
  InterpreterOptions opts;
  opts.fuel_per_invocation = uint64_t(state.range(0));
  auto interp = std::make_unique<Interpreter>(opts);
  RegisterCoreBuiltins(interp.get());
  BindWorld(interp.get(), &world, nullptr);
  auto parsed = Parse("fn runaway() { let i = 0 while true { i = i + 1 } }");
  GAMEDB_CHECK(parsed.ok());
  GAMEDB_CHECK(interp->Load(std::move(*parsed)).ok());
  for (auto _ : state) {
    auto r = interp->Call("runaway", {});
    GAMEDB_CHECK(r.status().IsResourceExhausted());
  }
  state.SetLabel("fuel=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_FuelExhaustionGuard)->Arg(10000)->Arg(100000);

// --- static verifier cost --------------------------------------------------
// The multi-pass verifier (analyzer.h Verify) runs at every Load; its price
// must stay far below the per-tick work it saves. Scaled over synthetic
// packs of N chained functions, each exercising every pass: a call edge
// (structure/effects fixpoint), a component read+write and an emit
// (phase + bindings), and a loop over a query (cost model).

std::string SyntheticPack(size_t functions) {
  std::ostringstream src;
  for (size_t i = 0; i < functions; ++i) {
    src << "fn f" << i << "(e) {\n"
        << "  let hp = get(e, \"Health\", \"hp\")\n"
        << "  foreach x in entities_with(\"Health\") {\n"
        << "    emit(\"damage\", x, hp * 0.1)\n"
        << "  }\n"
        << "  set(e, \"Health\", \"hp\", hp - 1)\n";
    if (i + 1 < functions) src << "  f" << (i + 1) << "(e)\n";
    src << "}\n";
  }
  return src.str();
}

void BM_VerifyPack(benchmark::State& state) {
  RegisterStandardComponents();
  World world;
  auto interp = std::make_unique<Interpreter>();
  RegisterCoreBuiltins(interp.get());
  BindWorld(interp.get(), &world, nullptr);
  auto parsed = Parse(SyntheticPack(size_t(state.range(0))), "synthetic.gsl");
  GAMEDB_CHECK(parsed.ok());

  VerifierOptions opts;
  opts.phase = PhaseContext::kParallelDefer;
  opts.is_builtin = [&interp](const std::string& n) {
    return interp->IsBuiltin(n);
  };
  opts.schema = ReflectionSchema();
  opts.cost_budget = 1e12;  // priced but never tripped
  double max_cost = 0;
  for (auto _ : state) {
    DiagnosticSink sink;
    VerifyReport report = Verify(*parsed, opts, &sink);
    GAMEDB_CHECK(!sink.has_errors());
    max_cost = report.max_entry_cost;
    benchmark::DoNotOptimize(report);
  }
  state.counters["max_entry_cost"] = benchmark::Counter(max_cost);
  state.SetLabel("verify_all_passes");
}
BENCHMARK(BM_VerifyPack)->Arg(1)->Arg(16)->Arg(128);

void BM_VerifyVsParse(benchmark::State& state) {
  // Parse+verify together — the full load-time analysis price per pack.
  RegisterStandardComponents();
  const std::string src = SyntheticPack(size_t(state.range(0)));
  VerifierOptions opts;
  opts.schema = ReflectionSchema();
  for (auto _ : state) {
    auto parsed = Parse(src, "synthetic.gsl");
    GAMEDB_CHECK(parsed.ok());
    DiagnosticSink sink;
    VerifyReport report = Verify(*parsed, opts, &sink);
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel("parse_plus_verify");
}
BENCHMARK(BM_VerifyVsParse)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
