// E7 — "Another way in which games deal with concurrency is by having
// weaker consistency guarantees ... animation or other uncontested activity
// may be out of sync between computers but the persistent game state is the
// same."
//
// Bytes/tick vs divergence for full-snapshot / delta / interest / eventual
// sync across a moving 2k-entity shard with 8 clients. Expected shape:
// full snapshot buys zero divergence at maximal bandwidth; delta matches it
// at a fraction of the bytes; interest cuts bytes by the visibility ratio
// at the cost of global awareness; eventual trades bounded staleness for
// the lowest byte rate.

#include <benchmark/benchmark.h>

#include "replication/divergence.h"
#include "replication/sync.h"
#include "txn/workload.h"

namespace {

using namespace gamedb;               // NOLINT
using namespace gamedb::replication;  // NOLINT

void BM_SyncStrategy(benchmark::State& state) {
  auto strategy = static_cast<SyncStrategy>(state.range(0));
  txn::WorkloadOptions wopts;
  wopts.num_entities = 2000;
  wopts.area_extent = 1000.0f;
  wopts.max_speed = 8.0f;
  txn::MmoWorkload workload(wopts);

  SyncOptions sopts;
  sopts.strategy = strategy;
  sopts.interest_radius = 100.0f;
  sopts.period_ticks = 10;
  SyncServer sync(&workload.world(), sopts);
  const size_t kClients = 8;
  for (size_t c = 0; c < kClients; ++c) {
    sync.AddClient(workload.entities()[c * 37]);
  }

  uint64_t total_bytes = 0, ticks = 0;
  double divergence_sum = 0, divergence_max = 0;
  std::vector<SyncStats> stats;
  for (auto _ : state) {
    workload.AdvancePositions(0.05f);
    workload.world().AdvanceTick();
    Status st = sync.SyncAll(&stats);
    GAMEDB_CHECK(st.ok());
    for (const auto& s : stats) total_bytes += s.bytes_sent;
    // Divergence sampled every tick on client 0.
    auto report =
        MeasureDivergence(workload.world(), sync.client(0).world());
    divergence_sum += report.position_rmse;
    divergence_max = std::max(divergence_max, report.position_rmse);
    ++ticks;
  }
  state.counters["bytes/tick/client"] = benchmark::Counter(
      ticks ? double(total_bytes) / double(ticks) / kClients : 0);
  state.counters["pos_rmse_avg"] =
      benchmark::Counter(ticks ? divergence_sum / double(ticks) : 0);
  state.counters["pos_rmse_max"] = benchmark::Counter(divergence_max);
  state.SetLabel(SyncStrategyName(strategy));
}
BENCHMARK(BM_SyncStrategy)
    ->Arg(int(SyncStrategy::kFullSnapshot))
    ->Arg(int(SyncStrategy::kDelta))
    ->Arg(int(SyncStrategy::kInterest))
    ->Arg(int(SyncStrategy::kEventual))
    ->Unit(benchmark::kMillisecond);

void BM_EventualPeriodSweep(benchmark::State& state) {
  // The staleness dial: longer periods, fewer bytes, more drift.
  txn::WorkloadOptions wopts;
  wopts.num_entities = 2000;
  wopts.area_extent = 1000.0f;
  wopts.max_speed = 8.0f;
  txn::MmoWorkload workload(wopts);

  SyncOptions sopts;
  sopts.strategy = SyncStrategy::kEventual;
  sopts.period_ticks = uint32_t(state.range(0));
  SyncServer sync(&workload.world(), sopts);
  sync.AddClient(workload.entities()[0]);

  uint64_t total_bytes = 0, ticks = 0;
  double divergence_max = 0;
  std::vector<SyncStats> stats;
  for (auto _ : state) {
    workload.AdvancePositions(0.05f);
    workload.world().AdvanceTick();
    GAMEDB_CHECK(sync.SyncAll(&stats).ok());
    total_bytes += stats[0].bytes_sent;
    auto report =
        MeasureDivergence(workload.world(), sync.client(0).world());
    divergence_max = std::max(divergence_max, report.position_rmse);
    ++ticks;
  }
  state.counters["bytes/tick"] =
      benchmark::Counter(ticks ? double(total_bytes) / double(ticks) : 0);
  state.counters["pos_rmse_max"] = benchmark::Counter(divergence_max);
  state.SetLabel("period=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EventualPeriodSweep)
    ->Arg(1)
    ->Arg(5)
    ->Arg(20)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
