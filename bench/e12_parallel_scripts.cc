// E12 — parallel scripted query phase: the tutorial's scripting section
// ends where its join-processing analogy begins — the follow-up work
// (Sowell et al., "From Declarative Languages to Declarative Processing in
// Computer Games") argues scripts written in the state-effect style
// *parallelize like joins*. The ScriptHost (script/host.h) realizes that:
// one interpreter per shard, entities partitioned over the pool, writes
// flowing only through effect channels, a deterministic apply phase.
//
// Workload: n scripted fighters, each reading its target's tick-start state
// and emitting damage + regen effects. Sweeps thread count x entity count;
// the classic one-interpreter read-modify-write loop is the baseline no
// host can parallelize (direct writes race).
//
// Expected shape: query-phase throughput scales with thread count while the
// RMW baseline is pinned to one core; the gap widens with entity count
// (fixed per-tick host overhead amortizes away).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "script/builtins.h"
#include "script/host.h"
#include "script/parser.h"

namespace {

using namespace gamedb;  // NOLINT
using script::Interpreter;
using script::ScriptHost;
using script::ScriptHostOptions;
using script::Value;

// State-effect style: reads are free, writes are emitted effects.
constexpr char kEffectScript[] = R"(
fn tick(e) {
  let t = get(e, "Combat", "target")
  emit("damage", t, get(e, "Combat", "attack") * 0.01)
  emit("regen", e, 0.25)
}
)";

// The same behavior as unordered read-modify-write — only correct single
// threaded, so it is the sequential baseline.
constexpr char kDirectScript[] = R"(
fn tick(e) {
  let t = get(e, "Combat", "target")
  set(t, "Health", "hp",
      get(t, "Health", "hp") - get(e, "Combat", "attack") * 0.01)
  set(e, "Health", "hp", get(e, "Health", "hp") + 0.25)
}
)";

void BuildWorld(World* world, std::vector<EntityId>* ids, size_t n) {
  RegisterStandardComponents();
  ids->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    EntityId e = world->Create();
    ids->push_back(e);
    world->Set(e, Health{100.0f, 100.0f});
    Combat c;
    c.attack = 1.0f + float(i % 7);
    world->Set(e, c);
  }
  for (size_t i = 0; i < n; ++i) {
    world->Patch<Combat>((*ids)[i], [&](Combat& c) {
      c.target = (*ids)[(i * 37 + 11) % n];
    });
  }
}

// Parallel scripted query phase at a given thread count.
void BM_ParallelScriptTick(benchmark::State& state) {
  World world;
  std::vector<EntityId> ids;
  BuildWorld(&world, &ids, size_t(state.range(1)));
  ScriptHostOptions opts;
  opts.num_threads = size_t(state.range(0));
  ScriptHost host(&world, opts);
  host.OnChannel("damage", [&world](EntityId e, double total) {
    world.Patch<Health>(e, [&](Health& h) { h.hp -= float(total); });
  });
  host.OnChannel("regen", [&world](EntityId e, double total) {
    world.Patch<Health>(e, [&](Health& h) { h.hp += float(total); });
  });
  if (Status st = host.Load(kEffectScript); !st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    world.AdvanceTick();
    auto stats = host.RunTick("tick", ids);
    if (!stats.ok() || stats->script_errors > 0) {
      state.SkipWithError("scripted tick failed");
      return;
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(1));
  state.SetLabel(std::to_string(state.range(0)) + "_threads");
}
BENCHMARK(BM_ParallelScriptTick)
    ->ArgsProduct({{1, 2, 4, 8}, {1024, 4096, 16384}})
    ->UseRealTime();

// Baseline: one interpreter, direct writes, one core — the industry-default
// scripted tick the paper says stops scaling.
void BM_SingleInterpreterDirectTick(benchmark::State& state) {
  World world;
  std::vector<EntityId> ids;
  BuildWorld(&world, &ids, size_t(state.range(0)));
  Interpreter interp;
  script::RegisterCoreBuiltins(&interp);
  script::BindWorld(&interp, &world, nullptr);
  auto parsed = script::Parse(kDirectScript, "e12_direct.gsl");
  if (!parsed.ok() || !interp.Load(std::move(*parsed)).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  for (auto _ : state) {
    world.AdvanceTick();
    for (EntityId e : ids) {
      auto r = interp.Call("tick", {Value(e)});
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
  state.SetLabel("rmw_1_thread");
}
BENCHMARK(BM_SingleInterpreterDirectTick)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->UseRealTime();

// A write-heavy, analysis-provable behavior (self-only writes, fields
// disjoint from reads, no emits): the shape where deferred replay pays
// for a second pass over every write and MutationPolicy::kDirectChecked
// is allowed to skip it.
constexpr char kSelfWriteScript[] = R"(
fn tick(e) {
  let a = get(e, "Combat", "attack")
  set(e, "Health", "hp", a * 2 + 10)
  set(e, "Health", "max_hp", 100 + a)
  set(e, "Combat", "range", a * 0.5)
}
)";

// Deferred replay vs the analysis-gated in-place fast path on the same
// write-heavy workload, swept over policy x threads x entities. Expected
// shape: kDirectChecked wins by the cost of buffering + replaying the
// FieldValue for every set(); the gap grows with writes per tick and is
// pure overhead reduction (both runs end bit-identical — asserted by
// tests/script/host_test.cc, not re-checked here).
void BM_DeferVsDirectCheckedTick(benchmark::State& state) {
  World world;
  std::vector<EntityId> ids;
  BuildWorld(&world, &ids, size_t(state.range(2)));
  ScriptHostOptions opts;
  opts.num_threads = size_t(state.range(1));
  opts.mutations = state.range(0) == 0
                       ? script::MutationPolicy::kDefer
                       : script::MutationPolicy::kDirectChecked;
  ScriptHost host(&world, opts);
  if (Status st = host.Load(kSelfWriteScript); !st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    world.AdvanceTick();
    auto stats = host.RunTick("tick", ids);
    if (!stats.ok() || stats->script_errors > 0) {
      state.SkipWithError("scripted tick failed");
      return;
    }
  }
  if (state.range(0) != 0 && host.direct_ticks() == 0) {
    state.SkipWithError("direct-checked never took the fast path");
    return;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(2));
  state.SetLabel(std::string(state.range(0) == 0 ? "defer" : "direct_checked") +
                 "_" + std::to_string(state.range(1)) + "_threads");
}
BENCHMARK(BM_DeferVsDirectCheckedTick)
    ->ArgsProduct({{0, 1}, {1, 2, 4, 8}, {4096, 16384}})
    ->UseRealTime();

// The fallback arm: a pack the analysis cannot prove disjoint (it emits
// while writing). Under kDirectChecked every tick silently falls back to
// deferred replay, so the two policies must time identically — the
// analysis gate costs one hash lookup per tick, not per entity.
constexpr char kEmitWriteScript[] = R"(
fn tick(e) {
  emit("regen", e, 0.25)
  set(e, "Health", "hp", get(e, "Combat", "attack") + 40)
}
)";

void BM_DirectCheckedFallbackTick(benchmark::State& state) {
  World world;
  std::vector<EntityId> ids;
  BuildWorld(&world, &ids, 4096);
  ScriptHostOptions opts;
  opts.num_threads = size_t(state.range(1));
  opts.mutations = state.range(0) == 0
                       ? script::MutationPolicy::kDefer
                       : script::MutationPolicy::kDirectChecked;
  ScriptHost host(&world, opts);
  host.OnChannel("regen", [&world](EntityId e, double total) {
    world.Patch<Health>(e, [&](Health& h) { h.hp += float(total); });
  });
  if (Status st = host.Load(kEmitWriteScript); !st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    world.AdvanceTick();
    auto stats = host.RunTick("tick", ids);
    if (!stats.ok() || stats->script_errors > 0) {
      state.SkipWithError("scripted tick failed");
      return;
    }
  }
  if (state.range(0) != 0 && host.direct_ticks() != 0) {
    state.SkipWithError("ineligible pack took the fast path");
    return;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 4096);
  state.SetLabel(std::string(state.range(0) == 0 ? "defer" : "fallback") +
                 "_" + std::to_string(state.range(1)) + "_threads");
}
BENCHMARK(BM_DirectCheckedFallbackTick)
    ->ArgsProduct({{0, 1}, {1, 4}})
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
