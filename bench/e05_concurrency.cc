// E5 — "players are performing conflicting actions at a very high rate ...
// traditional approaches such as locking transactions are often too slow
// for games."
//
// Transaction throughput of GlobalLock / entity-2PL / OCC / causality
// bubbles on the MMO workload, sweeping spatial density (conflict rate) and
// hotspot clustering. Expected shape: the global lock flatlines regardless
// of cores; 2PL/OCC pay per-txn synchronization; bubbles approach lock-free
// parallel throughput when the world partitions well and degrade toward
// serial as density fuses bubbles together.

#include <benchmark/benchmark.h>

#include <memory>

#include "txn/bubbles.h"
#include "txn/executors.h"
#include "txn/workload.h"

namespace {

using namespace gamedb;       // NOLINT
using namespace gamedb::txn;  // NOLINT

std::unique_ptr<TxnExecutor> MakeEngine(int kind, float radius) {
  switch (kind) {
    case 0:
      return std::make_unique<GlobalLockExecutor>();
    case 1:
      return std::make_unique<EntityLockExecutor>();
    case 2:
      return std::make_unique<OccExecutor>();
    default: {
      BubbleOptions opts;
      opts.interaction_radius = radius;
      opts.horizon_seconds = 0.25f;
      // One partition per horizon, amortized over the ticks inside it
      // (~10 batches at 25ms/tick) — the EVE design point.
      opts.repartition_interval = 10;
      return std::make_unique<BubbleExecutor>(opts);
    }
  }
}

const char* EngineName(int kind) {
  switch (kind) {
    case 0:
      return "global_lock";
    case 1:
      return "entity_2pl";
    case 2:
      return "occ";
    default:
      return "bubbles";
  }
}

void RunEngine(benchmark::State& state, float area_extent,
               float clustered_fraction) {
  int kind = int(state.range(0));
  WorkloadOptions opts;
  opts.num_entities = uint32_t(state.range(1));
  opts.area_extent = area_extent;
  opts.clustered_fraction = clustered_fraction;
  opts.attack_fraction = 0.5f;
  opts.trade_fraction = 0.2f;
  opts.txns_per_entity = 1.0f;
  opts.txn_work_units = 2000;  // ~µs-scale action logic, like real servers
  MmoWorkload workload(opts);
  auto engine = MakeEngine(kind, opts.interaction_radius);
  ThreadPool pool(8);

  // Pre-generate batches (identical across engines for a given seed) so the
  // timed region measures execution, not workload generation.
  std::vector<std::vector<GameTxn>> prebuilt;
  for (int i = 0; i < 4; ++i) {
    prebuilt.push_back(workload.NextBatch());
    workload.AdvancePositions(0.05f);
  }

  uint64_t committed = 0, aborted = 0, cross = 0, batches = 0;
  uint64_t bubble_count = 0, max_bubble = 0;
  for (auto _ : state) {
    const auto& batch = prebuilt[batches % prebuilt.size()];
    ExecStats stats = engine->ExecuteBatch(&workload.world(), batch, &pool);
    committed += stats.committed;
    aborted += stats.aborted;
    cross += stats.cross_bubble_txns;
    bubble_count += stats.bubble_count;
    max_bubble = std::max(max_bubble, stats.max_bubble_size);
    ++batches;
  }
  state.counters["txn/s"] = benchmark::Counter(
      double(committed), benchmark::Counter::kIsRate);
  state.counters["aborts"] = benchmark::Counter(double(aborted));
  if (kind == 3) {
    state.counters["cross_frac"] = benchmark::Counter(
        committed ? double(cross) / double(committed) : 0);
    state.counters["bubbles/batch"] = benchmark::Counter(
        batches ? double(bubble_count) / double(batches) : 0);
    state.counters["max_bubble"] = benchmark::Counter(double(max_bubble));
  }
  state.SetLabel(EngineName(kind));
}

void BM_SparseWorld(benchmark::State& state) {
  RunEngine(state, /*area_extent=*/2000.0f, /*clustered_fraction=*/0.0f);
}
BENCHMARK(BM_SparseWorld)
    ->ArgsProduct({{0, 1, 2, 3}, {1000, 4000}})
    ->Iterations(20)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DenseWorld(benchmark::State& state) {
  RunEngine(state, /*area_extent=*/300.0f, /*clustered_fraction=*/0.0f);
}
BENCHMARK(BM_DenseWorld)
    ->ArgsProduct({{0, 1, 2, 3}, {1000, 4000}})
    ->Iterations(20)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_HotspotWorld(benchmark::State& state) {
  // Half the shard crowds into the town square (market hub / boss pull).
  RunEngine(state, /*area_extent=*/2000.0f, /*clustered_fraction=*/0.5f);
}
BENCHMARK(BM_HotspotWorld)
    ->ArgsProduct({{0, 1, 2, 3}, {2000}})
    ->Iterations(20)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
