// E14 — incremental view maintenance vs per-tick re-scan. The follow-up
// paper's incremental-processing claim: a continuous query maintained from
// deltas costs O(change volume), a re-scanned one O(world size), so below
// some churn rate maintenance wins and the gap widens with world size and
// with the number of registered queries (the re-scan pays per view, the
// change capture is paid once). Sweep: world size × churn rate × view
// count; the measured crossover is recorded in docs/BASELINES.md.
//
// Both variants pay the identical mutation cost per iteration (tracked
// Patch writes); the difference under measurement is evaluate-by-rescan
// (fresh planner execution per view) vs maintain-from-deltas + read.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/world.h"
#include "planner/planner.h"
#include "views/maintainer.h"

namespace {

using namespace gamedb;           // NOLINT
using namespace gamedb::views;    // NOLINT
using planner::QueryPlanner;

constexpr float kArena = 1000.0f;

/// The shared sweep harness: a world of n entities (Health everywhere,
/// Position on all), `nviews` view definitions with distinct predicate
/// shapes (every 4th also carries a proximity term).
struct Sweep {
  Sweep(size_t n, size_t nviews)
      : planner(&world), catalog(&world, &planner), rng(2026) {
    RegisterStandardComponents();
    pool.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      EntityId e = world.Create();
      world.Set(e, Health{rng.NextFloat(0, 100), 100.0f});
      world.Set(e, Position{{rng.NextFloat(0, kArena), 0,
                             rng.NextFloat(0, kArena)}});
      pool.push_back(e);
    }
    for (size_t v = 0; v < nviews; ++v) {
      ViewDef def;
      def.name = "v" + std::to_string(v);
      def.where = {{"Health", "hp", CmpOp::kLt,
                    double(5 + (v * 17) % 90)}};
      if (v % 4 == 3) {
        def.has_near = true;
        def.near = {"Position", "value",
                    {float((v * 131) % 1000), 0, float((v * 71) % 1000)},
                    60.0f};
      }
      defs.push_back(def);
    }
    planner.Analyze();
  }

  /// `churn_pct`% of entities get a tracked hp rewrite; a quarter of those
  /// also move.
  void Churn(int churn_pct) {
    world.AdvanceTick();
    size_t writes = pool.size() * size_t(churn_pct) / 100;
    for (size_t i = 0; i < writes; ++i) {
      EntityId e = pool[rng.NextU64() % pool.size()];
      world.Patch<Health>(e,
                          [&](Health& h) { h.hp = rng.NextFloat(0, 100); });
      if (i % 4 == 0) {
        world.Patch<Position>(e, [&](Position& p) {
          p.value.x += rng.NextFloat(-20, 20);
          p.value.z += rng.NextFloat(-20, 20);
        });
      }
    }
  }

  World world;
  QueryPlanner planner;
  ViewCatalog catalog;
  Rng rng;
  std::vector<EntityId> pool;
  std::vector<ViewDef> defs;
};

void BM_ViewRescan(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  int churn = static_cast<int>(state.range(1));
  auto nviews = static_cast<size_t>(state.range(2));
  Sweep s(n, nviews);

  size_t rows = 0;
  for (auto _ : state) {
    s.Churn(churn);
    for (const ViewDef& def : s.defs) {
      DynamicQuery q(&s.world);
      q.SetPlanner(&s.planner);
      q.WhereField(def.where[0].component, def.where[0].field,
                   def.where[0].op, def.where[0].rhs);
      if (def.has_near) {
        q.WithinRadius(def.near.component, def.near.field, def.near.center,
                       def.near.radius);
      }
      rows = 0;
      benchmark::DoNotOptimize(q.Each([&](EntityId) { ++rows; }));
    }
  }
  state.counters["rows"] = benchmark::Counter(static_cast<double>(rows));
  state.SetLabel("rescan");
}
BENCHMARK(BM_ViewRescan)
    ->ArgsProduct({{10000, 100000}, {1, 10, 50}, {1, 8, 32}})
    ->Unit(benchmark::kMicrosecond);

void BM_ViewIncremental(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  int churn = static_cast<int>(state.range(1));
  auto nviews = static_cast<size_t>(state.range(2));
  Sweep s(n, nviews);
  std::vector<LiveView*> views;
  for (const ViewDef& def : s.defs) {
    auto r = s.catalog.Register(def);
    GAMEDB_CHECK(r.ok());
    views.push_back(*r);
  }

  size_t rows = 0;
  for (auto _ : state) {
    s.Churn(churn);
    s.catalog.Maintain();
    for (LiveView* v : views) {
      // Read like the replication consumer: unordered member iteration
      // (order-sensitive readers pay an extra O(m log m) Members() sort).
      rows = 0;
      v->ForEachMember([&](EntityId) { ++rows; });
      benchmark::DoNotOptimize(rows);
    }
  }
  uint64_t reevals = 0;
  for (LiveView* v : views) reevals += v->stats().reevaluated;
  state.counters["rows"] = benchmark::Counter(static_cast<double>(rows));
  state.counters["reevals_per_tick"] = benchmark::Counter(
      static_cast<double>(reevals) /
      static_cast<double>(state.iterations()));
  state.SetLabel("incremental");
}
BENCHMARK(BM_ViewIncremental)
    ->ArgsProduct({{10000, 100000}, {1, 10, 50}, {1, 8, 32}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
