// E8 — "players interact with the game so fast that it is too expensive to
// process every single action with the database ... these checkpoints can
// be as far as 10 minutes apart. Recoveries may force a player to repeat a
// difficult fight or lose a particularly desirable reward. As a result,
// games need ways to checkpoint intelligently, writing to the database when
// important events are completed, and not just at regular intervals."
//
// An MMO session with weighted events (trash 0.5, quest 5, boss 50, epic
// loot 100) runs under each policy; crashes are injected at random ticks.
// Columns: average & worst importance lost at a crash, bytes written, and
// checkpoints taken. Expected shape: at comparable write budgets the
// intelligent policy loses far less importance than wall-clock periodic;
// WAL mode loses ~nothing but pays per-action writes.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>

#include "common/rng.h"
#include "persist/manager.h"
#include "txn/workload.h"

namespace {

using namespace gamedb;           // NOLINT
using namespace gamedb::persist;  // NOLINT

struct SessionResult {
  double avg_lost = 0;
  double max_lost = 0;
  uint64_t bytes_written = 0;
  uint64_t checkpoints = 0;
  uint64_t fsyncs = 0;
};

std::unique_ptr<CheckpointPolicy> MakePolicy(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<PeriodicPolicy>(600);  // "10 minutes" of ticks
    case 1:
      return std::make_unique<PeriodicPolicy>(60);   // aggressive periodic
    case 2:
      return std::make_unique<ImportancePolicy>(/*accumulate=*/120.0,
                                                /*urgent=*/50.0);
    default:
      return std::make_unique<HybridPolicy>(600, 120.0, 50.0);
  }
}

const char* PolicyName(int kind) {
  switch (kind) {
    case 0:
      return "periodic_600";
    case 1:
      return "periodic_60";
    case 2:
      return "intelligent";
    default:
      return "hybrid";
  }
}

/// Simulates `ticks` of play under a policy; samples the importance a crash
/// would lose at every tick (= pending importance under kCheckpointOnly).
/// `storage` may be any backend: MemStorage counts syncs, DiskStorage pays
/// for real fsyncs, so the durability-vs-write-cost trade is measurable on
/// an actual device.
SessionResult RunSession(int policy_kind, DurabilityMode mode, uint64_t seed,
                         Storage* storage, uint64_t sync_every_n = 1,
                         int ticks = 3000, uint32_t num_entities = 300) {
  txn::WorkloadOptions wopts;
  wopts.num_entities = num_entities;
  wopts.txns_per_entity = 0.2f;  // keep workload generation cheap
  wopts.seed = seed;
  txn::MmoWorkload workload(wopts);
  World& world = workload.world();

  PersistenceOptions popts;
  popts.mode = mode;
  popts.wal.sync_every_n = sync_every_n;
  PersistenceManager mgr(storage, MakePolicy(policy_kind), popts);
  Rng rng(seed ^ 0xBADC0FFEE);

  SessionResult result;
  const uint64_t syncs_before = storage->syncs();
  const int kTicks = ticks;
  double lost_sum = 0;
  for (int tick = 1; tick <= kTicks; ++tick) {
    world.AdvanceTick();
    auto batch = workload.NextBatch();
    for (const auto& t : batch) {
      txn::ApplyTxn(&world, t);
      GAMEDB_CHECK(mgr.OnTxn(t, world.tick()).ok());
    }
    // Event model: constant trickle, rare spikes.
    if (rng.NextBool(0.30)) {
      GAMEDB_CHECK(mgr.OnEvent(world.tick(), 0.5, "trash_kill").ok());
    }
    if (rng.NextBool(0.02)) {
      GAMEDB_CHECK(mgr.OnEvent(world.tick(), 5.0, "quest_complete").ok());
    }
    if (rng.NextBool(0.002)) {
      GAMEDB_CHECK(mgr.OnEvent(world.tick(), 50.0, "boss_kill").ok());
    }
    if (rng.NextBool(0.0005)) {
      GAMEDB_CHECK(mgr.OnEvent(world.tick(), 100.0, "epic_loot").ok());
    }
    GAMEDB_CHECK(mgr.OnTickEnd(world).ok());

    // What would a crash RIGHT NOW lose? (WAL mode: nothing durable lost.)
    double lost = mode == DurabilityMode::kWalAndCheckpoint
                      ? 0.0
                      : mgr.pending_importance();
    lost_sum += lost;
    result.max_lost = std::max(result.max_lost, lost);
  }
  result.avg_lost = lost_sum / kTicks;
  // Cumulative write volume, backend-independent (GC shrinks TotalBytes).
  result.bytes_written =
      mgr.metrics().checkpoint_bytes + mgr.metrics().wal_bytes;
  result.checkpoints = mgr.metrics().checkpoints;
  result.fsyncs = storage->syncs() - syncs_before;
  return result;
}

void BM_CheckpointPolicy(benchmark::State& state) {
  int kind = int(state.range(0));
  SessionResult total;
  uint64_t rounds = 0;
  for (auto _ : state) {
    MemStorage storage;
    SessionResult r = RunSession(kind, DurabilityMode::kCheckpointOnly,
                                 1000 + rounds, &storage);
    total.avg_lost += r.avg_lost;
    total.max_lost = std::max(total.max_lost, r.max_lost);
    total.bytes_written += r.bytes_written;
    total.checkpoints += r.checkpoints;
    total.fsyncs += r.fsyncs;
    ++rounds;
  }
  state.counters["avg_lost_importance"] =
      benchmark::Counter(total.avg_lost / double(rounds));
  state.counters["max_lost_importance"] =
      benchmark::Counter(total.max_lost);
  state.counters["MB_written"] = benchmark::Counter(
      double(total.bytes_written) / double(rounds) / (1024.0 * 1024.0));
  state.counters["checkpoints"] =
      benchmark::Counter(double(total.checkpoints) / double(rounds));
  state.counters["fsyncs"] =
      benchmark::Counter(double(total.fsyncs) / double(rounds));
  state.SetLabel(PolicyName(kind));
}
BENCHMARK(BM_CheckpointPolicy)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_WalMode(benchmark::State& state) {
  // The "log everything" end of the trade: zero loss, maximal writes. The
  // arg is WalOptions::sync_every_n — 1 fsyncs per append, larger values
  // group-commit, charting durability-vs-write-cost.
  uint64_t sync_every_n = uint64_t(state.range(0));
  SessionResult total;
  uint64_t rounds = 0;
  for (auto _ : state) {
    MemStorage storage;
    SessionResult r = RunSession(0, DurabilityMode::kWalAndCheckpoint,
                                 2000 + rounds, &storage, sync_every_n);
    total.bytes_written += r.bytes_written;
    total.fsyncs += r.fsyncs;
    ++rounds;
  }
  state.counters["avg_lost_importance"] = benchmark::Counter(0);
  state.counters["MB_written"] = benchmark::Counter(
      double(total.bytes_written) / double(rounds) / (1024.0 * 1024.0));
  state.counters["fsyncs"] =
      benchmark::Counter(double(total.fsyncs) / double(rounds));
  state.SetLabel("wal_periodic_600_sync_every_" +
                 std::to_string(sync_every_n));
}
BENCHMARK(BM_WalMode)
    ->Arg(1)
    ->Arg(16)
    ->Arg(128)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_WalModeDisk(benchmark::State& state) {
  // Same trade on a real directory: every sync is an actual ::fsync, so
  // wall-clock now moves with sync_every_n (smaller session to keep the
  // fsync budget sane).
  uint64_t sync_every_n = uint64_t(state.range(0));
  std::string dir =
      (std::filesystem::temp_directory_path() /
       ("gamedb_e08_disk_" + std::to_string(::getpid()) + "_" +
        std::to_string(sync_every_n)))
          .string();
  SessionResult total;
  uint64_t rounds = 0;
  for (auto _ : state) {
    std::filesystem::remove_all(dir);
    DiskStorage storage(dir);
    SessionResult r = RunSession(0, DurabilityMode::kWalAndCheckpoint,
                                 3000 + rounds, &storage, sync_every_n,
                                 /*ticks=*/300, /*num_entities=*/50);
    total.bytes_written += r.bytes_written;
    total.fsyncs += r.fsyncs;
    ++rounds;
  }
  std::filesystem::remove_all(dir);
  state.counters["MB_written"] = benchmark::Counter(
      double(total.bytes_written) / double(rounds) / (1024.0 * 1024.0));
  state.counters["fsyncs"] =
      benchmark::Counter(double(total.fsyncs) / double(rounds));
  state.SetLabel("wal_disk_sync_every_" + std::to_string(sync_every_n));
}
BENCHMARK(BM_WalModeDisk)
    ->Arg(1)
    ->Arg(16)
    ->Arg(128)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_RecoveryTime(benchmark::State& state) {
  // How long a restart takes: checkpoint load + WAL replay.
  txn::WorkloadOptions wopts;
  wopts.num_entities = uint32_t(state.range(0));
  txn::MmoWorkload workload(wopts);
  World& world = workload.world();

  MemStorage storage;
  PersistenceOptions popts;
  popts.mode = DurabilityMode::kWalAndCheckpoint;
  PersistenceManager mgr(&storage, std::make_unique<PeriodicPolicy>(1000000),
                         popts);
  GAMEDB_CHECK(mgr.ForceCheckpoint(world).ok());
  for (int tick = 0; tick < 200; ++tick) {
    world.AdvanceTick();
    auto batch = workload.NextBatch();
    for (const auto& t : batch) {
      txn::ApplyTxn(&world, t);
      GAMEDB_CHECK(mgr.OnTxn(t, world.tick()).ok());
    }
  }

  for (auto _ : state) {
    World recovered;
    auto outcome = PersistenceManager::Recover(storage, &recovered);
    GAMEDB_CHECK(outcome.ok());
    benchmark::DoNotOptimize(outcome->replayed_txns);
  }
}
BENCHMARK(BM_RecoveryTime)->Arg(500)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
