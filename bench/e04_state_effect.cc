// E4 — parallel script processing: "many of the techniques that game
// programmers have been using to optimize physics calculations ... look
// very similar to the techniques that database engines use for join
// processing." The state-effect pattern [13] makes a tick a parallel
// query phase + a combine/apply phase.
//
// Workload: a combat + flocking tick over n entities. Baseline is the
// sequential read-modify-write loop; state-effect runs at 1/2/4/8 threads.
// Expected shape: near-linear speedup for the query phase; the sequential
// loop cannot be parallelized at all without races.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/state_effect.h"
#include "spatial/kdbsp_tree.h"

namespace {

using namespace gamedb;  // NOLINT

constexpr float kArea = 500.0f;
constexpr float kRange = 15.0f;

void BuildWorld(World* world, std::vector<EntityId>* ids, size_t n) {
  RegisterStandardComponents();
  Rng rng(99);
  for (size_t i = 0; i < n; ++i) {
    EntityId e = world->Create();
    ids->push_back(e);
    world->Set(e, Position{{rng.NextFloat(0, kArea), 0,
                            rng.NextFloat(0, kArea)}});
    Velocity v;
    v.value = rng.NextDirXZ() * rng.NextFloat(0.0f, 5.0f);
    world->Set(e, v);
    world->Set(e, Health{100, 100});
    Combat c;
    c.attack = rng.NextFloat(1, 5);
    c.target = EntityId(uint32_t(rng.NextBounded(n)), 0);
    world->Set(e, c);
  }
}

// Sequential scripted tick: direct read-modify-write, single thread only.
void BM_SequentialScriptTick(benchmark::State& state) {
  World world;
  std::vector<EntityId> ids;
  BuildWorld(&world, &ids, size_t(state.range(0)));
  for (auto _ : state) {
    // Combat: each attacker damages its target in place.
    world.Table<Combat>().ForEach([&](EntityId, Combat& c) {
      Health* h = world.GetMutableUntracked<Health>(c.target);
      if (h != nullptr) h->hp -= c.attack * 0.01f;
    });
    // Movement integration.
    View<Position, Velocity>(world).Each(
        [&](EntityId, Position& p, Velocity& v) {
          p.value += v.value * 0.016f;
        });
  }
  state.SetLabel("sequential");
}
BENCHMARK(BM_SequentialScriptTick)->Arg(4096)->Arg(16384)->Arg(65536);

// State-effect tick at a given thread count.
void BM_StateEffectTick(benchmark::State& state) {
  World world;
  std::vector<EntityId> ids;
  BuildWorld(&world, &ids, size_t(state.range(1)));
  StateEffectExecutor exec(size_t(state.range(0)));
  Effect<double> damage(exec.shard_count());
  Effect<Vec3> motion(exec.shard_count());

  for (auto _ : state) {
    // Query phase (parallel): reads tick-start state, emits effects.
    exec.QueryPhase<Combat>(world,
                            [&](size_t shard, EntityId, const Combat& c) {
                              damage.Contribute(shard, c.target,
                                                double(c.attack) * 0.01);
                            });
    exec.QueryPhase<Position, Velocity>(
        world, [&](size_t shard, EntityId e, const Position&,
                   const Velocity& v) {
          motion.Contribute(shard, e, v.value * 0.016f);
        });
    // Apply phase (sequential, deterministic).
    damage.Drain([&](EntityId e, const double& total) {
      Health* h = world.GetMutableUntracked<Health>(e);
      if (h != nullptr) h->hp -= float(total);
    });
    motion.Drain([&](EntityId e, const Vec3& delta) {
      Position* p = world.GetMutableUntracked<Position>(e);
      if (p != nullptr) p->value += delta;
    });
  }
  state.SetLabel(std::to_string(state.range(0)) + "_threads");
}
BENCHMARK(BM_StateEffectTick)
    ->ArgsProduct({{1, 2, 4, 8}, {4096, 16384, 65536}})
    ->UseRealTime();

// Proximity interactions through the same pattern: grid join in the query
// phase (the GPU-join analogy made concrete).
void BM_StateEffectProximityTick(benchmark::State& state) {
  World world;
  std::vector<EntityId> ids;
  BuildWorld(&world, &ids, size_t(state.range(1)));
  StateEffectExecutor exec(size_t(state.range(0)));
  Effect<double> damage(exec.shard_count());
  // KdBspTree: safe for concurrent queries once warmed up (UniformGrid's
  // query-epoch dedup is not; see uniform_grid.h).
  spatial::KdBspTree index;
  world.Table<Position>().ForEach([&](EntityId e, const Position& p) {
    index.Insert(e, Aabb::FromPoint(p.value));
  });
  index.QueryRadius({0, 0, 0}, 1.0f, [](EntityId, const Aabb&) {});  // build

  for (auto _ : state) {
    exec.QueryPhase<Position, Combat>(
        world, [&](size_t shard, EntityId e, const Position& p,
                   const Combat& c) {
          index.QueryRadius(p.value, kRange,
                            [&](EntityId other, const Aabb&) {
                              if (other == e) return;
                              damage.Contribute(shard, other,
                                                double(c.attack) * 0.001);
                            });
        });
    damage.Drain([&](EntityId e, const double& total) {
      Health* h = world.GetMutableUntracked<Health>(e);
      if (h != nullptr) h->hp -= float(total);
    });
  }
  state.SetLabel(std::to_string(state.range(0)) + "_threads");
}
BENCHMARK(BM_StateEffectProximityTick)
    ->ArgsProduct({{1, 4, 8}, {8192}})
    ->UseRealTime();

// Apply-phase overhead as channel count grows. A scripted world drains one
// channel per effect kind every tick; Effect<V> now owns reusable merge
// scratch, so the drain stops paying a map + vector allocation per channel
// per tick (it used to: N channels -> 2N allocations each tick).
void BM_EffectDrainChannels(benchmark::State& state) {
  const size_t channels = size_t(state.range(0));
  const size_t total_contributions = 8192;
  const size_t per_channel = total_contributions / channels;
  constexpr size_t kShards = 4;
  std::vector<std::unique_ptr<Effect<double>>> effects;
  effects.reserve(channels);
  for (size_t c = 0; c < channels; ++c) {
    effects.push_back(std::make_unique<Effect<double>>(kShards));
  }
  double sink = 0;
  for (auto _ : state) {
    // One simulated tick: refill every channel, then drain every channel.
    for (size_t c = 0; c < channels; ++c) {
      for (size_t i = 0; i < per_channel; ++i) {
        effects[c]->Contribute(i % kShards, EntityId(uint32_t(i % 512), 0),
                               1.0);
      }
    }
    for (size_t c = 0; c < channels; ++c) {
      effects[c]->Drain([&](EntityId, const double& v) { sink += v; });
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(std::to_string(channels) + "_channels");
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(per_channel * channels));
}
BENCHMARK(BM_EffectDrainChannels)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
