// E2 — "Many games use traditional spatial indices such as BSP trees or
// Octrees." Range/radius query and update throughput for the four index
// structures under identical workloads.
//
// Expected shape: all indexes beat the scan by orders of magnitude at low
// selectivity; the grid wins uniform point loads; trees tolerate mixed
// object sizes; scan wins only for tiny n.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "spatial/kdbsp_tree.h"
#include "spatial/linear_scan.h"
#include "spatial/loose_octree.h"
#include "spatial/uniform_grid.h"

namespace {

using namespace gamedb;           // NOLINT
using namespace gamedb::spatial;  // NOLINT

constexpr float kArea = 1000.0f;

std::unique_ptr<SpatialIndex> MakeIndex(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<LinearScan>();
    case 1:
      return std::make_unique<UniformGrid>(UniformGridOptions{20.0f});
    case 2:
      return std::make_unique<KdBspTree>();
    default: {
      LooseOctreeOptions opts;
      opts.world_bounds = Aabb{{0, -10, 0}, {kArea, 10, kArea}};
      return std::make_unique<LooseOctree>(opts);
    }
  }
}

const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "scan";
    case 1:
      return "grid";
    case 2:
      return "kdbsp";
    default:
      return "octree";
  }
}

void Fill(SpatialIndex* index, size_t n, Rng* rng) {
  for (uint32_t i = 0; i < n; ++i) {
    Vec3 p{rng->NextFloat(0, kArea), 0, rng->NextFloat(0, kArea)};
    float half = rng->NextFloat(0.1f, 2.0f);
    index->Insert(EntityId(i, 0), Aabb::FromPoint(p).Inflated(half));
  }
}

void BM_RadiusQuery(benchmark::State& state) {
  int kind = static_cast<int>(state.range(0));
  auto n = static_cast<size_t>(state.range(1));
  float radius = static_cast<float>(state.range(2));
  auto index = MakeIndex(kind);
  Rng rng(1);
  Fill(index.get(), n, &rng);
  uint64_t hits = 0;
  for (auto _ : state) {
    Vec3 c{rng.NextFloat(0, kArea), 0, rng.NextFloat(0, kArea)};
    index->QueryRadius(c, radius, [&](EntityId, const Aabb&) { ++hits; });
  }
  state.counters["hits/query"] = benchmark::Counter(
      static_cast<double>(hits) / static_cast<double>(state.iterations()));
  state.SetLabel(KindName(kind));
}
BENCHMARK(BM_RadiusQuery)
    ->ArgsProduct({{0, 1, 2, 3}, {1024, 8192, 65536}, {10, 50}});

void BM_Update(benchmark::State& state) {
  int kind = static_cast<int>(state.range(0));
  auto n = static_cast<size_t>(state.range(1));
  auto index = MakeIndex(kind);
  Rng rng(2);
  Fill(index.get(), n, &rng);
  for (auto _ : state) {
    uint32_t slot = static_cast<uint32_t>(rng.NextBounded(n));
    Vec3 p{rng.NextFloat(0, kArea), 0, rng.NextFloat(0, kArea)};
    index->Update(EntityId(slot, 0), Aabb::FromPoint(p).Inflated(1.0f));
    // Trees amortize: one query per update keeps lazy rebuilds honest.
    uint64_t hits = 0;
    index->QueryRadius(p, 10.0f, [&](EntityId, const Aabb&) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
  state.SetLabel(KindName(kind));
}
BENCHMARK(BM_Update)->ArgsProduct({{0, 1, 2, 3}, {1024, 16384}});

void BM_BuildFromScratch(benchmark::State& state) {
  int kind = static_cast<int>(state.range(0));
  auto n = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto index = MakeIndex(kind);
    Rng rng(3);
    Fill(index.get(), n, &rng);
    // Force lazy structures to actually build.
    uint64_t hits = 0;
    index->QueryRadius({kArea / 2, 0, kArea / 2}, 5.0f,
                       [&](EntityId, const Aabb&) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
  state.SetLabel(KindName(kind));
}
BENCHMARK(BM_BuildFromScratch)->ArgsProduct({{0, 1, 2, 3}, {8192}});

}  // namespace

BENCHMARK_MAIN();
