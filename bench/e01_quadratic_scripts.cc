// E1 — "scripts where every object in the game interacts with every other
// object, resulting in computations that are Ω(n²)" ... "game developers
// often rely on indices to speed up computations that involve relationships
// between pairs of objects."
//
// Workload: a proximity-damage script (every unit within range hits its
// neighbors) over n units, three plans:
//   naive      — the designer's nested loop, Ω(n²)
//   grid_join  — spatial-hash pair join, O(n·k)
//   aggregate  — maintained SUM index answering the "total faction hp"
//                side-query scripts recompute per frame, O(1) per read
// Expected shape: naive scales quadratically and falls off a cliff;
// indexed stays near-linear; the maintained aggregate is flat.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/aggregate.h"
#include "core/world.h"
#include "spatial/pair_join.h"
#include "spatial/uniform_grid.h"

namespace {

using namespace gamedb;           // NOLINT
using namespace gamedb::spatial;  // NOLINT

constexpr float kArea = 1000.0f;
constexpr float kRange = 10.0f;

std::vector<PointEntry> MakeUnits(size_t n) {
  Rng rng(42);
  std::vector<PointEntry> units;
  units.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    units.push_back(PointEntry{
        EntityId(i, 0),
        {rng.NextFloat(0, kArea), 0, rng.NextFloat(0, kArea)}});
  }
  return units;
}

void BM_NaivePairs(benchmark::State& state) {
  auto units = MakeUnits(static_cast<size_t>(state.range(0)));
  uint64_t pairs = 0;
  for (auto _ : state) {
    NestedLoopPairs(units, kRange,
                    [&](const PointEntry&, const PointEntry&) { ++pairs; });
  }
  state.counters["pairs"] =
      benchmark::Counter(static_cast<double>(pairs) /
                         static_cast<double>(state.iterations()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaivePairs)->RangeMultiplier(2)->Range(256, 8192)->Complexity();

void BM_GridJoinPairs(benchmark::State& state) {
  auto units = MakeUnits(static_cast<size_t>(state.range(0)));
  uint64_t pairs = 0;
  for (auto _ : state) {
    GridPairs(units, kRange,
              [&](const PointEntry&, const PointEntry&) { ++pairs; });
  }
  state.counters["pairs"] =
      benchmark::Counter(static_cast<double>(pairs) /
                         static_cast<double>(state.iterations()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GridJoinPairs)->RangeMultiplier(2)->Range(256, 8192)->Complexity();

void BM_IndexJoinPairs(benchmark::State& state) {
  auto units = MakeUnits(static_cast<size_t>(state.range(0)));
  UniformGrid index(UniformGridOptions{kRange});
  for (const auto& u : units) index.Insert(u.id, Aabb::FromPoint(u.pos));
  uint64_t pairs = 0;
  for (auto _ : state) {
    IndexPairs(index, units, kRange,
               [&](const PointEntry&, const PointEntry&) { ++pairs; });
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IndexJoinPairs)->RangeMultiplier(2)->Range(256, 8192)->Complexity();

// The per-frame side query: "total hp of my faction". The unindexed script
// rescans the table; the database answer maintains a grouped SUM.
void BM_RescanAggregate(benchmark::State& state) {
  RegisterStandardComponents();
  World world;
  auto n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    EntityId e = world.Create();
    world.Set(e, Health{float(rng.NextInt(1, 100)), 100});
    world.Set(e, Faction{int32_t(i % 4)});
  }
  for (auto _ : state) {
    // What a script's per-frame loop does.
    double sum = 0;
    world.Table<Health>().ForEach([&](EntityId e, const Health& h) {
      const Faction* f = world.Get<Faction>(e);
      if (f != nullptr && f->team == 0) sum += h.hp;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RescanAggregate)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_MaintainedAggregate(benchmark::State& state) {
  RegisterStandardComponents();
  World world;
  auto n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<EntityId> ids;
  for (size_t i = 0; i < n; ++i) {
    EntityId e = world.Create();
    world.Set(e, Health{float(rng.NextInt(1, 100)), 100});
    world.Set(e, Faction{int32_t(i % 4)});
    ids.push_back(e);
  }
  SumAggregate<Health> total(world, [](const Health& h) { return h.hp; });
  for (auto _ : state) {
    // One tracked write (the maintenance cost) plus the O(1) read.
    world.Patch<Health>(ids[rng.NextBounded(ids.size())],
                        [&](Health& h) { h.hp = float(rng.NextInt(1, 100)); });
    benchmark::DoNotOptimize(total.sum());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaintainedAggregate)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
