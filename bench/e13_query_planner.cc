// E13 — the cost-based query planner. The tutorial's performance story is
// that the designer's Ω(n²) loop is one (bad) plan among several; the
// follow-up work compiles declarative game logic into optimized plans. This
// experiment sweeps entity count × density × selectivity and, at every
// point, times each fixed physical plan next to the planner's pick, so the
// claim "the planner's choice is within 15% of the best fixed plan
// everywhere" is directly visible in the output table (the planned variants
// carry the chosen plan as their label).
//
// Part A: proximity pair joins — nested_loop vs grid vs tree-indexed, vs
//         PlanPairJoinFor's pick, across n × density.
// Part B: field predicates — forced full_scan vs forced field_index vs the
//         planner's pick, across n × selectivity.
// Part C: multi-component join driver order — each driver forced vs the
//         planner's pick (smallest estimated table).

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "core/world.h"
#include "planner/planner.h"
#include "spatial/pair_join.h"

namespace {

using namespace gamedb;           // NOLINT
using namespace gamedb::planner;  // NOLINT
using gamedb::spatial::PairAlgo;
using gamedb::spatial::PointEntry;

constexpr float kRadius = 10.0f;

// --- Part A: pair joins ----------------------------------------------------

/// Entities uniform on a square sized for ~`target_neighbors` per entity
/// within kRadius (2D density: k = n π r² / area²).
float AreaFor(size_t n, double target_neighbors) {
  return static_cast<float>(std::sqrt(static_cast<double>(n) * 3.14159265 *
                                      kRadius * kRadius /
                                      target_neighbors));
}

std::vector<PointEntry> MakePoints(size_t n, float area) {
  Rng rng(42);
  std::vector<PointEntry> points;
  points.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    points.push_back(PointEntry{
        EntityId(i, 0),
        {rng.NextFloat(0, area), 0, rng.NextFloat(0, area)}});
  }
  return points;
}

/// Density axis: 0 = sparse (~0.5 neighbors), 1 = dense (~8 neighbors).
double TargetNeighbors(int density) { return density == 0 ? 0.5 : 8.0; }

void BM_PairFixed(benchmark::State& state) {
  auto algo = static_cast<PairAlgo>(state.range(0));
  auto n = static_cast<size_t>(state.range(1));
  int density = static_cast<int>(state.range(2));
  auto points = MakePoints(n, AreaFor(n, TargetNeighbors(density)));
  uint64_t pairs = 0;
  for (auto _ : state) {
    RunPairs(algo, points, kRadius,
             [&](const PointEntry&, const PointEntry&) { ++pairs; });
  }
  state.counters["pairs"] = benchmark::Counter(
      static_cast<double>(pairs) / static_cast<double>(state.iterations()));
  state.SetLabel(spatial::PairAlgoName(algo));
}
BENCHMARK(BM_PairFixed)
    ->ArgsProduct({{0, 1, 2}, {128, 1024, 8192}, {0, 1}});

void BM_PairPlanned(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  int density = static_cast<int>(state.range(1));
  float area = AreaFor(n, TargetNeighbors(density));
  auto points = MakePoints(n, area);

  // Stats come from a world populated with the same distribution — the
  // planner never sees the points themselves.
  RegisterStandardComponents();
  World world;
  for (const auto& p : points) {
    world.Set(world.Create(), Position{p.pos});
  }
  QueryPlanner planner(&world);
  planner.Analyze();
  PairJoinPlan plan =
      planner.PlanPairJoinFor("Position", "value", n, kRadius);

  uint64_t pairs = 0;
  for (auto _ : state) {
    RunPairs(plan.algo, points, kRadius,
             [&](const PointEntry&, const PointEntry&) { ++pairs; });
  }
  state.counters["pairs"] = benchmark::Counter(
      static_cast<double>(pairs) / static_cast<double>(state.iterations()));
  state.SetLabel(std::string("picked:") + spatial::PairAlgoName(plan.algo));
}
BENCHMARK(BM_PairPlanned)->ArgsProduct({{128, 1024, 8192}, {0, 1}});

// --- Part B: field predicates ---------------------------------------------

/// World with n Health rows, hp uniform in [0, 100). Selectivity axis:
/// 0 -> hp < 1 (~1%), 1 -> hp < 50 (~50%).
void PopulateHealth(World* world, size_t n) {
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    world->Set(world->Create(), Health{rng.NextFloat(0, 100), 100.0f});
  }
}

double SelThreshold(int sel) { return sel == 0 ? 1.0 : 50.0; }

void BM_PredicateFixed(benchmark::State& state) {
  auto access = static_cast<AccessPath>(state.range(0));
  auto n = static_cast<size_t>(state.range(1));
  int sel = static_cast<int>(state.range(2));
  RegisterStandardComponents();
  World world;
  PopulateHealth(&world, n);
  QueryPlanner planner(&world);
  planner.Analyze();

  int64_t matched = 0;
  for (auto _ : state) {
    DynamicQuery q(&world);
    q.WhereField("Health", "hp", CmpOp::kLt, SelThreshold(sel));
    QueryPlan plan = planner.BuildPlan(q);
    plan.access = access;
    if (access == AccessPath::kFieldIndex) {
      plan.index_predicate = 0;
      plan.predicate_order.clear();
    } else {
      plan.index_predicate = -1;
      plan.predicate_order.assign({0});
    }
    matched = 0;
    benchmark::DoNotOptimize(
        planner.ExecuteWithPlan(q, plan, [&](EntityId) { ++matched; }));
  }
  state.counters["rows"] = benchmark::Counter(static_cast<double>(matched));
  state.SetLabel(AccessPathName(access));
}
BENCHMARK(BM_PredicateFixed)
    ->ArgsProduct({{0, 1}, {1024, 16384}, {0, 1}});

void BM_PredicatePlanned(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  int sel = static_cast<int>(state.range(1));
  RegisterStandardComponents();
  World world;
  PopulateHealth(&world, n);
  QueryPlanner planner(&world);
  planner.Analyze();

  int64_t matched = 0;
  std::string label;
  for (auto _ : state) {
    DynamicQuery q(&world);
    q.SetPlanner(&planner);
    q.WhereField("Health", "hp", CmpOp::kLt, SelThreshold(sel));
    matched = 0;
    benchmark::DoNotOptimize(q.Each([&](EntityId) { ++matched; }));
    if (label.empty()) {
      DynamicQuery probe(&world);
      probe.WhereField("Health", "hp", CmpOp::kLt, SelThreshold(sel));
      label = std::string("picked:") +
              AccessPathName(planner.BuildPlan(probe).access);
    }
  }
  state.counters["rows"] = benchmark::Counter(static_cast<double>(matched));
  state.SetLabel(label);
}
BENCHMARK(BM_PredicatePlanned)->ArgsProduct({{1024, 16384}, {0, 1}});

// --- Part C: join driver order --------------------------------------------

/// Three tables with a 8:4:1 size ratio: Health on every entity, Faction on
/// every second, Actor on every eighth.
void PopulateJoin(World* world, size_t n) {
  Rng rng(11);
  for (size_t i = 0; i < n; ++i) {
    EntityId e = world->Create();
    world->Set(e, Health{rng.NextFloat(0, 100), 100.0f});
    if (i % 2 == 0) world->Set(e, Faction{int32_t(i % 4)});
    if (i % 8 == 0) world->Set(e, Actor{int64_t(i), 100, 1, false});
  }
}

void BM_JoinDriverFixed(benchmark::State& state) {
  int driver = static_cast<int>(state.range(0));  // 0 Health 1 Faction 2 Actor
  auto n = static_cast<size_t>(state.range(1));
  RegisterStandardComponents();
  World world;
  PopulateJoin(&world, n);
  QueryPlanner planner(&world);
  planner.Analyze();
  const char* names[] = {"Health", "Faction", "Actor"};
  uint32_t driver_id =
      TypeRegistry::Global().FindByName(names[driver])->id();

  int64_t matched = 0;
  for (auto _ : state) {
    DynamicQuery q(&world);
    q.With("Health").With("Faction").With("Actor");
    QueryPlan plan = planner.BuildPlan(q);
    plan.access = AccessPath::kFullScan;
    plan.driver_type = driver_id;
    matched = 0;
    benchmark::DoNotOptimize(
        planner.ExecuteWithPlan(q, plan, [&](EntityId) { ++matched; }));
  }
  state.counters["rows"] = benchmark::Counter(static_cast<double>(matched));
  state.SetLabel(std::string("driver:") + names[driver]);
}
BENCHMARK(BM_JoinDriverFixed)->ArgsProduct({{0, 1, 2}, {4096, 32768}});

void BM_JoinDriverPlanned(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  RegisterStandardComponents();
  World world;
  PopulateJoin(&world, n);
  QueryPlanner planner(&world);
  planner.Analyze();

  int64_t matched = 0;
  for (auto _ : state) {
    DynamicQuery q(&world);
    q.SetPlanner(&planner);
    q.With("Health").With("Faction").With("Actor");
    matched = 0;
    benchmark::DoNotOptimize(q.Each([&](EntityId) { ++matched; }));
  }
  DynamicQuery probe(&world);
  probe.With("Health").With("Faction").With("Actor");
  QueryPlan plan = planner.BuildPlan(probe);
  const TypeInfo* info = TypeRegistry::Global().Find(plan.driver_type);
  state.counters["rows"] = benchmark::Counter(static_cast<double>(matched));
  state.SetLabel(std::string("picked:") +
                 (info != nullptr ? info->name() : "?"));
}
BENCHMARK(BM_JoinDriverPlanned)->ArgsProduct({{4096, 32768}});

}  // namespace

BENCHMARK_MAIN();
