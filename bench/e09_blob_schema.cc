// E9 — "They often choose to write data as an unstructured 'blobs' into a
// single attribute, so that they can preserve their old schemas ... they
// constantly have to balance database support with sustainability."
//
// Point/scan/analytics throughput for structured vs blob vs hybrid player
// stores, plus migration cost: eager stop-the-world vs blob lazy upgrade.
// Expected shape: blobs win writes and schema changes, lose every
// analytical query by the deserialization factor; hybrid recovers hot-path
// queries for modest extra footprint.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "persist/player_store.h"

namespace {

using namespace gamedb;           // NOLINT
using namespace gamedb::persist;  // NOLINT

PlayerRecord MakeRecord(int64_t id, Rng* rng) {
  PlayerRecord rec;
  rec.id = id;
  rec.name = "player_" + std::to_string(id);
  rec.level = int32_t(rng->NextInt(1, 60));
  rec.gold = rng->NextInt(0, 100000);
  rec.position = {rng->NextFloat(0, 1000), 0, rng->NextFloat(0, 1000)};
  size_t items = size_t(rng->NextInt(0, 20));
  for (size_t i = 0; i < items; ++i) {
    rec.items.push_back(int32_t(rng->NextInt(1, 5000)));
  }
  rec.guild_id = int32_t(rng->NextInt(-1, 100));
  rec.rating = 1000.0 + rng->NextDouble() * 2000.0;
  return rec;
}

std::unique_ptr<PlayerStore> MakeStore(int kind, uint32_t write_version = 3) {
  switch (kind) {
    case 0:
      return std::make_unique<StructuredPlayerStore>();
    case 1:
      return std::make_unique<BlobPlayerStore>(write_version);
    default:
      return std::make_unique<HybridPlayerStore>();
  }
}

const char* StoreName(int kind) {
  switch (kind) {
    case 0:
      return "structured";
    case 1:
      return "blob";
    default:
      return "hybrid";
  }
}

void Fill(PlayerStore* store, size_t n, uint64_t seed) {
  Rng rng(seed);
  for (int64_t id = 0; id < int64_t(n); ++id) {
    GAMEDB_CHECK(store->Put(MakeRecord(id, &rng)).ok());
  }
}

void BM_Insert(benchmark::State& state) {
  int kind = int(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    auto store = MakeStore(kind);
    state.ResumeTiming();
    for (int64_t id = 0; id < 10000; ++id) {
      benchmark::DoNotOptimize(store->Put(MakeRecord(id, &rng)));
    }
  }
  state.SetLabel(StoreName(kind));
}
BENCHMARK(BM_Insert)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_PointGet(benchmark::State& state) {
  int kind = int(state.range(0));
  auto store = MakeStore(kind);
  Fill(store.get(), 50000, 2);
  Rng rng(3);
  for (auto _ : state) {
    auto rec = store->Get(int64_t(rng.NextBounded(50000)));
    benchmark::DoNotOptimize(rec);
  }
  state.SetLabel(StoreName(kind));
}
BENCHMARK(BM_PointGet)->Arg(0)->Arg(1)->Arg(2);

void BM_AnalyticalQuery(benchmark::State& state) {
  // "sum gold of max-level players" — the query a designer dashboard runs.
  int kind = int(state.range(0));
  auto store = MakeStore(kind);
  Fill(store.get(), size_t(state.range(1)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->SumGoldWhereLevelAtLeast(55));
  }
  state.SetLabel(StoreName(kind));
}
BENCHMARK(BM_AnalyticalQuery)
    ->ArgsProduct({{0, 1, 2}, {10000, 100000}})
    ->Unit(benchmark::kMillisecond);

void BM_TopK(benchmark::State& state) {
  int kind = int(state.range(0));
  auto store = MakeStore(kind);
  Fill(store.get(), 50000, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->TopKByGold(100));
  }
  state.SetLabel(StoreName(kind));
}
BENCHMARK(BM_TopK)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_EagerMigration(benchmark::State& state) {
  // Stop-the-world upgrade of a v1 population to v3.
  for (auto _ : state) {
    state.PauseTiming();
    BlobPlayerStore store(/*write_version=*/1);
    Fill(&store, size_t(state.range(0)), 6);
    state.ResumeTiming();
    auto touched = store.MigrateAll();
    GAMEDB_CHECK(touched.ok());
    benchmark::DoNotOptimize(*touched);
  }
  state.SetLabel("blob_eager");
}
BENCHMARK(BM_EagerMigration)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_LazyMigrationReadTax(benchmark::State& state) {
  // The lazy alternative: first reads after a schema change pay the
  // upgrade; steady-state reads don't. range(0)==0 measures the first-touch
  // tax, ==1 the post-migration steady state.
  bool steady = state.range(0) == 1;
  BlobPlayerStore store(/*write_version=*/1);
  Fill(&store, 50000, 7);
  if (steady) {
    GAMEDB_CHECK(store.MigrateAll().ok());
  }
  Rng rng(8);
  for (auto _ : state) {
    auto rec = store.Get(int64_t(rng.NextBounded(50000)));
    benchmark::DoNotOptimize(rec);
  }
  state.SetLabel(steady ? "blob_lazy_steady" : "blob_lazy_first_touch");
}
BENCHMARK(BM_LazyMigrationReadTax)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
