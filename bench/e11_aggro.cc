// E11 — "'aggro management' is the technique that World of Warcraft uses to
// target opponents and process combat. It assigns abstract roles to the
// participants, which allows the game to handle combat without exact
// spatial fidelity."
//
// A raid of melee players dances around a boss pack. Spatial targeting
// re-scans geometry per NPC per tick and ping-pongs between equidistant
// players; threat-table targeting is O(participants) with sticky holds.
// Columns: targeting cost and target switches per 100 ticks.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "replication/aggro.h"

namespace {

using namespace gamedb;               // NOLINT
using namespace gamedb::replication;  // NOLINT

struct Raid {
  World world;
  std::vector<EntityId> npcs;
  std::vector<EntityId> players;
};

std::unique_ptr<Raid> MakeRaid(size_t npcs, size_t players, uint64_t seed) {
  RegisterStandardComponents();
  auto raid = std::make_unique<Raid>();
  Rng rng(seed);
  for (size_t i = 0; i < npcs; ++i) {
    EntityId e = raid->world.Create();
    raid->npcs.push_back(e);
    raid->world.Set(e, Position{{rng.NextFloat(-5, 5), 0,
                                 rng.NextFloat(-5, 5)}});
    raid->world.Set(e, Faction{0});
    raid->world.Set(e, Health{5000, 5000});
  }
  for (size_t i = 0; i < players; ++i) {
    EntityId e = raid->world.Create();
    raid->players.push_back(e);
    raid->world.Set(e, Position{{rng.NextFloat(-8, 8), 0,
                                 rng.NextFloat(-8, 8)}});
    raid->world.Set(e, Faction{1});
    raid->world.Set(e, Health{100, 100});
  }
  return raid;
}

/// Melee shuffle: players orbit the boss pack a little each tick.
void Dance(Raid* raid, Rng* rng) {
  for (EntityId p : raid->players) {
    raid->world.Patch<Position>(p, [&](Position& pos) {
      pos.value += rng->NextDirXZ() * rng->NextFloat(0.0f, 2.0f);
    });
  }
}

void BM_SpatialTargeting(benchmark::State& state) {
  auto raid = MakeRaid(size_t(state.range(0)), size_t(state.range(1)), 77);
  Rng rng(1);
  std::unordered_map<uint64_t, EntityId> last_target;
  uint64_t switches = 0, ticks = 0;
  for (auto _ : state) {
    Dance(raid.get(), &rng);
    for (EntityId npc : raid->npcs) {
      EntityId target = SelectNearestEnemy(raid->world, npc);
      auto [it, fresh] = last_target.try_emplace(npc.Raw(), target);
      if (!fresh && !(it->second == target)) {
        ++switches;
        it->second = target;
      }
    }
    ++ticks;
  }
  state.counters["switches/100ticks"] = benchmark::Counter(
      ticks ? 100.0 * double(switches) / double(ticks) : 0);
  state.SetLabel("spatial");
}
BENCHMARK(BM_SpatialTargeting)
    ->ArgsProduct({{5, 20}, {40, 200}})
    ->Unit(benchmark::kMicrosecond);

void BM_AggroTargeting(benchmark::State& state) {
  auto raid = MakeRaid(size_t(state.range(0)), size_t(state.range(1)), 77);
  Rng rng(1);
  // Threat tables pre-seeded by an opening rotation, then ongoing damage.
  std::unordered_map<uint64_t, ThreatTable> threat;
  for (EntityId npc : raid->npcs) {
    ThreatTable& table = threat[npc.Raw()];
    for (EntityId p : raid->players) {
      table.OnDamage(p, rng.NextDouble() * 100.0);
    }
  }
  uint64_t ticks = 0;
  for (auto _ : state) {
    Dance(raid.get(), &rng);  // same motion cost as the spatial variant
    for (EntityId npc : raid->npcs) {
      ThreatTable& table = threat[npc.Raw()];
      // A few damage events per tick keep threat churning.
      for (int i = 0; i < 4; ++i) {
        table.OnDamage(raid->players[rng.NextBounded(raid->players.size())],
                       rng.NextDouble() * 10.0);
      }
      benchmark::DoNotOptimize(table.CurrentTarget());
    }
    ++ticks;
  }
  uint64_t switches = 0;
  for (auto& [raw, table] : threat) switches += table.target_switches();
  state.counters["switches/100ticks"] = benchmark::Counter(
      ticks ? 100.0 * double(switches) / double(ticks) : 0);
  state.SetLabel("aggro");
}
BENCHMARK(BM_AggroTargeting)
    ->ArgsProduct({{5, 20}, {40, 200}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
