// E3 — "navigational meshes are used to represent the ways in which a
// character is allowed to move about the geography ... often annotated by a
// designer to include extra semantic information."
//
// Grid A* vs navmesh A* (+funnel) on procedurally generated room-and-
// corridor maps; annotation-aware routing (danger avoidance) as a variant.
// Expected shape: the navmesh expands orders of magnitude fewer nodes on
// open maps and produces shorter (taut) paths; annotation costs steer
// paths without extra search structure.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "spatial/grid_astar.h"
#include "spatial/navmesh_builder.h"

namespace {

using namespace gamedb;           // NOLINT
using namespace gamedb::spatial;  // NOLINT

/// Rooms connected by corridors, ~10% danger tiles in the open.
GridMap MakeDungeon(int size, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> rows(size, std::string(size, '#'));
  // Carve rooms.
  int rooms = size / 8;
  std::vector<std::pair<int, int>> centers;
  for (int r = 0; r < rooms; ++r) {
    int w = int(rng.NextInt(4, 10)), h = int(rng.NextInt(4, 10));
    int x = int(rng.NextInt(1, size - w - 2));
    int y = int(rng.NextInt(1, size - h - 2));
    for (int yy = y; yy < y + h; ++yy) {
      for (int xx = x; xx < x + w; ++xx) {
        rows[yy][xx] = rng.NextDouble() < 0.08 ? 'D' : '.';
      }
    }
    centers.emplace_back(x + w / 2, y + h / 2);
  }
  // Connect consecutive rooms with L-corridors.
  for (size_t i = 1; i < centers.size(); ++i) {
    auto [x0, y0] = centers[i - 1];
    auto [x1, y1] = centers[i];
    for (int x = std::min(x0, x1); x <= std::max(x0, x1); ++x) {
      if (rows[y0][x] == '#') rows[y0][x] = '.';
    }
    for (int y = std::min(y0, y1); y <= std::max(y0, y1); ++y) {
      if (rows[y][x1] == '#') rows[y][x1] = '.';
    }
  }
  auto map = GridMap::FromAscii(rows);
  GAMEDB_CHECK(map.ok());
  return std::move(map).value();
}

std::pair<std::pair<int, int>, std::pair<int, int>> PickEndpoints(
    const GridMap& map, Rng* rng) {
  auto pick = [&]() {
    while (true) {
      int x = int(rng->NextInt(0, map.width() - 1));
      int y = int(rng->NextInt(0, map.height() - 1));
      if (map.Walkable(x, y)) return std::make_pair(x, y);
    }
  };
  return {pick(), pick()};
}

void BM_GridAstar(benchmark::State& state) {
  GridMap map = MakeDungeon(int(state.range(0)), 9000);
  Rng rng(17);
  uint64_t expanded = 0, found = 0;
  double total_len = 0;
  for (auto _ : state) {
    auto [s, g] = PickEndpoints(map, &rng);
    auto path = FindGridPath(map, s, g);
    expanded += path.expanded;
    if (path.found) {
      ++found;
      total_len += PathLength(path.waypoints);
    }
  }
  state.counters["expanded/query"] = benchmark::Counter(
      double(expanded) / double(state.iterations()));
  state.counters["path_len"] =
      benchmark::Counter(found ? total_len / double(found) : 0);
}
BENCHMARK(BM_GridAstar)->Arg(64)->Arg(128)->Arg(256);

void BM_NavmeshAstar(benchmark::State& state) {
  GridMap map = MakeDungeon(int(state.range(0)), 9000);
  NavMeshBuildStats build_stats;
  auto mesh = BuildNavMesh(map, &build_stats);
  GAMEDB_CHECK(mesh.ok());
  Rng rng(17);
  uint64_t expanded = 0, found = 0;
  double total_len = 0;
  for (auto _ : state) {
    auto [s, g] = PickEndpoints(map, &rng);
    auto path = mesh->FindPath(
        {map.CellCenter(s.first, s.second)},
        {map.CellCenter(g.first, g.second)});
    expanded += path.expanded;
    if (path.found) {
      ++found;
      total_len += PathLength(path.waypoints);
    }
  }
  state.counters["expanded/query"] = benchmark::Counter(
      double(expanded) / double(state.iterations()));
  state.counters["path_len"] =
      benchmark::Counter(found ? total_len / double(found) : 0);
  state.counters["polys"] = benchmark::Counter(double(build_stats.polygon_count));
  state.counters["cells"] =
      benchmark::Counter(double(build_stats.walkable_cells));
}
BENCHMARK(BM_NavmeshAstar)->Arg(64)->Arg(128)->Arg(256);

void BM_NavmeshBuild(benchmark::State& state) {
  GridMap map = MakeDungeon(int(state.range(0)), 9000);
  for (auto _ : state) {
    NavMeshBuildStats stats;
    auto mesh = BuildNavMesh(map, &stats);
    benchmark::DoNotOptimize(mesh);
  }
}
BENCHMARK(BM_NavmeshBuild)->Arg(64)->Arg(256);

void BM_AnnotationAwareRouting(benchmark::State& state) {
  // Danger avoidance: multiplier 1 (indifferent) vs 25 (cautious).
  GridMap map = MakeDungeon(128, 9000);
  auto mesh = BuildNavMesh(map);
  GAMEDB_CHECK(mesh.ok());
  Rng rng(23);
  NavPathOptions opts;
  opts.danger_multiplier = float(state.range(0));
  uint64_t danger_crossings = 0, queries = 0;
  for (auto _ : state) {
    auto [s, g] = PickEndpoints(map, &rng);
    auto path = mesh->FindPath({map.CellCenter(s.first, s.second)},
                               {map.CellCenter(g.first, g.second)}, opts);
    ++queries;
    for (uint32_t pid : path.corridor) {
      if (mesh->polygon(pid).flags & kNavDanger) ++danger_crossings;
    }
  }
  state.counters["danger_polys/path"] =
      benchmark::Counter(double(danger_crossings) / double(queries));
}
BENCHMARK(BM_AnnotationAwareRouting)->Arg(1)->Arg(25);

}  // namespace

BENCHMARK_MAIN();
