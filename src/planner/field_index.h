#pragma once

/// \file field_index.h
/// Sorted projection indexes over numeric component fields, built on demand
/// by the planner when a predicate is selective enough to beat a full scan.
/// An index is valid for exactly one table version (SparseSet bumps
/// last_version on every mutation), so correctness never depends on the
/// planner's staleness heuristics: a mutated table simply rebuilds on next
/// use. The payoff is the common game shape — a frozen world during a
/// scripted query phase, where thousands of per-entity queries share one
/// build (CostConstants::assumed_index_reuse).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/reflect.h"
#include "core/world.h"

namespace gamedb::planner {

/// One immutable sorted projection: (numeric key, entity) pairs ascending
/// by key. NaN-keyed rows poison the index (has_nan) — ordered predicates
/// on NaN don't follow sort order, so the planner falls back to a scan.
struct FieldIndex {
  uint64_t built_version = 0;
  bool has_nan = false;
  std::vector<std::pair<double, EntityId>> entries;

  /// Calls `fn(EntityId)` for entries with key in [lo, hi] (inclusive).
  template <typename Fn>
  void ForEachInRange(double lo, double hi, Fn&& fn) const {
    auto cmp = [](const std::pair<double, EntityId>& a, double b) {
      return a.first < b;
    };
    auto it = std::lower_bound(entries.begin(), entries.end(), lo, cmp);
    for (; it != entries.end() && it->first <= hi; ++it) fn(it->second);
  }
};

/// Cache key shared by the planner's per-(table, field) index caches
/// (FieldIndexCache here, the spatial KD-tree cache in planner.cc).
struct IndexCacheKey {
  uint32_t type_id;
  const FieldInfo* field;
  bool operator==(const IndexCacheKey& o) const {
    return type_id == o.type_id && field == o.field;
  }
};
struct IndexCacheKeyHash {
  size_t operator()(const IndexCacheKey& k) const {
    return std::hash<const void*>()(k.field) ^
           (static_cast<size_t>(k.type_id) * 0x9E3779B97F4A7C15ull);
  }
};

/// Thread-safe cache of FieldIndexes keyed by (type id, field). Concurrent
/// Get calls are safe (shared lock on the fast path; one builder under the
/// exclusive lock when the table version moved). Returned pointers stay
/// valid until the entry is rebuilt for a newer version — callers must not
/// hold them across world mutations.
class FieldIndexCache {
 public:
  /// Returns the up-to-date index for (store, field), building it if the
  /// cached one is missing or stale. `store` must be the table for
  /// `type_id`.
  const FieldIndex* Get(uint32_t type_id, const FieldInfo* field,
                        const ComponentStore* store);

  /// Total index builds (diagnostics; amortization visibility in tests).
  uint64_t builds() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return builds_;
  }

  void Clear();

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<IndexCacheKey, std::unique_ptr<FieldIndex>,
                     IndexCacheKeyHash>
      cache_;
  uint64_t builds_ = 0;
};

}  // namespace gamedb::planner
