#include "planner/field_index.h"

#include <cmath>
#include <mutex>

#include "core/query.h"

namespace gamedb::planner {

const FieldIndex* FieldIndexCache::Get(uint32_t type_id,
                                       const FieldInfo* field,
                                       const ComponentStore* store) {
  const uint64_t version = store->last_version();
  const IndexCacheKey key{type_id, field};
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second->built_version == version) {
      return it->second.get();
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = cache_[key];
  if (slot != nullptr && slot->built_version == version) {
    return slot.get();  // another thread built it while we waited
  }
  auto index = std::make_unique<FieldIndex>();
  index->built_version = version;
  index->entries.reserve(store->Size());
  for (size_t i = 0; i < store->Size(); ++i) {
    double v = 0.0;
    if (!FieldValueAsNumber(field->Get(store->ValueAt(i)), &v)) continue;
    if (std::isnan(v)) {
      index->has_nan = true;
      continue;
    }
    index->entries.emplace_back(v, store->EntityAt(i));
  }
  std::sort(index->entries.begin(), index->entries.end(),
            [](const std::pair<double, EntityId>& a,
               const std::pair<double, EntityId>& b) {
              return a.first < b.first;
            });
  ++builds_;
  slot = std::move(index);
  return slot.get();
}

void FieldIndexCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  cache_.clear();
}

}  // namespace gamedb::planner
