#pragma once

/// \file stats.h
/// Statistics collector for the cost-based query planner: per-component-table
/// row counts, per-numeric-field min/max + equi-width histograms, and spatial
/// density summaries (entity count, bbox, estimated neighbors at a reference
/// radius) for Vec3 fields. The planner estimates predicate selectivity and
/// proximity-join fan-out from these instead of touching the tables at plan
/// time.
///
/// Stats are a snapshot: Analyze() scans every existing table and bumps the
/// epoch; Drifted()/MaybeRefresh() implement the incremental policy (cheap
/// row-count comparison each tick, full re-analyze only once sizes drift past
/// a threshold). Plans are cached against the epoch, so replanning is free
/// until a refresh actually happens.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/geometry.h"
#include "core/query.h"
#include "core/world.h"

namespace gamedb::planner {

/// Distribution summary of one numeric field: min/max plus an equi-width
/// histogram over [min, max].
struct FieldStats {
  size_t rows = 0;      ///< rows with a numeric value for this field
  double min = 0.0;
  double max = 0.0;
  bool integral = true;  ///< every observed value was a whole number
  bool has_nan = false;  ///< a NaN was observed (disables index planning)
  std::vector<uint32_t> buckets;  ///< equi-width counts over [min, max]

  /// Estimated fraction of rows satisfying `value op rhs` (in [0, 1]).
  /// Uniform-within-bucket interpolation; equality on integral fields
  /// assumes distinct values are the whole numbers in the bucket span.
  double EstimateSelectivity(CmpOp op, double rhs) const;
};

/// Density summary of one Vec3 field, built from a one-pass uniform hash of
/// positions into cells of side `ref_radius`. `avg_cell_cooccupants` is the
/// expected number of *other* entities sharing a cell with a random entity —
/// a clustering-aware local density measure (uniform data gives ~n·r^d /
/// volume; clustered data reports the density entities actually see).
struct SpatialFieldStats {
  size_t rows = 0;
  Aabb bbox;
  float ref_radius = 10.0f;
  double avg_cell_cooccupants = 0.0;
  int dims = 3;  ///< 2 when one bbox axis is degenerate (planar worlds)

  /// Estimated number of neighbors within `radius` of a random entity
  /// (excluding itself). Scales the cell co-occupancy to a sphere/disc of
  /// the requested radius.
  double EstimateNeighbors(float radius) const;
};

/// Statistics for one component table.
struct TableStats {
  uint32_t type_id = 0;
  size_t rows = 0;  ///< row count at analyze time
  /// Rows whose entity was alive at analyze time. Tables written through
  /// the raw SparseSet API (hot loops, systems applying buffered batches
  /// with stale ids) can hold rows of dead entities; those rows cost scan
  /// time but never join, so the View driver cost model weighs tables by
  /// live rows, not raw size.
  size_t live_rows = 0;
  /// Keyed by field name; numeric fields only.
  std::unordered_map<std::string, FieldStats> fields;
  /// Keyed by field name; Vec3 fields only.
  std::unordered_map<std::string, SpatialFieldStats> spatial;
};

/// Options for WorldStats.
struct StatsOptions {
  size_t histogram_buckets = 16;
  /// Cell side for the spatial density pass; pick near the typical query
  /// radius (the e01/e02 workloads use 10).
  float ref_radius = 10.0f;
};

/// Snapshot statistics over every existing component table of a World.
///
/// Thread safety: Analyze/MaybeRefresh mutate and must not run concurrently
/// with readers; the planner calls them only from sequential phases (e.g.
/// before the ScriptHost query phase fans out).
class WorldStats {
 public:
  explicit WorldStats(StatsOptions options = {}) : options_(options) {}

  /// Full rebuild: scans every existing table; bumps epoch().
  void Analyze(const World& world);

  /// True when any table's current row count has drifted from the analyzed
  /// count by more than `threshold` (relative), or a table appeared/grew
  /// from nothing.
  bool Drifted(const World& world, double threshold) const;

  /// Re-analyzes if Drifted(); returns whether a refresh happened.
  bool MaybeRefresh(const World& world, double threshold);

  /// Monotonic snapshot version; bumped by every Analyze. Plans cache
  /// against this.
  uint64_t epoch() const { return epoch_; }

  /// Stats for a table, or nullptr when it was absent at analyze time.
  const TableStats* Table(uint32_t type_id) const;
  /// Field stats, or nullptr (unknown table/field or non-numeric field).
  const FieldStats* Field(uint32_t type_id, const std::string& field) const;
  /// Spatial stats, or nullptr (unknown table/field or non-Vec3 field).
  const SpatialFieldStats* Spatial(uint32_t type_id,
                                   const std::string& field) const;

  /// Estimated rows of a table: analyzed count, 0 when never seen.
  double EstimateRows(uint32_t type_id) const;

  /// Estimated live rows (entity alive at analyze time); 0 when never
  /// seen. Always <= EstimateRows for the same epoch.
  double EstimateLiveRows(uint32_t type_id) const;

  const StatsOptions& options() const { return options_; }

  /// One line per analyzed table (EXPLAIN and diagnostics).
  std::string ToString() const;

 private:
  StatsOptions options_;
  uint64_t epoch_ = 0;
  std::unordered_map<uint32_t, TableStats> tables_;
};

}  // namespace gamedb::planner
