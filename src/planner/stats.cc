#include "planner/stats.h"

#include <algorithm>
#include <cmath>

namespace gamedb::planner {

namespace {

/// Portion of bucket `b` (of `n` equal-width buckets over [min,max]) that
/// lies strictly below `x`, in [0,1].
double BucketFractionBelow(double bucket_lo, double bucket_hi, double x) {
  if (x <= bucket_lo) return 0.0;
  if (x >= bucket_hi) return 1.0;
  double w = bucket_hi - bucket_lo;
  return w > 0.0 ? (x - bucket_lo) / w : 0.0;
}

}  // namespace

double FieldStats::EstimateSelectivity(CmpOp op, double rhs) const {
  if (rows == 0) return 0.0;
  if (std::isnan(rhs)) {
    // NaN compares false under every ordered op and ==; != is the inverse.
    return op == CmpOp::kNe ? 1.0 : 0.0;
  }
  double width = max - min;
  if (buckets.empty() || width <= 0.0) {
    // Single-valued (or unanalyzed) column: exact comparison against `min`.
    bool holds = CompareFieldValues(FieldValue(min), op, FieldValue(rhs));
    return holds ? 1.0 : 0.0;
  }
  const double n = static_cast<double>(rows);
  const double bucket_width = width / static_cast<double>(buckets.size());

  // Fraction of rows strictly below rhs (uniform within bucket).
  double below = 0.0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    double lo = min + bucket_width * static_cast<double>(b);
    double hi = lo + bucket_width;
    below += static_cast<double>(buckets[b]) *
             BucketFractionBelow(lo, hi, rhs);
  }
  below /= n;

  // Fraction equal to rhs: 0 outside range; inside, integral columns have
  // ~`width` distinct values, continuous ones effectively none — use one
  // bucket-row's worth as a floor so Eq never estimates exactly zero inside
  // the observed range.
  double eq = 0.0;
  if (rhs >= min && rhs <= max) {
    size_t b = std::min(buckets.size() - 1,
                        static_cast<size_t>((rhs - min) / bucket_width));
    double bucket_frac = static_cast<double>(buckets[b]) / n;
    double distinct_per_bucket =
        integral ? std::max(1.0, std::floor(bucket_width) + 1.0)
                 : static_cast<double>(std::max<size_t>(buckets[b], 1));
    eq = bucket_frac / distinct_per_bucket;
  }

  double sel = 0.0;
  switch (op) {
    case CmpOp::kEq:
      sel = eq;
      break;
    case CmpOp::kNe:
      sel = 1.0 - eq;
      break;
    case CmpOp::kLt:
      sel = below;
      break;
    case CmpOp::kLe:
      sel = below + eq;
      break;
    case CmpOp::kGt:
      sel = 1.0 - below - eq;
      break;
    case CmpOp::kGe:
      sel = 1.0 - below;
      break;
  }
  return std::clamp(sel, 0.0, 1.0);
}

double SpatialFieldStats::EstimateNeighbors(float radius) const {
  if (rows < 2 || ref_radius <= 0.0f) return 0.0;
  // avg_cell_cooccupants counts co-occupants of a cube/square cell of side
  // ref_radius; scale to a sphere/disc of the requested radius. The shape
  // factor is vol(sphere r) / vol(cube ref): 2D π r² / ref², 3D (4π/3) r³ /
  // ref³.
  double ratio = static_cast<double>(radius) / ref_radius;
  double shape = dims == 2 ? 3.14159265358979 * ratio * ratio
                           : 4.18879020478639 * ratio * ratio * ratio;
  return avg_cell_cooccupants * shape;
}

void WorldStats::Analyze(const World& world) {
  tables_.clear();
  const size_t nbuckets = std::max<size_t>(1, options_.histogram_buckets);

  world.ForEachStore([&](const TypeInfo& info, const ComponentStore& store) {
    TableStats ts;
    ts.type_id = info.id();
    ts.rows = store.Size();
    for (size_t i = 0; i < store.Size(); ++i) {
      if (world.Alive(store.EntityAt(i))) ++ts.live_rows;
    }

    for (const FieldInfo& field : info.fields()) {
      const bool is_vec3 = field.type() == FieldType::kVec3;
      const bool is_numeric =
          !is_vec3 && field.type() != FieldType::kString &&
          field.type() != FieldType::kEntity;
      if (!is_vec3 && !is_numeric) continue;

      if (is_numeric) {
        FieldStats fs;
        std::vector<double> values;
        values.reserve(store.Size());
        for (size_t i = 0; i < store.Size(); ++i) {
          double v = 0.0;
          if (!FieldValueAsNumber(field.Get(store.ValueAt(i)), &v)) continue;
          if (std::isnan(v)) {
            fs.has_nan = true;
            continue;
          }
          if (values.empty() || v < fs.min) fs.min = v;
          if (values.empty() || v > fs.max) fs.max = v;
          if (v != std::floor(v)) fs.integral = false;
          values.push_back(v);
        }
        fs.rows = values.size();
        double width = fs.max - fs.min;
        if (!values.empty() && width > 0.0) {
          fs.buckets.assign(nbuckets, 0);
          for (double v : values) {
            size_t b = std::min(
                nbuckets - 1,
                static_cast<size_t>((v - fs.min) / width *
                                    static_cast<double>(nbuckets)));
            ++fs.buckets[b];
          }
        }
        ts.fields.emplace(field.name(), std::move(fs));
      } else {
        SpatialFieldStats ss;
        ss.ref_radius = options_.ref_radius;
        // One-pass density: hash positions into cells of side ref_radius;
        // E[co-occupants] = Σ n_c² / n − 1 (clustering-aware).
        std::unordered_map<uint64_t, uint32_t> cells;
        const float inv = 1.0f / std::max(1e-6f, ss.ref_radius);
        for (size_t i = 0; i < store.Size(); ++i) {
          FieldValue v = field.Get(store.ValueAt(i));
          const Vec3* p = std::get_if<Vec3>(&v);
          if (p == nullptr) continue;
          // Skip degenerate positions: NaN/inf (physics blowups the query
          // layer tolerates — they simply never match) would poison the
          // bbox, and the float→int cell cast below is UB out of int32
          // range.
          auto in_range = [&](float c) {
            return std::isfinite(c) && std::fabs(c * inv) < 1e9f;
          };
          if (!in_range(p->x) || !in_range(p->y) || !in_range(p->z)) {
            continue;
          }
          ss.bbox = ss.bbox.Union(Aabb::FromPoint(*p));
          auto cell = [&](float c) {
            return static_cast<uint64_t>(
                static_cast<uint32_t>(static_cast<int32_t>(
                    std::floor(c * inv))));
          };
          uint64_t key = cell(p->x) * 0x9E3779B97F4A7C15ull ^
                         cell(p->y) * 0xC2B2AE3D27D4EB4Full ^
                         cell(p->z) * 0x165667B19E3779F9ull;
          ++cells[key];
          ++ss.rows;
        }
        if (ss.rows > 0) {
          double sq = 0.0;
          for (const auto& [key, count] : cells) {
            sq += static_cast<double>(count) * static_cast<double>(count);
          }
          ss.avg_cell_cooccupants =
              std::max(0.0, sq / static_cast<double>(ss.rows) - 1.0);
          Vec3 e = ss.bbox.Extent();
          float max_extent = std::max({e.x, e.y, e.z});
          int degenerate = 0;
          for (float axis : {e.x, e.y, e.z}) {
            if (axis < 1e-3f * std::max(1.0f, max_extent)) ++degenerate;
          }
          ss.dims = degenerate >= 1 ? 2 : 3;
        }
        ts.spatial.emplace(field.name(), std::move(ss));
      }
    }
    tables_.emplace(info.id(), std::move(ts));
  });
  ++epoch_;
}

bool WorldStats::Drifted(const World& world, double threshold) const {
  bool drifted = false;
  size_t seen = 0;
  world.ForEachStore([&](const TypeInfo& info, const ComponentStore& store) {
    ++seen;
    auto it = tables_.find(info.id());
    if (it == tables_.end()) {
      if (store.Size() > 0) drifted = true;  // table appeared with rows
      return;
    }
    double analyzed = static_cast<double>(it->second.rows);
    double cur = static_cast<double>(store.Size());
    if (std::abs(cur - analyzed) > threshold * std::max(1.0, analyzed)) {
      drifted = true;
    }
  });
  // Never analyzed at all but the world has tables.
  if (epoch_ == 0 && seen > 0) drifted = true;
  return drifted;
}

bool WorldStats::MaybeRefresh(const World& world, double threshold) {
  if (!Drifted(world, threshold)) return false;
  Analyze(world);
  return true;
}

const TableStats* WorldStats::Table(uint32_t type_id) const {
  auto it = tables_.find(type_id);
  return it == tables_.end() ? nullptr : &it->second;
}

const FieldStats* WorldStats::Field(uint32_t type_id,
                                    const std::string& field) const {
  const TableStats* t = Table(type_id);
  if (t == nullptr) return nullptr;
  auto it = t->fields.find(field);
  return it == t->fields.end() ? nullptr : &it->second;
}

const SpatialFieldStats* WorldStats::Spatial(uint32_t type_id,
                                             const std::string& field) const {
  const TableStats* t = Table(type_id);
  if (t == nullptr) return nullptr;
  auto it = t->spatial.find(field);
  return it == t->spatial.end() ? nullptr : &it->second;
}

double WorldStats::EstimateRows(uint32_t type_id) const {
  const TableStats* t = Table(type_id);
  return t == nullptr ? 0.0 : static_cast<double>(t->rows);
}

double WorldStats::EstimateLiveRows(uint32_t type_id) const {
  const TableStats* t = Table(type_id);
  return t == nullptr ? 0.0 : static_cast<double>(t->live_rows);
}

std::string WorldStats::ToString() const {
  const TypeRegistry& reg = TypeRegistry::Global();
  std::string out =
      "stats epoch " + std::to_string(epoch_) + ":\n";
  for (const auto& [id, ts] : tables_) {
    const TypeInfo* info = reg.Find(id);
    out += "  " + (info ? info->name() : std::to_string(id)) + ": " +
           std::to_string(ts.rows) + " rows";
    for (const auto& [name, fs] : ts.fields) {
      out += ", " + name + "=[" + std::to_string(fs.min) + "," +
             std::to_string(fs.max) + "]";
    }
    for (const auto& [name, ss] : ts.spatial) {
      out += ", " + name + ": ~" +
             std::to_string(ss.EstimateNeighbors(ss.ref_radius)) +
             " neighbors@r=" + std::to_string(ss.ref_radius);
    }
    out += "\n";
  }
  return out;
}

}  // namespace gamedb::planner
