#pragma once

/// \file planner.h
/// The cost-based query planner: the missing database layer between
/// gamedb's declarative queries (core/query.h DynamicQuery, the GSL query
/// builtins) and its physical operators (table scans, sorted field indexes,
/// spatial indexes, the three pair-join algorithms). The paper's framing is
/// that a designer's Ω(n²) "every object interacts with every object" loop
/// is just a bad plan; this module is the component that picks a good one —
/// the "declarative processing" step of the Sowell et al. follow-up.
///
/// Data flow: stats (stats.h) → cost model (CostConstants, plan.h) → plan
/// (QueryPlan) → execution (this file). Plans are cached by predicate shape
/// + stats epoch, so per-tick replanning costs a hash lookup until stats
/// drift past the refresh threshold.
///
/// Correctness contract: with the planner attached and enabled
/// (PlannerPolicy::kOn), every DynamicQuery produces bit-identical results
/// — same entities, same order — as the built-in path (kOff). Planned
/// access paths that enumerate in index order buffer their matches and
/// re-sort them into the canonical driver's dense order before emitting.

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "planner/field_index.h"
#include "planner/plan.h"
#include "planner/stats.h"
#include "telemetry/sink.h"

namespace gamedb::spatial {
class KdBspTree;
}  // namespace gamedb::spatial

namespace gamedb::planner {

/// Configuration for a QueryPlanner.
struct PlannerOptions {
  PlannerPolicy policy = PlannerPolicy::kOn;
  /// Relative row-count drift that triggers a stats refresh (and therefore
  /// invalidates every cached plan) at the next quiescent point.
  double drift_threshold = 0.25;
  StatsOptions stats;
  CostConstants costs;
  /// Optional telemetry hook: plan-cache hit/miss and stats-refresh
  /// counters fold into the registry, Analyze records a span. Non-owning;
  /// must outlive the planner.
  telemetry::TelemetrySink telemetry{};
};

/// Per-operator runtime totals EXPLAIN ANALYZE accumulates for one plan
/// shape (one plan-cache entry) while SetCollectRuntime(true) is active.
/// Vector entries are indexed like the query's predicates() /
/// radius_predicates(); totals sum over `executions` runs.
struct PlanRuntimeStats {
  uint64_t executions = 0;
  uint64_t driver_rows = 0;      ///< rows the access path enumerated
  uint64_t probe_survivors = 0;  ///< rows past alive + membership probes
  uint64_t output_rows = 0;      ///< rows emitted
  uint64_t exec_ns = 0;          ///< wall clock across executions
  std::vector<uint64_t> predicate_in;   ///< rows reaching each predicate
  std::vector<uint64_t> predicate_out;  ///< rows surviving each predicate
  std::vector<uint64_t> radius_in;
  std::vector<uint64_t> radius_out;
  /// EXPLAIN text (QueryPlan::ToString) rendered once when the shape first
  /// executed, so the hottest plans stay explainable after the driving
  /// queries are gone (the flight-recorder bundle needs exactly this).
  std::string plan_text;
};

/// Cost-based planner + executor for one World. Attach to queries with
/// DynamicQuery::SetPlanner, or to a ScriptHost via
/// ScriptHostOptions::planner (every query builtin then plans through it).
///
/// Thread safety: Execute/ExplainQuery are safe to call concurrently (the
/// scripted parallel query phase does); Analyze/MaybeRefreshStats/
/// OnQuiescent mutate statistics and must run from sequential code — the
/// ScriptHost calls OnQuiescent before fanning out, which is the intended
/// pattern.
class QueryPlanner final : public QueryPlanHook {
 public:
  explicit QueryPlanner(World* world, PlannerOptions options = {});
  ~QueryPlanner() override;

  /// Full statistics rebuild (bumps the stats epoch; invalidates cached
  /// plans).
  void Analyze();

  /// Re-analyzes when table sizes drifted past the threshold. Returns
  /// whether a refresh happened.
  bool MaybeRefreshStats();

  const WorldStats& stats() const { return stats_; }
  World* world() const { return world_; }

  PlannerPolicy policy() const { return options_.policy; }
  void set_policy(PlannerPolicy p) { options_.policy = p; }

  // --- QueryPlanHook ------------------------------------------------------

  bool PlanningEnabled() const override {
    return options_.policy == PlannerPolicy::kOn;
  }
  Status Execute(const DynamicQuery& q,
                 const std::function<void(EntityId)>& fn) override;
  Result<std::string> ExplainQuery(const DynamicQuery& q) override;

  // --- EXPLAIN ANALYZE ----------------------------------------------------

  /// Toggles per-operator runtime collection in Execute. Off (the default)
  /// costs one relaxed atomic load per Execute; on, each Execute counts
  /// rows in/out of every operator and merges them into the per-shape
  /// runtime table (one short exclusive lock per query). Thread-safe.
  void SetCollectRuntime(bool on) {
    collect_runtime_.store(on, std::memory_order_relaxed);
  }
  bool collect_runtime() const {
    return collect_runtime_.load(std::memory_order_relaxed);
  }

  /// Copies the accumulated runtime totals for `q`'s plan shape. False when
  /// the shape never executed under SetCollectRuntime(true).
  bool GetRuntimeStats(const DynamicQuery& q, PlanRuntimeStats* out) const;

  /// EXPLAIN ANALYZE: the cost-based EXPLAIN (QueryPlan::ToString) followed
  /// by an "analyze:" block showing estimated-vs-actual rows for every
  /// operator — driver, membership probes, each field/radius predicate,
  /// output — averaged over the shape's recorded executions. Renders a
  /// "no runtime samples" note when nothing was collected yet.
  Result<std::string> ExplainAnalyzeQuery(const DynamicQuery& q);

  /// The `n` plan shapes with the largest accumulated wall clock under
  /// SetCollectRuntime(true), hottest first, each rendered as its EXPLAIN
  /// text plus an analyze summary (executions, avg latency, avg rows per
  /// operator stage). Empty until runtime collection has run. Thread-safe.
  std::vector<std::string> HottestPlans(size_t n) const;
  /// Sequential-point hook: refreshes stats if drifted (the ScriptHost
  /// calls this before each parallel query phase).
  void OnQuiescent() override { MaybeRefreshStats(); }

  /// View<Ts...> driver choice from live-row statistics. Cost of driving
  /// from table D: every raw row pays the scan visit (rows of dead
  /// entities are skipped by a cheap alive check but still walked), and
  /// only live rows pay the (n-1) membership probes of the other tables —
  /// so a raw-smallest table dominated by dead rows loses to a slightly
  /// larger fully-live one. Earliest index wins ties (the built-in
  /// heuristic's tie-break). Thread-safe against concurrent reads.
  size_t ChooseViewDriver(const uint32_t* type_ids,
                          size_t n) const override;

  // --- Plan surface (benchmarks, tests) -----------------------------------

  /// Builds a fresh plan for `q` from current stats, bypassing the cache.
  QueryPlan BuildPlan(const DynamicQuery& q) const;

  /// Executes `q` under an explicit plan (the e13 "force each fixed plan"
  /// harness). Falls back to a full scan when the plan does not fit the
  /// query's shape. Emits in canonical order regardless of plan.
  Status ExecuteWithPlan(const DynamicQuery& q, const QueryPlan& plan,
                         const std::function<void(EntityId)>& fn);

  /// Chooses among the three pair-join algorithms for `n` points with
  /// `est_neighbors` expected matches per point within the join radius.
  PairJoinPlan PlanPairJoin(size_t n, float radius, double est_neighbors,
                            int dims = 3) const;

  /// Same, reading density from the stats of a Vec3 field (e.g. Position
  /// "value") and scaling it to `n` points. Falls back to a uniform guess
  /// when the field was never analyzed.
  PairJoinPlan PlanPairJoinFor(std::string_view component,
                               std::string_view field, size_t n,
                               float radius) const;

  // --- Diagnostics --------------------------------------------------------

  uint64_t plan_cache_hits() const { return cache_hits_.load(); }
  uint64_t plan_cache_misses() const { return cache_misses_.load(); }
  size_t plan_cache_size() const;
  uint64_t field_index_builds() const { return field_indexes_.builds(); }
  uint64_t spatial_index_builds() const;
  uint64_t stats_refreshes() const { return stats_refreshes_; }

 private:
  struct SpatialIndexCache;

  /// Plan-cache size bound: value-parameterized query shapes (a varying
  /// rhs is part of the shape hash) would otherwise grow the cache without
  /// limit on long-running shards.
  static constexpr size_t kMaxCachedPlans = 1024;

  /// Cached plan lookup keyed by predicate shape + stats epoch.
  QueryPlan GetOrBuildPlan(const DynamicQuery& q);
  /// Hash of the query's shape: required set, field predicates (including
  /// rhs values), radius predicates (radius but NOT center, so per-entity
  /// proximity probes share one plan).
  static uint64_t ShapeHash(const DynamicQuery& q);
  /// True when `plan`'s operator indexes fit `q` (cache-collision guard).
  static bool PlanFits(const DynamicQuery& q, const QueryPlan& plan);

  /// ExecuteWithPlan with optional per-operator row counting (`rc` may be
  /// nullptr; when set its vectors must be sized to the query's predicate
  /// counts).
  Status ExecuteWithPlanCounted(const DynamicQuery& q, const QueryPlan& plan,
                                const std::function<void(EntityId)>& fn,
                                PlanRuntimeStats* rc);
  /// Folds one execution's counts into the per-shape runtime table,
  /// rendering `plan`'s EXPLAIN text into the entry on first merge.
  void MergeRuntime(uint64_t shape, const PlanRuntimeStats& rc,
                    const DynamicQuery& q, const QueryPlan& plan);

  Status ExecuteFullScan(const DynamicQuery& q, const QueryPlan& plan,
                         const std::function<void(EntityId)>& fn,
                         PlanRuntimeStats* rc);
  Status ExecuteFieldIndex(const DynamicQuery& q, const QueryPlan& plan,
                           const std::function<void(EntityId)>& fn,
                           PlanRuntimeStats* rc);
  Status ExecuteSpatialIndex(const DynamicQuery& q, const QueryPlan& plan,
                             const std::function<void(EntityId)>& fn,
                             PlanRuntimeStats* rc);

  World* world_;
  PlannerOptions options_;
  WorldStats stats_;
  FieldIndexCache field_indexes_;
  std::unique_ptr<SpatialIndexCache> spatial_indexes_;

  mutable std::shared_mutex plan_mu_;
  std::unordered_map<uint64_t, QueryPlan> plan_cache_;
  /// Per-shape EXPLAIN ANALYZE totals, guarded by plan_mu_ like the plan
  /// cache (and bounded the same way).
  std::unordered_map<uint64_t, PlanRuntimeStats> runtime_stats_;
  std::atomic<bool> collect_runtime_{false};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  uint64_t stats_refreshes_ = 0;
  /// Cached registry instruments (nullptr without a metrics sink).
  telemetry::Counter* m_cache_hits_ = nullptr;
  telemetry::Counter* m_cache_misses_ = nullptr;
  telemetry::Counter* m_stats_refreshes_ = nullptr;
};

}  // namespace gamedb::planner
