#include "planner/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <mutex>

#include "common/macros.h"
#include "common/percentile.h"
#include "spatial/kdbsp_tree.h"

namespace gamedb::planner {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Default selectivity guesses when no field statistics exist (string
/// fields, never-analyzed tables).
double DefaultSelectivity(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return 0.1;
    case CmpOp::kNe:
      return 0.9;
    default:
      return 1.0 / 3.0;
  }
}

/// Exactly the per-predicate check DynamicQuery::Matches performs.
bool EvalPredicate(const World& world, const DynamicQuery::Predicate& p,
                   EntityId e) {
  const ComponentStore* store = world.StoreByIdIfExists(p.type_id);
  const void* comp = store->Find(e);
  return CompareFieldValues(p.field->Get(comp), p.op, p.rhs);
}

/// Exactly the per-radius-predicate check DynamicQuery::Matches performs.
bool EvalRadius(const World& world, const DynamicQuery::RadiusPredicate& rp,
                EntityId e) {
  const ComponentStore* store = world.StoreByIdIfExists(rp.type_id);
  const void* comp = store->Find(e);
  FieldValue v = rp.field->Get(comp);
  const Vec3* pos = std::get_if<Vec3>(&v);
  if (pos == nullptr) return false;
  return pos->DistanceSquaredTo(rp.center) <= rp.radius * rp.radius;
}

bool NumericRhs(const DynamicQuery::Predicate& p, double* out) {
  return FieldValueAsNumber(p.rhs, out) && !std::isnan(*out);
}

bool FieldIsNumeric(const FieldInfo* f) {
  switch (f->type()) {
    case FieldType::kVec3:
    case FieldType::kString:
    case FieldType::kEntity:
      return false;
    default:
      return true;
  }
}

void MixHash(uint64_t* h, uint64_t v) {
  *h ^= v + 0x9E3779B97F4A7C15ull + (*h << 6) + (*h >> 2);
}

uint64_t HashFieldValue(const FieldValue& v) {
  struct Visitor {
    uint64_t operator()(double d) const {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return bits ^ 0x1;
    }
    uint64_t operator()(int64_t i) const {
      return static_cast<uint64_t>(i) ^ 0x2;
    }
    uint64_t operator()(bool b) const { return (b ? 1u : 0u) ^ 0x30; }
    uint64_t operator()(const Vec3& v3) const {
      uint64_t h = 0x4;
      uint32_t bits;
      for (float f : {v3.x, v3.y, v3.z}) {
        std::memcpy(&bits, &f, sizeof(bits));
        MixHash(&h, bits);
      }
      return h;
    }
    uint64_t operator()(const std::string& s) const {
      return std::hash<std::string>()(s) ^ 0x5;
    }
    uint64_t operator()(EntityId e) const { return e.Raw() ^ 0x6; }
  };
  return std::visit(Visitor{}, v);
}

}  // namespace

/// Cache of warmed KD-BSP trees over Vec3 fields, keyed by (table, field)
/// and valid for one table version — the planner's shared spatial access
/// path. Reads after the build are pure (the warm-up query inside the
/// build lock forces the lazy rebuild), so concurrent probes from
/// query-phase shards are safe.
struct QueryPlanner::SpatialIndexCache {
  struct Entry {
    uint64_t built_version = 0;
    spatial::KdBspTree tree;
  };

  const spatial::KdBspTree* Get(uint32_t type_id, const FieldInfo* field,
                                const ComponentStore* store) {
    const uint64_t version = store->last_version();
    const IndexCacheKey key{type_id, field};
    {
      std::shared_lock<std::shared_mutex> lock(mu);
      auto it = cache.find(key);
      if (it != cache.end() && it->second->built_version == version) {
        return &it->second->tree;
      }
    }
    std::unique_lock<std::shared_mutex> lock(mu);
    auto& slot = cache[key];
    if (slot != nullptr && slot->built_version == version) {
      return &slot->tree;
    }
    auto entry = std::make_unique<Entry>();
    entry->built_version = version;
    for (size_t i = 0; i < store->Size(); ++i) {
      FieldValue v = field->Get(store->ValueAt(i));
      const Vec3* p = std::get_if<Vec3>(&v);
      if (p == nullptr) continue;
      entry->tree.Insert(store->EntityAt(i), Aabb::FromPoint(*p));
    }
    // Warm-up: force the lazy rebuild now, inside the build lock, so
    // concurrent probes after publication are pure reads.
    entry->tree.QueryRange(Aabb{}, [](EntityId, const Aabb&) {});
    ++builds;
    slot = std::move(entry);
    return &slot->tree;
  }

  mutable std::shared_mutex mu;
  std::unordered_map<IndexCacheKey, std::unique_ptr<Entry>,
                     IndexCacheKeyHash>
      cache;
  uint64_t builds = 0;
};

QueryPlanner::QueryPlanner(World* world, PlannerOptions options)
    : world_(world),
      options_(options),
      stats_(options.stats),
      spatial_indexes_(std::make_unique<SpatialIndexCache>()) {
  if (options_.telemetry.metrics != nullptr) {
    telemetry::MetricsRegistry* reg = options_.telemetry.metrics;
    m_cache_hits_ = reg->GetCounter("planner.cache_hits");
    m_cache_misses_ = reg->GetCounter("planner.cache_misses");
    m_stats_refreshes_ = reg->GetCounter("planner.stats_refreshes");
  }
}

QueryPlanner::~QueryPlanner() = default;

void QueryPlanner::Analyze() {
  telemetry::TraceSpan span(options_.telemetry.tracer, "planner.analyze");
  stats_.Analyze(*world_);
  ++stats_refreshes_;
  if (m_stats_refreshes_ != nullptr) m_stats_refreshes_->Increment();
}

bool QueryPlanner::MaybeRefreshStats() {
  if (!stats_.Drifted(*world_, options_.drift_threshold)) return false;
  Analyze();
  return true;
}

size_t QueryPlanner::plan_cache_size() const {
  std::shared_lock<std::shared_mutex> lock(plan_mu_);
  return plan_cache_.size();
}

uint64_t QueryPlanner::spatial_index_builds() const {
  std::shared_lock<std::shared_mutex> lock(spatial_indexes_->mu);
  return spatial_indexes_->builds;
}

uint64_t QueryPlanner::ShapeHash(const DynamicQuery& q) {
  uint64_t h = 0xC0FFEE;
  for (uint32_t id : q.required()) MixHash(&h, id);
  MixHash(&h, 0xAAAA);
  for (const auto& p : q.predicates()) {
    MixHash(&h, p.type_id);
    MixHash(&h, std::hash<std::string>()(p.field->name()));
    MixHash(&h, static_cast<uint64_t>(p.op));
    MixHash(&h, HashFieldValue(p.rhs));
  }
  MixHash(&h, 0xBBBB);
  for (const auto& rp : q.radius_predicates()) {
    MixHash(&h, rp.type_id);
    MixHash(&h, std::hash<std::string>()(rp.field->name()));
    uint32_t bits;
    std::memcpy(&bits, &rp.radius, sizeof(bits));
    MixHash(&h, bits);
    // The center is deliberately excluded: per-entity proximity probes
    // (every entity asking "who is near me?") share one plan.
  }
  return h;
}

bool QueryPlanner::PlanFits(const DynamicQuery& q, const QueryPlan& plan) {
  const int npred = static_cast<int>(q.predicates().size());
  const int nrad = static_cast<int>(q.radius_predicates().size());
  if (plan.index_predicate >= npred || plan.radius_predicate >= nrad) {
    return false;
  }
  // Index access paths must name the predicate they serve.
  if (plan.access == AccessPath::kFieldIndex && plan.index_predicate < 0) {
    return false;
  }
  if (plan.access == AccessPath::kSpatialIndex &&
      plan.radius_predicate < 0) {
    return false;
  }
  for (int pi : plan.predicate_order) {
    if (pi < 0 || pi >= npred) return false;
  }
  // A probe of a table the query does not require would wrongly reject
  // rows; such a plan belongs to some other shape.
  for (uint32_t id : plan.probe_order) {
    if (std::find(q.required().begin(), q.required().end(), id) ==
        q.required().end()) {
      return false;
    }
  }
  return true;
}

QueryPlan QueryPlanner::BuildPlan(const DynamicQuery& q) const {
  const CostConstants& c = options_.costs;
  QueryPlan plan;
  plan.stats_epoch = stats_.epoch();

  // Estimated (stats) and actual-fallback row counts per required table.
  auto est_rows = [&](uint32_t id) -> double {
    const TableStats* t = stats_.Table(id);
    if (t != nullptr) return static_cast<double>(t->rows);
    const ComponentStore* store = world_->StoreByIdIfExists(id);
    return store != nullptr ? static_cast<double>(store->Size()) : 0.0;
  };

  // Driver: smallest estimated table, earliest on ties (mirrors the
  // built-in path's choice so full-scan plans describe what executes).
  std::vector<uint32_t> distinct;
  for (uint32_t id : q.required()) {
    if (std::find(distinct.begin(), distinct.end(), id) == distinct.end()) {
      distinct.push_back(id);
    }
  }
  double driver_rows = kInf;
  for (uint32_t id : distinct) {
    double rows = est_rows(id);
    if (rows < driver_rows) {
      driver_rows = rows;
      plan.driver_type = id;
    }
  }
  if (!std::isfinite(driver_rows)) driver_rows = 0.0;

  // Probe order: remaining required tables ascending by estimated rows
  // (cheapest rejection first — membership in a small table is unlikely).
  for (uint32_t id : distinct) {
    if (id != plan.driver_type) plan.probe_order.push_back(id);
  }
  std::sort(plan.probe_order.begin(), plan.probe_order.end(),
            [&](uint32_t a, uint32_t b) { return est_rows(a) < est_rows(b); });

  // Join selectivity: fraction of driver rows present in each probed table
  // under the |A∩B| ≈ |A|·|B|/N independence assumption.
  const double universe =
      std::max(1.0, static_cast<double>(world_->AliveCount()));
  double join_sel = 1.0;
  for (uint32_t id : plan.probe_order) {
    join_sel *= std::clamp(est_rows(id) / universe, 0.0, 1.0);
  }

  // Per-predicate selectivities.
  std::vector<double> sel(q.predicates().size(), 1.0);
  for (size_t i = 0; i < q.predicates().size(); ++i) {
    const auto& p = q.predicates()[i];
    double rhs = 0.0;
    const FieldStats* fs = stats_.Field(p.type_id, p.field->name());
    if (fs != nullptr && NumericRhs(p, &rhs)) {
      sel[i] = fs->EstimateSelectivity(p.op, rhs);
    } else {
      sel[i] = DefaultSelectivity(p.op);
    }
  }
  std::vector<double> radius_sel(q.radius_predicates().size(), 1.0);
  std::vector<double> radius_neighbors(q.radius_predicates().size(), 0.0);
  for (size_t i = 0; i < q.radius_predicates().size(); ++i) {
    const auto& rp = q.radius_predicates()[i];
    const SpatialFieldStats* ss =
        stats_.Spatial(rp.type_id, rp.field->name());
    if (ss != nullptr && ss->rows > 0) {
      radius_neighbors[i] = ss->EstimateNeighbors(rp.radius);
      radius_sel[i] = std::clamp(
          radius_neighbors[i] / static_cast<double>(ss->rows), 0.0, 1.0);
    } else {
      radius_sel[i] = 0.25;
      radius_neighbors[i] = est_rows(rp.type_id) * 0.25;
    }
  }

  // Predicate evaluation order: most selective first.
  std::vector<int> order(q.predicates().size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return sel[a] < sel[b]; });

  double filter_sel = 1.0;
  for (double s : sel) filter_sel *= s;
  for (double s : radius_sel) filter_sel *= s;
  plan.est_output_rows = driver_rows * join_sel * filter_sel;

  // Cost of filtering one enumerated row: membership probes, then field
  // predicates in chosen order (short-circuit modeled), then linear radius
  // filters. `skip` marks a predicate already served by the access path.
  auto downstream_cost = [&](int skip_pred, int skip_radius) {
    double cost = static_cast<double>(plan.probe_order.size()) *
                  c.probe_table;
    double running = join_sel;
    for (int pi : order) {
      if (pi == skip_pred) continue;
      cost += running * c.predicate;
      running *= sel[static_cast<size_t>(pi)];
    }
    for (size_t i = 0; i < radius_sel.size(); ++i) {
      if (static_cast<int>(i) == skip_radius) continue;
      cost += running * c.radius_filter;
      running *= radius_sel[i];
    }
    return cost;
  };

  // Candidate 1: full scan of the driver.
  double best_cost =
      driver_rows * (c.scan_row + downstream_cost(-1, -1));
  plan.access = AccessPath::kFullScan;
  plan.est_driver_rows = driver_rows;
  plan.est_cost = best_cost;

  // Candidate 2: field-index range scan serving one predicate.
  for (size_t i = 0; i < q.predicates().size(); ++i) {
    const auto& p = q.predicates()[i];
    double rhs = 0.0;
    if (p.op == CmpOp::kNe) continue;  // a != range scan is the whole table
    if (!FieldIsNumeric(p.field) || !NumericRhs(p, &rhs)) continue;
    const FieldStats* fs = stats_.Field(p.type_id, p.field->name());
    if (fs == nullptr || fs->has_nan) continue;
    double table_rows = est_rows(p.type_id);
    double matches = table_rows * sel[i];
    double cost =
        table_rows * c.index_build_row / c.assumed_index_reuse +
        c.index_seek +
        matches * (c.index_candidate + downstream_cost(static_cast<int>(i),
                                                       -1) +
                   c.predicate) +  // served predicate is still re-checked
        matches * std::log2(2.0 + matches) * c.index_sort;
    if (cost < best_cost) {
      best_cost = cost;
      plan.access = AccessPath::kFieldIndex;
      plan.index_predicate = static_cast<int>(i);
      plan.radius_predicate = -1;
      plan.est_driver_rows = matches;
      plan.est_cost = cost;
    }
  }

  // Candidate 3: spatial-index probe serving one radius predicate.
  for (size_t i = 0; i < q.radius_predicates().size(); ++i) {
    const auto& rp = q.radius_predicates()[i];
    if (rp.field->type() != FieldType::kVec3) continue;
    const SpatialFieldStats* ss =
        stats_.Spatial(rp.type_id, rp.field->name());
    if (ss == nullptr || ss->rows == 0) continue;
    double table_rows = est_rows(rp.type_id);
    // Probe candidates: neighbors within the radius (the tree's box test
    // overshoots a little; spatial_candidate absorbs that).
    double candidates = std::min(table_rows, radius_neighbors[i] + 1.0);
    double cost =
        table_rows * c.spatial_build_row / c.assumed_index_reuse +
        c.spatial_probe +
        candidates * (c.spatial_candidate +
                      downstream_cost(-1, static_cast<int>(i)) +
                      c.radius_filter) +  // served filter is re-checked
        candidates * std::log2(2.0 + candidates) * c.index_sort;
    if (cost < best_cost) {
      best_cost = cost;
      plan.access = AccessPath::kSpatialIndex;
      plan.index_predicate = -1;
      plan.radius_predicate = static_cast<int>(i);
      plan.est_driver_rows = candidates;
      plan.est_cost = cost;
    }
  }

  // The served predicate is excluded from the filter list in EXPLAIN (it
  // is re-checked during execution, but it is the access path's job).
  for (int pi : order) {
    if (plan.access == AccessPath::kFieldIndex &&
        pi == plan.index_predicate) {
      continue;
    }
    plan.predicate_order.push_back(pi);
  }
  // EXPLAIN ANALYZE estimate breakdown (never read during execution).
  plan.predicate_sel = sel;
  plan.radius_sel = radius_sel;
  plan.est_probe_rows = plan.est_driver_rows * join_sel;
  return plan;
}

QueryPlan QueryPlanner::GetOrBuildPlan(const DynamicQuery& q) {
  const uint64_t key = ShapeHash(q);
  {
    std::shared_lock<std::shared_mutex> lock(plan_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end() &&
        it->second.stats_epoch == stats_.epoch()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      if (m_cache_hits_ != nullptr) m_cache_hits_->Increment();
      return it->second;
    }
  }
  QueryPlan plan = BuildPlan(q);
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  if (m_cache_misses_ != nullptr) m_cache_misses_->Increment();
  std::unique_lock<std::shared_mutex> lock(plan_mu_);
  if (plan_cache_.size() >= kMaxCachedPlans) {
    // Value-parameterized shapes (a per-entity rhs in the hash) can mint
    // unbounded keys; drop stale-epoch entries first, and if the cache is
    // all current, reset it — plans are cheap to rebuild.
    for (auto it = plan_cache_.begin(); it != plan_cache_.end();) {
      it = it->second.stats_epoch != stats_.epoch() ? plan_cache_.erase(it)
                                                    : ++it;
    }
    if (plan_cache_.size() >= kMaxCachedPlans) plan_cache_.clear();
  }
  plan_cache_[key] = plan;
  return plan;
}

Status QueryPlanner::Execute(const DynamicQuery& q,
                             const std::function<void(EntityId)>& fn) {
  GAMEDB_DCHECK(q.world() == world_);
  QueryPlan plan = GetOrBuildPlan(q);
  if (!collect_runtime_.load(std::memory_order_relaxed)) {
    return ExecuteWithPlanCounted(q, plan, fn, nullptr);
  }
  PlanRuntimeStats rc;
  rc.predicate_in.assign(q.predicates().size(), 0);
  rc.predicate_out.assign(q.predicates().size(), 0);
  rc.radius_in.assign(q.radius_predicates().size(), 0);
  rc.radius_out.assign(q.radius_predicates().size(), 0);
  const uint64_t t0 = MonotonicNanos();
  Status st = ExecuteWithPlanCounted(q, plan, fn, &rc);
  rc.exec_ns = MonotonicNanos() - t0;
  rc.executions = 1;
  MergeRuntime(ShapeHash(q), rc, q, plan);
  return st;
}

void QueryPlanner::MergeRuntime(uint64_t shape, const PlanRuntimeStats& rc,
                                const DynamicQuery& q, const QueryPlan& plan) {
  std::unique_lock<std::shared_mutex> lock(plan_mu_);
  // Same unbounded-shape concern as the plan cache; apply the same bound.
  if (runtime_stats_.size() >= kMaxCachedPlans &&
      runtime_stats_.find(shape) == runtime_stats_.end()) {
    runtime_stats_.clear();
  }
  PlanRuntimeStats& agg = runtime_stats_[shape];
  if (agg.executions == 0 && agg.plan_text.empty()) {
    // One render per shape; ToString indexes q's predicates through the
    // plan's operator indexes, so it needs the same fit guard as execution.
    agg.plan_text = PlanFits(q, plan)
                        ? plan.ToString(q)
                        : "full scan (shape-collision fallback)\n";
  }
  agg.executions += rc.executions;
  agg.driver_rows += rc.driver_rows;
  agg.probe_survivors += rc.probe_survivors;
  agg.output_rows += rc.output_rows;
  agg.exec_ns += rc.exec_ns;
  auto add_vec = [](std::vector<uint64_t>* a,
                    const std::vector<uint64_t>& b) {
    if (a->size() < b.size()) a->resize(b.size(), 0);
    for (size_t i = 0; i < b.size(); ++i) (*a)[i] += b[i];
  };
  add_vec(&agg.predicate_in, rc.predicate_in);
  add_vec(&agg.predicate_out, rc.predicate_out);
  add_vec(&agg.radius_in, rc.radius_in);
  add_vec(&agg.radius_out, rc.radius_out);
}

bool QueryPlanner::GetRuntimeStats(const DynamicQuery& q,
                                   PlanRuntimeStats* out) const {
  const uint64_t shape = ShapeHash(q);
  std::shared_lock<std::shared_mutex> lock(plan_mu_);
  auto it = runtime_stats_.find(shape);
  if (it == runtime_stats_.end()) return false;
  *out = it->second;
  return true;
}

std::vector<std::string> QueryPlanner::HottestPlans(size_t n) const {
  std::vector<std::pair<uint64_t, const PlanRuntimeStats*>> hot;
  std::shared_lock<std::shared_mutex> lock(plan_mu_);
  hot.reserve(runtime_stats_.size());
  for (const auto& [shape, rt] : runtime_stats_) {
    if (rt.executions > 0) hot.emplace_back(rt.exec_ns, &rt);
  }
  std::sort(hot.begin(), hot.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (hot.size() > n) hot.resize(n);
  std::vector<std::string> out;
  out.reserve(hot.size());
  for (const auto& [exec_ns, rt] : hot) {
    const double execs = static_cast<double>(rt->executions);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "analyze (%llu executions, total %.3f ms, avg %.3f ms): "
                  "driver %.1f -> survivors %.1f -> output %.1f rows/exec\n",
                  static_cast<unsigned long long>(rt->executions),
                  static_cast<double>(exec_ns) / 1e6,
                  static_cast<double>(exec_ns) / execs / 1e6,
                  static_cast<double>(rt->driver_rows) / execs,
                  static_cast<double>(rt->probe_survivors) / execs,
                  static_cast<double>(rt->output_rows) / execs);
    out.push_back(rt->plan_text + buf);
  }
  return out;
}

Result<std::string> QueryPlanner::ExplainQuery(const DynamicQuery& q) {
  QueryPlan plan = GetOrBuildPlan(q);
  // Same shape-hash-collision guard Execute applies: ToString indexes the
  // query's predicate lists through the plan's operator indexes.
  if (!PlanFits(q, plan)) plan = BuildPlan(q);
  std::string out = plan.ToString(q);
  if (!PlanningEnabled()) {
    out += "  note: policy is kOff — the built-in path executes instead\n";
  }
  return out;
}

Result<std::string> QueryPlanner::ExplainAnalyzeQuery(const DynamicQuery& q) {
  QueryPlan plan = GetOrBuildPlan(q);
  if (!PlanFits(q, plan)) plan = BuildPlan(q);
  std::string out = plan.ToString(q);
  if (!PlanningEnabled()) {
    out += "  note: policy is kOff — the built-in path executes instead\n";
  }
  PlanRuntimeStats rt;
  if (!GetRuntimeStats(q, &rt) || rt.executions == 0) {
    out += "analyze: no runtime samples (SetCollectRuntime(true), then "
           "Execute the query)\n";
    return out;
  }
  const double n = static_cast<double>(rt.executions);
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return std::string(buf);
  };
  auto avg = [&](uint64_t total) {
    return fmt(static_cast<double>(total) / n);
  };
  // Shape-hash collisions can pair these totals with a query of different
  // predicate counts; index defensively.
  auto vat = [](const std::vector<uint64_t>& v, size_t i) -> uint64_t {
    return i < v.size() ? v[i] : 0;
  };
  char ms[32];
  std::snprintf(ms, sizeof(ms), "%.3f",
                static_cast<double>(rt.exec_ns) / n / 1e6);
  out += "analyze (" + std::to_string(rt.executions) + " execution" +
         (rt.executions == 1 ? "" : "s") + ", avg " + ms + " ms):\n";
  out += "  driver rows: est " + fmt(plan.est_driver_rows) + ", actual " +
         avg(rt.driver_rows) + "\n";
  out += "  probe survivors: est " + fmt(plan.est_probe_rows) +
         ", actual " + avg(rt.probe_survivors) + "\n";
  // Per-operator estimate chain in execution order, so each line reads
  // "rows in -> rows out" for both the model and reality.
  double est_in = plan.est_probe_rows;
  for (int pi : plan.predicate_order) {
    const auto idx = static_cast<size_t>(pi);
    const double sel =
        idx < plan.predicate_sel.size() ? plan.predicate_sel[idx] : 1.0;
    const double est_out = est_in * sel;
    out += "  filter " + PredicateText(q.predicates()[idx]) + ": est " +
           fmt(est_in) + " -> " + fmt(est_out) + ", actual " +
           avg(vat(rt.predicate_in, idx)) + " -> " +
           avg(vat(rt.predicate_out, idx)) + "\n";
    est_in = est_out;
  }
  if (plan.access == AccessPath::kFieldIndex && plan.index_predicate >= 0) {
    const auto idx = static_cast<size_t>(plan.index_predicate);
    out += "  recheck " + PredicateText(q.predicates()[idx]) +
           " (served by access path): actual " +
           avg(vat(rt.predicate_in, idx)) + " -> " +
           avg(vat(rt.predicate_out, idx)) + "\n";
  }
  for (size_t i = 0; i < q.radius_predicates().size(); ++i) {
    const double sel =
        i < plan.radius_sel.size() ? plan.radius_sel[i] : 1.0;
    const double est_out = est_in * sel;
    const bool served = plan.access == AccessPath::kSpatialIndex &&
                        static_cast<int>(i) == plan.radius_predicate;
    out += "  filter " + RadiusText(q.radius_predicates()[i]) +
           (served ? " (served by access path)" : "") + ": est " +
           fmt(est_in) + " -> " + fmt(est_out) + ", actual " +
           avg(vat(rt.radius_in, i)) + " -> " + avg(vat(rt.radius_out, i)) +
           "\n";
    est_in = est_out;
  }
  out += "  output rows: est " + fmt(plan.est_output_rows) + ", actual " +
         avg(rt.output_rows) + "\n";
  return out;
}

Status QueryPlanner::ExecuteWithPlan(const DynamicQuery& q,
                                     const QueryPlan& plan,
                                     const std::function<void(EntityId)>& fn) {
  return ExecuteWithPlanCounted(q, plan, fn, nullptr);
}

Status QueryPlanner::ExecuteWithPlanCounted(
    const DynamicQuery& q, const QueryPlan& plan,
    const std::function<void(EntityId)>& fn, PlanRuntimeStats* rc) {
  if (!PlanFits(q, plan)) {
    // Shape-hash collision or a hand-built plan for another query: fall
    // back to the always-correct scan (with every predicate as a filter).
    QueryPlan scan;
    scan.access = AccessPath::kFullScan;
    for (size_t i = 0; i < q.predicates().size(); ++i) {
      scan.predicate_order.push_back(static_cast<int>(i));
    }
    return ExecuteFullScan(q, scan, fn, rc);
  }
  switch (plan.access) {
    case AccessPath::kFullScan:
      return ExecuteFullScan(q, plan, fn, rc);
    case AccessPath::kFieldIndex:
      return ExecuteFieldIndex(q, plan, fn, rc);
    case AccessPath::kSpatialIndex:
      return ExecuteSpatialIndex(q, plan, fn, rc);
  }
  return Status::NotSupported("unknown access path");
}

namespace {

/// Membership probes for one query, computed once before the row loop:
/// the plan's probe order (cheapest expected rejection first), then any
/// required table the plan missed (fallback plans have an empty list;
/// hand-built plans may be stale), minus `implied_table` — the table
/// whose membership the access path already guarantees.
std::vector<uint32_t> BuildProbeList(const DynamicQuery& q,
                                     const QueryPlan& plan,
                                     uint32_t implied_table) {
  std::vector<uint32_t> probes;
  auto add = [&](uint32_t id) {
    if (id == implied_table) return;
    if (std::find(probes.begin(), probes.end(), id) == probes.end()) {
      probes.push_back(id);
    }
  };
  for (uint32_t id : plan.probe_order) add(id);
  for (uint32_t id : q.required()) add(id);
  return probes;
}

/// Shared filter tail for every access path: alive check, membership
/// probes (see BuildProbeList), field predicates in plan order, radius
/// predicates. `rc` (nullable) receives EXPLAIN ANALYZE per-operator
/// in/out row counts; its vectors are pre-sized by Execute.
bool SurvivesFilters(const World& world, const DynamicQuery& q,
                     const QueryPlan& plan, EntityId e,
                     const std::vector<uint32_t>& probes,
                     PlanRuntimeStats* rc) {
  if (!world.Alive(e)) return false;
  for (uint32_t id : probes) {
    const ComponentStore* store = world.StoreByIdIfExists(id);
    if (store == nullptr || !store->Contains(e)) return false;
  }
  if (rc != nullptr) ++rc->probe_survivors;
  // Predicates in planned order; the access path's served predicate is
  // re-checked afterwards (boundary semantics stay with CompareFieldValues).
  for (int pi : plan.predicate_order) {
    const auto idx = static_cast<size_t>(pi);
    if (rc != nullptr) ++rc->predicate_in[idx];
    if (!EvalPredicate(world, q.predicates()[idx], e)) return false;
    if (rc != nullptr) ++rc->predicate_out[idx];
  }
  if (plan.access == AccessPath::kFieldIndex && plan.index_predicate >= 0) {
    const auto idx = static_cast<size_t>(plan.index_predicate);
    if (rc != nullptr) ++rc->predicate_in[idx];
    if (!EvalPredicate(world, q.predicates()[idx], e)) return false;
    if (rc != nullptr) ++rc->predicate_out[idx];
  }
  for (size_t i = 0; i < q.radius_predicates().size(); ++i) {
    if (rc != nullptr) ++rc->radius_in[i];
    if (!EvalRadius(world, q.radius_predicates()[i], e)) return false;
    if (rc != nullptr) ++rc->radius_out[i];
  }
  return true;
}

}  // namespace

Status QueryPlanner::ExecuteFullScan(const DynamicQuery& q,
                                     const QueryPlan& plan,
                                     const std::function<void(EntityId)>& fn,
                                     PlanRuntimeStats* rc) {
  const ComponentStore* canonical = q.CanonicalDriver();
  if (canonical == nullptr) return Status::OK();
  // Scan the plan's driver when it is one of the required tables (the
  // planner's driver-order choice, or a forced plan); otherwise the
  // canonical one.
  const ComponentStore* scan = nullptr;
  uint32_t scan_id = 0;
  for (uint32_t id : q.required()) {
    const ComponentStore* store = world_->StoreByIdIfExists(id);
    if (store == canonical && scan == nullptr) {
      scan = store;
      scan_id = id;
    }
    if (id == plan.driver_type && store != nullptr) {
      scan = store;
      scan_id = id;
      break;
    }
  }
  const std::vector<uint32_t> probes = BuildProbeList(q, plan, scan_id);
  if (rc != nullptr) rc->driver_rows += scan->Size();
  if (scan == canonical) {
    // Same table the built-in path scans: stream in place.
    for (size_t i = 0; i < scan->Size(); ++i) {
      EntityId e = scan->EntityAt(i);
      if (SurvivesFilters(*world_, q, plan, e, probes, rc)) {
        if (rc != nullptr) ++rc->output_rows;
        fn(e);
      }
    }
    return Status::OK();
  }
  // Foreign driver: buffer and restore the canonical emit order.
  std::vector<std::pair<size_t, EntityId>> matches;
  for (size_t i = 0; i < scan->Size(); ++i) {
    EntityId e = scan->EntityAt(i);
    if (!SurvivesFilters(*world_, q, plan, e, probes, rc)) continue;
    size_t pos = canonical->DenseIndexOf(e);
    if (pos == ComponentStore::kNoDenseIndex) continue;
    matches.emplace_back(pos, e);
  }
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (rc != nullptr) rc->output_rows += matches.size();
  for (const auto& [pos, e] : matches) fn(e);
  return Status::OK();
}

Status QueryPlanner::ExecuteFieldIndex(
    const DynamicQuery& q, const QueryPlan& plan,
    const std::function<void(EntityId)>& fn, PlanRuntimeStats* rc) {
  const ComponentStore* driver = q.CanonicalDriver();
  if (driver == nullptr) return Status::OK();
  const auto& p = q.predicates()[static_cast<size_t>(plan.index_predicate)];
  const ComponentStore* table = world_->StoreByIdIfExists(p.type_id);
  double rhs = 0.0;
  if (table == nullptr || !FieldValueAsNumber(p.rhs, &rhs) ||
      std::isnan(rhs)) {
    return ExecuteFullScan(q, plan, fn, rc);
  }
  const FieldIndex* index = field_indexes_.Get(p.type_id, p.field, table);
  if (index->has_nan) {
    // NaN keys break the sort order's equivalence to comparison semantics.
    return ExecuteFullScan(q, plan, fn, rc);
  }
  double lo = -kInf, hi = kInf;
  switch (p.op) {
    case CmpOp::kEq:
      lo = hi = rhs;
      break;
    case CmpOp::kLt:
    case CmpOp::kLe:
      hi = rhs;
      break;
    case CmpOp::kGt:
    case CmpOp::kGe:
      lo = rhs;
      break;
    case CmpOp::kNe:
      break;  // full range; the re-check filters (planner avoids this)
  }
  // Gather matches with their canonical dense position, then restore the
  // built-in path's emit order.
  const std::vector<uint32_t> probes = BuildProbeList(q, plan, p.type_id);
  std::vector<std::pair<size_t, EntityId>> matches;
  index->ForEachInRange(lo, hi, [&](EntityId e) {
    if (rc != nullptr) ++rc->driver_rows;
    if (!SurvivesFilters(*world_, q, plan, e, probes, rc)) return;
    size_t pos = driver->DenseIndexOf(e);
    if (pos == ComponentStore::kNoDenseIndex) return;  // not in driver
    matches.emplace_back(pos, e);
  });
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (rc != nullptr) rc->output_rows += matches.size();
  for (const auto& [pos, e] : matches) fn(e);
  return Status::OK();
}

Status QueryPlanner::ExecuteSpatialIndex(
    const DynamicQuery& q, const QueryPlan& plan,
    const std::function<void(EntityId)>& fn, PlanRuntimeStats* rc) {
  const ComponentStore* driver = q.CanonicalDriver();
  if (driver == nullptr) return Status::OK();
  const auto& rp =
      q.radius_predicates()[static_cast<size_t>(plan.radius_predicate)];
  const ComponentStore* table = world_->StoreByIdIfExists(rp.type_id);
  if (table == nullptr || rp.field->type() != FieldType::kVec3) {
    return ExecuteFullScan(q, plan, fn, rc);
  }
  const spatial::KdBspTree* tree =
      spatial_indexes_->Get(rp.type_id, rp.field, table);
  const std::vector<uint32_t> probes = BuildProbeList(q, plan, rp.type_id);
  std::vector<std::pair<size_t, EntityId>> matches;
  tree->QueryRadius(rp.center, rp.radius, [&](EntityId e, const Aabb&) {
    if (rc != nullptr) ++rc->driver_rows;
    // SurvivesFilters re-evaluates every radius predicate exactly,
    // including the served one — the tree only prunes.
    if (!SurvivesFilters(*world_, q, plan, e, probes, rc)) return;
    size_t pos = driver->DenseIndexOf(e);
    if (pos == ComponentStore::kNoDenseIndex) return;
    matches.emplace_back(pos, e);
  });
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (rc != nullptr) rc->output_rows += matches.size();
  for (const auto& [pos, e] : matches) fn(e);
  return Status::OK();
}

size_t QueryPlanner::ChooseViewDriver(const uint32_t* type_ids,
                                      size_t n) const {
  if (n <= 1) return 0;
  const CostConstants& c = options_.costs;
  size_t best = 0;
  double best_cost = kInf;
  for (size_t i = 0; i < n; ++i) {
    double raw, live;
    const TableStats* t = stats_.Table(type_ids[i]);
    if (t != nullptr) {
      raw = static_cast<double>(t->rows);
      live = static_cast<double>(t->live_rows);
    } else {
      // Never analyzed: fall back to the current size, assumed fully live
      // (exactly the built-in smallest-table behaviour).
      const ComponentStore* store = world_->StoreByIdIfExists(type_ids[i]);
      raw = store != nullptr ? static_cast<double>(store->Size()) : 0.0;
      live = raw;
    }
    double cost = raw * c.scan_row +
                  live * static_cast<double>(n - 1) * c.probe_table;
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  return best;
}

PairJoinPlan QueryPlanner::PlanPairJoin(size_t n, float radius,
                                        double est_neighbors,
                                        int dims) const {
  const CostConstants& c = options_.costs;
  PairJoinPlan plan;
  plan.n = n;
  plan.est_neighbors = est_neighbors;
  const double dn = static_cast<double>(n);

  plan.est_cost_nested = dn * (dn - 1.0) * 0.5 * c.pair_distance;

  // Grid: inserts, then 13 neighbor-cell hash lookups per *occupied* cell
  // (the dominant term on sparse data, where cells ≈ points), then the
  // candidate distance checks. Occupants per cell of side r relate to
  // neighbors within radius r by the cell/sphere volume ratio; the
  // candidate count scales by the half-neighborhood (13.5 of 27 cells in
  // 3D, 4.5 of 9 in 2D).
  double per_cell = est_neighbors * (dims == 2 ? 1.0 / 3.14159265358979
                                               : 1.0 / 4.18879020478639);
  double occupied_cells = dn / (1.0 + per_cell);
  double cell_factor = dims == 2 ? 9.0 / 3.14159265358979
                                 : 27.0 / 4.18879020478639;
  double cand_per_point = est_neighbors * cell_factor;
  plan.est_cost_grid = c.pair_grid_overhead + dn * c.pair_grid_insert +
                       occupied_cells * 13.0 * c.pair_grid_cell_lookup +
                       dn * cand_per_point * 0.5 * c.pair_distance;

  // Tree: build once, then one radius probe per point; the probe visits the
  // sphere's bounding-box overshoot worth of candidates.
  double box_factor = dims == 2 ? 4.0 / 3.14159265358979
                                : 8.0 / 4.18879020478639;
  plan.est_cost_tree =
      c.pair_tree_overhead + dn * c.pair_tree_build_row +
      dn * (c.pair_tree_probe +
            est_neighbors * box_factor * c.pair_tree_candidate);

  plan.algo = spatial::PairAlgo::kNestedLoop;
  double best = plan.est_cost_nested;
  if (plan.est_cost_grid < best) {
    best = plan.est_cost_grid;
    plan.algo = spatial::PairAlgo::kGrid;
  }
  if (plan.est_cost_tree < best) {
    plan.algo = spatial::PairAlgo::kIndexed;
  }
  return plan;
}

PairJoinPlan QueryPlanner::PlanPairJoinFor(std::string_view component,
                                           std::string_view field, size_t n,
                                           float radius) const {
  const TypeInfo* info = TypeRegistry::Global().FindByName(component);
  const SpatialFieldStats* ss =
      info != nullptr ? stats_.Spatial(info->id(), std::string(field))
                      : nullptr;
  double est_neighbors;
  int dims = 3;
  if (ss != nullptr && ss->rows > 0) {
    // Density scales linearly with count over a fixed area.
    est_neighbors = ss->EstimateNeighbors(radius) * static_cast<double>(n) /
                    static_cast<double>(ss->rows);
    dims = ss->dims;
  } else {
    // Never analyzed: assume a moderate uniform density.
    est_neighbors = 4.0;
  }
  return PlanPairJoin(n, radius, est_neighbors, dims);
}

}  // namespace gamedb::planner
