#include "planner/plan.h"

#include <cmath>
#include <cstdio>

namespace gamedb::planner {

namespace {

std::string TypeName(uint32_t type_id) {
  const TypeInfo* info = TypeRegistry::Global().Find(type_id);
  return info != nullptr ? info->name() : std::to_string(type_id);
}

std::string Num(double v) {
  char buf[32];
  // Range-check before the integer cast: casting non-finite or >= 2^63
  // values to long long is undefined behavior.
  if (std::isfinite(v) && std::fabs(v) < 1e15 && v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  }
  return buf;
}

}  // namespace

std::string PredicateText(const DynamicQuery::Predicate& p) {
  return TypeName(p.type_id) + "." + p.field->name() + " " +
         CmpOpName(p.op) + " " + FieldValueToString(p.rhs);
}

std::string RadiusText(const DynamicQuery::RadiusPredicate& rp) {
  return "distance(" + TypeName(rp.type_id) + "." + rp.field->name() +
         ", center) <= " + Num(rp.radius);
}

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kFullScan:
      return "full_scan";
    case AccessPath::kFieldIndex:
      return "field_index";
    case AccessPath::kSpatialIndex:
      return "spatial_index";
  }
  return "?";
}

std::string QueryPlan::ToString(const DynamicQuery& q) const {
  std::string out = "plan (stats epoch " + std::to_string(stats_epoch) +
                    ", est. cost " + Num(est_cost) + "):\n";
  switch (access) {
    case AccessPath::kFullScan:
      out += "  access: full_scan of " + TypeName(driver_type) + " (est. " +
             Num(est_driver_rows) + " rows)\n";
      break;
    case AccessPath::kFieldIndex: {
      const auto& p = q.predicates()[static_cast<size_t>(index_predicate)];
      out += "  access: field_index on " + PredicateText(p) + " (est. " +
             Num(est_driver_rows) + " of " +
             Num(q.world()->StoreByIdIfExists(p.type_id) != nullptr
                     ? static_cast<double>(
                           q.world()->StoreByIdIfExists(p.type_id)->Size())
                     : 0.0) +
             " rows)\n";
      break;
    }
    case AccessPath::kSpatialIndex: {
      const auto& rp =
          q.radius_predicates()[static_cast<size_t>(radius_predicate)];
      out += "  access: spatial_index probe for " + RadiusText(rp) +
             " (est. " + Num(est_driver_rows) + " candidates)\n";
      break;
    }
  }
  for (uint32_t id : probe_order) {
    out += "  probe: " + TypeName(id) + "\n";
  }
  for (int pi : predicate_order) {
    out += "  filter: " +
           PredicateText(q.predicates()[static_cast<size_t>(pi)]) + "\n";
  }
  for (size_t i = 0; i < q.radius_predicates().size(); ++i) {
    if (static_cast<int>(i) == radius_predicate) continue;
    out += "  filter: " + RadiusText(q.radius_predicates()[i]) +
           " (linear)\n";
  }
  out += "  output: est. " + Num(est_output_rows) + " rows\n";
  return out;
}

std::string PairJoinPlan::ToString() const {
  std::string out = "pair_join: ";
  out += spatial::PairAlgoName(algo);
  out += " (n=" + std::to_string(n) + ", est. neighbors=" +
         Num(est_neighbors) + ", est. cost nested=" + Num(est_cost_nested) +
         " grid=" + Num(est_cost_grid) + " tree=" + Num(est_cost_tree) + ")";
  return out;
}

}  // namespace gamedb::planner
