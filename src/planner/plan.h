#pragma once

/// \file plan.h
/// Physical plan representation for declarative game queries, plus the cost
/// constants the planner prices plans with. A QueryPlan is what the
/// cost-based planner (planner.h) emits for a DynamicQuery; a PairJoinPlan
/// is the analogous choice among the proximity self-join algorithms
/// (spatial/pair_join.h). Both render themselves as EXPLAIN text.

#include <cstdint>
#include <string>
#include <vector>

#include "core/query.h"
#include "spatial/pair_join.h"

namespace gamedb::planner {

/// Master switch call sites thread the planner behind: kOff keeps the
/// hard-coded access paths (smallest-table scan + linear filters) fully
/// exercisable; kOn routes execution through the cost-based plan.
enum class PlannerPolicy : uint8_t { kOff, kOn };

/// How the driver rows of a DynamicQuery plan are enumerated.
enum class AccessPath : uint8_t {
  /// Dense scan of the driver table, all predicates as filters.
  kFullScan,
  /// Range scan of a sorted per-(table,field) projection index serving one
  /// field predicate; surviving candidates are filtered and re-sorted into
  /// canonical table order.
  kFieldIndex,
  /// Probe of a spatial index (KD-BSP tree) serving one radius predicate.
  kSpatialIndex,
};

const char* AccessPathName(AccessPath path);

/// Render one field / radius predicate the way EXPLAIN prints it
/// ("Health.hp < 30", "distance(Position.value, center) <= 5"). Shared by
/// QueryPlan::ToString and the planner's EXPLAIN ANALYZE rendering.
std::string PredicateText(const DynamicQuery::Predicate& p);
std::string RadiusText(const DynamicQuery::RadiusPredicate& rp);

/// Cost constants. Units are arbitrary but calibrated: within the query
/// constants one unit ≈ one seventh of a reflective row visit, within the
/// pair-join constants one unit ≈ one distance check (the two families
/// never cross-compare). Values were fit to the e13 sweep measured on the
/// dev container, which itself reproduces the e01/e02 shapes:
///   - a full-scan row costs scan_row + predicate ≈ 28ns (e01
///     BM_RescanAggregate's reflective loop),
///   - index candidates are cheap until the result sort + out-of-cache
///     lookups kick in at scale — index_sort carries that superlinear term
///     (the e13 50%-selectivity flip between n=1k and n=16k),
///   - GridPairs' cost is dominated by per-occupied-cell neighbor hash
///     lookups, not distance checks (e13 sparse grids cost more than
///     dense ones at equal n; see PlanPairJoin).
struct CostConstants {
  double scan_row = 1.0;        ///< visit one dense driver row (+alive check)
  double predicate = 3.0;       ///< evaluate one reflective field predicate
  double probe_table = 1.0;     ///< one membership probe of a required table
  double radius_filter = 4.0;   ///< one linear distance filter evaluation
  double index_build_row = 6.0;   ///< sort one row into a field index
  double index_candidate = 1.0;   ///< emit one index candidate
  /// Per candidate × log2(candidates): the canonical re-sort of the result
  /// buffer plus out-of-cache dense-position lookups. This term is what
  /// hands high-selectivity queries back to the full scan at large n.
  double index_sort = 0.28;
  /// Per-query fixed overhead of the field-index path: cache lookup,
  /// binary search, result-buffer setup. This is what keeps tiny tables on
  /// the full scan.
  double index_seek = 200.0;
  double spatial_build_row = 14.0;  ///< insert one row into the KD tree
  /// Per-query fixed overhead of a spatial probe (cache lookup, tree
  /// descent, result-buffer setup).
  double spatial_probe = 250.0;
  double spatial_candidate = 6.0;   ///< visit one probe candidate
  /// Index/spatial build costs amortize over this many queries: caches are
  /// keyed by table version, and between mutations (e.g. within one
  /// scripted query phase, where every entity queries) this many reuses is
  /// conservative.
  double assumed_index_reuse = 16.0;
  // --- pair-join constants (see PairJoinPlan) ---------------------------
  double pair_distance = 1.0;     ///< one distance check
  double pair_grid_insert = 110.0;  ///< hash one point into the grid
  /// One neighbor-cell hash lookup; GridPairs pays 13 per occupied cell,
  /// which dominates sparse workloads (many cells, few candidates).
  double pair_grid_cell_lookup = 11.0;
  double pair_grid_overhead = 3000.0;  ///< fixed: grid hash-map setup
  double pair_tree_build_row = 20.0;  ///< insert one point into the KD tree
  double pair_tree_probe = 300.0;     ///< per-point probe overhead
  double pair_tree_candidate = 35.0;  ///< per candidate visited in a probe
  double pair_tree_overhead = 600.0;  ///< fixed: tree build + id-map setup
};

/// Physical plan for one DynamicQuery shape.
struct QueryPlan {
  AccessPath access = AccessPath::kFullScan;
  /// Driver table to enumerate for kFullScan. Execution honors it when it
  /// is one of the query's required tables (buffering + re-sorting into
  /// canonical order when it differs from the canonical driver, so result
  /// order stays plan-independent); 0xFFFFFFFF means "canonical".
  uint32_t driver_type = 0xFFFFFFFFu;
  /// Index into DynamicQuery::predicates() served by the field index
  /// (kFieldIndex only).
  int index_predicate = -1;
  /// Index into DynamicQuery::radius_predicates() served by the spatial
  /// index (kSpatialIndex only).
  int radius_predicate = -1;
  /// Evaluation order of field predicates (most selective first); indexes
  /// into DynamicQuery::predicates(). The served predicate is excluded.
  std::vector<int> predicate_order;
  /// Membership-probe order of required tables (ascending estimated size).
  std::vector<uint32_t> probe_order;

  // --- estimates (from stats at plan time) ------------------------------
  uint64_t stats_epoch = 0;
  double est_driver_rows = 0.0;   ///< rows the access path enumerates
  double est_output_rows = 0.0;   ///< rows surviving all predicates
  double est_cost = 0.0;          ///< total cost in CostConstants units
  /// Rows expected to survive the membership probes, and the per-operator
  /// selectivity estimates behind est_output_rows (indexed like the
  /// query's predicates()/radius_predicates()). Consumed by EXPLAIN
  /// ANALYZE to show estimated-vs-actual rows per operator; never read
  /// during execution.
  double est_probe_rows = 0.0;
  std::vector<double> predicate_sel;
  std::vector<double> radius_sel;

  /// EXPLAIN rendering; `q` supplies predicate text. Stable tokens
  /// ("access: full_scan", "access: field_index", "access: spatial_index")
  /// are part of the testable surface.
  std::string ToString(const DynamicQuery& q) const;
};

/// Cost-based choice among the three proximity self-join algorithms.
struct PairJoinPlan {
  spatial::PairAlgo algo = spatial::PairAlgo::kNestedLoop;
  size_t n = 0;
  double est_neighbors = 0.0;  ///< per-entity neighbors within the radius
  double est_cost_nested = 0.0;
  double est_cost_grid = 0.0;
  double est_cost_tree = 0.0;

  /// EXPLAIN rendering with the per-algorithm cost estimates. Stable token:
  /// "pair_join: <algo>".
  std::string ToString() const;
};

}  // namespace gamedb::planner
