#include "replication/divergence.h"

#include <cmath>

namespace gamedb::replication {

DivergenceReport MeasureDivergence(const World& server, const World& client) {
  DivergenceReport report;
  double sq_sum = 0.0;
  double hp_abs_sum = 0.0;
  size_t hp_count = 0;

  const auto* positions = server.TableIfExists<Position>();
  if (positions != nullptr) {
    positions->ForEach([&](EntityId e, const Position& server_pos) {
      const Position* client_pos = client.Get<Position>(e);
      if (client_pos == nullptr) {
        ++report.missing_on_client;
        return;
      }
      double err = server_pos.value.DistanceTo(client_pos->value);
      sq_sum += err * err;
      report.max_position_error = std::max(report.max_position_error, err);
      ++report.compared;
    });
  }
  const auto* healths = server.TableIfExists<Health>();
  if (healths != nullptr) {
    healths->ForEach([&](EntityId e, const Health& server_hp) {
      const Health* client_hp = client.Get<Health>(e);
      if (client_hp == nullptr) return;
      hp_abs_sum += std::abs(double(server_hp.hp) - double(client_hp->hp));
      ++hp_count;
    });
  }

  if (report.compared > 0) {
    report.position_rmse = std::sqrt(sq_sum / double(report.compared));
  }
  if (hp_count > 0) {
    report.hp_mean_abs_error = hp_abs_sum / double(hp_count);
  }
  return report;
}

}  // namespace gamedb::replication
