#include "replication/aggro.h"

#include <limits>

namespace gamedb::replication {

void ThreatTable::OnDamage(EntityId attacker, double amount) {
  if (amount <= 0) return;
  threat_[attacker] += amount * options_.damage_threat;
}

void ThreatTable::OnHeal(EntityId healer, double amount) {
  if (amount <= 0) return;
  threat_[healer] += amount * options_.heal_threat;
}

void ThreatTable::OnTaunt(EntityId taunter) {
  // Taunt both forces the target and lifts the taunter's threat past the
  // sticky margin so the hold survives the next threat tick.
  double top = 0.0;
  for (const auto& [e, t] : threat_) top = std::max(top, t);
  threat_[taunter] = std::max(threat_[taunter], top * options_.switch_margin);
  if (current_ != taunter) {
    if (current_.valid()) ++switches_;
    current_ = taunter;
  }
}

void ThreatTable::RemoveParticipant(EntityId e) {
  threat_.erase(e);
  if (current_ == e) current_ = EntityId::Invalid();
}

void ThreatTable::Tick() {
  if (options_.decay_per_tick <= 0.0) return;
  double keep = 1.0 - options_.decay_per_tick;
  for (auto& [e, t] : threat_) t *= keep;
}

EntityId ThreatTable::CurrentTarget() {
  if (threat_.empty()) {
    current_ = EntityId::Invalid();
    return current_;
  }
  // Highest threat challenger.
  EntityId best;
  double best_threat = -1.0;
  for (const auto& [e, t] : threat_) {
    if (t > best_threat || (t == best_threat && e < best)) {
      best = e;
      best_threat = t;
    }
  }
  if (!current_.valid() || threat_.find(current_) == threat_.end()) {
    current_ = best;
    return current_;
  }
  // Sticky rule: switch only when the challenger clears the margin.
  double incumbent = threat_.at(current_);
  if (best != current_ && best_threat > incumbent * options_.switch_margin) {
    current_ = best;
    ++switches_;
  }
  return current_;
}

double ThreatTable::ThreatOf(EntityId e) const {
  auto it = threat_.find(e);
  return it == threat_.end() ? 0.0 : it->second;
}

EntityId SelectNearestEnemy(const World& world, EntityId npc) {
  const Position* my_pos = world.Get<Position>(npc);
  const Faction* my_faction = world.Get<Faction>(npc);
  if (my_pos == nullptr || my_faction == nullptr) return EntityId::Invalid();

  EntityId best;
  float best_d2 = std::numeric_limits<float>::infinity();
  const auto* positions = world.TableIfExists<Position>();
  if (positions == nullptr) return EntityId::Invalid();
  positions->ForEach([&](EntityId e, const Position& p) {
    if (e == npc) return;
    const Faction* f = world.Get<Faction>(e);
    if (f == nullptr || f->team == my_faction->team) return;
    const Health* h = world.Get<Health>(e);
    if (h == nullptr || h->hp <= 0) return;
    float d2 = p.value.DistanceSquaredTo(my_pos->value);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = e;
    }
  });
  return best;
}

}  // namespace gamedb::replication
