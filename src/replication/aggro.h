#pragma once

/// \file aggro.h
/// Aggro management — the tutorial's example of trading spatial fidelity
/// for tractable combat: "It assigns abstract roles to the participants,
/// which allows the game to handle combat without exact spatial fidelity."
///
/// Each NPC keeps a *threat table*: contributions from damage, healing and
/// taunts. The NPC targets the highest-threat participant, switching only
/// when a challenger exceeds the incumbent by a sticky margin (the classic
/// 110% rule) — which is what stops bosses from ping-ponging between
/// melee-range players the way exact nearest-enemy targeting does (E11).

#include <unordered_map>
#include <vector>

#include "core/world.h"

namespace gamedb::replication {

/// Threat accounting parameters.
struct AggroOptions {
  double damage_threat = 1.0;   // threat per point of damage dealt
  double heal_threat = 0.5;     // threat per point healed (split to healer)
  double switch_margin = 1.1;   // challenger must exceed incumbent by this
  double decay_per_tick = 0.0;  // multiplicative threat decay (0 = none)
};

/// Threat table for one NPC.
class ThreatTable {
 public:
  explicit ThreatTable(AggroOptions options = {}) : options_(options) {}

  void OnDamage(EntityId attacker, double amount);
  void OnHeal(EntityId healer, double amount);
  /// Taunt: jump the taunter to 110% of the current top threat.
  void OnTaunt(EntityId taunter);
  /// Participant died or left combat.
  void RemoveParticipant(EntityId e);
  /// Applies one tick of decay.
  void Tick();

  /// Current target under the sticky-switch rule; Invalid when the table
  /// is empty.
  EntityId CurrentTarget();

  double ThreatOf(EntityId e) const;
  size_t participant_count() const { return threat_.size(); }
  /// Times the target changed across CurrentTarget() calls.
  uint64_t target_switches() const { return switches_; }

 private:
  AggroOptions options_;
  std::unordered_map<EntityId, double> threat_;
  EntityId current_;
  uint64_t switches_ = 0;
};

/// Exact-spatial baseline: the nearest living enemy of `npc` (different
/// Faction team), scanning all positioned entities. Twitchy and O(n) —
/// the behaviour aggro tables exist to replace.
EntityId SelectNearestEnemy(const World& world, EntityId npc);

}  // namespace gamedb::replication
