#include "replication/sync.h"

#include <atomic>

#include "common/coding.h"
#include "core/serialize.h"
#include "views/maintainer.h"

namespace gamedb::replication {

SyncServer::SyncServer(World* server_world, SyncOptions options)
    : server_(server_world), options_(options) {
  static std::atomic<uint64_t> next_instance{0};
  instance_id_ = next_instance.fetch_add(1, std::memory_order_relaxed);
  if (options_.telemetry.metrics != nullptr) {
    telemetry::MetricsRegistry* reg = options_.telemetry.metrics;
    m_rounds_ = reg->GetCounter("sync.rounds");
    m_bytes_sent_ = reg->GetCounter("sync.bytes_sent");
    m_rows_sent_ = reg->GetCounter("sync.rows_sent");
    m_removals_sent_ = reg->GetCounter("sync.removals_sent");
  }
}

SyncServer::~SyncServer() {
  if (options_.view_catalog == nullptr) return;
  for (auto& client : clients_) {
    if (client->interest_view_ != nullptr) {
      options_.view_catalog->Unregister(client->interest_view_->name());
    }
  }
}

const char* SyncStrategyName(SyncStrategy s) {
  switch (s) {
    case SyncStrategy::kFullSnapshot:
      return "full_snapshot";
    case SyncStrategy::kDelta:
      return "delta";
    case SyncStrategy::kInterest:
      return "interest";
    case SyncStrategy::kEventual:
      return "eventual";
    case SyncStrategy::kInterestView:
      return "interest_view";
  }
  return "?";
}

size_t SyncServer::AddClient(EntityId avatar) {
  clients_.push_back(std::make_unique<ClientReplica>(avatar));
  ++connected_count_;
  size_t index = clients_.size() - 1;
  if (options_.strategy == SyncStrategy::kInterestView) {
    GAMEDB_CHECK(options_.view_catalog != nullptr);  // see SyncOptions
    views::ViewDef def;
    def.name = "__sync_interest_" + std::to_string(instance_id_) + "_" +
               std::to_string(index);
    def.has_near = true;
    def.near.component = "Position";
    def.near.field = "value";
    // Center starts at the avatar's current position when it has one; the
    // first SyncOne recenters anyway.
    const Position* p = server_->Get<Position>(avatar);
    def.near.center = p != nullptr ? p->value : Vec3{};
    def.near.radius = options_.interest_radius;
    Result<views::LiveView*> view = options_.view_catalog->Register(
        std::move(def));
    GAMEDB_CHECK(view.ok());  // Position is a registered standard component
    clients_.back()->interest_view_ = *view;
  }
  return index;
}

void SyncServer::RemoveClient(size_t i) {
  GAMEDB_CHECK(i < clients_.size());
  ClientReplica* client = clients_[i].get();
  if (!client->connected_) return;
  client->connected_ = false;
  --connected_count_;
  if (client->interest_view_ != nullptr &&
      options_.view_catalog != nullptr) {
    options_.view_catalog->Unregister(client->interest_view_->name());
    client->interest_view_ = nullptr;
  }
}

Status SyncServer::SyncAll(std::vector<SyncStats>* stats) {
  telemetry::TraceSpan span(options_.telemetry.tracer, "sync.sync_all");
  stats->assign(clients_.size(), SyncStats{});
  // One maintenance round serves every client: the interest views absorb
  // all position/table deltas since the last sync here, instead of each
  // client rescanning the Position table below.
  if (options_.strategy == SyncStrategy::kInterestView &&
      options_.view_catalog != nullptr) {
    options_.view_catalog->Maintain();
  }
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (!clients_[i]->connected_) continue;
    GAMEDB_RETURN_NOT_OK(SyncOne(clients_[i].get(), &(*stats)[i]));
  }
  if (m_rounds_ != nullptr) {
    uint64_t bytes = 0;
    uint64_t rows = 0;
    uint64_t removals = 0;
    for (const SyncStats& s : *stats) {
      bytes += s.bytes_sent;
      rows += s.rows_sent;
      removals += s.removals_sent;
    }
    m_rounds_->Increment();
    m_bytes_sent_->Add(bytes);
    m_rows_sent_->Add(rows);
    m_removals_sent_->Add(removals);
  }
  return Status::OK();
}

Status SyncServer::SyncOne(ClientReplica* client, SyncStats* stats) {
  switch (options_.strategy) {
    case SyncStrategy::kFullSnapshot:
      return SendFullSnapshot(client, stats);
    case SyncStrategy::kDelta:
      return SendDelta(client, /*interest_filtered=*/false, stats);
    case SyncStrategy::kInterest:
    case SyncStrategy::kInterestView:
      return SendDelta(client, /*interest_filtered=*/true, stats);
    case SyncStrategy::kEventual: {
      uint64_t now = server_->tick();
      if (client->ever_synced_ &&
          now - client->last_sync_tick_ < options_.period_ticks) {
        return Status::OK();  // skip this round; divergence accrues
      }
      return SendDelta(client, /*interest_filtered=*/false, stats);
    }
  }
  return Status::InvalidArgument("unknown strategy");
}

Status SyncServer::SendFullSnapshot(ClientReplica* client, SyncStats* stats) {
  std::string snapshot;
  EncodeWorldSnapshot(*server_, &snapshot);
  stats->bytes_sent += snapshot.size();
  client->ever_synced_ = true;
  client->last_sync_tick_ = server_->tick();
  return DecodeWorldSnapshot(snapshot, &client->world());
}

Status SyncServer::SendDelta(ClientReplica* client, bool interest_filtered,
                             SyncStats* stats) {
  // Interest set: entities with Position within radius of the avatar, plus
  // the avatar itself. kInterest rescans the Position table per client;
  // kInterestView reads the client's incrementally-maintained LiveView
  // (recentered when the avatar moved — an index-assisted repopulate).
  std::unordered_set<uint64_t> interest;
  if (interest_filtered) {
    const Position* center = server_->Get<Position>(client->avatar());
    if (options_.strategy == SyncStrategy::kInterestView) {
      views::LiveView* view = client->interest_view_;
      if (center != nullptr && view != nullptr) {
        GAMEDB_RETURN_NOT_OK(view->Recenter(center->value));
        view->ForEachMember(
            [&](EntityId e) { interest.insert(e.Raw()); });
      }
    } else if (center != nullptr) {
      float r2 = options_.interest_radius * options_.interest_radius;
      const auto* table = server_->TableIfExists<Position>();
      if (table != nullptr) {
        table->ForEach([&](EntityId e, const Position& p) {
          if (p.value.DistanceSquaredTo(center->value) <= r2) {
            interest.insert(e.Raw());
          }
        });
      }
    }
    interest.insert(client->avatar().Raw());
  }

  // The "message": encoded rows and removals. We count its bytes as the
  // bandwidth metric and apply it immediately (zero-loss in-memory link).
  std::string message;
  World& replica = client->world();

  Status apply_status = Status::OK();
  server_->ForEachStore([&](const TypeInfo& info, ComponentStore& store) {
    if (!apply_status.ok()) return;
    uint64_t acked = 0;
    auto acked_it = client->acked_.find(info.id());
    if (acked_it != client->acked_.end()) acked = acked_it->second;

    ComponentStore* client_store = replica.StoreById(info.id());
    GAMEDB_CHECK(client_store != nullptr);

    // Changed (or newly interesting) rows.
    for (size_t i = 0; i < store.Size(); ++i) {
      EntityId e = store.EntityAt(i);
      bool in_interest =
          !interest_filtered || interest.count(e.Raw()) > 0;
      bool was_subscribed =
          !interest_filtered || client->subscribed_.count(e.Raw()) > 0;
      bool changed = store.VersionAt(i) > acked;
      bool send = in_interest && (changed || !was_subscribed);
      if (!send) continue;

      // Encode: table name omitted (implied by loop); entity + payload.
      std::string payload;
      info.EncodeComponent(store.ValueAt(i), &payload);
      PutFixed64(&message, e.Raw());
      PutLengthPrefixed(&message, payload);
      ++stats->rows_sent;

      // Apply to the replica. The replica may still hold a previous
      // generation of this slot — the old entity died server-side (or left
      // interest) and the slot was reused before any removal reached this
      // client. The stale generation no longer exists on the server, so
      // evict it before recreating the slot's current occupant.
      if (!replica.Alive(e)) {
        EntityId stale = replica.LiveAt(e.index);
        if (stale.valid()) replica.Destroy(stale);
        Status st = replica.CreateWithId(e);
        if (!st.ok()) {
          apply_status = st;
          return;
        }
      }
      client_store->EmplaceDefault(e);
      Status decode_status = Status::OK();
      client_store->PatchRaw(e, [&](void* comp) {
        Decoder dec(payload);
        decode_status = info.DecodeComponent(comp, &dec);
      });
      if (!decode_status.ok()) {
        apply_status = decode_status;
        return;
      }
    }

    // Removals on the server side.
    store.ForEachRemoved(acked, [&](EntityId e) {
      PutFixed64(&message, e.Raw());
      ++stats->removals_sent;
      client_store->Erase(e);
    });

    client->acked_[info.id()] = store.last_version();
  });
  GAMEDB_RETURN_NOT_OK(apply_status);

  // Interest exits: drop all components of entities that left the bubble.
  if (interest_filtered) {
    for (uint64_t raw : client->subscribed_) {
      if (interest.count(raw)) continue;
      EntityId e = EntityId::FromRaw(raw);
      PutFixed64(&message, raw);
      ++stats->removals_sent;
      // Destroy, not per-store Erase: an out-of-interest entity should not
      // linger as an alive-but-empty replica entity (it would also collide
      // with a later CreateWithId when the server reuses the slot).
      replica.Destroy(e);
    }
    client->subscribed_ = std::move(interest);
  }

  stats->bytes_sent += message.size();
  replica.SetTick(server_->tick());
  client->ever_synced_ = true;
  client->last_sync_tick_ = server_->tick();
  return Status::OK();
}

}  // namespace gamedb::replication
