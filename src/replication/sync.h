#pragma once

/// \file sync.h
/// Server -> client state synchronization, exercising the consistency
/// spectrum of the tutorial: strict full-state sync, delta sync, interest-
/// managed sync (only what the player can see), and weaker periodic
/// ("eventual") sync where "animation or other uncontested activity may be
/// out of sync between computers but the persistent game state is the
/// same". E7 measures bytes against divergence for each.
///
/// Paper: the distributed-games / weak-consistency part of the consistency
/// section (what may diverge between machines vs what must not), plus the
/// aggro-management material in aggro.h / E11.
///
/// Scope: component *values* of live entities replicate; this layer does
/// not propagate entity destruction (the experiment workloads mutate,
/// they don't despawn mid-measurement).

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/world.h"
#include "telemetry/sink.h"

namespace gamedb::views {
class LiveView;
class ViewCatalog;
}  // namespace gamedb::views

namespace gamedb::replication {

/// How a client is kept in sync.
enum class SyncStrategy : uint8_t {
  /// Whole-world snapshot every tick (strict, maximal bandwidth).
  kFullSnapshot,
  /// Per-table version deltas every tick (strict, pay-for-what-changed).
  kDelta,
  /// Deltas restricted to an area of interest around the client avatar;
  /// entities entering interest send full rows, leaving entities are
  /// dropped from the replica.
  kInterest,
  /// Deltas only every `period_ticks` — weak consistency; divergence grows
  /// between rounds and collapses on sync.
  kEventual,
  /// kInterest semantics, but the per-client interest set is a LiveView
  /// (views/view.h) maintained incrementally from change capture instead
  /// of an O(world) Position rescan per client per sync: moved entities
  /// re-probe against the radius via deltas, and avatar movement triggers
  /// an index-assisted Recenter. Requires SyncOptions::view_catalog;
  /// replicated state is identical to kInterest for live entities. (One
  /// deliberate divergence: rows of *dead* entities — possible only via
  /// raw SparseSet writes with stale ids — are excluded here, where
  /// kInterest's raw rescan would replicate and resurrect them on the
  /// client.)
  kInterestView,
};

const char* SyncStrategyName(SyncStrategy s);

/// Options for SyncServer.
struct SyncOptions {
  SyncStrategy strategy = SyncStrategy::kDelta;
  /// kInterest / kInterestView: radius around the avatar that replicates.
  float interest_radius = 50.0f;
  /// kEventual: ticks between syncs.
  uint32_t period_ticks = 10;
  /// kInterestView: catalog hosting the per-client interest views (one
  /// "__sync_interest_<i>" view per client, registered by AddClient). The
  /// server Maintain()s it once per SyncAll; must outlive the SyncServer.
  views::ViewCatalog* view_catalog = nullptr;
  /// Optional telemetry hook: SyncAll records a "sync.sync_all" span and
  /// folds per-round byte/row/removal totals into the `sync.*` registry
  /// counters. Non-owning; must outlive the server.
  telemetry::TelemetrySink telemetry{};
};

/// One connected client: a replica world plus sync bookkeeping.
class ClientReplica {
 public:
  explicit ClientReplica(EntityId avatar) : avatar_(avatar) {}

  World& world() { return world_; }
  const World& world() const { return world_; }
  EntityId avatar() const { return avatar_; }

 private:
  friend class SyncServer;
  World world_;
  EntityId avatar_;
  /// Last acked version per component table (by type id).
  std::unordered_map<uint32_t, uint64_t> acked_;
  /// kInterest / kInterestView: entities currently replicated.
  std::unordered_set<uint64_t> subscribed_;
  /// kInterestView: this client's interest view (owned by the catalog).
  views::LiveView* interest_view_ = nullptr;
  uint64_t last_sync_tick_ = 0;
  bool ever_synced_ = false;
  /// False after RemoveClient: SyncAll skips the slot.
  bool connected_ = true;
};

/// Per-sync metrics.
struct SyncStats {
  uint64_t bytes_sent = 0;
  uint64_t rows_sent = 0;
  uint64_t removals_sent = 0;
};

/// Drives replication for any number of clients against one server world.
class SyncServer {
 public:
  SyncServer(World* server_world, SyncOptions options);
  /// kInterestView: unregisters this server's interest views from the
  /// catalog (clients of a torn-down server must not keep costing
  /// maintenance).
  ~SyncServer();

  /// Registers a client whose avatar is `avatar`; returns its index.
  size_t AddClient(EntityId avatar);

  /// Disconnects client `i`: its interest view (kInterestView) is
  /// unregistered from the catalog immediately — a logged-out client must
  /// stop costing per-tick maintenance — and SyncAll skips it from now on.
  /// The replica world and index stay valid (indices of other clients are
  /// stable); reconnecting is a fresh AddClient. No-op when already
  /// disconnected.
  void RemoveClient(size_t i);

  ClientReplica& client(size_t i) { return *clients_[i]; }
  size_t client_count() const { return clients_.size(); }
  /// Clients still being synced (AddClient minus RemoveClient).
  size_t connected_count() const { return connected_count_; }

  /// Synchronizes every client for the server's current tick. Appends the
  /// per-client byte cost into `stats` (sized to client count).
  Status SyncAll(std::vector<SyncStats>* stats);

 private:
  Status SyncOne(ClientReplica* client, SyncStats* stats);
  Status SendFullSnapshot(ClientReplica* client, SyncStats* stats);
  Status SendDelta(ClientReplica* client, bool interest_filtered,
                   SyncStats* stats);

  World* server_;
  SyncOptions options_;
  /// Cached registry instruments (nullptr without a metrics sink).
  telemetry::Counter* m_rounds_ = nullptr;
  telemetry::Counter* m_bytes_sent_ = nullptr;
  telemetry::Counter* m_rows_sent_ = nullptr;
  telemetry::Counter* m_removals_sent_ = nullptr;
  /// Distinguishes this server's interest-view names from those of other
  /// (including earlier, destroyed) SyncServers sharing one catalog.
  uint64_t instance_id_ = 0;
  std::vector<std::unique_ptr<ClientReplica>> clients_;
  size_t connected_count_ = 0;
};

}  // namespace gamedb::replication
