#pragma once

/// \file divergence.h
/// Quantifies how far a client replica has drifted from the server — the
/// measurable face of "weaker consistency guarantees". E7 plots these
/// numbers against the bandwidth each sync strategy spends.

#include <cstddef>

#include "core/world.h"

namespace gamedb::replication {

/// Drift measurements between a server world and one replica.
struct DivergenceReport {
  /// Root-mean-square position error over entities present on both sides.
  double position_rmse = 0.0;
  double max_position_error = 0.0;
  /// Mean absolute hp difference over shared Health rows.
  double hp_mean_abs_error = 0.0;
  /// Server entities (with Position) the client doesn't know at all.
  size_t missing_on_client = 0;
  /// Entities compared.
  size_t compared = 0;
};

/// Measures divergence of `client` from `server`.
DivergenceReport MeasureDivergence(const World& server, const World& client);

}  // namespace gamedb::replication
