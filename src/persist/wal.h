#pragma once

/// \file wal.h
/// Write-ahead log with per-record CRC framing. Recovery reads the longest
/// valid prefix: a torn or corrupted tail record (the normal crash artifact)
/// ends replay cleanly instead of poisoning it.
///
/// Record framing: fixed32 masked CRC-32C of payload | varint payload size |
/// payload bytes.

#include <string>
#include <vector>

#include "common/status.h"
#include "persist/storage.h"
#include "telemetry/sink.h"

namespace gamedb::persist {

/// Durability knobs for the writer.
struct WalOptions {
  /// Sync the log after every n-th appended record. 1 (the default) is
  /// sync-per-append — nothing acknowledged is ever lost; larger values
  /// group-commit, trading a window of loss for fewer fsyncs; 0 never
  /// syncs (durability left to the OS page cache).
  uint64_t sync_every_n = 1;
};

/// Appends CRC-framed records to a log file.
class WalWriter {
 public:
  WalWriter(Storage* storage, std::string file_name, WalOptions options = {})
      : storage_(storage),
        file_name_(std::move(file_name)),
        options_(options) {}

  /// Appends one record (and syncs per WalOptions::sync_every_n).
  Status Append(std::string_view record);

  /// Truncates the log (after a checkpoint supersedes it) and zeroes the
  /// per-epoch counters below. Cumulative totals across epochs belong to
  /// the caller (PersistenceMetrics).
  Status Reset();

  /// Bytes/records appended since the last Reset (current epoch).
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t records_appended() const { return records_appended_; }
  const std::string& file_name() const { return file_name_; }

  /// Attaches a telemetry sink: Append records "wal.append" / "wal.fsync"
  /// spans and counts syncs into "persist.fsyncs". Non-owning.
  void SetTelemetry(const telemetry::TelemetrySink& sink) {
    telemetry_ = sink;
    m_fsyncs_ = sink.metrics != nullptr
                    ? sink.metrics->GetCounter("persist.fsyncs")
                    : nullptr;
  }

 private:
  Storage* storage_;
  std::string file_name_;
  WalOptions options_;
  telemetry::TelemetrySink telemetry_;
  telemetry::Counter* m_fsyncs_ = nullptr;
  uint64_t bytes_appended_ = 0;
  uint64_t records_appended_ = 0;
  uint64_t appends_since_sync_ = 0;
};

/// Result of reading a log.
struct WalReadResult {
  std::vector<std::string> records;
  /// True when the file ended mid-record or with a CRC mismatch (records
  /// before that point are still valid and returned).
  bool torn_tail = false;
  uint64_t valid_bytes = 0;
};

/// Reads every valid record of `file_name`. A missing file yields zero
/// records (fresh server), not an error.
Result<WalReadResult> ReadWal(const Storage& storage,
                              const std::string& file_name);

}  // namespace gamedb::persist
