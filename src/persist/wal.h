#pragma once

/// \file wal.h
/// Write-ahead log with per-record CRC framing. Recovery reads the longest
/// valid prefix: a torn or corrupted tail record (the normal crash artifact)
/// ends replay cleanly instead of poisoning it.
///
/// Record framing: fixed32 masked CRC-32C of payload | varint payload size |
/// payload bytes.

#include <string>
#include <vector>

#include "common/status.h"
#include "persist/storage.h"

namespace gamedb::persist {

/// Appends CRC-framed records to a log file.
class WalWriter {
 public:
  WalWriter(Storage* storage, std::string file_name)
      : storage_(storage), file_name_(std::move(file_name)) {}

  /// Appends one record.
  Status Append(std::string_view record);

  /// Truncates the log (after a checkpoint supersedes it).
  Status Reset();

  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t records_appended() const { return records_appended_; }
  const std::string& file_name() const { return file_name_; }

 private:
  Storage* storage_;
  std::string file_name_;
  uint64_t bytes_appended_ = 0;
  uint64_t records_appended_ = 0;
};

/// Result of reading a log.
struct WalReadResult {
  std::vector<std::string> records;
  /// True when the file ended mid-record or with a CRC mismatch (records
  /// before that point are still valid and returned).
  bool torn_tail = false;
  uint64_t valid_bytes = 0;
};

/// Reads every valid record of `file_name`. A missing file yields zero
/// records (fresh server), not an error.
Result<WalReadResult> ReadWal(const Storage& storage,
                              const std::string& file_name);

}  // namespace gamedb::persist
