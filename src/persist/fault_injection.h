#pragma once

/// \file fault_injection.h
/// Fault-injecting decorator over any Storage backend. This is how the
/// recovery experiments simulate crashes: a process kill becomes "every
/// mutating op from point N on fails", and the classic crash artifacts
/// (torn tail append, media bit flip) are applied to whatever the backend
/// durably holds. Because it wraps the Storage interface, the exact same
/// crash-injection test runs against MemStorage and DiskStorage.

#include "persist/storage.h"

namespace gamedb::persist {

/// Wraps a Storage; forwards everything, optionally failing mutating ops
/// past an injected crash point.
class FaultInjectingStorage final : public Storage {
 public:
  explicit FaultInjectingStorage(Storage* base) : base_(base) {
    GAMEDB_CHECK(base_ != nullptr);
  }

  // Mutating ops consume the op budget and fail once crashed.
  Status Write(const std::string& name, std::string_view data) override;
  Status Append(const std::string& name, std::string_view data) override;
  Status Remove(const std::string& name) override;
  Status Sync(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;

  // Reads keep working after a crash so tests can inspect the post-crash
  // image through the same object.
  Status Read(const std::string& name, std::string* out) const override {
    return base_->Read(name, out);
  }
  bool Exists(const std::string& name) const override {
    return base_->Exists(name);
  }
  std::vector<std::string> List() const override { return base_->List(); }
  uint64_t TotalBytes() const override { return base_->TotalBytes(); }
  uint64_t syncs() const override { return base_->syncs(); }

  /// Injects a crash point: the first `n` mutating ops (counting from the
  /// ops already performed) succeed, every later one fails with IOError —
  /// the storage behaves as if the process died after op `ops()+n`.
  void FailAfter(uint64_t n) { fail_at_op_ = ops_ + n; }
  /// Clears the crash point (storage works again; ops keep counting).
  void ClearFailure() { fail_at_op_ = kNever; }

  /// Mutating ops attempted so far (including the failed ones).
  uint64_t ops() const { return ops_; }
  /// True once a mutating op has been failed by the injected crash point.
  bool crashed() const { return crashed_; }

  /// Simulates a torn tail write: drops the last `n` bytes of `name`.
  /// Applied directly to the wrapped storage (a crash artifact, not an
  /// op), so it works even after the crash point.
  void CorruptTail(const std::string& name, size_t n);
  /// Flips one byte at `offset` in `name` (media corruption).
  void FlipByte(const std::string& name, size_t offset);

 private:
  static constexpr uint64_t kNever = ~0ull;

  /// Consumes one op from the budget; error once past the crash point.
  Status NextOp();

  Storage* base_;
  uint64_t ops_ = 0;
  uint64_t fail_at_op_ = kNever;
  bool crashed_ = false;
};

}  // namespace gamedb::persist
