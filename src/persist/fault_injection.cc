#include "persist/fault_injection.h"

namespace gamedb::persist {

Status FaultInjectingStorage::NextOp() {
  if (ops_++ >= fail_at_op_) {
    crashed_ = true;
    return Status::IOError("injected crash");
  }
  return Status::OK();
}

Status FaultInjectingStorage::Write(const std::string& name,
                                    std::string_view data) {
  GAMEDB_RETURN_NOT_OK(NextOp());
  return base_->Write(name, data);
}

Status FaultInjectingStorage::Append(const std::string& name,
                                     std::string_view data) {
  GAMEDB_RETURN_NOT_OK(NextOp());
  return base_->Append(name, data);
}

Status FaultInjectingStorage::Remove(const std::string& name) {
  GAMEDB_RETURN_NOT_OK(NextOp());
  return base_->Remove(name);
}

Status FaultInjectingStorage::Sync(const std::string& name) {
  GAMEDB_RETURN_NOT_OK(NextOp());
  return base_->Sync(name);
}

Status FaultInjectingStorage::Rename(const std::string& from,
                                     const std::string& to) {
  GAMEDB_RETURN_NOT_OK(NextOp());
  return base_->Rename(from, to);
}

void FaultInjectingStorage::CorruptTail(const std::string& name, size_t n) {
  std::string data;
  if (!base_->Read(name, &data).ok()) return;
  data.resize(data.size() >= n ? data.size() - n : 0);
  base_->Write(name, data);
}

void FaultInjectingStorage::FlipByte(const std::string& name, size_t offset) {
  std::string data;
  if (!base_->Read(name, &data).ok() || offset >= data.size()) return;
  data[offset] = static_cast<char>(data[offset] ^ 0x5A);
  base_->Write(name, data);
}

}  // namespace gamedb::persist
