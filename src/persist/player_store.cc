#include "persist/player_store.h"

#include <algorithm>

#include "common/coding.h"
#include "common/macros.h"

namespace gamedb::persist {

bool PlayerRecord::operator==(const PlayerRecord& o) const {
  return id == o.id && name == o.name && level == o.level && gold == o.gold &&
         position == o.position && items == o.items &&
         guild_id == o.guild_id && rating == o.rating;
}

void EncodePlayerRecord(const PlayerRecord& rec, uint32_t version,
                        std::string* out) {
  GAMEDB_CHECK(version >= 1 && version <= kPlayerSchemaLatest);
  PutVarint64(out, version);
  PutVarintSigned64(out, rec.id);
  PutLengthPrefixed(out, rec.name);
  PutVarintSigned64(out, rec.level);
  PutVarintSigned64(out, rec.gold);
  PutFloat(out, rec.position.x);
  PutFloat(out, rec.position.y);
  PutFloat(out, rec.position.z);
  PutVarint64(out, rec.items.size());
  for (int32_t item : rec.items) PutVarintSigned64(out, item);
  if (version >= 2) PutVarintSigned64(out, rec.guild_id);
  if (version >= 3) PutDouble(out, rec.rating);
}

Status DecodePlayerRecord(std::string_view data, PlayerRecord* out,
                          uint32_t* decoded_version) {
  Decoder dec(data);
  uint64_t version = 0;
  GAMEDB_RETURN_NOT_OK(dec.GetVarint64(&version));
  if (version < 1 || version > kPlayerSchemaLatest) {
    return Status::SchemaMismatch("unknown player record version " +
                                  std::to_string(version));
  }
  PlayerRecord rec;
  int64_t tmp = 0;
  GAMEDB_RETURN_NOT_OK(dec.GetVarintSigned64(&rec.id));
  std::string_view name;
  GAMEDB_RETURN_NOT_OK(dec.GetLengthPrefixed(&name));
  rec.name = std::string(name);
  GAMEDB_RETURN_NOT_OK(dec.GetVarintSigned64(&tmp));
  rec.level = static_cast<int32_t>(tmp);
  GAMEDB_RETURN_NOT_OK(dec.GetVarintSigned64(&rec.gold));
  GAMEDB_RETURN_NOT_OK(dec.GetFloat(&rec.position.x));
  GAMEDB_RETURN_NOT_OK(dec.GetFloat(&rec.position.y));
  GAMEDB_RETURN_NOT_OK(dec.GetFloat(&rec.position.z));
  uint64_t item_count = 0;
  GAMEDB_RETURN_NOT_OK(dec.GetVarint64(&item_count));
  rec.items.clear();
  for (uint64_t i = 0; i < item_count; ++i) {
    GAMEDB_RETURN_NOT_OK(dec.GetVarintSigned64(&tmp));
    rec.items.push_back(static_cast<int32_t>(tmp));
  }
  if (version >= 2) {
    GAMEDB_RETURN_NOT_OK(dec.GetVarintSigned64(&tmp));
    rec.guild_id = static_cast<int32_t>(tmp);
  }
  if (version >= 3) {
    GAMEDB_RETURN_NOT_OK(dec.GetDouble(&rec.rating));
  }
  if (!dec.empty()) return Status::Corruption("trailing record bytes");

  // Lazy upgrade: fill in post-`version` fields via the migration steps.
  GAMEDB_RETURN_NOT_OK(
      MigrationRegistry::Global().Upgrade(&rec, static_cast<uint32_t>(version)));
  *out = std::move(rec);
  if (decoded_version != nullptr) {
    *decoded_version = static_cast<uint32_t>(version);
  }
  return Status::OK();
}

MigrationRegistry& MigrationRegistry::Global() {
  static MigrationRegistry* registry = [] {
    auto* r = new MigrationRegistry();
    // v1 -> v2: introduce guilds; existing players are guildless.
    r->AddStep(1, [](PlayerRecord* rec) { rec->guild_id = -1; });
    // v2 -> v3: introduce matchmaking rating seeded from level.
    r->AddStep(2, [](PlayerRecord* rec) {
      rec->rating = 1000.0 + 25.0 * rec->level;
    });
    return r;
  }();
  return *registry;
}

void MigrationRegistry::AddStep(uint32_t from_version, Step step) {
  steps_[from_version] = std::move(step);
}

Status MigrationRegistry::Upgrade(PlayerRecord* rec,
                                  uint32_t from_version) const {
  for (uint32_t v = from_version; v < kPlayerSchemaLatest; ++v) {
    auto it = steps_.find(v);
    if (it == steps_.end()) {
      return Status::SchemaMismatch("no migration step from v" +
                                    std::to_string(v));
    }
    it->second(rec);
  }
  return Status::OK();
}

// --- StructuredPlayerStore --------------------------------------------------

Status StructuredPlayerStore::Put(const PlayerRecord& rec) {
  auto it = row_of_.find(rec.id);
  if (it != row_of_.end()) {
    size_t row = it->second;
    names_[row] = rec.name;
    levels_[row] = rec.level;
    golds_[row] = rec.gold;
    positions_[row] = rec.position;
    items_[row] = rec.items;
    guild_ids_[row] = rec.guild_id;
    ratings_[row] = rec.rating;
    return Status::OK();
  }
  row_of_.emplace(rec.id, ids_.size());
  ids_.push_back(rec.id);
  names_.push_back(rec.name);
  levels_.push_back(rec.level);
  golds_.push_back(rec.gold);
  positions_.push_back(rec.position);
  items_.push_back(rec.items);
  guild_ids_.push_back(rec.guild_id);
  ratings_.push_back(rec.rating);
  return Status::OK();
}

Result<PlayerRecord> StructuredPlayerStore::Get(int64_t id) {
  auto it = row_of_.find(id);
  if (it == row_of_.end()) return Status::NotFound("no player");
  size_t row = it->second;
  PlayerRecord rec;
  rec.id = id;
  rec.name = names_[row];
  rec.level = levels_[row];
  rec.gold = golds_[row];
  rec.position = positions_[row];
  rec.items = items_[row];
  rec.guild_id = guild_ids_[row];
  rec.rating = ratings_[row];
  return rec;
}

bool StructuredPlayerStore::Erase(int64_t id) {
  auto it = row_of_.find(id);
  if (it == row_of_.end()) return false;
  size_t row = it->second;
  size_t last = ids_.size() - 1;
  if (row != last) {
    ids_[row] = ids_[last];
    names_[row] = std::move(names_[last]);
    levels_[row] = levels_[last];
    golds_[row] = golds_[last];
    positions_[row] = positions_[last];
    items_[row] = std::move(items_[last]);
    guild_ids_[row] = guild_ids_[last];
    ratings_[row] = ratings_[last];
    row_of_[ids_[row]] = row;
  }
  ids_.pop_back();
  names_.pop_back();
  levels_.pop_back();
  golds_.pop_back();
  positions_.pop_back();
  items_.pop_back();
  guild_ids_.pop_back();
  ratings_.pop_back();
  row_of_.erase(it);
  return true;
}

double StructuredPlayerStore::SumGoldWhereLevelAtLeast(int32_t min_level) {
  // Tight columnar scan: touches two vectors only.
  double total = 0;
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i] >= min_level) total += static_cast<double>(golds_[i]);
  }
  return total;
}

std::vector<int64_t> StructuredPlayerStore::TopKByGold(size_t k) {
  std::vector<size_t> rows(ids_.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  k = std::min(k, rows.size());
  std::partial_sort(rows.begin(), rows.begin() + static_cast<long>(k),
                    rows.end(),
                    [&](size_t a, size_t b) { return golds_[a] > golds_[b]; });
  std::vector<int64_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(ids_[rows[i]]);
  return out;
}

size_t StructuredPlayerStore::ApproxBytes() const {
  size_t bytes = ids_.size() * (sizeof(int64_t) * 2 + sizeof(int32_t) * 2 +
                                sizeof(Vec3) + sizeof(double));
  for (const auto& n : names_) bytes += n.size();
  for (const auto& v : items_) bytes += v.size() * sizeof(int32_t);
  return bytes;
}

Result<uint64_t> StructuredPlayerStore::MigrateAll() {
  // Columns already exist at the latest schema; adding a column eagerly
  // means materializing a default for every row — model that cost.
  for (size_t i = 0; i < ids_.size(); ++i) {
    PlayerRecord probe;
    probe.level = levels_[i];
    MigrationRegistry::Global().Upgrade(&probe, kPlayerSchemaLatest - 1)
        .ok();
  }
  return static_cast<uint64_t>(ids_.size());
}

// --- BlobPlayerStore ----------------------------------------------------

Status BlobPlayerStore::Put(const PlayerRecord& rec) {
  std::string blob;
  EncodePlayerRecord(rec, write_version_, &blob);
  auto [it, inserted] = blobs_.insert_or_assign(rec.id, std::move(blob));
  (void)it;
  auto [vit, vinserted] = version_of_.insert_or_assign(rec.id, write_version_);
  (void)vit;
  if (write_version_ < kPlayerSchemaLatest && vinserted) ++stale_rows_;
  return Status::OK();
}

Result<PlayerRecord> BlobPlayerStore::Get(int64_t id) {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return Status::NotFound("no player");
  PlayerRecord rec;
  uint32_t version = 0;
  GAMEDB_RETURN_NOT_OK(DecodePlayerRecord(it->second, &rec, &version));
  if (version < kPlayerSchemaLatest) {
    // Lazy migration: rewrite at the latest version on first touch.
    std::string upgraded;
    EncodePlayerRecord(rec, kPlayerSchemaLatest, &upgraded);
    it->second = std::move(upgraded);
    version_of_[id] = kPlayerSchemaLatest;
    GAMEDB_DCHECK(stale_rows_ > 0);
    --stale_rows_;
  }
  return rec;
}

bool BlobPlayerStore::Erase(int64_t id) {
  auto vit = version_of_.find(id);
  if (vit != version_of_.end() && vit->second < kPlayerSchemaLatest) {
    --stale_rows_;
  }
  version_of_.erase(id);
  return blobs_.erase(id) > 0;
}

double BlobPlayerStore::SumGoldWhereLevelAtLeast(int32_t min_level) {
  // The blob tax: every row must be deserialized.
  double total = 0;
  for (const auto& [id, blob] : blobs_) {
    PlayerRecord rec;
    if (DecodePlayerRecord(blob, &rec).ok() && rec.level >= min_level) {
      total += static_cast<double>(rec.gold);
    }
  }
  return total;
}

std::vector<int64_t> BlobPlayerStore::TopKByGold(size_t k) {
  std::vector<std::pair<int64_t, int64_t>> gold_id;  // (gold, id)
  gold_id.reserve(blobs_.size());
  for (const auto& [id, blob] : blobs_) {
    PlayerRecord rec;
    if (DecodePlayerRecord(blob, &rec).ok()) {
      gold_id.emplace_back(rec.gold, id);
    }
  }
  k = std::min(k, gold_id.size());
  std::partial_sort(gold_id.begin(), gold_id.begin() + static_cast<long>(k),
                    gold_id.end(), std::greater<>());
  std::vector<int64_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(gold_id[i].second);
  return out;
}

size_t BlobPlayerStore::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& [id, blob] : blobs_) bytes += blob.size() + sizeof(id);
  return bytes;
}

Result<uint64_t> BlobPlayerStore::MigrateAll() {
  uint64_t touched = 0;
  for (auto& [id, blob] : blobs_) {
    uint32_t version = 0;
    PlayerRecord rec;
    GAMEDB_RETURN_NOT_OK(DecodePlayerRecord(blob, &rec, &version));
    if (version == kPlayerSchemaLatest) continue;
    std::string upgraded;
    EncodePlayerRecord(rec, kPlayerSchemaLatest, &upgraded);
    blob = std::move(upgraded);
    version_of_[id] = kPlayerSchemaLatest;
    ++touched;
  }
  stale_rows_ = 0;
  return touched;
}

// --- HybridPlayerStore ----------------------------------------------------

Status HybridPlayerStore::Put(const PlayerRecord& rec) {
  hot_[rec.id] = Hot{rec.level, rec.gold};
  std::string blob;
  EncodePlayerRecord(rec, kPlayerSchemaLatest, &blob);
  cold_blobs_[rec.id] = std::move(blob);
  return Status::OK();
}

Result<PlayerRecord> HybridPlayerStore::Get(int64_t id) {
  auto it = cold_blobs_.find(id);
  if (it == cold_blobs_.end()) return Status::NotFound("no player");
  PlayerRecord rec;
  GAMEDB_RETURN_NOT_OK(DecodePlayerRecord(it->second, &rec));
  // Hot columns are authoritative for their fields.
  const Hot& hot = hot_.at(id);
  rec.level = hot.level;
  rec.gold = hot.gold;
  return rec;
}

bool HybridPlayerStore::Erase(int64_t id) {
  cold_blobs_.erase(id);
  return hot_.erase(id) > 0;
}

double HybridPlayerStore::SumGoldWhereLevelAtLeast(int32_t min_level) {
  double total = 0;
  for (const auto& [id, hot] : hot_) {
    if (hot.level >= min_level) total += static_cast<double>(hot.gold);
  }
  return total;
}

std::vector<int64_t> HybridPlayerStore::TopKByGold(size_t k) {
  std::vector<std::pair<int64_t, int64_t>> gold_id;
  gold_id.reserve(hot_.size());
  for (const auto& [id, hot] : hot_) gold_id.emplace_back(hot.gold, id);
  k = std::min(k, gold_id.size());
  std::partial_sort(gold_id.begin(), gold_id.begin() + static_cast<long>(k),
                    gold_id.end(), std::greater<>());
  std::vector<int64_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(gold_id[i].second);
  return out;
}

size_t HybridPlayerStore::ApproxBytes() const {
  size_t bytes = hot_.size() * (sizeof(int64_t) + sizeof(Hot));
  for (const auto& [id, blob] : cold_blobs_) bytes += blob.size();
  return bytes;
}

Result<uint64_t> HybridPlayerStore::MigrateAll() {
  uint64_t touched = 0;
  for (auto& [id, blob] : cold_blobs_) {
    uint32_t version = 0;
    PlayerRecord rec;
    GAMEDB_RETURN_NOT_OK(DecodePlayerRecord(blob, &rec, &version));
    if (version == kPlayerSchemaLatest) continue;
    std::string upgraded;
    EncodePlayerRecord(rec, kPlayerSchemaLatest, &upgraded);
    blob = std::move(upgraded);
    ++touched;
  }
  return touched;
}

}  // namespace gamedb::persist
