#include "persist/record.h"

#include "common/coding.h"

namespace gamedb::persist {

namespace {

void EncodeTxn(const txn::GameTxn& t, std::string* out) {
  out->push_back(static_cast<char>(t.type));
  PutFixed64(out, t.a.Raw());
  PutFixed64(out, t.b.Raw());
  PutFloat(out, t.amount);
  PutFloat(out, t.dest.x);
  PutFloat(out, t.dest.y);
  PutFloat(out, t.dest.z);
  PutVarint64(out, t.extra.size());
  for (EntityId e : t.extra) PutFixed64(out, e.Raw());
}

Status DecodeTxn(Decoder* dec, txn::GameTxn* t) {
  std::string_view type_byte;
  GAMEDB_RETURN_NOT_OK(dec->GetRaw(1, &type_byte));
  uint8_t raw_type = static_cast<uint8_t>(type_byte[0]);
  if (raw_type > static_cast<uint8_t>(txn::TxnType::kAoe)) {
    return Status::Corruption("bad txn type tag");
  }
  t->type = static_cast<txn::TxnType>(raw_type);
  uint64_t a = 0, b = 0;
  GAMEDB_RETURN_NOT_OK(dec->GetFixed64(&a));
  GAMEDB_RETURN_NOT_OK(dec->GetFixed64(&b));
  t->a = EntityId::FromRaw(a);
  t->b = EntityId::FromRaw(b);
  GAMEDB_RETURN_NOT_OK(dec->GetFloat(&t->amount));
  GAMEDB_RETURN_NOT_OK(dec->GetFloat(&t->dest.x));
  GAMEDB_RETURN_NOT_OK(dec->GetFloat(&t->dest.y));
  GAMEDB_RETURN_NOT_OK(dec->GetFloat(&t->dest.z));
  uint64_t extra = 0;
  GAMEDB_RETURN_NOT_OK(dec->GetVarint64(&extra));
  t->extra.clear();
  for (uint64_t i = 0; i < extra; ++i) {
    uint64_t raw = 0;
    GAMEDB_RETURN_NOT_OK(dec->GetFixed64(&raw));
    t->extra.push_back(EntityId::FromRaw(raw));
  }
  return Status::OK();
}

}  // namespace

void EncodeLogRecord(const LogRecord& rec, std::string* out) {
  out->push_back(static_cast<char>(rec.type));
  PutVarint64(out, rec.tick);
  switch (rec.type) {
    case LogRecordType::kTxn:
      EncodeTxn(rec.txn, out);
      break;
    case LogRecordType::kEvent:
      PutDouble(out, rec.importance);
      PutLengthPrefixed(out, rec.label);
      break;
    case LogRecordType::kTickMark:
      break;
  }
}

Status DecodeLogRecord(std::string_view data, LogRecord* out) {
  Decoder dec(data);
  std::string_view type_byte;
  GAMEDB_RETURN_NOT_OK(dec.GetRaw(1, &type_byte));
  uint8_t raw = static_cast<uint8_t>(type_byte[0]);
  if (raw < 1 || raw > 3) return Status::Corruption("bad log record type");
  out->type = static_cast<LogRecordType>(raw);
  GAMEDB_RETURN_NOT_OK(dec.GetVarint64(&out->tick));
  switch (out->type) {
    case LogRecordType::kTxn:
      GAMEDB_RETURN_NOT_OK(DecodeTxn(&dec, &out->txn));
      break;
    case LogRecordType::kEvent: {
      GAMEDB_RETURN_NOT_OK(dec.GetDouble(&out->importance));
      std::string_view label;
      GAMEDB_RETURN_NOT_OK(dec.GetLengthPrefixed(&label));
      out->label = std::string(label);
      break;
    }
    case LogRecordType::kTickMark:
      break;
  }
  if (!dec.empty()) return Status::Corruption("trailing bytes in log record");
  return Status::OK();
}

}  // namespace gamedb::persist
