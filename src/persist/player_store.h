#pragma once

/// \file player_store.h
/// The legacy-schema experiment (E9). The tutorial: long-lived MMOs keep
/// adding features that need schema changes, and "they often choose to
/// write data as unstructured 'blobs' into a single attribute, so that they
/// can preserve their old schemas" [8]. This module implements both ends of
/// that trade plus the hybrid production systems converge on:
///  - StructuredPlayerStore: typed columns; queryable; migrations touch
///    every row (eager).
///  - BlobPlayerStore: one version-tagged blob per player; schema changes
///    are free at write time, reads lazily upgrade; scans must deserialize
///    the world.
///  - HybridPlayerStore: hot fields as columns, long tail as blob.
///
/// The record schema itself is versioned (v1 -> v2 adds guild_id, v3 adds
/// rating) with a migration registry applying per-version upgrade steps.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"

namespace gamedb::persist {

/// Latest schema version.
inline constexpr uint32_t kPlayerSchemaLatest = 3;

/// A player row at the latest schema.
struct PlayerRecord {
  int64_t id = 0;
  std::string name;
  int32_t level = 1;
  int64_t gold = 0;
  Vec3 position;
  std::vector<int32_t> items;   // inventory item ids
  // v2:
  int32_t guild_id = -1;
  // v3:
  double rating = 1500.0;

  bool operator==(const PlayerRecord& o) const;
};

/// Serializes at an explicit schema version (v1/v2 writers drop the newer
/// fields, exactly like an old binary writing an old row).
void EncodePlayerRecord(const PlayerRecord& rec, uint32_t version,
                        std::string* out);

/// Decodes any version, upgrading to the latest via the migration steps.
/// `decoded_version` reports the on-disk version encountered.
Status DecodePlayerRecord(std::string_view data, PlayerRecord* out,
                          uint32_t* decoded_version = nullptr);

/// Per-version upgrade steps (v1->v2, v2->v3, ...). Exposed so tests and
/// the live-migration bench can count/override work.
class MigrationRegistry {
 public:
  using Step = std::function<void(PlayerRecord*)>;

  /// The process-wide registry with the standard steps installed.
  static MigrationRegistry& Global();

  /// Registers the step upgrading `from_version` -> from_version + 1.
  void AddStep(uint32_t from_version, Step step);

  /// Applies steps from `from_version` up to kPlayerSchemaLatest.
  Status Upgrade(PlayerRecord* rec, uint32_t from_version) const;

 private:
  std::map<uint32_t, Step> steps_;
};

/// Query/update surface shared by the three layouts.
class PlayerStore {
 public:
  virtual ~PlayerStore() = default;
  virtual const char* Name() const = 0;

  /// Inserts or overwrites a record.
  virtual Status Put(const PlayerRecord& rec) = 0;
  /// Point lookup.
  virtual Result<PlayerRecord> Get(int64_t id) = 0;
  virtual bool Erase(int64_t id) = 0;
  virtual size_t Size() const = 0;

  // Analytical queries (the "database support" blobs sacrifice):
  /// Sum of gold over players with level >= min_level.
  virtual double SumGoldWhereLevelAtLeast(int32_t min_level) = 0;
  /// Ids of the k richest players (descending gold).
  virtual std::vector<int64_t> TopKByGold(size_t k) = 0;

  /// Bytes of storage used by the payload (layout footprint comparison).
  virtual size_t ApproxBytes() const = 0;

  /// Eagerly rewrites every row at the latest schema; returns rows touched.
  /// For BlobPlayerStore this is the optional background sweep that ends
  /// the lazy-migration period.
  virtual Result<uint64_t> MigrateAll() = 0;
};

/// Typed-column layout.
class StructuredPlayerStore final : public PlayerStore {
 public:
  const char* Name() const override { return "structured"; }
  Status Put(const PlayerRecord& rec) override;
  Result<PlayerRecord> Get(int64_t id) override;
  bool Erase(int64_t id) override;
  size_t Size() const override { return ids_.size(); }
  double SumGoldWhereLevelAtLeast(int32_t min_level) override;
  std::vector<int64_t> TopKByGold(size_t k) override;
  size_t ApproxBytes() const override;
  Result<uint64_t> MigrateAll() override;

 private:
  // Parallel columns; row i across all vectors is one player.
  std::vector<int64_t> ids_;
  std::vector<std::string> names_;
  std::vector<int32_t> levels_;
  std::vector<int64_t> golds_;
  std::vector<Vec3> positions_;
  std::vector<std::vector<int32_t>> items_;
  std::vector<int32_t> guild_ids_;
  std::vector<double> ratings_;
  std::unordered_map<int64_t, size_t> row_of_;
};

/// Version-tagged blob-per-player layout.
class BlobPlayerStore final : public PlayerStore {
 public:
  /// \param write_version schema version used for Put (old binaries write
  ///        old versions; reads upgrade lazily).
  explicit BlobPlayerStore(uint32_t write_version = kPlayerSchemaLatest)
      : write_version_(write_version) {}

  const char* Name() const override { return "blob"; }
  Status Put(const PlayerRecord& rec) override;
  Result<PlayerRecord> Get(int64_t id) override;
  bool Erase(int64_t id) override;
  size_t Size() const override { return blobs_.size(); }
  double SumGoldWhereLevelAtLeast(int32_t min_level) override;
  std::vector<int64_t> TopKByGold(size_t k) override;
  size_t ApproxBytes() const override;
  Result<uint64_t> MigrateAll() override;

  /// Rows still stored at pre-latest versions (lazy-migration progress).
  uint64_t stale_rows() const { return stale_rows_; }

 private:
  uint32_t write_version_;
  std::unordered_map<int64_t, std::string> blobs_;
  std::unordered_map<int64_t, uint32_t> version_of_;
  uint64_t stale_rows_ = 0;
};

/// Hot columns (level, gold) + cold blob for everything else.
class HybridPlayerStore final : public PlayerStore {
 public:
  const char* Name() const override { return "hybrid"; }
  Status Put(const PlayerRecord& rec) override;
  Result<PlayerRecord> Get(int64_t id) override;
  bool Erase(int64_t id) override;
  size_t Size() const override { return hot_.size(); }
  double SumGoldWhereLevelAtLeast(int32_t min_level) override;
  std::vector<int64_t> TopKByGold(size_t k) override;
  size_t ApproxBytes() const override;
  Result<uint64_t> MigrateAll() override;

 private:
  struct Hot {
    int32_t level;
    int64_t gold;
  };
  std::unordered_map<int64_t, Hot> hot_;
  std::unordered_map<int64_t, std::string> cold_blobs_;
};

}  // namespace gamedb::persist
