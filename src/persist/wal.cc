#include "persist/wal.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace gamedb::persist {

Status WalWriter::Append(std::string_view record) {
  std::string framed;
  framed.reserve(record.size() + 9);
  PutFixed32(&framed, MaskCrc(Crc32c(record.data(), record.size())));
  PutVarint64(&framed, record.size());
  framed.append(record.data(), record.size());
  {
    telemetry::TraceSpan span(telemetry_.tracer, "wal.append");
    GAMEDB_RETURN_NOT_OK(storage_->Append(file_name_, framed));
  }
  bytes_appended_ += framed.size();
  ++records_appended_;
  // Separate Append + Sync ops: on DiskStorage this reopens the file for
  // the fsync, but it keeps the two distinct crash points (record landed /
  // record durable) injectable, which the recovery sweep depends on.
  if (options_.sync_every_n > 0 &&
      ++appends_since_sync_ >= options_.sync_every_n) {
    telemetry::TraceSpan span(telemetry_.tracer, "wal.fsync");
    GAMEDB_RETURN_NOT_OK(storage_->Sync(file_name_));
    appends_since_sync_ = 0;
    if (m_fsyncs_ != nullptr) m_fsyncs_->Increment();
  }
  return Status::OK();
}

Status WalWriter::Reset() {
  GAMEDB_RETURN_NOT_OK(storage_->Write(file_name_, ""));
  if (options_.sync_every_n > 0) {
    GAMEDB_RETURN_NOT_OK(storage_->Sync(file_name_));
  }
  bytes_appended_ = 0;
  records_appended_ = 0;
  appends_since_sync_ = 0;
  return Status::OK();
}

Result<WalReadResult> ReadWal(const Storage& storage,
                              const std::string& file_name) {
  WalReadResult out;
  std::string data;
  Status st = storage.Read(file_name, &data);
  if (st.IsNotFound()) return out;  // fresh log
  GAMEDB_RETURN_NOT_OK(st);

  Decoder dec(data);
  uint64_t consumed = 0;
  while (!dec.empty()) {
    Decoder attempt = dec;  // copy so a torn record doesn't consume
    uint32_t masked = 0;
    uint64_t size = 0;
    std::string_view payload;
    if (!attempt.GetFixed32(&masked).ok() ||
        !attempt.GetVarint64(&size).ok() ||
        !attempt.GetRaw(static_cast<size_t>(size), &payload).ok()) {
      out.torn_tail = true;
      break;
    }
    if (UnmaskCrc(masked) != Crc32c(payload.data(), payload.size())) {
      out.torn_tail = true;
      break;
    }
    out.records.emplace_back(payload);
    consumed = data.size() - attempt.remaining();
    dec = attempt;
  }
  out.valid_bytes = consumed;
  return out;
}

}  // namespace gamedb::persist
