#pragma once

/// \file checkpoint.h
/// Snapshot checkpoints plus the checkpointing *policies* of E8.
///
/// Games keep an in-memory world and only periodically write it out; the
/// tutorial reports production intervals "as far as 10 minutes apart" [8]
/// and calls for intelligent checkpointing tied to important events. The
/// policies here decide *when* to spend a checkpoint; the store handles
/// atomic write + fallback-on-corruption load.
///
/// Atomicity protocol: a checkpoint is written to "ckpt-<tick>.tmp",
/// synced, then renamed to its final name, so a crash mid-write leaves an
/// orphan .tmp (ignored by recovery, collected by the next GC) and can
/// never shadow or tear a previously valid image.

#include <memory>
#include <string>

#include "common/status.h"
#include "core/serialize.h"
#include "persist/storage.h"

namespace gamedb::persist {

/// Writes and loads world snapshot files ("ckpt-<tick>"), keeping the most
/// recent `keep` images.
class CheckpointStore {
 public:
  explicit CheckpointStore(Storage* storage, size_t keep = 2)
      : storage_(storage), keep_(keep) {}

  /// Serializes `world` as the checkpoint for its current tick.
  Status WriteCheckpoint(const World& world, uint64_t* bytes_out = nullptr);

  /// Loads the newest checkpoint that passes CRC validation into `world`;
  /// corrupt images fall back to the next older one. Returns the tick of
  /// the loaded checkpoint; NotFound when none is loadable.
  Result<uint64_t> LoadLatest(World* world) const;

  /// Ticks of all stored checkpoints (ascending).
  std::vector<uint64_t> CheckpointTicks() const;

  uint64_t checkpoints_written() const { return checkpoints_written_; }

 private:
  std::string NameFor(uint64_t tick) const;
  void GarbageCollect();

  Storage* storage_;
  size_t keep_;
  uint64_t checkpoints_written_ = 0;
};

/// Per-tick observation handed to a policy.
struct TickObservation {
  uint64_t tick = 0;
  uint64_t ticks_since_checkpoint = 0;
  /// Importance accumulated since the last checkpoint.
  double pending_importance = 0.0;
  /// Importance of the single largest pending event.
  double max_pending_event = 0.0;
};

/// Decides when to checkpoint.
class CheckpointPolicy {
 public:
  virtual ~CheckpointPolicy() = default;
  virtual const char* Name() const = 0;
  virtual bool ShouldCheckpoint(const TickObservation& obs) = 0;
};

/// Wall-clock style: every `interval` ticks (the industry default the
/// tutorial critiques).
class PeriodicPolicy final : public CheckpointPolicy {
 public:
  explicit PeriodicPolicy(uint64_t interval_ticks)
      : interval_(interval_ticks) {}
  const char* Name() const override { return "periodic"; }
  bool ShouldCheckpoint(const TickObservation& obs) override {
    return obs.ticks_since_checkpoint >= interval_;
  }

 private:
  uint64_t interval_;
};

/// Intelligent: checkpoint when enough importance has accumulated, or
/// immediately after any single event big enough that a player would riot
/// over losing it (epic loot, boss kill).
class ImportancePolicy final : public CheckpointPolicy {
 public:
  ImportancePolicy(double accumulate_threshold, double urgent_threshold)
      : accumulate_(accumulate_threshold), urgent_(urgent_threshold) {}
  const char* Name() const override { return "intelligent"; }
  bool ShouldCheckpoint(const TickObservation& obs) override {
    return obs.pending_importance >= accumulate_ ||
           obs.max_pending_event >= urgent_;
  }

 private:
  double accumulate_;
  double urgent_;
};

/// Hybrid: intelligent triggers plus a periodic upper bound on staleness.
class HybridPolicy final : public CheckpointPolicy {
 public:
  HybridPolicy(uint64_t max_interval_ticks, double accumulate_threshold,
               double urgent_threshold)
      : periodic_(max_interval_ticks),
        importance_(accumulate_threshold, urgent_threshold) {}
  const char* Name() const override { return "hybrid"; }
  bool ShouldCheckpoint(const TickObservation& obs) override {
    return periodic_.ShouldCheckpoint(obs) ||
           importance_.ShouldCheckpoint(obs);
  }

 private:
  PeriodicPolicy periodic_;
  ImportancePolicy importance_;
};

}  // namespace gamedb::persist
