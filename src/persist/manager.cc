#include "persist/manager.h"

namespace gamedb::persist {

namespace {
constexpr char kWalName[] = "wal";
}  // namespace

PersistenceManager::PersistenceManager(
    Storage* storage, std::unique_ptr<CheckpointPolicy> policy,
    PersistenceOptions options)
    : storage_(storage),
      policy_(std::move(policy)),
      options_(options),
      checkpoints_(storage, options.keep_checkpoints),
      wal_(storage, kWalName, options.wal) {
  GAMEDB_CHECK(policy_ != nullptr);
  wal_.SetTelemetry(options_.telemetry);
  if (options_.telemetry.metrics != nullptr) {
    telemetry::MetricsRegistry* reg = options_.telemetry.metrics;
    m_checkpoints_ = reg->GetCounter("persist.checkpoints");
    m_checkpoint_bytes_ = reg->GetCounter("persist.checkpoint_bytes");
    m_wal_records_ = reg->GetCounter("persist.wal_records");
    m_wal_bytes_ = reg->GetCounter("persist.wal_bytes");
  }
}

Status PersistenceManager::OnTxn(const txn::GameTxn& t, uint64_t tick) {
  if (options_.mode != DurabilityMode::kWalAndCheckpoint) return Status::OK();
  LogRecord rec;
  rec.type = LogRecordType::kTxn;
  rec.tick = tick;
  rec.txn = t;
  std::string encoded;
  EncodeLogRecord(rec, &encoded);
  GAMEDB_RETURN_NOT_OK(wal_.Append(encoded));
  ++metrics_.wal_records;
  metrics_.wal_bytes += encoded.size();
  if (m_wal_records_ != nullptr) {
    m_wal_records_->Increment();
    m_wal_bytes_->Add(encoded.size());
  }
  return Status::OK();
}

Status PersistenceManager::OnEvent(uint64_t tick, double importance,
                                   const std::string& label) {
  pending_importance_ += importance;
  max_pending_event_ = std::max(max_pending_event_, importance);
  metrics_.importance_seen += importance;
  if (options_.mode != DurabilityMode::kWalAndCheckpoint) return Status::OK();
  LogRecord rec;
  rec.type = LogRecordType::kEvent;
  rec.tick = tick;
  rec.importance = importance;
  rec.label = label;
  std::string encoded;
  EncodeLogRecord(rec, &encoded);
  GAMEDB_RETURN_NOT_OK(wal_.Append(encoded));
  ++metrics_.wal_records;
  metrics_.wal_bytes += encoded.size();
  if (m_wal_records_ != nullptr) {
    m_wal_records_->Increment();
    m_wal_bytes_->Add(encoded.size());
  }
  return Status::OK();
}

Result<bool> PersistenceManager::OnTickEnd(const World& world) {
  TickObservation obs;
  obs.tick = world.tick();
  obs.ticks_since_checkpoint = world.tick() - last_checkpoint_tick_;
  obs.pending_importance = pending_importance_;
  obs.max_pending_event = max_pending_event_;
  if (!policy_->ShouldCheckpoint(obs)) return false;
  uint64_t bytes = 0;
  {
    telemetry::TraceSpan span(options_.telemetry.tracer,
                              "persist.checkpoint");
    GAMEDB_RETURN_NOT_OK(checkpoints_.WriteCheckpoint(world, &bytes));
  }
  GAMEDB_RETURN_NOT_OK(AfterCheckpoint(world, bytes));
  return true;
}

Status PersistenceManager::ForceCheckpoint(const World& world) {
  uint64_t bytes = 0;
  {
    telemetry::TraceSpan span(options_.telemetry.tracer,
                              "persist.checkpoint");
    GAMEDB_RETURN_NOT_OK(checkpoints_.WriteCheckpoint(world, &bytes));
  }
  return AfterCheckpoint(world, bytes);
}

Status PersistenceManager::AfterCheckpoint(const World& world,
                                           uint64_t bytes) {
  ++metrics_.checkpoints;
  metrics_.checkpoint_bytes += bytes;
  if (m_checkpoints_ != nullptr) {
    m_checkpoints_->Increment();
    m_checkpoint_bytes_->Add(bytes);
  }
  last_checkpoint_tick_ = world.tick();
  pending_importance_ = 0.0;
  max_pending_event_ = 0.0;
  // The checkpoint supersedes the log — in *both* modes. A kCheckpointOnly
  // run must also clear any WAL a previous kWalAndCheckpoint incarnation
  // left behind, or recovery replays those stale records over its images.
  if (options_.mode == DurabilityMode::kWalAndCheckpoint) {
    GAMEDB_RETURN_NOT_OK(wal_.Reset());
  } else if (storage_->Exists(wal_.file_name())) {
    GAMEDB_RETURN_NOT_OK(storage_->Remove(wal_.file_name()));
  }
  return Status::OK();
}

Result<RecoveryOutcome> PersistenceManager::Recover(const Storage& storage,
                                                    World* world) {
  RecoveryOutcome out;
  CheckpointStore checkpoints(const_cast<Storage*>(&storage));
  GAMEDB_ASSIGN_OR_RETURN(out.checkpoint_tick,
                          checkpoints.LoadLatest(world));
  out.recovered_tick = out.checkpoint_tick;

  GAMEDB_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(storage, kWalName));
  out.wal_torn_tail = wal.torn_tail;
  for (const std::string& raw : wal.records) {
    LogRecord rec;
    GAMEDB_RETURN_NOT_OK(DecodeLogRecord(raw, &rec));
    if (rec.tick <= out.checkpoint_tick) continue;  // already in snapshot
    if (rec.type == LogRecordType::kTxn) {
      txn::ApplyTxn(world, rec.txn);
      ++out.replayed_txns;
    }
    out.recovered_tick = std::max(out.recovered_tick, rec.tick);
  }
  world->SetTick(out.recovered_tick);
  return out;
}

}  // namespace gamedb::persist
