#pragma once

/// \file record.h
/// Log record vocabulary of the persistence tier: transactions (for WAL
/// replay) and important-event markers (the input to intelligent
/// checkpointing — "writing to the database when important events are
/// completed, and not just at regular intervals").

#include <string>

#include "common/status.h"
#include "txn/txn.h"

namespace gamedb::persist {

/// What a log record describes.
enum class LogRecordType : uint8_t {
  kTxn = 1,        // a GameTxn to replay
  kEvent = 2,      // an important game event (boss kill, loot drop)
  kTickMark = 3,   // end-of-tick marker
};

/// One log record.
struct LogRecord {
  LogRecordType type = LogRecordType::kTickMark;
  uint64_t tick = 0;
  /// Importance weight for kEvent (see ImportancePolicy).
  double importance = 0.0;
  /// Event label (kEvent) for diagnostics.
  std::string label;
  /// The transaction (kTxn).
  txn::GameTxn txn;
};

/// Serializes a record.
void EncodeLogRecord(const LogRecord& rec, std::string* out);
/// Parses a record (errors on truncation / unknown type tags).
Status DecodeLogRecord(std::string_view data, LogRecord* out);

}  // namespace gamedb::persist
