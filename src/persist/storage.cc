#include "persist/storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <fstream>

#include "common/macros.h"

namespace gamedb::persist {

Status MemStorage::Write(const std::string& name, std::string_view data) {
  files_[name] = std::string(data);
  bytes_written_ += data.size();
  return Status::OK();
}

Status MemStorage::Append(const std::string& name, std::string_view data) {
  files_[name].append(data);
  bytes_written_ += data.size();
  return Status::OK();
}

Status MemStorage::Read(const std::string& name, std::string* out) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no file: " + name);
  *out = it->second;
  return Status::OK();
}

Status MemStorage::Remove(const std::string& name) {
  files_.erase(name);
  return Status::OK();
}

Status MemStorage::Sync(const std::string& name) {
  if (files_.count(name) == 0) return Status::NotFound("no file: " + name);
  ++syncs_;
  return Status::OK();
}

Status MemStorage::Rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no file: " + from);
  if (from == to) return Status::OK();  // POSIX: self-rename is a no-op
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

bool MemStorage::Exists(const std::string& name) const {
  return files_.count(name) > 0;
}

std::vector<std::string> MemStorage::List() const {
  std::vector<std::string> out;
  for (const auto& [name, data] : files_) out.push_back(name);
  return out;
}

uint64_t MemStorage::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [name, data] : files_) total += data.size();
  return total;
}

DiskStorage::DiskStorage(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  GAMEDB_CHECK(!ec);
}

std::string DiskStorage::PathOf(const std::string& name) const {
  return dir_ + "/" + name;
}

Status DiskStorage::SyncDir() {
  int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IOError("cannot open dir " + dir_);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("fsync failed: " + dir_);
  return Status::OK();
}

Status DiskStorage::WriteFd(const std::string& name, std::string_view data,
                            int flags) {
  const std::string path = PathOf(name);
  std::error_code stat_ec;
  const bool existed = std::filesystem::exists(path, stat_ec);
  int fd = ::open(path.c_str(), flags | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError("cannot open " + name);
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("write failed: " + name);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::close(fd) != 0) return Status::IOError("close failed: " + name);
  // A new directory entry is only durable once the directory itself is
  // synced; without this, a power loss can make a fully-synced file vanish.
  if (!existed) return SyncDir();
  return Status::OK();
}

Status DiskStorage::Write(const std::string& name, std::string_view data) {
  return WriteFd(name, data, O_TRUNC);
}

Status DiskStorage::Append(const std::string& name, std::string_view data) {
  return WriteFd(name, data, O_APPEND);
}

Status DiskStorage::Read(const std::string& name, std::string* out) const {
  std::ifstream f(PathOf(name), std::ios::binary);
  if (!f) return Status::NotFound("no file: " + name);
  out->assign(std::istreambuf_iterator<char>(f),
              std::istreambuf_iterator<char>());
  return Status::OK();
}

Status DiskStorage::Remove(const std::string& name) {
  std::error_code ec;
  if (std::filesystem::remove(PathOf(name), ec)) {
    return SyncDir();  // make the unlink durable (stale-WAL removal)
  }
  return Status::OK();
}

Status DiskStorage::Sync(const std::string& name) {
  int fd = ::open(PathOf(name).c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no file: " + name);
    return Status::IOError("cannot open " + name);
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("fsync failed: " + name);
  ++syncs_;
  return Status::OK();
}

Status DiskStorage::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(PathOf(from), PathOf(to), ec);
  if (ec == std::errc::no_such_file_or_directory) {
    return Status::NotFound("no file: " + from);
  }
  if (ec) return Status::IOError("rename failed: " + from + " -> " + to);
  return SyncDir();  // the rename is only durable once the dirent is
}

bool DiskStorage::Exists(const std::string& name) const {
  return std::filesystem::exists(PathOf(name));
}

std::vector<std::string> DiskStorage::List() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    // error_code overloads: a file removed mid-iteration (checkpoint GC
    // racing a reader) must be skipped, not thrown out of the tier.
    std::error_code entry_ec;
    if (entry.is_regular_file(entry_ec) && !entry_ec) {
      out.push_back(entry.path().filename().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t DiskStorage::TotalBytes() const {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
    uint64_t size = entry.file_size(entry_ec);
    if (entry_ec) continue;  // removed between readdir and stat
    total += size;
  }
  return total;
}

}  // namespace gamedb::persist
