#include "persist/storage.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/macros.h"

namespace gamedb::persist {

Status MemStorage::Write(const std::string& name, std::string_view data) {
  files_[name] = std::string(data);
  bytes_written_ += data.size();
  return Status::OK();
}

Status MemStorage::Append(const std::string& name, std::string_view data) {
  files_[name].append(data);
  bytes_written_ += data.size();
  return Status::OK();
}

Status MemStorage::Read(const std::string& name, std::string* out) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no file: " + name);
  *out = it->second;
  return Status::OK();
}

Status MemStorage::Remove(const std::string& name) {
  files_.erase(name);
  return Status::OK();
}

bool MemStorage::Exists(const std::string& name) const {
  return files_.count(name) > 0;
}

std::vector<std::string> MemStorage::List() const {
  std::vector<std::string> out;
  for (const auto& [name, data] : files_) out.push_back(name);
  return out;
}

uint64_t MemStorage::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [name, data] : files_) total += data.size();
  return total;
}

void MemStorage::CorruptTail(const std::string& name, size_t n) {
  auto it = files_.find(name);
  if (it == files_.end()) return;
  std::string& data = it->second;
  data.resize(data.size() >= n ? data.size() - n : 0);
}

void MemStorage::FlipByte(const std::string& name, size_t offset) {
  auto it = files_.find(name);
  if (it == files_.end() || offset >= it->second.size()) return;
  it->second[offset] = static_cast<char>(it->second[offset] ^ 0x5A);
}

DiskStorage::DiskStorage(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  GAMEDB_CHECK(!ec);
}

std::string DiskStorage::PathOf(const std::string& name) const {
  return dir_ + "/" + name;
}

Status DiskStorage::Write(const std::string& name, std::string_view data) {
  std::ofstream f(PathOf(name), std::ios::binary | std::ios::trunc);
  if (!f) return Status::IOError("cannot open " + name);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!f) return Status::IOError("write failed: " + name);
  return Status::OK();
}

Status DiskStorage::Append(const std::string& name, std::string_view data) {
  std::ofstream f(PathOf(name), std::ios::binary | std::ios::app);
  if (!f) return Status::IOError("cannot open " + name);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!f) return Status::IOError("append failed: " + name);
  return Status::OK();
}

Status DiskStorage::Read(const std::string& name, std::string* out) const {
  std::ifstream f(PathOf(name), std::ios::binary);
  if (!f) return Status::NotFound("no file: " + name);
  out->assign(std::istreambuf_iterator<char>(f),
              std::istreambuf_iterator<char>());
  return Status::OK();
}

Status DiskStorage::Remove(const std::string& name) {
  std::error_code ec;
  std::filesystem::remove(PathOf(name), ec);
  return Status::OK();
}

bool DiskStorage::Exists(const std::string& name) const {
  return std::filesystem::exists(PathOf(name));
}

std::vector<std::string> DiskStorage::List() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file()) out.push_back(entry.path().filename());
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t DiskStorage::TotalBytes() const {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

}  // namespace gamedb::persist
