#include "persist/checkpoint.h"

#include <algorithm>

#include "common/string_util.h"

namespace gamedb::persist {

namespace {
constexpr char kTmpSuffix[] = ".tmp";
}  // namespace

std::string CheckpointStore::NameFor(uint64_t tick) const {
  // Zero-padded so lexicographic order == numeric order.
  return StringFormat("ckpt-%020llu", static_cast<unsigned long long>(tick));
}

namespace {
/// True for a final (non-.tmp) checkpoint name; extracts its tick.
/// Unsigned parse: the tick is a full uint64, so a signed parse would
/// silently drop any checkpoint past INT64_MAX.
bool TickOf(const std::string& name, uint64_t* tick) {
  if (!StartsWith(name, "ckpt-")) return false;
  if (EndsWith(name, kTmpSuffix)) return false;  // in-flight/orphaned write
  return ParseUint64(name.substr(5), tick);
}
}  // namespace

std::vector<uint64_t> CheckpointStore::CheckpointTicks() const {
  std::vector<uint64_t> ticks;
  uint64_t tick = 0;
  for (const std::string& name : storage_->List()) {
    if (TickOf(name, &tick)) ticks.push_back(tick);
  }
  std::sort(ticks.begin(), ticks.end());
  return ticks;
}

Status CheckpointStore::WriteCheckpoint(const World& world,
                                        uint64_t* bytes_out) {
  std::string snapshot;
  EncodeWorldSnapshot(world, &snapshot);
  // Write-sync-rename so a torn checkpoint can never shadow a valid older
  // one: until the rename lands, recovery only sees the previous images.
  const std::string name = NameFor(world.tick());
  const std::string tmp = name + kTmpSuffix;
  GAMEDB_RETURN_NOT_OK(storage_->Write(tmp, snapshot));
  GAMEDB_RETURN_NOT_OK(storage_->Sync(tmp));
  GAMEDB_RETURN_NOT_OK(storage_->Rename(tmp, name));
  ++checkpoints_written_;
  if (bytes_out != nullptr) *bytes_out = snapshot.size();
  GarbageCollect();
  return Status::OK();
}

void CheckpointStore::GarbageCollect() {
  // One directory scan: reap orphaned .tmp images (crash between write and
  // rename) and collect live ticks for the keep_ window.
  std::vector<uint64_t> ticks;
  uint64_t tick = 0;
  for (const std::string& name : storage_->List()) {
    if (StartsWith(name, "ckpt-") && EndsWith(name, kTmpSuffix)) {
      storage_->Remove(name);
    } else if (TickOf(name, &tick)) {
      ticks.push_back(tick);
    }
  }
  std::sort(ticks.begin(), ticks.end());
  while (ticks.size() > keep_) {
    storage_->Remove(NameFor(ticks.front()));
    ticks.erase(ticks.begin());
  }
}

Result<uint64_t> CheckpointStore::LoadLatest(World* world) const {
  std::vector<uint64_t> ticks = CheckpointTicks();
  for (auto it = ticks.rbegin(); it != ticks.rend(); ++it) {
    std::string data;
    if (!storage_->Read(NameFor(*it), &data).ok()) continue;
    if (DecodeWorldSnapshot(data, world).ok()) {
      return *it;
    }
    // Corrupt image: fall back to the next older checkpoint.
  }
  return Status::NotFound("no loadable checkpoint");
}

}  // namespace gamedb::persist
