#include "persist/checkpoint.h"

#include <algorithm>

#include "common/string_util.h"

namespace gamedb::persist {

std::string CheckpointStore::NameFor(uint64_t tick) const {
  // Zero-padded so lexicographic order == numeric order.
  return StringFormat("ckpt-%020llu", static_cast<unsigned long long>(tick));
}

std::vector<uint64_t> CheckpointStore::CheckpointTicks() const {
  std::vector<uint64_t> ticks;
  for (const std::string& name : storage_->List()) {
    if (!StartsWith(name, "ckpt-")) continue;
    int64_t tick = 0;
    if (ParseInt64(name.substr(5), &tick) && tick >= 0) {
      ticks.push_back(static_cast<uint64_t>(tick));
    }
  }
  std::sort(ticks.begin(), ticks.end());
  return ticks;
}

Status CheckpointStore::WriteCheckpoint(const World& world,
                                        uint64_t* bytes_out) {
  std::string snapshot;
  EncodeWorldSnapshot(world, &snapshot);
  GAMEDB_RETURN_NOT_OK(storage_->Write(NameFor(world.tick()), snapshot));
  ++checkpoints_written_;
  if (bytes_out != nullptr) *bytes_out = snapshot.size();
  GarbageCollect();
  return Status::OK();
}

void CheckpointStore::GarbageCollect() {
  std::vector<uint64_t> ticks = CheckpointTicks();
  while (ticks.size() > keep_) {
    storage_->Remove(NameFor(ticks.front()));
    ticks.erase(ticks.begin());
  }
}

Result<uint64_t> CheckpointStore::LoadLatest(World* world) const {
  std::vector<uint64_t> ticks = CheckpointTicks();
  for (auto it = ticks.rbegin(); it != ticks.rend(); ++it) {
    std::string data;
    if (!storage_->Read(NameFor(*it), &data).ok()) continue;
    if (DecodeWorldSnapshot(data, world).ok()) {
      return *it;
    }
    // Corrupt image: fall back to the next older checkpoint.
  }
  return Status::NotFound("no loadable checkpoint");
}

}  // namespace gamedb::persist
