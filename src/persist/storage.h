#pragma once

/// \file storage.h
/// Storage device abstraction for the persistence tier. MemStorage is the
/// default for tests and benchmarks; DiskStorage persists to a real
/// directory with real fsync. This pair is the simulated substitution for
/// the commercial RDBMS tier MMOs use (docs/ARCHITECTURE.md "Simulated
/// substitutions"): what matters for the experiments is write volume,
/// sync count and recovery semantics, not SQL. Crash/torn-write injection
/// lives in the FaultInjectingStorage decorator (fault_injection.h) so the
/// same fault tests run against either backend.

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace gamedb::persist {

/// Named-file storage device.
class Storage {
 public:
  virtual ~Storage() = default;

  /// Creates or truncates `name` with `data`.
  virtual Status Write(const std::string& name, std::string_view data) = 0;
  /// Appends to `name`, creating it if absent.
  virtual Status Append(const std::string& name, std::string_view data) = 0;
  /// Reads the full contents.
  virtual Status Read(const std::string& name, std::string* out) const = 0;
  /// Removes a file; OK if absent.
  virtual Status Remove(const std::string& name) = 0;
  /// Forces `name`'s contents to durable media (fsync on DiskStorage).
  /// NotFound when the file does not exist; only successful syncs count
  /// toward syncs().
  virtual Status Sync(const std::string& name) = 0;
  /// Atomically replaces `to` with `from` (POSIX rename semantics: `to`
  /// is overwritten if present). NotFound when `from` does not exist.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual bool Exists(const std::string& name) const = 0;
  /// Names of all files (sorted).
  virtual std::vector<std::string> List() const = 0;
  /// Total bytes across all files (write-amplification accounting).
  virtual uint64_t TotalBytes() const = 0;
  /// Successful Sync() calls — the experiments' "fsync count" column.
  /// Directory fsyncs DiskStorage issues internally (on file create,
  /// rename, remove) are an implementation detail and are not counted.
  virtual uint64_t syncs() const { return syncs_; }

 protected:
  uint64_t syncs_ = 0;
};

/// In-memory storage. Sync is a counted no-op (memory is always "durable"
/// here); the counter still feeds the fsync-accounting experiments.
class MemStorage final : public Storage {
 public:
  Status Write(const std::string& name, std::string_view data) override;
  Status Append(const std::string& name, std::string_view data) override;
  Status Read(const std::string& name, std::string* out) const override;
  Status Remove(const std::string& name) override;
  Status Sync(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> List() const override;
  uint64_t TotalBytes() const override;

  /// Cumulative bytes ever written/appended (not reduced by Remove).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::map<std::string, std::string> files_;
  uint64_t bytes_written_ = 0;
};

/// Directory-backed storage. Writes go through file descriptors so Sync
/// maps to a real ::fsync; Rename maps to ::rename (atomic on POSIX).
class DiskStorage final : public Storage {
 public:
  /// Files live under `dir` (created if missing; aborts on failure).
  explicit DiskStorage(std::string dir);

  Status Write(const std::string& name, std::string_view data) override;
  Status Append(const std::string& name, std::string_view data) override;
  Status Read(const std::string& name, std::string* out) const override;
  Status Remove(const std::string& name) override;
  Status Sync(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> List() const override;
  uint64_t TotalBytes() const override;

 private:
  std::string PathOf(const std::string& name) const;
  Status WriteFd(const std::string& name, std::string_view data, int flags);
  /// fsyncs the directory itself so created/renamed/removed dirents are
  /// durable, not just file contents.
  Status SyncDir();

  std::string dir_;
};

}  // namespace gamedb::persist
