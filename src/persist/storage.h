#pragma once

/// \file storage.h
/// Storage device abstraction for the persistence tier. MemStorage is the
/// default for tests and benchmarks (it also provides crash/torn-write
/// injection); DiskStorage persists to a real directory. This pair is the
/// simulated substitution for the commercial RDBMS tier MMOs use
/// (docs/ARCHITECTURE.md "Simulated substitutions"): what matters for the experiments is write volume and
/// recovery semantics, not SQL.

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace gamedb::persist {

/// Named-file storage device.
class Storage {
 public:
  virtual ~Storage() = default;

  /// Creates or truncates `name` with `data`.
  virtual Status Write(const std::string& name, std::string_view data) = 0;
  /// Appends to `name`, creating it if absent.
  virtual Status Append(const std::string& name, std::string_view data) = 0;
  /// Reads the full contents.
  virtual Status Read(const std::string& name, std::string* out) const = 0;
  /// Removes a file; OK if absent.
  virtual Status Remove(const std::string& name) = 0;
  virtual bool Exists(const std::string& name) const = 0;
  /// Names of all files (sorted).
  virtual std::vector<std::string> List() const = 0;
  /// Total bytes across all files (write-amplification accounting).
  virtual uint64_t TotalBytes() const = 0;
};

/// In-memory storage with fault injection.
class MemStorage final : public Storage {
 public:
  Status Write(const std::string& name, std::string_view data) override;
  Status Append(const std::string& name, std::string_view data) override;
  Status Read(const std::string& name, std::string* out) const override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> List() const override;
  uint64_t TotalBytes() const override;

  /// Simulates a torn tail write: drops the last `n` bytes of `name`.
  void CorruptTail(const std::string& name, size_t n);
  /// Flips one byte at `offset` in `name`.
  void FlipByte(const std::string& name, size_t offset);
  /// Cumulative bytes ever written/appended (not reduced by Remove).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::map<std::string, std::string> files_;
  uint64_t bytes_written_ = 0;
};

/// Directory-backed storage.
class DiskStorage final : public Storage {
 public:
  /// Files live under `dir` (created if missing; aborts on failure).
  explicit DiskStorage(std::string dir);

  Status Write(const std::string& name, std::string_view data) override;
  Status Append(const std::string& name, std::string_view data) override;
  Status Read(const std::string& name, std::string* out) const override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> List() const override;
  uint64_t TotalBytes() const override;

 private:
  std::string PathOf(const std::string& name) const;
  std::string dir_;
};

}  // namespace gamedb::persist
