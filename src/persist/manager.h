#pragma once

/// \file manager.h
/// The in-memory-database persistence tier the tutorial describes: "Most
/// games have an in-memory database layer that processes all actions, and
/// only writes to the database periodically." PersistenceManager sits next
/// to the World, observes transactions and important events, consults a
/// CheckpointPolicy, and (optionally) write-ahead-logs actions so recovery
/// can replay past the last checkpoint.
///
/// Paper: the persistence section — checkpoint-only durability, checkpoint
/// spacing vs player-visible loss on crash, and importance-aware
/// checkpointing (the "difficult fight / desirable reward" motivation
/// benchmarked in E8).

#include <functional>
#include <memory>

#include "persist/checkpoint.h"
#include "persist/record.h"
#include "persist/wal.h"

namespace gamedb::persist {

/// Durability mode.
enum class DurabilityMode : uint8_t {
  /// The common games pattern: only checkpoints hit storage; a crash loses
  /// everything after the last checkpoint.
  kCheckpointOnly,
  /// Checkpoints plus a WAL of every transaction: nothing durable is lost,
  /// at the cost of per-action write volume.
  kWalAndCheckpoint,
};

/// Options for PersistenceManager.
struct PersistenceOptions {
  DurabilityMode mode = DurabilityMode::kCheckpointOnly;
  /// Checkpoints kept for corruption fallback.
  size_t keep_checkpoints = 2;
  /// WAL durability knobs (sync-per-append vs group commit), used in
  /// kWalAndCheckpoint.
  WalOptions wal;
  /// Optional telemetry hook: WAL/checkpoint counters fold into the
  /// `persist.*` registry instruments, and append/fsync/checkpoint record
  /// spans. Non-owning; must outlive the manager.
  telemetry::TelemetrySink telemetry{};
};

/// Cumulative persistence metrics (E8 columns).
struct PersistenceMetrics {
  uint64_t checkpoints = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  double importance_seen = 0.0;
};

/// What recovery produced.
struct RecoveryOutcome {
  uint64_t checkpoint_tick = 0;  // tick of the snapshot we restored
  uint64_t replayed_txns = 0;    // WAL transactions re-applied
  uint64_t recovered_tick = 0;   // world tick after recovery
  bool wal_torn_tail = false;
};

/// Write-side persistence driver.
class PersistenceManager {
 public:
  PersistenceManager(Storage* storage, std::unique_ptr<CheckpointPolicy> policy,
                     PersistenceOptions options = {});

  /// Observes a committed transaction (WAL-logged in kWalAndCheckpoint).
  Status OnTxn(const txn::GameTxn& t, uint64_t tick);

  /// Observes an important event (importance feeds the policy; logged in
  /// kWalAndCheckpoint for audit).
  Status OnEvent(uint64_t tick, double importance, const std::string& label);

  /// End-of-tick hook: consults the policy and checkpoints when told to.
  /// Returns true when a checkpoint was written.
  Result<bool> OnTickEnd(const World& world);

  /// Forces a checkpoint now (server shutdown).
  Status ForceCheckpoint(const World& world);

  /// Importance accumulated since the last checkpoint — exactly what a
  /// crash right now would lose under kCheckpointOnly.
  double pending_importance() const { return pending_importance_; }

  const PersistenceMetrics& metrics() const { return metrics_; }

  /// Restores `world` from storage: newest valid checkpoint, then WAL
  /// replay of transactions with tick > checkpoint tick (if a WAL exists).
  static Result<RecoveryOutcome> Recover(const Storage& storage, World* world);

 private:
  Status AfterCheckpoint(const World& world, uint64_t bytes);

  Storage* storage_;
  std::unique_ptr<CheckpointPolicy> policy_;
  PersistenceOptions options_;
  CheckpointStore checkpoints_;
  WalWriter wal_;
  PersistenceMetrics metrics_;
  /// Cached registry instruments (nullptr without a metrics sink).
  telemetry::Counter* m_checkpoints_ = nullptr;
  telemetry::Counter* m_checkpoint_bytes_ = nullptr;
  telemetry::Counter* m_wal_records_ = nullptr;
  telemetry::Counter* m_wal_bytes_ = nullptr;

  uint64_t last_checkpoint_tick_ = 0;
  double pending_importance_ = 0.0;
  double max_pending_event_ = 0.0;
};

}  // namespace gamedb::persist
