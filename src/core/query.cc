#include "core/query.h"

#include <cmath>

namespace gamedb {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool FieldValueAsNumber(const FieldValue& v, double* out) {
  if (const double* d = std::get_if<double>(&v)) {
    *out = *d;
    return true;
  }
  if (const int64_t* i = std::get_if<int64_t>(&v)) {
    *out = static_cast<double>(*i);
    return true;
  }
  if (const bool* b = std::get_if<bool>(&v)) {
    *out = *b ? 1.0 : 0.0;
    return true;
  }
  return false;
}

namespace {

template <typename T>
bool ApplyOrdered(const T& a, CmpOp op, const T& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

bool CompareFieldValues(const FieldValue& lhs, CmpOp op,
                        const FieldValue& rhs) {
  double a, b;
  if (FieldValueAsNumber(lhs, &a) && FieldValueAsNumber(rhs, &b)) {
    return ApplyOrdered(a, op, b);
  }
  if (const auto* ls = std::get_if<std::string>(&lhs)) {
    if (const auto* rs = std::get_if<std::string>(&rhs)) {
      return ApplyOrdered(*ls, op, *rs);
    }
  }
  if (const auto* le = std::get_if<EntityId>(&lhs)) {
    if (const auto* re = std::get_if<EntityId>(&rhs)) {
      return ApplyOrdered(le->Raw(), op, re->Raw());
    }
  }
  if (const auto* lv = std::get_if<Vec3>(&lhs)) {
    if (const auto* rv = std::get_if<Vec3>(&rhs)) {
      // Vectors support only (in)equality.
      if (op == CmpOp::kEq) return *lv == *rv;
      if (op == CmpOp::kNe) return !(*lv == *rv);
      return false;
    }
  }
  // Mismatched kinds: only != holds.
  return op == CmpOp::kNe;
}

const TypeInfo* DynamicQuery::ResolveComponent(std::string_view name) {
  const TypeInfo* info = TypeRegistry::Global().FindByName(name);
  if (info == nullptr && error_.ok()) {
    error_ = Status::NotFound("unknown component: " + std::string(name));
  }
  return info;
}

const FieldInfo* DynamicQuery::ResolveField(std::string_view component,
                                            std::string_view field,
                                            uint32_t* type_id) {
  const TypeInfo* info = ResolveComponent(component);
  if (info == nullptr) return nullptr;
  *type_id = info->id();
  const FieldInfo* f = info->FindField(field);
  if (f == nullptr && error_.ok()) {
    error_ = Status::NotFound("unknown field: " + std::string(component) +
                              "." + std::string(field));
  }
  return f;
}

DynamicQuery& DynamicQuery::With(std::string_view component) {
  if (const TypeInfo* info = ResolveComponent(component)) {
    required_.push_back(info->id());
  }
  return *this;
}

DynamicQuery& DynamicQuery::WhereField(std::string_view component,
                                       std::string_view field, CmpOp op,
                                       FieldValue rhs) {
  uint32_t type_id = 0;
  const FieldInfo* f = ResolveField(component, field, &type_id);
  if (f != nullptr) {
    required_.push_back(type_id);
    predicates_.push_back(Predicate{type_id, f, op, std::move(rhs)});
  }
  return *this;
}

DynamicQuery& DynamicQuery::WithinRadius(std::string_view component,
                                         std::string_view field,
                                         const Vec3& center, float radius) {
  uint32_t type_id = 0;
  const FieldInfo* f = ResolveField(component, field, &type_id);
  if (f != nullptr) {
    required_.push_back(type_id);
    radius_predicates_.push_back(
        RadiusPredicate{type_id, f, center, radius});
  }
  return *this;
}

bool DynamicQuery::Matches(EntityId e) const {
  for (uint32_t id : required_) {
    const ComponentStore* store = world_->StoreByIdIfExists(id);
    if (store == nullptr || !store->Contains(e)) return false;
  }
  for (const auto& p : predicates_) {
    const ComponentStore* store = world_->StoreByIdIfExists(p.type_id);
    const void* comp = store->Find(e);
    if (!CompareFieldValues(p.field->Get(comp), p.op, p.rhs)) return false;
  }
  for (const auto& rp : radius_predicates_) {
    const ComponentStore* store = world_->StoreByIdIfExists(rp.type_id);
    const void* comp = store->Find(e);
    FieldValue v = rp.field->Get(comp);
    const Vec3* pos = std::get_if<Vec3>(&v);
    if (pos == nullptr) return false;
    if (pos->DistanceSquaredTo(rp.center) > rp.radius * rp.radius)
      return false;
  }
  return true;
}

const ComponentStore* DynamicQuery::CanonicalDriver() const {
  const ComponentStore* driver = nullptr;
  for (uint32_t id : required_) {
    const ComponentStore* store = world_->StoreByIdIfExists(id);
    if (store == nullptr) return nullptr;  // missing table -> no matches
    if (driver == nullptr || store->Size() < driver->Size()) driver = store;
  }
  return driver;
}

Status DynamicQuery::Each(const std::function<void(EntityId)>& fn) {
  if (!error_.ok()) return error_;
  if (required_.empty()) {
    return Status::InvalidArgument("query has no component constraint");
  }
  if (planner_ != nullptr && planner_->PlanningEnabled()) {
    return planner_->Execute(*this, fn);
  }
  return EachUnplanned(fn);
}

Status DynamicQuery::EachUnplanned(const std::function<void(EntityId)>& fn) {
  // Drive from the smallest required table.
  const ComponentStore* driver = CanonicalDriver();
  if (driver == nullptr) return Status::OK();
  for (size_t i = 0; i < driver->Size(); ++i) {
    EntityId e = driver->EntityAt(i);
    if (world_->Alive(e) && Matches(e)) fn(e);
  }
  return Status::OK();
}

Result<std::string> DynamicQuery::Explain() {
  if (!error_.ok()) return error_;
  if (required_.empty()) {
    return Status::InvalidArgument("query has no component constraint");
  }
  if (planner_ != nullptr) return planner_->ExplainQuery(*this);
  // No planner: describe the built-in path (no estimates available).
  const TypeRegistry& reg = TypeRegistry::Global();
  std::string out = "plan (no planner attached):\n";
  const ComponentStore* driver = CanonicalDriver();
  if (driver == nullptr) {
    out += "  empty: a required component table does not exist\n";
    return out;
  }
  for (uint32_t id : required_) {
    if (world_->StoreByIdIfExists(id) == driver) {
      const TypeInfo* info = reg.Find(id);
      out += "  access: full_scan of " + info->name() + " (" +
             std::to_string(driver->Size()) + " rows)\n";
      break;
    }
  }
  for (const Predicate& p : predicates_) {
    out += "  filter: " + reg.Find(p.type_id)->name() + "." +
           p.field->name() + " " + CmpOpName(p.op) + " " +
           FieldValueToString(p.rhs) + "\n";
  }
  for (const RadiusPredicate& rp : radius_predicates_) {
    out += "  filter: distance(" + reg.Find(rp.type_id)->name() + "." +
           rp.field->name() + ", " + rp.center.ToString() +
           ") <= " + std::to_string(rp.radius) + " (linear)\n";
  }
  return out;
}

Result<int64_t> DynamicQuery::Count() {
  int64_t n = 0;
  Status st = Each([&](EntityId) { ++n; });
  if (!st.ok()) return st;
  return n;
}

Result<std::vector<EntityId>> DynamicQuery::Collect() {
  std::vector<EntityId> out;
  Status st = Each([&](EntityId e) { out.push_back(e); });
  if (!st.ok()) return st;
  return out;
}

namespace {

struct NumericFold {
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  EntityId argmin;
  EntityId argmax;
  int64_t count = 0;

  void Add(EntityId e, double v) {
    if (count == 0 || v < min) {
      min = v;
      argmin = e;
    }
    if (count == 0 || v > max) {
      max = v;
      argmax = e;
    }
    sum += v;
    ++count;
  }
};

}  // namespace

#define GAMEDB_DYNQ_FOLD(component, field, fold)                        \
  do {                                                                  \
    uint32_t type_id = 0;                                               \
    const FieldInfo* f = ResolveField(component, field, &type_id);      \
    if (!error_.ok()) return error_;                                    \
    required_.push_back(type_id);                                       \
    Status st = Each([&](EntityId e) {                                  \
      const ComponentStore* store = world_->StoreByIdIfExists(type_id); \
      FieldValue v = f->Get(store->Find(e));                            \
      double num = 0.0;                                                 \
      if (FieldValueAsNumber(v, &num)) (fold).Add(e, num);              \
    });                                                                 \
    if (!st.ok()) return st;                                            \
  } while (0)

Result<double> DynamicQuery::Sum(std::string_view component,
                                 std::string_view field) {
  NumericFold fold;
  GAMEDB_DYNQ_FOLD(component, field, fold);
  return fold.sum;
}

Result<double> DynamicQuery::Min(std::string_view component,
                                 std::string_view field) {
  NumericFold fold;
  GAMEDB_DYNQ_FOLD(component, field, fold);
  if (fold.count == 0) return Status::NotFound("no rows match");
  return fold.min;
}

Result<double> DynamicQuery::Max(std::string_view component,
                                 std::string_view field) {
  NumericFold fold;
  GAMEDB_DYNQ_FOLD(component, field, fold);
  if (fold.count == 0) return Status::NotFound("no rows match");
  return fold.max;
}

Result<double> DynamicQuery::Avg(std::string_view component,
                                 std::string_view field) {
  NumericFold fold;
  GAMEDB_DYNQ_FOLD(component, field, fold);
  if (fold.count == 0) return Status::NotFound("no rows match");
  return fold.sum / static_cast<double>(fold.count);
}

Result<EntityId> DynamicQuery::ArgMin(std::string_view component,
                                      std::string_view field) {
  NumericFold fold;
  GAMEDB_DYNQ_FOLD(component, field, fold);
  if (fold.count == 0) return Status::NotFound("no rows match");
  return fold.argmin;
}

Result<EntityId> DynamicQuery::ArgMax(std::string_view component,
                                      std::string_view field) {
  NumericFold fold;
  GAMEDB_DYNQ_FOLD(component, field, fold);
  if (fold.count == 0) return Status::NotFound("no rows match");
  return fold.argmax;
}

#undef GAMEDB_DYNQ_FOLD

}  // namespace gamedb
