#pragma once

/// \file query.h
/// Declarative queries over the World.
///
/// Two layers:
///  - View<Ts...>: statically-typed multi-component join (the workhorse for
///    engine code), driven by the smallest table.
///  - DynamicQuery: runtime-typed query by component/field *names* with
///    comparison predicates and aggregate terminals. This is the query
///    facility exposed to GSL scripts and content tools — the "declarative
///    processing" direction of the tutorial [11, 13].

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/reflect.h"
#include "core/world.h"

namespace gamedb {

class QueryPlanHook;

/// Statically-typed view over all entities that have every component in
/// Ts... Iteration visits entities in the dense order of the chosen driver
/// table: the smallest table by default, or the planner's cost-based pick
/// when one is attached via SetPlanner (a raw-smallest table dominated by
/// rows of dead entities can be the wrong driver; live-row statistics see
/// that — planner/planner.h ChooseViewDriver).
template <typename... Ts>
class View {
 public:
  explicit View(World& world) : world_(world) {}

  /// Attaches (or detaches, with nullptr) a planner whose ChooseViewDriver
  /// picks the driver table from table statistics. Only the iteration
  /// order and cost change; the visited entity set is identical.
  View& SetPlanner(QueryPlanHook* planner) {
    planner_ = planner;
    return *this;
  }

  /// Calls fn(EntityId, Ts&...) for each matching entity. Adding or removing
  /// rows of the iterated tables from inside `fn` is undefined behaviour
  /// (in-place value mutation is fine).
  template <typename Fn>
  void Each(Fn&& fn) {
    auto tables = std::tuple<SparseSet<Ts>*...>{&world_.Table<Ts>()...};
    size_t sizes[] = {std::get<SparseSet<Ts>*>(tables)->Size()...};
    size_t driver = 0;
    for (size_t i = 1; i < sizeof...(Ts); ++i) {
      if (sizes[i] < sizes[driver]) driver = i;
    }
    driver = PlannedDriver(driver);
    DispatchDriver<0>(driver, tables, std::forward<Fn>(fn));
  }

  /// Number of matching entities.
  size_t Count() {
    size_t n = 0;
    Each([&](EntityId, Ts&...) { ++n; });
    return n;
  }

  /// Matching entity ids (driver order).
  std::vector<EntityId> Entities() {
    std::vector<EntityId> out;
    Each([&](EntityId e, Ts&...) { out.push_back(e); });
    return out;
  }

 private:
  /// Lets the attached planner override the smallest-table driver choice.
  /// Defined after QueryPlanHook below; instantiated only at call sites.
  size_t PlannedDriver(size_t smallest);

  template <size_t I, typename Tables, typename Fn>
  void DispatchDriver(size_t driver, Tables& tables, Fn&& fn) {
    if constexpr (I < sizeof...(Ts)) {
      if (driver == I) {
        using Driver = std::tuple_element_t<I, std::tuple<Ts...>>;
        IterateDriver<Driver>(tables, std::forward<Fn>(fn));
      } else {
        DispatchDriver<I + 1>(driver, tables, std::forward<Fn>(fn));
      }
    }
  }

  template <typename Driver, typename Tables, typename Fn>
  void IterateDriver(Tables& tables, Fn&& fn) {
    SparseSet<Driver>* driver = std::get<SparseSet<Driver>*>(tables);
    const auto& entities = driver->entities();
    for (size_t i = 0; i < entities.size(); ++i) {
      EntityId e = entities[i];
      if (!world_.Alive(e)) continue;
      if ((... && (std::get<SparseSet<Ts>*>(tables)->Contains(e)))) {
        fn(e, *static_cast<Ts*>(
                  std::get<SparseSet<Ts>*>(tables)->Find(e))...);
      }
    }
  }

  World& world_;
  QueryPlanHook* planner_ = nullptr;
};

/// Comparison operator for dynamic predicates.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

class DynamicQuery;

/// Execution hook a query optimizer implements (planner/planner.h). The
/// dependency is inverted — core/ cannot depend on planner/ — so DynamicQuery
/// talks to the planner through this interface. Contract for Execute: call
/// `fn` exactly for the entities the unplanned path would visit, in the same
/// order (the dense order of the smallest required table), so plans change
/// cost but never results.
class QueryPlanHook {
 public:
  virtual ~QueryPlanHook() = default;

  /// False parks the hook (PlannerPolicy::kOff): DynamicQuery uses its
  /// built-in path, keeping the old behaviour testable with the hook wired.
  virtual bool PlanningEnabled() const { return true; }

  /// Plans and executes `q`, invoking `fn` per matching entity.
  virtual Status Execute(const DynamicQuery& q,
                         const std::function<void(EntityId)>& fn) = 0;

  /// Renders the plan that Execute would choose, with cardinality and cost
  /// estimates, as human-readable text.
  virtual Result<std::string> ExplainQuery(const DynamicQuery& q) = 0;

  /// Called from a sequential point before a batch of (possibly
  /// concurrent) queries — ScriptHost::RunTick invokes it before the
  /// parallel query phase. Implementations refresh statistics and caches
  /// here; Execute must then be safe to call concurrently until the next
  /// sequential point.
  virtual void OnQuiescent() {}

  /// Driver choice for a statically-typed View<Ts...> join: given the
  /// joined tables' type ids, returns the index of the table to iterate,
  /// or kNoDriverPreference to keep the caller's smallest-table default.
  /// Must be safe to call concurrently with other reads (View iteration
  /// happens on query-phase shards).
  static constexpr size_t kNoDriverPreference = static_cast<size_t>(-1);
  virtual size_t ChooseViewDriver(const uint32_t* type_ids, size_t n) const {
    (void)type_ids;
    (void)n;
    return kNoDriverPreference;
  }
};

template <typename... Ts>
size_t View<Ts...>::PlannedDriver(size_t smallest) {
  if (planner_ == nullptr || !planner_->PlanningEnabled()) return smallest;
  const uint32_t ids[] = {TypeRegistry::IdOf<Ts>()...};
  size_t pick = planner_->ChooseViewDriver(ids, sizeof...(Ts));
  return pick < sizeof...(Ts) ? pick : smallest;
}

/// Runtime-typed declarative query: components and fields addressed by name.
///
/// Example (what a designer's script compiles to):
///   DynamicQuery q(&world);
///   q.With("Health").With("Faction");
///   q.WhereField("Faction", "team", CmpOp::kEq, int64_t{2});
///   Result<double> total = q.Sum("Health", "hp");
class DynamicQuery {
 public:
  /// One field comparison constraint (component.field op rhs).
  struct Predicate {
    uint32_t type_id;
    const FieldInfo* field;
    CmpOp op;
    FieldValue rhs;
  };
  /// One proximity constraint (distance(component.field, center) <= radius).
  struct RadiusPredicate {
    uint32_t type_id;
    const FieldInfo* field;
    Vec3 center;
    float radius;
  };

  explicit DynamicQuery(World* world) : world_(world) {}

  /// Attaches (or detaches, with nullptr) a query planner. With a planner
  /// attached and enabled, Each/terminals execute through the planner's
  /// chosen physical plan instead of the built-in
  /// smallest-table-scan-plus-filters path. Results are identical either
  /// way; only the access path changes.
  DynamicQuery& SetPlanner(QueryPlanHook* planner) {
    planner_ = planner;
    return *this;
  }

  /// Requires entities to carry the named component. Unknown names put the
  /// query in an error state surfaced by the terminal call.
  DynamicQuery& With(std::string_view component);

  /// Adds a field comparison predicate (component is implicitly required).
  DynamicQuery& WhereField(std::string_view component, std::string_view field,
                           CmpOp op, FieldValue rhs);

  /// Restricts matches to entities within `radius` of `center` using the
  /// named Vec3 field as the position (linear filter; spatial-index joins
  /// live in spatial/pair_join.h).
  DynamicQuery& WithinRadius(std::string_view component,
                             std::string_view field, const Vec3& center,
                             float radius);

  // --- Terminals ---------------------------------------------------------

  /// Iterates matching entities. Returns the deferred error, if any.
  Status Each(const std::function<void(EntityId)>& fn);

  /// Number of matches.
  Result<int64_t> Count();
  /// Sum / min / max / average of a numeric field over the matches. Min/max
  /// on zero matches return NotFound.
  Result<double> Sum(std::string_view component, std::string_view field);
  Result<double> Min(std::string_view component, std::string_view field);
  Result<double> Max(std::string_view component, std::string_view field);
  Result<double> Avg(std::string_view component, std::string_view field);

  /// Matching ids.
  Result<std::vector<EntityId>> Collect();

  /// Entity with the smallest / largest value of the field (NotFound when
  /// no matches). Ties break toward the earlier entity in scan order.
  Result<EntityId> ArgMin(std::string_view component, std::string_view field);
  Result<EntityId> ArgMax(std::string_view component, std::string_view field);

  /// Renders the physical plan the next terminal would execute. With a
  /// planner attached this is the cost-based plan with cardinality
  /// estimates; without one it describes the built-in path.
  Result<std::string> Explain();

  // --- Read access for the planner (QueryPlanHook implementations) -------

  World* world() const { return world_; }
  const std::vector<uint32_t>& required() const { return required_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  const std::vector<RadiusPredicate>& radius_predicates() const {
    return radius_predicates_;
  }

  /// The store the built-in path drives from: smallest required table,
  /// earliest in required() on ties. nullptr when any required table is
  /// missing (no matches possible). Planned execution emits matches in this
  /// store's dense order so plans never change result order.
  const ComponentStore* CanonicalDriver() const;

 private:
  /// Resolves a component name; records error state on failure.
  const TypeInfo* ResolveComponent(std::string_view name);
  const FieldInfo* ResolveField(std::string_view component,
                                std::string_view field, uint32_t* type_id);
  bool Matches(EntityId e) const;
  /// The built-in access path: scan CanonicalDriver, filter everything.
  Status EachUnplanned(const std::function<void(EntityId)>& fn);

  World* world_;
  QueryPlanHook* planner_ = nullptr;
  Status error_ = Status::OK();
  std::vector<uint32_t> required_;  // type ids
  std::vector<Predicate> predicates_;
  std::vector<RadiusPredicate> radius_predicates_;
};

/// True when `lhs op rhs` holds under FieldValue comparison semantics
/// (numeric kinds compare numerically; strings lexicographically; entities
/// by raw id; mismatched kinds are never equal and are unordered).
bool CompareFieldValues(const FieldValue& lhs, CmpOp op, const FieldValue& rhs);

/// Widens a numeric FieldValue (double/int64/bool) to double — the exact
/// numeric-comparison domain CompareFieldValues uses, so index keys built
/// through this helper reproduce predicate semantics bit for bit. Returns
/// false for non-numeric kinds.
bool FieldValueAsNumber(const FieldValue& v, double* out);

}  // namespace gamedb
