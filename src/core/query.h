#pragma once

/// \file query.h
/// Declarative queries over the World.
///
/// Two layers:
///  - View<Ts...>: statically-typed multi-component join (the workhorse for
///    engine code), driven by the smallest table.
///  - DynamicQuery: runtime-typed query by component/field *names* with
///    comparison predicates and aggregate terminals. This is the query
///    facility exposed to GSL scripts and content tools — the "declarative
///    processing" direction of the tutorial [11, 13].

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/reflect.h"
#include "core/world.h"

namespace gamedb {

/// Statically-typed view over all entities that have every component in
/// Ts... Iteration visits entities in the dense order of the smallest table.
template <typename... Ts>
class View {
 public:
  explicit View(World& world) : world_(world) {}

  /// Calls fn(EntityId, Ts&...) for each matching entity. Adding or removing
  /// rows of the iterated tables from inside `fn` is undefined behaviour
  /// (in-place value mutation is fine).
  template <typename Fn>
  void Each(Fn&& fn) {
    auto tables = std::tuple<SparseSet<Ts>*...>{&world_.Table<Ts>()...};
    size_t sizes[] = {std::get<SparseSet<Ts>*>(tables)->Size()...};
    size_t driver = 0;
    for (size_t i = 1; i < sizeof...(Ts); ++i) {
      if (sizes[i] < sizes[driver]) driver = i;
    }
    DispatchDriver<0>(driver, tables, std::forward<Fn>(fn));
  }

  /// Number of matching entities.
  size_t Count() {
    size_t n = 0;
    Each([&](EntityId, Ts&...) { ++n; });
    return n;
  }

  /// Matching entity ids (driver order).
  std::vector<EntityId> Entities() {
    std::vector<EntityId> out;
    Each([&](EntityId e, Ts&...) { out.push_back(e); });
    return out;
  }

 private:
  template <size_t I, typename Tables, typename Fn>
  void DispatchDriver(size_t driver, Tables& tables, Fn&& fn) {
    if constexpr (I < sizeof...(Ts)) {
      if (driver == I) {
        using Driver = std::tuple_element_t<I, std::tuple<Ts...>>;
        IterateDriver<Driver>(tables, std::forward<Fn>(fn));
      } else {
        DispatchDriver<I + 1>(driver, tables, std::forward<Fn>(fn));
      }
    }
  }

  template <typename Driver, typename Tables, typename Fn>
  void IterateDriver(Tables& tables, Fn&& fn) {
    SparseSet<Driver>* driver = std::get<SparseSet<Driver>*>(tables);
    const auto& entities = driver->entities();
    for (size_t i = 0; i < entities.size(); ++i) {
      EntityId e = entities[i];
      if (!world_.Alive(e)) continue;
      if ((... && (std::get<SparseSet<Ts>*>(tables)->Contains(e)))) {
        fn(e, *static_cast<Ts*>(
                  std::get<SparseSet<Ts>*>(tables)->Find(e))...);
      }
    }
  }

  World& world_;
};

/// Comparison operator for dynamic predicates.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// Runtime-typed declarative query: components and fields addressed by name.
///
/// Example (what a designer's script compiles to):
///   DynamicQuery q(&world);
///   q.With("Health").With("Faction");
///   q.WhereField("Faction", "team", CmpOp::kEq, int64_t{2});
///   Result<double> total = q.Sum("Health", "hp");
class DynamicQuery {
 public:
  explicit DynamicQuery(World* world) : world_(world) {}

  /// Requires entities to carry the named component. Unknown names put the
  /// query in an error state surfaced by the terminal call.
  DynamicQuery& With(std::string_view component);

  /// Adds a field comparison predicate (component is implicitly required).
  DynamicQuery& WhereField(std::string_view component, std::string_view field,
                           CmpOp op, FieldValue rhs);

  /// Restricts matches to entities within `radius` of `center` using the
  /// named Vec3 field as the position (linear filter; spatial-index joins
  /// live in spatial/pair_join.h).
  DynamicQuery& WithinRadius(std::string_view component,
                             std::string_view field, const Vec3& center,
                             float radius);

  // --- Terminals ---------------------------------------------------------

  /// Iterates matching entities. Returns the deferred error, if any.
  Status Each(const std::function<void(EntityId)>& fn);

  /// Number of matches.
  Result<int64_t> Count();
  /// Sum / min / max / average of a numeric field over the matches. Min/max
  /// on zero matches return NotFound.
  Result<double> Sum(std::string_view component, std::string_view field);
  Result<double> Min(std::string_view component, std::string_view field);
  Result<double> Max(std::string_view component, std::string_view field);
  Result<double> Avg(std::string_view component, std::string_view field);

  /// Matching ids.
  Result<std::vector<EntityId>> Collect();

  /// Entity with the smallest / largest value of the field (NotFound when
  /// no matches). Ties break toward the earlier entity in scan order.
  Result<EntityId> ArgMin(std::string_view component, std::string_view field);
  Result<EntityId> ArgMax(std::string_view component, std::string_view field);

 private:
  struct Predicate {
    uint32_t type_id;
    const FieldInfo* field;
    CmpOp op;
    FieldValue rhs;
  };
  struct RadiusPredicate {
    uint32_t type_id;
    const FieldInfo* field;
    Vec3 center;
    float radius;
  };

  /// Resolves a component name; records error state on failure.
  const TypeInfo* ResolveComponent(std::string_view name);
  const FieldInfo* ResolveField(std::string_view component,
                                std::string_view field, uint32_t* type_id);
  bool Matches(EntityId e) const;

  World* world_;
  Status error_ = Status::OK();
  std::vector<uint32_t> required_;  // type ids
  std::vector<Predicate> predicates_;
  std::vector<RadiusPredicate> radius_predicates_;
};

/// True when `lhs op rhs` holds under FieldValue comparison semantics
/// (numeric kinds compare numerically; strings lexicographically; entities
/// by raw id; mismatched kinds are never equal and are unordered).
bool CompareFieldValues(const FieldValue& lhs, CmpOp op, const FieldValue& rhs);

}  // namespace gamedb
