#pragma once

/// \file state_effect.h
/// The state-effect execution pattern from the authors' SGL work [13],
/// which the tutorial presents as the declarative answer to parallel script
/// processing ("the techniques game programmers use on GPUs look very
/// similar to join processing").
///
/// A tick is split into two phases:
///   1. Query phase — every entity's behavior runs against the *tick-start*
///      state. Reads are unrestricted; writes are forbidden. Instead,
///      behaviors emit *effects*: (target entity, value) contributions into
///      commutative-monoid accumulators (total damage, summed flocking
///      forces, ...). Because effects commute, the query phase parallelizes
///      embarrassingly — this is the join-processing shape.
///   2. Apply phase — each accumulator combines its contributions per entity
///      and a (sequential, deterministic) apply function writes the combined
///      value back into the component tables.
///
/// Benchmarked against an unordered read-modify-write script loop in E4.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/query.h"
#include "core/world.h"

namespace gamedb {

/// Commutative-monoid effect accumulator keyed by target entity.
///
/// Contributions are collected into per-shard buffers (no synchronization on
/// the hot path); Drain merges shards in shard order and invokes the
/// consumer per distinct entity, so results are deterministic for a fixed
/// shard assignment.
template <typename V>
class Effect {
 public:
  /// Combines a contribution into the accumulated value, e.g.
  /// `[](double& acc, const double& v) { acc += v; }` (the default).
  using Combine = std::function<void(V&, const V&)>;

  explicit Effect(size_t shards, Combine combine = DefaultCombine())
      : shards_(shards), combine_(std::move(combine)) {
    GAMEDB_CHECK(shards >= 1);
  }

  /// Records a contribution from `shard` (the executor's chunk index).
  void Contribute(size_t shard, EntityId target, V value) {
    GAMEDB_DCHECK(shard < shards_.size());
    shards_[shard].emplace_back(target, std::move(value));
  }

  /// Total contributions currently buffered (pre-merge).
  size_t contribution_count() const {
    size_t n = 0;
    for (const auto& s : shards_) n += s.size();
    return n;
  }

  /// Merges all shards and calls fn(EntityId, const V&) once per distinct
  /// target (in first-contribution order), then clears the buffers.
  ///
  /// The merge scratch (slot map + merged rows) is owned by the Effect and
  /// reused across calls, so a steady-state per-tick drain performs no
  /// allocations once capacities are warm. Consequently Drain is not
  /// reentrant and must run on one thread at a time — which the apply phase
  /// is by construction.
  template <typename Fn>
  void Drain(Fn&& fn) {
    size_t total = contribution_count();
    drain_slots_.clear();
    drain_slots_.reserve(total);
    drain_merged_.clear();
    drain_merged_.reserve(total);
    for (auto& shard : shards_) {
      for (auto& [e, v] : shard) {
        auto [it, inserted] = drain_slots_.try_emplace(e, drain_merged_.size());
        if (inserted) {
          drain_merged_.emplace_back(e, std::move(v));
        } else {
          combine_(drain_merged_[it->second].second, v);
        }
      }
      shard.clear();
    }
    for (auto& [e, v] : drain_merged_) fn(e, static_cast<const V&>(v));
  }

  /// Discards buffered contributions.
  void Clear() {
    for (auto& s : shards_) s.clear();
  }

 private:
  static Combine DefaultCombine() {
    return [](V& acc, const V& v) { acc += v; };
  }

  std::vector<std::vector<std::pair<EntityId, V>>> shards_;
  Combine combine_;
  // Reusable Drain scratch (see Drain); kept warm across ticks.
  std::unordered_map<EntityId, size_t> drain_slots_;
  std::vector<std::pair<EntityId, V>> drain_merged_;
};

/// Runs query phases in parallel over a World.
///
/// The executor owns a thread pool; shard ids passed to the query callback
/// index Effect accumulators sized with `shard_count()`.
class StateEffectExecutor {
 public:
  /// \param num_threads worker count; 1 gives a sequential (but still
  ///        deterministic and effect-isolated) executor.
  explicit StateEffectExecutor(size_t num_threads) : pool_(num_threads) {}
  GAMEDB_DISALLOW_COPY(StateEffectExecutor);

  /// Number of shards the query phase may use (chunk indexes are < this).
  size_t shard_count() const { return pool_.num_threads(); }
  size_t num_threads() const { return pool_.num_threads(); }
  ThreadPool& pool() { return pool_; }

  /// Query phase over all entities holding every component in Ts...:
  /// fn(shard, EntityId, const Ts&...) runs in parallel against tick-start
  /// state. `fn` must not write to the World (emit effects instead).
  template <typename... Ts, typename Fn>
  void QueryPhase(World& world, Fn&& fn) {
    View<Ts...> view(world);
    scratch_entities_ = view.Entities();
    auto tables = std::tuple<SparseSet<Ts>*...>{&world.Table<Ts>()...};
    pool_.ParallelForChunks(
        scratch_entities_.size(),
        [&](size_t chunk, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            EntityId e = scratch_entities_[i];
            fn(chunk, e,
               *static_cast<const Ts*>(
                   static_cast<const ComponentStore*>(
                       std::get<SparseSet<Ts>*>(tables))
                       ->Find(e))...);
          }
        });
  }

  /// Convenience: parallel read-only pass over a snapshot vector of items.
  template <typename Item, typename Fn>
  void ParallelOver(const std::vector<Item>& items, Fn&& fn) {
    pool_.ParallelForChunks(items.size(),
                            [&](size_t chunk, size_t begin, size_t end) {
                              for (size_t i = begin; i < end; ++i) {
                                fn(chunk, items[i]);
                              }
                            });
  }

 private:
  ThreadPool pool_;
  std::vector<EntityId> scratch_entities_;
};

}  // namespace gamedb
