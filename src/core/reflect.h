#pragma once

/// \file reflect.h
/// Runtime component reflection: registered component types expose named,
/// typed fields. Reflection is what lets the data-driven layers — GSL
/// scripts, XML prefabs, world serialization, the replication codec and the
/// structured persistence stores — address game state generically, the way a
/// database addresses columns.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/coding.h"
#include "common/geometry.h"
#include "common/status.h"
#include "core/entity.h"
#include "core/sparse_set.h"

namespace gamedb {

/// Wire/static type of a reflected field.
enum class FieldType : uint8_t {
  kFloat,
  kDouble,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
  kBool,
  kVec3,
  kString,
  kEntity,
};

const char* FieldTypeName(FieldType t);

/// Dynamically-typed field value used at reflection boundaries. Integral
/// fields widen to int64_t and floating fields to double.
using FieldValue =
    std::variant<double, int64_t, bool, Vec3, std::string, EntityId>;

/// Renders a FieldValue for diagnostics.
std::string FieldValueToString(const FieldValue& v);

/// Description of one reflected member of a component struct.
class FieldInfo {
 public:
  FieldInfo(std::string name, FieldType type, size_t offset)
      : name_(std::move(name)), type_(type), offset_(offset) {}

  const std::string& name() const { return name_; }
  FieldType type() const { return type_; }
  size_t offset() const { return offset_; }

  /// Reads the field from a component instance.
  FieldValue Get(const void* component) const;
  /// Writes the field, converting between numeric representations; returns
  /// InvalidArgument when the value's kind cannot convert to the field type.
  Status Set(void* component, const FieldValue& value) const;

  /// Appends the field's binary encoding (see coding.h) to `out`.
  void Encode(const void* component, std::string* out) const;
  /// Decodes the field from `dec` into the component instance.
  Status Decode(void* component, Decoder* dec) const;

 private:
  template <typename T>
  T* At(void* component) const {
    return reinterpret_cast<T*>(static_cast<char*>(component) + offset_);
  }
  template <typename T>
  const T* At(const void* component) const {
    return reinterpret_cast<const T*>(static_cast<const char*>(component) +
                                      offset_);
  }

  std::string name_;
  FieldType type_;
  size_t offset_;
};

/// Metadata for one registered component type.
class TypeInfo {
 public:
  TypeInfo(std::string name, uint32_t id, size_t size)
      : name_(std::move(name)), id_(id), size_(size) {}

  const std::string& name() const { return name_; }
  uint32_t id() const { return id_; }
  size_t size() const { return size_; }
  const std::vector<FieldInfo>& fields() const { return fields_; }

  /// Finds a field by name, or nullptr.
  const FieldInfo* FindField(std::string_view name) const;

  /// Appends the binary encoding of all fields in declaration order.
  void EncodeComponent(const void* component, std::string* out) const;
  /// Decodes all fields in declaration order.
  Status DecodeComponent(void* component, Decoder* dec) const;

  /// Creates an empty SparseSet<T> store for this type.
  std::unique_ptr<ComponentStore> MakeStore() const { return make_store_(); }

 private:
  template <typename T>
  friend class TypeBuilder;
  friend class TypeRegistry;

  std::string name_;
  uint32_t id_;
  size_t size_;
  std::vector<FieldInfo> fields_;
  std::function<std::unique_ptr<ComponentStore>()> make_store_;
};

namespace internal {
/// Per-component-type slot for the registry-assigned id.
template <typename T>
struct ComponentTag {
  static inline uint32_t id = 0xFFFFFFFFu;
};

template <typename M>
constexpr FieldType FieldTypeOf();
template <>
constexpr FieldType FieldTypeOf<float>() { return FieldType::kFloat; }
template <>
constexpr FieldType FieldTypeOf<double>() { return FieldType::kDouble; }
template <>
constexpr FieldType FieldTypeOf<int32_t>() { return FieldType::kInt32; }
template <>
constexpr FieldType FieldTypeOf<uint32_t>() { return FieldType::kUInt32; }
template <>
constexpr FieldType FieldTypeOf<int64_t>() { return FieldType::kInt64; }
template <>
constexpr FieldType FieldTypeOf<uint64_t>() { return FieldType::kUInt64; }
template <>
constexpr FieldType FieldTypeOf<bool>() { return FieldType::kBool; }
template <>
constexpr FieldType FieldTypeOf<Vec3>() { return FieldType::kVec3; }
template <>
constexpr FieldType FieldTypeOf<std::string>() { return FieldType::kString; }
template <>
constexpr FieldType FieldTypeOf<EntityId>() { return FieldType::kEntity; }
}  // namespace internal

/// Fluent helper returned by TypeRegistry::Register<T>().
template <typename T>
class TypeBuilder {
 public:
  explicit TypeBuilder(TypeInfo* info) : info_(info) {}

  /// Registers member `m` under `name`.
  template <typename M>
  TypeBuilder& Field(std::string name, M T::* m) {
    // Offset of the member within T; components are plain structs.
    auto offset = reinterpret_cast<size_t>(
        &(reinterpret_cast<T const volatile*>(0)->*m));
    info_->fields_.emplace_back(std::move(name),
                                internal::FieldTypeOf<M>(), offset);
    return *this;
  }

  uint32_t id() const { return info_->id(); }

 private:
  TypeInfo* info_;
};

/// Global registry of reflected component types.
///
/// Registration is idempotent per C++ type: re-registering returns the
/// existing entry (so test fixtures may register freely in SetUp).
class TypeRegistry {
 public:
  /// Process-wide registry instance.
  static TypeRegistry& Global();

  /// Registers component type T under `name` and returns a builder for
  /// declaring fields. Name collisions across distinct C++ types abort.
  template <typename T>
  TypeBuilder<T> Register(std::string name) {
    uint32_t& slot = internal::ComponentTag<T>::id;
    if (slot != 0xFFFFFFFFu) {
      // Already registered; return builder positioned on the existing entry
      // only if the name matches.
      GAMEDB_CHECK(types_[slot]->name() == name);
      return TypeBuilder<T>(types_[slot].get());
    }
    GAMEDB_CHECK(by_name_.find(name) == by_name_.end());
    uint32_t id = static_cast<uint32_t>(types_.size());
    auto info = std::make_unique<TypeInfo>(name, id, sizeof(T));
    info->make_store_ = [] {
      return std::unique_ptr<ComponentStore>(new SparseSet<T>());
    };
    by_name_.emplace(info->name(), id);
    types_.push_back(std::move(info));
    slot = id;
    return TypeBuilder<T>(types_[id].get());
  }

  /// Id previously assigned to T, or 0xFFFFFFFF when unregistered.
  template <typename T>
  static uint32_t IdOf() {
    return internal::ComponentTag<T>::id;
  }

  /// Looks up by name; nullptr when unknown.
  const TypeInfo* FindByName(std::string_view name) const;
  /// Looks up by id; nullptr when out of range.
  const TypeInfo* Find(uint32_t id) const;

  size_t size() const { return types_.size(); }

 private:
  std::vector<std::unique_ptr<TypeInfo>> types_;
  std::unordered_map<std::string, uint32_t, std::hash<std::string>,
                     std::equal_to<>>
      by_name_;
};

/// Registers gamedb's standard component vocabulary (Position, Velocity,
/// Health, Combat, Inventory, ...) used by examples, tests and benchmarks.
/// Safe to call more than once.
void RegisterStandardComponents();

// --- Standard components ----------------------------------------------------
// The shared vocabulary of the examples, workloads and benchmarks. Games
// built on gamedb can register any number of their own component types.

/// World-space position.
struct Position {
  Vec3 value;
};
/// Linear velocity (units/sec) and per-axis acceleration bound (units/sec²),
/// the inputs to the causality-bubble motion bound.
struct Velocity {
  Vec3 value;
  float max_accel = 0.0f;
};
/// Hit points.
struct Health {
  float hp = 100.0f;
  float max_hp = 100.0f;
};
/// Combat statistics.
struct Combat {
  float attack = 10.0f;
  float defense = 0.0f;
  float range = 5.0f;
  EntityId target;  // current target, if any
};
/// Player / NPC identity and gold (trade workloads).
struct Actor {
  int64_t account_id = 0;
  int64_t gold = 0;
  int32_t level = 1;
  bool is_player = false;
};
/// Faction tag for targeting decisions.
struct Faction {
  int32_t team = 0;
};
/// Script binding: which behavior script drives this entity.
struct ScriptRef {
  std::string script_name;
};

}  // namespace gamedb
