#include "core/aggregate.h"

// The aggregate indexes are templates; this translation unit exists to anchor
// the module in the build and to hold explicit instantiations for the
// standard component vocabulary, which keeps template bloat out of every
// client object file.

namespace gamedb {

template class SumAggregate<Health>;
template class SumAggregate<Actor>;
template class ExtremaAggregate<Health>;
template class GroupedSumAggregate<Health>;
template class GroupedSumAggregate<Actor>;

}  // namespace gamedb
