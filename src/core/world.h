#pragma once

/// \file world.h
/// The World is gamedb's in-memory game state database: an entity allocator
/// plus one sparse-set table per component type, with a simulation tick
/// counter. All higher layers (queries, scripts, transactions, replication,
/// persistence) operate on a World.
///
/// Paper: the tutorial's framing of a game as a giant data-driven
/// simulation — the entity/component tables are the "game state database"
/// every section of the paper takes as its substrate. Module map and tick
/// walk-through: docs/ARCHITECTURE.md.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "core/entity.h"
#include "core/reflect.h"
#include "core/sparse_set.h"

namespace gamedb {

/// Entity + component database. Not thread-safe for concurrent mutation; the
/// state-effect executor and the transaction managers provide the safe
/// concurrency disciplines on top (see docs/ARCHITECTURE.md
/// "Concurrency disciplines").
class World {
 public:
  World() = default;
  GAMEDB_DISALLOW_COPY(World);

  // --- Entities --------------------------------------------------------

  /// Allocates a new live entity.
  EntityId Create();

  /// Recreates an entity with an exact id (snapshot recovery). Fails with
  /// InvalidArgument if the slot is currently alive with a different
  /// generation or the id is invalid.
  Status CreateWithId(EntityId id);

  /// Destroys `e` and removes all of its components. No-op on dead ids.
  void Destroy(EntityId e);

  /// True when `e` refers to a live entity (index and generation match).
  bool Alive(EntityId e) const {
    return e.valid() && e.index < generations_.size() &&
           generations_[e.index] == e.generation && alive_[e.index];
  }

  /// The live entity currently occupying `slot`, or Invalid when the slot
  /// is dead or out of range. Lets replication reconcile id reuse: a
  /// replica holding a stale generation of a slot can identify and destroy
  /// it before recreating the slot's current occupant.
  EntityId LiveAt(uint32_t slot) const {
    if (slot < generations_.size() && alive_[slot]) {
      return EntityId(slot, generations_[slot]);
    }
    return EntityId::Invalid();
  }

  /// Number of live entities.
  size_t AliveCount() const { return alive_count_; }

  /// Iterates all live entities.
  void ForEachEntity(const std::function<void(EntityId)>& fn) const;

  // --- Components (static typing) ---------------------------------------

  /// Sets (inserts or overwrites) component T on `e`.
  template <typename T>
  T& Set(EntityId e, T value) {
    GAMEDB_DCHECK(Alive(e));
    return Table<T>().Set(e, std::move(value));
  }

  /// Read-only component access; nullptr when absent.
  template <typename T>
  const T* Get(EntityId e) const {
    const SparseSet<T>* t = TableIfExists<T>();
    return t ? t->Get(e) : nullptr;
  }

  /// In-place mutation with version bump + observer notification.
  template <typename T, typename Fn>
  bool Patch(EntityId e, Fn&& fn) {
    return Table<T>().Patch(e, std::forward<Fn>(fn));
  }

  /// Untracked mutable pointer (see SparseSet::GetMutableUntracked).
  template <typename T>
  T* GetMutableUntracked(EntityId e) {
    SparseSet<T>* t = TableIfExistsMutable<T>();
    return t ? t->GetMutableUntracked(e) : nullptr;
  }

  template <typename T>
  bool Has(EntityId e) const {
    const SparseSet<T>* t = TableIfExists<T>();
    return t && t->Contains(e);
  }

  /// Removes component T from `e`; returns whether it was present.
  template <typename T>
  bool Remove(EntityId e) {
    SparseSet<T>* t = TableIfExistsMutable<T>();
    return t && t->Erase(e);
  }

  /// The table for T, created on first use. T must be registered in the
  /// global TypeRegistry (RegisterStandardComponents or a game-specific
  /// registration) before any reflective access, but purely static use works
  /// for registered types too.
  template <typename T>
  SparseSet<T>& Table() {
    uint32_t id = TypeRegistry::IdOf<T>();
    GAMEDB_CHECK(id != 0xFFFFFFFFu);  // register the component type first
    auto it = stores_.find(id);
    if (it == stores_.end()) {
      it = stores_.emplace(id, std::make_unique<SparseSet<T>>()).first;
    }
    return *static_cast<SparseSet<T>*>(it->second.get());
  }

  template <typename T>
  const SparseSet<T>* TableIfExists() const {
    uint32_t id = TypeRegistry::IdOf<T>();
    auto it = stores_.find(id);
    if (it == stores_.end()) return nullptr;
    return static_cast<const SparseSet<T>*>(it->second.get());
  }

  // --- Components (reflective access) -----------------------------------

  /// Store for the component type named `name`, creating it if the type is
  /// registered; nullptr when the name is unknown.
  ComponentStore* StoreByName(std::string_view name);

  /// Store by registry id, creating it when registered; nullptr otherwise.
  ComponentStore* StoreById(uint32_t type_id);

  /// Store by id without creating; nullptr when the world has no such table.
  const ComponentStore* StoreByIdIfExists(uint32_t type_id) const;
  ComponentStore* StoreByIdIfExists(uint32_t type_id);

  /// Iterates every existing table with its type metadata.
  void ForEachStore(
      const std::function<void(const TypeInfo&, ComponentStore&)>& fn);
  void ForEachStore(
      const std::function<void(const TypeInfo&, const ComponentStore&)>& fn)
      const;

  // --- Simulation clock ---------------------------------------------------

  /// Current simulation tick (starts at 0).
  uint64_t tick() const { return tick_; }
  /// Advances the simulation clock by one tick.
  void AdvanceTick() { ++tick_; }
  /// Sets the tick (recovery).
  void SetTick(uint64_t t) { tick_ = t; }

  /// Removes all entities and components (tables stay registered).
  void Clear();

 private:
  template <typename T>
  SparseSet<T>* TableIfExistsMutable() {
    uint32_t id = TypeRegistry::IdOf<T>();
    auto it = stores_.find(id);
    if (it == stores_.end()) return nullptr;
    return static_cast<SparseSet<T>*>(it->second.get());
  }

  std::vector<uint32_t> generations_;
  std::vector<bool> alive_;
  std::vector<uint32_t> free_list_;
  size_t alive_count_ = 0;
  uint64_t tick_ = 0;
  std::unordered_map<uint32_t, std::unique_ptr<ComponentStore>> stores_;
};

}  // namespace gamedb
