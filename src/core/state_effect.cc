#include "core/state_effect.h"

// Explicit instantiations of the common effect payloads so client TUs don't
// each re-instantiate them.

namespace gamedb {

template class Effect<double>;
template class Effect<float>;
template class Effect<Vec3>;

}  // namespace gamedb
