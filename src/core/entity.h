#pragma once

/// \file entity.h
/// Entity identifiers. An entity is a row key into the component tables of a
/// World; the generation counter detects stale references after reuse.

#include <cstdint>
#include <functional>
#include <string>

namespace gamedb {

/// Opaque 64-bit entity handle: 32-bit slot index + 32-bit generation.
///
/// A default-constructed EntityId is invalid. Ids compare equal only when
/// both index and generation match, so holding an id to a destroyed-and-
/// reused slot is detectable (World::Alive returns false).
struct EntityId {
  uint32_t index = 0xFFFFFFFFu;
  uint32_t generation = 0;

  constexpr EntityId() = default;
  constexpr EntityId(uint32_t idx, uint32_t gen) : index(idx), generation(gen) {}

  /// Sentinel invalid id.
  static constexpr EntityId Invalid() { return EntityId(); }

  bool valid() const { return index != 0xFFFFFFFFu; }

  /// Packs to a single u64 (for logs, serialization, hash keys).
  constexpr uint64_t Raw() const {
    return (static_cast<uint64_t>(generation) << 32) | index;
  }
  static constexpr EntityId FromRaw(uint64_t raw) {
    return EntityId(static_cast<uint32_t>(raw & 0xFFFFFFFFu),
                    static_cast<uint32_t>(raw >> 32));
  }

  constexpr bool operator==(const EntityId& o) const {
    return index == o.index && generation == o.generation;
  }
  constexpr bool operator!=(const EntityId& o) const { return !(*this == o); }
  constexpr bool operator<(const EntityId& o) const { return Raw() < o.Raw(); }

  std::string ToString() const {
    return "e" + std::to_string(index) + "v" + std::to_string(generation);
  }
};

}  // namespace gamedb

namespace std {
template <>
struct hash<gamedb::EntityId> {
  size_t operator()(const gamedb::EntityId& e) const noexcept {
    // Fibonacci scrambling of the packed id.
    return static_cast<size_t>(e.Raw() * 0x9E3779B97F4A7C15ull);
  }
};
}  // namespace std
