#pragma once

/// \file change_log.h
/// Net per-window change sets of a component table — the delta layer the
/// incremental view maintenance in views/ consumes (docs/ARCHITECTURE.md
/// "Live views").
///
/// A capturing table (ComponentStore::EnableChangeCapture) appends one
/// record per tracked mutation to a cheap ring; FlushChanges coalesces the
/// ring into *net* changes relative to the window start:
///   - a row added and removed within the window cancels out entirely;
///   - a row present at window start that was updated (any number of times)
///     and finally removed reports only `removed`;
///   - a row removed and re-added reports `updated` (its value may differ);
///   - destroy-then-recreate of an entity slot reports `removed` for the
///     old generation and `added` for the new one (records are keyed by the
///     full 64-bit id, so slot reuse cannot alias).
/// Consumers that re-evaluate every reported entity against current table
/// state therefore converge regardless of the intra-window mutation order.
///
/// The paper connection: this is the change-capture half of materialized
/// view maintenance — the "declarative processing" follow-up's argument
/// that per-tick cost should scale with change volume, not world size.

#include <cstddef>
#include <vector>

#include "core/entity.h"

namespace gamedb {

/// Net changes of one component table over one capture window.
///
/// `added`: rows that exist now but did not at window start.
/// `removed`: rows that existed at window start but are gone now.
/// `updated`: rows that existed throughout but whose value was written.
/// Each vector lists entities in first-mutation order (deterministic for a
/// deterministic mutation sequence); an entity appears in at most one list.
struct ChangeSet {
  std::vector<EntityId> added;
  std::vector<EntityId> removed;
  std::vector<EntityId> updated;

  bool Empty() const {
    return added.empty() && removed.empty() && updated.empty();
  }
  size_t TotalChanges() const {
    return added.size() + removed.size() + updated.size();
  }
  void Clear() {
    added.clear();
    removed.clear();
    updated.clear();
  }
};

}  // namespace gamedb
