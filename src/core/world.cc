#include "core/world.h"

namespace gamedb {

EntityId World::Create() {
  uint32_t index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
  } else {
    index = static_cast<uint32_t>(generations_.size());
    generations_.push_back(0);
    alive_.push_back(false);
  }
  alive_[index] = true;
  ++alive_count_;
  return EntityId(index, generations_[index]);
}

Status World::CreateWithId(EntityId id) {
  if (!id.valid()) return Status::InvalidArgument("invalid entity id");
  if (id.index >= generations_.size()) {
    // Grow; intermediate slots become dead entries available via free list.
    size_t old_size = generations_.size();
    generations_.resize(id.index + 1, 0);
    alive_.resize(id.index + 1, false);
    for (size_t i = old_size; i < id.index; ++i) {
      free_list_.push_back(static_cast<uint32_t>(i));
    }
  }
  if (alive_[id.index]) {
    return Status::InvalidArgument("slot already alive: " + id.ToString());
  }
  // Remove from free list if present (linear; recovery-path only).
  for (size_t i = 0; i < free_list_.size(); ++i) {
    if (free_list_[i] == id.index) {
      free_list_[i] = free_list_.back();
      free_list_.pop_back();
      break;
    }
  }
  generations_[id.index] = id.generation;
  alive_[id.index] = true;
  ++alive_count_;
  return Status::OK();
}

void World::Destroy(EntityId e) {
  if (!Alive(e)) return;
  for (auto& [id, store] : stores_) {
    store->Erase(e);
  }
  alive_[e.index] = false;
  ++generations_[e.index];
  free_list_.push_back(e.index);
  --alive_count_;
}

void World::ForEachEntity(const std::function<void(EntityId)>& fn) const {
  for (uint32_t i = 0; i < generations_.size(); ++i) {
    if (alive_[i]) fn(EntityId(i, generations_[i]));
  }
}

ComponentStore* World::StoreByName(std::string_view name) {
  const TypeInfo* info = TypeRegistry::Global().FindByName(name);
  if (info == nullptr) return nullptr;
  return StoreById(info->id());
}

ComponentStore* World::StoreById(uint32_t type_id) {
  const TypeInfo* info = TypeRegistry::Global().Find(type_id);
  if (info == nullptr) return nullptr;
  auto it = stores_.find(type_id);
  if (it == stores_.end()) {
    it = stores_.emplace(type_id, info->MakeStore()).first;
  }
  return it->second.get();
}

const ComponentStore* World::StoreByIdIfExists(uint32_t type_id) const {
  auto it = stores_.find(type_id);
  if (it == stores_.end()) return nullptr;
  return it->second.get();
}

ComponentStore* World::StoreByIdIfExists(uint32_t type_id) {
  auto it = stores_.find(type_id);
  if (it == stores_.end()) return nullptr;
  return it->second.get();
}

void World::ForEachStore(
    const std::function<void(const TypeInfo&, ComponentStore&)>& fn) {
  for (auto& [id, store] : stores_) {
    const TypeInfo* info = TypeRegistry::Global().Find(id);
    GAMEDB_DCHECK(info != nullptr);
    fn(*info, *store);
  }
}

void World::ForEachStore(
    const std::function<void(const TypeInfo&, const ComponentStore&)>& fn)
    const {
  for (const auto& [id, store] : stores_) {
    const TypeInfo* info = TypeRegistry::Global().Find(id);
    GAMEDB_DCHECK(info != nullptr);
    fn(*info, *store);
  }
}

void World::Clear() {
  for (auto& [id, store] : stores_) store->Clear();
  for (uint32_t i = 0; i < generations_.size(); ++i) {
    if (alive_[i]) {
      alive_[i] = false;
      ++generations_[i];
      free_list_.push_back(i);
    }
  }
  alive_count_ = 0;
  tick_ = 0;
}

}  // namespace gamedb
