#pragma once

/// \file sparse_set.h
/// Sparse-set component tables: the physical storage layer of the game state
/// database. Dense, cache-friendly iteration (the "EnTT-style" layout) with
/// O(1) add/remove/lookup, per-row versions for delta extraction, and change
/// observers that feed maintained aggregate indexes (docs/ARCHITECTURE.md "Maintained aggregates").

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "core/change_log.h"
#include "core/entity.h"

namespace gamedb {

/// Kind of change reported to table observers.
enum class ChangeKind : uint8_t { kAdd, kUpdate, kRemove };

/// Type-erased interface over SparseSet<T>, used by reflection-driven code
/// (serialization, scripts, prefabs) that does not know T statically.
class ComponentStore {
 public:
  virtual ~ComponentStore() = default;

  /// Number of rows (entities) in the table.
  virtual size_t Size() const = 0;
  /// True if `e` has a row.
  virtual bool Contains(EntityId e) const = 0;
  /// Removes `e`'s row if present; returns whether a row was removed.
  virtual bool Erase(EntityId e) = 0;
  /// Entity at dense position `i` (i < Size()).
  virtual EntityId EntityAt(size_t i) const = 0;
  /// Dense position of `e`'s row, or npos when absent. The inverse of
  /// EntityAt; planned query execution uses it to restore the table's scan
  /// order after an index delivered matches in index order.
  static constexpr size_t kNoDenseIndex = std::numeric_limits<size_t>::max();
  virtual size_t DenseIndexOf(EntityId e) const = 0;
  /// Raw pointer to the component at dense position `i`.
  virtual void* ValueAt(size_t i) = 0;
  virtual const void* ValueAt(size_t i) const = 0;
  /// Raw pointer to `e`'s component, or nullptr.
  virtual void* Find(EntityId e) = 0;
  virtual const void* Find(EntityId e) const = 0;
  /// Inserts a default-constructed component for `e` (no-op if present) and
  /// returns a pointer to it.
  virtual void* EmplaceDefault(EntityId e) = 0;
  /// Removes all rows.
  virtual void Clear() = 0;
  /// Monotonic version; bumped on every add/update/remove.
  virtual uint64_t last_version() const = 0;
  /// Version of the row at dense position `i`.
  virtual uint64_t VersionAt(size_t i) const = 0;
  /// Marks `e` updated (bumps its row version, notifies observers). The
  /// update notification carries old_value == nullptr, so tables with
  /// subscribed value-maintained aggregates must use PatchRaw instead.
  virtual void Touch(EntityId e) = 0;
  /// Type-erased in-place mutation: runs `mutate` on the component storage
  /// and notifies observers with correct old/new values. Returns false when
  /// `e` has no row. This is the reflection-layer analogue of Patch.
  virtual bool PatchRaw(EntityId e,
                        const std::function<void(void*)>& mutate) = 0;
  /// Type-erased removal-log iteration (see ForEachRemovedSince).
  virtual void ForEachRemoved(
      uint64_t since, const std::function<void(EntityId)>& fn) const = 0;

  // --- Change capture (incremental view maintenance; core/change_log.h) ---

  /// Starts recording every tracked mutation (Set/Patch/PatchRaw/Touch/
  /// Erase) into a per-table change ring. Idempotent. Writes that bypass
  /// tracking (GetMutableUntracked without Touch) are invisible here, the
  /// same contract maintained aggregates live with. A capturing table whose
  /// ring is never flushed grows it without bound — enable capture only
  /// when something (a views::ViewCatalog) flushes each tick.
  virtual void EnableChangeCapture() = 0;
  /// Stops capturing and discards any buffered records (the flusher went
  /// away — e.g. a views::ViewCatalog was destroyed).
  virtual void DisableChangeCapture() = 0;
  virtual bool change_capture_enabled() const = 0;
  /// Coalesces the ring into net changes since the last flush (see
  /// ChangeSet) and clears it. `out` is Clear()ed first. With capture
  /// disabled this reports nothing.
  virtual void FlushChanges(ChangeSet* out) = 0;
  /// Raw (un-coalesced) records currently buffered; diagnostics and tests.
  virtual size_t pending_change_records() const = 0;

  /// Number of live change observers subscribed to this table. Observers see
  /// old/new values on Patch but old == nullptr on Touch, so code that wants
  /// to substitute Touch for Patch (direct-write fast paths) must check this
  /// is zero first.
  virtual size_t observer_count() const = 0;
};

/// Dense table of components of type T keyed by entity.
///
/// Layout: `dense_entities_[i]` and `dense_values_[i]` are parallel arrays;
/// `sparse_[entity.index]` maps to the dense position. Removal swaps with the
/// last row, so iteration order is unspecified but iteration is contiguous.
template <typename T>
class SparseSet final : public ComponentStore {
 public:
  using Observer =
      std::function<void(ChangeKind, EntityId, const T* old_value,
                         const T* new_value)>;

  SparseSet() = default;
  GAMEDB_DISALLOW_COPY(SparseSet);

  /// Inserts or overwrites the component for `e`; returns a reference to the
  /// stored value. Counts as kAdd when new, kUpdate when overwriting.
  T& Set(EntityId e, T value) {
    GAMEDB_DCHECK(e.valid());
    uint32_t pos = SparsePos(e);
    if (pos != kNpos && dense_entities_[pos] == e) {
      T old = dense_values_[pos];
      dense_values_[pos] = std::move(value);
      row_versions_[pos] = ++version_;
      Capture(ChangeKind::kUpdate, e);
      Notify(ChangeKind::kUpdate, e, &old, &dense_values_[pos]);
      return dense_values_[pos];
    }
    EnsureSparse(e.index);
    sparse_[e.index] = static_cast<uint32_t>(dense_entities_.size());
    dense_entities_.push_back(e);
    dense_values_.push_back(std::move(value));
    row_versions_.push_back(++version_);
    Capture(ChangeKind::kAdd, e);
    Notify(ChangeKind::kAdd, e, nullptr, &dense_values_.back());
    return dense_values_.back();
  }

  /// Returns the component for `e`, or nullptr. Does not bump versions; use
  /// GetMutable for writes that must be observed.
  const T* Get(EntityId e) const {
    uint32_t pos = SparsePos(e);
    if (pos == kNpos || !(dense_entities_[pos] == e)) return nullptr;
    return &dense_values_[pos];
  }

  /// Mutable access that bumps the row version and notifies observers with
  /// the post-mutation value. The callback edits the component in place.
  template <typename Fn>
  bool Patch(EntityId e, Fn&& fn) {
    uint32_t pos = SparsePos(e);
    if (pos == kNpos || !(dense_entities_[pos] == e)) return false;
    T old = dense_values_[pos];
    fn(dense_values_[pos]);
    row_versions_[pos] = ++version_;
    Capture(ChangeKind::kUpdate, e);
    Notify(ChangeKind::kUpdate, e, &old, &dense_values_[pos]);
    return true;
  }

  /// Mutable pointer WITHOUT version bump or observer notification. Intended
  /// for hot loops that finish with an explicit Touch(e), or for state that
  /// no index subscribes to.
  T* GetMutableUntracked(EntityId e) {
    uint32_t pos = SparsePos(e);
    if (pos == kNpos || !(dense_entities_[pos] == e)) return nullptr;
    return &dense_values_[pos];
  }

  bool Contains(EntityId e) const override {
    uint32_t pos = SparsePos(e);
    return pos != kNpos && dense_entities_[pos] == e;
  }

  bool Erase(EntityId e) override {
    uint32_t pos = SparsePos(e);
    if (pos == kNpos || !(dense_entities_[pos] == e)) return false;
    T old = std::move(dense_values_[pos]);
    uint32_t last = static_cast<uint32_t>(dense_entities_.size() - 1);
    if (pos != last) {
      dense_entities_[pos] = dense_entities_[last];
      dense_values_[pos] = std::move(dense_values_[last]);
      row_versions_[pos] = row_versions_[last];
      sparse_[dense_entities_[pos].index] = pos;
    }
    dense_entities_.pop_back();
    dense_values_.pop_back();
    row_versions_.pop_back();
    sparse_[e.index] = kNpos;
    ++version_;
    removed_log_.push_back({e, version_});
    Capture(ChangeKind::kRemove, e);
    Notify(ChangeKind::kRemove, e, &old, nullptr);
    return true;
  }

  size_t Size() const override { return dense_entities_.size(); }
  EntityId EntityAt(size_t i) const override { return dense_entities_[i]; }
  size_t DenseIndexOf(EntityId e) const override {
    uint32_t pos = SparsePos(e);
    if (pos == kNpos || !(dense_entities_[pos] == e)) return kNoDenseIndex;
    return pos;
  }
  void* ValueAt(size_t i) override { return &dense_values_[i]; }
  const void* ValueAt(size_t i) const override { return &dense_values_[i]; }
  void* Find(EntityId e) override {
    return const_cast<T*>(Get(e));
  }
  const void* Find(EntityId e) const override { return Get(e); }
  void* EmplaceDefault(EntityId e) override {
    if (const T* existing = Get(e)) return const_cast<T*>(existing);
    return &Set(e, T{});
  }

  void Clear() override {
    // Report removals so observers (aggregates) stay consistent.
    while (!dense_entities_.empty()) {
      Erase(dense_entities_.back());
    }
  }

  uint64_t last_version() const override { return version_; }
  uint64_t VersionAt(size_t i) const override { return row_versions_[i]; }

  void Touch(EntityId e) override {
    uint32_t pos = SparsePos(e);
    if (pos == kNpos || !(dense_entities_[pos] == e)) return;
    row_versions_[pos] = ++version_;
    Capture(ChangeKind::kUpdate, e);
    Notify(ChangeKind::kUpdate, e, nullptr, &dense_values_[pos]);
  }

  bool PatchRaw(EntityId e,
                const std::function<void(void*)>& mutate) override {
    return Patch(e, [&](T& value) { mutate(&value); });
  }

  void ForEachRemoved(
      uint64_t since,
      const std::function<void(EntityId)>& fn) const override {
    ForEachRemovedSince(since, fn);
  }

  void EnableChangeCapture() override { capture_ = true; }
  void DisableChangeCapture() override {
    capture_ = false;
    change_log_.clear();
  }
  bool change_capture_enabled() const override { return capture_; }
  size_t pending_change_records() const override {
    return change_log_.size();
  }

  void FlushChanges(ChangeSet* out) override {
    out->Clear();
    if (change_log_.empty()) return;
    // Coalescing scratch is reused across flushes (this runs once per
    // captured table per tick — the path whose cost must stay
    // O(change volume), not O(allocations)).
    auto& net = flush_net_;
    auto& order = flush_order_;
    net.clear();
    order.clear();
    net.reserve(change_log_.size());
    for (const auto& [kind, e] : change_log_) {
      auto [it, inserted] = net.try_emplace(e.Raw());
      NetState& s = it->second;
      if (inserted) {
        order.push_back(e);
        // The first record tells us the window-start state: a row can only
        // be added if absent, and only updated/removed if present.
        s.existed_at_start = kind != ChangeKind::kAdd;
        s.present = kind != ChangeKind::kRemove;
        s.updated = kind == ChangeKind::kUpdate;
      } else {
        switch (kind) {
          case ChangeKind::kAdd:
            s.present = true;
            // Removed then re-added: the row existed at window start and
            // exists now, but its value may differ — net update.
            if (s.existed_at_start) s.updated = true;
            break;
          case ChangeKind::kUpdate:
            s.updated = true;
            break;
          case ChangeKind::kRemove:
            s.present = false;
            break;
        }
      }
    }
    for (EntityId e : order) {
      const NetState& s = net[e.Raw()];
      if (s.existed_at_start && !s.present) {
        out->removed.push_back(e);
      } else if (!s.existed_at_start && s.present) {
        out->added.push_back(e);
      } else if (s.existed_at_start && s.present && s.updated) {
        out->updated.push_back(e);
      }
      // !existed && !present: added and removed within the window — no net
      // change, nothing reported.
    }
    change_log_.clear();
  }

  /// Iterates all rows: fn(EntityId, T&).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < dense_entities_.size(); ++i) {
      fn(dense_entities_[i], dense_values_[i]);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < dense_entities_.size(); ++i) {
      fn(dense_entities_[i], dense_values_[i]);
    }
  }

  /// Iterates rows whose version is > `since`: fn(EntityId, const T&).
  template <typename Fn>
  void ForEachChangedSince(uint64_t since, Fn&& fn) const {
    for (size_t i = 0; i < dense_entities_.size(); ++i) {
      if (row_versions_[i] > since) fn(dense_entities_[i], dense_values_[i]);
    }
  }

  /// Iterates removals recorded after `since`: fn(EntityId).
  template <typename Fn>
  void ForEachRemovedSince(uint64_t since, Fn&& fn) const {
    for (const auto& r : removed_log_) {
      if (r.version > since) fn(r.entity);
    }
  }

  /// Drops removal-log entries at or before `before` (call once all
  /// subscribers have consumed up to that version).
  void TrimRemovedLog(uint64_t before) {
    size_t keep = 0;
    for (size_t i = 0; i < removed_log_.size(); ++i) {
      if (removed_log_[i].version > before) removed_log_[keep++] = removed_log_[i];
    }
    removed_log_.resize(keep);
  }

  /// Registers a change observer; returns a handle for Unsubscribe.
  size_t Subscribe(Observer obs) {
    observers_.push_back(std::move(obs));
    return observers_.size() - 1;
  }
  void Unsubscribe(size_t handle) {
    GAMEDB_DCHECK(handle < observers_.size());
    observers_[handle] = nullptr;
  }

  size_t observer_count() const override {
    size_t n = 0;
    for (const auto& obs : observers_) {
      if (obs) ++n;
    }
    return n;
  }

  /// Direct access to the dense arrays (hot loops, benchmarks).
  const std::vector<EntityId>& entities() const { return dense_entities_; }
  std::vector<T>& values() { return dense_values_; }
  const std::vector<T>& values() const { return dense_values_; }

 private:
  static constexpr uint32_t kNpos = std::numeric_limits<uint32_t>::max();

  struct Removal {
    EntityId entity;
    uint64_t version;
  };

  /// One raw change-capture record (coalesced at FlushChanges).
  struct ChangeRec {
    ChangeKind kind;
    EntityId entity;
  };

  /// Net state per entity over a capture window, keyed by the full 64-bit
  /// id so destroy-then-recreate of a slot yields two distinct entries.
  struct NetState {
    bool existed_at_start = false;
    bool present = false;
    bool updated = false;
  };

  void Capture(ChangeKind kind, EntityId e) {
    if (capture_) change_log_.push_back(ChangeRec{kind, e});
  }

  uint32_t SparsePos(EntityId e) const {
    if (e.index >= sparse_.size()) return kNpos;
    return sparse_[e.index];
  }

  void EnsureSparse(uint32_t index) {
    if (index >= sparse_.size()) sparse_.resize(index + 1, kNpos);
  }

  void Notify(ChangeKind kind, EntityId e, const T* old_value,
              const T* new_value) {
    for (auto& obs : observers_) {
      if (obs) obs(kind, e, old_value, new_value);
    }
  }

  std::vector<uint32_t> sparse_;
  std::vector<EntityId> dense_entities_;
  std::vector<T> dense_values_;
  std::vector<uint64_t> row_versions_;
  std::vector<Removal> removed_log_;
  std::vector<Observer> observers_;
  std::vector<ChangeRec> change_log_;
  /// FlushChanges coalescing scratch, reused across flushes.
  std::unordered_map<uint64_t, NetState> flush_net_;
  std::vector<EntityId> flush_order_;
  bool capture_ = false;
  uint64_t version_ = 0;
};

}  // namespace gamedb
