#include "core/reflect.h"

#include <cstring>

#include "common/string_util.h"

namespace gamedb {

const char* FieldTypeName(FieldType t) {
  switch (t) {
    case FieldType::kFloat:
      return "float";
    case FieldType::kDouble:
      return "double";
    case FieldType::kInt32:
      return "int32";
    case FieldType::kUInt32:
      return "uint32";
    case FieldType::kInt64:
      return "int64";
    case FieldType::kUInt64:
      return "uint64";
    case FieldType::kBool:
      return "bool";
    case FieldType::kVec3:
      return "vec3";
    case FieldType::kString:
      return "string";
    case FieldType::kEntity:
      return "entity";
  }
  return "?";
}

std::string FieldValueToString(const FieldValue& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using V = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<V, double>) {
          return StringFormat("%g", x);
        } else if constexpr (std::is_same_v<V, int64_t>) {
          return std::to_string(x);
        } else if constexpr (std::is_same_v<V, bool>) {
          return x ? "true" : "false";
        } else if constexpr (std::is_same_v<V, Vec3>) {
          return x.ToString();
        } else if constexpr (std::is_same_v<V, std::string>) {
          return x;
        } else {
          return x.ToString();  // EntityId
        }
      },
      v);
}

FieldValue FieldInfo::Get(const void* component) const {
  switch (type_) {
    case FieldType::kFloat:
      return static_cast<double>(*At<float>(component));
    case FieldType::kDouble:
      return *At<double>(component);
    case FieldType::kInt32:
      return static_cast<int64_t>(*At<int32_t>(component));
    case FieldType::kUInt32:
      return static_cast<int64_t>(*At<uint32_t>(component));
    case FieldType::kInt64:
      return *At<int64_t>(component);
    case FieldType::kUInt64:
      return static_cast<int64_t>(*At<uint64_t>(component));
    case FieldType::kBool:
      return *At<bool>(component);
    case FieldType::kVec3:
      return *At<Vec3>(component);
    case FieldType::kString:
      return *At<std::string>(component);
    case FieldType::kEntity:
      return *At<EntityId>(component);
  }
  return FieldValue(int64_t{0});
}

namespace {

/// Extracts a numeric value out of a FieldValue (double or int64), allowing
/// cross-assignment between numeric field kinds.
bool AsNumeric(const FieldValue& v, double* out) {
  if (const double* d = std::get_if<double>(&v)) {
    *out = *d;
    return true;
  }
  if (const int64_t* i = std::get_if<int64_t>(&v)) {
    *out = static_cast<double>(*i);
    return true;
  }
  if (const bool* b = std::get_if<bool>(&v)) {
    *out = *b ? 1.0 : 0.0;
    return true;
  }
  return false;
}

}  // namespace

Status FieldInfo::Set(void* component, const FieldValue& value) const {
  double num = 0.0;
  switch (type_) {
    case FieldType::kFloat:
      if (!AsNumeric(value, &num))
        return Status::InvalidArgument("field " + name_ + " expects number");
      *At<float>(component) = static_cast<float>(num);
      return Status::OK();
    case FieldType::kDouble:
      if (!AsNumeric(value, &num))
        return Status::InvalidArgument("field " + name_ + " expects number");
      *At<double>(component) = num;
      return Status::OK();
    case FieldType::kInt32:
      if (!AsNumeric(value, &num))
        return Status::InvalidArgument("field " + name_ + " expects number");
      *At<int32_t>(component) = static_cast<int32_t>(num);
      return Status::OK();
    case FieldType::kUInt32:
      if (!AsNumeric(value, &num))
        return Status::InvalidArgument("field " + name_ + " expects number");
      *At<uint32_t>(component) = static_cast<uint32_t>(num);
      return Status::OK();
    case FieldType::kInt64:
      if (const int64_t* i = std::get_if<int64_t>(&value)) {
        *At<int64_t>(component) = *i;
        return Status::OK();
      }
      if (!AsNumeric(value, &num))
        return Status::InvalidArgument("field " + name_ + " expects number");
      *At<int64_t>(component) = static_cast<int64_t>(num);
      return Status::OK();
    case FieldType::kUInt64:
      if (const int64_t* i = std::get_if<int64_t>(&value)) {
        *At<uint64_t>(component) = static_cast<uint64_t>(*i);
        return Status::OK();
      }
      if (!AsNumeric(value, &num))
        return Status::InvalidArgument("field " + name_ + " expects number");
      *At<uint64_t>(component) = static_cast<uint64_t>(num);
      return Status::OK();
    case FieldType::kBool:
      if (const bool* b = std::get_if<bool>(&value)) {
        *At<bool>(component) = *b;
        return Status::OK();
      }
      if (AsNumeric(value, &num)) {
        *At<bool>(component) = num != 0.0;
        return Status::OK();
      }
      return Status::InvalidArgument("field " + name_ + " expects bool");
    case FieldType::kVec3:
      if (const Vec3* vv = std::get_if<Vec3>(&value)) {
        *At<Vec3>(component) = *vv;
        return Status::OK();
      }
      return Status::InvalidArgument("field " + name_ + " expects vec3");
    case FieldType::kString:
      if (const std::string* s = std::get_if<std::string>(&value)) {
        *At<std::string>(component) = *s;
        return Status::OK();
      }
      return Status::InvalidArgument("field " + name_ + " expects string");
    case FieldType::kEntity:
      if (const EntityId* e = std::get_if<EntityId>(&value)) {
        *At<EntityId>(component) = *e;
        return Status::OK();
      }
      return Status::InvalidArgument("field " + name_ + " expects entity");
  }
  return Status::InvalidArgument("unknown field type");
}

void FieldInfo::Encode(const void* component, std::string* out) const {
  switch (type_) {
    case FieldType::kFloat:
      PutFloat(out, *At<float>(component));
      return;
    case FieldType::kDouble:
      PutDouble(out, *At<double>(component));
      return;
    case FieldType::kInt32:
      PutVarintSigned64(out, *At<int32_t>(component));
      return;
    case FieldType::kUInt32:
      PutVarint64(out, *At<uint32_t>(component));
      return;
    case FieldType::kInt64:
      PutVarintSigned64(out, *At<int64_t>(component));
      return;
    case FieldType::kUInt64:
      PutVarint64(out, *At<uint64_t>(component));
      return;
    case FieldType::kBool:
      out->push_back(*At<bool>(component) ? 1 : 0);
      return;
    case FieldType::kVec3: {
      const Vec3& v = *At<Vec3>(component);
      PutFloat(out, v.x);
      PutFloat(out, v.y);
      PutFloat(out, v.z);
      return;
    }
    case FieldType::kString:
      PutLengthPrefixed(out, *At<std::string>(component));
      return;
    case FieldType::kEntity:
      PutFixed64(out, At<EntityId>(component)->Raw());
      return;
  }
}

Status FieldInfo::Decode(void* component, Decoder* dec) const {
  switch (type_) {
    case FieldType::kFloat:
      return dec->GetFloat(At<float>(component));
    case FieldType::kDouble:
      return dec->GetDouble(At<double>(component));
    case FieldType::kInt32: {
      int64_t v;
      GAMEDB_RETURN_NOT_OK(dec->GetVarintSigned64(&v));
      *At<int32_t>(component) = static_cast<int32_t>(v);
      return Status::OK();
    }
    case FieldType::kUInt32: {
      uint64_t v;
      GAMEDB_RETURN_NOT_OK(dec->GetVarint64(&v));
      *At<uint32_t>(component) = static_cast<uint32_t>(v);
      return Status::OK();
    }
    case FieldType::kInt64:
      return dec->GetVarintSigned64(At<int64_t>(component));
    case FieldType::kUInt64:
      return dec->GetVarint64(At<uint64_t>(component));
    case FieldType::kBool: {
      std::string_view raw;
      GAMEDB_RETURN_NOT_OK(dec->GetRaw(1, &raw));
      *At<bool>(component) = raw[0] != 0;
      return Status::OK();
    }
    case FieldType::kVec3: {
      Vec3* v = At<Vec3>(component);
      GAMEDB_RETURN_NOT_OK(dec->GetFloat(&v->x));
      GAMEDB_RETURN_NOT_OK(dec->GetFloat(&v->y));
      return dec->GetFloat(&v->z);
    }
    case FieldType::kString: {
      std::string_view s;
      GAMEDB_RETURN_NOT_OK(dec->GetLengthPrefixed(&s));
      *At<std::string>(component) = std::string(s);
      return Status::OK();
    }
    case FieldType::kEntity: {
      uint64_t raw;
      GAMEDB_RETURN_NOT_OK(dec->GetFixed64(&raw));
      *At<EntityId>(component) = EntityId::FromRaw(raw);
      return Status::OK();
    }
  }
  return Status::Corruption("unknown field type tag");
}

const FieldInfo* TypeInfo::FindField(std::string_view name) const {
  for (const auto& f : fields_) {
    if (f.name() == name) return &f;
  }
  return nullptr;
}

void TypeInfo::EncodeComponent(const void* component, std::string* out) const {
  for (const auto& f : fields_) f.Encode(component, out);
}

Status TypeInfo::DecodeComponent(void* component, Decoder* dec) const {
  for (const auto& f : fields_) {
    GAMEDB_RETURN_NOT_OK(f.Decode(component, dec));
  }
  return Status::OK();
}

TypeRegistry& TypeRegistry::Global() {
  static TypeRegistry* registry = new TypeRegistry();
  return *registry;
}

const TypeInfo* TypeRegistry::FindByName(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return nullptr;
  return types_[it->second].get();
}

const TypeInfo* TypeRegistry::Find(uint32_t id) const {
  if (id >= types_.size()) return nullptr;
  return types_[id].get();
}

void RegisterStandardComponents() {
  static bool done = [] {
    auto& reg = TypeRegistry::Global();
    reg.Register<Position>("Position").Field("value", &Position::value);
    reg.Register<Velocity>("Velocity")
        .Field("value", &Velocity::value)
        .Field("max_accel", &Velocity::max_accel);
    reg.Register<Health>("Health")
        .Field("hp", &Health::hp)
        .Field("max_hp", &Health::max_hp);
    reg.Register<Combat>("Combat")
        .Field("attack", &Combat::attack)
        .Field("defense", &Combat::defense)
        .Field("range", &Combat::range)
        .Field("target", &Combat::target);
    reg.Register<Actor>("Actor")
        .Field("account_id", &Actor::account_id)
        .Field("gold", &Actor::gold)
        .Field("level", &Actor::level)
        .Field("is_player", &Actor::is_player);
    reg.Register<Faction>("Faction").Field("team", &Faction::team);
    reg.Register<ScriptRef>("ScriptRef")
        .Field("script_name", &ScriptRef::script_name);
    return true;
  }();
  (void)done;
}

}  // namespace gamedb
