#pragma once

/// \file aggregate.h
/// Incrementally-maintained aggregate indexes over component tables.
///
/// This is the database trick the tutorial attributes to the SGL line of
/// work [11, 13]: instead of scripts recomputing "sum of hp of my faction"
/// by iterating every entity every frame (Ω(n) per reader, Ω(n²) overall),
/// the engine maintains the aggregate as a view that updates in O(1)/O(log n)
/// per component write. Benchmarked in E1 and E10.

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "common/macros.h"
#include "core/sparse_set.h"
#include "core/world.h"

namespace gamedb {

/// Exact running sum/count with O(1) add/remove. Used standalone and as the
/// building block of the maintained aggregates.
struct RunningSum {
  double sum = 0.0;
  int64_t count = 0;

  void Add(double v) {
    sum += v;
    ++count;
  }
  void Remove(double v) {
    sum -= v;
    --count;
    GAMEDB_DCHECK(count >= 0);
  }
  double Average() const { return count == 0 ? 0.0 : sum / count; }
};

/// Maintained SUM/COUNT/AVG over a numeric projection of component T.
///
/// Subscribes to the table's change stream on construction and unsubscribes
/// on destruction. Reads are O(1); maintenance is O(1) per tracked write.
/// Writes that bypass tracking (GetMutableUntracked without Touch) are
/// invisible — that contract is what E1 measures the value of.
template <typename T>
class SumAggregate {
 public:
  using Projection = std::function<double(const T&)>;

  SumAggregate(World& world, Projection proj)
      : table_(world.Table<T>()), proj_(std::move(proj)) {
    // Fold in existing rows, then subscribe for future changes.
    table_.ForEach([this](EntityId, const T& v) { state_.Add(proj_(v)); });
    handle_ = table_.Subscribe(
        [this](ChangeKind kind, EntityId, const T* old_v, const T* new_v) {
          OnChange(kind, old_v, new_v);
        });
  }

  ~SumAggregate() { table_.Unsubscribe(handle_); }
  GAMEDB_DISALLOW_COPY(SumAggregate);

  double sum() const { return state_.sum; }
  int64_t count() const { return state_.count; }
  double average() const { return state_.Average(); }

 private:
  void OnChange(ChangeKind kind, const T* old_v, const T* new_v) {
    switch (kind) {
      case ChangeKind::kAdd:
        state_.Add(proj_(*new_v));
        break;
      case ChangeKind::kUpdate:
        // Sum maintenance needs the old contribution. Set/Patch/PatchRaw
        // updates carry it; Touch() passes old=null and is therefore
        // incompatible with tables that have sum aggregates subscribed —
        // fail loudly rather than silently corrupt the index.
        GAMEDB_CHECK(old_v != nullptr);
        state_.Remove(proj_(*old_v));
        state_.Add(proj_(*new_v));
        break;
      case ChangeKind::kRemove:
        state_.Remove(proj_(*old_v));
        break;
    }
  }

  SparseSet<T>& table_;
  Projection proj_;
  RunningSum state_;
  size_t handle_;
};

/// Maintained MIN/MAX over a numeric projection of component T, exact under
/// removal (multiset-backed, O(log n) per tracked write).
template <typename T>
class ExtremaAggregate {
 public:
  using Projection = std::function<double(const T&)>;

  ExtremaAggregate(World& world, Projection proj)
      : table_(world.Table<T>()), proj_(std::move(proj)) {
    table_.ForEach(
        [this](EntityId, const T& v) { values_.insert(proj_(v)); });
    handle_ = table_.Subscribe(
        [this](ChangeKind kind, EntityId, const T* old_v, const T* new_v) {
          OnChange(kind, old_v, new_v);
        });
  }

  ~ExtremaAggregate() { table_.Unsubscribe(handle_); }
  GAMEDB_DISALLOW_COPY(ExtremaAggregate);

  bool empty() const { return values_.empty(); }
  /// Smallest / largest projected value; callers must check empty() first.
  double min() const {
    GAMEDB_DCHECK(!values_.empty());
    return *values_.begin();
  }
  double max() const {
    GAMEDB_DCHECK(!values_.empty());
    return *values_.rbegin();
  }

 private:
  void OnChange(ChangeKind kind, const T* old_v, const T* new_v) {
    if (kind != ChangeKind::kAdd) {
      GAMEDB_CHECK(old_v != nullptr);  // Touch() is unsupported; see above
      auto it = values_.find(proj_(*old_v));
      GAMEDB_DCHECK(it != values_.end());
      values_.erase(it);
    }
    if (kind != ChangeKind::kRemove) {
      values_.insert(proj_(*new_v));
    }
  }

  SparseSet<T>& table_;
  Projection proj_;
  std::multiset<double> values_;
  size_t handle_;
};

/// Maintained per-group SUM/COUNT: GROUP BY key(component) with an int64
/// grouping key (faction id, zone id, guild id...).
///
/// The group key must be derivable from the component value alone so that
/// updates can move a row between groups.
template <typename T>
class GroupedSumAggregate {
 public:
  using Projection = std::function<double(const T&)>;
  using KeyFn = std::function<int64_t(const T&)>;

  GroupedSumAggregate(World& world, KeyFn key, Projection proj)
      : table_(world.Table<T>()), key_(std::move(key)), proj_(std::move(proj)) {
    table_.ForEach([this](EntityId, const T& v) {
      groups_[key_(v)].Add(proj_(v));
    });
    handle_ = table_.Subscribe(
        [this](ChangeKind kind, EntityId, const T* old_v, const T* new_v) {
          OnChange(kind, old_v, new_v);
        });
  }

  ~GroupedSumAggregate() { table_.Unsubscribe(handle_); }
  GAMEDB_DISALLOW_COPY(GroupedSumAggregate);

  /// Sum for `group`; 0 for absent groups.
  double SumOf(int64_t group) const {
    auto it = groups_.find(group);
    return it == groups_.end() ? 0.0 : it->second.sum;
  }
  int64_t CountOf(int64_t group) const {
    auto it = groups_.find(group);
    return it == groups_.end() ? 0 : it->second.count;
  }
  size_t group_count() const { return groups_.size(); }

  /// Iterates groups: fn(key, sum, count).
  void ForEachGroup(
      const std::function<void(int64_t, double, int64_t)>& fn) const {
    for (const auto& [k, rs] : groups_) fn(k, rs.sum, rs.count);
  }

 private:
  void OnChange(ChangeKind kind, const T* old_v, const T* new_v) {
    if (kind != ChangeKind::kAdd) {
      GAMEDB_CHECK(old_v != nullptr);  // Touch() is unsupported; see above
      auto it = groups_.find(key_(*old_v));
      GAMEDB_DCHECK(it != groups_.end());
      it->second.Remove(proj_(*old_v));
      if (it->second.count == 0) groups_.erase(it);
    }
    if (kind != ChangeKind::kRemove) {
      groups_[key_(*new_v)].Add(proj_(*new_v));
    }
  }

  SparseSet<T>& table_;
  KeyFn key_;
  Projection proj_;
  std::map<int64_t, RunningSum> groups_;
  size_t handle_;
};

}  // namespace gamedb
