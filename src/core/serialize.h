#pragma once

/// \file serialize.h
/// Whole-world snapshot encoding. Snapshots are the unit of checkpointing in
/// the persistence layer and the "full state" message of the replication
/// layer. The format is self-describing at the table level (component type
/// names) and CRC-framed, so recovery detects truncated or corrupt images.
///
/// Format (all little-endian, see common/coding.h):
///   magic "GDBSNAP1"
///   varint  tick
///   varint  live entity count, then fixed64 raw ids (ascending index)
///   varint  table count, then per table (ordered by type name):
///     length-prefixed type name
///     varint row count, then per row: fixed64 entity id + encoded fields
///   fixed32 masked CRC-32C of everything above

#include <string>

#include "common/status.h"
#include "core/world.h"

namespace gamedb {

/// Serializes the full state of `world` (entities + all registered component
/// tables) into `out`.
void EncodeWorldSnapshot(const World& world, std::string* out);

/// Replaces the contents of `world` with the snapshot in `data`. On error
/// the world may be partially populated; callers should treat any non-OK
/// return as "snapshot unusable" and retry with an older checkpoint (the
/// recovery manager does exactly that).
Status DecodeWorldSnapshot(std::string_view data, World* world);

/// Encodes a single entity's components (the per-entity record format used
/// by the blob store and the replication delta codec):
///   varint component count, per component: length-prefixed type name +
///   length-prefixed field payload.
void EncodeEntityRecord(const World& world, EntityId e, std::string* out);

/// Applies an entity record onto `e` in `world` (components are created or
/// overwritten; components absent from the record are left untouched).
Status DecodeEntityRecord(std::string_view data, World* world, EntityId e);

}  // namespace gamedb
