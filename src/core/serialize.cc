#include "core/serialize.h"

#include <algorithm>
#include <vector>

#include "common/coding.h"
#include "common/crc32.h"

namespace gamedb {

namespace {
constexpr char kMagic[] = "GDBSNAP1";
constexpr size_t kMagicLen = 8;
}  // namespace

void EncodeWorldSnapshot(const World& world, std::string* out) {
  out->append(kMagic, kMagicLen);
  PutVarint64(out, world.tick());

  // Entities, ascending index for determinism.
  std::vector<EntityId> entities;
  entities.reserve(world.AliveCount());
  world.ForEachEntity([&](EntityId e) { entities.push_back(e); });
  PutVarint64(out, entities.size());
  for (EntityId e : entities) PutFixed64(out, e.Raw());

  // Tables, ordered by type name (unordered_map iteration is not stable).
  std::vector<std::pair<const TypeInfo*, const ComponentStore*>> tables;
  world.ForEachStore(
      [&](const TypeInfo& info, const ComponentStore& store) {
        tables.emplace_back(&info, &store);
      });
  std::sort(tables.begin(), tables.end(), [](const auto& a, const auto& b) {
    return a.first->name() < b.first->name();
  });

  PutVarint64(out, tables.size());
  for (const auto& [info, store] : tables) {
    PutLengthPrefixed(out, info->name());
    PutVarint64(out, store->Size());
    // Rows in ascending entity order for determinism.
    std::vector<size_t> order(store->Size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return store->EntityAt(a).Raw() < store->EntityAt(b).Raw();
    });
    for (size_t i : order) {
      PutFixed64(out, store->EntityAt(i).Raw());
      info->EncodeComponent(store->ValueAt(i), out);
    }
  }

  uint32_t crc = Crc32c(out->data(), out->size());
  PutFixed32(out, MaskCrc(crc));
}

Status DecodeWorldSnapshot(std::string_view data, World* world) {
  if (data.size() < kMagicLen + 4) {
    return Status::Corruption("snapshot too short");
  }
  // Verify trailing CRC over everything before it.
  {
    Decoder tail(data.substr(data.size() - 4));
    uint32_t stored = 0;
    GAMEDB_RETURN_NOT_OK(tail.GetFixed32(&stored));
    uint32_t actual = Crc32c(data.data(), data.size() - 4);
    if (UnmaskCrc(stored) != actual) {
      return Status::Corruption("snapshot CRC mismatch");
    }
  }
  if (data.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
    return Status::Corruption("bad snapshot magic");
  }

  Decoder dec(data.substr(kMagicLen, data.size() - kMagicLen - 4));
  world->Clear();

  uint64_t tick = 0;
  GAMEDB_RETURN_NOT_OK(dec.GetVarint64(&tick));
  world->SetTick(tick);

  uint64_t entity_count = 0;
  GAMEDB_RETURN_NOT_OK(dec.GetVarint64(&entity_count));
  for (uint64_t i = 0; i < entity_count; ++i) {
    uint64_t raw = 0;
    GAMEDB_RETURN_NOT_OK(dec.GetFixed64(&raw));
    GAMEDB_RETURN_NOT_OK(world->CreateWithId(EntityId::FromRaw(raw)));
  }

  uint64_t table_count = 0;
  GAMEDB_RETURN_NOT_OK(dec.GetVarint64(&table_count));
  for (uint64_t t = 0; t < table_count; ++t) {
    std::string_view name;
    GAMEDB_RETURN_NOT_OK(dec.GetLengthPrefixed(&name));
    const TypeInfo* info = TypeRegistry::Global().FindByName(name);
    if (info == nullptr) {
      return Status::SchemaMismatch("snapshot has unregistered component: " +
                                    std::string(name));
    }
    ComponentStore* store = world->StoreById(info->id());
    uint64_t rows = 0;
    GAMEDB_RETURN_NOT_OK(dec.GetVarint64(&rows));
    for (uint64_t r = 0; r < rows; ++r) {
      uint64_t raw = 0;
      GAMEDB_RETURN_NOT_OK(dec.GetFixed64(&raw));
      EntityId e = EntityId::FromRaw(raw);
      if (!world->Alive(e)) {
        return Status::Corruption("component row for dead entity " +
                                  e.ToString());
      }
      void* comp = store->EmplaceDefault(e);
      GAMEDB_RETURN_NOT_OK(info->DecodeComponent(comp, &dec));
    }
  }
  if (!dec.empty()) {
    return Status::Corruption("trailing bytes in snapshot");
  }
  return Status::OK();
}

void EncodeEntityRecord(const World& world, EntityId e, std::string* out) {
  std::vector<std::pair<const TypeInfo*, const void*>> comps;
  world.ForEachStore(
      [&](const TypeInfo& info, const ComponentStore& store) {
        if (const void* c = store.Find(e)) comps.emplace_back(&info, c);
      });
  std::sort(comps.begin(), comps.end(), [](const auto& a, const auto& b) {
    return a.first->name() < b.first->name();
  });
  PutVarint64(out, comps.size());
  for (const auto& [info, comp] : comps) {
    PutLengthPrefixed(out, info->name());
    std::string payload;
    info->EncodeComponent(comp, &payload);
    PutLengthPrefixed(out, payload);
  }
}

Status DecodeEntityRecord(std::string_view data, World* world, EntityId e) {
  if (!world->Alive(e)) {
    return Status::InvalidArgument("entity not alive: " + e.ToString());
  }
  Decoder dec(data);
  uint64_t count = 0;
  GAMEDB_RETURN_NOT_OK(dec.GetVarint64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view name, payload;
    GAMEDB_RETURN_NOT_OK(dec.GetLengthPrefixed(&name));
    GAMEDB_RETURN_NOT_OK(dec.GetLengthPrefixed(&payload));
    const TypeInfo* info = TypeRegistry::Global().FindByName(name);
    if (info == nullptr) {
      return Status::SchemaMismatch("record has unregistered component: " +
                                    std::string(name));
    }
    ComponentStore* store = world->StoreById(info->id());
    store->EmplaceDefault(e);
    // PatchRaw keeps observers (aggregates, delta trackers) consistent by
    // reporting the pre-decode value as the old value.
    Status decode_status = Status::OK();
    store->PatchRaw(e, [&](void* comp) {
      Decoder field_dec(payload);
      decode_status = info->DecodeComponent(comp, &field_dec);
      if (decode_status.ok() && !field_dec.empty()) {
        decode_status = Status::Corruption("trailing bytes in component payload");
      }
    });
    GAMEDB_RETURN_NOT_OK(decode_status);
  }
  if (!dec.empty()) return Status::Corruption("trailing bytes in record");
  return Status::OK();
}

}  // namespace gamedb
