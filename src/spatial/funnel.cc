#include "spatial/funnel.h"

namespace gamedb::spatial {

namespace {

float TriArea2(const Vec2& a, const Vec2& b, const Vec2& c) {
  return (b - a).Cross(c - a);
}

bool VEq(const Vec2& a, const Vec2& b) {
  return (a - b).LengthSquared() < 1e-12f;
}

}  // namespace

std::vector<Vec2> StringPull(const Vec2& start, const Vec2& goal,
                             const std::vector<Portal>& portals) {
  // Append the goal as a degenerate final portal.
  std::vector<Portal> ps = portals;
  ps.push_back(Portal{goal, goal});

  std::vector<Vec2> path;
  path.push_back(start);

  Vec2 apex = start, left = start, right = start;
  size_t apex_i = 0, left_i = 0, right_i = 0;

  // TriArea2(a, b, c) > 0 means c lies counter-clockwise (left) of a->b.
  // The right funnel edge narrows when the new right point moves CCW of it;
  // the left edge narrows when the new left point moves CW of it.
  for (size_t i = 0; i < ps.size(); ++i) {
    const Vec2& pl = ps[i].left;
    const Vec2& pr = ps[i].right;

    // Tighten the right side.
    if (TriArea2(apex, right, pr) >= 0.0f) {
      if (VEq(apex, right) || TriArea2(apex, left, pr) < 0.0f) {
        right = pr;
        right_i = i;
      } else {
        // Right crossed over left: left becomes a corner.
        path.push_back(left);
        apex = left;
        apex_i = left_i;
        left = apex;
        right = apex;
        left_i = apex_i;
        right_i = apex_i;
        i = apex_i;  // restart scan just past the new apex
        continue;
      }
    }
    // Tighten the left side.
    if (TriArea2(apex, left, pl) <= 0.0f) {
      if (VEq(apex, left) || TriArea2(apex, right, pl) > 0.0f) {
        left = pl;
        left_i = i;
      } else {
        // Left crossed over right: right becomes a corner.
        path.push_back(right);
        apex = right;
        apex_i = right_i;
        left = apex;
        right = apex;
        left_i = apex_i;
        right_i = apex_i;
        i = apex_i;
        continue;
      }
    }
  }
  if (path.empty() || !VEq(path.back(), goal)) {
    path.push_back(goal);
  }
  return path;
}

float PathLength(const std::vector<Vec2>& pts) {
  float len = 0.0f;
  for (size_t i = 1; i < pts.size(); ++i) {
    len += pts[i].DistanceTo(pts[i - 1]);
  }
  return len;
}

}  // namespace gamedb::spatial
