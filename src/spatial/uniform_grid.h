#pragma once

/// \file uniform_grid.h
/// Hashed uniform grid: the workhorse index for mostly-uniform entity
/// distributions (crowds, armies). Entries are registered in every cell
/// their bounds overlap; queries stamp entries with an epoch to deduplicate.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "spatial/spatial_index.h"

namespace gamedb::spatial {

/// Options for UniformGrid.
struct UniformGridOptions {
  /// Cell edge length. Pick ~2x the typical query radius.
  float cell_size = 10.0f;
};

/// Infinite hashed grid (no world bounds needed).
///
/// Thread safety: queries stamp entries with a query epoch to deduplicate
/// multi-cell entries, so even const queries mutate internal state —
/// concurrent queries on one UniformGrid are NOT safe. Use KdBspTree (after
/// a warm-up query) or per-thread grids for parallel query phases.
class UniformGrid final : public SpatialIndex {
 public:
  explicit UniformGrid(UniformGridOptions options = {});

  const char* Name() const override { return "uniform_grid"; }

  void Insert(EntityId e, const Aabb& box) override;
  bool Remove(EntityId e) override;
  void Update(EntityId e, const Aabb& box) override;
  void QueryRange(const Aabb& range, const QueryCallback& cb) const override;
  size_t Size() const override { return slot_of_.size(); }
  void Clear() override;

  /// Cells currently materialized (diagnostics).
  size_t CellCount() const { return cells_.size(); }

 private:
  struct CellCoord {
    int32_t x, y, z;
    bool operator==(const CellCoord& o) const {
      return x == o.x && y == o.y && z == o.z;
    }
  };
  struct CellCoordHash {
    size_t operator()(const CellCoord& c) const {
      uint64_t h = static_cast<uint32_t>(c.x) * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<uint32_t>(c.y) * 0xC2B2AE3D27D4EB4Full;
      h ^= static_cast<uint32_t>(c.z) * 0x165667B19E3779F9ull;
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    EntityId id;
    Aabb box;
    mutable uint64_t seen_epoch = 0;  // query-time dedup stamp
  };

  CellCoord CellOf(const Vec3& p) const;
  template <typename Fn>
  void ForEachOverlappingCell(const Aabb& box, Fn&& fn) const;
  void LinkToCells(uint32_t slot, const Aabb& box);
  void UnlinkFromCells(uint32_t slot, const Aabb& box);

  UniformGridOptions options_;
  std::vector<Entry> entries_;                    // slab; slot = index
  std::vector<uint32_t> free_slots_;
  std::unordered_map<EntityId, uint32_t> slot_of_;
  std::unordered_map<CellCoord, std::vector<uint32_t>, CellCoordHash> cells_;
  mutable uint64_t query_epoch_ = 0;
};

}  // namespace gamedb::spatial
