#include "spatial/grid_map.h"

#include <cmath>

#include "common/macros.h"

namespace gamedb::spatial {

GridMap::GridMap(int width, int height, GridMapOptions options)
    : width_(width), height_(height), options_(options) {
  GAMEDB_CHECK(width > 0 && height > 0);
  GAMEDB_CHECK(options_.cell_size > 0.0f);
  cells_.assign(static_cast<size_t>(width) * height, 0);
}

Result<GridMap> GridMap::FromAscii(const std::vector<std::string>& rows,
                                   GridMapOptions options) {
  if (rows.empty() || rows[0].empty()) {
    return Status::InvalidArgument("empty map");
  }
  size_t w = rows[0].size();
  for (const auto& row : rows) {
    if (row.size() != w) {
      return Status::InvalidArgument("ragged map rows");
    }
  }
  GridMap map(static_cast<int>(w), static_cast<int>(rows.size()), options);
  for (int y = 0; y < map.height_; ++y) {
    for (int x = 0; x < map.width_; ++x) {
      char c = rows[y][static_cast<size_t>(x)];
      uint8_t flags = 0;
      switch (c) {
        case '#':
          flags = 0;
          break;
        case '.':
          flags = kNavWalkable;
          break;
        case 'D':
          flags = kNavWalkable | kNavDanger;
          break;
        case 'C':
          flags = kNavWalkable | kNavCover;
          break;
        case 'H':
          flags = kNavWalkable | kNavHide;
          break;
        case 'F':
          flags = kNavWalkable | kNavDefensible;
          break;
        default:
          if (c == ' ') {
            flags = 0;  // blank = void, treated as blocked
          } else {
            flags = kNavWalkable;
            map.markers_[c].emplace_back(x, y);
          }
          break;
      }
      map.cells_[static_cast<size_t>(y) * map.width_ + x] = flags;
    }
  }
  return map;
}

void GridMap::SetFlags(int x, int y, uint8_t flags) {
  GAMEDB_CHECK(InBounds(x, y));
  cells_[static_cast<size_t>(y) * width_ + x] = flags;
}

void GridMap::CellOf(const Vec2& p, int* x, int* y) const {
  *x = static_cast<int>(std::floor((p.x - options_.origin.x) / options_.cell_size));
  *y = static_cast<int>(std::floor((p.z - options_.origin.z) / options_.cell_size));
}

size_t GridMap::WalkableCount() const {
  size_t n = 0;
  for (uint8_t c : cells_) {
    if (c & kNavWalkable) ++n;
  }
  return n;
}

}  // namespace gamedb::spatial
