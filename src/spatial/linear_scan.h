#pragma once

/// \file linear_scan.h
/// O(n) scan "index" — the behaviour a designer's unindexed script exhibits.
/// Serves as the correctness oracle and the baseline of E1/E2.

#include <unordered_map>
#include <vector>

#include "spatial/spatial_index.h"

namespace gamedb::spatial {

/// Flat array of entries; every query visits all of them.
class LinearScan final : public SpatialIndex {
 public:
  const char* Name() const override { return "linear_scan"; }

  void Insert(EntityId e, const Aabb& box) override;
  bool Remove(EntityId e) override;
  void Update(EntityId e, const Aabb& box) override;
  void QueryRange(const Aabb& range, const QueryCallback& cb) const override;
  size_t Size() const override { return entries_.size(); }
  void Clear() override;

 private:
  struct Entry {
    EntityId id;
    Aabb box;
  };

  std::vector<Entry> entries_;
  std::unordered_map<EntityId, size_t> slot_;  // id -> index in entries_
};

}  // namespace gamedb::spatial
