#include "spatial/navmesh_builder.h"

#include <vector>

namespace gamedb::spatial {

namespace {

struct Rect {
  int x0, y0, x1, y1;  // inclusive cell range
  uint8_t flags;
};

}  // namespace

Result<NavMesh> BuildNavMesh(const GridMap& map, NavMeshBuildStats* stats) {
  const int w = map.width(), h = map.height();
  std::vector<int32_t> rect_of(static_cast<size_t>(w) * h, -1);
  auto at = [&](int x, int y) -> int32_t& {
    return rect_of[static_cast<size_t>(y) * w + x];
  };

  // Greedy rectangle decomposition: widest run right, then grow down.
  std::vector<Rect> rects;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (!map.Walkable(x, y) || at(x, y) != -1) continue;
      uint8_t flags = map.FlagsAt(x, y);
      int x1 = x;
      while (x1 + 1 < w && at(x1 + 1, y) == -1 &&
             map.FlagsAt(x1 + 1, y) == flags) {
        ++x1;
      }
      int y1 = y;
      bool grow = true;
      while (grow && y1 + 1 < h) {
        for (int xx = x; xx <= x1; ++xx) {
          if (at(xx, y1 + 1) != -1 || map.FlagsAt(xx, y1 + 1) != flags) {
            grow = false;
            break;
          }
        }
        if (grow) ++y1;
      }
      int32_t id = static_cast<int32_t>(rects.size());
      rects.push_back(Rect{x, y, x1, y1, flags});
      for (int yy = y; yy <= y1; ++yy) {
        for (int xx = x; xx <= x1; ++xx) at(xx, yy) = id;
      }
    }
  }
  if (rects.empty()) {
    return Status::InvalidArgument("map has no walkable cells");
  }

  NavMesh mesh;
  const float cs = map.cell_size();
  Vec2 origin = map.CellCenter(0, 0) - Vec2{cs * 0.5f, cs * 0.5f};
  auto corner = [&](int cx, int cy) {
    return Vec2{origin.x + static_cast<float>(cx) * cs,
                origin.z + static_cast<float>(cy) * cs};
  };
  for (const Rect& r : rects) {
    // CCW in the XZ plane (positive Orient2D).
    std::vector<Vec2> verts = {corner(r.x0, r.y0), corner(r.x1 + 1, r.y0),
                               corner(r.x1 + 1, r.y1 + 1),
                               corner(r.x0, r.y1 + 1)};
    mesh.AddPolygon(std::move(verts), r.flags, 1.0f);
  }

  size_t portal_count = 0;
  // Vertical boundaries (between columns x and x+1): merge contiguous runs
  // of the same rect pair into one portal.
  for (int x = 0; x + 1 < w; ++x) {
    int run_start = -1;
    int32_t run_a = -1, run_b = -1;
    auto flush = [&](int run_end) {
      if (run_start < 0) return;
      Vec2 p0 = corner(x + 1, run_start);
      Vec2 p1 = corner(x + 1, run_end + 1);
      GAMEDB_CHECK(mesh.Connect(static_cast<uint32_t>(run_a),
                                static_cast<uint32_t>(run_b), p0, p1)
                       .ok());
      ++portal_count;
      run_start = -1;
    };
    for (int y = 0; y < h; ++y) {
      int32_t a = at(x, y);
      int32_t b = at(x + 1, y);
      bool boundary = a >= 0 && b >= 0 && a != b;
      if (boundary && a == run_a && b == run_b) continue;  // extend run
      flush(y - 1);
      if (boundary) {
        run_start = y;
        run_a = a;
        run_b = b;
      } else {
        run_a = run_b = -1;
      }
    }
    flush(h - 1);
  }
  // Horizontal boundaries (between rows y and y+1).
  for (int y = 0; y + 1 < h; ++y) {
    int run_start = -1;
    int32_t run_a = -1, run_b = -1;
    auto flush = [&](int run_end) {
      if (run_start < 0) return;
      Vec2 p0 = corner(run_start, y + 1);
      Vec2 p1 = corner(run_end + 1, y + 1);
      GAMEDB_CHECK(mesh.Connect(static_cast<uint32_t>(run_a),
                                static_cast<uint32_t>(run_b), p0, p1)
                       .ok());
      ++portal_count;
      run_start = -1;
    };
    for (int x = 0; x < w; ++x) {
      int32_t a = at(x, y);
      int32_t b = at(x, y + 1);
      bool boundary = a >= 0 && b >= 0 && a != b;
      if (boundary && a == run_a && b == run_b) continue;
      flush(x - 1);
      if (boundary) {
        run_start = x;
        run_a = a;
        run_b = b;
      } else {
        run_a = run_b = -1;
      }
    }
    flush(w - 1);
  }

  if (stats != nullptr) {
    stats->walkable_cells = map.WalkableCount();
    stats->polygon_count = mesh.PolygonCount();
    stats->portal_count = portal_count;
  }
  return mesh;
}

}  // namespace gamedb::spatial
