#include "spatial/kdbsp_tree.h"

#include <algorithm>
#include <queue>

namespace gamedb::spatial {

KdBspTree::KdBspTree(KdBspTreeOptions options) : options_(options) {
  GAMEDB_CHECK(options_.leaf_capacity >= 1);
}

void KdBspTree::Insert(EntityId e, const Aabb& box) {
  GAMEDB_CHECK(slot_of_.find(e) == slot_of_.end());
  uint32_t slot = static_cast<uint32_t>(entries_.size());
  entries_.push_back(Entry{e, box, /*live=*/true, /*in_tree=*/false});
  slot_of_.emplace(e, slot);
  pending_.push_back(slot);
  ++live_count_;
}

bool KdBspTree::Remove(EntityId e) {
  auto it = slot_of_.find(e);
  if (it == slot_of_.end()) return false;
  Entry& entry = entries_[it->second];
  entry.live = false;
  if (!entry.in_tree) {
    // Drop from the pending overflow list.
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i] == it->second) {
        pending_[i] = pending_.back();
        pending_.pop_back();
        break;
      }
    }
  } else {
    ++stale_in_tree_;
  }
  slot_of_.erase(it);
  --live_count_;
  return true;
}

void KdBspTree::Update(EntityId e, const Aabb& box) {
  auto it = slot_of_.find(e);
  GAMEDB_CHECK(it != slot_of_.end());
  Entry& entry = entries_[it->second];
  entry.box = box;
  if (entry.in_tree) {
    // The built tree's node bounds no longer cover this entry; demote it to
    // the linearly-scanned overflow until the next rebuild.
    entry.in_tree = false;
    pending_.push_back(it->second);
    ++stale_in_tree_;
  }
}

void KdBspTree::Clear() {
  entries_.clear();
  slot_of_.clear();
  pending_.clear();
  nodes_.clear();
  order_.clear();
  root_ = -1;
  live_count_ = 0;
  stale_in_tree_ = 0;
}

bool KdBspTree::NeedsRebuild() const {
  if (live_count_ == 0) return root_ >= 0;  // drop an obsolete tree
  float stale = static_cast<float>(pending_.size() + stale_in_tree_);
  if (root_ < 0) return true;
  return stale > options_.rebuild_threshold * static_cast<float>(live_count_);
}

void KdBspTree::RebuildIfNeeded() const {
  if (!NeedsRebuild()) return;
  nodes_.clear();
  order_.clear();
  // Compact the slab: keep live entries only, re-slotting ids.
  auto* self = const_cast<KdBspTree*>(this);
  std::vector<Entry> compact;
  compact.reserve(live_count_);
  self->slot_of_.clear();
  for (Entry& entry : self->entries_) {
    if (!entry.live) continue;
    entry.in_tree = true;
    self->slot_of_.emplace(entry.id, static_cast<uint32_t>(compact.size()));
    compact.push_back(entry);
  }
  self->entries_ = std::move(compact);
  self->pending_.clear();
  self->stale_in_tree_ = 0;

  std::vector<uint32_t> items(entries_.size());
  for (uint32_t i = 0; i < items.size(); ++i) items[i] = i;
  root_ = items.empty()
              ? -1
              : BuildNode(items, 0, static_cast<uint32_t>(items.size()));
  ++rebuild_count_;
}

int32_t KdBspTree::BuildNode(std::vector<uint32_t>& items, uint32_t begin,
                             uint32_t end) const {
  Node node;
  for (uint32_t i = begin; i < end; ++i) {
    node.bounds = node.bounds.Union(entries_[items[i]].box);
  }
  uint32_t count = end - begin;
  int32_t index = static_cast<int32_t>(nodes_.size());
  if (count <= options_.leaf_capacity) {
    node.begin = static_cast<uint32_t>(order_.size());
    for (uint32_t i = begin; i < end; ++i) order_.push_back(items[i]);
    node.end = static_cast<uint32_t>(order_.size());
    nodes_.push_back(node);
    return index;
  }
  // Split on the widest axis of the subtree bounds at the median center.
  Vec3 ext = node.bounds.Extent();
  uint8_t axis = 0;
  if (ext.y > ext.x && ext.y >= ext.z) axis = 1;
  if (ext.z > ext.x && ext.z > ext.y) axis = 2;
  auto center_on = [&](uint32_t slot) {
    Vec3 c = entries_[slot].box.Center();
    return axis == 0 ? c.x : (axis == 1 ? c.y : c.z);
  };
  uint32_t mid = begin + count / 2;
  std::nth_element(items.begin() + begin, items.begin() + mid,
                   items.begin() + end, [&](uint32_t a, uint32_t b) {
                     return center_on(a) < center_on(b);
                   });
  node.axis = axis;
  node.split = center_on(items[mid]);
  nodes_.push_back(node);
  // nodes_ may reallocate during recursion; write child links afterwards.
  int32_t left = BuildNode(items, begin, mid);
  int32_t right = BuildNode(items, mid, end);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

void KdBspTree::QueryNode(int32_t node_index, const Aabb& range,
                          const QueryCallback& cb) const {
  const Node& node = nodes_[node_index];
  if (!node.bounds.Intersects(range)) return;
  if (node.left < 0) {  // leaf
    for (uint32_t i = node.begin; i < node.end; ++i) {
      const Entry& entry = entries_[order_[i]];
      if (entry.live && entry.in_tree && entry.box.Intersects(range)) {
        cb(entry.id, entry.box);
      }
    }
    return;
  }
  QueryNode(node.left, range, cb);
  QueryNode(node.right, range, cb);
}

void KdBspTree::QueryRange(const Aabb& range, const QueryCallback& cb) const {
  RebuildIfNeeded();
  if (root_ >= 0) QueryNode(root_, range, cb);
  for (uint32_t slot : pending_) {
    const Entry& entry = entries_[slot];
    if (entry.live && entry.box.Intersects(range)) cb(entry.id, entry.box);
  }
}

void KdBspTree::QueryNearest(
    const Vec3& p, size_t k,
    const std::function<void(EntityId, const Aabb&, float)>& cb) const {
  RebuildIfNeeded();
  if (k == 0 || live_count_ == 0) return;

  struct Hit {
    float dist_sq;
    uint32_t slot;
    bool operator<(const Hit& o) const { return dist_sq < o.dist_sq; }
  };
  std::priority_queue<Hit> best;  // max-heap on distance
  auto offer = [&](uint32_t slot) {
    const Entry& entry = entries_[slot];
    float d = entry.box.DistanceSquaredTo(p);
    if (best.size() < k) {
      best.push({d, slot});
    } else if (d < best.top().dist_sq) {
      best.pop();
      best.push({d, slot});
    }
  };

  // Seed with the overflow entries (scanned exhaustively).
  for (uint32_t slot : pending_) {
    if (entries_[slot].live) offer(slot);
  }

  if (root_ >= 0) {
    // Best-first search over the built tree.
    struct Candidate {
      float dist_sq;
      int32_t node;
      bool operator>(const Candidate& o) const {
        return dist_sq > o.dist_sq;
      }
    };
    std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>>
        frontier;
    frontier.push({nodes_[root_].bounds.DistanceSquaredTo(p), root_});
    while (!frontier.empty()) {
      Candidate c = frontier.top();
      frontier.pop();
      if (best.size() == k && c.dist_sq > best.top().dist_sq) break;
      const Node& node = nodes_[c.node];
      if (node.left < 0) {
        for (uint32_t i = node.begin; i < node.end; ++i) {
          const Entry& entry = entries_[order_[i]];
          if (entry.live && entry.in_tree) offer(order_[i]);
        }
      } else {
        frontier.push(
            {nodes_[node.left].bounds.DistanceSquaredTo(p), node.left});
        frontier.push(
            {nodes_[node.right].bounds.DistanceSquaredTo(p), node.right});
      }
    }
  }

  std::vector<Hit> hits;
  hits.reserve(best.size());
  while (!best.empty()) {
    hits.push_back(best.top());
    best.pop();
  }
  for (auto it = hits.rbegin(); it != hits.rend(); ++it) {
    const Entry& entry = entries_[it->slot];
    cb(entry.id, entry.box, std::sqrt(it->dist_sq));
  }
}

}  // namespace gamedb::spatial
