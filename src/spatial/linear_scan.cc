#include "spatial/linear_scan.h"

namespace gamedb::spatial {

void LinearScan::Insert(EntityId e, const Aabb& box) {
  GAMEDB_CHECK(slot_.find(e) == slot_.end());
  slot_.emplace(e, entries_.size());
  entries_.push_back(Entry{e, box});
}

bool LinearScan::Remove(EntityId e) {
  auto it = slot_.find(e);
  if (it == slot_.end()) return false;
  size_t pos = it->second;
  size_t last = entries_.size() - 1;
  if (pos != last) {
    entries_[pos] = entries_[last];
    slot_[entries_[pos].id] = pos;
  }
  entries_.pop_back();
  slot_.erase(it);
  return true;
}

void LinearScan::Update(EntityId e, const Aabb& box) {
  auto it = slot_.find(e);
  GAMEDB_CHECK(it != slot_.end());
  entries_[it->second].box = box;
}

void LinearScan::QueryRange(const Aabb& range, const QueryCallback& cb) const {
  for (const Entry& entry : entries_) {
    if (entry.box.Intersects(range)) cb(entry.id, entry.box);
  }
}

void LinearScan::Clear() {
  entries_.clear();
  slot_.clear();
}

}  // namespace gamedb::spatial
