#include "spatial/grid_astar.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace gamedb::spatial {

namespace {

constexpr float kSqrt2 = 1.41421356237f;

/// Octile distance: admissible for 8-connected grids.
float Heuristic(int x0, int y0, int x1, int y1, bool diagonal) {
  float dx = std::abs(static_cast<float>(x1 - x0));
  float dy = std::abs(static_cast<float>(y1 - y0));
  if (diagonal) {
    return std::max(dx, dy) + (kSqrt2 - 1.0f) * std::min(dx, dy);
  }
  return dx + dy;  // Manhattan for 4-connected
}

}  // namespace

GridPathResult FindGridPath(const GridMap& map, std::pair<int, int> start,
                            std::pair<int, int> goal,
                            const GridPathOptions& options) {
  GridPathResult result;
  auto passable = [&](int x, int y) {
    uint8_t flags = map.FlagsAt(x, y);
    return (flags & kNavWalkable) != 0 && (flags & options.avoid_flags) == 0;
  };
  if (!passable(start.first, start.second) ||
      !passable(goal.first, goal.second)) {
    return result;
  }

  const int w = map.width(), h = map.height();
  const size_t n = static_cast<size_t>(w) * h;
  constexpr float kInf = std::numeric_limits<float>::infinity();
  std::vector<float> g(n, kInf);
  std::vector<int32_t> parent(n, -1);
  std::vector<bool> closed(n, false);
  auto idx = [&](int x, int y) { return static_cast<size_t>(y) * w + x; };

  struct QItem {
    float f;
    uint32_t cell;
    bool operator>(const QItem& o) const { return f > o.f; }
  };
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> open;

  // Entering a cell costs (step length) * (danger multiplier of the cell).
  auto cell_mult = [&](int x, int y) {
    return (map.FlagsAt(x, y) & kNavDanger) ? options.danger_multiplier
                                            : 1.0f;
  };

  size_t start_idx = idx(start.first, start.second);
  g[start_idx] = 0.0f;
  open.push({Heuristic(start.first, start.second, goal.first, goal.second,
                       options.diagonal),
             static_cast<uint32_t>(start_idx)});

  const size_t goal_idx = idx(goal.first, goal.second);
  while (!open.empty()) {
    uint32_t cur = open.top().cell;
    open.pop();
    if (closed[cur]) continue;
    closed[cur] = true;
    ++result.expanded;
    if (cur == goal_idx) break;

    int cx = static_cast<int>(cur % w), cy = static_cast<int>(cur / w);
    const int dirs8[8][2] = {{1, 0},  {-1, 0}, {0, 1},  {0, -1},
                             {1, 1},  {1, -1}, {-1, 1}, {-1, -1}};
    int dir_count = options.diagonal ? 8 : 4;
    for (int d = 0; d < dir_count; ++d) {
      int nx = cx + dirs8[d][0], ny = cy + dirs8[d][1];
      if (!passable(nx, ny)) continue;
      bool is_diag = dirs8[d][0] != 0 && dirs8[d][1] != 0;
      if (is_diag) {
        // No corner cutting: both orthogonal neighbors must be passable.
        if (!passable(cx + dirs8[d][0], cy) || !passable(cx, cy + dirs8[d][1]))
          continue;
      }
      float step = (is_diag ? kSqrt2 : 1.0f) * cell_mult(nx, ny);
      size_t ni = idx(nx, ny);
      float ng = g[cur] + step;
      if (ng < g[ni]) {
        g[ni] = ng;
        parent[ni] = static_cast<int32_t>(cur);
        open.push({ng + Heuristic(nx, ny, goal.first, goal.second,
                                  options.diagonal),
                   static_cast<uint32_t>(ni)});
      }
    }
  }

  if (g[goal_idx] == kInf) return result;

  result.found = true;
  result.cost = g[goal_idx];
  for (int32_t at = static_cast<int32_t>(goal_idx); at >= 0;
       at = parent[static_cast<size_t>(at)]) {
    result.cells.emplace_back(at % w, at / w);
  }
  std::reverse(result.cells.begin(), result.cells.end());
  result.waypoints.reserve(result.cells.size());
  for (auto [x, y] : result.cells) {
    result.waypoints.push_back(map.CellCenter(x, y));
  }
  return result;
}

}  // namespace gamedb::spatial
