#include "spatial/uniform_grid.h"

#include <cmath>

namespace gamedb::spatial {

UniformGrid::UniformGrid(UniformGridOptions options) : options_(options) {
  GAMEDB_CHECK(options_.cell_size > 0.0f);
}

UniformGrid::CellCoord UniformGrid::CellOf(const Vec3& p) const {
  float inv = 1.0f / options_.cell_size;
  return CellCoord{static_cast<int32_t>(std::floor(p.x * inv)),
                   static_cast<int32_t>(std::floor(p.y * inv)),
                   static_cast<int32_t>(std::floor(p.z * inv))};
}

template <typename Fn>
void UniformGrid::ForEachOverlappingCell(const Aabb& box, Fn&& fn) const {
  CellCoord lo = CellOf(box.min);
  CellCoord hi = CellOf(box.max);
  for (int32_t x = lo.x; x <= hi.x; ++x) {
    for (int32_t y = lo.y; y <= hi.y; ++y) {
      for (int32_t z = lo.z; z <= hi.z; ++z) {
        fn(CellCoord{x, y, z});
      }
    }
  }
}

void UniformGrid::LinkToCells(uint32_t slot, const Aabb& box) {
  ForEachOverlappingCell(box, [&](CellCoord c) {
    cells_[c].push_back(slot);
  });
}

void UniformGrid::UnlinkFromCells(uint32_t slot, const Aabb& box) {
  ForEachOverlappingCell(box, [&](CellCoord c) {
    auto it = cells_.find(c);
    GAMEDB_DCHECK(it != cells_.end());
    auto& v = it->second;
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i] == slot) {
        v[i] = v.back();
        v.pop_back();
        break;
      }
    }
    if (v.empty()) cells_.erase(it);
  });
}

void UniformGrid::Insert(EntityId e, const Aabb& box) {
  GAMEDB_CHECK(slot_of_.find(e) == slot_of_.end());
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    entries_[slot] = Entry{e, box, 0};
  } else {
    slot = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{e, box, 0});
  }
  slot_of_.emplace(e, slot);
  LinkToCells(slot, box);
}

bool UniformGrid::Remove(EntityId e) {
  auto it = slot_of_.find(e);
  if (it == slot_of_.end()) return false;
  uint32_t slot = it->second;
  UnlinkFromCells(slot, entries_[slot].box);
  entries_[slot].id = EntityId::Invalid();
  free_slots_.push_back(slot);
  slot_of_.erase(it);
  return true;
}

void UniformGrid::Update(EntityId e, const Aabb& box) {
  auto it = slot_of_.find(e);
  GAMEDB_CHECK(it != slot_of_.end());
  uint32_t slot = it->second;
  Entry& entry = entries_[slot];
  // Fast path: same cell footprint, just update the box.
  CellCoord old_lo = CellOf(entry.box.min), old_hi = CellOf(entry.box.max);
  CellCoord new_lo = CellOf(box.min), new_hi = CellOf(box.max);
  if (old_lo == new_lo && old_hi == new_hi) {
    entry.box = box;
    return;
  }
  UnlinkFromCells(slot, entry.box);
  entry.box = box;
  LinkToCells(slot, box);
}

void UniformGrid::QueryRange(const Aabb& range, const QueryCallback& cb) const {
  uint64_t epoch = ++query_epoch_;
  ForEachOverlappingCell(range, [&](CellCoord c) {
    auto it = cells_.find(c);
    if (it == cells_.end()) return;
    for (uint32_t slot : it->second) {
      const Entry& entry = entries_[slot];
      if (entry.seen_epoch == epoch) continue;  // already reported
      entry.seen_epoch = epoch;
      if (entry.box.Intersects(range)) cb(entry.id, entry.box);
    }
  });
}

void UniformGrid::Clear() {
  entries_.clear();
  free_slots_.clear();
  slot_of_.clear();
  cells_.clear();
  query_epoch_ = 0;
}

}  // namespace gamedb::spatial
