#pragma once

/// \file loose_octree.h
/// Loose octree over a bounded world. Each node's "loose" bounds are twice
/// its cell extent, so an object is stored at the deepest level whose loose
/// cell fully contains it — insert/remove are O(depth) with no object
/// splitting, which is why the structure is a games-industry staple for
/// dynamic scenes.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "spatial/spatial_index.h"

namespace gamedb::spatial {

/// Options for LooseOctree.
struct LooseOctreeOptions {
  /// World bounds; inserting bounds outside stores the entry at the root.
  Aabb world_bounds{{-1000, -1000, -1000}, {1000, 1000, 1000}};
  /// Maximum tree depth (root = 0).
  uint32_t max_depth = 8;
};

/// Dynamic loose octree.
class LooseOctree final : public SpatialIndex {
 public:
  explicit LooseOctree(LooseOctreeOptions options = {});

  const char* Name() const override { return "loose_octree"; }

  void Insert(EntityId e, const Aabb& box) override;
  bool Remove(EntityId e) override;
  void Update(EntityId e, const Aabb& box) override;
  void QueryRange(const Aabb& range, const QueryCallback& cb) const override;
  size_t Size() const override { return where_.size(); }
  void Clear() override;

  /// Number of allocated nodes (diagnostics).
  size_t NodeCount() const { return nodes_.size(); }

 private:
  struct Node {
    Aabb cell;                 // tight cell bounds
    int32_t children[8];       // -1 when absent
    int32_t parent = -1;
    std::vector<std::pair<EntityId, Aabb>> items;
    uint32_t depth = 0;
    Node() { for (int32_t& c : children) c = -1; }
    Aabb LooseBounds() const {
      Vec3 half = cell.Extent() * 0.5f;
      return Aabb{cell.min - half, cell.max + half};
    }
  };

  /// Index of the node the box belongs to, creating nodes along the way.
  int32_t Place(const Aabb& box);
  void EraseFromNode(int32_t node_index, EntityId e);
  void QueryNode(int32_t node_index, const Aabb& range,
                 const QueryCallback& cb) const;
  void MaybePrune(int32_t node_index);

  LooseOctreeOptions options_;
  std::vector<Node> nodes_;          // slab; 0 is the root
  std::vector<int32_t> free_nodes_;
  std::unordered_map<EntityId, int32_t> where_;  // id -> node index
};

}  // namespace gamedb::spatial
