#include "spatial/navmesh.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/macros.h"

namespace gamedb::spatial {

bool NavPoly::Contains(const Vec2& p) const {
  // CCW convex polygon: p is inside iff it is on the left of (or on) every
  // edge.
  for (size_t i = 0; i < verts.size(); ++i) {
    const Vec2& a = verts[i];
    const Vec2& b = verts[(i + 1) % verts.size()];
    if (Orient2D(a, b, p) < -1e-6f) return false;
  }
  return true;
}

uint32_t NavMesh::AddPolygon(std::vector<Vec2> verts, uint8_t flags,
                             float cost_multiplier) {
  GAMEDB_CHECK(verts.size() >= 3);
  NavPoly poly;
  poly.flags = flags;
  poly.cost_multiplier = cost_multiplier;
  // Shoelace area / centroid; positive area means CCW as required.
  float area2 = 0.0f;
  Vec2 centroid{0, 0};
  for (size_t i = 0; i < verts.size(); ++i) {
    const Vec2& a = verts[i];
    const Vec2& b = verts[(i + 1) % verts.size()];
    float cross = a.Cross(b);
    area2 += cross;
    centroid.x += (a.x + b.x) * cross;
    centroid.z += (a.z + b.z) * cross;
  }
  GAMEDB_CHECK(area2 > 0.0f);  // must be CCW and non-degenerate
  poly.area = area2 * 0.5f;
  poly.centroid = Vec2{centroid.x / (3.0f * area2), centroid.z / (3.0f * area2)};
  poly.verts = std::move(verts);
  polys_.push_back(std::move(poly));
  adjacency_.emplace_back();
  return static_cast<uint32_t>(polys_.size() - 1);
}

Status NavMesh::Connect(uint32_t a, uint32_t b, const Vec2& p0,
                        const Vec2& p1) {
  if (a >= polys_.size() || b >= polys_.size()) {
    return Status::InvalidArgument("unknown polygon id");
  }
  if (a == b) return Status::InvalidArgument("self-portal");
  adjacency_[a].push_back(Edge{b, p0, p1});
  adjacency_[b].push_back(Edge{a, p0, p1});
  return Status::OK();
}

int32_t NavMesh::FindPolygon(const Vec2& p) const {
  for (size_t i = 0; i < polys_.size(); ++i) {
    if (polys_[i].Contains(p)) return static_cast<int32_t>(i);
  }
  return -1;
}

float NavMesh::EffectiveMultiplier(const NavPoly& poly,
                                   const NavPathOptions& options) const {
  float m = poly.cost_multiplier;
  if (poly.flags & kNavDanger) m *= options.danger_multiplier;
  return m;
}

NavPathResult NavMesh::FindPath(const Vec2& start, const Vec2& goal,
                                const NavPathOptions& options) const {
  NavPathResult result;
  int32_t start_poly = FindPolygon(start);
  int32_t goal_poly = FindPolygon(goal);
  if (start_poly < 0 || goal_poly < 0) return result;
  if (polys_[static_cast<size_t>(start_poly)].flags & options.avoid_flags) {
    return result;
  }
  if (polys_[static_cast<size_t>(goal_poly)].flags & options.avoid_flags) {
    return result;
  }

  if (start_poly == goal_poly) {
    result.found = true;
    result.corridor = {static_cast<uint32_t>(start_poly)};
    result.waypoints = {start, goal};
    result.cost = start.DistanceTo(goal) *
                  EffectiveMultiplier(polys_[static_cast<size_t>(start_poly)],
                                      options);
    return result;
  }

  // A* over polygons. Node entry point: where the path enters the polygon
  // (portal midpoint); edge cost: distance between entry points, weighted
  // by the multiplier of the polygon being crossed.
  const size_t n = polys_.size();
  constexpr float kInf = std::numeric_limits<float>::infinity();
  std::vector<float> g(n, kInf);
  std::vector<int32_t> parent_poly(n, -1);
  std::vector<int32_t> parent_edge(n, -1);  // index into adjacency_[parent]
  std::vector<Vec2> entry(n);
  std::vector<bool> closed(n, false);

  struct QItem {
    float f;
    uint32_t poly;
    bool operator>(const QItem& o) const { return f > o.f; }
  };
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> open;

  g[static_cast<size_t>(start_poly)] = 0.0f;
  entry[static_cast<size_t>(start_poly)] = start;
  open.push({start.DistanceTo(goal), static_cast<uint32_t>(start_poly)});

  while (!open.empty()) {
    uint32_t cur = open.top().poly;
    open.pop();
    if (closed[cur]) continue;
    closed[cur] = true;
    ++result.expanded;
    if (cur == static_cast<uint32_t>(goal_poly)) break;

    const auto& edges = adjacency_[cur];
    for (size_t ei = 0; ei < edges.size(); ++ei) {
      const Edge& e = edges[ei];
      const NavPoly& next = polys_[e.to];
      if (next.flags & options.avoid_flags) continue;
      Vec2 mid = (e.p0 + e.p1) * 0.5f;
      float step = entry[cur].DistanceTo(mid) *
                   EffectiveMultiplier(polys_[cur], options);
      float ng = g[cur] + step;
      if (ng < g[e.to]) {
        g[e.to] = ng;
        parent_poly[e.to] = static_cast<int32_t>(cur);
        parent_edge[e.to] = static_cast<int32_t>(ei);
        entry[e.to] = mid;
        open.push({ng + mid.DistanceTo(goal), e.to});
      }
    }
  }

  size_t gp = static_cast<size_t>(goal_poly);
  if (g[gp] == kInf) return result;

  // Reconstruct corridor and crossed portals.
  std::vector<uint32_t> corridor;
  std::vector<int32_t> edge_indices;
  for (int32_t at = goal_poly; at >= 0;
       at = parent_poly[static_cast<size_t>(at)]) {
    corridor.push_back(static_cast<uint32_t>(at));
    edge_indices.push_back(parent_edge[static_cast<size_t>(at)]);
  }
  std::reverse(corridor.begin(), corridor.end());
  std::reverse(edge_indices.begin(), edge_indices.end());

  result.found = true;
  result.corridor = corridor;
  // Final leg into the goal polygon.
  result.cost = g[gp] + entry[gp].DistanceTo(goal) *
                            EffectiveMultiplier(polys_[gp], options);

  // Portals in crossing order, oriented left/right w.r.t. travel direction.
  std::vector<Portal> portals;
  portals.reserve(corridor.size() - 1);
  for (size_t i = 1; i < corridor.size(); ++i) {
    uint32_t from = corridor[i - 1];
    const Edge& e = adjacency_[from][static_cast<size_t>(edge_indices[i])];
    Vec2 dir = polys_[e.to].centroid - polys_[from].centroid;
    Vec2 mid = (e.p0 + e.p1) * 0.5f;
    // p0 is "left" when it lies counter-clockwise of the travel direction.
    if (dir.Cross(e.p0 - mid) > 0.0f) {
      portals.push_back(Portal{e.p0, e.p1});
    } else {
      portals.push_back(Portal{e.p1, e.p0});
    }
  }

  if (options.smooth) {
    result.waypoints = StringPull(start, goal, portals);
  } else {
    result.waypoints.push_back(start);
    for (const Portal& p : portals) {
      result.waypoints.push_back((p.left + p.right) * 0.5f);
    }
    result.waypoints.push_back(goal);
  }
  return result;
}

std::vector<uint32_t> NavMesh::FindAnnotated(const Vec2& p, float radius,
                                             uint8_t required_flags) const {
  std::vector<uint32_t> out;
  float r2 = radius * radius;
  for (size_t i = 0; i < polys_.size(); ++i) {
    const NavPoly& poly = polys_[i];
    if ((poly.flags & required_flags) != required_flags) continue;
    if ((poly.centroid - p).LengthSquared() <= r2 || poly.Contains(p)) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

}  // namespace gamedb::spatial
