#pragma once

/// \file kdbsp_tree.h
/// Axis-aligned BSP (kd) tree. Games traditionally build BSP trees over
/// level geometry; for dynamic entities the common adaptation — used here —
/// is a median-split axis-aligned BSP over entity centers, rebuilt lazily
/// after a batch of mutations (games rebuild per frame or amortized).
///
/// Queries are exact over entry bounds; the tree partitions by centers but
/// every node stores the true union bound of its subtree, so large objects
/// are still found.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "spatial/spatial_index.h"

namespace gamedb::spatial {

/// Options for KdBspTree.
struct KdBspTreeOptions {
  /// Maximum entries in a leaf before splitting.
  uint32_t leaf_capacity = 8;
  /// Fraction of stale (mutated) entries that triggers a rebuild on the
  /// next query. 0 rebuilds on any mutation.
  float rebuild_threshold = 0.25f;
};

/// Semi-static axis-aligned BSP tree with lazy rebuild.
///
/// Thread safety: the lazy rebuild mutates on first query after a change;
/// once a query has run with no further mutations, concurrent queries are
/// safe (pure reads). Issue one warm-up query before fanning out.
class KdBspTree final : public SpatialIndex {
 public:
  explicit KdBspTree(KdBspTreeOptions options = {});

  const char* Name() const override { return "kdbsp_tree"; }

  void Insert(EntityId e, const Aabb& box) override;
  bool Remove(EntityId e) override;
  void Update(EntityId e, const Aabb& box) override;
  void QueryRange(const Aabb& range, const QueryCallback& cb) const override;
  size_t Size() const override { return live_count_; }
  void Clear() override;

  /// k nearest entries to `p` (by box distance); ties broken arbitrarily.
  /// Uses best-first descent over subtree bounds.
  void QueryNearest(const Vec3& p, size_t k,
                    const std::function<void(EntityId, const Aabb&, float)>&
                        cb) const;

  /// Number of rebuilds performed (benchmark diagnostics).
  uint64_t rebuild_count() const { return rebuild_count_; }

 private:
  struct Entry {
    EntityId id;
    Aabb box;
    bool live = true;
    bool in_tree = false;  // false: found via the pending overflow list
  };
  struct Node {
    Aabb bounds;            // union of subtree entry bounds
    int32_t left = -1;      // node index, -1 for leaf
    int32_t right = -1;
    uint32_t begin = 0;     // leaf: range into order_
    uint32_t end = 0;
    uint8_t axis = 0;
    float split = 0.0f;
  };

  bool NeedsRebuild() const;
  void RebuildIfNeeded() const;
  int32_t BuildNode(std::vector<uint32_t>& items, uint32_t begin,
                    uint32_t end) const;
  void QueryNode(int32_t node, const Aabb& range,
                 const QueryCallback& cb) const;

  KdBspTreeOptions options_;
  std::vector<Entry> entries_;  // slab; compacted on rebuild
  std::unordered_map<EntityId, uint32_t> slot_of_;
  std::vector<uint32_t> pending_;  // live slots not yet folded into the tree
  size_t live_count_ = 0;
  size_t stale_in_tree_ = 0;  // removed/moved entries still in the built tree

  // Built structure (mutable: rebuilt lazily from const queries).
  mutable std::vector<Node> nodes_;
  mutable std::vector<uint32_t> order_;  // leaf entry slots
  mutable int32_t root_ = -1;
  mutable uint64_t rebuild_count_ = 0;
};

}  // namespace gamedb::spatial
