#pragma once

/// \file grid_map.h
/// Tile-grid world map on the XZ plane. The designer-facing representation:
/// maps are authored as ASCII art in content files, annotated with the
/// semantic flags the tutorial describes ("whether a position is a good
/// hiding place or is easily defensible"). Consumed by grid A* (baseline)
/// and the navmesh builder.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"

namespace gamedb::spatial {

/// Semantic annotation flags on walkable cells / navmesh polygons.
enum NavFlags : uint8_t {
  kNavWalkable = 1 << 0,
  kNavDanger = 1 << 1,      // designers mark lava, traps, aggro zones
  kNavCover = 1 << 2,       // good cover
  kNavHide = 1 << 3,        // good hiding place
  kNavDefensible = 1 << 4,  // easily defensible
};

/// Options for GridMap geometry.
struct GridMapOptions {
  float cell_size = 1.0f;
  Vec2 origin{0.0f, 0.0f};  // world position of cell (0, 0)'s min corner
};

/// Rectangular tile map with per-cell annotation flags.
///
/// ASCII legend for FromAscii:
///   '#'  blocked wall
///   '.'  walkable
///   'D'  walkable + danger
///   'C'  walkable + cover
///   'H'  walkable + hiding place
///   'F'  walkable + defensible
///   other printable characters: walkable, recorded as named markers
///   (spawn points, goals) retrievable via Markers().
class GridMap {
 public:
  GridMap(int width, int height, GridMapOptions options = {});

  /// Parses an ASCII map; all rows must have equal length.
  static Result<GridMap> FromAscii(const std::vector<std::string>& rows,
                                   GridMapOptions options = {});

  int width() const { return width_; }
  int height() const { return height_; }
  float cell_size() const { return options_.cell_size; }

  bool InBounds(int x, int y) const {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }
  /// Annotation flags; 0 (not walkable) when out of bounds.
  uint8_t FlagsAt(int x, int y) const {
    return InBounds(x, y) ? cells_[static_cast<size_t>(y) * width_ + x] : 0;
  }
  void SetFlags(int x, int y, uint8_t flags);
  bool Walkable(int x, int y) const {
    return (FlagsAt(x, y) & kNavWalkable) != 0;
  }

  /// World-space center of a cell.
  Vec2 CellCenter(int x, int y) const {
    return {options_.origin.x + (static_cast<float>(x) + 0.5f) * options_.cell_size,
            options_.origin.z + (static_cast<float>(y) + 0.5f) * options_.cell_size};
  }
  /// Cell containing a world point (may be out of bounds; check InBounds).
  void CellOf(const Vec2& p, int* x, int* y) const;

  /// Positions of marker characters found by FromAscii (e.g. 'S', 'G').
  const std::map<char, std::vector<std::pair<int, int>>>& Markers() const {
    return markers_;
  }

  /// Number of walkable cells.
  size_t WalkableCount() const;

 private:
  int width_;
  int height_;
  GridMapOptions options_;
  std::vector<uint8_t> cells_;
  std::map<char, std::vector<std::pair<int, int>>> markers_;
};

}  // namespace gamedb::spatial
