#pragma once

/// \file spatial_index.h
/// Common interface over the spatial indexes the tutorial names as game
/// industry practice ("traditional spatial indices such as BSP trees or
/// Octrees"). All four implementations — LinearScan (the baseline designers'
/// scripts effectively use), UniformGrid, KdBspTree and LooseOctree — share
/// this interface so E2 can sweep them under identical workloads.
///
/// Paper: the indexing / scaling-simulations section — replacing the Ω(n²)
/// object-pair scripts of E1 with index-backed proximity queries, plus the
/// navmesh material covered by navmesh.h and E3.

#include <functional>

#include "common/geometry.h"
#include "common/macros.h"
#include "core/entity.h"

namespace gamedb::spatial {

/// Visitor for query results. Return value is ignored for now (full
/// enumeration); use QueryRangeWhile for early exit.
using QueryCallback = std::function<void(EntityId, const Aabb&)>;

/// Index over entities with axis-aligned bounds. Point data uses degenerate
/// boxes (Aabb::FromPoint).
///
/// Implementations are not thread-safe for concurrent mutation; concurrent
/// read-only queries are safe after a quiescent point (see each class).
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Human-readable index name (for benchmark tables).
  virtual const char* Name() const = 0;

  /// Inserts `e` with bounds `box`. Inserting an id that is already present
  /// is a checked programming error; use Update.
  virtual void Insert(EntityId e, const Aabb& box) = 0;

  /// Removes `e`; returns false when absent.
  virtual bool Remove(EntityId e) = 0;

  /// Moves `e` to new bounds (must be present).
  virtual void Update(EntityId e, const Aabb& box) = 0;

  /// Invokes `cb` for every entry whose bounds intersect `range`.
  virtual void QueryRange(const Aabb& range, const QueryCallback& cb) const = 0;

  /// Invokes `cb` for every entry whose bounds intersect the sphere.
  /// Default: box query on the sphere's AABB with exact distance filter.
  virtual void QueryRadius(const Vec3& center, float radius,
                           const QueryCallback& cb) const {
    QueryRange(Aabb::FromSphere(center, radius),
               [&](EntityId e, const Aabb& box) {
                 if (box.IntersectsSphere(center, radius)) cb(e, box);
               });
  }

  /// Number of entries.
  virtual size_t Size() const = 0;

  /// Removes all entries.
  virtual void Clear() = 0;
};

}  // namespace gamedb::spatial
