#pragma once

/// \file navmesh_builder.h
/// Builds a NavMesh from a GridMap by maximal-rectangle decomposition:
/// contiguous runs of identically-annotated walkable cells merge into convex
/// (rectangular) polygons, and shared rectangle borders become portals.
/// This is the "near-optimal navigation mesh" construction of the
/// tutorial's reference [12], specialized to tile worlds.

#include "common/status.h"
#include "spatial/grid_map.h"
#include "spatial/navmesh.h"

namespace gamedb::spatial {

/// Build diagnostics.
struct NavMeshBuildStats {
  size_t walkable_cells = 0;
  size_t polygon_count = 0;
  size_t portal_count = 0;
};

/// Decomposes `map` into a navmesh. Fails when the map has no walkable
/// cells. Polygon flags are the (uniform) cell flags of each rectangle.
Result<NavMesh> BuildNavMesh(const GridMap& map,
                             NavMeshBuildStats* stats = nullptr);

}  // namespace gamedb::spatial
